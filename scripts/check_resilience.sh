#!/usr/bin/env bash
# Resilience smoke check: builds the fault-injection subsystem's test and
# bench targets, runs the `resilience`-labelled ctest suite, then runs a
# small fault sweep plus a regional-outage sweep and asserts the printed
# contracts:
#   * the no-fault baseline fingerprint (zero fault rate => zero faults,
#     failovers, unrecoverable viewers, and re-fetches),
#   * thread-count determinism ("identical: yes" for threads 1/2/8) for
#     both the randomized sweep and the regional-outage sweep, and
#   * the zero-radius contract: a single dead edge PoP re-anycasts 100%
#     of its viewers (failovers == affected) with zero orphans,
#   * the capacity-spill contracts: with edge_capacity=0 the capacity
#     experiment reproduces the regional experiment bit for bit
#     ("infinite-capacity parity ... identical: yes"), finite-capacity
#     pile-ups are thread-deterministic, and affected viewers conserve
#     (failovers + orphaned == affected).
#
#   ./scripts/check_resilience.sh [build-dir]    # default: build
#
# Every failure path prints "resilience check FAILED" and exits non-zero.
set -uo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"

fail() {
  echo "resilience check FAILED: $1" >&2
  exit 1
}

cmake -B "$BUILD" -S . || fail "configure did not succeed"
cmake --build "$BUILD" -j \
      --target livesim_resilience_tests bench_resilience_fault_sweep \
               bench_resilience_regional_outage \
               bench_resilience_capacity_spill \
  || fail "build did not succeed"

ctest --test-dir "$BUILD" -L resilience --output-on-failure \
  || fail "resilience-labelled tests failed"

OUT="$("$BUILD"/bench/bench_resilience_fault_sweep 160)" \
  || fail "bench_resilience_fault_sweep exited non-zero"

echo "$OUT" | grep -q \
  "no-fault baseline: faults=0 failovers=0 unrecoverable=0 refetches=0" \
  || fail "no-fault baseline fingerprint missing or violated (fault machinery is not inert at rate 0)"

for t in 1 2 8; do
  echo "$OUT" | grep -q "threads=$t .*identical: yes" \
    || fail "resilience results not bit-identical at threads=$t"
done

echo "$OUT" | grep -q "all checks passed" \
  || fail "session-level ingest-crash failover demo did not pass"

# --- regional-outage bench: correlated blackouts + edge-to-edge failover
ROUT="$("$BUILD"/bench/bench_resilience_regional_outage 160)" \
  || fail "bench_resilience_regional_outage exited non-zero"

echo "$ROUT" | grep -Eq \
  "zero-radius contract: dark_edges=1 affected=([0-9]+) failovers=\1 orphaned=0" \
  || fail "zero-radius contract violated (a single dead PoP must re-anycast every viewer, zero orphans)"

for t in 1 2 8; do
  echo "$ROUT" | grep -q "threads=$t .*identical: yes" \
    || fail "regional-outage results not bit-identical at threads=$t"
done

echo "$ROUT" | grep -q "all checks passed" \
  || fail "edge-to-edge failover / service scenario-injection demo did not pass"

# --- capacity-spill bench: per-edge capacity + load-aware re-anycast
COUT="$("$BUILD"/bench/bench_resilience_capacity_spill 160)" \
  || fail "bench_resilience_capacity_spill exited non-zero"

# Infinite capacity must reproduce the PR 3 regional results bit for bit
# (one parity line per swept radius, and both must say yes).
PARITY_LINES=$(echo "$COUT" | grep -c "infinite-capacity parity:")
[ "$PARITY_LINES" -ge 2 ] \
  || fail "expected at least 2 infinite-capacity parity lines, got $PARITY_LINES"
echo "$COUT" | grep "infinite-capacity parity:" | grep -qv "identical: yes" \
  && fail "infinite-capacity run is NOT bit-identical to the regional experiment"

for t in 1 2 8; do
  echo "$COUT" | grep -q "threads=$t .*identical: yes" \
    || fail "finite-capacity spill results not bit-identical at threads=$t"
done

echo "$COUT" | grep -Eq \
  "capacity-spill contract: capacity=[0-9]+ affected=([0-9]+) failovers=([0-9]+) orphaned=([0-9]+)" \
  || fail "capacity-spill contract line missing"
echo "$COUT" | grep -q "capacity-spill contract VIOLATED" \
  && fail "capacity-spill conservation contract violated (failovers + orphaned != affected)"

echo "$COUT" | grep -q "all checks passed" \
  || fail "capacity-spill session demo (ring-by-ring overflow) did not pass"

echo "resilience check passed: no-fault baseline inert, results thread-deterministic, failover (ingest and edge-to-edge) functional, capacity spill parity and determinism certified."
