#!/usr/bin/env bash
# Resilience smoke check: builds the fault-injection subsystem's test and
# bench targets, runs the `resilience`-labelled ctest suite, then runs a
# small fault sweep and asserts the two printed contracts:
#   * the no-fault baseline fingerprint (zero fault rate => zero faults,
#     failovers, unrecoverable viewers, and re-fetches), and
#   * thread-count determinism ("identical: yes" for threads 1/2/8).
#
#   ./scripts/check_resilience.sh [build-dir]    # default: build
#
# Every failure path prints "resilience check FAILED" and exits non-zero.
set -uo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"

fail() {
  echo "resilience check FAILED: $1" >&2
  exit 1
}

cmake -B "$BUILD" -S . || fail "configure did not succeed"
cmake --build "$BUILD" -j \
      --target livesim_resilience_tests bench_resilience_fault_sweep \
  || fail "build did not succeed"

ctest --test-dir "$BUILD" -L resilience --output-on-failure \
  || fail "resilience-labelled tests failed"

OUT="$("$BUILD"/bench/bench_resilience_fault_sweep 160)" \
  || fail "bench_resilience_fault_sweep exited non-zero"

echo "$OUT" | grep -q \
  "no-fault baseline: faults=0 failovers=0 unrecoverable=0 refetches=0" \
  || fail "no-fault baseline fingerprint missing or violated (fault machinery is not inert at rate 0)"

for t in 1 2 8; do
  echo "$OUT" | grep -q "threads=$t .*identical: yes" \
    || fail "resilience results not bit-identical at threads=$t"
done

echo "$OUT" | grep -q "all checks passed" \
  || fail "session-level ingest-crash failover demo did not pass"

echo "resilience check passed: no-fault baseline inert, results thread-deterministic, failover functional."
