#!/usr/bin/env bash
# Flash-crowd service-integration check: builds the crowd subsystem's
# test and bench targets, runs the `crowd`-labelled ctest suite, then
# runs the crowd bench at full scale (>= 100k viewers) and asserts the
# printed contracts:
#   * thread-count determinism: the flash-crowd experiment fingerprints
#     byte-identically at threads 1/2/8 ("identical: yes"),
#   * scale: the storm really carried >= 100000 viewer sessions,
#   * the admission-latency contract: batched admission never slips a
#     viewer more than one batch window past its requested join
#     ("max < window: yes"),
#   * the storm hit the blackout (edge failovers + proactive
#     migrations both non-zero) and published verdicts steered organic
#     joins around the dark region (steered_joins > 0),
#   * proactive mean failover latency <= the reactive control-off
#     baseline, whose control ledgers are all zero.
#
#   ./scripts/check_crowd.sh [build-dir]    # default: build
#
# Every failure path prints "crowd check FAILED" and exits non-zero.
set -uo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"

fail() {
  echo "crowd check FAILED: $1" >&2
  exit 1
}

cmake -B "$BUILD" -S . || fail "configure did not succeed"
cmake --build "$BUILD" -j \
      --target livesim_crowd_tests bench_crowd_service \
  || fail "build did not succeed"

ctest --test-dir "$BUILD" -L crowd --output-on-failure \
  || fail "crowd-labelled tests failed"

# Capture to a file and grep the file, rather than `echo "$OUT" | grep`
# pipelines: under `set -o pipefail` a pipe stage's exit status can
# mask a successful match, and the file leaves the full transcript on
# disk when a contract does fail.
OUT="$BUILD/crowd_check.out"
"$BUILD"/bench/bench_crowd_service BENCH_crowd.json 100000 > "$OUT" \
  || fail "bench_crowd_service exited non-zero (transcript in $OUT)"
cat "$OUT"

for t in 1 2 8; do
  grep -q "crowd_service threads=$t .*identical: yes" "$OUT" \
    || fail "flash-crowd experiment not bit-identical at threads=$t"
done

grep -q "crowd_service viewers=.* (>=100000: yes)" "$OUT" \
  || fail "the storm carried fewer than 100000 viewer sessions"

grep -q "crowd_service admission max_us=.* (max < window: yes)" "$OUT" \
  || fail "batched admission slipped a viewer past one batch window"

grep -q \
  "crowd_service proactive_migrations=.* (storm hit the blackout: yes)" \
  "$OUT" \
  || fail "the blackout did not collide with the storm (no failovers or no proactive migrations)"

grep -q "crowd_service steered_joins=.* (>0: yes)" "$OUT" \
  || fail "published verdicts steered no organic joins"

grep -q "crowd_service failover mean: .* (proactive <= reactive: yes)" \
  "$OUT" \
  || fail "proactive mean failover latency exceeds the reactive baseline"

grep -q "crowd_service control-off ledgers zero: yes" "$OUT" \
  || fail "control-off baseline shows non-zero control-plane ledgers"

grep -q "all checks passed" "$OUT" \
  || fail "crowd bench did not reach its final all-clear"
rm -f "$OUT"

[ -s BENCH_crowd.json ] || fail "BENCH_crowd.json was not written"

echo "crowd check passed: 100k-viewer storm thread-deterministic, admission bounded by one batch window, blackout herd moved proactively, organic joins steered by published verdicts."
