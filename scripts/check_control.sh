#!/usr/bin/env bash
# Control-plane smoke check: builds the steering subsystem's test and
# bench targets, runs the `control`-labelled ctest suite, then runs the
# steering bench and asserts the printed contracts:
#   * control-plane-off parity: with control disabled the steering
#     experiment reproduces the capacity-spill experiment bit for bit
#     ("control-plane-off parity ... identical: yes" for every
#     radius x capacity pair),
#   * pointwise dominance: on the blackout grid every affected viewer's
#     proactive detection time is <= its reactive detection time
#     ("dominance on blackout grid ... yes"),
#   * thread-count determinism with steering ON ("identical: yes" for
#     threads 1/2/8),
#   * the session demos: proactive migration beats the client failover
#     timeout (6/6 migrated, 0 orphans) and the overlay assist parks
#     capacity orphans on the mesh.
#
#   ./scripts/check_control.sh [build-dir]    # default: build
#
# Every failure path prints "control check FAILED" and exits non-zero.
set -uo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"

fail() {
  echo "control check FAILED: $1" >&2
  exit 1
}

cmake -B "$BUILD" -S . || fail "configure did not succeed"
cmake --build "$BUILD" -j \
      --target livesim_control_tests bench_control_steering \
  || fail "build did not succeed"

ctest --test-dir "$BUILD" -L control --output-on-failure \
  || fail "control-labelled tests failed"

OUT="$("$BUILD"/bench/bench_control_steering BENCH_control.json 160)" \
  || fail "bench_control_steering exited non-zero"

# Off-parity: one line per radius x capacity pair (2x2 sweep), and every
# one of them must fingerprint identically to the capacity-spill run.
PARITY_LINES=$(echo "$OUT" | grep -c "control-plane-off parity:")
[ "$PARITY_LINES" -ge 4 ] \
  || fail "expected at least 4 control-plane-off parity lines, got $PARITY_LINES"
echo "$OUT" | grep "control-plane-off parity:" | grep -qv "identical: yes" \
  && fail "control-plane-off run is NOT bit-identical to the capacity-spill experiment"

echo "$OUT" | grep -q \
  "control_steering dominance on blackout grid (proactive <= reactive, pointwise): yes" \
  || fail "proactive detection does not dominate reactive detection pointwise"

for t in 1 2 8; do
  echo "$OUT" | grep -q "control_steering threads=$t .*identical: yes" \
    || fail "steering results not bit-identical at threads=$t"
done

echo "$OUT" | grep -q \
  "session steering contract: proactive beats the client timeout: yes" \
  || fail "session demo: steering did not migrate every viewer before the client timeout"

echo "$OUT" | grep -q \
  "overlay assist contract: capacity orphans ride the mesh: yes" \
  || fail "session demo: overlay assist did not park capacity orphans on the mesh"

echo "$OUT" | grep -q "all checks passed" \
  || fail "control steering bench did not reach its final all-clear"

echo "control check passed: off-parity bit-identical, proactive dominates reactive pointwise, steering thread-deterministic, session steering and overlay assist functional."
