#!/usr/bin/env bash
# Reproduce every table and figure of the paper from a clean checkout.
#
#   ./scripts/reproduce.sh [output-dir]
#
# Builds the library, runs the full test suite, executes every bench
# (optionally exporting plot-ready CSVs), and leaves the transcripts in
# the output directory.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-reproduction}"
mkdir -p "$OUT"

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build --output-on-failure 2>&1 | tee "$OUT/test_output.txt"

export LIVESIM_CSV_DIR="$OUT"
: > "$OUT/bench_output.txt"
for b in build/bench/*; do
  echo "### $(basename "$b")" | tee -a "$OUT/bench_output.txt"
  "$b" 2>&1 | tee -a "$OUT/bench_output.txt"
done

echo
echo "Done. Paper-vs-measured ledger: EXPERIMENTS.md"
echo "Transcripts and CSVs: $OUT/"
