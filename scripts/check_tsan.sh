#!/usr/bin/env bash
# Build and run the concurrency-sensitive test suites under
# ThreadSanitizer. The parallel experiment runner promises deterministic,
# race-free shard execution; this is the check that enforces the
# "race-free" half (the determinism half is test_parallel_runner itself).
#
#   ./scripts/check_tsan.sh [build-dir]      # default: build-tsan
#
# Requires a compiler with -fsanitize=thread (GCC or Clang).
# Every failure path prints an explicit "TSan check FAILED" summary and
# exits non-zero — a broken sanitizer configure or build must never be
# mistaken for a pass.
set -uo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build-tsan}"

fail() {
  echo "TSan check FAILED: $1" >&2
  exit 1
}

cmake -B "$BUILD" -S . -DLIVESIM_SANITIZE=thread \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  || fail "configure with -fsanitize=thread did not succeed (compiler without TSan support?)"

cmake --build "$BUILD" --target livesim_tests livesim_resilience_tests \
      livesim_engine_alloc_tests livesim_poll_wheel_tests \
      livesim_control_tests livesim_crowd_tests -j \
  || fail "sanitized build did not succeed"

[ -x "$BUILD"/tests/livesim_tests ] \
  || fail "sanitized test binary was not produced at $BUILD/tests/livesim_tests"

# The pool/shard layer plus the event-queue semantics it leans on. Any
# TSan report makes the binary exit non-zero (abort_on_error).
TSAN_OPTIONS="halt_on_error=1:abort_on_error=1${TSAN_OPTIONS:+:$TSAN_OPTIONS}" \
  "$BUILD"/tests/livesim_tests --gtest_filter='ParallelRunner*:ParallelMap*:ParallelForShards*:ThreadPool*:ShardRanges*:SubstreamSeed*:Simulator*:SimulatorProperty*:PeriodicProcess*:EngineCancel*:EngineReschedule*:InplaceFunctionTest*' \
  || fail "data race or test failure in the parallel runner / simulator suites"

# The slot-arena engine's allocation-free contract, with the global
# operator-new hook active under TSan as well (the hook itself must not
# race).
TSAN_OPTIONS="halt_on_error=1:abort_on_error=1${TSAN_OPTIONS:+:$TSAN_OPTIONS}" \
  "$BUILD"/tests/livesim_engine_alloc_tests \
  || fail "data race or test failure in the engine allocation-contract suite"

# The resilience experiments (randomized sweep AND the regional-outage
# sweep) shard fault-injected broadcasts over the same pool; their
# determinism tests double as a race detector for the fault path.
TSAN_OPTIONS="halt_on_error=1:abort_on_error=1${TSAN_OPTIONS:+:$TSAN_OPTIONS}" \
  "$BUILD"/tests/livesim_resilience_tests --gtest_filter='ResilienceDeterminism*:NoFaultParity*:RegionalDeterminism*:ScenarioExpansion*:CrowdDeterminism*' \
  || fail "data race or test failure in the resilience determinism suites"

# The poll-wheel battery: cohort churn against the slot arena, plus the
# wheels-on/off session differentials (crowd generation itself shards
# over the pool via parallel_map, so this doubles as a race check on the
# SoA ledger access pattern).
TSAN_OPTIONS="halt_on_error=1:abort_on_error=1${TSAN_OPTIONS:+:$TSAN_OPTIONS}" \
  "$BUILD"/tests/livesim_poll_wheel_tests \
  || fail "data race or test failure in the poll-wheel battery"

# The control-plane battery: the steering experiment shards fault-
# injected broadcasts over the pool (control_steering_experiment runs a
# full capacity-spill sweep per thread count), so its determinism and
# off-parity suites double as a race check on the scrape/publish path.
TSAN_OPTIONS="halt_on_error=1:abort_on_error=1${TSAN_OPTIONS:+:$TSAN_OPTIONS}" \
  "$BUILD"/tests/livesim_control_tests \
  || fail "data race or test failure in the control-plane battery"

# The crowd battery: the flash-crowd experiment shards whole services
# (engine + wheels + control plane + crowd drive) over the pool per
# channel, so its thread-determinism suite doubles as a race check on
# the entire service stack under parallel_map.
TSAN_OPTIONS="halt_on_error=1:abort_on_error=1${TSAN_OPTIONS:+:$TSAN_OPTIONS}" \
  "$BUILD"/tests/livesim_crowd_tests \
  || fail "data race or test failure in the crowd battery"

echo "TSan check passed: no data races in the parallel runner, simulator, engine, resilience, control-plane, or crowd suites."
