#!/usr/bin/env bash
# Build and run the concurrency-sensitive test suites under
# ThreadSanitizer. The parallel experiment runner promises deterministic,
# race-free shard execution; this is the check that enforces the
# "race-free" half (the determinism half is test_parallel_runner itself).
#
#   ./scripts/check_tsan.sh [build-dir]      # default: build-tsan
#
# Requires a compiler with -fsanitize=thread (GCC or Clang).
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build-tsan}"

cmake -B "$BUILD" -S . -DLIVESIM_SANITIZE=thread \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD" --target livesim_tests -j

# The pool/shard layer plus the event-queue semantics it leans on. Any
# TSan report makes the binary exit non-zero (abort_on_error).
TSAN_OPTIONS="halt_on_error=1:abort_on_error=1${TSAN_OPTIONS:+:$TSAN_OPTIONS}" \
  "$BUILD"/tests/livesim_tests --gtest_filter='ParallelRunner*:ParallelMap*:ParallelForShards*:ThreadPool*:ShardRanges*:SubstreamSeed*:Simulator*:SimulatorProperty*:PeriodicProcess*'

echo "TSan check passed: no data races in the parallel runner or simulator."
