// §4.1's cross-service comparison, measured:
//
//   Periscope:     RTMP upload; RTMP (first ~100) + HLS (3 s chunks) down;
//                  unencrypted -> tamperable (§7).
//   Meerkat:       HTTP POST upload to EC2; HLS-only down, 3.6 s chunks;
//                  unencrypted -> tamperable.
//   Facebook Live: RTMPS upload; RTMPS/HLS down, 3 s chunks; encrypted.
//
// One bench runs all three configurations through the same pipeline and
// prints the delay + security consequences of each design.
#include <cstdio>

#include "livesim/core/broadcast_session.h"
#include "livesim/stats/report.h"

namespace {
using namespace livesim;

struct ServiceRow {
  const char* name;
  const char* ingest_protocol;
  double chunk_seconds;
  bool has_rtmp_viewers;
  double upload_overhead_ms;  // POST framing vs persistent RTMP
  const char* security;
};

core::DelayBreakdown run_hls(const ServiceRow& svc, std::uint64_t seed,
                             core::DelayBreakdown* rtmp_out) {
  core::DelayBreakdown merged_hls, merged_rtmp;
  for (int rep = 0; rep < 5; ++rep) {
    sim::Simulator sim;
    const auto catalog = geo::DatacenterCatalog::paper_footprint();
    core::SessionConfig cfg;
    cfg.broadcast_len = 2 * time::kMinute;
    cfg.broadcaster_location = {34.42, -119.70};
    cfg.global_viewers = false;
    cfg.rtmp_viewers = svc.has_rtmp_viewers ? 1 : 0;
    cfg.hls_viewers = 1;
    cfg.crawler_pollers = true;
    cfg.chunker.target_duration = time::from_seconds(svc.chunk_seconds);
    cfg.chunker.max_duration = time::from_seconds(2 * svc.chunk_seconds);
    cfg.hls_prebuffer = time::from_seconds(3.0 * svc.chunk_seconds);
    cfg.device_pipeline =
        180 * time::kMillisecond + time::from_millis(svc.upload_overhead_ms);
    cfg.seed = seed + static_cast<std::uint64_t>(rep);
    core::BroadcastSession session(sim, catalog, cfg);
    session.start();
    sim.run();
    session.finalize();
    merged_hls.merge(session.hls_breakdown());
    merged_rtmp.merge(session.rtmp_breakdown());
  }
  if (rtmp_out != nullptr) *rtmp_out = merged_rtmp;
  return merged_hls;
}
}  // namespace

int main() {
  using namespace livesim;
  const ServiceRow services[] = {
      {"Periscope", "RTMP (persistent)", 3.0, true, 0.0,
       "none (tamperable, plaintext token)"},
      {"Meerkat", "HTTP POST", 3.6, false, 60.0,
       "none (tamperable)"},
      {"Facebook Live", "RTMPS (TLS)", 3.0, true, 15.0,
       "encrypted + authenticated"},
  };

  stats::print_banner("§4.1: streaming designs across services (measured)");
  stats::Table table({"Service", "Ingest", "Chunk", "Low-delay path",
                      "HLS e2e(s)", "Security"});
  for (const auto& svc : services) {
    core::DelayBreakdown rtmp;
    const auto hls = run_hls(svc, 400, &rtmp);
    table.add_row(
        {svc.name, svc.ingest_protocol,
         stats::Table::num(svc.chunk_seconds, 1) + "s",
         svc.has_rtmp_viewers
             ? stats::Table::num(rtmp.total_s(), 1) + "s (first ~100)"
             : "none (HLS only)",
         stats::Table::num(hls.total_s(), 1), svc.security});
  }
  table.print();
  std::printf(
      "\nMeerkat's HLS-only design costs every viewer chunked-delivery "
      "latency (and its 3.6 s chunks stretch it further); Facebook Live "
      "pays encryption CPU for integrity; Periscope's split is the "
      "latency/scalability compromise this paper dissects.\n");
  return 0;
}
