// Figure 4: total # of viewers per broadcast.
// Paper shape: 60% of Meerkat broadcasts have no viewers at all; nearly
// all Periscope broadcasts have >= 1 viewer, with the most popular
// reaching ~100K.
#include <cstdio>

#include "livesim/stats/report.h"
#include "livesim/workload/generator.h"

int main() {
  using namespace livesim;
  workload::Generator pgen(workload::AppProfile::periscope(), 1.0 / 200.0, 4);
  workload::Generator mgen(workload::AppProfile::meerkat(), 1.0 / 4.0, 4);
  const auto periscope = pgen.generate();
  const auto meerkat = mgen.generate();

  stats::Sampler pv, mv;
  for (const auto& b : periscope.broadcasts) pv.add(b.total_viewers());
  for (const auto& b : meerkat.broadcasts) mv.add(b.total_viewers());

  stats::print_banner("Figure 4: total # of viewers per broadcast (CDF)");
  std::printf("%-10s  %-10s  %-10s\n", "viewers", "Periscope", "Meerkat");
  for (double p : {0.0, 1.0, 10.0, 100.0, 1000.0, 10000.0, 100000.0}) {
    std::printf("%-10s  %-10.3f  %-10.3f\n",
                stats::Table::integer(static_cast<std::int64_t>(p)).c_str(),
                pv.cdf_at(p), mv.cdf_at(p));
  }
  std::printf("\nZero-viewer broadcasts: Meerkat %.0f%% (paper: 60%%), "
              "Periscope %.0f%% (paper: ~0%%)\n",
              mv.cdf_at(0.0) * 100, pv.cdf_at(0.0) * 100);
  std::printf("Most popular Periscope broadcast: %s viewers (paper: ~100K)\n",
              stats::Table::integer(static_cast<std::int64_t>(pv.max()))
                  .c_str());
  return 0;
}
