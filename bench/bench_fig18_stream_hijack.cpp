// Figure 18 / §7: the broadcast tampering attack, before and after, and
// the signature defense.
//
// Paper: an ARP-spoofing MITM on the broadcaster's WiFi parses the
// unencrypted RTMP stream and swaps video payloads for black frames; the
// viewer sees the tampered stream while the broadcaster sees no change.
// The proposed defense signs a hash of (windows of) frames; RTMPS is the
// heavyweight alternative Facebook Live uses.
#include <chrono>
#include <cstdio>

#include "livesim/media/encoder.h"
#include "livesim/protocol/rtmps.h"
#include "livesim/security/attack.h"
#include "livesim/security/stream_sign.h"
#include "livesim/stats/report.h"

namespace {
using namespace livesim;

std::vector<media::VideoFrame> capture_frames(int n) {
  media::FrameSource src({}, Rng(1));
  Rng payload(2);
  std::vector<media::VideoFrame> frames;
  for (int i = 0; i < n; ++i) {
    auto f = src.next();
    f.payload.resize(f.size_bytes);
    for (auto& b : f.payload) b = static_cast<std::uint8_t>(payload.next_u64());
    frames.push_back(std::move(f));
  }
  return frames;
}

bool looks_black(const media::VideoFrame& f) {
  for (auto b : f.payload)
    if (b != 0x00) return false;
  return !f.payload.empty();
}
}  // namespace

int main() {
  using namespace livesim;
  const int kFrames = 500;  // 20 s of video

  stats::print_banner("Figure 18 / §7: stream tampering attack & defenses");

  // --- Scenario 1: plain RTMP (deployed Periscope/Meerkat config). ---
  {
    security::TamperAttacker attacker;
    auto frames = capture_frames(kFrames);
    int viewer_black = 0, parse_ok = 0;
    for (const auto& f : frames) {
      const auto received =
          protocol::wire_to_frame(attacker.intercept(protocol::frame_to_wire(f)));
      if (received) {
        ++parse_ok;
        if (looks_black(*received)) ++viewer_black;
      }
    }
    std::printf("\n[RTMP, no defense] broadcaster sees: original video\n");
    std::printf("[RTMP, no defense] viewer sees:     %d/%d frames BLACK "
                "(attack silent, server accepted all %d frames)\n",
                viewer_black, kFrames, parse_ok);
    std::printf("[RTMP, no defense] plaintext tokens sniffed: %llu\n",
                static_cast<unsigned long long>(attacker.stats().tokens_sniffed));
  }

  // --- Scenario 2: signature defense (the paper's countermeasure). ---
  {
    const auto seed = security::Sha256::hash(std::string("broadcast-7"));
    security::StreamSigner signer(seed, 64, 25);  // sign 1/s of video
    security::StreamVerifier verifier(signer.root(), 25);
    security::TamperAttacker attacker;

    auto frames = capture_frames(kFrames);
    std::uint64_t flagged = 0;
    for (auto& f : frames) {
      signer.process(f);
      const auto received =
          protocol::wire_to_frame(attacker.intercept(protocol::frame_to_wire(f)));
      if (received &&
          verifier.process(*received) ==
              security::StreamVerifier::Result::kTampered)
        ++flagged;
    }
    std::printf("\n[RTMP + signatures] tampered windows detected: %llu/%llu "
                "(every signed window flagged)\n",
                static_cast<unsigned long long>(flagged),
                static_cast<unsigned long long>(kFrames / 25));
    std::printf("[RTMP + signatures] root exchanged at setup: 32 bytes; "
                "signature overhead: ~%zu bytes per 25 frames\n",
                security::Wots::kSignatureBytes + 8 + 4 + 6 * 32);
  }

  // --- Scenario 3: RTMPS (Facebook Live's approach). ---
  {
    protocol::SecureChannel::Key key{};
    key[0] = 99;
    protocol::SecureChannel sender(key), receiver(key);
    security::TamperAttacker attacker;
    auto frames = capture_frames(kFrames);
    int delivered = 0;
    for (const auto& f : frames) {
      const auto opened =
          receiver.open(attacker.intercept(sender.seal(protocol::frame_to_wire(f))));
      if (opened && protocol::wire_to_frame(*opened)) ++delivered;
    }
    std::printf("\n[RTMPS] frames delivered intact: %d/%d; attacker parse "
                "failures: %llu (cannot read or alter records)\n",
                delivered, kFrames,
                static_cast<unsigned long long>(attacker.stats().parse_failures));
  }

  // --- Cost comparison (the reason Periscope avoided RTMPS). ---
  {
    auto frames = capture_frames(kFrames);
    const auto t0 = std::chrono::steady_clock::now();
    {
      const auto seed = security::Sha256::hash(std::string("x"));
      security::StreamSigner signer(seed, 64, 25);
      for (auto& f : frames) signer.process(f);
    }
    const auto t1 = std::chrono::steady_clock::now();
    {
      protocol::SecureChannel::Key key{};
      protocol::SecureChannel sender(key);
      for (const auto& f : frames) sender.seal(protocol::frame_to_wire(f));
    }
    const auto t2 = std::chrono::steady_clock::now();
    const double sign_us =
        std::chrono::duration<double, std::micro>(t1 - t0).count() / kFrames;
    const double rtmps_us =
        std::chrono::duration<double, std::micro>(t2 - t1).count() / kFrames;
    std::printf("\nBroadcaster-side cost per frame: selective signing %.1f "
                "us vs RTMPS full encryption %.1f us (%.1fx)\n",
                sign_us, rtmps_us, rtmps_us / sign_us);
    std::printf("(paper: \"encrypting video streams in real time is "
                "computationally costly\" on phones -- signing selective "
                "frame hashes is the lightweight fix)\n");
  }
  return 0;
}
