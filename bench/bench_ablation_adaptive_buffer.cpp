// Ablation: adaptive client buffering (the optimization §6 closes with).
//
// The paper shows a fixed 6 s HLS pre-buffer halves buffering delay at
// near-identical smoothness, and suggests going further: "In cases when
// viewers have stable last-mile connection, smaller buffer size could be
// applied ... Periscope could always fall back to the default 9s buffer"
// on bad connections. This bench runs fixed-9 (deployed), fixed-6 (the
// paper's tuned value), fixed-3 (too aggressive), and the adaptive client
// over the same trace set, split by uplink quality.
#include <cmath>
#include <cstdio>

#include "livesim/analysis/experiments.h"
#include "livesim/client/adaptive.h"
#include "livesim/client/playback.h"
#include "livesim/stats/report.h"

namespace {
using namespace livesim;

struct Row {
  double stall_p90 = 0;
  double delay_median = 0;
};

template <typename Player, typename Factory>
Row evaluate(const std::vector<analysis::BroadcastTrace>& traces,
             Factory make_player, bool bursty_only, bool stable_only) {
  stats::Sampler stall, delay;
  Rng rng(17);
  const DurationUs poll = time::from_seconds(2.8);
  for (const auto& trace : traces) {
    if (bursty_only && !trace.bursty) continue;
    if (stable_only && trace.bursty) continue;
    if (trace.chunks.empty()) continue;
    Player player = make_player();
    const TimeUs phase =
        static_cast<TimeUs>(rng.uniform() * static_cast<double>(poll));
    for (const auto& c : trace.chunks) {
      const auto w2f = static_cast<DurationUs>(
          300000.0 * (1.0 + 0.3 * std::abs(rng.normal(0.0, 1.0))));
      const TimeUs available = c.completed_at_ingest + w2f;
      const TimeUs since = available > phase ? available - phase : 0;
      const TimeUs poll_at = phase + ((since + poll - 1) / poll) * poll;
      player.on_arrival(poll_at + 150 * time::kMillisecond, c.media_start,
                        c.duration);
    }
    stall.add(player.stall_ratio());
    delay.add(player.started() ? player.buffering_delay_s().mean() : 0.0);
  }
  return {stall.quantile(0.9), delay.median()};
}

void print_block(const char* cohort,
                 const std::vector<analysis::BroadcastTrace>& traces,
                 bool bursty_only, bool stable_only) {
  stats::Table table({"Client", "p90 stall ratio", "median delay(s)"});
  for (double fixed_s : {9.0, 6.0, 3.0}) {
    const auto r = evaluate<client::PlaybackSchedule>(
        traces,
        [fixed_s] {
          return client::PlaybackSchedule(time::from_seconds(fixed_s));
        },
        bursty_only, stable_only);
    table.add_row({"fixed P=" + stats::Table::num(fixed_s, 0) + "s",
                   stats::Table::num(r.stall_p90, 3),
                   stats::Table::num(r.delay_median, 2)});
  }
  const auto r = evaluate<client::AdaptivePlayback>(
      traces,
      [] {
        client::AdaptivePlayback::Params p;
        p.initial_pre_buffer = 4500 * time::kMillisecond;
        p.max_pre_buffer = 9 * time::kSecond;
        return client::AdaptivePlayback(p);
      },
      bursty_only, stable_only);
  table.add_row({"adaptive 4.5s->9s", stats::Table::num(r.stall_p90, 3),
                 stats::Table::num(r.delay_median, 2)});
  std::printf("\n-- %s --\n", cohort);
  table.print();
}
}  // namespace

int main() {
  using namespace livesim;
  analysis::TraceSetConfig cfg;
  cfg.broadcasts = 1200;
  const auto traces = analysis::generate_traces(cfg);

  stats::print_banner(
      "Ablation: fixed vs adaptive HLS client buffer (§6 extension)");
  print_block("stable uplinks (~78% of broadcasts)", traces, false, true);
  print_block("bursty/constrained uplinks (~22%)", traces, true, false);
  print_block("all broadcasts", traces, false, false);

  std::printf(
      "\nFixed 3 s is too aggressive (stalls everywhere); fixed 9 s "
      "overpays ~3 s of delay for everyone. The adaptive client lands on "
      "fixed-6-class delay *without hand-tuning a global constant*, "
      "growing toward 9 s only on the links that actually misbehave -- "
      "the §6 fallback policy, automated.\n");
  return 0;
}
