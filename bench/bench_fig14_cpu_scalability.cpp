// Figure 14: server CPU usage under RTMP vs HLS as viewers grow.
//
// Paper (Wowza Streaming Engine on a laptop, 100-500 viewers): RTMP needs
// much more CPU than HLS and the gap widens with audience size -- RTMP
// pushes every 40 ms frame down every persistent connection while HLS
// serves a few polls per viewer per chunk. This is the scalability side
// of the latency/scalability trade-off.
#include <cstdio>

#include "livesim/cdn/resource_model.h"
#include "livesim/cdn/servers.h"
#include "livesim/media/encoder.h"
#include "livesim/sim/simulator.h"
#include "livesim/stats/report.h"

namespace {
using namespace livesim;

// Event-level validation: run an ingest server that actually pushes frames
// to N subscribers for 30 s and read its CPU meter.
double measured_rtmp_cpu(std::uint32_t viewers) {
  sim::Simulator sim;
  cdn::IngestServer server(sim, DatacenterId{0}, media::Chunker::Params{},
                           cdn::ResourceModel{});
  for (std::uint32_t v = 0; v < viewers; ++v)
    server.add_rtmp_subscriber([](const media::VideoFrame&, TimeUs) {});
  media::FrameSource src({}, Rng(1));
  const DurationUs horizon = 30 * time::kSecond;
  for (TimeUs t = 0; t < horizon; t += 40 * time::kMillisecond)
    server.on_frame(src.next());
  return server.cpu().percent_over(horizon);
}
}  // namespace

int main() {
  using namespace livesim;
  const cdn::ResourceModel model;

  stats::print_banner(
      "Figure 14: CPU usage of server using RTMP vs HLS (one broadcast)");
  stats::Table table({"Viewers", "RTMP CPU% (model)", "RTMP CPU% (event sim)",
                      "HLS CPU% (model)"});
  for (std::uint32_t v = 100; v <= 500; v += 100) {
    table.add_row({stats::Table::integer(v),
                   stats::Table::num(model.rtmp_cpu_percent(v, 25.0), 1),
                   stats::Table::num(measured_rtmp_cpu(v), 1),
                   stats::Table::num(
                       model.hls_cpu_percent(v, 25.0, 2.8, 3.0), 1)});
  }
  table.print();

  std::printf("\nPaper shape: RTMP >> HLS at every size, gap grows with "
              "viewers (RTMP ~90%% vs HLS modest at 500 viewers).\n");
  std::printf("RTMP work scales with viewers x 25 fps frame pushes; HLS "
              "with viewers x ~0.36 polls/s -- a ~%.0fx operation-rate "
              "difference.\n",
              25.0 / (1.0 / 2.8));
  return 0;
}
