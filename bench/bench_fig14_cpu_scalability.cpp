// Figure 14: server CPU usage under RTMP vs HLS as viewers grow.
//
// Paper (Wowza Streaming Engine on a laptop, 100-500 viewers): RTMP needs
// much more CPU than HLS and the gap widens with audience size -- RTMP
// pushes every 40 ms frame down every persistent connection while HLS
// serves a few polls per viewer per chunk. This is the scalability side
// of the latency/scalability trade-off.
//
// Part 2 turns the lens on our own engine: the trace-driven experiments
// are embarrassingly parallel across broadcasts, so the runner shards them
// over a thread pool. The sweep measures wall-clock speedup vs threads=1
// and asserts the results stay bit-identical at every thread count.
#include <chrono>
#include <cstdio>
#include <thread>

#include "livesim/analysis/experiments.h"
#include "livesim/cdn/resource_model.h"
#include "livesim/cdn/servers.h"
#include "livesim/media/encoder.h"
#include "livesim/sim/simulator.h"
#include "livesim/stats/report.h"

namespace {
using namespace livesim;

// Event-level validation: run an ingest server that actually pushes frames
// to N subscribers for 30 s and read its CPU meter.
// Position-sensitive FNV-style fingerprint of a trace set: any reordering
// or single-tick change shows up. Used to certify that the sharded runs
// produced bit-identical traces.
std::uint64_t fingerprint(const std::vector<analysis::BroadcastTrace>& traces) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
  };
  for (const auto& t : traces) {
    for (const TimeUs a : t.frame_arrivals) mix(static_cast<std::uint64_t>(a));
    for (const auto& c : t.chunks) {
      mix(static_cast<std::uint64_t>(c.completed_at_ingest));
      mix(c.bytes);
    }
  }
  return h;
}

double measured_rtmp_cpu(std::uint32_t viewers) {
  sim::Simulator sim;
  cdn::IngestServer server(sim, DatacenterId{0}, media::Chunker::Params{},
                           cdn::ResourceModel{});
  for (std::uint32_t v = 0; v < viewers; ++v)
    server.add_rtmp_subscriber([](const media::VideoFrame&, TimeUs) {});
  media::FrameSource src({}, Rng(1));
  const DurationUs horizon = 30 * time::kSecond;
  for (TimeUs t = 0; t < horizon; t += 40 * time::kMillisecond)
    server.on_frame(src.next());
  return server.cpu().percent_over(horizon);
}
}  // namespace

int main() {
  using namespace livesim;
  const cdn::ResourceModel model;

  stats::print_banner(
      "Figure 14: CPU usage of server using RTMP vs HLS (one broadcast)");
  stats::Table table({"Viewers", "RTMP CPU% (model)", "RTMP CPU% (event sim)",
                      "HLS CPU% (model)"});
  for (std::uint32_t v = 100; v <= 500; v += 100) {
    table.add_row({stats::Table::integer(v),
                   stats::Table::num(model.rtmp_cpu_percent(v, 25.0), 1),
                   stats::Table::num(measured_rtmp_cpu(v), 1),
                   stats::Table::num(
                       model.hls_cpu_percent(v, 25.0, 2.8, 3.0), 1)});
  }
  table.print();

  std::printf("\nPaper shape: RTMP >> HLS at every size, gap grows with "
              "viewers (RTMP ~90%% vs HLS modest at 500 viewers).\n");
  std::printf("RTMP work scales with viewers x 25 fps frame pushes; HLS "
              "with viewers x ~0.36 polls/s -- a ~%.0fx operation-rate "
              "difference.\n",
              25.0 / (1.0 / 2.8));

  // --- Part 2: our engine's CPU scalability (parallel experiment runner).
  stats::print_banner(
      "Engine scalability: sharded trace generation + polling simulation");
  analysis::TraceSetConfig cfg;
  cfg.broadcasts = 600;
  cfg.broadcast_len = 2 * time::kMinute;

  stats::Table sweep({"Threads", "Wall (ms)", "Speedup", "Bit-identical"});
  double base_ms = 0.0;
  std::uint64_t ref_print = 0;
  double ref_mean = 0.0;
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    cfg.threads = threads;
    const auto t0 = std::chrono::steady_clock::now();
    const auto traces = analysis::generate_traces(cfg);
    const auto polling = analysis::polling_experiment(
        traces, 3 * time::kSecond, 300 * time::kMillisecond, 99, threads);
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    const std::uint64_t print = fingerprint(traces);
    const double mean = polling.per_broadcast_mean_s.mean();
    if (threads == 1) {
      base_ms = ms;
      ref_print = print;
      ref_mean = mean;
    }
    // Bitwise comparison, not tolerance: the runner's contract.
    const bool identical = print == ref_print && mean == ref_mean;
    sweep.add_row({stats::Table::integer(threads), stats::Table::num(ms, 0),
                   stats::Table::num(base_ms / ms, 2),
                   identical ? "yes" : "NO -- BUG"});
  }
  sweep.print();
  std::printf("\n%u hardware thread(s) on this machine; ideal speedup at N "
              "threads is min(N, cores). Determinism holds regardless: the "
              "same seed gives byte-identical traces and polling stats at "
              "every thread count (threads=1 == the serial path).\n",
              std::thread::hardware_concurrency());
  return 0;
}
