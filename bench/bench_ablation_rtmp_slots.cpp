// Ablation: the RTMP slot cap (the "first ~100 viewers" policy, §1/§4.1).
//
// Periscope routes the first ~100 joiners to low-delay RTMP (they are the
// only ones who may comment) and everyone else to HLS. This sweep shows
// exactly what that dial buys: more interactive viewers cost server CPU
// linearly, while mean audience delay improves only for the slot holders
// -- the "fundamental tension between scalability and delay".
#include <cstdio>

#include "livesim/analysis/experiments.h"
#include "livesim/cdn/resource_model.h"
#include "livesim/stats/report.h"

int main() {
  using namespace livesim;
  // Measure the two path delays once (Fig 11 conditions).
  const auto breakdown = analysis::delay_breakdown_experiment(4, 5);
  const double rtmp_e2e = breakdown.rtmp.total_s();
  const double hls_e2e = breakdown.hls.total_s();

  const cdn::ResourceModel model;
  const std::uint32_t audience = 2000;  // a popular broadcast

  stats::print_banner(
      "Ablation: RTMP slot cap for a 2000-viewer broadcast");
  stats::Table table({"RTMP slots", "Interactive viewers",
                      "Mean delay(s)", "p50 delay class", "Ingest CPU%",
                      "Note"});
  for (std::uint32_t slots : {0u, 50u, 100u, 200u, 500u, 1000u, 2000u}) {
    const std::uint32_t rtmp_v = std::min(slots, audience);
    const std::uint32_t hls_v = audience - rtmp_v;
    const double mean_delay =
        (rtmp_v * rtmp_e2e + hls_v * hls_e2e) / audience;
    const double cpu = model.rtmp_cpu_percent(rtmp_v, 25.0) +
                       model.hls_cpu_percent(hls_v, 25.0, 2.8, 3.0) -
                       model.baseline_percent;
    table.add_row(
        {stats::Table::integer(slots), stats::Table::integer(rtmp_v),
         stats::Table::num(mean_delay, 1),
         rtmp_v * 2 > audience ? stats::Table::num(rtmp_e2e, 1) + "s"
                               : stats::Table::num(hls_e2e, 1) + "s",
         stats::Table::num(cpu, 1),
         slots == 100 ? "<- Periscope's policy" : ""});
  }
  table.print();
  std::printf("\nDelays: RTMP %.1fs vs HLS %.1fs. Every extra interactive "
              "slot costs ~%.2f CPU%% of one core per broadcast; at 100 "
              "slots a single server saturates near %d concurrent popular "
              "broadcasts.\n",
              rtmp_e2e, hls_e2e, model.frame_push_us * 25.0 / 1e4,
              static_cast<int>(100.0 /
                               (model.rtmp_cpu_percent(100, 25.0))));
  return 0;
}
