// Ablation: heart/comment feedback lag by delivery path (§1's motivation,
// quantified on the full service).
//
// "A 'lagging' audience seeing a delayed version of the stream will
// produce delayed 'hearts,' which will be misinterpreted by the
// broadcaster as positive feedback for a later event in the stream."
//
// We run broadcasts on the LivestreamService, let RTMP and HLS viewers
// heart the same moments, and measure how stale each reaction is when it
// reaches the broadcaster -- under the deployed buffer (P=9 s) and the
// paper's proposed P=6 s HLS client.
#include <cstdio>

#include "livesim/core/service.h"
#include "livesim/stats/report.h"

namespace {
using namespace livesim;

struct LagResult {
  double rtmp_mean = 0, hls_mean = 0;
};

LagResult run(DurationUs hls_prebuffer, std::uint64_t seed) {
  sim::Simulator sim;
  const auto catalog = geo::DatacenterCatalog::paper_footprint();
  core::LivestreamService::Config cfg;
  cfg.rtmp_slot_cap = 10;
  cfg.session_defaults.hls_prebuffer = hls_prebuffer;
  cfg.seed = seed;
  core::LivestreamService service(sim, catalog, cfg);

  Rng rng(seed + 1);
  geo::UserGeoSampler geo_sampler;
  for (int b = 0; b < 6; ++b) {
    const auto id = service.start_broadcast(geo_sampler.sample(rng),
                                            2 * time::kMinute);
    std::vector<core::LivestreamService::ViewerHandle> handles;
    for (int v = 0; v < 30; ++v) {
      if (auto h = service.join(id, geo_sampler.sample(rng)))
        handles.push_back(*h);
    }
    // Everyone hearts at the same three stream moments.
    for (TimeUs t : {40 * time::kSecond, 70 * time::kSecond,
                     100 * time::kSecond}) {
      sim.schedule_at(t, [&service, handles] {
        for (const auto& h : handles) service.send_heart(h);
      });
    }
    sim.run();
  }
  return {service.rtmp_feedback_lag_s().mean(),
          service.hls_feedback_lag_s().mean()};
}
}  // namespace

int main() {
  using namespace livesim;
  stats::print_banner("Ablation: feedback (heart) lag by delivery path");
  stats::Table table({"HLS pre-buffer", "RTMP lag(s)", "HLS lag(s)",
                      "HLS:RTMP ratio"});
  for (DurationUs p : {9 * time::kSecond, 6 * time::kSecond,
                       3 * time::kSecond}) {
    const auto r = run(p, 40 + static_cast<std::uint64_t>(p));
    table.add_row({stats::Table::num(time::to_seconds(p), 0) + "s",
                   stats::Table::num(r.rtmp_mean, 1),
                   stats::Table::num(r.hls_mean, 1),
                   stats::Table::num(r.hls_mean / r.rtmp_mean, 1) + "x"});
  }
  table.print();
  std::printf(
      "\nRTMP viewers' applause refers to ~1.5 s ago -- usable feedback. "
      "HLS viewers applaud moments ~10 s stale with the deployed 9 s "
      "buffer; the paper's 6 s client claws back ~3 s of interactivity "
      "for the entire non-privileged audience.\n");
  return 0;
}
