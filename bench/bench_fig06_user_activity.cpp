// Figure 6: distribution of broadcast views and creation over users.
// Paper shape: activity is highly skewed on both services; the most
// active 15% of Periscope viewers watch ~10x more broadcasts than the
// median user.
#include <cstdio>

#include "livesim/stats/report.h"
#include "livesim/workload/generator.h"

namespace {
using namespace livesim;

void report(const char* name, const workload::Dataset& ds) {
  stats::Sampler views, creates;
  for (const auto& u : ds.users) {
    if (u.broadcasts_viewed > 0) views.add(u.broadcasts_viewed);
    if (u.broadcasts_created > 0) creates.add(u.broadcasts_created);
  }
  std::printf("\n%s (active users: %zu viewers, %zu creators)\n", name,
              views.size(), creates.size());
  std::printf("%-10s  %-10s  %-10s\n", "count", "viewed", "created");
  for (double p : {1.0, 3.0, 10.0, 30.0, 100.0, 1000.0, 10000.0}) {
    std::printf("%-10.0f  %-10.3f  %-10.3f\n", p, views.cdf_at(p),
                creates.cdf_at(p));
  }
  std::printf("top-15%% viewer : median viewer = %.1fx (paper: ~10x)\n",
              views.quantile(0.85) / std::max(1.0, views.median()));
  std::printf("top-1%% creator made %.0f broadcasts vs median %.0f\n",
              creates.quantile(0.99), creates.median());
}
}  // namespace

int main() {
  using namespace livesim;
  stats::print_banner(
      "Figure 6: distribution of broadcast views/creation over users");
  workload::Generator pgen(workload::AppProfile::periscope(), 1.0 / 200.0, 6);
  const auto periscope = pgen.generate();
  report("Periscope", periscope);
  workload::Generator mgen(workload::AppProfile::meerkat(), 1.0 / 4.0, 6);
  const auto meerkat = mgen.generate();
  report("Meerkat", meerkat);
  return 0;
}
