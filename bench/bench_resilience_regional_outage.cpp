// Correlated regional failures & edge-to-edge failover.
//
// Part 1 sweeps the blackout radius of a regional outage over the §4.3
// crawled traces (analysis/resilience.h): as the radius grows, more edge
// PoPs go dark together, the affected-viewer fraction and stall ratio
// rise, and failover latency grows as survivors re-anycast ever farther.
// The zero-radius row is the contract scripts/check_resilience.sh greps
// for: a single-PoP death must re-anycast 100% of its viewers (failovers
// == affected) with zero orphans.
//
// Part 2 certifies the determinism contract: the same seed produces a
// bit-identical RegionalOutageStats at threads {1, 2, 8} (per-trace RNG
// substreams; the dark set is computed once).
//
// Part 3 is an event-level demo inside full sessions: a fault::
// FaultScenario blackout kills the edge all of a session's HLS viewers
// sit on, and every one re-anycasts to the next-nearest live edge
// (second pipeline flush counted in the edge-failover latency ledger);
// then LivestreamService::inject_scenario shares a single expanded
// outage across several concurrent broadcasts.
//
// Usage: bench_resilience_regional_outage [broadcasts]   (default 600)
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "livesim/analysis/resilience.h"
#include "livesim/core/service.h"
#include "livesim/fault/scenario.h"
#include "livesim/stats/report.h"

namespace {
using namespace livesim;

// Position-sensitive FNV-style fingerprint: every sample (bit pattern,
// insertion order) and every counter is mixed in, so any reordering or
// single-ULP drift across thread counts shows up.
std::uint64_t fingerprint(const analysis::RegionalOutageStats& r) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
  };
  auto mix_samples = [&](const stats::Sampler& s) {
    for (double x : s.samples()) {
      std::uint64_t bits;
      static_assert(sizeof(bits) == sizeof(x), "double is 64-bit");
      std::memcpy(&bits, &x, sizeof(bits));
      mix(bits);
    }
  };
  mix_samples(r.stall_ratio);
  mix_samples(r.failover_latency_s);
  mix(r.counters.viewers);
  mix(r.counters.affected);
  mix(r.counters.failovers);
  mix(r.counters.orphaned);
  mix(static_cast<std::uint64_t>(r.dark_edges));
  return h;
}

analysis::RegionalOutageConfig config_for_radius(double radius_km) {
  analysis::RegionalOutageConfig cfg;
  cfg.radius_km = radius_km;
  cfg.seed = 42;
  cfg.threads = 0;  // all hardware threads; results identical regardless
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace livesim;
  int broadcasts = 600;
  if (argc > 1) broadcasts = std::atoi(argv[1]);
  if (broadcasts <= 0) broadcasts = 600;

  analysis::TraceSetConfig trace_cfg;
  trace_cfg.broadcasts = broadcasts;
  trace_cfg.broadcast_len = 2 * time::kMinute;
  trace_cfg.threads = 0;
  const auto traces = analysis::generate_traces(trace_cfg);
  const auto catalog = geo::DatacenterCatalog::paper_footprint();

  // --- Part 1: outage-radius sweep ------------------------------------
  stats::print_banner(
      "Regional blackout: viewer experience vs outage radius (Frankfurt)");
  const double radii[] = {0.0, 1000.0, 3000.0, 6000.0, 10000.0};
  stats::Table sweep({"Radius km", "Dark edges", "Affected %", "Stall p50",
                      "Stall p90", "Failover p50 (s)", "Orphaned %"});
  for (double radius : radii) {
    const auto r = analysis::regional_resilience_experiment(
        traces, catalog, config_for_radius(radius));
    const double denom =
        r.counters.viewers ? static_cast<double>(r.counters.viewers) : 1.0;
    sweep.add_row(
        {stats::Table::num(radius, 0),
         stats::Table::integer(static_cast<std::int64_t>(r.dark_edges)),
         stats::Table::num(
             100.0 * static_cast<double>(r.counters.affected) / denom, 2),
         stats::Table::num(r.stall_ratio.median(), 4),
         stats::Table::num(r.stall_ratio.quantile(0.90), 4),
         r.failover_latency_s.empty()
             ? "-"
             : stats::Table::num(r.failover_latency_s.median(), 2),
         stats::Table::num(
             100.0 * static_cast<double>(r.counters.orphaned) / denom, 2)});
    if (radius == 0.0) {
      // The greppable contract: a single dead PoP re-anycasts every one
      // of its viewers -- no orphans, failovers == affected.
      std::printf("zero-radius contract: dark_edges=%zu affected=%llu "
                  "failovers=%llu orphaned=%llu\n",
                  r.dark_edges,
                  static_cast<unsigned long long>(r.counters.affected),
                  static_cast<unsigned long long>(r.counters.failovers),
                  static_cast<unsigned long long>(r.counters.orphaned));
      if (r.dark_edges != 1 ||
          r.counters.failovers != r.counters.affected ||
          r.counters.orphaned != 0 || r.counters.affected == 0) {
        std::printf("zero-radius contract VIOLATED\n");
        return 1;
      }
    }
  }
  sweep.print();
  std::printf("\nShape: a wider blackout darkens more PoPs, touches more "
              "viewers, and pushes survivors onto farther edges (higher "
              "failover latency); orphans appear only when the whole "
              "footprint is dark.\n");

  // --- Part 2: thread-count determinism -------------------------------
  stats::print_banner("Determinism: same seed, threads {1, 2, 8}");
  auto det_cfg = config_for_radius(3000.0);
  std::uint64_t ref = 0;
  bool all_identical = true;
  for (unsigned threads : {1u, 2u, 8u}) {
    det_cfg.threads = threads;
    const auto r =
        analysis::regional_resilience_experiment(traces, catalog, det_cfg);
    const std::uint64_t fp = fingerprint(r);
    if (threads == 1) ref = fp;
    const bool identical = fp == ref;
    all_identical = all_identical && identical;
    std::printf("threads=%u fingerprint=%016llx identical: %s\n", threads,
                static_cast<unsigned long long>(fp),
                identical ? "yes" : "NO -- BUG");
  }
  if (!all_identical) return 1;

  // --- Part 3a: edge death inside a full session ----------------------
  stats::print_banner(
      "Session demo: the only edge in use dies at t=20s; everyone "
      "re-anycasts");
  {
    sim::Simulator sim;
    core::SessionConfig scfg;
    scfg.broadcast_len = 60 * time::kSecond;
    scfg.rtmp_viewers = 0;
    scfg.hls_viewers = 6;
    scfg.global_viewers = false;  // all six sit on the broadcaster's edge
    scfg.seed = 7;
    fault::FaultScenario scenario;
    fault::RegionalBlackoutSpec spec;
    spec.at = 20 * time::kSecond;
    spec.duration = 15 * time::kSecond;
    spec.center = scfg.broadcaster_location;
    spec.radius_km = 0.0;  // exactly the PoP the viewers are attached to
    scenario.add(spec);
    scfg.faults = scenario.expand(catalog, scfg.seed);

    core::BroadcastSession session(sim, catalog, scfg);
    session.start();
    sim.run();
    session.finalize();

    std::printf("edge failovers:    %llu of %u HLS viewers\n",
                static_cast<unsigned long long>(session.edge_failovers()),
                scfg.hls_viewers);
    std::printf("orphaned viewers:  %llu\n",
                static_cast<unsigned long long>(session.orphaned_viewers()));
    if (session.edge_failover_latency_s().count() > 0)
      std::printf("edge failover latency: %.2fs mean (death -> first chunk "
                  "via the new edge, second flush included)\n",
                  session.edge_failover_latency_s().mean());
    if (session.edge_failovers() != scfg.hls_viewers ||
        session.orphaned_viewers() != 0) {
      std::printf("EDGE FAILOVER INCOMPLETE -- expected every HLS viewer "
                  "to re-anycast with zero orphans\n");
      return 1;
    }
  }

  // --- Part 3b: one scenario shared by concurrent broadcasts ----------
  stats::print_banner(
      "Service demo: one scripted outage injected into every live "
      "broadcast");
  {
    sim::Simulator sim;
    core::LivestreamService::Config cfg;
    cfg.rtmp_slot_cap = 0;  // everyone on HLS for this demo
    cfg.session_defaults.broadcast_len = 60 * time::kSecond;
    cfg.session_defaults.rtmp_viewers = 0;
    cfg.session_defaults.hls_viewers = 0;
    cfg.seed = 11;
    core::LivestreamService service(sim, catalog, cfg);

    const geo::GeoPoint sf{37.77, -122.42};
    std::vector<BroadcastId> ids;
    for (int b = 0; b < 3; ++b) {
      const BroadcastId id = service.start_broadcast(sf, 60 * time::kSecond);
      ids.push_back(id);
      for (int v = 0; v < 4; ++v) (void)service.join(id, sf);
    }

    fault::FaultScenario scenario;
    fault::RegionalBlackoutSpec spec;
    spec.at = 20 * time::kSecond;
    spec.duration = 15 * time::kSecond;
    spec.center = sf;
    spec.radius_km = 0.0;
    scenario.add(spec);
    const std::size_t hit = service.inject_scenario(scenario, cfg.seed);
    std::printf("scenario injected into %zu live broadcasts\n", hit);

    sim.run();
    std::uint64_t failovers = 0, orphans = 0, faults = 0;
    for (BroadcastId id : ids) {
      core::BroadcastSession* s = service.session(id);
      s->finalize();
      failovers += s->edge_failovers();
      orphans += s->orphaned_viewers();
      faults += s->faults_injected();
    }
    std::printf("shared outage: faults=%llu edge_failovers=%llu "
                "orphaned=%llu across %zu broadcasts\n",
                static_cast<unsigned long long>(faults),
                static_cast<unsigned long long>(failovers),
                static_cast<unsigned long long>(orphans), ids.size());
    if (hit != ids.size() || faults == 0 || failovers != 12 || orphans != 0) {
      std::printf("SERVICE SCENARIO INJECTION FAILED -- expected all 12 "
                  "viewers to re-anycast in every broadcast\n");
      return 1;
    }
  }

  std::printf("\nall checks passed\n");
  return 0;
}
