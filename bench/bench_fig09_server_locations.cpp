// Figures 8 & 9: CDN anatomy and server locations.
//
// Figure 8 is architectural: control channel (HTTPS), video channel
// (RTMP via Wowza for the first ~100 viewers, HLS via Fastly beyond),
// message channel (PubNub). Figure 9 maps Wowza's 8 EC2 datacenters and
// Fastly's 23 sites, with 6/8 Wowza sites co-located with a Fastly site
// in the same city (7/8 on the same continent; South America excepted).
#include <cstdio>

#include "livesim/geo/datacenters.h"
#include "livesim/stats/report.h"

int main() {
  using namespace livesim;
  const auto catalog = geo::DatacenterCatalog::paper_footprint();

  stats::print_banner("Figure 8: delivery channels");
  std::printf(
      "  control: app <-> Periscope server over HTTPS (broadcast token)\n"
      "  video:   broadcaster --RTMP--> Wowza (8 EC2 DCs)\n"
      "           first ~100 viewers <--RTMP-- Wowza (push, low delay)\n"
      "           later viewers     <--HLS--- Fastly (poll, scalable)\n"
      "  message: comments/hearts via PubNub over HTTPS\n");

  stats::print_banner("Figure 9: Wowza and Fastly server locations");
  stats::Table table({"Site", "Role", "Continent", "Lat", "Lon",
                      "Co-located Fastly?"});
  auto continent = [](geo::Continent c) {
    switch (c) {
      case geo::Continent::kNorthAmerica: return "N.America";
      case geo::Continent::kSouthAmerica: return "S.America";
      case geo::Continent::kEurope: return "Europe";
      case geo::Continent::kAsia: return "Asia";
      case geo::Continent::kOceania: return "Oceania";
    }
    return "?";
  };
  int colocated = 0;
  for (const auto* dc : catalog.ingest_sites()) {
    const auto* co = catalog.colocated_edge(dc->id);
    if (co != nullptr) ++colocated;
    table.add_row({dc->city, "Wowza(ingest)", continent(dc->continent),
                   stats::Table::num(dc->location.lat_deg, 2),
                   stats::Table::num(dc->location.lon_deg, 2),
                   co != nullptr ? "yes" : "no"});
  }
  for (const auto* dc : catalog.edge_sites()) {
    table.add_row({dc->city, "Fastly(edge)", continent(dc->continent),
                   stats::Table::num(dc->location.lat_deg, 2),
                   stats::Table::num(dc->location.lon_deg, 2), "-"});
  }
  table.print();
  std::printf("\nWowza sites: %zu (paper: 8 EC2 datacenters)\n",
              catalog.ingest_sites().size());
  std::printf("Fastly sites: %zu (paper: 23 datacenters in 2015)\n",
              catalog.edge_sites().size());
  std::printf("Co-located pairs: %d of 8 (paper: 6 of 8, Sao Paulo has no "
              "South-American Fastly site)\n",
              colocated);

  // Assignment demo: where users land (anycast / nearest-ingest).
  stats::print_banner("Assignment examples (nearest-site policy)");
  const struct {
    const char* who;
    geo::GeoPoint at;
  } users[] = {{"Broadcaster, Santa Barbara", {34.42, -119.70}},
               {"Broadcaster, Rio de Janeiro", {-22.91, -43.17}},
               {"Viewer, Berlin", {52.52, 13.40}},
               {"Viewer, Seoul", {37.57, 126.98}}};
  for (const auto& u : users) {
    const auto& ingest = catalog.nearest(u.at, geo::CdnRole::kIngest);
    const auto& edge = catalog.nearest(u.at, geo::CdnRole::kEdge);
    std::printf("  %-28s -> ingest %-10s edge %-10s\n", u.who,
                ingest.city.c_str(), edge.city.c_str());
  }
  return 0;
}
