// Ablation: pull-on-poll vs proactive chunk replication (§5.3's design).
//
// Periscope/Fastly pull: a chunk travels to an edge only when the first
// viewer poll after expiry triggers the fetch -- cheap for the long tail
// of tiny broadcasts, but the trigger wait and the gateway hop sit on the
// delay path. The alternative is pushing every chunk to every edge (or
// only to edges with active viewers) as soon as it is sealed. This bench
// measures the delay/egress trade-off over the real broadcast popularity
// distribution.
#include <cstdio>

#include "livesim/cdn/w2f.h"
#include "livesim/stats/report.h"
#include "livesim/stats/sampler.h"
#include "livesim/workload/generator.h"

namespace {
using namespace livesim;

struct Strategy {
  const char* name;
  bool push = false;        // proactive vs poll-triggered
  bool only_active = false; // restrict to edges with >=1 viewer
};
}  // namespace

int main() {
  using namespace livesim;
  const auto catalog = geo::DatacenterCatalog::paper_footprint();
  geo::LatencyModel latency;
  cdn::W2FModel model(catalog, latency);
  Rng rng(88);

  // Popularity distribution: how many edges actually have viewers.
  workload::Generator gen(workload::AppProfile::periscope(), 1.0 / 2000.0, 9);
  const auto ds = gen.generate();

  const auto edges = catalog.edge_sites();
  const auto ingests = catalog.ingest_sites();

  const Strategy strategies[] = {
      {"pull on poll (deployed)", false, false},
      {"push to active edges", true, true},
      {"push to all edges", true, false},
  };

  stats::print_banner(
      "Ablation: chunk distribution strategy (delay vs inter-DC egress)");
  stats::Table table({"Strategy", "W2F median(s)", "W2F p90(s)",
                      "Egress chunks/broadcast-chunk", "Note"});

  for (const auto& strat : strategies) {
    stats::Sampler w2f;
    double egress = 0;
    std::uint64_t samples = 0;
    for (const auto& b : ds.broadcasts) {
      if (samples > 4000) break;
      if (b.hls_viewers() == 0) continue;
      ++samples;
      const auto* ingest =
          ingests[static_cast<std::size_t>(rng.uniform_int(
              0, static_cast<std::int64_t>(ingests.size()) - 1))];
      // Edges with viewers: popularity decides the spread (anycast).
      const auto active_edges = std::min<std::uint64_t>(
          edges.size(), 1 + b.hls_viewers() / 40);
      const std::uint64_t replicated =
          strat.push && !strat.only_active ? edges.size() : active_edges;
      egress += static_cast<double>(replicated);

      // Delay for a viewer at a random active edge.
      const auto* edge = edges[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(active_edges) - 1))];
      DurationUs d =
          model.sample_transfer(ingest->id, edge->id, 200000, rng);
      if (!strat.push) {
        // Poll-triggered: expiry notice + waiting for the first poll
        // (audience-size dependent: more viewers poll sooner).
        const double polls_per_s =
            static_cast<double>(std::max(1u, b.hls_viewers())) / 2.8;
        const DurationUs wait = static_cast<DurationUs>(
            rng.exponential(1.0 / polls_per_s) *
            static_cast<double>(time::kSecond));
        d += latency.sample_delay(
                 catalog.distance_km(ingest->id, edge->id), rng) +
             std::min<DurationUs>(wait, 3 * time::kSecond);
      }
      w2f.add(time::to_seconds(d));
    }
    table.add_row(
        {strat.name, stats::Table::num(w2f.median(), 2),
         stats::Table::num(w2f.quantile(0.9), 2),
         stats::Table::num(egress / static_cast<double>(samples), 1),
         strat.push ? (strat.only_active ? "needs viewer tracking" : "23x "
                                           "egress for every broadcast")
                    : "first poller pays the trigger wait"});
  }
  table.print();
  std::printf(
      "\nWith 5.77%% of broadcasts having any HLS viewer and most having "
      "few, pull-on-poll wastes no egress on the long tail -- the paper's "
      "CDN choice; push-to-active buys back the trigger wait at ~the same "
      "egress once viewer tracking exists.\n");
  return 0;
}
