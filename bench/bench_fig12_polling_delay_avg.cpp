// Figure 12: CDF of average polling delay per broadcast, for 2 s / 3 s /
// 4 s polling intervals (trace-driven simulation over crawled broadcasts).
//
// Paper shape: with 2 s and 4 s intervals the average delay concentrates
// at half the interval; with 3 s (resonant with the ~3 s chunk cadence)
// the per-broadcast average spreads widely between ~1 s and ~2 s.
#include <cstdio>

#include "livesim/analysis/experiments.h"
#include "livesim/stats/csv.h"
#include "livesim/stats/report.h"

int main() {
  using namespace livesim;
  // threads=0: shard trace generation and the polling sweeps over every
  // hardware thread. Results are seed-deterministic at any thread count.
  const unsigned threads = 0;
  analysis::TraceSetConfig cfg;
  cfg.broadcasts = 1600;  // paper: 16,013 crawled broadcasts
  cfg.threads = threads;
  const auto traces = analysis::generate_traces(cfg);

  stats::print_banner(
      "Figure 12: CDF of average polling delay per broadcast");
  const std::vector<double> points = stats::linear_points(0.0, 3.0, 13);
  std::printf("%-8s  %-8s  %-8s  %-8s\n", "delay(s)", "T=2s", "T=3s", "T=4s");

  std::vector<analysis::PollingStats> results;
  for (DurationUs interval : {2 * time::kSecond, 3 * time::kSecond,
                              4 * time::kSecond}) {
    results.push_back(analysis::polling_experiment(
        traces, interval, 300 * time::kMillisecond, 99, threads));
  }
  for (double p : points) {
    std::printf("%-8.2f  %-8.3f  %-8.3f  %-8.3f\n", p,
                results[0].per_broadcast_mean_s.cdf_at(p),
                results[1].per_broadcast_mean_s.cdf_at(p),
                results[2].per_broadcast_mean_s.cdf_at(p));
  }
  stats::CsvWriter csv({"delay_s", "T2", "T3", "T4"});
  for (double p : stats::linear_points(0.0, 3.0, 61))
    csv.add_row({p, results[0].per_broadcast_mean_s.cdf_at(p),
                 results[1].per_broadcast_mean_s.cdf_at(p),
                 results[2].per_broadcast_mean_s.cdf_at(p)});
  if (auto path = csv.write(stats::CsvWriter::env_dir(), "fig12_polling_avg"))
    std::printf("wrote %s\n", path->c_str());

  std::printf("\nmean of per-broadcast averages: T=2s: %.2f (paper ~1.0), "
              "T=3s: %.2f (paper: spread 1-2), T=4s: %.2f (paper ~2.0)\n",
              results[0].per_broadcast_mean_s.mean(),
              results[1].per_broadcast_mean_s.mean(),
              results[2].per_broadcast_mean_s.mean());
  std::printf("spread (p90-p10) of per-broadcast average: T=2s: %.2f, "
              "T=3s: %.2f, T=4s: %.2f  (3 s resonance -> widest spread)\n",
              results[0].per_broadcast_mean_s.quantile(0.9) -
                  results[0].per_broadcast_mean_s.quantile(0.1),
              results[1].per_broadcast_mean_s.quantile(0.9) -
                  results[1].per_broadcast_mean_s.quantile(0.1),
              results[2].per_broadcast_mean_s.quantile(0.9) -
                  results[2].per_broadcast_mean_s.quantile(0.1));
  return 0;
}
