// Figure 13: CDF of the polling-delay standard deviation per broadcast
// for 2 s / 3 s / 4 s polling intervals.
//
// Paper shape: polling delay varies substantially *within* each broadcast
// (viewers cannot predict chunk arrivals); larger intervals widen the
// within-broadcast variation, and the jitter feeds the client buffer.
#include <cstdio>

#include "livesim/analysis/experiments.h"
#include "livesim/stats/report.h"

int main() {
  using namespace livesim;
  const unsigned threads = 0;  // shard across all hardware threads
  analysis::TraceSetConfig cfg;
  cfg.broadcasts = 1600;
  cfg.threads = threads;
  const auto traces = analysis::generate_traces(cfg);

  stats::print_banner(
      "Figure 13: CDF of polling delay std-dev per broadcast");
  std::printf("%-8s  %-8s  %-8s  %-8s\n", "std(s)", "T=2s", "T=3s", "T=4s");

  std::vector<analysis::PollingStats> results;
  for (DurationUs interval : {2 * time::kSecond, 3 * time::kSecond,
                              4 * time::kSecond}) {
    results.push_back(analysis::polling_experiment(
        traces, interval, 300 * time::kMillisecond, 99, threads));
  }
  for (double p : stats::linear_points(0.0, 2.0, 11)) {
    std::printf("%-8.2f  %-8.3f  %-8.3f  %-8.3f\n", p,
                results[0].per_broadcast_std_s.cdf_at(p),
                results[1].per_broadcast_std_s.cdf_at(p),
                results[2].per_broadcast_std_s.cdf_at(p));
  }
  std::printf("\nmedian within-broadcast std: T=2s: %.2f, T=3s: %.2f, "
              "T=4s: %.2f\n",
              results[0].per_broadcast_std_s.median(),
              results[1].per_broadcast_std_s.median(),
              results[2].per_broadcast_std_s.median());
  std::printf("(uniform-phase theory: T/sqrt(12) = 0.58 / 0.87 / 1.15; the "
              "3 s resonance trades spread across broadcasts for lower "
              "within-broadcast variance)\n");
  return 0;
}
