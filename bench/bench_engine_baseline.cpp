// Engine macro-benchmark: the tracked perf baseline for the event engine.
//
// Runs three workload mixes straight against sim::Simulator and reports
// events/sec, ns/event, and peak RSS, then writes the results to a JSON
// file (BENCH_engine.json by default) so CI can archive the numbers and
// a future engine change can be compared against a recorded baseline.
//
//   schedule_run   -- schedule N events at pseudo-random times, drain.
//                     The pure scheduling + dispatch hot path.
//   cancel_heavy   -- schedule N, cancel every other handle, drain.
//                     The O(1)-cancel + indexed-heap-splice path
//                     (retransmit-timer-style workloads).
//   periodic_heavy -- K PeriodicProcesses ticking through T of simulated
//                     time. The re-arm-in-place fast path.
//
// Each mix runs `reps` times. Wall-clock numbers come from the fastest
// rep (least scheduler noise); every rep also folds its observable firing
// order into an FNV-1a fingerprint, and all reps must agree -- the
// "fingerprint=... identical: yes" contract lines below are grepped by
// CI exactly like the resilience determinism contracts.
//
// Usage: bench_engine_baseline [out.json] [n_events] [reps]
//        defaults: BENCH_engine.json 1000000 3
#include <chrono>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <vector>

#include "livesim/sim/simulator.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace {
using namespace livesim;

struct FnvMixer {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  void mix(std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
  }
};

long peak_rss_kb() {
#if defined(__unix__) || defined(__APPLE__)
  rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) == 0) return ru.ru_maxrss;
#endif
  return 0;
}

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct MixResult {
  const char* name = "";
  std::uint64_t events = 0;     // events actually dispatched per rep
  std::uint64_t best_ns = 0;    // fastest rep, wall clock
  std::uint64_t fingerprint = 0;
  bool deterministic = true;    // all reps fingerprinted identically
  double ns_per_event() const {
    return events > 0 ? static_cast<double>(best_ns) /
                            static_cast<double>(events)
                      : 0.0;
  }
  double events_per_sec() const {
    return best_ns > 0 ? static_cast<double>(events) * 1e9 /
                             static_cast<double>(best_ns)
                       : 0.0;
  }
};

// schedule_run: the BM_EventQueueScheduleRun shape, at macro scale.
std::uint64_t run_schedule_mix(std::size_t n, FnvMixer& fp,
                               std::uint64_t* dispatched) {
  sim::Simulator sim;
  std::uint64_t sink = 0;
  const std::uint64_t t0 = now_ns();
  for (std::size_t i = 0; i < n; ++i)
    sim.schedule_at(static_cast<TimeUs>((i * 7919) % 262144),
                    [&sink] { ++sink; });
  sim.run();
  const std::uint64_t elapsed = now_ns() - t0;
  fp.mix(sink);
  fp.mix(static_cast<std::uint64_t>(sim.now()));
  fp.mix(sim.events_processed());
  *dispatched = sim.events_processed();
  return elapsed;
}

// cancel_heavy: arm n timers, defuse every other one, drain the rest.
std::uint64_t run_cancel_mix(std::size_t n, FnvMixer& fp,
                             std::uint64_t* dispatched) {
  sim::Simulator sim;
  std::vector<sim::EventHandle> handles(n);
  std::uint64_t sink = 0;
  const std::uint64_t t0 = now_ns();
  for (std::size_t i = 0; i < n; ++i)
    handles[i] = sim.schedule_at(static_cast<TimeUs>((i * 7919) % 262144),
                                 [&sink] { ++sink; });
  std::uint64_t cancelled = 0;
  for (std::size_t i = 0; i < n; i += 2)
    cancelled += sim.cancel(handles[i]) ? 1u : 0u;
  sim.run();
  const std::uint64_t elapsed = now_ns() - t0;
  fp.mix(sink);
  fp.mix(cancelled);
  fp.mix(static_cast<std::uint64_t>(sim.now()));
  fp.mix(sim.events_processed());
  // Every schedule and every cancel is engine work: count them all.
  *dispatched = sim.events_processed() + cancelled;
  return elapsed;
}

// periodic_heavy: k processes x enough ticks to total ~n firings.
std::uint64_t run_periodic_mix(std::size_t n, FnvMixer& fp,
                               std::uint64_t* dispatched) {
  sim::Simulator sim;
  constexpr std::size_t kProcs = 64;
  const auto horizon =
      static_cast<TimeUs>(n / kProcs) * 10;  // interval 10us each
  std::uint64_t sink = 0;
  std::vector<std::unique_ptr<sim::PeriodicProcess>> procs;
  procs.reserve(kProcs);
  const std::uint64_t t0 = now_ns();
  for (std::size_t p = 0; p < kProcs; ++p)
    procs.push_back(std::make_unique<sim::PeriodicProcess>(
        sim, static_cast<TimeUs>(p), 10,
        [&sink](sim::PeriodicProcess&) { ++sink; }));
  sim.run_until(horizon);
  for (auto& p : procs) p->stop();
  const std::uint64_t elapsed = now_ns() - t0;
  fp.mix(sink);
  fp.mix(static_cast<std::uint64_t>(sim.now()));
  fp.mix(sim.events_processed());
  *dispatched = sim.events_processed();
  return elapsed;
}

template <typename MixFn>
MixResult measure(const char* name, std::size_t n, int reps, MixFn mix) {
  MixResult r;
  r.name = name;
  r.best_ns = ~0ULL;
  std::uint64_t first_fp = 0;
  for (int rep = 0; rep < reps; ++rep) {
    FnvMixer fp;
    std::uint64_t dispatched = 0;
    const std::uint64_t ns = mix(n, fp, &dispatched);
    if (ns < r.best_ns) r.best_ns = ns;
    r.events = dispatched;
    if (rep == 0) {
      first_fp = fp.h;
    } else if (fp.h != first_fp) {
      r.deterministic = false;
    }
  }
  r.fingerprint = first_fp;
  std::printf(
      "engine_baseline mix=%s events=%" PRIu64 " ns_per_event=%.1f"
      " events_per_sec=%.0f fingerprint=%016" PRIx64 " identical: %s\n",
      r.name, r.events, r.ns_per_event(), r.events_per_sec(), r.fingerprint,
      r.deterministic ? "yes" : "NO -- BUG");
  return r;
}

void write_json(const char* path, const std::vector<MixResult>& mixes,
                std::size_t n, int reps) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"bench\": \"engine_baseline\",\n");
  std::fprintf(f, "  \"n_events\": %zu,\n  \"reps\": %d,\n", n, reps);
  std::fprintf(f, "  \"peak_rss_kb\": %ld,\n", peak_rss_kb());
  std::fprintf(f, "  \"mixes\": [\n");
  for (std::size_t i = 0; i < mixes.size(); ++i) {
    const MixResult& m = mixes[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"events\": %" PRIu64
                 ", \"ns_per_event\": %.1f, \"events_per_sec\": %.0f,"
                 " \"fingerprint\": \"%016" PRIx64
                 "\", \"deterministic\": %s}%s\n",
                 m.name, m.events, m.ns_per_event(), m.events_per_sec(),
                 m.fingerprint, m.deterministic ? "true" : "false",
                 i + 1 < mixes.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  const char* out = argc > 1 ? argv[1] : "BENCH_engine.json";
  const std::size_t n =
      argc > 2 ? static_cast<std::size_t>(std::strtoull(argv[2], nullptr, 10))
               : 1000000;
  const int reps = argc > 3 ? std::atoi(argv[3]) : 3;
  if (n == 0 || reps <= 0) {
    std::fprintf(stderr,
                 "usage: bench_engine_baseline [out.json] [n_events] [reps]\n");
    return 1;
  }

  std::printf("== Engine perf baseline (n=%zu, reps=%d) ==\n", n, reps);
  std::vector<MixResult> mixes;
  mixes.push_back(measure("schedule_run", n, reps, run_schedule_mix));
  mixes.push_back(measure("cancel_heavy", n, reps, run_cancel_mix));
  mixes.push_back(measure("periodic_heavy", n, reps, run_periodic_mix));
  std::printf("peak_rss_kb=%ld\n", peak_rss_kb());

  bool all_deterministic = true;
  for (const MixResult& m : mixes) all_deterministic &= m.deterministic;
  std::printf("engine_baseline all mixes deterministic: %s\n",
              all_deterministic ? "yes" : "NO -- BUG");

  write_json(out, mixes, n, reps);
  std::printf("wrote %s\n", out);
  return all_deterministic ? 0 : 1;
}
