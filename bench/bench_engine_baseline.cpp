// Engine macro-benchmark: the tracked perf baseline for the event engine.
//
// Runs three workload mixes straight against sim::Simulator and reports
// events/sec, ns/event, and peak RSS, then writes the results to a JSON
// file (BENCH_engine.json by default) so CI can archive the numbers and
// a future engine change can be compared against a recorded baseline.
//
//   schedule_run   -- schedule N events at pseudo-random times, drain.
//                     The pure scheduling + dispatch hot path.
//   cancel_heavy   -- schedule N, cancel every other handle, drain.
//                     The O(1)-cancel + indexed-heap-splice path
//                     (retransmit-timer-style workloads).
//   periodic_heavy -- K PeriodicProcesses ticking through T of simulated
//                     time. The re-arm-in-place fast path.
//   flash_crowd    -- 100k HLS viewers polling one edge at 2.8 s via the
//                     bucketed PollWheel (one engine event per bucket
//                     tick fans out to the cohort), against the same
//                     crowd as 100k per-viewer PeriodicProcess timers.
//                     Reports ns/viewer-poll and the engine-events-per-
//                     poll-interval reduction the wheel buys.
//
// Each mix runs `reps` times. Wall-clock numbers come from the fastest
// rep (least scheduler noise); every rep also folds its observable firing
// order into an FNV-1a fingerprint, and all reps must agree -- the
// "fingerprint=... identical: yes" contract lines below are grepped by
// CI exactly like the resilience determinism contracts.
//
// Usage: bench_engine_baseline [out.json] [n_events] [reps]
//        defaults: BENCH_engine.json 1000000 3
#include <chrono>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <vector>

#include "livesim/sim/poll_wheel.h"
#include "livesim/sim/simulator.h"
#include "livesim/util/rng.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace {
using namespace livesim;

struct FnvMixer {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  void mix(std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
  }
};

long peak_rss_kb() {
#if defined(__unix__) || defined(__APPLE__)
  rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) == 0) return ru.ru_maxrss;
#endif
  return 0;
}

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct MixResult {
  const char* name = "";
  std::uint64_t events = 0;     // events actually dispatched per rep
  std::uint64_t best_ns = 0;    // fastest rep, wall clock
  std::uint64_t fingerprint = 0;
  bool deterministic = true;    // all reps fingerprinted identically
  double ns_per_event() const {
    return events > 0 ? static_cast<double>(best_ns) /
                            static_cast<double>(events)
                      : 0.0;
  }
  double events_per_sec() const {
    return best_ns > 0 ? static_cast<double>(events) * 1e9 /
                             static_cast<double>(best_ns)
                       : 0.0;
  }
};

// schedule_run: the BM_EventQueueScheduleRun shape, at macro scale.
std::uint64_t run_schedule_mix(std::size_t n, FnvMixer& fp,
                               std::uint64_t* dispatched) {
  sim::Simulator sim;
  std::uint64_t sink = 0;
  const std::uint64_t t0 = now_ns();
  for (std::size_t i = 0; i < n; ++i)
    sim.schedule_at(static_cast<TimeUs>((i * 7919) % 262144),
                    [&sink] { ++sink; });
  sim.run();
  const std::uint64_t elapsed = now_ns() - t0;
  fp.mix(sink);
  fp.mix(static_cast<std::uint64_t>(sim.now()));
  fp.mix(sim.events_processed());
  *dispatched = sim.events_processed();
  return elapsed;
}

// cancel_heavy: arm n timers, defuse every other one, drain the rest.
std::uint64_t run_cancel_mix(std::size_t n, FnvMixer& fp,
                             std::uint64_t* dispatched) {
  sim::Simulator sim;
  std::vector<sim::EventHandle> handles(n);
  std::uint64_t sink = 0;
  const std::uint64_t t0 = now_ns();
  for (std::size_t i = 0; i < n; ++i)
    handles[i] = sim.schedule_at(static_cast<TimeUs>((i * 7919) % 262144),
                                 [&sink] { ++sink; });
  std::uint64_t cancelled = 0;
  for (std::size_t i = 0; i < n; i += 2)
    cancelled += sim.cancel(handles[i]) ? 1u : 0u;
  sim.run();
  const std::uint64_t elapsed = now_ns() - t0;
  fp.mix(sink);
  fp.mix(cancelled);
  fp.mix(static_cast<std::uint64_t>(sim.now()));
  fp.mix(sim.events_processed());
  // Every schedule and every cancel is engine work: count them all.
  *dispatched = sim.events_processed() + cancelled;
  return elapsed;
}

// periodic_heavy: k processes x enough ticks to total ~n firings.
std::uint64_t run_periodic_mix(std::size_t n, FnvMixer& fp,
                               std::uint64_t* dispatched) {
  sim::Simulator sim;
  constexpr std::size_t kProcs = 64;
  const auto horizon =
      static_cast<TimeUs>(n / kProcs) * 10;  // interval 10us each
  std::uint64_t sink = 0;
  std::vector<std::unique_ptr<sim::PeriodicProcess>> procs;
  procs.reserve(kProcs);
  const std::uint64_t t0 = now_ns();
  for (std::size_t p = 0; p < kProcs; ++p)
    procs.push_back(std::make_unique<sim::PeriodicProcess>(
        sim, static_cast<TimeUs>(p), 10,
        [&sink](sim::PeriodicProcess&) { ++sink; }));
  sim.run_until(horizon);
  for (auto& p : procs) p->stop();
  const std::uint64_t elapsed = now_ns() - t0;
  fp.mix(sink);
  fp.mix(static_cast<std::uint64_t>(sim.now()));
  fp.mix(sim.events_processed());
  *dispatched = sim.events_processed();
  return elapsed;
}

// flash_crowd: the §5.2 poll loop at Twitch scale. One hundred thousand
// viewers, one edge, 2.8 s interval. The wheel path pays one engine event
// per non-empty bucket per rotation; the per-viewer-timer baseline pays
// one per viewer. Fan-out work per viewer-poll is the same on both sides
// (ledger toggle + order fingerprint), and because the wheel visits a
// bucket in attach order -- exactly the firing order of same-phase
// timers -- the two observable orders must fingerprint identically.
struct FlashCrowdStats {
  std::uint64_t polls = 0;             // viewer-polls via the wheel
  std::uint64_t wheel_ns = 0;
  std::uint64_t timer_ns = 0;
  std::uint64_t wheel_events_per_interval = 0;
  std::uint64_t timer_events_per_interval = 0;
  bool order_parity = false;           // wheel order == timer order
};

constexpr std::size_t kCrowdViewers = 100000;
constexpr TimeUs kCrowdPeriod = 2800000;  // 2.8 s in us
constexpr std::uint32_t kCrowdBuckets = 64;

std::uint64_t run_flash_crowd_mix(std::size_t n, FnvMixer& fp,
                                  std::uint64_t* dispatched,
                                  FlashCrowdStats* stats) {
  const std::size_t intervals =
      std::max<std::size_t>(2, std::min<std::size_t>(20, n / kCrowdViewers));
  const TimeUs horizon = static_cast<TimeUs>(intervals) * kCrowdPeriod;

  // --- wheel lane ---
  std::uint64_t wheel_events = 0;
  std::uint64_t wheel_ns = 0;
  FnvMixer wheel_order;
  std::uint64_t wheel_polls = 0;
  {
    sim::Simulator sim;
    sim::PollWheel wheel(sim, kCrowdPeriod, kCrowdBuckets);
    std::vector<std::uint8_t> outstanding(kCrowdViewers, 0);
    wheel.set_fanout(
        [&](TimeUs tick, std::uint64_t tag, sim::CohortSlot) {
          wheel_order.mix(tag ^ static_cast<std::uint64_t>(tick));
          outstanding[tag] ^= 1;  // the per-viewer SoA ledger touch
          ++wheel_polls;
        });
    Rng rng(42);
    const std::uint64_t t0 = now_ns();
    for (std::size_t i = 0; i < kCrowdViewers; ++i) {
      const auto raw = static_cast<TimeUs>(
          rng.uniform() * static_cast<double>(kCrowdPeriod));
      wheel.attach(wheel.quantize(raw), i);
    }
    sim.run_until(horizon);
    wheel_ns = now_ns() - t0;
    wheel_events = sim.events_processed();
  }

  // --- per-viewer-timer baseline, identical phases & work ---
  std::uint64_t timer_events = 0;
  std::uint64_t timer_ns = 0;
  FnvMixer timer_order;
  std::uint64_t timer_polls = 0;
  {
    sim::Simulator sim;
    std::vector<std::uint8_t> outstanding(kCrowdViewers, 0);
    std::vector<std::unique_ptr<sim::PeriodicProcess>> procs;
    procs.reserve(kCrowdViewers);
    Rng rng(42);
    const std::uint64_t t0 = now_ns();
    constexpr TimeUs kWidth = kCrowdPeriod / kCrowdBuckets;
    for (std::size_t i = 0; i < kCrowdViewers; ++i) {
      const auto raw = static_cast<TimeUs>(
          rng.uniform() * static_cast<double>(kCrowdPeriod));
      TimeUs t = ((raw + kWidth - 1) / kWidth) * kWidth;  // same quantize
      if (t <= 0) t = kWidth;
      procs.push_back(std::make_unique<sim::PeriodicProcess>(
          sim, t, kCrowdPeriod,
          [&timer_order, &outstanding, &timer_polls, &sim,
           i](sim::PeriodicProcess&) {
            timer_order.mix(static_cast<std::uint64_t>(i) ^
                            static_cast<std::uint64_t>(sim.now()));
            outstanding[i] ^= 1;
            ++timer_polls;
          }));
    }
    sim.run_until(horizon);
    for (auto& p : procs) p->stop();
    timer_ns = now_ns() - t0;
    timer_events = sim.events_processed();
  }

  fp.mix(wheel_order.h);
  fp.mix(wheel_polls);
  fp.mix(wheel_events);
  fp.mix(timer_order.h);
  fp.mix(timer_events);
  *dispatched = wheel_polls;

  if (stats != nullptr) {
    stats->polls = wheel_polls;
    stats->wheel_ns = wheel_ns;
    stats->timer_ns = timer_ns;
    stats->wheel_events_per_interval = wheel_events / intervals;
    stats->timer_events_per_interval = timer_events / intervals;
    stats->order_parity =
        wheel_order.h == timer_order.h && wheel_polls == timer_polls;
  }
  return wheel_ns;
}

template <typename MixFn>
MixResult measure(const char* name, std::size_t n, int reps, MixFn mix) {
  MixResult r;
  r.name = name;
  r.best_ns = ~0ULL;
  std::uint64_t first_fp = 0;
  for (int rep = 0; rep < reps; ++rep) {
    FnvMixer fp;
    std::uint64_t dispatched = 0;
    const std::uint64_t ns = mix(n, fp, &dispatched);
    if (ns < r.best_ns) r.best_ns = ns;
    r.events = dispatched;
    if (rep == 0) {
      first_fp = fp.h;
    } else if (fp.h != first_fp) {
      r.deterministic = false;
    }
  }
  r.fingerprint = first_fp;
  std::printf(
      "engine_baseline mix=%s events=%" PRIu64 " ns_per_event=%.1f"
      " events_per_sec=%.0f fingerprint=%016" PRIx64 " identical: %s\n",
      r.name, r.events, r.ns_per_event(), r.events_per_sec(), r.fingerprint,
      r.deterministic ? "yes" : "NO -- BUG");
  return r;
}

// flash_crowd needs its own driver: besides the standard per-mix line it
// prints the wheel-vs-timer contract lines CI pins (ns/viewer-poll, the
// engine-events-per-interval reduction, and fan-out order parity).
MixResult measure_flash_crowd(std::size_t n, int reps) {
  MixResult r;
  r.name = "flash_crowd";
  r.best_ns = ~0ULL;
  std::uint64_t first_fp = 0;
  FlashCrowdStats stats;
  std::uint64_t best_timer_ns = ~0ULL;
  for (int rep = 0; rep < reps; ++rep) {
    FnvMixer fp;
    std::uint64_t dispatched = 0;
    FlashCrowdStats s;
    const std::uint64_t ns = run_flash_crowd_mix(n, fp, &dispatched, &s);
    if (ns < r.best_ns) r.best_ns = ns;
    if (s.timer_ns < best_timer_ns) best_timer_ns = s.timer_ns;
    r.events = dispatched;
    stats = s;
    if (rep == 0) {
      first_fp = fp.h;
    } else if (fp.h != first_fp) {
      r.deterministic = false;
    }
  }
  r.fingerprint = first_fp;
  std::printf(
      "engine_baseline mix=%s events=%" PRIu64 " ns_per_event=%.1f"
      " events_per_sec=%.0f fingerprint=%016" PRIx64 " identical: %s\n",
      r.name, r.events, r.ns_per_event(), r.events_per_sec(), r.fingerprint,
      r.deterministic ? "yes" : "NO -- BUG");

  const double wheel_ns_per_poll =
      stats.polls > 0
          ? static_cast<double>(r.best_ns) / static_cast<double>(stats.polls)
          : 0.0;
  const double timer_ns_per_poll =
      stats.polls > 0 ? static_cast<double>(best_timer_ns) /
                            static_cast<double>(stats.polls)
                      : 0.0;
  const double reduction =
      stats.wheel_events_per_interval > 0
          ? static_cast<double>(stats.timer_events_per_interval) /
                static_cast<double>(stats.wheel_events_per_interval)
          : 0.0;
  std::printf(
      "engine_baseline flash_crowd viewers=%zu ns_per_viewer_poll=%.1f"
      " (timers: %.1f)\n",
      kCrowdViewers, wheel_ns_per_poll, timer_ns_per_poll);
  std::printf(
      "engine_baseline flash_crowd events_per_interval wheel=%" PRIu64
      " timers=%" PRIu64 " reduction=%.1fx (>=5x: %s)\n",
      stats.wheel_events_per_interval, stats.timer_events_per_interval,
      reduction, reduction >= 5.0 ? "yes" : "NO -- BUG");
  std::printf("engine_baseline flash_crowd fanout order parity"
              " wheel==timers: %s\n",
              stats.order_parity ? "yes" : "NO -- BUG");
  if (reduction < 5.0 || !stats.order_parity) r.deterministic = false;
  return r;
}

void write_json(const char* path, const std::vector<MixResult>& mixes,
                std::size_t n, int reps) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"bench\": \"engine_baseline\",\n");
  std::fprintf(f, "  \"n_events\": %zu,\n  \"reps\": %d,\n", n, reps);
  std::fprintf(f, "  \"peak_rss_kb\": %ld,\n", peak_rss_kb());
  std::fprintf(f, "  \"mixes\": [\n");
  for (std::size_t i = 0; i < mixes.size(); ++i) {
    const MixResult& m = mixes[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"events\": %" PRIu64
                 ", \"ns_per_event\": %.1f, \"events_per_sec\": %.0f,"
                 " \"fingerprint\": \"%016" PRIx64
                 "\", \"deterministic\": %s}%s\n",
                 m.name, m.events, m.ns_per_event(), m.events_per_sec(),
                 m.fingerprint, m.deterministic ? "true" : "false",
                 i + 1 < mixes.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  const char* out = argc > 1 ? argv[1] : "BENCH_engine.json";
  const std::size_t n =
      argc > 2 ? static_cast<std::size_t>(std::strtoull(argv[2], nullptr, 10))
               : 1000000;
  const int reps = argc > 3 ? std::atoi(argv[3]) : 3;
  if (n == 0 || reps <= 0) {
    std::fprintf(stderr,
                 "usage: bench_engine_baseline [out.json] [n_events] [reps]\n");
    return 1;
  }

  std::printf("== Engine perf baseline (n=%zu, reps=%d) ==\n", n, reps);
  std::vector<MixResult> mixes;
  mixes.push_back(measure("schedule_run", n, reps, run_schedule_mix));
  mixes.push_back(measure("cancel_heavy", n, reps, run_cancel_mix));
  mixes.push_back(measure("periodic_heavy", n, reps, run_periodic_mix));
  mixes.push_back(measure_flash_crowd(n, reps));
  std::printf("peak_rss_kb=%ld\n", peak_rss_kb());

  bool all_deterministic = true;
  for (const MixResult& m : mixes) all_deterministic &= m.deterministic;
  std::printf("engine_baseline all mixes deterministic: %s\n",
              all_deterministic ? "yes" : "NO -- BUG");

  write_json(out, mixes, n, reps);
  std::printf("wrote %s\n", out);
  return all_deterministic ? 0 : 1;
}
