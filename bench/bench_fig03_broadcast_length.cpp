// Figure 3: CDF of broadcast length.
// Paper shape: 85% of broadcasts last < 10 minutes on both services;
// Meerkat's distribution is more skewed by a few very long streams.
#include <cstdio>

#include "livesim/stats/report.h"
#include "livesim/workload/generator.h"

int main() {
  using namespace livesim;
  workload::Generator pgen(workload::AppProfile::periscope(), 1.0 / 400.0, 3);
  workload::Generator mgen(workload::AppProfile::meerkat(), 1.0 / 4.0, 3);
  const auto periscope = pgen.generate();
  const auto meerkat = mgen.generate();

  stats::Sampler pdur, mdur;
  for (const auto& b : periscope.broadcasts)
    pdur.add(time::to_seconds(b.length));
  for (const auto& b : meerkat.broadcasts) mdur.add(time::to_seconds(b.length));

  stats::print_banner("Figure 3: CDF of broadcast length");
  const std::vector<double> points = {10,   30,   60,   180,   600,
                                      1800, 3600, 21600, 86400};
  std::printf("%-10s  %-10s  %-10s\n", "length", "Periscope", "Meerkat");
  for (double p : points) {
    std::printf("%-10s  %-10.3f  %-10.3f\n",
                (p < 60    ? stats::Table::num(p, 0) + "s"
                 : p < 3600 ? stats::Table::num(p / 60, 0) + "min"
                            : stats::Table::num(p / 3600, 0) + "h")
                    .c_str(),
                pdur.cdf_at(p), mdur.cdf_at(p));
  }
  std::printf("\n<10 min: Periscope %.1f%%, Meerkat %.1f%% (paper: ~85%% both)\n",
              pdur.fraction_leq(600) * 100, mdur.fraction_leq(600) * 100);
  std::printf("Meerkat long-tail skew: p99 %.0fs vs Periscope p99 %.0fs\n",
              mdur.quantile(0.99), pdur.quantile(0.99));
  return 0;
}
