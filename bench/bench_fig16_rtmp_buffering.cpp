// Figure 16: RTMP -- impact of pre-buffer size on stalling & buffering
// delay (trace-driven simulation over crawled broadcasts).
//
// Paper shape: RTMP streaming is already smooth, so pre-buffering 0.5-1 s
// buys little extra smoothness while adding (slight) delay; ~10% of
// broadcasts suffer >5 s buffering delay caused by bursty frame arrival
// during upload.
#include <cstdio>

#include "livesim/analysis/experiments.h"
#include "livesim/stats/csv.h"
#include "livesim/stats/report.h"

int main() {
  using namespace livesim;
  // threads=0: shard generation + playback simulation over all hardware
  // threads; seed-deterministic at any thread count.
  const unsigned threads = 0;
  analysis::TraceSetConfig cfg;
  cfg.broadcasts = 1600;  // paper: 16,013
  cfg.threads = threads;
  const auto traces = analysis::generate_traces(cfg);

  const DurationUs pre_buffers[] = {0, 500 * time::kMillisecond,
                                    1 * time::kSecond};
  std::vector<analysis::BufferingStats> results;
  for (DurationUs p : pre_buffers)
    results.push_back(
        analysis::rtmp_buffering_experiment(traces, p, 5, threads));

  stats::print_banner("Figure 16(a): RTMP stalling ratio CDF");
  std::printf("%-10s  %-8s  %-8s  %-8s\n", "stall", "P=0s", "P=0.5s", "P=1s");
  for (double p : stats::linear_points(0.0, 0.10, 11)) {
    std::printf("%-10.3f  %-8.3f  %-8.3f  %-8.3f\n", p,
                results[0].stall_ratio.cdf_at(p),
                results[1].stall_ratio.cdf_at(p),
                results[2].stall_ratio.cdf_at(p));
  }

  stats::print_banner("Figure 16(b): RTMP buffering delay CDF");
  std::printf("%-10s  %-8s  %-8s  %-8s\n", "delay(s)", "P=0s", "P=0.5s",
              "P=1s");
  for (double p : stats::linear_points(0.0, 10.0, 11)) {
    std::printf("%-10.1f  %-8.3f  %-8.3f  %-8.3f\n", p,
                results[0].mean_delay_s.cdf_at(p),
                results[1].mean_delay_s.cdf_at(p),
                results[2].mean_delay_s.cdf_at(p));
  }

  stats::CsvWriter delay_csv({"delay_s", "P0", "P05", "P1"});
  for (double p : stats::linear_points(0.0, 10.0, 41))
    delay_csv.add_row({p, results[0].mean_delay_s.cdf_at(p),
                       results[1].mean_delay_s.cdf_at(p),
                       results[2].mean_delay_s.cdf_at(p)});
  if (auto path =
          delay_csv.write(stats::CsvWriter::env_dir(), "fig16b_rtmp_delay"))
    std::printf("wrote %s\n", path->c_str());

  std::printf("\nmedian stall ratio: P=0: %.3f, P=0.5: %.3f, P=1: %.3f "
              "(larger P -> smoother)\n",
              results[0].stall_ratio.median(), results[1].stall_ratio.median(),
              results[2].stall_ratio.median());
  std::printf("median buffering delay: P=0: %.2fs, P=0.5: %.2fs, P=1: %.2fs\n",
              results[0].mean_delay_s.median(),
              results[1].mean_delay_s.median(),
              results[2].mean_delay_s.median());
  std::printf("broadcasts with >5 s delay at P=1: %.1f%% (paper: ~10%%, "
              "caused by bursty uploads)\n",
              results[2].mean_delay_s.fraction_geq(5.0) * 100.0);
  return 0;
}
