// Table 2: basic statistics of the social graphs (Periscope vs Facebook
// vs Twitter). The structural comparison the paper draws: Periscope's
// follow graph resembles Twitter (asymmetric links, negative
// assortativity) more than Facebook (mutual links, positive assortativity,
// highest clustering).
//
// Graphs are generated at 60K nodes (the paper's Periscope graph has 12M);
// absolute clustering/path values shift with scale, but the orderings and
// assortativity signs -- the claims of Table 2 -- are scale-stable.
#include <cstdio>

#include "livesim/social/generators.h"
#include "livesim/stats/report.h"

int main() {
  using namespace livesim;
  constexpr std::uint32_t kNodes = 60000;

  stats::print_banner("Table 2: Basic statistics of the social graphs");
  stats::Table table({"Network", "Nodes", "Edges", "Avg.Degree",
                      "Cluster.Coef", "Avg.Path", "Assort."});

  struct Row {
    const char* name;
    social::GraphGenParams params;
    const char* paper;
  };
  const Row rows[] = {
      {"Periscope", social::GraphGenParams::periscope_like(kNodes),
       "paper: 12M nodes, 231M edges, deg 38.6, cc 0.130, path 3.74, "
       "assort -0.057"},
      {"Facebook", social::GraphGenParams::facebook_like(kNodes),
       "paper: 1.22M nodes, 121M edges, deg 199.6, cc 0.175, path 5.13, "
       "assort +0.17"},
      {"Twitter", social::GraphGenParams::twitter_like(kNodes),
       "paper: 1.62M nodes, 11.3M edges, deg 13.99, cc 0.065, path 6.49, "
       "assort -0.19"},
  };

  for (const auto& row : rows) {
    const social::Graph g = social::generate(row.params);
    Rng rng(7);
    const auto m = social::measure(g, rng, 2500, 16);
    table.add_row({row.name,
                   stats::Table::integer(m.nodes),
                   stats::Table::integer(static_cast<std::int64_t>(m.edges)),
                   stats::Table::num(2.0 * m.mean_degree, 1),  // total degree
                   stats::Table::num(m.clustering, 3),
                   stats::Table::num(m.mean_path, 2),
                   stats::Table::num(m.assortativity, 3)});
  }
  table.print();
  for (const auto& row : rows) std::printf("%-10s %s\n", row.name, row.paper);
  std::printf(
      "\nShape checks: degree FB >> Periscope > Twitter; clustering FB > "
      "Periscope > Twitter;\nassortativity FB positive, Periscope & Twitter "
      "negative (asymmetric follow links).\n");
  return 0;
}
