// Ablation (§8): the paper's proposed alternative architecture -- a
// receiver-driven overlay multicast over geographically clustered
// forwarding servers -- vs the deployed RTMP-unicast and HLS-polling
// designs.
//
// The paper argues the tree gets RTMP-class latency (push, no chunking or
// polling) at HLS-class server cost (forwarding state per *region*, not
// per viewer). This bench measures all three on the same audiences.
#include <cstdio>

#include "livesim/cdn/resource_model.h"
#include "livesim/media/encoder.h"
#include "livesim/overlay/mesh.h"
#include "livesim/overlay/multicast.h"
#include "livesim/stats/accumulator.h"
#include "livesim/stats/report.h"

namespace {
using namespace livesim;

struct MeshRun {
  double mean_delay_s = 0;
  double server_chunks_per_chunk = 0;
};

MeshRun run_mesh(std::uint32_t viewers, std::uint64_t seed) {
  sim::Simulator sim;
  overlay::P2PMesh mesh(sim, {}, Rng(seed));
  for (std::uint32_t i = 0; i < viewers; ++i)
    mesh.join([](const media::Chunk&, TimeUs, std::uint32_t) {});
  media::Chunk c;
  c.duration = 3 * time::kSecond;
  c.size_bytes = 150000;
  for (std::uint64_t s = 0; s < 20; ++s) {
    c.seq = s;
    sim.schedule_at(static_cast<TimeUs>(s) * 3 * time::kSecond,
                    [&mesh, c] { mesh.push_chunk(c); });
  }
  sim.run();
  MeshRun out;
  // Chunked source: upload + chunking + mesh spread + client buffer.
  out.mean_delay_s = 0.3 + 3.0 + mesh.delivery_delay_s().mean() + 4.0;
  out.server_chunks_per_chunk =
      static_cast<double>(mesh.server_egress_chunks()) / 20.0;
  return out;
}

struct TreeRun {
  double mean_delay_s = 0;
  double root_egress_per_frame = 0;  // copies the ingest sends per frame
  std::size_t on_tree_nodes = 0;
  double join_latency_s = 0;
};

TreeRun run_tree(std::uint32_t viewers, std::uint64_t seed) {
  sim::Simulator sim;
  const auto catalog = geo::DatacenterCatalog::paper_footprint();
  const auto root =
      catalog.nearest({37.77, -122.42}, geo::CdnRole::kIngest).id;
  overlay::ForwardingHierarchy hierarchy(catalog, root);
  overlay::MulticastTree::Params p;
  p.interdc_link.bandwidth_bps = 1e9;
  p.viewer_last_mile = net::LastMileProfiles::wifi();
  overlay::MulticastTree tree(sim, catalog, hierarchy, p, Rng(seed));

  stats::Accumulator delay;
  Rng rng(seed + 1);
  geo::UserGeoSampler sampler;
  for (std::uint32_t i = 0; i < viewers; ++i) {
    tree.join(sampler.sample(rng),
              [&delay](const media::VideoFrame& f, TimeUs at) {
                delay.add(time::to_seconds(at - f.capture_ts));
              });
  }
  sim.run();  // all grafts complete

  media::FrameSource src({}, Rng(seed + 2));
  const int kFrames = 100;
  const auto ops_before = tree.forward_operations();
  for (int i = 0; i < kFrames; ++i) {
    const auto f = src.next();
    sim.schedule_at(f.capture_ts, [&tree, f] { tree.push_frame(f); });
  }
  sim.run();

  TreeRun out;
  // Add the uplink leg (~0.28 s) and an RTMP-style 1 s client pre-buffer
  // (tree delivery has RTMP-like jitter) so the comparison is end to end
  // like the other columns.
  out.mean_delay_s = 0.28 + delay.mean() + 0.95;
  // Root egress: one copy per top-level child site, counted structurally.
  out.on_tree_nodes = tree.on_tree_nodes();
  out.root_egress_per_frame =
      static_cast<double>(tree.forward_operations() - ops_before) / kFrames -
      viewers;  // inter-DC forwards per frame (total minus leaf fan-out)
  out.join_latency_s = tree.mean_join_latency_s();
  return out;
}
}  // namespace

int main() {
  using namespace livesim;
  const cdn::ResourceModel model;
  // Fig-11-class end-to-end delays for the deployed paths.
  const double rtmp_delay = 1.3, hls_delay = 11.0;

  stats::print_banner(
      "Ablation (§8): overlay multicast vs RTMP-unicast vs HLS-polling");
  stats::Table table({"Viewers", "Arch", "e2e delay(s)", "Ingest CPU%",
                      "Per-viewer server state", "Interactive?"});

  for (std::uint32_t v : {100u, 1000u, 10000u, 100000u}) {
    // RTMP unicast: ingest pushes 25 fps to every viewer.
    table.add_row({stats::Table::integer(v), "RTMP unicast",
                   stats::Table::num(rtmp_delay, 1),
                   stats::Table::num(model.rtmp_cpu_percent(v, 25.0), 1),
                   "1 conn/viewer @ ingest", "yes"});
    // HLS polling.
    table.add_row({stats::Table::integer(v), "HLS polling",
                   stats::Table::num(hls_delay, 1),
                   stats::Table::num(
                       model.hls_cpu_percent(v, 25.0, 2.8, 3.0), 1),
                   "none (stateless polls)", "no (10+ s lag)"});
    // Overlay multicast (simulate a capped cohort, state is region-bound).
    const auto tree = run_tree(std::min(v, 3000u), 17);
    // Ingest work: one 25 fps push per top-level child, not per viewer.
    const double ingest_cpu = model.rtmp_cpu_percent(
        static_cast<std::uint32_t>(tree.root_egress_per_frame), 25.0);
    table.add_row(
        {stats::Table::integer(v), "overlay multicast",
         stats::Table::num(tree.mean_delay_s, 1),
         stats::Table::num(ingest_cpu, 1),
         std::to_string(tree.on_tree_nodes) + " tree nodes total",
         "yes"});
    // P2P mesh (the §2.2 related-work baseline).
    const auto mesh = run_mesh(std::min(v, 3000u), 29);
    table.add_row(
        {stats::Table::integer(v), "P2P mesh (CoolStreaming-like)",
         stats::Table::num(mesh.mean_delay_s, 1),
         stats::Table::num(
             model.rtmp_cpu_percent(
                 static_cast<std::uint32_t>(mesh.server_chunks_per_chunk),
                 1.0 / 3.0),
             1),
         "peer state only (" +
             stats::Table::num(mesh.server_chunks_per_chunk, 0) +
             " seeds/chunk)",
         "no (chunked + hops)"});
  }
  table.print();
  std::printf(
      "\nThe tree keeps RTMP-class push latency (~%.1f s end to end, no "
      "chunking or polling) while "
      "the ingest sends each frame to at most ~%zu forwarding sites "
      "regardless of audience size; leaf servers absorb the local fan-out "
      "(mean graft latency %.2f s on join).\n",
      run_tree(1000, 23).mean_delay_s, run_tree(1000, 23).on_tree_nodes,
      run_tree(1000, 23).join_latency_s);
  std::printf("This is the §8 proposal: 'a receiver-driven overlay "
              "multicast tree layered on top of CDN forwarding servers' -- "
              "interactivity for everyone without per-viewer ingest state.\n");
  return 0;
}
