// Resilience under injected faults: what the paper's viewers would see
// when the Wowza->Fastly pipeline breaks.
//
// Part 1 sweeps the randomized fault rate across the §4.3 crawled traces
// (analysis/resilience.h): stall ratio, rebuffer events, RTMP->HLS
// failover latency, and the unrecoverable-viewer fraction all grow with
// the fault rate, while the zero-rate row degenerates to the sunny-day
// baseline (no failovers, no retries — asserted, and printed in a form
// scripts/check_resilience.sh greps for).
//
// Part 2 certifies the determinism contract: the same seed produces a
// bit-identical ResilienceStats at threads {1, 2, 8}.
//
// Part 3 is an event-level demo: a scripted ingest crash mid-broadcast
// inside a full BroadcastSession. The RTMP viewers' dead connections are
// detected and every one of them is migrated onto the HLS path through
// the W2F edge machinery instead of being dropped.
//
// Usage: bench_resilience_fault_sweep [broadcasts]   (default 800)
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "livesim/analysis/resilience.h"
#include "livesim/core/broadcast_session.h"
#include "livesim/stats/report.h"

namespace {
using namespace livesim;

// Position-sensitive FNV-style fingerprint of a full ResilienceStats:
// every sample (bit pattern, in insertion order) and every counter is
// mixed in, so any reordering or single-ULP drift across thread counts
// shows up.
std::uint64_t fingerprint(const analysis::ResilienceStats& r) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
  };
  auto mix_samples = [&](const stats::Sampler& s) {
    for (double x : s.samples()) {
      std::uint64_t bits;
      static_assert(sizeof(bits) == sizeof(x), "double is 64-bit");
      std::memcpy(&bits, &x, sizeof(bits));
      mix(bits);
    }
  };
  mix_samples(r.stall_ratio);
  mix_samples(r.rebuffer_count);
  mix_samples(r.failover_latency_s);
  mix(r.counters.viewers);
  mix(r.counters.faults_injected);
  mix(r.counters.ingest_crashes);
  mix(r.counters.failovers);
  mix(r.counters.unrecoverable);
  mix(r.counters.chunk_refetches);
  return h;
}

analysis::ResilienceConfig config_for_rate(double faults_per_minute) {
  analysis::ResilienceConfig cfg;
  cfg.faults.faults_per_minute = faults_per_minute;
  cfg.seed = 42;
  cfg.threads = 0;  // all hardware threads; results identical regardless
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace livesim;
  int broadcasts = 800;
  if (argc > 1) broadcasts = std::atoi(argv[1]);
  if (broadcasts <= 0) broadcasts = 800;

  analysis::TraceSetConfig trace_cfg;
  trace_cfg.broadcasts = broadcasts;
  trace_cfg.broadcast_len = 2 * time::kMinute;
  trace_cfg.threads = 0;
  const auto traces = analysis::generate_traces(trace_cfg);

  // --- Part 1: fault-rate sweep ---------------------------------------
  stats::print_banner("Resilience vs fault rate (randomized fault scripts)");
  const double rates[] = {0.0, 0.5, 1.0, 2.0, 4.0};
  stats::Table sweep({"Faults/min", "Stall p50", "Stall p90", "Rebuf mean",
                      "Failover p50 (s)", "Unrecov %", "Refetches"});
  for (double rate : rates) {
    const auto r =
        analysis::resilience_experiment(traces, config_for_rate(rate));
    const double unrecov_pct =
        r.counters.viewers
            ? 100.0 * static_cast<double>(r.counters.unrecoverable) /
                  static_cast<double>(r.counters.viewers)
            : 0.0;
    sweep.add_row(
        {stats::Table::num(rate, 1), stats::Table::num(r.stall_ratio.median(), 4),
         stats::Table::num(r.stall_ratio.quantile(0.90), 4),
         stats::Table::num(r.rebuffer_count.mean(), 2),
         r.failover_latency_s.empty()
             ? "-"
             : stats::Table::num(r.failover_latency_s.median(), 2),
         stats::Table::num(unrecov_pct, 2),
         stats::Table::integer(
             static_cast<std::int64_t>(r.counters.chunk_refetches))});
    if (rate == 0.0) {
      // The greppable contract line for scripts/check_resilience.sh: a
      // zero fault rate must be indistinguishable from no fault subsystem.
      std::printf("no-fault baseline: faults=%llu failovers=%llu "
                  "unrecoverable=%llu refetches=%llu rebuffer_mean=%.3f\n",
                  static_cast<unsigned long long>(r.counters.faults_injected),
                  static_cast<unsigned long long>(r.counters.failovers),
                  static_cast<unsigned long long>(r.counters.unrecoverable),
                  static_cast<unsigned long long>(r.counters.chunk_refetches),
                  r.rebuffer_count.mean());
      if (r.counters.faults_injected != 0 || r.counters.failovers != 0 ||
          r.counters.unrecoverable != 0 || r.counters.chunk_refetches != 0) {
        std::printf("no-fault baseline VIOLATED\n");
        return 1;
      }
    }
  }
  sweep.print();
  std::printf("\nShape: stall, rebuffers, and the unrecoverable fraction "
              "all rise with the fault rate; failover latency stays near "
              "detect-timeout + first-chunk availability.\n");

  // --- Part 2: thread-count determinism -------------------------------
  stats::print_banner("Determinism: same seed, threads {1, 2, 8}");
  auto det_cfg = config_for_rate(2.0);
  std::uint64_t ref = 0;
  bool all_identical = true;
  for (unsigned threads : {1u, 2u, 8u}) {
    det_cfg.threads = threads;
    const auto r = analysis::resilience_experiment(traces, det_cfg);
    const std::uint64_t fp = fingerprint(r);
    if (threads == 1) ref = fp;
    const bool identical = fp == ref;
    all_identical = all_identical && identical;
    std::printf("threads=%u fingerprint=%016llx identical: %s\n", threads,
                static_cast<unsigned long long>(fp),
                identical ? "yes" : "NO -- BUG");
  }
  if (!all_identical) return 1;

  // --- Part 3: ingest crash inside a full session ---------------------
  stats::print_banner(
      "Session demo: ingest crash at t=20s, RTMP viewers fail over via W2F");
  sim::Simulator sim;
  const auto catalog = geo::DatacenterCatalog::paper_footprint();
  core::SessionConfig scfg;
  scfg.broadcast_len = 60 * time::kSecond;
  scfg.rtmp_viewers = 4;
  scfg.hls_viewers = 2;
  scfg.seed = 7;
  scfg.faults.add({20 * time::kSecond, fault::FaultKind::kIngestCrash,
                   10 * time::kSecond});
  core::BroadcastSession session(sim, catalog, scfg);
  session.start();
  sim.run();
  session.finalize();

  std::printf("faults injected:   %llu\n",
              static_cast<unsigned long long>(session.faults_injected()));
  std::printf("rtmp failovers:    %llu of %u RTMP viewers\n",
              static_cast<unsigned long long>(session.rtmp_failovers()),
              scfg.rtmp_viewers);
  if (session.failover_latency_s().count() > 0)
    std::printf("failover latency:  %.2fs mean (crash -> first HLS chunk)\n",
                session.failover_latency_s().mean());
  std::size_t migrated_playing = 0;
  for (const auto& v : session.viewer_results())
    if (v.hls) ++migrated_playing;
  std::printf("viewers on HLS at the end: %zu (started with %u)\n",
              migrated_playing, scfg.hls_viewers);
  if (session.rtmp_failovers() != scfg.rtmp_viewers) {
    std::printf("FAILOVER INCOMPLETE -- expected every RTMP viewer to "
                "migrate\n");
    return 1;
  }
  std::printf("\nall checks passed\n");
  return 0;
}
