// Methodology fidelity (§3.1): run the paper's measurement pipeline
// against the simulated service and compare the crawled dataset with the
// ground truth only a simulator can provide -- including reproducing the
// "our dataset is missing roughly 4.5% of the broadcasts during this
// period" estimate for the Aug 7-9 crawler outage.
#include <cstdio>
#include <functional>
#include <memory>

#include "livesim/crawler/service_crawler.h"
#include "livesim/stats/report.h"

int main() {
  using namespace livesim;
  sim::Simulator sim;
  const auto catalog = geo::DatacenterCatalog::paper_footprint();
  core::LivestreamService::Config cfg;
  cfg.seed = 314;
  core::LivestreamService service(sim, catalog, cfg);

  // A 30-minute window of service activity with a mid-run 3-minute
  // crawler outage (the Aug 7-9 bug in miniature).
  const DurationUs horizon = 30 * time::kMinute;
  auto rng = std::make_shared<Rng>(315);
  auto arrive = std::make_shared<std::function<void()>>();
  geo::UserGeoSampler geo_sampler;
  *arrive = [&, rng, arrive] {
    if (sim.now() >= horizon) return;
    const auto id = service.start_broadcast(
        geo_sampler.sample(*rng),
        time::from_seconds(30.0 + rng->lognormal(std::log(90.0), 0.8)));
    const int viewers = static_cast<int>(1 + rng->lognormal(1.2, 0.9));
    for (int v = 0; v < viewers; ++v) {
      if (auto h = service.join(id, geo_sampler.sample(*rng))) {
        const auto handle = *h;
        sim.schedule_in(20 * time::kSecond,
                        [&service, handle] { service.send_heart(handle); });
      }
    }
    sim.schedule_in(time::from_seconds(rng->exponential(5.0)), *arrive);
  };
  sim.schedule_in(0, *arrive);

  crawler::ServiceCrawler crawler(sim, service, {}, Rng(316));
  crawler.start();
  crawler.schedule_outage(12 * time::kMinute, 15 * time::kMinute);
  sim.schedule_at(horizon + 5 * time::kMinute, [&] { crawler.stop(); });
  sim.run();

  // Ground truth vs crawl.
  std::uint64_t total = 0, total_hearts = 0;
  std::uint64_t outage_window_total = 0, outage_window_missed = 0;
  for (std::uint64_t i = 0;; ++i) {
    const auto info = service.info(BroadcastId{i});
    if (!info) break;
    ++total;
    total_hearts += info->hearts;
    const bool in_window = info->started_at >= 12 * time::kMinute &&
                           info->started_at < 15 * time::kMinute;
    if (in_window) {
      ++outage_window_total;
      if (!crawler.records().count(i)) ++outage_window_missed;
    }
  }
  std::uint64_t crawled_hearts = 0;
  for (const auto& [id, rec] : crawler.records()) crawled_hearts += rec.hearts;

  stats::print_banner(
      "§3.1 methodology fidelity: crawled dataset vs ground truth");
  stats::Table table({"Quantity", "Ground truth", "Crawled", "Error"});
  table.add_row({"broadcasts", stats::Table::integer(
                                   static_cast<std::int64_t>(total)),
                 stats::Table::integer(static_cast<std::int64_t>(
                     crawler.broadcasts_captured())),
                 stats::Table::percent(
                     1.0 - static_cast<double>(crawler.broadcasts_captured()) /
                               static_cast<double>(total),
                     2)});
  table.add_row({"hearts", stats::Table::integer(
                               static_cast<std::int64_t>(total_hearts)),
                 stats::Table::integer(
                     static_cast<std::int64_t>(crawled_hearts)),
                 stats::Table::percent(
                     1.0 - static_cast<double>(crawled_hearts) /
                               static_cast<double>(total_hearts),
                     2)});
  table.print();
  std::printf(
      "\nDuring the injected outage window: %llu/%llu broadcasts missed "
      "(%.1f%% of that period -- the paper estimated ~4.5%% for Aug 7-9 "
      "and judged it 'small enough not to affect our data analysis').\n",
      static_cast<unsigned long long>(outage_window_missed),
      static_cast<unsigned long long>(outage_window_total),
      100.0 * static_cast<double>(outage_window_missed) /
          static_cast<double>(outage_window_total ? outage_window_total : 1));
  std::printf("Misses are exactly the broadcasts that began AND ended inside "
              "the outage; anything still live when the crawler recovered "
              "was captured (with a late first_seen).\n");
  return 0;
}
