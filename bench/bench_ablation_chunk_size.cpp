// Ablation: chunk size vs latency vs server load (§5.2's design dial).
//
// The paper: "Using smaller chunks obviously reduces the chunking delay
// but ... translates into higher server overhead for managing data and
// handling client polling. Thus to support a large number of users, HLS
// must configure its chunk size with care. ... today's livestreaming
// services all use ~3s chunks, while Apple's VoD HLS operates on 10s
// chunks", and the prediction: "more streams will require servers to
// increase chunk sizes, improving scalability at the cost of higher
// delays."
#include <cstdio>

#include "livesim/analysis/experiments.h"
#include "livesim/cdn/resource_model.h"
#include "livesim/stats/report.h"

int main() {
  using namespace livesim;
  const cdn::ResourceModel model;

  stats::print_banner(
      "Ablation: chunk size vs delay vs server load (300 HLS viewers)");
  stats::Table table({"Chunk", "Chunking delay(s)", "Polling delay(s)",
                      "HLS e2e est.(s)", "Server CPU%", "Note"});

  for (int chunk_s : {1, 2, 3, 5, 10}) {
    analysis::TraceSetConfig cfg;
    cfg.broadcasts = 300;
    cfg.chunk_target = chunk_s * time::kSecond;
    cfg.seed = 7;
    const auto traces = analysis::generate_traces(cfg);

    // Clients poll roughly once per chunk duration.
    const DurationUs poll = static_cast<DurationUs>(chunk_s * 0.93 *
                                                    time::kSecond);
    const auto polling = analysis::polling_experiment(
        traces, poll, 300 * time::kMillisecond, 3);

    stats::Accumulator chunking;
    for (const auto& t : traces)
      for (const auto& c : t.chunks)
        chunking.add(time::to_seconds(c.duration));

    // Pre-buffer scales with chunk cadence (3 chunks, as Periscope's 9 s
    // for 3 s chunks); e2e = upload + chunking + w2f + polling + buffer.
    const double buffer_s = 2.0 * chunk_s;
    const double e2e = 0.3 + chunking.mean() + 0.3 +
                       polling.per_broadcast_mean_s.mean() + buffer_s;
    const double cpu = model.hls_cpu_percent(
        300, 25.0, time::to_seconds(poll), chunking.mean());

    table.add_row({stats::Table::num(chunk_s, 0) + "s",
                   stats::Table::num(chunking.mean(), 2),
                   stats::Table::num(polling.per_broadcast_mean_s.mean(), 2),
                   stats::Table::num(e2e, 1),
                   stats::Table::num(cpu, 1),
                   chunk_s == 3    ? "<- Periscope/Facebook Live"
                   : chunk_s == 10 ? "<- Apple VoD HLS"
                                   : ""});
  }
  table.print();
  std::printf("\nSmaller chunks cut delay but multiply per-viewer server "
              "work; larger chunks do the reverse -- the latency/"
              "scalability dial of §5.2.\n");
  return 0;
}
