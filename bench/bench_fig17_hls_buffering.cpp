// Figure 17: HLS -- impact of pre-buffer size on stalling & buffering
// delay (trace-driven simulation), the paper's headline optimization:
//
// Periscope ships P=9 s, but P=6 s gives nearly the same smoothness while
// cutting buffering delay by ~50% (~3 s saved) -- the client buffer is
// too conservative.
#include <cstdio>

#include "livesim/analysis/experiments.h"
#include "livesim/stats/csv.h"
#include "livesim/stats/report.h"

int main() {
  using namespace livesim;
  const unsigned threads = 0;  // shard across all hardware threads
  analysis::TraceSetConfig cfg;
  cfg.broadcasts = 1600;
  cfg.threads = threads;
  const auto traces = analysis::generate_traces(cfg);

  const DurationUs poll = time::from_seconds(2.8);
  const DurationUs pre_buffers[] = {0, 3 * time::kSecond, 6 * time::kSecond,
                                    9 * time::kSecond};
  std::vector<analysis::BufferingStats> results;
  for (DurationUs p : pre_buffers)
    results.push_back(
        analysis::hls_buffering_experiment(traces, p, poll, 6, threads));

  stats::print_banner("Figure 17(a): HLS stalling ratio CDF");
  std::printf("%-10s  %-8s  %-8s  %-8s  %-8s\n", "stall", "P=0s", "P=3s",
              "P=6s", "P=9s");
  for (double p : stats::linear_points(0.0, 0.30, 11)) {
    std::printf("%-10.2f  %-8.3f  %-8.3f  %-8.3f  %-8.3f\n", p,
                results[0].stall_ratio.cdf_at(p),
                results[1].stall_ratio.cdf_at(p),
                results[2].stall_ratio.cdf_at(p),
                results[3].stall_ratio.cdf_at(p));
  }

  stats::print_banner("Figure 17(b): HLS buffering delay CDF");
  std::printf("%-10s  %-8s  %-8s  %-8s  %-8s\n", "delay(s)", "P=0s", "P=3s",
              "P=6s", "P=9s");
  for (double p : stats::linear_points(0.0, 10.0, 11)) {
    std::printf("%-10.1f  %-8.3f  %-8.3f  %-8.3f  %-8.3f\n", p,
                results[0].mean_delay_s.cdf_at(p),
                results[1].mean_delay_s.cdf_at(p),
                results[2].mean_delay_s.cdf_at(p),
                results[3].mean_delay_s.cdf_at(p));
  }

  stats::CsvWriter stall_csv({"stall_ratio", "P0", "P3", "P6", "P9"});
  for (double p : stats::linear_points(0.0, 0.30, 31))
    stall_csv.add_row({p, results[0].stall_ratio.cdf_at(p),
                       results[1].stall_ratio.cdf_at(p),
                       results[2].stall_ratio.cdf_at(p),
                       results[3].stall_ratio.cdf_at(p)});
  stats::CsvWriter delay_csv({"delay_s", "P0", "P3", "P6", "P9"});
  for (double p : stats::linear_points(0.0, 10.0, 41))
    delay_csv.add_row({p, results[0].mean_delay_s.cdf_at(p),
                       results[1].mean_delay_s.cdf_at(p),
                       results[2].mean_delay_s.cdf_at(p),
                       results[3].mean_delay_s.cdf_at(p)});
  const auto dir = stats::CsvWriter::env_dir();
  if (auto path = stall_csv.write(dir, "fig17a_hls_stall"))
    std::printf("wrote %s\n", path->c_str());
  if (auto path = delay_csv.write(dir, "fig17b_hls_delay"))
    std::printf("wrote %s\n", path->c_str());

  const double stall6 = results[2].stall_ratio.quantile(0.9);
  const double stall9 = results[3].stall_ratio.quantile(0.9);
  const double delay6 = results[2].mean_delay_s.median();
  const double delay9 = results[3].mean_delay_s.median();
  std::printf("\np90 stall ratio: P=6: %.3f vs P=9: %.3f (similar smoothness)\n",
              stall6, stall9);
  std::printf("median buffering delay: P=6: %.2fs vs P=9: %.2fs -> %.0f%% "
              "reduction (paper: ~50%%, ~3 s saved)\n",
              delay6, delay9, (1.0 - delay6 / delay9) * 100.0);
  std::printf("median stall at P=0: %.2f (polling jitter unabsorbed) vs "
              "P=9: %.3f\n",
              results[0].stall_ratio.median(), results[3].stall_ratio.median());
  return 0;
}
