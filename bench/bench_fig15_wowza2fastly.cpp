// Figure 15: Wowza-to-Fastly delay, grouped by datacenter distance.
//
// Paper shape: co-located pairs (same city) are sharply faster, with a
// >0.25 s gap even to nearby-city pairs (<500 km), because the co-located
// Fastly site acts as a gateway that then coordinates distribution to the
// other edges; beyond that, delay grows with distance.
#include <cstdio>

#include "livesim/analysis/experiments.h"
#include "livesim/stats/report.h"

int main() {
  using namespace livesim;
  const auto catalog = geo::DatacenterCatalog::paper_footprint();
  auto buckets = analysis::w2f_experiment(catalog, 120, 15);

  stats::print_banner(
      "Figure 15: Wowza-to-Fastly delay CDF by pair distance");
  std::printf("%-10s", "delay(s)");
  for (const auto& b : buckets) std::printf("  %-18s", b.label);
  std::printf("\n");
  for (double p : stats::linear_points(0.0, 2.0, 11)) {
    std::printf("%-10.2f", p);
    for (const auto& b : buckets)
      std::printf("  %-18.3f", b.delay_s.empty() ? 0.0 : b.delay_s.cdf_at(p));
    std::printf("\n");
  }

  std::printf("\n%-20s  %-8s  %-10s  %-10s\n", "bucket", "pairs*", "median(s)",
              "mean(s)");
  for (const auto& b : buckets) {
    if (b.delay_s.empty()) continue;
    std::printf("%-20s  %-8zu  %-10.3f  %-10.3f\n", b.label,
                b.delay_s.size() / 120, b.delay_s.median(), b.delay_s.mean());
  }
  const double gap = buckets[1].delay_s.median() - buckets[0].delay_s.median();
  std::printf("\nGap between co-located and <500 km pairs: %.2f s "
              "(paper: >0.25 s -- the gateway coordination step)\n",
              gap);
  return 0;
}
