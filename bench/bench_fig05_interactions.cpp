// Figure 5: total # of comments and hearts per broadcast.
// Paper shape: ~10% of Periscope broadcasts draw >100 comments and >1000
// hearts; the most popular drew 1.35M hearts; comments are strongly
// capped by the first-100-commenters policy; Meerkat interaction volume
// is far lower.
#include <cstdio>

#include "livesim/stats/report.h"
#include "livesim/workload/generator.h"

int main() {
  using namespace livesim;
  workload::Generator pgen(workload::AppProfile::periscope(), 1.0 / 200.0, 5);
  workload::Generator mgen(workload::AppProfile::meerkat(), 1.0 / 4.0, 5);
  const auto periscope = pgen.generate();
  const auto meerkat = mgen.generate();

  stats::Sampler pc, ph, mc, mh;
  for (const auto& b : periscope.broadcasts) {
    pc.add(b.comments);
    ph.add(static_cast<double>(b.hearts));
  }
  for (const auto& b : meerkat.broadcasts) {
    mc.add(b.comments);
    mh.add(static_cast<double>(b.hearts));
  }

  stats::print_banner(
      "Figure 5: total # of comments / hearts per broadcast (CDF)");
  std::printf("%-10s  %-12s %-12s  %-12s %-12s\n", "count", "Peri comment",
              "Peri heart", "Meer comment", "Meer heart");
  for (double p : {0.0, 1.0, 10.0, 100.0, 1000.0, 10000.0, 100000.0, 1e6}) {
    std::printf("%-10s  %-12.3f %-12.3f  %-12.3f %-12.3f\n",
                stats::Table::integer(static_cast<std::int64_t>(p)).c_str(),
                pc.cdf_at(p), ph.cdf_at(p), mc.cdf_at(p), mh.cdf_at(p));
  }
  std::printf("\nPeriscope broadcasts with >100 comments: %.1f%% (paper ~10%%)\n",
              pc.fraction_geq(100.0) * 100);
  std::printf("Periscope broadcasts with >1000 hearts:  %.1f%% (paper ~10%%)\n",
              ph.fraction_geq(1000.0) * 100);
  std::printf("Max hearts: %s (paper: 1.35M)\n",
              stats::Table::integer(static_cast<std::int64_t>(ph.max()))
                  .c_str());
  std::printf(
      "Comment cap effect: Periscope p99.9 comments = %s despite audiences "
      "of %s\n",
      stats::Table::integer(static_cast<std::int64_t>(pc.quantile(0.999)))
          .c_str(),
      stats::Table::integer(
          static_cast<std::int64_t>(
              [&] {
                double mx = 0;
                for (const auto& b : periscope.broadcasts)
                  mx = std::max(mx, static_cast<double>(b.total_viewers()));
                return mx;
              }()))
          .c_str());
  return 0;
}
