// Figure 7: broadcaster's followers vs # of viewers per broadcast.
// Paper shape: a clear positive relation on log-log axes -- users with
// more followers generate more popular broadcasts (followers get push
// notifications), with celebrity accounts (1M+ followers at paper scale)
// owning the most-viewed streams.
#include <cmath>
#include <cstdio>

#include "livesim/stats/accumulator.h"
#include "livesim/stats/report.h"
#include "livesim/stats/sampler.h"
#include "livesim/workload/generator.h"

int main() {
  using namespace livesim;
  workload::Generator gen(workload::AppProfile::periscope(), 1.0 / 200.0, 7);
  const auto ds = gen.generate();

  stats::print_banner(
      "Figure 7: broadcaster's followers vs # of viewers (Periscope)");

  // Bin broadcasts by follower count (log bins); report viewer medians.
  struct Bin {
    double lo, hi;
    stats::Sampler viewers;
  };
  std::vector<Bin> bins;
  for (double lo = 1; lo < 2e6; lo *= 10) bins.push_back({lo, lo * 10, {}});

  stats::Correlation loglog;
  for (const auto& b : ds.broadcasts) {
    if (b.followers < 1 || b.total_viewers() < 1) continue;
    for (auto& bin : bins) {
      if (b.followers >= bin.lo && b.followers < bin.hi) {
        bin.viewers.add(b.total_viewers());
        break;
      }
    }
    loglog.add(std::log10(static_cast<double>(b.followers)),
               std::log10(static_cast<double>(b.total_viewers())));
  }

  std::printf("%-20s  %-8s  %-12s  %-12s  %-12s\n", "followers", "n",
              "viewers p50", "viewers p90", "viewers max");
  for (const auto& bin : bins) {
    if (bin.viewers.empty()) continue;
    std::printf("%-20s  %-8zu  %-12.0f  %-12.0f  %-12.0f\n",
                (stats::Table::integer(static_cast<std::int64_t>(bin.lo)) +
                 " - " +
                 stats::Table::integer(static_cast<std::int64_t>(bin.hi)))
                    .c_str(),
                bin.viewers.size(), bin.viewers.median(),
                bin.viewers.quantile(0.9), bin.viewers.max());
  }
  std::printf("\nlog-log Pearson correlation: %.2f (paper: clear positive "
              "trend in the scatter)\n",
              loglog.pearson());
  return 0;
}
