// Load-aware re-anycast: per-edge capacity and the spill policy.
//
// Part 1 certifies the PARITY contract: with edge_capacity == 0 the
// capacity-spill experiment must reproduce PR 3's single-nearest-edge
// regional experiment bit for bit — same stall samples in the same
// order, same failover latencies, same counters — at several radii.
// scripts/check_resilience.sh greps the "identical: yes" lines.
//
// Part 2 sweeps capacity x outage radius: as capacity tightens, failed-
// over viewers overflow past full PoPs (spills), travel farther
// (overshoot km), and — once every live candidate is full — orphan for
// capacity reasons rather than blackout reasons.
//
// Part 3 certifies determinism with a FINITE capacity: the serial
// admission pass makes the ring-by-ring pile-up sequence independent of
// thread count, so threads {1, 2, 8} fingerprint identically.
//
// Part 4 is an event-level session demo: six co-located viewers, edge
// capacity two, their PoP dies — two land on the nearest live edge and
// four spill outward ring by ring, counted in the session's spill
// ledger.
//
// Usage: bench_resilience_capacity_spill [broadcasts]   (default 300)
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "livesim/analysis/resilience.h"
#include "livesim/core/broadcast_session.h"
#include "livesim/fault/scenario.h"
#include "livesim/stats/report.h"

namespace {
using namespace livesim;

struct FnvMixer {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  void mix(std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
  }
  void mix_double(double x) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(x), "double is 64-bit");
    std::memcpy(&bits, &x, sizeof(bits));
    mix(bits);
  }
  void mix_samples(const stats::Sampler& s) {
    for (double x : s.samples()) mix_double(x);
  }
};

// The projection both experiments share: every sample (bit pattern,
// insertion order) plus the common counters. Identical mixing on both
// sides, so bit-parity of the underlying data <=> equal fingerprints.
std::uint64_t fingerprint_common(const stats::Sampler& stall,
                                 const stats::Sampler& latency,
                                 const analysis::RegionalOutageCounters& c,
                                 std::size_t dark_edges) {
  FnvMixer m;
  m.mix_samples(stall);
  m.mix_samples(latency);
  m.mix(c.viewers);
  m.mix(c.affected);
  m.mix(c.failovers);
  m.mix(c.orphaned);
  m.mix(static_cast<std::uint64_t>(dark_edges));
  return m.h;
}

// Everything the capacity experiment reports, spill ledgers included.
std::uint64_t fingerprint_full(const analysis::CapacitySpillStats& r) {
  FnvMixer m;
  m.mix(fingerprint_common(r.stall_ratio, r.failover_latency_s, r.counters,
                           r.dark_edges));
  m.mix(r.edge_spills);
  m.mix(r.capacity_orphans);
  m.mix(r.spill_overshoot_km.count());
  m.mix_double(r.spill_overshoot_km.sum());
  for (const auto& [site, peak] : r.edge_peak_loads) {
    m.mix(site);
    m.mix(peak);
  }
  return m.h;
}

analysis::CapacitySpillConfig config_for(double radius_km,
                                         std::uint64_t capacity) {
  analysis::CapacitySpillConfig cfg;
  cfg.base.radius_km = radius_km;
  cfg.base.seed = 42;
  cfg.base.threads = 0;  // all hardware threads; results identical anyway
  cfg.edge_capacity = capacity;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace livesim;
  int broadcasts = 300;
  if (argc > 1) broadcasts = std::atoi(argv[1]);
  if (broadcasts <= 0) broadcasts = 300;

  analysis::TraceSetConfig trace_cfg;
  trace_cfg.broadcasts = broadcasts;
  trace_cfg.broadcast_len = 2 * time::kMinute;
  trace_cfg.threads = 0;
  const auto traces = analysis::generate_traces(trace_cfg);
  const auto catalog = geo::DatacenterCatalog::paper_footprint();

  // --- Part 1: infinite capacity == PR 3 regional, bit for bit --------
  stats::print_banner(
      "Parity: edge_capacity=0 reproduces the single-nearest-edge "
      "regional experiment");
  for (double radius : {0.0, 3000.0}) {
    analysis::CapacitySpillConfig ccfg = config_for(radius, 0);
    const auto reg = analysis::regional_resilience_experiment(
        traces, catalog, ccfg.base);
    const auto cap =
        analysis::capacity_spill_experiment(traces, catalog, ccfg);
    const std::uint64_t fp_reg = fingerprint_common(
        reg.stall_ratio, reg.failover_latency_s, reg.counters, reg.dark_edges);
    const std::uint64_t fp_cap = fingerprint_common(
        cap.stall_ratio, cap.failover_latency_s, cap.counters, cap.dark_edges);
    const bool ok = fp_reg == fp_cap && cap.edge_spills == 0 &&
                    cap.capacity_orphans == 0;
    std::printf("infinite-capacity parity: radius=%.0f regional=%016llx "
                "capacity=%016llx identical: %s\n",
                radius, static_cast<unsigned long long>(fp_reg),
                static_cast<unsigned long long>(fp_cap),
                ok ? "yes" : "NO -- BUG");
    if (!ok) return 1;
  }

  // --- Part 2: capacity x radius sweep --------------------------------
  stats::print_banner(
      "Capacity x outage radius: spills, overshoot, capacity orphans");
  stats::Table sweep({"Capacity", "Radius km", "Dark", "Affected %",
                      "Stall p50", "Spills", "Overshoot km", "Cap-orphans",
                      "Peak load max"});
  for (std::uint64_t capacity : {std::uint64_t{0}, std::uint64_t{100},
                                 std::uint64_t{25}}) {
    for (double radius : {0.0, 1500.0, 3000.0}) {
      const auto r = analysis::capacity_spill_experiment(
          traces, catalog, config_for(radius, capacity));
      const double denom =
          r.counters.viewers ? static_cast<double>(r.counters.viewers) : 1.0;
      std::uint64_t peak_max = 0;
      for (const auto& [site, peak] : r.edge_peak_loads)
        if (peak > peak_max) peak_max = peak;
      sweep.add_row(
          {capacity ? stats::Table::integer(
                          static_cast<std::int64_t>(capacity))
                    : "inf",
           stats::Table::num(radius, 0),
           stats::Table::integer(static_cast<std::int64_t>(r.dark_edges)),
           stats::Table::num(
               100.0 * static_cast<double>(r.counters.affected) / denom, 2),
           stats::Table::num(r.stall_ratio.median(), 4),
           stats::Table::integer(static_cast<std::int64_t>(r.edge_spills)),
           r.spill_overshoot_km.empty()
               ? "-"
               : stats::Table::num(r.spill_overshoot_km.mean(), 0),
           stats::Table::integer(
               static_cast<std::int64_t>(r.capacity_orphans)),
           stats::Table::integer(static_cast<std::int64_t>(peak_max))});
    }
  }
  sweep.print();
  std::printf("\nShape: tighter capacity turns nearest-edge failovers into "
              "ring-by-ring spills (overshoot km grows), and once every "
              "live candidate is full, into capacity orphans.\n");

  // --- Part 3: finite-capacity determinism + conservation -------------
  stats::print_banner(
      "Determinism with finite capacity: same seed, threads {1, 2, 8}");
  analysis::CapacitySpillConfig det_cfg = config_for(0.0, 25);
  std::uint64_t ref = 0;
  bool all_identical = true;
  analysis::CapacitySpillStats det_r;
  for (unsigned threads : {1u, 2u, 8u}) {
    det_cfg.base.threads = threads;
    const auto r =
        analysis::capacity_spill_experiment(traces, catalog, det_cfg);
    const std::uint64_t fp = fingerprint_full(r);
    if (threads == 1) {
      ref = fp;
      det_r = r;
    }
    const bool identical = fp == ref;
    all_identical = all_identical && identical;
    std::printf("threads=%u fingerprint=%016llx identical: %s\n", threads,
                static_cast<unsigned long long>(fp),
                identical ? "yes" : "NO -- BUG");
  }
  if (!all_identical) return 1;

  // Conservation: every affected viewer either re-anycasts or orphans;
  // every spill recorded exactly one overshoot sample.
  std::printf("capacity-spill contract: capacity=%llu affected=%llu "
              "failovers=%llu orphaned=%llu spills=%llu "
              "capacity_orphans=%llu\n",
              static_cast<unsigned long long>(det_cfg.edge_capacity),
              static_cast<unsigned long long>(det_r.counters.affected),
              static_cast<unsigned long long>(det_r.counters.failovers),
              static_cast<unsigned long long>(det_r.counters.orphaned),
              static_cast<unsigned long long>(det_r.edge_spills),
              static_cast<unsigned long long>(det_r.capacity_orphans));
  if (det_r.counters.affected == 0 ||
      det_r.counters.failovers + det_r.counters.orphaned !=
          det_r.counters.affected ||
      det_r.spill_overshoot_km.count() != det_r.edge_spills) {
    std::printf("capacity-spill contract VIOLATED\n");
    return 1;
  }

  // --- Part 4: session demo — the pile-up, event by event -------------
  stats::print_banner(
      "Session demo: 6 co-located viewers, capacity 2, their PoP dies");
  {
    sim::Simulator sim;
    core::SessionConfig scfg;
    scfg.broadcast_len = 60 * time::kSecond;
    scfg.rtmp_viewers = 0;
    scfg.hls_viewers = 6;
    scfg.global_viewers = false;  // all six sit on the broadcaster's edge
    scfg.edge_capacity = 2;      // failover admissions only; joins are blind
    scfg.seed = 7;
    fault::FaultScenario scenario;
    fault::RegionalBlackoutSpec spec;
    spec.at = 20 * time::kSecond;
    spec.duration = 15 * time::kSecond;
    spec.center = scfg.broadcaster_location;
    spec.radius_km = 0.0;  // exactly the PoP the viewers are attached to
    scenario.add(spec);
    scfg.faults = scenario.expand(catalog, scfg.seed);

    core::BroadcastSession session(sim, catalog, scfg);
    session.start();
    sim.run();
    session.finalize();

    std::printf("edge failovers:  %llu of %u HLS viewers\n",
                static_cast<unsigned long long>(session.edge_failovers()),
                scfg.hls_viewers);
    std::printf("edge spills:     %llu (admissions past a full edge)\n",
                static_cast<unsigned long long>(session.edge_spills()));
    if (!session.spill_distance_km().empty())
      std::printf("spill overshoot: %.0f km mean past the nearest live "
                  "edge\n",
                  session.spill_distance_km().mean());
    std::printf("peak loads:     ");
    for (const auto& [site, peak] : session.edge_peak_loads())
      std::printf(" %s=%llu", catalog.get(DatacenterId{site}).city.c_str(),
                  static_cast<unsigned long long>(peak));
    std::printf("\n");

    // Capacity 2 admits two viewers to the nearest live edge; the other
    // four must overflow outward — four spills, zero orphans.
    if (session.edge_failovers() != 6 || session.orphaned_viewers() != 0 ||
        session.edge_spills() != 4 ||
        session.spill_distance_km().count() != 4) {
      std::printf("SESSION SPILL CONTRACT VIOLATED -- expected 6 failovers, "
                  "4 spills, 0 orphans\n");
      return 1;
    }
  }

  std::printf("\nall checks passed\n");
  return 0;
}
