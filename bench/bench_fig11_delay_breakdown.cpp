// Figure 11: HLS/RTMP end-to-end delay breakdown.
//
// Paper (controlled experiments, 10 repetitions): RTMP ~1.4 s end to end;
// HLS ~11.7 s, dominated by client buffering (6.9 s), chunking (3 s),
// polling (1.2 s) and Wowza2Fastly (0.3 s).
#include <cstdio>

#include "livesim/analysis/experiments.h"
#include "livesim/stats/report.h"

int main() {
  using namespace livesim;
  const auto result = analysis::delay_breakdown_experiment(10, 2016);

  stats::print_banner("Figure 11: HLS/RTMP end-to-end delay breakdown (s)");
  stats::Table table({"Component", "RTMP (measured)", "HLS (measured)",
                      "RTMP (paper)", "HLS (paper)"});
  auto num = [](double v) { return stats::Table::num(v, 2); };
  const auto& r = result.rtmp;
  const auto& h = result.hls;
  table.add_row({"Upload", num(r.upload_s.mean()), num(h.upload_s.mean()),
                 "~0.3", "~0.3"});
  table.add_row({"Chunking", "-", num(h.chunking_s.mean()), "-", "3.0"});
  table.add_row({"Wowza2Fastly", "-", num(h.w2f_s.mean()), "-", "0.3"});
  table.add_row({"Polling", "-", num(h.polling_s.mean()), "-", "1.2"});
  table.add_row({"Last mile", num(r.last_mile_s.mean()),
                 num(h.last_mile_s.mean()), "~0.1", "~0.2"});
  table.add_row({"Client buffering", num(r.buffering_s.mean()),
                 num(h.buffering_s.mean()), "~1.0", "6.9"});
  table.add_row({"TOTAL", num(r.total_s()), num(h.total_s()), "1.4", "11.7"});
  table.print();

  std::printf("\nHLS / RTMP delay ratio: %.1fx (paper: ~8.4x)\n",
              h.total_s() / r.total_s());
  std::printf("HLS delay is dominated by buffering + chunking + polling: "
              "%.0f%% of total (scalability-driven design choices)\n",
              (h.buffering_s.mean() + h.chunking_s.mean() +
               h.polling_s.mean()) /
                  h.total_s() * 100.0);
  return 0;
}
