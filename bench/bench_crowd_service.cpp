// Flash-crowd service integration: the crowd generator driven through
// LivestreamService end to end, at bench scale, with a mid-storm
// regional blackout.
//
// Part 1 runs analysis::flash_crowd_experiment at >= 100k viewers with
// the control plane ON at threads {1, 2, 8} and certifies:
//  * the thread-determinism contract (byte-identical fingerprints);
//  * the admission-latency contract (batched admission never slips a
//    viewer more than one batch window past its requested join);
//  * that the blackout really collided with the storm (edge failovers)
//    and that the control plane moved part of the herd proactively.
//
// Part 2 re-runs the identical storm with the control plane OFF: the
// reactive baseline. The proactive run's mean edge-failover latency
// must not exceed the reactive one (scrape + steer latency, 0.6 s,
// beats the 2 s client detect window), and the reactive run must show
// zero proactive migrations and zero steered joins by construction.
//
// Results land in BENCH_crowd.json next to BENCH_engine.json and
// BENCH_control.json; scripts/check_crowd.sh greps the contract lines.
//
// Usage: bench_crowd_service [out.json] [viewers]  (default 100000)
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "livesim/analysis/flash_crowd.h"
#include "livesim/geo/datacenters.h"
#include "livesim/stats/report.h"
#include "livesim/workload/crowd.h"

namespace {
using namespace livesim;

analysis::FlashCrowdConfig bench_config(std::uint32_t viewers,
                                        unsigned threads, bool control) {
  analysis::FlashCrowdConfig cfg;
  cfg.preset = workload::CrowdPreset::twitch_flash_crowd();
  cfg.preset.name = "twitch_flash_crowd_bench";
  cfg.preset.channels = 24;
  cfg.preset.viewers = viewers;
  cfg.preset.horizon = 2 * time::kMinute;  // storm compressed, not thinned
  cfg.preset.mean_session_s = 30.0;
  cfg.preset.spike_at_frac = 0.5;
  cfg.preset.spike_amplitude = 8.0;
  cfg.preset.spike_ramp_s = 20.0;

  cfg.batch_window = 500 * time::kMillisecond;
  cfg.rtmp_slot_cap = 0;  // the whole storm rides the HLS poll wheels

  // Finite edges + spill rings so the blackout's herd can pile up, and
  // the overlay assist armed so capacity orphans ride the mesh. The
  // rings must be wide enough to escape a 1200 km dark region: a herd
  // stuck inside it would orphan instead of spilling.
  cfg.session.edge_capacity = 4000;
  cfg.session.failover_spill_k = 16;
  cfg.session.control.enabled = control;
  cfg.session.control.overlay_assist = control;

  // Blackout pinned mid-ramp explicitly (spike at 60 s, ramp 20 s).
  cfg.blackout = true;
  cfg.blackout_at = 70 * time::kSecond;
  cfg.blackout_duration = 20 * time::kSecond;

  cfg.threads = threads;
  return cfg;
}

void write_json(const char* path, const analysis::FlashCrowdConfig& cfg,
                const analysis::FlashCrowdStats& on,
                const analysis::FlashCrowdStats& off,
                const std::vector<std::pair<unsigned, std::uint64_t>>& fps,
                bool det_ok, double wall_ns_per_join) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"bench\": \"crowd_service\",\n");
  std::fprintf(f, "  \"schema_version\": 1,\n");
  std::fprintf(f, "  \"preset\": \"%s\",\n", cfg.preset.name.c_str());
  std::fprintf(f, "  \"viewers\": %" PRIu64 ",\n", on.viewers);
  std::fprintf(f, "  \"channels\": %u,\n", cfg.preset.channels);
  std::fprintf(f, "  \"horizon_s\": %.0f,\n",
               time::to_seconds(cfg.preset.horizon));
  std::fprintf(f, "  \"batch_window_us\": %lld,\n",
               static_cast<long long>(cfg.batch_window));
  std::fprintf(f,
               "  \"blackout\": {\"center\": [%.2f, %.2f], \"radius_km\": "
               "%.0f, \"at_s\": %.0f, \"duration_s\": %.0f},\n",
               cfg.blackout_center.lat_deg, cfg.blackout_center.lon_deg,
               cfg.blackout_radius_km, time::to_seconds(cfg.blackout_at),
               time::to_seconds(cfg.blackout_duration));
  std::fprintf(f, "  \"determinism\": {\"threads\": [");
  for (std::size_t i = 0; i < fps.size(); ++i)
    std::fprintf(f, "%u%s", fps[i].first, i + 1 < fps.size() ? ", " : "");
  std::fprintf(f, "], \"fingerprints\": [");
  for (std::size_t i = 0; i < fps.size(); ++i)
    std::fprintf(f, "\"%016" PRIx64 "\"%s", fps[i].second,
                 i + 1 < fps.size() ? ", " : "");
  std::fprintf(f, "], \"identical\": %s},\n", det_ok ? "true" : "false");
  std::fprintf(f,
               "  \"joins\": %" PRIu64 ", \"late_joins\": %" PRIu64
               ", \"leaves\": %" PRIu64 ", \"batches\": %" PRIu64 ",\n",
               on.joins, on.late_joins, on.leaves, on.batches);
  std::fprintf(f,
               "  \"admission_latency_us\": {\"mean\": %.1f, \"max\": %.1f},\n",
               on.admission_latency_s.mean() * 1e6,
               on.admission_latency_s.max() * 1e6);
  std::fprintf(f,
               "  \"steered_joins\": %" PRIu64 ", \"edge_failovers\": %" PRIu64
               ",\n",
               on.steered_joins, on.edge_failovers);
  std::fprintf(
      f, "  \"edge_failover_latency_s\": {\"mean\": %.3f, \"max\": %.3f},\n",
      on.edge_failover_latency_s.mean(), on.edge_failover_latency_s.max());
  std::fprintf(f,
               "  \"proactive_migrations\": %" PRIu64
               ", \"orphaned_viewers\": %" PRIu64 ", \"edge_spills\": %" PRIu64
               ", \"overlay_assists\": %" PRIu64 ", \"control_drains\": %" PRIu64
               ",\n",
               on.proactive_migrations, on.orphaned_viewers, on.edge_spills,
               on.overlay_assists, on.control_drains);
  std::fprintf(f,
               "  \"peak_edge_load\": %" PRIu64
               ", \"events_processed\": %" PRIu64 ",\n",
               on.peak_edge_load, on.events_processed);
  std::fprintf(f,
               "  \"reactive\": {\"edge_failovers\": %" PRIu64
               ", \"edge_failover_latency_mean_s\": %.3f, "
               "\"proactive_migrations\": %" PRIu64
               ", \"orphaned_viewers\": %" PRIu64 "},\n",
               off.edge_failovers, off.edge_failover_latency_s.mean(),
               off.proactive_migrations, off.orphaned_viewers);
  std::fprintf(f, "  \"wall_ns_per_join\": %.0f\n", wall_ns_per_join);
  std::fprintf(f, "}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace livesim;
  const char* out = argc > 1 ? argv[1] : "BENCH_crowd.json";
  long viewers = argc > 2 ? std::atol(argv[2]) : 100000;
  if (viewers <= 0) viewers = 100000;

  const auto catalog = geo::DatacenterCatalog::paper_footprint();

  // --- Part 1: the storm, control ON, threads {1, 2, 8} ----------------
  stats::print_banner(
      "Flash crowd through LivestreamService: control on, threads {1, 2, 8}");
  analysis::FlashCrowdStats on;
  std::vector<std::pair<unsigned, std::uint64_t>> fps;
  std::uint64_t ref = 0;
  bool det_ok = true;
  double wall_ns_per_join = 0.0;
  for (unsigned threads : {1u, 2u, 8u}) {
    const auto cfg =
        bench_config(static_cast<std::uint32_t>(viewers), threads, true);
    const auto t0 = std::chrono::steady_clock::now();
    const auto r = analysis::flash_crowd_experiment(catalog, cfg);
    const auto t1 = std::chrono::steady_clock::now();
    if (threads == 1) {
      ref = r.fingerprint;
      on = r;
      wall_ns_per_join =
          static_cast<double>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                  .count()) /
          static_cast<double>(r.joins ? r.joins : 1);
    }
    const bool identical = r.fingerprint == ref;
    det_ok = det_ok && identical;
    fps.emplace_back(threads, r.fingerprint);
    std::printf("crowd_service threads=%u fingerprint=%016" PRIx64
                " identical: %s\n",
                threads, r.fingerprint, identical ? "yes" : "NO -- BUG");
  }
  if (!det_ok) return 1;

  std::printf("crowd_service viewers=%" PRIu64 " (>=100000: %s)\n", on.viewers,
              on.viewers >= 100000 ? "yes" : "NO -- BUG");
  const bool scale_ok = on.viewers >= 100000;

  stats::print_banner("Storm outcome (control on, threads=1)");
  std::printf("joins: %" PRIu64 "  late: %" PRIu64 "  leaves: %" PRIu64
              "  batches: %" PRIu64 "  engine events: %" PRIu64 "\n",
              on.joins, on.late_joins, on.leaves, on.batches,
              on.events_processed);
  std::printf("steered joins: %" PRIu64 "  edge failovers: %" PRIu64
              "  proactive: %" PRIu64 "  spills: %" PRIu64
              "  overlay assists: %" PRIu64 "  orphans: %" PRIu64
              "  peak edge load: %" PRIu64 "\n",
              on.steered_joins, on.edge_failovers, on.proactive_migrations,
              on.edge_spills, on.overlay_assists, on.orphaned_viewers,
              on.peak_edge_load);
  std::printf("wall ns/join (threads=1): %.0f\n", wall_ns_per_join);

  // The admission-latency contract: batching never slips a viewer more
  // than one window past its requested join instant.
  const auto cfg1 = bench_config(static_cast<std::uint32_t>(viewers), 1, true);
  const double max_us = on.admission_latency_s.max() * 1e6;
  const double window_us = static_cast<double>(cfg1.batch_window);
  const bool adm_ok = on.joins > 0 && max_us < window_us &&
                      on.admission_latency_s.count() == on.joins;
  std::printf("crowd_service admission max_us=%.1f window_us=%.0f "
              "(max < window: %s)\n",
              max_us, window_us, adm_ok ? "yes" : "NO -- BUG");

  const bool storm_ok = on.edge_failovers > 0 && on.proactive_migrations > 0;
  std::printf("crowd_service proactive_migrations=%" PRIu64
              " edge_failovers=%" PRIu64 " (storm hit the blackout: %s)\n",
              on.proactive_migrations, on.edge_failovers,
              storm_ok ? "yes" : "NO -- BUG");

  // Published verdicts steered organic joins around the dark region for
  // as long as the overrides stayed on the map.
  const bool steer_ok = on.steered_joins > 0;
  std::printf("crowd_service steered_joins=%" PRIu64 " (>0: %s)\n",
              on.steered_joins, steer_ok ? "yes" : "NO -- BUG");

  // --- Part 2: the identical storm, control OFF: reactive baseline -----
  stats::print_banner("Reactive baseline: identical storm, control off");
  const auto off = analysis::flash_crowd_experiment(
      catalog, bench_config(static_cast<std::uint32_t>(viewers), 1, false));
  std::printf("reactive edge failovers: %" PRIu64
              "  mean failover latency: %.3f s  orphans: %" PRIu64 "\n",
              off.edge_failovers, off.edge_failover_latency_s.mean(),
              off.orphaned_viewers);
  const bool baseline_clean =
      off.proactive_migrations == 0 && off.steered_joins == 0 &&
      off.control_drains == 0 && off.overlay_assists == 0;
  const bool proactive_wins =
      off.edge_failover_latency_s.count() == 0 ||
      on.edge_failover_latency_s.mean() <= off.edge_failover_latency_s.mean();
  std::printf("crowd_service failover mean: proactive=%.3fs reactive=%.3fs "
              "(proactive <= reactive: %s)\n",
              on.edge_failover_latency_s.mean(),
              off.edge_failover_latency_s.mean(),
              proactive_wins ? "yes" : "NO -- BUG");
  std::printf("crowd_service control-off ledgers zero: %s\n",
              baseline_clean ? "yes" : "NO -- BUG");

  write_json(out, cfg1, on, off, fps, det_ok, wall_ns_per_join);
  std::printf("wrote %s\n", out);

  if (!scale_ok || !adm_ok || !storm_ok || !steer_ok || !baseline_clean ||
      !proactive_wins)
    return 1;
  std::printf("\nall checks passed\n");
  return 0;
}
