// Ablation: crawler refresh rate vs capture coverage (§3.1 methodology).
//
// The paper used 20 accounts x 5 s = 0.25 s effective refresh and
// verified that 0.5 s already "exhaustively captures all broadcasts"; it
// kept the higher rate to absorb bursts. This sweep shows where coverage
// actually degrades, and how growing broadcast volume (the 50-item list
// dilutes) forces faster crawling -- the same scalability pressure the
// paper's own measurement infrastructure hit when Periscope's volume
// outgrew their whitelisted rate limits.
#include <cstdio>

#include "livesim/crawler/crawler.h"
#include "livesim/stats/report.h"

int main() {
  using namespace livesim;
  stats::print_banner("Ablation: crawler refresh rate vs coverage");
  stats::Table table({"Accounts", "Eff. refresh", "Volume(/s)", "Peak active",
                      "Coverage", "Detect latency(s)"});

  for (double rate : {2.0, 10.0, 30.0}) {
    for (std::uint32_t accounts : {1u, 2u, 5u, 10u, 20u}) {
      crawler::CoverageParams p;
      p.arrivals_per_s = rate;
      p.mean_duration_s = 150.0;
      p.accounts = accounts;
      p.horizon = 8 * time::kMinute;
      p.seed = 77;
      const auto r = crawler::run_coverage_experiment(p);
      table.add_row(
          {stats::Table::integer(accounts),
           stats::Table::num(5.0 / accounts, 2) + "s",
           stats::Table::num(rate, 0),
           stats::Table::integer(static_cast<std::int64_t>(r.peak_active)),
           stats::Table::percent(r.coverage, 2),
           stats::Table::num(r.mean_detection_latency_s, 1)});
    }
  }
  table.print();
  std::printf("\nAt the paper's 0.25 s effective refresh coverage is ~100%% "
              "even at high volume; single-account crawling misses short "
              "broadcasts once thousands are live (50-item random samples "
              "dilute).\n");
  return 0;
}
