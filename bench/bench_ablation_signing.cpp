// Ablation: signature defense overhead vs signing window (§7.2).
//
// The paper's proposed countermeasure signs a hash of each frame, and
// notes "we can further reduce overhead by signing only selective frames
// or signing hashes across multiple frames." This sweep measures the real
// CPU and byte cost of that dial on actual wire-size frames, against
// full RTMPS encryption (Facebook Live's approach) as the upper bound.
#include <chrono>
#include <cstdio>

#include "livesim/media/encoder.h"
#include "livesim/protocol/rtmp.h"
#include "livesim/protocol/rtmps.h"
#include "livesim/security/stream_sign.h"
#include "livesim/stats/report.h"

namespace {
using namespace livesim;

std::vector<media::VideoFrame> capture(int n) {
  media::FrameSource src({}, Rng(1));
  Rng payload(2);
  std::vector<media::VideoFrame> frames;
  for (int i = 0; i < n; ++i) {
    auto f = src.next();
    f.payload.resize(f.size_bytes);
    for (auto& b : f.payload) b = static_cast<std::uint8_t>(payload.next_u64());
    frames.push_back(std::move(f));
  }
  return frames;
}
}  // namespace

int main() {
  using namespace livesim;
  const int kFrames = 2000;  // 80 s of video
  auto frames = capture(kFrames);
  std::size_t video_bytes = 0;
  for (const auto& f : frames) video_bytes += f.payload.size();

  stats::print_banner(
      "Ablation: broadcaster-side integrity cost per signing window");
  stats::Table table({"Scheme", "Setup(ms)", "CPU us/frame",
                      "Overhead bytes/s", "Overhead %", "Detects tamper?",
                      "Detection lag"});

  // Baseline: no protection (deployed Periscope).
  table.add_row({"RTMP (deployed)", "0", "0.0", "0", "0.0%", "NO", "-"});

  for (std::uint32_t window : {1u, 5u, 25u, 125u}) {
    auto work = capture(kFrames);
    const auto seed = security::Sha256::hash(std::string("s"));
    // Key-pool derivation happens once at broadcast setup (and can be
    // pipelined); keep it out of the per-frame cost.
    std::size_t keys = 1;
    while (keys * window < static_cast<std::size_t>(kFrames)) keys *= 2;
    const auto ts = std::chrono::steady_clock::now();
    security::StreamSigner signer(seed, keys, window);
    const auto t0 = std::chrono::steady_clock::now();
    std::size_t sig_bytes = 0;
    for (auto& f : work) {
      signer.process(f);
      sig_bytes += f.signature.size();
    }
    const auto t1 = std::chrono::steady_clock::now();
    const double setup_ms =
        std::chrono::duration<double, std::milli>(t0 - ts).count();
    const double us_per_frame =
        std::chrono::duration<double, std::micro>(t1 - t0).count() / kFrames;
    const double bytes_per_s =
        static_cast<double>(sig_bytes) / (kFrames * 0.04);
    table.add_row(
        {"sign every " + std::to_string(window) + " frames",
         stats::Table::num(setup_ms, 0),
         stats::Table::num(us_per_frame, 1),
         stats::Table::integer(static_cast<std::int64_t>(bytes_per_s)),
         stats::Table::percent(
             static_cast<double>(sig_bytes) / static_cast<double>(video_bytes),
             1),
         "yes", stats::Table::num(window * 0.04, 2) + "s"});
  }

  {
    const auto t0 = std::chrono::steady_clock::now();
    protocol::SecureChannel::Key key{};
    protocol::SecureChannel sender(key);
    std::size_t wire_bytes = 0;
    for (const auto& f : frames)
      wire_bytes += sender.seal(protocol::frame_to_wire(f)).size();
    const auto t1 = std::chrono::steady_clock::now();
    const double us_per_frame =
        std::chrono::duration<double, std::micro>(t1 - t0).count() / kFrames;
    table.add_row(
        {"RTMPS (encrypt-then-MAC)", "0", stats::Table::num(us_per_frame, 1),
         stats::Table::integer(static_cast<std::int64_t>(
             static_cast<double>(wire_bytes - video_bytes) /
             (kFrames * 0.04))),
         stats::Table::percent(static_cast<double>(wire_bytes - video_bytes) /
                                   static_cast<double>(video_bytes),
                               1),
         "yes (+privacy)", "1 frame"});
  }
  table.print();
  std::printf("\nThe paper's sweet spot: signing a hash across ~1 s of "
              "frames costs a small fraction of full-stream encryption "
              "(and, unlike a shared-key MAC channel, stays publicly "
              "verifiable by every viewer), with ~1 s tamper detection.\n");
  return 0;
}
