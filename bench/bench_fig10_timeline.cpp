// Figure 10: the RTMP/HLS end-to-end delay breakdown *diagram*,
// regenerated as a timestamped ledger of one real chunk's journey through
// the pipeline (the circled-number timeline of the paper).
#include <cstdio>

#include "livesim/core/broadcast_session.h"
#include "livesim/stats/report.h"

int main() {
  using namespace livesim;
  sim::Simulator sim;
  const auto catalog = geo::DatacenterCatalog::paper_footprint();
  core::SessionConfig cfg;
  cfg.broadcast_len = 60 * time::kSecond;
  cfg.broadcaster_location = {34.42, -119.70};  // Santa Barbara
  cfg.global_viewers = false;
  cfg.rtmp_viewers = 1;
  cfg.hls_viewers = 1;
  cfg.crawler_pollers = true;
  cfg.record_journeys = true;
  cfg.seed = 2987453;  // the paper's DOI suffix, why not
  core::BroadcastSession session(sim, catalog, cfg);
  session.start();
  sim.run();
  session.finalize();

  stats::print_banner(
      "Figure 10: one chunk's journey (HLS path, Fig 10(b) timestamps)");
  const auto& journeys = session.journeys();
  if (journeys.size() < 6) {
    std::printf("not enough chunks recorded\n");
    return 1;
  }
  const auto& j = journeys[4];  // a steady-state chunk
  auto rel = [&](TimeUs t) { return time::to_seconds(t - j.captured); };
  std::printf("chunk #%llu, all times relative to first-frame capture:\n\n",
              static_cast<unsigned long long>(j.seq));
  std::printf("  (5)  t=%6.2fs  first frame captured on the phone\n",
              rel(j.captured));
  std::printf("  (7)  t=%6.2fs  chunk sealed at Wowza "
              "(upload + chunking)\n",
              rel(j.completed));
  std::printf(" (11)  t=%6.2fs  chunk cached at the viewer's Fastly edge "
              "(Wowza2Fastly)\n",
              rel(j.available));
  std::printf(" (14)  t=%6.2fs  the viewer's poll that finds it arrives "
              "(polling)\n",
              rel(j.polled));
  std::printf(" (15)  t=%6.2fs  response lands on the viewer's phone "
              "(last mile)\n",
              rel(j.received));
  std::printf(" (17)  t=%6.2fs  scheduled playback (client buffering: "
              "+%.2fs measured mean)\n",
              rel(j.received) + session.hls_breakdown().buffering_s.mean(),
              session.hls_breakdown().buffering_s.mean());

  std::printf("\nSteady-state across all %zu recorded chunks:\n",
              journeys.size());
  stats::Accumulator upload_chunk, w2f, poll, lastmile;
  for (std::size_t i = 2; i < journeys.size(); ++i) {
    const auto& c = journeys[i];
    if (c.available == 0) continue;
    upload_chunk.add(time::to_seconds(c.completed - c.captured));
    w2f.add(time::to_seconds(c.available - c.completed));
    poll.add(time::to_seconds(c.polled - c.available));
    lastmile.add(time::to_seconds(c.received - c.polled));
  }
  std::printf("  capture->sealed  %.2fs (upload + chunking)\n",
              upload_chunk.mean());
  std::printf("  sealed->edge     %.2fs (Wowza2Fastly)\n", w2f.mean());
  std::printf("  edge->poll       %.2fs (polling)\n", poll.mean());
  std::printf("  poll->viewer     %.2fs (last mile)\n", lastmile.mean());
  std::printf("\nRTMP path for comparison (Fig 10(a)): upload %.2fs + last "
              "mile %.2fs + buffering %.2fs = %.2fs\n",
              session.rtmp_breakdown().upload_s.mean(),
              session.rtmp_breakdown().last_mile_s.mean(),
              session.rtmp_breakdown().buffering_s.mean(),
              session.rtmp_breakdown().total_s());
  return 0;
}
