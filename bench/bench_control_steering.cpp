// Control plane: proactive drain detection vs reactive spill.
//
// Part 1 certifies the OFF-parity contract: with the control plane
// disabled, control_steering_experiment runs the identical shared
// 4-phase driver and must reproduce capacity_spill_experiment bit for
// bit (same samples, same order, same spill ledgers) — and at
// edge_capacity == 0 that experiment in turn reproduces the
// single-nearest-edge regional experiment. CI greps the
// "identical: yes" lines.
//
// Part 2 sweeps the same capacity x outage-radius blackout grid as
// bench_resilience_capacity_spill with the scrape/steer model ON, and
// pins the dominance contract: the proactive detection-time
// distribution is pointwise <= the reactive one (the client timeout is
// the fallback, so steering can only ever help) and strictly better in
// aggregate whenever any viewer is affected.
//
// Part 3 certifies determinism: threads {1, 2, 8} fingerprint
// identically with steering enabled (the steer clamp is serial
// arithmetic between phase A and phase B; no RNG is touched).
//
// Part 4 is an event-level session demo on the engine: the monitor
// scrapes a dying PoP, publishes the death after steer_latency, and the
// attached viewers are migrated proactively — before their own poll
// timeout + detect window would have noticed — then a second run with
// tight capacity shows the overlay assist parking capacity orphans on
// the P2P mesh.
//
// Results land in BENCH_control.json (grid + fingerprints) so CI can
// archive them next to BENCH_engine.json.
//
// Usage: bench_control_steering [out.json] [broadcasts]  (default 300)
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "livesim/analysis/control_steering.h"
#include "livesim/analysis/resilience.h"
#include "livesim/core/broadcast_session.h"
#include "livesim/fault/scenario.h"
#include "livesim/stats/report.h"

namespace {
using namespace livesim;

struct FnvMixer {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  void mix(std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
  }
  void mix_double(double x) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(x), "double is 64-bit");
    std::memcpy(&bits, &x, sizeof(bits));
    mix(bits);
  }
  void mix_samples(const stats::Sampler& s) {
    for (double x : s.samples()) mix_double(x);
  }
};

// Every sample (bit pattern, insertion order) plus the spill ledgers —
// identical mixing to bench_resilience_capacity_spill, so equal
// fingerprints <=> bit-parity of the underlying data.
std::uint64_t fingerprint_spill(const analysis::CapacitySpillStats& r) {
  FnvMixer m;
  m.mix_samples(r.stall_ratio);
  m.mix_samples(r.failover_latency_s);
  m.mix(r.counters.viewers);
  m.mix(r.counters.affected);
  m.mix(r.counters.failovers);
  m.mix(r.counters.orphaned);
  m.mix(static_cast<std::uint64_t>(r.dark_edges));
  m.mix(r.edge_spills);
  m.mix(r.capacity_orphans);
  m.mix(r.spill_overshoot_km.count());
  m.mix_double(r.spill_overshoot_km.sum());
  for (const auto& [site, peak] : r.edge_peak_loads) {
    m.mix(site);
    m.mix(peak);
  }
  return m.h;
}

// The steering experiment's full surface: the spill outcome plus both
// detection-time distributions and the steering ledger.
std::uint64_t fingerprint_steering(const analysis::ControlSteeringStats& r) {
  FnvMixer m;
  m.mix(fingerprint_spill(r.spill));
  m.mix_samples(r.reactive_detect_s);
  m.mix_samples(r.proactive_detect_s);
  m.mix(static_cast<std::uint64_t>(r.steer_published_at));
  m.mix(r.steered_early);
  m.mix(r.proactive ? 1 : 0);
  return m.h;
}

analysis::ControlSteeringConfig config_for(double radius_km,
                                           std::uint64_t capacity,
                                           bool enabled) {
  analysis::ControlSteeringConfig cfg;
  cfg.spill.base.radius_km = radius_km;
  cfg.spill.base.seed = 42;
  cfg.spill.base.threads = 0;
  cfg.spill.edge_capacity = capacity;
  cfg.control.enabled = enabled;
  return cfg;
}

struct GridCell {
  std::uint64_t capacity = 0;
  double radius_km = 0.0;
  std::size_t dark_edges = 0;
  std::uint64_t affected = 0;
  double reactive_p50 = 0.0, reactive_p95 = 0.0;
  double proactive_p50 = 0.0, proactive_p95 = 0.0;
  std::uint64_t steered_early = 0;
  bool dominates = false;
};

void write_json(const char* path, int broadcasts,
                const analysis::ControlSteeringConfig& model,
                std::uint64_t off_fp, bool off_ok,
                const std::vector<GridCell>& grid,
                const std::vector<std::pair<unsigned, std::uint64_t>>& fps,
                bool det_ok) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"bench\": \"control_steering\",\n");
  std::fprintf(f, "  \"broadcasts\": %d,\n", broadcasts);
  std::fprintf(f, "  \"scrape_interval_ms\": %lld,\n",
               static_cast<long long>(model.control.scrape_interval /
                                      time::kMillisecond));
  std::fprintf(f, "  \"steer_latency_ms\": %lld,\n",
               static_cast<long long>(model.control.steer_latency /
                                      time::kMillisecond));
  std::fprintf(f, "  \"off_parity\": {\"fingerprint\": \"%016" PRIx64
               "\", \"identical\": %s},\n",
               off_fp, off_ok ? "true" : "false");
  std::fprintf(f, "  \"grid\": [\n");
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const GridCell& c = grid[i];
    std::fprintf(
        f,
        "    {\"capacity\": %" PRIu64 ", \"radius_km\": %.0f, "
        "\"dark_edges\": %zu, \"affected\": %" PRIu64
        ", \"reactive_p50_s\": %.3f, \"reactive_p95_s\": %.3f, "
        "\"proactive_p50_s\": %.3f, \"proactive_p95_s\": %.3f, "
        "\"steered_early\": %" PRIu64 ", \"dominates\": %s}%s\n",
        c.capacity, c.radius_km, c.dark_edges, c.affected, c.reactive_p50,
        c.reactive_p95, c.proactive_p50, c.proactive_p95, c.steered_early,
        c.dominates ? "true" : "false", i + 1 < grid.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"determinism\": {\"threads\": [");
  for (std::size_t i = 0; i < fps.size(); ++i)
    std::fprintf(f, "%u%s", fps[i].first, i + 1 < fps.size() ? ", " : "");
  std::fprintf(f, "], \"fingerprints\": [");
  for (std::size_t i = 0; i < fps.size(); ++i)
    std::fprintf(f, "\"%016" PRIx64 "\"%s", fps[i].second,
                 i + 1 < fps.size() ? ", " : "");
  std::fprintf(f, "], \"identical\": %s}\n", det_ok ? "true" : "false");
  std::fprintf(f, "}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace livesim;
  const char* out = argc > 1 ? argv[1] : "BENCH_control.json";
  int broadcasts = argc > 2 ? std::atoi(argv[2]) : 300;
  if (broadcasts <= 0) broadcasts = 300;

  analysis::TraceSetConfig trace_cfg;
  trace_cfg.broadcasts = broadcasts;
  trace_cfg.broadcast_len = 2 * time::kMinute;
  trace_cfg.threads = 0;
  const auto traces = analysis::generate_traces(trace_cfg);
  const auto catalog = geo::DatacenterCatalog::paper_footprint();

  // --- Part 1: control-plane OFF == reactive spill, bit for bit -------
  stats::print_banner(
      "Parity: control-plane-off reproduces capacity_spill_experiment");
  std::uint64_t off_fp = 0;
  bool off_all_ok = true;
  for (double radius : {0.0, 3000.0}) {
    for (std::uint64_t capacity : {std::uint64_t{0}, std::uint64_t{25}}) {
      const auto cfg = config_for(radius, capacity, /*enabled=*/false);
      const auto spill =
          analysis::capacity_spill_experiment(traces, catalog, cfg.spill);
      const auto steer =
          analysis::control_steering_experiment(traces, catalog, cfg);
      const std::uint64_t fp_spill = fingerprint_spill(spill);
      const std::uint64_t fp_off = fingerprint_spill(steer.spill);
      // Disabled: both detection samplers must collapse to the same
      // (reactive) distribution and nothing may be steered.
      FnvMixer ra, pa;
      ra.mix_samples(steer.reactive_detect_s);
      pa.mix_samples(steer.proactive_detect_s);
      const bool ok = fp_spill == fp_off && ra.h == pa.h &&
                      steer.steered_early == 0 && !steer.proactive;
      off_all_ok = off_all_ok && ok;
      off_fp = fp_off;
      std::printf("control-plane-off parity: capacity=%" PRIu64
                  " radius=%.0f spill=%016" PRIx64 " control=%016" PRIx64
                  " identical: %s\n",
                  capacity, radius, fp_spill, fp_off, ok ? "yes" : "NO -- BUG");
    }
  }
  if (!off_all_ok) return 1;

  // --- Part 2: reactive vs proactive detection on the blackout grid ---
  stats::print_banner(
      "Blackout grid: reactive vs proactive detection time (seconds)");
  stats::Table table({"Capacity", "Radius km", "Affected", "React p50",
                      "React p95", "Proact p50", "Proact p95", "Early",
                      "Dominates"});
  std::vector<GridCell> grid;
  bool grid_dominates = true;
  analysis::ControlSteeringConfig model;  // for the JSON header cadences
  for (std::uint64_t capacity : {std::uint64_t{0}, std::uint64_t{100},
                                 std::uint64_t{25}}) {
    for (double radius : {0.0, 1500.0, 3000.0}) {
      const auto cfg = config_for(radius, capacity, /*enabled=*/true);
      model = cfg;
      const auto r =
          analysis::control_steering_experiment(traces, catalog, cfg);

      GridCell cell;
      cell.capacity = capacity;
      cell.radius_km = radius;
      cell.dark_edges = r.spill.dark_edges;
      cell.affected = r.spill.counters.affected;
      cell.reactive_p50 = r.reactive_detect_s.quantile(0.5);
      cell.reactive_p95 = r.reactive_detect_s.quantile(0.95);
      cell.proactive_p50 = r.proactive_detect_s.quantile(0.5);
      cell.proactive_p95 = r.proactive_detect_s.quantile(0.95);
      cell.steered_early = r.steered_early;

      // Dominance: pointwise <= over the SAME viewers (both samplers are
      // emitted per affected viewer in canonical order), and strictly
      // better in aggregate whenever anyone was affected.
      const auto& re = r.reactive_detect_s.samples();
      const auto& pr = r.proactive_detect_s.samples();
      bool pointwise = re.size() == pr.size();
      if (pointwise)
        for (std::size_t i = 0; i < re.size(); ++i)
          if (pr[i] > re[i]) {
            pointwise = false;
            break;
          }
      cell.dominates =
          pointwise && (cell.affected == 0 || r.steered_early > 0);
      grid_dominates = grid_dominates && cell.dominates;
      grid.push_back(cell);

      table.add_row(
          {capacity
               ? stats::Table::integer(static_cast<std::int64_t>(capacity))
               : "inf",
           stats::Table::num(radius, 0),
           stats::Table::integer(static_cast<std::int64_t>(cell.affected)),
           stats::Table::num(cell.reactive_p50, 3),
           stats::Table::num(cell.reactive_p95, 3),
           stats::Table::num(cell.proactive_p50, 3),
           stats::Table::num(cell.proactive_p95, 3),
           stats::Table::integer(static_cast<std::int64_t>(cell.steered_early)),
           cell.dominates ? "yes" : "NO"});
    }
  }
  table.print();
  std::printf("control_steering dominance on blackout grid"
              " (proactive <= reactive, pointwise): %s\n",
              grid_dominates ? "yes" : "NO -- BUG");
  if (!grid_dominates) return 1;

  // --- Part 3: determinism with steering ON, threads {1, 2, 8} --------
  stats::print_banner(
      "Determinism with steering: same seed, threads {1, 2, 8}");
  auto det_cfg = config_for(0.0, 25, /*enabled=*/true);
  std::uint64_t ref = 0;
  bool det_ok = true;
  std::vector<std::pair<unsigned, std::uint64_t>> fps;
  for (unsigned threads : {1u, 2u, 8u}) {
    det_cfg.spill.base.threads = threads;
    const auto r =
        analysis::control_steering_experiment(traces, catalog, det_cfg);
    const std::uint64_t fp = fingerprint_steering(r);
    if (threads == 1) ref = fp;
    const bool identical = fp == ref;
    det_ok = det_ok && identical;
    fps.emplace_back(threads, fp);
    std::printf("control_steering threads=%u fingerprint=%016" PRIx64
                " identical: %s\n",
                threads, fp, identical ? "yes" : "NO -- BUG");
  }
  if (!det_ok) return 1;

  // --- Part 4: session demo on the engine -----------------------------
  stats::print_banner(
      "Session demo: scrape -> publish -> proactive migration");
  {
    sim::Simulator sim;
    core::SessionConfig scfg;
    scfg.broadcast_len = 60 * time::kSecond;
    scfg.rtmp_viewers = 0;
    scfg.hls_viewers = 6;
    scfg.global_viewers = false;  // all six sit on the broadcaster's edge
    scfg.seed = 7;
    scfg.control.enabled = true;
    fault::FaultScenario scenario;
    fault::RegionalBlackoutSpec spec;
    spec.at = 20 * time::kSecond;
    spec.duration = 15 * time::kSecond;
    spec.center = scfg.broadcaster_location;
    spec.radius_km = 0.0;
    scenario.add(spec);
    scfg.faults = scenario.expand(catalog, scfg.seed);

    core::BroadcastSession session(sim, catalog, scfg);
    session.start();
    sim.run();
    session.finalize();

    const auto* cp = session.control_plane();
    std::printf("scrapes: %" PRIu64 "  publications: %" PRIu64
                "  deaths: %" PRIu64 "  proactive migrations: %" PRIu64
                " of %u viewers\n",
                cp->scrapes(), cp->publications(), cp->policy().deaths(),
                session.proactive_migrations(), scfg.hls_viewers);
    // The monitor's detection window (one scrape + steer latency, 0.6 s)
    // beats the client's 2 s failover_detect_timeout: every viewer must
    // be migrated proactively, none reactively, none orphaned.
    if (session.proactive_migrations() != 6 ||
        session.edge_failovers() != 6 || session.orphaned_viewers() != 0 ||
        cp->policy().deaths() == 0) {
      std::printf("SESSION STEERING CONTRACT VIOLATED -- expected 6 "
                  "proactive migrations, 0 orphans\n");
      return 1;
    }
    std::printf("session steering contract: proactive beats the client "
                "timeout: yes\n");
  }

  stats::print_banner(
      "Session demo: overlay assist parks capacity orphans on the mesh");
  {
    sim::Simulator sim;
    core::SessionConfig scfg;
    scfg.broadcast_len = 60 * time::kSecond;
    scfg.rtmp_viewers = 0;
    scfg.hls_viewers = 6;
    scfg.global_viewers = false;
    scfg.edge_capacity = 1;       // failover admits one viewer per edge
    scfg.failover_spill_k = 2;    // two candidate rings only
    scfg.seed = 7;
    scfg.control.enabled = true;
    scfg.control.overlay_assist = true;
    scfg.control.saturation_fraction = 0.5;
    fault::FaultScenario scenario;
    fault::RegionalBlackoutSpec spec;
    spec.at = 20 * time::kSecond;
    spec.duration = 15 * time::kSecond;
    spec.center = scfg.broadcaster_location;
    spec.radius_km = 0.0;
    scenario.add(spec);
    scfg.faults = scenario.expand(catalog, scfg.seed);

    core::BroadcastSession session(sim, catalog, scfg);
    session.start();
    sim.run();
    session.finalize();

    std::printf("overlay assists: %" PRIu64 "  mesh peers: %" PRIu64
                "  server egress chunks: %" PRIu64 "  orphans: %" PRIu64
                "\n",
                session.overlay_assists(),
                session.assist_mesh() ? session.assist_mesh()->peers() : 0,
                session.assist_mesh()
                    ? session.assist_mesh()->server_egress_chunks()
                    : 0,
                session.orphaned_viewers());
    // Two rings x capacity 1 admit two viewers; the other four are
    // capacity orphans the armed mesh must absorb — zero frozen players.
    if (session.overlay_assists() != 4 || session.orphaned_viewers() != 0 ||
        session.assist_mesh() == nullptr ||
        session.assist_mesh()->peers() != 4 ||
        session.assist_mesh()->server_egress_chunks() == 0) {
      std::printf("OVERLAY ASSIST CONTRACT VIOLATED -- expected 4 mesh "
                  "rescues, 0 orphans\n");
      return 1;
    }
    std::printf("overlay assist contract: capacity orphans ride the mesh: "
                "yes\n");
  }

  write_json(out, broadcasts, model, off_fp, off_all_ok, grid, fps, det_ok);
  std::printf("wrote %s\n", out);
  std::printf("\nall checks passed\n");
  return 0;
}
