// Table 1: basic statistics of the broadcast datasets.
//
// Periscope: 3 months, 19.6M broadcasts, 1.85M broadcasters, 705M views,
// 7.65M unique mobile viewers. Meerkat: 1 month, 164K broadcasts, 57K
// broadcasters, 3.8M views, 183K viewers. We regenerate both datasets at
// a reduced scale and print measured alongside paper-scale extrapolation.
#include <cstdio>

#include "livesim/stats/report.h"
#include "livesim/workload/generator.h"

namespace {

using namespace livesim;

void dataset_row(stats::Table& table, const workload::AppProfile& profile,
                 double scale, const char* months, double paper_broadcasts,
                 double paper_broadcasters, double paper_views) {
  workload::Generator gen(profile, scale, 20160707);
  const auto ds = gen.generate();

  const double inv = 1.0 / scale;
  std::uint64_t viewers_nonzero = 0;
  for (const auto& u : ds.users)
    if (u.broadcasts_viewed > 0) ++viewers_nonzero;

  table.add_row({profile.name, months,
                 stats::Table::integer(static_cast<std::int64_t>(
                     ds.captured_broadcasts())),
                 stats::Table::integer(static_cast<std::int64_t>(
                     ds.unique_broadcasters())),
                 stats::Table::integer(static_cast<std::int64_t>(
                     ds.total_views())),
                 stats::Table::integer(static_cast<std::int64_t>(
                     viewers_nonzero))});
  table.add_row({std::string("  -> paper-scale (x") +
                     stats::Table::num(inv, 0) + ")",
                 months,
                 stats::Table::num(static_cast<double>(
                                       ds.captured_broadcasts()) * inv / 1e6,
                                   1) + "M",
                 stats::Table::num(static_cast<double>(
                                       ds.unique_broadcasters()) * inv / 1e6,
                                   2) + "M",
                 stats::Table::num(static_cast<double>(ds.total_views()) *
                                       inv / 1e6,
                                   0) + "M",
                 stats::Table::num(static_cast<double>(viewers_nonzero) *
                                       inv / 1e6,
                                   2) + "M"});
  table.add_row({std::string("  -> paper reported"), months,
                 stats::Table::num(paper_broadcasts / 1e6, 1) + "M",
                 stats::Table::num(paper_broadcasters / 1e6, 2) + "M",
                 stats::Table::num(paper_views / 1e6, 0) + "M", "-"});
}

}  // namespace

int main() {
  stats::print_banner(
      "Table 1: Basic statistics of our broadcast datasets");
  stats::Table table({"App", "Months", "Broadcasts", "Broadcasters",
                      "Total Views", "Unique Viewers"});
  dataset_row(table, workload::AppProfile::periscope(), 1.0 / 250.0, "3",
              19.6e6, 1.85e6, 705e6);
  dataset_row(table, workload::AppProfile::meerkat(), 1.0 / 10.0, "1",
              164e3, 57e3, 3.8e6);
  table.print();

  // The paper's §3.1 trick: sequential userIDs let the crawl estimate the
  // registered population from the largest id observed (12M for
  // Periscope; impossible for Meerkat's non-sequential ids).
  workload::Generator pg(workload::AppProfile::periscope(), 1.0 / 250.0,
                         20160707);
  const auto pds = pg.generate();
  std::printf(
      "\nRegistered users, max-sequential-userID estimate: %.1fM at paper "
      "scale (paper: 12M as of Aug 20, 2015)\n",
      static_cast<double>(workload::estimate_registered_users(pds)) * 250.0 /
          1e6);
  std::printf(
      "Note: generated at reduced scale; the paper-scale row multiplies "
      "back by the scale factor.\n");
  return 0;
}
