// Figure 2: number of daily active users.
//
// Paper shape: Periscope viewers grow from ~200K (May) past 1M (August)
// with a ~10:1 viewer:broadcaster ratio; Meerkat viewers hover around 20K
// while its broadcasters decline below 3K.
#include <cstdio>

#include <unordered_set>
#include <vector>

#include "livesim/stats/report.h"
#include "livesim/workload/generator.h"

namespace {
using namespace livesim;

struct Dau {
  std::vector<double> broadcasters;
  std::vector<double> viewers;
};

// Daily active viewers are estimated from daily view volume divided by the
// mean views a daily-active viewer generates (calibrated so the Periscope
// endpoints match the paper's 200K -> 1M+ trajectory).
Dau daily_active(const workload::Dataset& ds, double scale,
                 double views_per_viewer_day) {
  Dau out;
  out.broadcasters.assign(ds.profile.days, 0);
  out.viewers.assign(ds.profile.days, 0);
  std::vector<std::unordered_set<std::uint64_t>> uniq(ds.profile.days);
  std::vector<double> views(ds.profile.days, 0);
  for (const auto& b : ds.broadcasts) {
    if (!b.captured) continue;
    uniq[b.day].insert(b.broadcaster.value);
    views[b.day] += b.total_viewers();
  }
  for (std::uint32_t d = 0; d < ds.profile.days; ++d) {
    out.broadcasters[d] = static_cast<double>(uniq[d].size()) / scale;
    out.viewers[d] = views[d] / scale / views_per_viewer_day;
  }
  return out;
}
}  // namespace

int main() {
  using namespace livesim;
  const double pscale = 1.0 / 100.0, mscale = 1.0 / 4.0;

  workload::Generator pgen(workload::AppProfile::periscope(), pscale, 11);
  const auto periscope = pgen.generate();
  workload::Generator mgen(workload::AppProfile::meerkat(), mscale, 11);
  const auto meerkat = mgen.generate();

  const auto pdau = daily_active(periscope, pscale, 13.0);
  const auto mdau = daily_active(meerkat, mscale, 9.0);

  stats::print_banner("Figure 2: # of daily active users (paper-scale)");
  std::printf("%-5s  %-16s %-16s  %-14s %-14s\n", "day", "Peri viewers",
              "Peri broadcstrs", "Meer viewers", "Meer broadcstrs");
  for (std::uint32_t d = 0; d < periscope.profile.days; d += 7) {
    auto fmt = [](double v) {
      return stats::Table::integer(static_cast<std::int64_t>(v));
    };
    std::printf("%-5u  %-16s %-16s  %-14s %-14s\n", d,
                fmt(pdau.viewers[d]).c_str(),
                fmt(pdau.broadcasters[d]).c_str(),
                d < meerkat.profile.days ? fmt(mdau.viewers[d]).c_str() : "-",
                d < meerkat.profile.days ? fmt(mdau.broadcasters[d]).c_str()
                                         : "-");
  }

  std::printf("\nPeriscope viewers: %s (start) -> %s (end); paper: 200K -> 1M+\n",
              stats::Table::integer(static_cast<std::int64_t>(pdau.viewers[1]))
                  .c_str(),
              stats::Table::integer(static_cast<std::int64_t>(
                  pdau.viewers[periscope.profile.days - 2])).c_str());
  const std::uint32_t mid = periscope.profile.days / 2;
  std::printf("Viewer:broadcaster ratio mid-window: %.1f:1 (paper: ~10:1)\n",
              pdau.viewers[mid] / pdau.broadcasters[mid]);
  std::printf("Meerkat broadcasters end at %s (paper: <3K, declining)\n",
              stats::Table::integer(static_cast<std::int64_t>(
                  mdau.broadcasters[meerkat.profile.days - 2])).c_str());
  return 0;
}
