// Micro-benchmarks (google-benchmark) for the hot paths: the event queue,
// SHA-256, WOTS signing, the RTMP codec, and Zipf sampling. These bound
// how large a simulation the library can drive per wall-second.
#include <benchmark/benchmark.h>

#include <vector>

#include "livesim/media/encoder.h"
#include "livesim/protocol/rtmp.h"
#include "livesim/security/sha256.h"
#include "livesim/security/stream_sign.h"
#include "livesim/sim/simulator.h"
#include "livesim/util/rng.h"

namespace {
using namespace livesim;

void BM_EventQueueScheduleRun(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    std::uint64_t sink = 0;
    for (std::size_t i = 0; i < n; ++i)
      sim.schedule_at(static_cast<TimeUs>((i * 7919) % 100000),
                      [&sink] { ++sink; });
    sim.run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1000)->Arg(100000);

// Cancel-heavy mix: schedule N, cancel every other one through its handle,
// then drain. Exercises the O(1) handle validation plus the indexed heap
// splice -- the path timer-wheel-style workloads (retransmit timers armed
// and almost always cancelled) live on.
void BM_EventQueueScheduleCancelRun(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<sim::EventHandle> handles(n);
  for (auto _ : state) {
    sim::Simulator sim;
    std::uint64_t sink = 0;
    for (std::size_t i = 0; i < n; ++i)
      handles[i] = sim.schedule_at(static_cast<TimeUs>((i * 7919) % 100000),
                                   [&sink] { ++sink; });
    for (std::size_t i = 0; i < n; i += 2) sim.cancel(handles[i]);
    sim.run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EventQueueScheduleCancelRun)->Arg(1000)->Arg(100000);

void BM_Sha256Throughput(benchmark::State& state) {
  const auto bytes = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint8_t> data(bytes, 0xAB);
  for (auto _ : state) {
    auto digest = security::Sha256::hash(data);
    benchmark::DoNotOptimize(digest);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_Sha256Throughput)->Arg(64)->Arg(4096)->Arg(262144);

void BM_WotsSign(benchmark::State& state) {
  const auto seed = security::Sha256::hash(std::string("bench"));
  const auto kp = security::Wots::derive(seed, 0);
  const auto msg = security::Sha256::hash(std::string("frame"));
  for (auto _ : state) {
    auto sig = security::Wots::sign(kp, msg);
    benchmark::DoNotOptimize(sig);
  }
}
BENCHMARK(BM_WotsSign);

void BM_WotsVerify(benchmark::State& state) {
  const auto seed = security::Sha256::hash(std::string("bench"));
  const auto kp = security::Wots::derive(seed, 0);
  const auto msg = security::Sha256::hash(std::string("frame"));
  const auto sig = security::Wots::sign(kp, msg);
  for (auto _ : state) {
    auto pk = security::Wots::recover_public_key(sig, msg);
    benchmark::DoNotOptimize(pk);
  }
}
BENCHMARK(BM_WotsVerify);

void BM_RtmpCodecRoundTrip(benchmark::State& state) {
  media::FrameSource src({}, Rng(1));
  auto frame = src.next();
  frame.payload.assign(frame.size_bytes, 0x5C);
  for (auto _ : state) {
    const auto wire = protocol::frame_to_wire(frame);
    auto back = protocol::wire_to_frame(wire);
    benchmark::DoNotOptimize(back);
  }
}
BENCHMARK(BM_RtmpCodecRoundTrip);

void BM_ZipfSample(benchmark::State& state) {
  ZipfSampler zipf(state.range(0), 1.05);
  Rng rng(3);
  for (auto _ : state) {
    auto r = zipf.sample(rng);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_ZipfSample)->Arg(1000)->Arg(1000000);

void BM_StreamSignerPerFrame(benchmark::State& state) {
  const auto seed = security::Sha256::hash(std::string("bench"));
  media::FrameSource src({}, Rng(1));
  std::vector<media::VideoFrame> frames;
  for (int i = 0; i < 250; ++i) {
    auto f = src.next();
    f.payload.assign(f.size_bytes, 0x11);
    frames.push_back(std::move(f));
  }
  for (auto _ : state) {
    state.PauseTiming();
    security::StreamSigner signer(seed, 16, 25);
    auto work = frames;
    state.ResumeTiming();
    for (auto& f : work) signer.process(f);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 250);
}
BENCHMARK(BM_StreamSignerPerFrame);

}  // namespace

BENCHMARK_MAIN();
