// Figure 1: number of daily broadcasts over the measurement window.
//
// Paper shape: Periscope grows >300% over 3 months with a step at the
// Android launch (day 11 = May 26) and weekly weekend peaks; the Aug 7-9
// crawler outage dents the captured counts; Meerkat decays to below 4000
// per day within its month.
#include <cstdio>

#include "livesim/stats/report.h"
#include "livesim/stats/timeseries.h"
#include "livesim/workload/generator.h"

namespace {
using namespace livesim;

stats::DailySeries daily_captured(const workload::Dataset& ds) {
  stats::DailySeries s(ds.profile.days);
  for (const auto& b : ds.broadcasts)
    if (b.captured) s.add_day(b.day);
  return s;
}
}  // namespace

int main() {
  using namespace livesim;
  const double scale = 1.0 / 100.0;

  workload::Generator pgen(workload::AppProfile::periscope(), scale, 42);
  const auto periscope = pgen.generate();
  workload::Generator mgen(workload::AppProfile::meerkat(), scale * 25, 42);
  const auto meerkat = mgen.generate();

  const auto pseries = daily_captured(periscope);
  const auto mseries = daily_captured(meerkat);

  stats::print_banner("Figure 1: # of daily broadcasts (paper-scale)");
  std::printf("%-6s  %-22s  %-22s\n", "day", "Periscope/day", "Meerkat/day");
  for (std::uint32_t d = 0; d < pseries.days(); d += 7) {
    const double p = static_cast<double>(pseries.at(d)) / scale;
    const double m = d < mseries.days()
                         ? static_cast<double>(mseries.at(d)) / (scale * 25)
                         : 0.0;
    std::printf("%-6u  %-22s  %-22s\n", d,
                stats::Table::integer(static_cast<std::int64_t>(p)).c_str(),
                d < mseries.days()
                    ? stats::Table::integer(static_cast<std::int64_t>(m)).c_str()
                    : "-");
  }

  // Shape diagnostics the paper calls out.
  double first_week = 0, last_week = 0;
  for (std::uint32_t d = 0; d < 7; ++d) {
    first_week += static_cast<double>(pseries.at(d));
    last_week += static_cast<double>(pseries.at(pseries.days() - 7 + d));
  }
  std::printf("\nPeriscope growth over window: %.1fx (paper: >3x)\n",
              last_week / first_week);

  const auto& profile = periscope.profile;
  const double before = static_cast<double>(pseries.at(
      static_cast<std::size_t>(profile.step_day) - 1));
  const double after = static_cast<double>(pseries.at(
      static_cast<std::size_t>(profile.step_day) + 1));
  std::printf("Android-launch step (day %d): +%.0f%% (paper: biggest leap)\n",
              profile.step_day, (after / before - 1.0) * 100.0);

  const auto outage_day = static_cast<std::size_t>(profile.outage_start_day);
  std::printf("Crawler-outage dip day %zu: %s captured vs %s the week before\n",
              outage_day,
              stats::Table::integer(static_cast<std::int64_t>(
                  static_cast<double>(pseries.at(outage_day + 1)) / scale)).c_str(),
              stats::Table::integer(static_cast<std::int64_t>(
                  static_cast<double>(pseries.at(outage_day - 6)) / scale)).c_str());

  double m_first = 0, m_last = 0;
  for (std::uint32_t d = 0; d < 5; ++d) {
    m_first += static_cast<double>(mseries.at(d));
    m_last += static_cast<double>(mseries.at(mseries.days() - 5 + d));
  }
  std::printf("Meerkat decline over its month: %.0f%% (paper: ~-50%%)\n",
              (m_last / m_first - 1.0) * 100.0);
  return 0;
}
