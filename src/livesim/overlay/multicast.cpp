#include "livesim/overlay/multicast.h"

#include <stdexcept>

namespace livesim::overlay {

ForwardingHierarchy::ForwardingHierarchy(const geo::DatacenterCatalog& catalog,
                                         DatacenterId root_ingest)
    : root_(root_ingest) {
  const auto& root_dc = catalog.get(root_ingest);
  // Geographic tree with guaranteed progress: a parent must cut the
  // remaining distance to the root by at least 25%, which bounds depth
  // logarithmically in the root distance (nearby sites attach directly).
  constexpr double kProgress = 0.75;
  for (const auto* edge : catalog.edge_sites()) {
    const double my_root_km =
        geo::haversine_km(edge->location, root_dc.location);
    const geo::Datacenter* best = nullptr;
    double best_km = my_root_km;  // also no farther than going direct
    for (const auto* other : catalog.edge_sites()) {
      if (other->id == edge->id) continue;
      const double other_root_km =
          geo::haversine_km(other->location, root_dc.location);
      if (other_root_km > my_root_km * kProgress) continue;
      const double km = geo::haversine_km(edge->location, other->location);
      if (km < best_km) {
        best_km = km;
        best = other;
      }
    }
    parent_[edge->id.value] = best != nullptr ? best->id : root_ingest;
  }
  // Depths by walking up.
  for (const auto* edge : catalog.edge_sites()) {
    std::uint32_t d = 0;
    DatacenterId cur = edge->id;
    while (cur != root_) {
      cur = parent_.at(cur.value);
      ++d;
      if (d > 64) throw std::logic_error("hierarchy cycle");
    }
    depth_[edge->id.value] = d;
  }
  depth_[root_.value] = 0;
}

DatacenterId ForwardingHierarchy::parent(DatacenterId site) const {
  if (site == root_) return root_;
  return parent_.at(site.value);
}

std::vector<DatacenterId> ForwardingHierarchy::path_to_root(
    DatacenterId site) const {
  std::vector<DatacenterId> path;
  DatacenterId cur = site;
  while (cur != root_) {
    path.push_back(cur);
    cur = parent(cur);
  }
  return path;
}

std::uint32_t ForwardingHierarchy::depth(DatacenterId site) const {
  return depth_.at(site.value);
}

MulticastTree::MulticastTree(sim::Simulator& sim,
                             const geo::DatacenterCatalog& catalog,
                             const ForwardingHierarchy& hierarchy,
                             Params params, Rng rng)
    : sim_(sim), catalog_(catalog), hierarchy_(hierarchy), params_(params),
      rng_(rng) {}

MulticastTree::Node& MulticastTree::node_for(DatacenterId site) {
  auto it = nodes_.find(site.value);
  if (it == nodes_.end()) {
    Node node;
    node.site = site;
    it = nodes_.emplace(site.value, std::move(node)).first;
  }
  return it->second;
}

DurationUs MulticastTree::hop_delay(DatacenterId from, DatacenterId to,
                                    std::size_t bytes) {
  const double km = catalog_.distance_km(from, to);
  geo::LatencyModel latency;
  const DurationUs prop = latency.sample_delay(km, rng_);
  const double ser_s =
      static_cast<double>(bytes) * 8.0 / params_.interdc_link.bandwidth_bps;
  return prop + time::from_seconds(ser_s) + params_.graft_processing;
}

DurationUs MulticastTree::graft_path(DatacenterId site) {
  // Walk up from `site` until an already-grafted live node (or the root),
  // linking each new hop; failed ancestors are routed around. Each new
  // hop costs one control RTT; the graft completes after that latency.
  DurationUs latency = 0;
  DatacenterId cur = site;
  std::vector<DatacenterId> to_graft;
  while (true) {
    Node& node = node_for(cur);
    if (node.failed) {  // never graft onto a crashed server
      cur = hierarchy_.parent(cur);
      continue;
    }
    if (node.grafted) break;
    to_graft.push_back(cur);
    if (cur == hierarchy_.root()) break;
    DatacenterId up = hierarchy_.parent(cur);
    while (up != hierarchy_.root() && node_for(up).failed)
      up = hierarchy_.parent(up);
    latency += 2 * hop_delay(cur, up, 200);
    node_for(up).child_sites.insert(cur.value);
    cur = up;
  }
  sim_.schedule_in(latency, [this, to_graft] {
    for (DatacenterId s : to_graft) {
      Node& node = node_for(s);
      if (!node.failed) node.grafted = true;
    }
  });
  return latency;
}

std::uint64_t MulticastTree::join(const geo::GeoPoint& viewer_location,
                                  ViewerSink sink) {
  const std::uint64_t id = next_viewer_id_++;
  const auto& nearest = catalog_.nearest(viewer_location, geo::CdnRole::kEdge);
  // If the nearest edge is down, clients are redirected up the hierarchy.
  DatacenterId leaf_site = nearest.id;
  while (leaf_site != hierarchy_.root() && node_for(leaf_site).failed)
    leaf_site = hierarchy_.parent(leaf_site);

  Viewer v;
  v.leaf = leaf_site;
  v.sink = std::move(sink);
  auto lm = params_.viewer_last_mile;
  lm.base_delay += geo::LatencyModel{}.mean_delay(geo::haversine_km(
      viewer_location, catalog_.get(leaf_site).location));
  v.last_mile = std::make_unique<net::Link>(sim_, lm, rng_.fork());
  viewers_.emplace(id, std::move(v));
  ++viewer_count_;
  ++joins_;

  DurationUs join_latency = viewers_.at(id).last_mile->sample_delay(200);
  join_latency += graft_path(leaf_site);
  join_latency_sum_s_ += time::to_seconds(join_latency);

  sim_.schedule_in(join_latency, [this, id, leaf_site] {
    if (auto it = viewers_.find(id); it != viewers_.end() && it->second.active)
      node_for(leaf_site).local_viewers.push_back(id);
  });
  return id;
}

void MulticastTree::fail_site(DatacenterId site, DurationUs detection_delay) {
  if (site == hierarchy_.root()) return;  // ingest failure is out of scope
  auto it = nodes_.find(site.value);
  if (it == nodes_.end()) return;  // not on the tree: nothing to repair
  it->second.failed = true;
  it->second.grafted = false;
  const auto orphan_children = it->second.child_sites;
  const auto orphan_viewers = it->second.local_viewers;
  it->second.child_sites.clear();
  it->second.local_viewers.clear();
  // The parent stops forwarding to the dead node immediately.
  for (auto& [sid, node] : nodes_) node.child_sites.erase(site.value);

  sim_.schedule_in(detection_delay, [this, orphan_children, orphan_viewers,
                                     site] {
    ++repairs_;
    // Orphaned child sites re-graft around the failure.
    for (auto child : orphan_children) {
      auto cit = nodes_.find(child);
      if (cit == nodes_.end() || cit->second.failed) continue;
      cit->second.grafted = false;
      graft_path(DatacenterId{child});
    }
    // Stranded viewers reconnect to the first live ancestor.
    DatacenterId target = hierarchy_.parent(site);
    while (target != hierarchy_.root() && node_for(target).failed)
      target = hierarchy_.parent(target);
    const DurationUs d = graft_path(target);
    for (auto vid : orphan_viewers) {
      auto vit = viewers_.find(vid);
      if (vit == viewers_.end() || !vit->second.active) continue;
      vit->second.leaf = target;
      sim_.schedule_in(d, [this, vid, target] {
        auto v = viewers_.find(vid);
        if (v != viewers_.end() && v->second.active)
          node_for(target).local_viewers.push_back(vid);
      });
    }
  });
}

void MulticastTree::leave(std::uint64_t viewer_id) {
  auto it = viewers_.find(viewer_id);
  if (it == viewers_.end() || !it->second.active) return;
  it->second.active = false;
  --viewer_count_;

  Node& leaf = node_for(it->second.leaf);
  std::erase(leaf.local_viewers, viewer_id);
  // Prune childless, viewerless branches up the tree.
  DatacenterId cur = it->second.leaf;
  while (cur != hierarchy_.root()) {
    Node& node = node_for(cur);
    if (!node.local_viewers.empty() || !node.child_sites.empty()) break;
    const DatacenterId up = hierarchy_.parent(cur);
    nodes_.erase(cur.value);
    node_for(up).child_sites.erase(cur.value);
    cur = up;
  }
}

void MulticastTree::deliver_down(DatacenterId site,
                                 const media::VideoFrame& frame, TimeUs at) {
  auto it = nodes_.find(site.value);
  if (it == nodes_.end()) return;
  Node& node = it->second;
  if (node.failed) return;  // a crashed server forwards nothing
  if (!node.grafted && site != hierarchy_.root()) return;

  // Local viewer fan-out.
  for (std::uint64_t vid : node.local_viewers) {
    auto vit = viewers_.find(vid);
    if (vit == viewers_.end() || !vit->second.active) continue;
    ++forward_ops_;
    const DurationUs d =
        vit->second.last_mile->sample_delay(frame.size_bytes + 64);
    sim_.schedule_at(at + d, [this, vid, frame, arrive = at + d] {
      auto v = viewers_.find(vid);
      if (v != viewers_.end() && v->second.active) v->second.sink(frame, arrive);
    });
  }
  // One forward per child *site* -- this is the whole point.
  for (std::uint64_t child : node.child_sites) {
    ++forward_ops_;
    const DurationUs d =
        hop_delay(site, DatacenterId{child}, frame.size_bytes + 64);
    sim_.schedule_at(at + d, [this, child, frame, arrive = at + d] {
      deliver_down(DatacenterId{child}, frame, arrive);
    });
  }
}

void MulticastTree::push_frame(const media::VideoFrame& frame) {
  node_for(hierarchy_.root());  // ensure root exists
  nodes_.at(hierarchy_.root().value).grafted = true;
  deliver_down(hierarchy_.root(), frame, sim_.now());
}

}  // namespace livesim::overlay
