// Receiver-driven overlay multicast — the paper's §8 proposal.
//
// "To avoid the costs of managing persistent connections to each viewer,
// we can leverage a hierarchy of geographically clustered forwarding
// servers. To access a broadcast, a viewer would forward a request
// through their local leaf server and up the hierarchy, setting up a
// reverse forwarding path in the process. Once built, the forwarding
// path can efficiently forward video frames without per-viewer state or
// periodic polling." (cf. Scribe, Akamai's streaming CDN)
//
// We implement exactly that: forwarding servers at every edge datacenter
// arranged in a geographic hierarchy rooted at the broadcast's ingest
// site. Viewer joins propagate up only until they hit a node already on
// the tree; frames are then pushed down the tree once per *edge*, not
// once per viewer, and fan out to local viewers at the leaves.
#ifndef LIVESIM_OVERLAY_MULTICAST_H
#define LIVESIM_OVERLAY_MULTICAST_H

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "livesim/cdn/resource_model.h"
#include "livesim/geo/datacenters.h"
#include "livesim/media/frame.h"
#include "livesim/net/link.h"
#include "livesim/sim/simulator.h"

namespace livesim::overlay {

/// The static forwarding hierarchy over a datacenter catalog: each edge
/// site picks the nearest site that is strictly closer to the root as its
/// parent (a greedy geographic tree rooted at the ingest site).
class ForwardingHierarchy {
 public:
  ForwardingHierarchy(const geo::DatacenterCatalog& catalog,
                      DatacenterId root_ingest);

  DatacenterId root() const noexcept { return root_; }

  /// Parent of an edge site on the path toward the root; the root ingest
  /// itself is the parent of top-level edges.
  DatacenterId parent(DatacenterId site) const;

  /// Path from a site up to (and excluding) the root, nearest-first.
  std::vector<DatacenterId> path_to_root(DatacenterId site) const;

  /// Tree depth of a site (root = 0).
  std::uint32_t depth(DatacenterId site) const;

 private:
  DatacenterId root_;
  std::unordered_map<std::uint64_t, DatacenterId> parent_;
  std::unordered_map<std::uint64_t, std::uint32_t> depth_;
};

/// One broadcast's multicast tree: forwarding state per datacenter node
/// plus per-leaf viewer fan-out. Join = graft the path; leave = prune.
class MulticastTree {
 public:
  /// (frame, arrival time at the viewer's leaf) delivered to one viewer.
  using ViewerSink = std::function<void(const media::VideoFrame&, TimeUs)>;

  struct Params {
    net::Link::Params interdc_link{};       // per-hop tree links
    net::Link::Params viewer_last_mile{};   // leaf -> viewer
    DurationUs graft_processing = 5 * time::kMillisecond;
  };

  MulticastTree(sim::Simulator& sim, const geo::DatacenterCatalog& catalog,
                const ForwardingHierarchy& hierarchy, Params params,
                Rng rng);

  /// Viewer joins via its nearest edge site. Join latency (request up the
  /// tree to the first on-tree node) is simulated; frames flow after the
  /// graft completes. Returns the viewer's id within the tree.
  std::uint64_t join(const geo::GeoPoint& viewer_location, ViewerSink sink);

  /// Removes a viewer; prunes now-childless forwarding state.
  void leave(std::uint64_t viewer_id);

  /// Injects a frame at the root (called by the ingest server).
  void push_frame(const media::VideoFrame& frame);

  /// Failure injection: the forwarding server at `site` crashes. Frames
  /// stop flowing through it immediately; after `detection_delay`, every
  /// orphaned child (and the site's own viewers, via re-join) re-grafts
  /// around it through the hierarchy -- Scribe-style tree repair.
  void fail_site(DatacenterId site, DurationUs detection_delay);

  std::uint64_t repairs_performed() const noexcept { return repairs_; }

  /// Forwarding state size: number of on-tree datacenter nodes. This is
  /// the paper's point -- it scales with *regions covered*, not viewers.
  std::size_t on_tree_nodes() const noexcept { return nodes_.size(); }
  std::uint64_t viewers() const noexcept { return viewer_count_; }

  /// Total frame-forwarding operations performed (tree hops + viewer
  /// deliveries), for the CPU comparison.
  std::uint64_t forward_operations() const noexcept { return forward_ops_; }

  /// Mean join latency over all joins so far (seconds).
  double mean_join_latency_s() const noexcept {
    return joins_ ? join_latency_sum_s_ / static_cast<double>(joins_) : 0.0;
  }

 private:
  struct Node {
    DatacenterId site;
    bool grafted = false;           // receiving frames from the parent
    bool failed = false;            // crashed: forwards nothing
    std::vector<std::uint64_t> local_viewers;
    std::unordered_set<std::uint64_t> child_sites;
  };
  struct Viewer {
    DatacenterId leaf;
    ViewerSink sink;
    std::unique_ptr<net::Link> last_mile;
    bool active = true;
  };

  Node& node_for(DatacenterId site);
  DurationUs hop_delay(DatacenterId from, DatacenterId to, std::size_t bytes);
  void deliver_down(DatacenterId site, const media::VideoFrame& frame,
                    TimeUs at);
  /// Grafts `site` onto the live tree, skipping failed ancestors. Returns
  /// the join-control latency incurred.
  DurationUs graft_path(DatacenterId site);

  sim::Simulator& sim_;
  const geo::DatacenterCatalog& catalog_;
  const ForwardingHierarchy& hierarchy_;
  Params params_;
  Rng rng_;

  std::unordered_map<std::uint64_t, Node> nodes_;  // by site id
  std::unordered_map<std::uint64_t, Viewer> viewers_;
  std::uint64_t next_viewer_id_ = 0;
  std::uint64_t viewer_count_ = 0;
  std::uint64_t forward_ops_ = 0;
  std::uint64_t joins_ = 0;
  std::uint64_t repairs_ = 0;
  double join_latency_sum_s_ = 0.0;
};

/// Architecture comparison record for the §8 bench.
struct ArchitectureCost {
  double mean_viewer_delay_s = 0.0;
  double server_cpu_percent = 0.0;   // at the busiest server
  double per_viewer_state = 0.0;     // persistent-connection state entries
};

}  // namespace livesim::overlay

#endif  // LIVESIM_OVERLAY_MULTICAST_H
