#include "livesim/overlay/mesh.h"

#include <algorithm>
#include <cmath>

namespace livesim::overlay {

P2PMesh::P2PMesh(sim::Simulator& sim, Params params, Rng rng)
    : sim_(sim), params_(params), rng_(rng) {}

std::uint64_t P2PMesh::join(PeerSink sink) {
  const std::uint64_t id = next_id_++;
  Peer peer;
  peer.sink = std::move(sink);

  // Wire to up to `neighbors` random live peers, bidirectionally.
  std::uint32_t wired = 0;
  for (int attempts = 0;
       wired < params_.neighbors && attempts < 40 && !live_ids_.empty();
       ++attempts) {
    const std::uint64_t candidate = live_ids_[static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<std::int64_t>(live_ids_.size()) - 1))];
    auto it = peers_.find(candidate);
    if (it == peers_.end() || !it->second.active || candidate == id) continue;
    if (std::find(peer.neighbors.begin(), peer.neighbors.end(), candidate) !=
        peer.neighbors.end())
      continue;
    peer.neighbors.push_back(candidate);
    it->second.neighbors.push_back(id);
    ++wired;
  }
  peers_.emplace(id, std::move(peer));
  live_ids_.push_back(id);
  ++live_peers_;
  return id;
}

void P2PMesh::leave(std::uint64_t peer) {
  auto it = peers_.find(peer);
  if (it == peers_.end() || !it->second.active) return;
  it->second.active = false;
  --live_peers_;
  // Neighbor lists keep the id; delivery checks `active` (lazy cleanup,
  // as real meshes do between gossip rounds).
}

DurationUs P2PMesh::hop_delay(std::uint64_t chunk_bytes) {
  // Offer -> request -> transfer: one peer RTT plus the serialization of
  // the chunk over the sender's residential uplink.
  const double jitter =
      1.0 + params_.rtt_jitter * std::abs(rng_.normal(0.0, 1.0));
  const double transfer_s =
      static_cast<double>(chunk_bytes) * 8.0 / params_.peer_uplink_bps;
  return static_cast<DurationUs>(
      static_cast<double>(params_.peer_rtt) * jitter +
      transfer_s * static_cast<double>(time::kSecond));
}

void P2PMesh::deliver(std::uint64_t peer_id, const media::Chunk& chunk,
                      TimeUs at, std::uint32_t hop, TimeUs injected_at) {
  auto it = peers_.find(peer_id);
  if (it == peers_.end() || !it->second.active) return;
  Peer& peer = it->second;
  if (!peer.have.insert(chunk.seq).second) return;  // duplicate offer

  delay_.add(time::to_seconds(at - injected_at));
  hops_.add(hop);
  if (chunk.seq == last_chunk_seq_) ++last_chunk_receivers_;
  if (peer.sink) peer.sink(chunk, at, hop);

  // Relay to neighbors that (probably) don't have it yet.
  for (std::uint64_t n : peer.neighbors) {
    auto nit = peers_.find(n);
    if (nit == peers_.end() || !nit->second.active) continue;
    if (nit->second.have.count(chunk.seq)) continue;  // offer suppressed
    const DurationUs d = hop_delay(chunk.size_bytes);
    sim_.schedule_at(at + d, [this, n, chunk, arrive = at + d, hop,
                              injected_at] {
      deliver(n, chunk, arrive, hop + 1, injected_at);
    });
  }
}

void P2PMesh::push_chunk(const media::Chunk& chunk) {
  last_chunk_seq_ = chunk.seq;
  last_chunk_receivers_ = 0;
  std::uint32_t sent = 0;
  for (int attempts = 0; sent < params_.server_seeds && attempts < 100 &&
                         !live_ids_.empty();
       ++attempts) {
    const std::uint64_t target = live_ids_[static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<std::int64_t>(live_ids_.size()) - 1))];
    auto it = peers_.find(target);
    if (it == peers_.end() || !it->second.active) continue;
    ++seeded_;
    ++sent;
    const DurationUs d = hop_delay(chunk.size_bytes);
    const TimeUs injected = sim_.now();
    sim_.schedule_at(injected + d, [this, target, chunk,
                                    arrive = injected + d, injected] {
      deliver(target, chunk, arrive, 1, injected);
    });
  }
}

double P2PMesh::last_chunk_coverage() const noexcept {
  if (live_peers_ == 0) return 0.0;
  return static_cast<double>(last_chunk_receivers_) /
         static_cast<double>(live_peers_);
}

}  // namespace livesim::overlay
