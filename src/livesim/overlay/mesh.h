// Data-driven P2P mesh delivery -- the §2.2 related-work baseline
// (CoolStreaming/DONet-style): viewers form a random peer mesh, the
// server seeds each chunk to a handful of peers, and chunks spread
// epidemically peer-to-peer. The trade the paper's related work explores:
// server egress collapses to the seed count, but per-chunk delivery rides
// O(log N) peer hops of residential uplink -- and no interactivity story.
#ifndef LIVESIM_OVERLAY_MESH_H
#define LIVESIM_OVERLAY_MESH_H

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "livesim/media/frame.h"
#include "livesim/net/link.h"
#include "livesim/sim/simulator.h"
#include "livesim/stats/accumulator.h"

namespace livesim::overlay {

class P2PMesh {
 public:
  /// (chunk, delivery time, hop count from the server).
  using PeerSink =
      std::function<void(const media::Chunk&, TimeUs, std::uint32_t)>;

  struct Params {
    std::uint32_t neighbors = 4;       // mesh degree per peer
    std::uint32_t server_seeds = 3;    // peers the server sends each chunk
    DurationUs peer_rtt = 120 * time::kMillisecond;  // offer/pull handshake
    double peer_uplink_bps = 5e6;      // residential upload
    double rtt_jitter = 0.3;
  };

  P2PMesh(sim::Simulator& sim, Params params, Rng rng);

  /// Adds a peer; it wires itself to `neighbors` random existing peers
  /// (bidirectional). Returns the peer id.
  std::uint64_t join(PeerSink sink);

  /// Peer churn: the peer stops relaying and receiving.
  void leave(std::uint64_t peer);

  /// Server injects a chunk: seeds it to `server_seeds` random live peers.
  void push_chunk(const media::Chunk& chunk);

  std::uint64_t peers() const noexcept { return live_peers_; }
  /// Chunk copies the *server* sent (its egress) -- the P2P payoff.
  std::uint64_t server_egress_chunks() const noexcept { return seeded_; }
  /// Delivery delay (injection -> peer) across all deliveries, seconds.
  const stats::Accumulator& delivery_delay_s() const noexcept {
    return delay_;
  }
  const stats::Accumulator& delivery_hops() const noexcept { return hops_; }
  /// Fraction of live peers that received the last pushed chunk.
  double last_chunk_coverage() const noexcept;

 private:
  struct Peer {
    bool active = true;
    PeerSink sink;
    std::vector<std::uint64_t> neighbors;
    std::unordered_set<std::uint64_t> have;  // chunk seqs received
  };

  DurationUs hop_delay(std::uint64_t chunk_bytes);
  void deliver(std::uint64_t peer, const media::Chunk& chunk, TimeUs at,
               std::uint32_t hop, TimeUs injected_at);

  sim::Simulator& sim_;
  Params params_;
  Rng rng_;
  std::unordered_map<std::uint64_t, Peer> peers_;
  std::vector<std::uint64_t> live_ids_;  // for random seeding (may lag)
  std::uint64_t next_id_ = 0;
  std::uint64_t live_peers_ = 0;
  std::uint64_t seeded_ = 0;
  std::uint64_t last_chunk_seq_ = 0;
  std::uint64_t last_chunk_receivers_ = 0;
  stats::Accumulator delay_;
  stats::Accumulator hops_;
};

}  // namespace livesim::overlay

#endif  // LIVESIM_OVERLAY_MESH_H
