#include "livesim/security/attack.h"

#include <algorithm>

namespace livesim::security {

std::vector<std::uint8_t> TamperAttacker::intercept(
    std::vector<std::uint8_t> wire) {
  ++stats_.messages_seen;
  auto msg = protocol::decode_message(wire);
  if (!msg) {
    // Not parseable as plaintext RTMP (e.g. an RTMPS record): the
    // attacker can only forward (or corrupt) it blindly.
    ++stats_.parse_failures;
    return wire;
  }

  switch (msg->type) {
    case protocol::RtmpMessageType::kConnect: {
      // The broadcast token travels in plaintext -- the attacker can
      // harvest it (session hijacking) while forwarding unchanged.
      if (protocol::decode_connect(msg->body)) ++stats_.tokens_sniffed;
      return wire;
    }
    case protocol::RtmpMessageType::kVideoFrame: {
      auto frame = protocol::decode_video(msg->body);
      if (!frame) {
        ++stats_.parse_failures;
        return wire;
      }
      // Replace the picture, keep headers/timestamps so nothing looks
      // anomalous to the server. The signature (if any) is left in place
      // -- it no longer matches the payload, which is the point.
      std::fill(frame->payload.begin(), frame->payload.end(), replacement_);
      ++stats_.frames_tampered;
      protocol::RtmpMessage out{protocol::RtmpMessageType::kVideoFrame,
                                protocol::encode_video(*frame)};
      return protocol::encode_message(out);
    }
    default:
      return wire;
  }
}

}  // namespace livesim::security
