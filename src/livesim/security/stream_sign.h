// Stream signer / verifier: the paper's §7.2 countermeasure.
//
// At broadcast setup the broadcaster derives N one-time WOTS keys from a
// secret seed, builds a Merkle tree over their public keys, and sends the
// 32-byte root over the (already HTTPS-protected) control channel. While
// streaming, it signs a running hash of every frame since the previous
// signature -- "signing hashes across multiple frames", the paper's own
// overhead optimization -- every `sign_every` frames. Any party holding
// the root (Wowza, or viewers after the server forwards it) verifies each
// signature and detects tampering of any covered frame.
#ifndef LIVESIM_SECURITY_STREAM_SIGN_H
#define LIVESIM_SECURITY_STREAM_SIGN_H

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "livesim/media/frame.h"
#include "livesim/security/sha256.h"
#include "livesim/security/wots.h"

namespace livesim::security {

class StreamSigner {
 public:
  /// `max_signatures` must be a power of two; with sign_every = 25 (one
  /// signature per second of video) 4096 keys cover a >1 hour broadcast.
  StreamSigner(const Digest& seed, std::size_t max_signatures,
               std::uint32_t sign_every);

  const Digest& root() const noexcept { return tree_->root(); }
  std::uint32_t sign_every() const noexcept { return sign_every_; }

  /// Processes an outgoing frame: folds it into the running hash and, on
  /// every `sign_every`-th frame, writes a signature blob into
  /// frame.signature (empty otherwise). Throws when the key supply is
  /// exhausted.
  void process(media::VideoFrame& frame);

  std::uint64_t signatures_issued() const noexcept { return next_key_; }
  std::uint64_t hash_operations() const noexcept { return hash_ops_; }

 private:
  Digest seed_;
  std::uint32_t sign_every_;
  std::size_t max_signatures_;
  std::vector<Wots::KeyPair> keys_;  // derived once at setup (~2 KB/key)
  std::unique_ptr<MerkleTree> tree_;
  Sha256 running_;
  std::uint32_t frames_in_window_ = 0;
  std::uint64_t next_key_ = 0;
  std::uint64_t hash_ops_ = 0;
};

/// Verifier state held by the ingest server and/or each viewer.
class StreamVerifier {
 public:
  enum class Result {
    kPassThrough,  // unsigned frame inside a window; judged at window end
    kVerified,     // signature present and valid for the window
    kTampered,     // signature invalid, missing, or malformed
  };

  StreamVerifier(const Digest& root, std::uint32_t sign_every);

  Result process(const media::VideoFrame& frame);

  std::uint64_t windows_verified() const noexcept { return verified_; }
  std::uint64_t windows_tampered() const noexcept { return tampered_; }

 private:
  Digest root_;
  std::uint32_t sign_every_;
  Sha256 running_;
  std::uint32_t frames_in_window_ = 0;
  std::uint64_t window_index_ = 0;
  std::uint64_t verified_ = 0;
  std::uint64_t tampered_ = 0;
};

/// Serialized signature blob layout helpers (embedded in frame metadata).
struct SignatureBlob {
  std::uint64_t key_index = 0;
  std::vector<std::uint8_t> wots_signature;
  std::vector<Digest> auth_path;

  std::vector<std::uint8_t> encode() const;
  static std::optional<SignatureBlob> decode(
      std::span<const std::uint8_t> data);
  std::size_t wire_size() const noexcept;
};

}  // namespace livesim::security

#endif  // LIVESIM_SECURITY_STREAM_SIGN_H
