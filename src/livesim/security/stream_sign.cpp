#include "livesim/security/stream_sign.h"

#include <stdexcept>

#include "livesim/protocol/wire.h"

namespace livesim::security {

namespace {

void fold_frame(Sha256& running, const media::VideoFrame& frame) {
  protocol::ByteWriter w;
  w.u64(frame.seq);
  w.i64(frame.capture_ts);
  w.u8(frame.keyframe ? 1 : 0);
  running.update(w.data());
  running.update(frame.payload);
}

}  // namespace

StreamSigner::StreamSigner(const Digest& seed, std::size_t max_signatures,
                           std::uint32_t sign_every)
    : seed_(seed), sign_every_(sign_every), max_signatures_(max_signatures) {
  if (sign_every_ == 0)
    throw std::invalid_argument("StreamSigner: sign_every must be >= 1");
  std::vector<Digest> leaves;
  leaves.reserve(max_signatures);
  keys_.reserve(max_signatures);
  for (std::size_t i = 0; i < max_signatures; ++i) {
    keys_.push_back(Wots::derive(seed_, i));
    leaves.push_back(keys_.back().public_key);
  }
  tree_ = std::make_unique<MerkleTree>(std::move(leaves));
  // Key derivation costs: chains of 15 hashes x 67 chunks per key.
  hash_ops_ += max_signatures * Wots::kChunks * Wots::kChainLen;
}

void StreamSigner::process(media::VideoFrame& frame) {
  frame.signature.clear();
  fold_frame(running_, frame);
  ++hash_ops_;
  if (++frames_in_window_ < sign_every_) return;

  if (next_key_ >= max_signatures_)
    throw std::runtime_error("StreamSigner: one-time keys exhausted");

  const Digest window_digest = running_.finish();
  running_.reset();
  frames_in_window_ = 0;

  const Wots::KeyPair& kp = keys_[next_key_];
  SignatureBlob blob;
  blob.key_index = next_key_;
  blob.wots_signature = Wots::sign(kp, window_digest);
  blob.auth_path = tree_->auth_path(next_key_);
  frame.signature = blob.encode();
  // Signing: ~half the chain steps on average, plus the pk re-derivation.
  hash_ops_ += Wots::kChunks * (Wots::kChainLen / 2);
  ++next_key_;
}

StreamVerifier::StreamVerifier(const Digest& root, std::uint32_t sign_every)
    : root_(root), sign_every_(sign_every) {}

StreamVerifier::Result StreamVerifier::process(const media::VideoFrame& frame) {
  fold_frame(running_, frame);
  if (++frames_in_window_ < sign_every_) {
    if (!frame.signature.empty()) {
      // Signature where none was expected: treat as tampering (it could
      // be an attacker trying to re-frame the window boundaries).
      ++tampered_;
      running_.reset();
      frames_in_window_ = 0;
      ++window_index_;
      return Result::kTampered;
    }
    return Result::kPassThrough;
  }

  const Digest window_digest = running_.finish();
  running_.reset();
  frames_in_window_ = 0;
  const std::uint64_t window = window_index_++;

  const auto blob = SignatureBlob::decode(frame.signature);
  if (!blob || blob->key_index != window) {
    ++tampered_;
    return Result::kTampered;
  }
  const Digest pk =
      Wots::recover_public_key(blob->wots_signature, window_digest);
  if (!MerkleTree::verify(pk, blob->key_index, blob->auth_path, root_)) {
    ++tampered_;
    return Result::kTampered;
  }
  ++verified_;
  return Result::kVerified;
}

std::vector<std::uint8_t> SignatureBlob::encode() const {
  protocol::ByteWriter w;
  w.u64(key_index);
  w.bytes(wots_signature);
  w.u32(static_cast<std::uint32_t>(auth_path.size()));
  for (const Digest& d : auth_path) w.raw(d);
  return w.take();
}

std::optional<SignatureBlob> SignatureBlob::decode(
    std::span<const std::uint8_t> data) {
  protocol::ByteReader r(data);
  SignatureBlob blob;
  const auto idx = r.u64();
  if (!idx) return std::nullopt;
  blob.key_index = *idx;
  auto sig = r.bytes();
  if (!sig) return std::nullopt;
  blob.wots_signature = std::move(*sig);
  const auto n = r.u32();
  if (!n || *n > 64) return std::nullopt;
  for (std::uint32_t i = 0; i < *n; ++i) {
    Digest d{};
    for (std::size_t b = 0; b < d.size(); ++b) {
      const auto byte = r.u8();
      if (!byte) return std::nullopt;
      d[b] = *byte;
    }
    blob.auth_path.push_back(d);
  }
  if (!r.at_end()) return std::nullopt;
  return blob;
}

std::size_t SignatureBlob::wire_size() const noexcept {
  return 8 + 4 + wots_signature.size() + 4 + auth_path.size() * 32;
}

}  // namespace livesim::security
