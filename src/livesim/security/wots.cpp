#include "livesim/security/wots.h"

#include <cstring>
#include <stdexcept>

#include "livesim/protocol/wire.h"

namespace livesim::security {

std::array<std::uint8_t, Wots::kChunks> Wots::chunk_message(const Digest& m) {
  std::array<std::uint8_t, kChunks> chunks{};
  // 64 message chunks: 4 bits each.
  for (std::size_t i = 0; i < 32; ++i) {
    chunks[2 * i] = m[i] >> 4;
    chunks[2 * i + 1] = m[i] & 0xF;
  }
  // Checksum: sum of (15 - chunk) over message chunks, 3 base-16 digits.
  std::uint32_t checksum = 0;
  for (std::size_t i = 0; i < 64; ++i) checksum += kChainLen - chunks[i];
  chunks[64] = (checksum >> 8) & 0xF;
  chunks[65] = (checksum >> 4) & 0xF;
  chunks[66] = checksum & 0xF;
  return chunks;
}

Digest Wots::chain(const Digest& start, std::uint32_t from,
                   std::uint32_t steps) {
  Digest d = start;
  for (std::uint32_t i = 0; i < steps; ++i) {
    Sha256 h;
    h.update(std::string("livesim-wots-chain"));
    const std::uint8_t pos = static_cast<std::uint8_t>(from + i);
    h.update(std::span<const std::uint8_t>(&pos, 1));
    h.update(d);
    d = h.finish();
  }
  return d;
}

Wots::KeyPair Wots::derive(const Digest& seed, std::uint64_t index) {
  KeyPair kp;
  Sha256 pk_hash;
  pk_hash.update(std::string("livesim-wots-pk"));
  for (std::size_t c = 0; c < kChunks; ++c) {
    Sha256 h;
    h.update(std::string("livesim-wots-sk"));
    h.update(seed);
    protocol::ByteWriter w;
    w.u64(index);
    w.u32(static_cast<std::uint32_t>(c));
    h.update(w.data());
    kp.secret[c] = h.finish();
    pk_hash.update(chain(kp.secret[c], 0, kChainLen));
  }
  kp.public_key = pk_hash.finish();
  return kp;
}

std::vector<std::uint8_t> Wots::sign(const KeyPair& kp, const Digest& message) {
  const auto chunks = chunk_message(message);
  std::vector<std::uint8_t> sig;
  sig.reserve(kSignatureBytes);
  for (std::size_t c = 0; c < kChunks; ++c) {
    const Digest node = chain(kp.secret[c], 0, chunks[c]);
    sig.insert(sig.end(), node.begin(), node.end());
  }
  return sig;
}

Digest Wots::recover_public_key(const std::vector<std::uint8_t>& signature,
                                const Digest& message) {
  if (signature.size() != kSignatureBytes) return Digest{};  // malformed
  const auto chunks = chunk_message(message);
  Sha256 pk_hash;
  pk_hash.update(std::string("livesim-wots-pk"));
  for (std::size_t c = 0; c < kChunks; ++c) {
    Digest node;
    std::memcpy(node.data(), signature.data() + c * 32, 32);
    pk_hash.update(chain(node, chunks[c], kChainLen - chunks[c]));
  }
  return pk_hash.finish();
}

MerkleTree::MerkleTree(std::vector<Digest> leaves)
    : leaf_count_(leaves.size()) {
  if (leaf_count_ == 0 || (leaf_count_ & (leaf_count_ - 1)) != 0)
    throw std::invalid_argument("MerkleTree: leaf count must be a power of 2");
  nodes_.resize(2 * leaf_count_);
  for (std::size_t i = 0; i < leaf_count_; ++i)
    nodes_[leaf_count_ + i] = leaves[i];
  for (std::size_t i = leaf_count_ - 1; i >= 1; --i) {
    Sha256 h;
    h.update(std::string("livesim-merkle"));
    h.update(nodes_[2 * i]);
    h.update(nodes_[2 * i + 1]);
    nodes_[i] = h.finish();
  }
}

std::vector<Digest> MerkleTree::auth_path(std::size_t index) const {
  if (index >= leaf_count_) throw std::out_of_range("MerkleTree::auth_path");
  std::vector<Digest> path;
  std::size_t node = leaf_count_ + index;
  while (node > 1) {
    path.push_back(nodes_[node ^ 1]);
    node >>= 1;
  }
  return path;
}

bool MerkleTree::verify(const Digest& leaf, std::size_t index,
                        const std::vector<Digest>& path, const Digest& root) {
  Digest cur = leaf;
  std::size_t idx = index;
  for (const Digest& sibling : path) {
    Sha256 h;
    h.update(std::string("livesim-merkle"));
    if ((idx & 1) == 0) {
      h.update(cur);
      h.update(sibling);
    } else {
      h.update(sibling);
      h.update(cur);
    }
    cur = h.finish();
    idx >>= 1;
  }
  return digest_equal(cur, root);
}

}  // namespace livesim::security
