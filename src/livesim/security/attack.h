// The §7.1 broadcast-tampering attack, at the byte level.
//
// A man-in-the-middle on the broadcaster's (or a viewer's) WiFi parses
// the unencrypted RTMP messages, swaps the video payload for its own
// (black frames in the paper's proof of concept), and forwards the
// modified bytes. Against an unsigned stream this succeeds silently;
// against a signed stream the verifier flags every tampered window; over
// RTMPS the record MAC fails outright.
#ifndef LIVESIM_SECURITY_ATTACK_H
#define LIVESIM_SECURITY_ATTACK_H

#include <cstdint>
#include <optional>
#include <vector>

#include "livesim/protocol/rtmp.h"

namespace livesim::security {

class TamperAttacker {
 public:
  struct Stats {
    std::uint64_t messages_seen = 0;
    std::uint64_t frames_tampered = 0;
    std::uint64_t parse_failures = 0;
    std::uint64_t tokens_sniffed = 0;
  };

  /// `replacement_byte`: what to overwrite payloads with (0x00 = the
  /// paper's black frames).
  explicit TamperAttacker(std::uint8_t replacement_byte = 0x00)
      : replacement_(replacement_byte) {}

  /// Intercepts one wire message. Returns the bytes to forward: tampered
  /// video frames, or the original bytes for anything it cannot parse
  /// (e.g. RTMPS records -- which then fail their MAC downstream).
  std::vector<std::uint8_t> intercept(std::vector<std::uint8_t> wire);

  const Stats& stats() const noexcept { return stats_; }

 private:
  std::uint8_t replacement_;
  Stats stats_;
};

}  // namespace livesim::security

#endif  // LIVESIM_SECURITY_ATTACK_H
