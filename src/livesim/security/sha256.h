// SHA-256 (FIPS 180-4), implemented from scratch.
//
// Used by the stream-integrity defense of §7: HMAC keying, the WOTS
// one-time signatures, and the Merkle tree are all built on this hash.
#ifndef LIVESIM_SECURITY_SHA256_H
#define LIVESIM_SECURITY_SHA256_H

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace livesim::security {

using Digest = std::array<std::uint8_t, 32>;

/// Incremental SHA-256.
class Sha256 {
 public:
  Sha256() { reset(); }

  void reset();
  void update(std::span<const std::uint8_t> data);
  void update(const std::string& s);

  /// Finalizes and returns the digest; the object must be reset() before
  /// reuse.
  Digest finish();

  /// One-shot convenience.
  static Digest hash(std::span<const std::uint8_t> data);
  static Digest hash(const std::string& s);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_{};
  std::uint64_t total_bytes_ = 0;
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffer_len_ = 0;
};

/// HMAC-SHA256 per RFC 2104.
Digest hmac_sha256(std::span<const std::uint8_t> key,
                   std::span<const std::uint8_t> message);

/// Hex encoding of a digest (for logs and tests).
std::string to_hex(const Digest& d);

/// Constant-time digest comparison.
bool digest_equal(const Digest& a, const Digest& b) noexcept;

}  // namespace livesim::security

#endif  // LIVESIM_SECURITY_SHA256_H
