// Winternitz one-time signatures (WOTS) over SHA-256.
//
// The §7 defense needs the broadcaster to sign frame hashes so that both
// the ingest server and every viewer can verify integrity. A hash-based
// scheme fits the paper's constraints exactly: cheap on phones (a few
// hundred hashes per signature vs. full-stream TLS), publicly verifiable,
// and amenable to the paper's "sign only selective frames or sign hashes
// across multiple frames" optimization.
//
// Parameters: w = 16 (4-bit chunks) -> 64 message chunks + 3 checksum
// chunks = 67 hash chains of length 15.
#ifndef LIVESIM_SECURITY_WOTS_H
#define LIVESIM_SECURITY_WOTS_H

#include <array>
#include <cstdint>
#include <vector>

#include "livesim/security/sha256.h"

namespace livesim::security {

class Wots {
 public:
  static constexpr std::size_t kChunks = 67;      // 64 message + 3 checksum
  static constexpr std::uint32_t kChainLen = 15;  // w - 1 iterations max
  static constexpr std::size_t kSignatureBytes = kChunks * 32;

  /// Deterministic keypair from a 32-byte seed and a key index.
  struct KeyPair {
    std::array<Digest, kChunks> secret;
    Digest public_key;  // H(pk_0 || ... || pk_66)
  };

  static KeyPair derive(const Digest& seed, std::uint64_t index);

  /// Signs a 32-byte digest; output is kChunks digests concatenated.
  static std::vector<std::uint8_t> sign(const KeyPair& kp,
                                        const Digest& message);

  /// Recomputes the public key from a signature; compare against the
  /// known public key (or feed into a Merkle proof).
  static Digest recover_public_key(const std::vector<std::uint8_t>& signature,
                                   const Digest& message);

 private:
  static std::array<std::uint8_t, kChunks> chunk_message(const Digest& m);
  static Digest chain(const Digest& start, std::uint32_t from,
                      std::uint32_t steps);
};

/// Merkle tree over WOTS public keys: one root authenticates many one-time
/// keys, so the broadcaster only needs to exchange 32 bytes at setup.
class MerkleTree {
 public:
  /// `leaves` must be a power of two in count.
  explicit MerkleTree(std::vector<Digest> leaves);

  const Digest& root() const noexcept { return nodes_[1]; }
  std::size_t leaf_count() const noexcept { return leaf_count_; }

  /// Sibling path from leaf `index` to the root.
  std::vector<Digest> auth_path(std::size_t index) const;

  /// Verifies that `leaf` at `index` is under `root` via `path`.
  static bool verify(const Digest& leaf, std::size_t index,
                     const std::vector<Digest>& path, const Digest& root);

 private:
  std::size_t leaf_count_;
  std::vector<Digest> nodes_;  // 1-indexed heap layout
};

}  // namespace livesim::security

#endif  // LIVESIM_SECURITY_WOTS_H
