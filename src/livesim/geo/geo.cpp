#include "livesim/geo/geo.h"

#include <cmath>

namespace livesim::geo {
namespace {
constexpr double kEarthRadiusKm = 6371.0;
constexpr double kDegToRad = M_PI / 180.0;
}  // namespace

double haversine_km(const GeoPoint& a, const GeoPoint& b) noexcept {
  const double lat1 = a.lat_deg * kDegToRad;
  const double lat2 = b.lat_deg * kDegToRad;
  const double dlat = (b.lat_deg - a.lat_deg) * kDegToRad;
  const double dlon = (b.lon_deg - a.lon_deg) * kDegToRad;
  const double s1 = std::sin(dlat / 2.0);
  const double s2 = std::sin(dlon / 2.0);
  const double h = s1 * s1 + std::cos(lat1) * std::cos(lat2) * s2 * s2;
  return 2.0 * kEarthRadiusKm * std::asin(std::min(1.0, std::sqrt(h)));
}

DurationUs LatencyModel::mean_delay(double distance_km) const noexcept {
  const double prop_ms = distance_km / params_.km_per_ms;
  return params_.base + time::from_millis(prop_ms);
}

DurationUs LatencyModel::sample_delay(double distance_km, Rng& rng) const noexcept {
  const DurationUs mean = mean_delay(distance_km);
  // Multiplicative jitter, right-skewed: queueing adds delay more often
  // than routing removes it.
  const double mult =
      1.0 + params_.jitter_fraction * std::abs(rng.normal(0.0, 1.0));
  auto d = static_cast<DurationUs>(static_cast<double>(mean) * mult);
  return d < params_.base ? params_.base : d;
}

}  // namespace livesim::geo
