// Datacenter catalogs for the paper's measured CDN footprint (Figure 9):
// 8 Wowza ingest sites on Amazon EC2 and 23 Fastly edge sites (the 2015
// footprint, i.e. before the Dec-2015 Perth/Wellington/Sao-Paulo adds the
// paper explicitly excludes). 6 of 8 Wowza sites are co-located with a
// Fastly site in the same city, 7 of 8 on the same continent, with South
// America the exception -- matching the paper's observation.
#ifndef LIVESIM_GEO_DATACENTERS_H
#define LIVESIM_GEO_DATACENTERS_H

#include <span>
#include <string>
#include <vector>

#include "livesim/geo/geo.h"
#include "livesim/util/ids.h"

namespace livesim::geo {

enum class Continent {
  kNorthAmerica,
  kSouthAmerica,
  kEurope,
  kAsia,
  kOceania,
};

enum class CdnRole { kIngest, kEdge };  // Wowza-like vs Fastly-like

struct Datacenter {
  DatacenterId id;
  std::string city;
  Continent continent;
  GeoPoint location;
  CdnRole role;
};

/// The full catalog: ids are stable across runs (index order below).
class DatacenterCatalog {
 public:
  /// Builds the paper-era catalog (8 ingest + 23 edge).
  static DatacenterCatalog paper_footprint();

  /// A reduced single-region footprint, handy for unit tests.
  static DatacenterCatalog single_site();

  /// Appends a site to the catalog (id = current size). Custom topologies
  /// for tests and what-if footprints; the paper catalogs above are built
  /// through the same path, so ids are always dense and insertion-ordered.
  DatacenterId add_site(std::string city, Continent cont, double lat,
                        double lon, CdnRole role);

  const std::vector<Datacenter>& all() const noexcept { return dcs_; }
  const Datacenter& get(DatacenterId id) const;

  std::vector<const Datacenter*> ingest_sites() const;
  std::vector<const Datacenter*> edge_sites() const;

  /// Nearest datacenter of a role to a point (how Periscope assigns
  /// broadcasters to Wowza, and IP anycast assigns viewers to Fastly).
  /// Tie-break: among equidistant sites the smallest DatacenterId wins —
  /// the same rule k_nearest and every failover/spill path applies, so
  /// anycast decisions are reproducible bit for bit.
  const Datacenter& nearest(const GeoPoint& p, CdnRole role) const;

  /// Site-keyed variant: nearest datacenter of a role to another catalog
  /// site, answered from the precomputed pairwise-distance cache (no
  /// haversine evaluation). Same (distance, id) tie-break, and the cached
  /// distances are the very doubles the point-keyed overload computes, so
  /// both overloads always agree bit for bit.
  const Datacenter& nearest(DatacenterId from, CdnRole role) const;

  /// The k nearest datacenters of a role, sorted by (distance, id) — the
  /// explicit tie-break above, so the ordering is total and deterministic.
  /// k == 0 means "all sites of the role". Sites whose id appears in
  /// `exclude` are skipped before ranking (a failover must never
  /// re-consider the PoP that just failed it).
  std::vector<const Datacenter*> k_nearest(
      const GeoPoint& p, CdnRole role, std::size_t k,
      std::span<const DatacenterId> exclude = {}) const;

  /// Site-keyed variant of k_nearest, served from the distance cache.
  std::vector<const Datacenter*> k_nearest(
      DatacenterId from, CdnRole role, std::size_t k,
      std::span<const DatacenterId> exclude = {}) const;

  /// Edge site co-located (same city) with the given ingest site, if any.
  /// Returns nullptr for the South-America exception.
  const Datacenter* colocated_edge(DatacenterId ingest) const;

  /// Distance between two catalog datacenters in km. Served from the
  /// pairwise cache: failover storms rank candidate sites over and over,
  /// and the catalog is immutable between add_site calls, so every
  /// site-to-site distance is computed exactly once per topology.
  double distance_km(DatacenterId a, DatacenterId b) const;

 private:
  void add(std::string city, Continent cont, double lat, double lon,
           CdnRole role);
  void rebuild_distance_cache();
  const double* distance_row(DatacenterId from) const {
    return dist_.data() + from.value * dcs_.size();
  }

  std::vector<Datacenter> dcs_;
  // Row-major n x n matrix of haversine_km over ordered site pairs,
  // rebuilt on add(). Ordered (not just symmetric) so dist_[a][b] is the
  // bit-exact double haversine_km(a.location, b.location) would return.
  std::vector<double> dist_;
};

/// Random user-location sampler weighted by the paper-era user base:
/// concentrated in North America and Europe, with Asia/Oceania/South
/// America tails. Used to place broadcasters and viewers.
class UserGeoSampler {
 public:
  GeoPoint sample(Rng& rng) const;

 private:
  struct Region {
    GeoPoint center;
    double spread_deg;
    double weight;
  };
  static const std::vector<Region>& regions();
};

}  // namespace livesim::geo

#endif  // LIVESIM_GEO_DATACENTERS_H
