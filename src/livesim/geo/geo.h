// Geographic primitives: coordinates, great-circle distance, and a
// distance -> network latency model used for all wide-area links.
#ifndef LIVESIM_GEO_GEO_H
#define LIVESIM_GEO_GEO_H

#include <string>

#include "livesim/util/rng.h"
#include "livesim/util/time.h"

namespace livesim::geo {

struct GeoPoint {
  double lat_deg = 0.0;
  double lon_deg = 0.0;
};

/// Great-circle distance in kilometres (haversine, mean Earth radius).
double haversine_km(const GeoPoint& a, const GeoPoint& b) noexcept;

/// Wide-area latency model.
///
/// One-way delay = base processing + distance / (c * fiber_factor) *
/// route_inflation + jitter. The defaults give ~35 ms one-way across the
/// US and ~90 ms transatlantic-to-Asia, consistent with the RTT scales the
/// paper's CDN measurements imply.
class LatencyModel {
 public:
  struct Params {
    DurationUs base = time::from_millis(2.0);   // per-hop processing floor
    double km_per_ms = 100.0;                   // ~0.5c effective + routing
    double jitter_fraction = 0.10;              // lognormal-ish spread
  };

  LatencyModel() = default;
  explicit LatencyModel(Params p) : params_(p) {}

  /// Deterministic mean one-way propagation delay for a distance.
  DurationUs mean_delay(double distance_km) const noexcept;

  /// Sampled one-way delay with jitter (never below base).
  DurationUs sample_delay(double distance_km, Rng& rng) const noexcept;

  const Params& params() const noexcept { return params_; }

 private:
  Params params_{};
};

}  // namespace livesim::geo

#endif  // LIVESIM_GEO_GEO_H
