#include "livesim/geo/datacenters.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace livesim::geo {

void DatacenterCatalog::add(std::string city, Continent cont, double lat,
                            double lon, CdnRole role) {
  Datacenter dc;
  dc.id = DatacenterId{dcs_.size()};
  dc.city = std::move(city);
  dc.continent = cont;
  dc.location = GeoPoint{lat, lon};
  dc.role = role;
  dcs_.push_back(std::move(dc));
  rebuild_distance_cache();
}

void DatacenterCatalog::rebuild_distance_cache() {
  // O(n^2) per add, but catalogs are tens of sites built once; every
  // query afterwards is a cache read.
  const std::size_t n = dcs_.size();
  dist_.resize(n * n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      dist_[i * n + j] = haversine_km(dcs_[i].location, dcs_[j].location);
}

DatacenterId DatacenterCatalog::add_site(std::string city, Continent cont,
                                         double lat, double lon,
                                         CdnRole role) {
  add(std::move(city), cont, lat, lon, role);
  return dcs_.back().id;
}

DatacenterCatalog DatacenterCatalog::paper_footprint() {
  DatacenterCatalog c;
  using enum Continent;
  // --- Wowza ingest sites: the 8 Amazon EC2 regions of mid-2015. ---
  c.add("Ashburn", kNorthAmerica, 39.04, -77.49, CdnRole::kIngest);
  c.add("San Jose", kNorthAmerica, 37.34, -121.89, CdnRole::kIngest);
  c.add("Boardman", kNorthAmerica, 45.84, -119.70, CdnRole::kIngest);  // Oregon
  c.add("Dublin", kEurope, 53.35, -6.26, CdnRole::kIngest);
  c.add("Frankfurt", kEurope, 50.11, 8.68, CdnRole::kIngest);
  c.add("Tokyo", kAsia, 35.68, 139.69, CdnRole::kIngest);
  c.add("Singapore", kAsia, 1.35, 103.82, CdnRole::kIngest);
  c.add("Sao Paulo", kSouthAmerica, -23.55, -46.63, CdnRole::kIngest);
  // --- Fastly edge sites: the 23-site footprint of 2015. ---
  c.add("Ashburn", kNorthAmerica, 39.04, -77.49, CdnRole::kEdge);
  c.add("New York", kNorthAmerica, 40.71, -74.01, CdnRole::kEdge);
  c.add("Boston", kNorthAmerica, 42.36, -71.06, CdnRole::kEdge);
  c.add("Atlanta", kNorthAmerica, 33.75, -84.39, CdnRole::kEdge);
  c.add("Miami", kNorthAmerica, 25.76, -80.19, CdnRole::kEdge);
  c.add("Chicago", kNorthAmerica, 41.88, -87.63, CdnRole::kEdge);
  c.add("Dallas", kNorthAmerica, 32.78, -96.80, CdnRole::kEdge);
  c.add("Denver", kNorthAmerica, 39.74, -104.99, CdnRole::kEdge);
  c.add("Los Angeles", kNorthAmerica, 34.05, -118.24, CdnRole::kEdge);
  c.add("San Jose", kNorthAmerica, 37.34, -121.89, CdnRole::kEdge);
  c.add("San Francisco", kNorthAmerica, 37.77, -122.42, CdnRole::kEdge);
  c.add("Seattle", kNorthAmerica, 47.61, -122.33, CdnRole::kEdge);
  c.add("Toronto", kNorthAmerica, 43.65, -79.38, CdnRole::kEdge);
  c.add("London", kEurope, 51.51, -0.13, CdnRole::kEdge);
  c.add("Dublin", kEurope, 53.35, -6.26, CdnRole::kEdge);
  c.add("Amsterdam", kEurope, 52.37, 4.90, CdnRole::kEdge);
  c.add("Paris", kEurope, 48.86, 2.35, CdnRole::kEdge);
  c.add("Frankfurt", kEurope, 50.11, 8.68, CdnRole::kEdge);
  c.add("Stockholm", kEurope, 59.33, 18.07, CdnRole::kEdge);
  c.add("Tokyo", kAsia, 35.68, 139.69, CdnRole::kEdge);
  c.add("Singapore", kAsia, 1.35, 103.82, CdnRole::kEdge);
  c.add("Hong Kong", kAsia, 22.32, 114.17, CdnRole::kEdge);
  c.add("Sydney", kOceania, -33.87, 151.21, CdnRole::kEdge);
  return c;
}

DatacenterCatalog DatacenterCatalog::single_site() {
  DatacenterCatalog c;
  c.add("Testville", Continent::kNorthAmerica, 40.0, -100.0, CdnRole::kIngest);
  c.add("Testville", Continent::kNorthAmerica, 40.0, -100.0, CdnRole::kEdge);
  return c;
}

const Datacenter& DatacenterCatalog::get(DatacenterId id) const {
  if (!id.valid() || id.value >= dcs_.size())
    throw std::out_of_range("DatacenterCatalog::get: bad id");
  return dcs_[id.value];
}

std::vector<const Datacenter*> DatacenterCatalog::ingest_sites() const {
  std::vector<const Datacenter*> out;
  for (const auto& dc : dcs_)
    if (dc.role == CdnRole::kIngest) out.push_back(&dc);
  return out;
}

std::vector<const Datacenter*> DatacenterCatalog::edge_sites() const {
  std::vector<const Datacenter*> out;
  for (const auto& dc : dcs_)
    if (dc.role == CdnRole::kEdge) out.push_back(&dc);
  return out;
}

const Datacenter& DatacenterCatalog::nearest(const GeoPoint& p,
                                             CdnRole role) const {
  // Explicit tie-break: (distance, id) lexicographic, so two equidistant
  // sites resolve to the smaller id instead of whatever the iteration
  // order happened to be. Iteration is in id order, so the strict `<`
  // keeps the first (smallest-id) site of any tied group.
  const Datacenter* best = nullptr;
  double best_km = std::numeric_limits<double>::infinity();
  for (const auto& dc : dcs_) {
    if (dc.role != role) continue;
    const double km = haversine_km(p, dc.location);
    if (km < best_km ||
        (km == best_km && best != nullptr && dc.id.value < best->id.value)) {
      best_km = km;
      best = &dc;
    }
  }
  if (best == nullptr)
    throw std::logic_error("DatacenterCatalog::nearest: no site of role");
  return *best;
}

const Datacenter& DatacenterCatalog::nearest(DatacenterId from,
                                             CdnRole role) const {
  const Datacenter& origin = get(from);
  const double* row = distance_row(origin.id);
  const Datacenter* best = nullptr;
  double best_km = std::numeric_limits<double>::infinity();
  for (const auto& dc : dcs_) {
    if (dc.role != role) continue;
    const double km = row[dc.id.value];
    if (km < best_km ||
        (km == best_km && best != nullptr && dc.id.value < best->id.value)) {
      best_km = km;
      best = &dc;
    }
  }
  if (best == nullptr)
    throw std::logic_error("DatacenterCatalog::nearest: no site of role");
  return *best;
}

std::vector<const Datacenter*> DatacenterCatalog::k_nearest(
    const GeoPoint& p, CdnRole role, std::size_t k,
    std::span<const DatacenterId> exclude) const {
  std::vector<std::pair<double, const Datacenter*>> ranked;
  ranked.reserve(dcs_.size());
  for (const auto& dc : dcs_) {
    if (dc.role != role) continue;
    bool skip = false;
    for (DatacenterId ex : exclude)
      if (ex.value == dc.id.value) {
        skip = true;
        break;
      }
    if (skip) continue;
    ranked.emplace_back(haversine_km(p, dc.location), &dc);
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first < b.first;
              return a.second->id.value < b.second->id.value;
            });
  if (k != 0 && ranked.size() > k) ranked.resize(k);
  std::vector<const Datacenter*> out;
  out.reserve(ranked.size());
  for (const auto& [km, dc] : ranked) out.push_back(dc);
  return out;
}

std::vector<const Datacenter*> DatacenterCatalog::k_nearest(
    DatacenterId from, CdnRole role, std::size_t k,
    std::span<const DatacenterId> exclude) const {
  const Datacenter& origin = get(from);
  const double* row = distance_row(origin.id);
  std::vector<std::pair<double, const Datacenter*>> ranked;
  ranked.reserve(dcs_.size());
  for (const auto& dc : dcs_) {
    if (dc.role != role) continue;
    bool skip = false;
    for (DatacenterId ex : exclude)
      if (ex.value == dc.id.value) {
        skip = true;
        break;
      }
    if (skip) continue;
    ranked.emplace_back(row[dc.id.value], &dc);
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first < b.first;
              return a.second->id.value < b.second->id.value;
            });
  if (k != 0 && ranked.size() > k) ranked.resize(k);
  std::vector<const Datacenter*> out;
  out.reserve(ranked.size());
  for (const auto& [km, dc] : ranked) out.push_back(dc);
  return out;
}

const Datacenter* DatacenterCatalog::colocated_edge(DatacenterId ingest) const {
  const Datacenter& in = get(ingest);
  for (const auto& dc : dcs_) {
    if (dc.role == CdnRole::kEdge && dc.city == in.city) return &dc;
  }
  return nullptr;
}

double DatacenterCatalog::distance_km(DatacenterId a, DatacenterId b) const {
  get(a);  // bounds checks, same failure mode as the uncached version
  get(b);
  return distance_row(a)[b.value];
}

const std::vector<UserGeoSampler::Region>& UserGeoSampler::regions() {
  // Weights approximate the 2015 Periscope user base: US-heavy, strong
  // European presence, growing Asia, small Oceania / South America tails.
  static const std::vector<Region> kRegions = {
      {{40.0, -98.0}, 12.0, 0.40},   // continental US
      {{37.5, -120.0}, 4.0, 0.10},   // US west coast cluster
      {{50.0, 8.0}, 8.0, 0.22},      // western/central Europe
      {{56.0, 16.0}, 5.0, 0.04},     // northern Europe
      {{35.7, 139.7}, 5.0, 0.08},    // Japan
      {{10.0, 105.0}, 8.0, 0.06},    // southeast Asia
      {{-33.0, 150.0}, 5.0, 0.04},   // Australia
      {{-20.0, -50.0}, 8.0, 0.06},   // South America
  };
  return kRegions;
}

GeoPoint UserGeoSampler::sample(Rng& rng) const {
  const auto& rs = regions();
  double total = 0.0;
  for (const auto& r : rs) total += r.weight;
  double pick = rng.uniform() * total;
  const Region* chosen = &rs.back();
  for (const auto& r : rs) {
    if (pick < r.weight) {
      chosen = &r;
      break;
    }
    pick -= r.weight;
  }
  GeoPoint p;
  p.lat_deg = chosen->center.lat_deg + rng.normal(0.0, chosen->spread_deg);
  p.lon_deg = chosen->center.lon_deg + rng.normal(0.0, chosen->spread_deg);
  if (p.lat_deg > 85.0) p.lat_deg = 85.0;
  if (p.lat_deg < -85.0) p.lat_deg = -85.0;
  while (p.lon_deg > 180.0) p.lon_deg -= 360.0;
  while (p.lon_deg < -180.0) p.lon_deg += 360.0;
  return p;
}

}  // namespace livesim::geo
