#include "livesim/social/graph.h"

#include <algorithm>
#include <queue>
#include <stdexcept>
#include <unordered_set>

#include "livesim/stats/accumulator.h"

namespace livesim::social {

bool Graph::add_edge(std::uint32_t u, std::uint32_t v) {
  if (u == v || u >= nodes() || v >= nodes()) return false;
  auto& adj = out_[u];
  if (std::find(adj.begin(), adj.end(), v) != adj.end()) return false;
  adj.push_back(v);
  ++in_degree_[v];
  ++edge_count_;
  return true;
}

void Graph::build_reverse() {
  in_.assign(nodes(), {});
  for (std::uint32_t v = 0; v < nodes(); ++v)
    in_[v].reserve(in_degree_[v]);
  for (std::uint32_t u = 0; u < nodes(); ++u)
    for (std::uint32_t v : out_[u]) in_[v].push_back(u);
}

const std::vector<std::uint32_t>& Graph::followers_of(std::uint32_t v) const {
  if (in_.empty()) throw std::logic_error("Graph: build_reverse() first");
  return in_.at(v);
}

namespace {

/// Undirected neighbor view of a node (out plus in would need an in-list;
/// we approximate the projection with out-neighbors of u plus nodes that u
/// appears under -- too costly. Instead we build a temporary undirected
/// adjacency for the sampled computation).
std::vector<std::vector<std::uint32_t>> undirected_adjacency(const Graph& g) {
  std::vector<std::vector<std::uint32_t>> adj(g.nodes());
  for (std::uint32_t u = 0; u < g.nodes(); ++u) {
    for (std::uint32_t v : g.out(u)) {
      adj[u].push_back(v);
      adj[v].push_back(u);
    }
  }
  for (auto& nbrs : adj) {
    std::sort(nbrs.begin(), nbrs.end());
    nbrs.erase(std::unique(nbrs.begin(), nbrs.end()), nbrs.end());
  }
  return adj;
}

double local_clustering(const std::vector<std::vector<std::uint32_t>>& adj,
                        std::uint32_t u) {
  const auto& nbrs = adj[u];
  const std::size_t k = nbrs.size();
  if (k < 2) return 0.0;
  std::uint64_t links = 0;
  for (std::size_t i = 0; i < k; ++i) {
    const auto& ni = adj[nbrs[i]];
    for (std::size_t j = i + 1; j < k; ++j) {
      if (std::binary_search(ni.begin(), ni.end(), nbrs[j])) ++links;
    }
  }
  return 2.0 * static_cast<double>(links) /
         (static_cast<double>(k) * static_cast<double>(k - 1));
}

}  // namespace

GraphMetrics measure(const Graph& g, Rng& rng,
                     std::uint32_t clustering_samples,
                     std::uint32_t path_sources) {
  GraphMetrics m;
  m.nodes = g.nodes();
  m.edges = g.edges();
  m.mean_degree = g.mean_out_degree();
  if (g.nodes() == 0) return m;

  const auto adj = undirected_adjacency(g);

  // Clustering: average over sampled nodes with degree >= 2.
  stats::Accumulator cc;
  for (std::uint32_t i = 0; i < clustering_samples; ++i) {
    const auto u = static_cast<std::uint32_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(g.nodes()) - 1));
    if (adj[u].size() >= 2) cc.add(local_clustering(adj, u));
  }
  m.clustering = cc.mean();

  // Average shortest path: BFS from sampled sources, over reached nodes.
  stats::Accumulator paths;
  std::vector<std::int32_t> dist(g.nodes());
  for (std::uint32_t s = 0; s < path_sources; ++s) {
    const auto src = static_cast<std::uint32_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(g.nodes()) - 1));
    std::fill(dist.begin(), dist.end(), -1);
    std::queue<std::uint32_t> q;
    dist[src] = 0;
    q.push(src);
    while (!q.empty()) {
      const std::uint32_t u = q.front();
      q.pop();
      for (std::uint32_t v : adj[u]) {
        if (dist[v] < 0) {
          dist[v] = dist[u] + 1;
          paths.add(dist[v]);
          q.push(v);
        }
      }
    }
  }
  m.mean_path = paths.mean();

  // Degree assortativity: Pearson correlation of endpoint (total) degrees
  // over directed edges.
  stats::Correlation corr;
  for (std::uint32_t u = 0; u < g.nodes(); ++u)
    for (std::uint32_t v : g.out(u))
      corr.add(static_cast<double>(g.degree(u)),
               static_cast<double>(g.degree(v)));
  m.assortativity = corr.pearson();
  return m;
}

}  // namespace livesim::social
