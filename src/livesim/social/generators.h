// Social graph generators for the Table 2 comparison.
//
// One configurable growth model covers all three networks:
//  * preferential attachment (rich-get-richer follows) -> heavy-tailed
//    in-degree and *negative* assortativity (new low-degree nodes attach
//    to hubs), as in Twitter and Periscope;
//  * reciprocity -> bidirectional links, as in Facebook;
//  * triadic closure -> clustering (friends-of-friends);
//  * assortative bias -> positive degree correlation (Facebook-like).
#ifndef LIVESIM_SOCIAL_GENERATORS_H
#define LIVESIM_SOCIAL_GENERATORS_H

#include "livesim/social/graph.h"

namespace livesim::social {

struct GraphGenParams {
  std::uint32_t nodes = 100000;
  double mean_out_degree = 20.0;   // edges created per joining node
  double pref_attach = 0.8;        // P(target chosen by in-degree PA)
  double reciprocity = 0.2;        // P(v follows back)
  double triadic_closure = 0.1;    // P(extra edge to a neighbor's neighbor)
  double assortative_bias = 0.0;   // P(pick degree-similar candidate)
  // Community structure: nodes are hashed into `communities` groups and
  // with probability community_bias a target is drawn from the joiner's
  // own group. Drives clustering up (dense neighborhoods) and lengthens
  // global paths (fewer long-range links).
  std::uint32_t communities = 0;   // 0 disables
  double community_bias = 0.0;
  std::uint64_t seed = 1;

  /// Presets scaled to ~N nodes, tuned to reproduce the *relative*
  /// Table 2 structure (degree ordering, clustering ordering, sign of
  /// assortativity; Periscope between Facebook and Twitter).
  static GraphGenParams periscope_like(std::uint32_t nodes);
  static GraphGenParams twitter_like(std::uint32_t nodes);
  static GraphGenParams facebook_like(std::uint32_t nodes);
};

Graph generate(const GraphGenParams& params);

}  // namespace livesim::social

#endif  // LIVESIM_SOCIAL_GENERATORS_H
