#include "livesim/social/generators.h"

#include <cmath>
#include <cstdlib>
#include <vector>

namespace livesim::social {

GraphGenParams GraphGenParams::periscope_like(std::uint32_t nodes) {
  GraphGenParams p;
  p.nodes = nodes;
  p.mean_out_degree = 11.5;  // yields ~19.3 directed edges/node w/ extras
  p.pref_attach = 0.92;
  p.reciprocity = 0.30;
  p.triadic_closure = 0.35;
  p.assortative_bias = 0.0;
  p.communities = nodes / 300;
  p.community_bias = 0.15;
  p.seed = 101;
  return p;
}

GraphGenParams GraphGenParams::twitter_like(std::uint32_t nodes) {
  GraphGenParams p;
  p.nodes = nodes;
  p.mean_out_degree = 6.2;
  p.pref_attach = 0.97;
  p.reciprocity = 0.10;
  p.triadic_closure = 0.02;
  p.assortative_bias = 0.0;
  p.communities = nodes / 150;
  p.community_bias = 0.25;
  p.seed = 102;
  return p;
}

GraphGenParams GraphGenParams::facebook_like(std::uint32_t nodes) {
  GraphGenParams p;
  p.nodes = nodes;
  p.mean_out_degree = 26.0;  // friendships are mutual -> ~99 edges/node
  p.pref_attach = 0.30;
  p.reciprocity = 1.0;  // friendship is mutual
  p.triadic_closure = 0.55;
  p.assortative_bias = 0.55;
  p.communities = nodes / 120;
  p.community_bias = 0.75;
  p.seed = 103;
  return p;
}

Graph generate(const GraphGenParams& params) {
  Graph g(params.nodes);
  Rng rng(params.seed);

  // Repeated-endpoint list: sampling uniformly from it approximates
  // in-degree preferential attachment (each edge adds its target once).
  std::vector<std::uint32_t> pa_pool;
  pa_pool.reserve(static_cast<std::size_t>(
      params.nodes * (params.mean_out_degree + 1.0)));

  const std::uint32_t seed_nodes =
      std::max<std::uint32_t>(3, static_cast<std::uint32_t>(
                                     params.mean_out_degree) + 1);

  auto community_of = [&](std::uint32_t node) {
    return params.communities ? node % params.communities : 0u;
  };

  // Target selection modes are mutually exclusive per edge: community,
  // then assortative, then preferential attachment, then uniform.
  auto pick_target = [&](std::uint32_t joiner) -> std::uint32_t {
    if (params.communities > 0 && joiner > params.communities &&
        rng.bernoulli(params.community_bias)) {
      // Same-community target: node ids congruent to the joiner's group.
      const std::uint32_t group = community_of(joiner);
      const std::uint32_t peers =
          (joiner - 1 - group) / params.communities + 1;
      const auto k = static_cast<std::uint32_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(peers) - 1));
      std::uint32_t candidate = group + k * params.communities;
      if (candidate >= joiner) candidate = group;
      return candidate;
    }
    if (params.assortative_bias > 0.0 &&
        rng.bernoulli(params.assortative_bias)) {
      // Degree-closest of a few random candidates: correlates endpoint
      // degrees, pushing assortativity positive.
      std::uint32_t best =
          static_cast<std::uint32_t>(rng.uniform_int(0, joiner - 1));
      std::int64_t best_gap =
          std::abs(static_cast<std::int64_t>(g.degree(best)) -
                   static_cast<std::int64_t>(g.degree(joiner)));
      for (int tries = 0; tries < 3; ++tries) {
        const auto alt =
            static_cast<std::uint32_t>(rng.uniform_int(0, joiner - 1));
        const std::int64_t gap =
            std::abs(static_cast<std::int64_t>(g.degree(alt)) -
                     static_cast<std::int64_t>(g.degree(joiner)));
        if (gap < best_gap) {
          best = alt;
          best_gap = gap;
        }
      }
      return best;
    }
    if (!pa_pool.empty() && rng.bernoulli(params.pref_attach)) {
      return pa_pool[static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(pa_pool.size()) - 1))];
    }
    return static_cast<std::uint32_t>(rng.uniform_int(0, joiner - 1));
  };

  auto connect = [&](std::uint32_t u, std::uint32_t v) {
    if (g.add_edge(u, v)) pa_pool.push_back(v);
    if (params.reciprocity > 0.0 && rng.bernoulli(params.reciprocity)) {
      if (g.add_edge(v, u)) pa_pool.push_back(u);
    }
  };

  // Seed clique so the PA pool is non-empty.
  for (std::uint32_t u = 0; u < seed_nodes && u < params.nodes; ++u)
    for (std::uint32_t v = 0; v < seed_nodes && v < params.nodes; ++v)
      if (u != v && rng.bernoulli(0.5)) connect(u, v);

  for (std::uint32_t joiner = seed_nodes; joiner < params.nodes; ++joiner) {
    // Out-degree varies around the mean (geometric-ish spread).
    const auto budget = static_cast<std::uint32_t>(std::max(
        1.0, rng.exponential(params.mean_out_degree)));
    for (std::uint32_t e = 0; e < budget; ++e) {
      const std::uint32_t target = pick_target(joiner);
      connect(joiner, target);

      // Triadic closure: also follow someone my new contact follows.
      if (rng.bernoulli(params.triadic_closure) &&
          !g.out(target).empty()) {
        const auto& nbrs = g.out(target);
        const std::uint32_t fof = nbrs[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(nbrs.size()) - 1))];
        connect(joiner, fof);
      }
    }
  }
  return g;
}

}  // namespace livesim::social
