// Directed follow graph and the metrics reported in Table 2.
#ifndef LIVESIM_SOCIAL_GRAPH_H
#define LIVESIM_SOCIAL_GRAPH_H

#include <cstdint>
#include <vector>

#include "livesim/util/rng.h"

namespace livesim::social {

/// Directed graph over nodes 0..n-1 with out-adjacency lists.
/// An edge u -> v means "u follows v".
class Graph {
 public:
  explicit Graph(std::uint32_t nodes) : out_(nodes), in_degree_(nodes, 0) {}

  std::uint32_t nodes() const noexcept {
    return static_cast<std::uint32_t>(out_.size());
  }
  std::uint64_t edges() const noexcept { return edge_count_; }

  /// Adds edge u->v; duplicate edges and self-loops are ignored (returns
  /// false). O(out_degree(u)).
  bool add_edge(std::uint32_t u, std::uint32_t v);

  const std::vector<std::uint32_t>& out(std::uint32_t u) const {
    return out_[u];
  }
  std::uint32_t out_degree(std::uint32_t u) const {
    return static_cast<std::uint32_t>(out_[u].size());
  }
  std::uint32_t in_degree(std::uint32_t u) const { return in_degree_[u]; }
  std::uint32_t degree(std::uint32_t u) const {
    return out_degree(u) + in_degree(u);
  }

  double mean_out_degree() const noexcept {
    return nodes() ? static_cast<double>(edge_count_) / nodes() : 0.0;
  }

  /// Builds the reverse adjacency (who follows v) -- needed by the
  /// notification fan-out. Call once after construction; adding edges
  /// afterwards invalidates it (rebuild). Doubles the memory footprint.
  void build_reverse();
  bool has_reverse() const noexcept { return !in_.empty() || nodes() == 0; }

  /// Followers of `v` (nodes with an edge into v). Requires
  /// build_reverse().
  const std::vector<std::uint32_t>& followers_of(std::uint32_t v) const;

 private:
  std::vector<std::vector<std::uint32_t>> out_;
  std::vector<std::vector<std::uint32_t>> in_;  // filled by build_reverse()
  std::vector<std::uint32_t> in_degree_;
  std::uint64_t edge_count_ = 0;
};

/// Table 2 metrics. Clustering and path length are estimated on sampled
/// nodes over the undirected projection (exact computation on multi-million
/// node graphs is unnecessary for reproducing the comparison).
struct GraphMetrics {
  std::uint32_t nodes = 0;
  std::uint64_t edges = 0;
  double mean_degree = 0.0;       // directed edges per node
  double clustering = 0.0;        // avg local clustering coefficient
  double mean_path = 0.0;         // avg shortest path (undirected, sampled)
  double assortativity = 0.0;     // degree assortativity over edges
};

GraphMetrics measure(const Graph& g, Rng& rng,
                     std::uint32_t clustering_samples = 2000,
                     std::uint32_t path_sources = 24);

}  // namespace livesim::social

#endif  // LIVESIM_SOCIAL_GRAPH_H
