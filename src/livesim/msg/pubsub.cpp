#include "livesim/msg/pubsub.h"

namespace livesim::msg {

void Channel::publish(const Message& m) {
  ++published_;
  const std::size_t bytes = 200 + m.text.size();
  for (auto& sub : subscribers_) {
    const DurationUs d = sub.link->sample_delay(bytes);
    sim_.schedule_in(d, [m, handler = sub.handler, at = sim_.now() + d] {
      handler(m, at);
    });
  }
}

}  // namespace livesim::msg
