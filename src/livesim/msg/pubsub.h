// Message channel (comments & hearts), the PubNub side of Figure 8.
//
// Messages travel independently of video: a viewer's heart reaches the
// broadcaster in ~a message RTT, but it *reacts to video the viewer saw
// end-to-end-delay ago*. The feedback lag experiment quantifies the
// "delayed hearts" problem the introduction motivates.
#ifndef LIVESIM_MSG_PUBSUB_H
#define LIVESIM_MSG_PUBSUB_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "livesim/net/link.h"
#include "livesim/sim/simulator.h"
#include "livesim/util/ids.h"

namespace livesim::msg {

enum class MessageType : std::uint8_t { kComment, kHeart };

struct Message {
  MessageType type = MessageType::kHeart;
  UserId from{};
  TimeUs sent_at = 0;
  /// Capture timestamp of the video moment the sender was watching when
  /// they reacted -- the key to measuring feedback lag.
  TimeUs reacts_to_media_ts = 0;
  std::string text;
};

/// One pub/sub channel per broadcast. Subscribers receive every published
/// message after their own delivery-link delay.
class Channel {
 public:
  using Handler = std::function<void(const Message&, TimeUs delivered_at)>;

  explicit Channel(sim::Simulator& sim) : sim_(sim) {}

  /// Subscribes with a delivery link (owned by the caller, must outlive
  /// the channel's use).
  void subscribe(net::Link* link, Handler handler) {
    subscribers_.push_back({link, std::move(handler)});
  }

  void publish(const Message& m);

  std::uint64_t published() const noexcept { return published_; }

 private:
  struct Subscriber {
    net::Link* link;
    Handler handler;
  };

  sim::Simulator& sim_;
  std::vector<Subscriber> subscribers_;
  std::uint64_t published_ = 0;
};

/// Commenter admission: Periscope lets only the first `cap` joiners
/// comment; everyone can send hearts.
class CommenterPolicy {
 public:
  explicit CommenterPolicy(std::uint32_t cap) : cap_(cap) {}

  /// Called in join order; returns whether this viewer may comment.
  bool admit_commenter() {
    if (cap_ == 0) return true;  // uncapped service (Meerkat)
    if (admitted_ < cap_) {
      ++admitted_;
      return true;
    }
    return false;
  }

  std::uint32_t admitted() const noexcept { return admitted_; }
  std::uint32_t cap() const noexcept { return cap_; }

 private:
  std::uint32_t cap_;
  std::uint32_t admitted_ = 0;
};

}  // namespace livesim::msg

#endif  // LIVESIM_MSG_PUBSUB_H
