#include "livesim/protocol/rtmp.h"

namespace livesim::protocol {

std::vector<std::uint8_t> encode_message(const RtmpMessage& msg) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(msg.type));
  w.bytes(msg.body);
  return w.take();
}

std::optional<RtmpMessage> decode_message(std::span<const std::uint8_t> wire) {
  ByteReader r(wire);
  const auto type = r.u8();
  if (!type) return std::nullopt;
  if (*type < static_cast<std::uint8_t>(RtmpMessageType::kConnect) ||
      *type > static_cast<std::uint8_t>(RtmpMessageType::kEndOfStream))
    return std::nullopt;
  auto body = r.bytes();
  if (!body || !r.at_end()) return std::nullopt;
  RtmpMessage msg;
  msg.type = static_cast<RtmpMessageType>(*type);
  msg.body = std::move(*body);
  return msg;
}

std::vector<std::uint8_t> encode_connect(const RtmpConnect& c) {
  ByteWriter w;
  w.str(c.broadcast_token);
  w.str(c.stream_key);
  return w.take();
}

std::optional<RtmpConnect> decode_connect(std::span<const std::uint8_t> body) {
  ByteReader r(body);
  auto token = r.str();
  auto key = r.str();
  if (!token || !key) return std::nullopt;
  return RtmpConnect{std::move(*token), std::move(*key)};
}

std::vector<std::uint8_t> encode_video(const RtmpVideoFrame& f) {
  ByteWriter w;
  w.u64(f.frame_seq);
  w.i64(f.capture_ts_us);
  w.u8(f.flags);
  w.bytes(f.payload);
  w.bytes(f.signature);
  return w.take();
}

std::optional<RtmpVideoFrame> decode_video(std::span<const std::uint8_t> body) {
  ByteReader r(body);
  const auto seq = r.u64();
  const auto ts = r.i64();
  const auto flags = r.u8();
  auto payload = r.bytes();
  auto signature = r.bytes();
  if (!seq || !ts || !flags || !payload || !signature) return std::nullopt;
  RtmpVideoFrame f;
  f.frame_seq = *seq;
  f.capture_ts_us = *ts;
  f.flags = *flags;
  f.payload = std::move(*payload);
  f.signature = std::move(*signature);
  return f;
}

std::vector<std::uint8_t> frame_to_wire(const media::VideoFrame& f) {
  RtmpVideoFrame v;
  v.frame_seq = f.seq;
  v.capture_ts_us = f.capture_ts;
  v.flags = f.keyframe ? 1 : 0;
  v.payload = f.payload;
  v.signature = f.signature;
  RtmpMessage msg{RtmpMessageType::kVideoFrame, encode_video(v)};
  return encode_message(msg);
}

std::optional<media::VideoFrame> wire_to_frame(
    std::span<const std::uint8_t> wire) {
  auto msg = decode_message(wire);
  if (!msg || msg->type != RtmpMessageType::kVideoFrame) return std::nullopt;
  auto v = decode_video(msg->body);
  if (!v) return std::nullopt;
  media::VideoFrame f;
  f.seq = v->frame_seq;
  f.capture_ts = v->capture_ts_us;
  f.keyframe = v->keyframe();
  f.size_bytes = static_cast<std::uint32_t>(v->payload.size());
  f.payload = std::move(v->payload);
  f.signature = std::move(v->signature);
  return f;
}

}  // namespace livesim::protocol
