// Byte-level serialization helpers (big-endian, length-prefixed).
//
// The RTMP-like codec and the signature scheme both need a real byte
// format so the MITM experiments in §7 operate on actual wire bytes, not
// on in-memory structs.
#ifndef LIVESIM_PROTOCOL_WIRE_H
#define LIVESIM_PROTOCOL_WIRE_H

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace livesim::protocol {

class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

  /// Length-prefixed (u32) byte string.
  void bytes(std::span<const std::uint8_t> data);
  void str(const std::string& s);

  /// Raw append without a length prefix.
  void raw(std::span<const std::uint8_t> data);

  const std::vector<std::uint8_t>& data() const noexcept { return buf_; }
  std::vector<std::uint8_t> take() noexcept { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Cursor-based reader; all accessors return nullopt on truncation instead
/// of throwing, so malformed (tampered) input is handled gracefully.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::optional<std::uint8_t> u8();
  std::optional<std::uint16_t> u16();
  std::optional<std::uint32_t> u32();
  std::optional<std::uint64_t> u64();
  std::optional<std::int64_t> i64();
  std::optional<std::vector<std::uint8_t>> bytes();
  std::optional<std::string> str();

  std::size_t remaining() const noexcept { return data_.size() - pos_; }
  bool at_end() const noexcept { return pos_ == data_.size(); }

 private:
  bool need(std::size_t n) const noexcept { return remaining() >= n; }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace livesim::protocol

#endif  // LIVESIM_PROTOCOL_WIRE_H
