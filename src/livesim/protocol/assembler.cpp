#include "livesim/protocol/assembler.h"

namespace livesim::protocol {

std::vector<RtmpMessage> MessageAssembler::feed(
    std::span<const std::uint8_t> fragment) {
  std::vector<RtmpMessage> out;
  if (corrupted_) return out;
  buffer_.insert(buffer_.end(), fragment.begin(), fragment.end());

  std::size_t pos = 0;
  while (buffer_.size() - pos >= 5) {  // type byte + u32 length
    const std::uint8_t type = buffer_[pos];
    if (type < static_cast<std::uint8_t>(RtmpMessageType::kConnect) ||
        type > static_cast<std::uint8_t>(RtmpMessageType::kEndOfStream)) {
      corrupted_ = true;
      buffer_.clear();
      return out;
    }
    std::uint32_t len = 0;
    for (int i = 0; i < 4; ++i) len = (len << 8) | buffer_[pos + 1 + i];
    if (len > kMaxBody) {
      corrupted_ = true;
      buffer_.clear();
      return out;
    }
    if (buffer_.size() - pos < 5u + len) break;  // body incomplete

    RtmpMessage msg;
    msg.type = static_cast<RtmpMessageType>(type);
    msg.body.assign(buffer_.begin() + static_cast<std::ptrdiff_t>(pos + 5),
                    buffer_.begin() +
                        static_cast<std::ptrdiff_t>(pos + 5 + len));
    out.push_back(std::move(msg));
    ++emitted_;
    pos += 5u + len;
  }
  buffer_.erase(buffer_.begin(), buffer_.begin() + static_cast<std::ptrdiff_t>(pos));
  return out;
}

}  // namespace livesim::protocol
