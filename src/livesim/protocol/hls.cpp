#include "livesim/protocol/hls.h"

#include <cstdio>
#include <sstream>

namespace livesim::protocol {

std::string render_playlist(const media::ChunkList& list,
                            const std::string& chunk_url_prefix) {
  std::ostringstream os;
  os << "#EXTM3U\n";
  os << "#EXT-X-VERSION:3\n";
  os << "#EXT-X-TARGETDURATION:"
     << (list.target_duration + time::kSecond - 1) / time::kSecond << "\n";
  const std::uint64_t media_seq =
      list.chunks.empty() ? 0 : list.chunks.front().seq;
  os << "#EXT-X-MEDIA-SEQUENCE:" << media_seq << "\n";
  os << "#EXT-X-LIVESIM-PLAYLIST-VERSION:" << list.version << "\n";
  for (const auto& c : list.chunks) {
    char extinf[64];
    std::snprintf(extinf, sizeof extinf, "#EXTINF:%.3f,",
                  time::to_seconds(c.duration));
    os << extinf << "\n";
    os << "#EXT-X-LIVESIM-META:" << c.seq << ":" << c.first_capture_ts << ":"
       << c.completed_ts << ":" << c.first_frame_seq << ":" << c.frame_count
       << ":" << c.size_bytes << "\n";
    os << chunk_url_prefix << c.seq << ".ts\n";
  }
  return os.str();
}

std::optional<media::ChunkList> parse_playlist(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  if (!std::getline(is, line) || line != "#EXTM3U") return std::nullopt;

  media::ChunkList list;
  bool have_target = false;
  media::Chunk pending;
  bool have_meta = false;
  double pending_duration_s = 0.0;
  bool have_extinf = false;

  while (std::getline(is, line)) {
    if (line.rfind("#EXT-X-TARGETDURATION:", 0) == 0) {
      list.target_duration =
          std::stoll(line.substr(22)) * time::kSecond;
      have_target = true;
    } else if (line.rfind("#EXT-X-LIVESIM-PLAYLIST-VERSION:", 0) == 0) {
      list.version = std::stoull(line.substr(32));
    } else if (line.rfind("#EXTINF:", 0) == 0) {
      const auto comma = line.find(',');
      if (comma == std::string::npos) return std::nullopt;
      pending_duration_s = std::stod(line.substr(8, comma - 8));
      have_extinf = true;
    } else if (line.rfind("#EXT-X-LIVESIM-META:", 0) == 0) {
      std::istringstream meta(line.substr(20));
      char sep = 0;
      meta >> pending.seq >> sep >> pending.first_capture_ts >> sep >>
          pending.completed_ts >> sep >> pending.first_frame_seq >> sep >>
          pending.frame_count >> sep >> pending.size_bytes;
      if (meta.fail()) return std::nullopt;
      have_meta = true;
    } else if (!line.empty() && line[0] != '#') {
      // URI line closes one chunk record.
      if (!have_extinf || !have_meta) return std::nullopt;
      pending.duration = time::from_seconds(pending_duration_s);
      list.chunks.push_back(pending);
      pending = media::Chunk{};
      have_extinf = have_meta = false;
    }
  }
  if (!have_target) return std::nullopt;
  return list;
}

}  // namespace livesim::protocol
