// TCP-stream message reassembly.
//
// RTMP rides a byte stream: the receiver sees arbitrary segment
// boundaries, not message boundaries. MessageAssembler buffers fragments
// and emits complete messages in order -- the piece every byte-level
// consumer (ingest front-end, MITM attacker, tests) needs to handle real
// segmentation instead of assuming one-message-per-read.
#ifndef LIVESIM_PROTOCOL_ASSEMBLER_H
#define LIVESIM_PROTOCOL_ASSEMBLER_H

#include <cstdint>
#include <span>
#include <vector>

#include "livesim/protocol/rtmp.h"

namespace livesim::protocol {

class MessageAssembler {
 public:
  /// Upper bound on a single message body; a length prefix beyond this is
  /// treated as stream corruption (connection would be torn down).
  static constexpr std::uint32_t kMaxBody = 16 * 1024 * 1024;

  /// Appends a fragment and returns every message completed by it.
  /// After corruption, feed() returns nothing and corrupted() stays set.
  std::vector<RtmpMessage> feed(std::span<const std::uint8_t> fragment);

  bool corrupted() const noexcept { return corrupted_; }
  std::size_t buffered_bytes() const noexcept { return buffer_.size(); }
  std::uint64_t messages_emitted() const noexcept { return emitted_; }

 private:
  std::vector<std::uint8_t> buffer_;
  bool corrupted_ = false;
  std::uint64_t emitted_ = 0;
};

}  // namespace livesim::protocol

#endif  // LIVESIM_PROTOCOL_ASSEMBLER_H
