// RTMPS-like secure channel: encrypt-then-MAC over the RTMP byte format.
//
// Facebook Live's answer to the §7 vulnerability is to wrap RTMP in
// TLS/SSL. We model that with a real (if simplified) construction:
// SHA-256 in counter mode as the keystream cipher, HMAC-SHA256 over the
// ciphertext as the authentication tag. The paper's point -- full-stream
// encryption is computationally costly on phones, which is why Periscope
// kept plain RTMP for public broadcasts -- is measured by the signing
// ablation bench, which compares this wrapper against selective signing.
#ifndef LIVESIM_PROTOCOL_RTMPS_H
#define LIVESIM_PROTOCOL_RTMPS_H

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "livesim/security/sha256.h"

namespace livesim::protocol {

class SecureChannel {
 public:
  using Key = std::array<std::uint8_t, 32>;

  /// Both sides derive the same channel from the session key (which in the
  /// real system comes from the TLS handshake; here from the HTTPS-modeled
  /// control channel).
  explicit SecureChannel(const Key& session_key);

  /// Encrypts and authenticates one record:
  /// [u64 record_seq][ciphertext][32-byte HMAC tag].
  std::vector<std::uint8_t> seal(std::span<const std::uint8_t> plaintext);

  /// Verifies and decrypts; nullopt on any tag mismatch, truncation, or
  /// replayed/reordered record sequence.
  std::optional<std::vector<std::uint8_t>> open(
      std::span<const std::uint8_t> record);

  std::uint64_t records_sealed() const noexcept { return send_seq_; }

 private:
  std::vector<std::uint8_t> keystream_xor(std::uint64_t seq,
                                          std::span<const std::uint8_t> data) const;

  Key enc_key_{};
  Key mac_key_{};
  std::uint64_t send_seq_ = 0;
  std::uint64_t recv_seq_ = 0;
};

}  // namespace livesim::protocol

#endif  // LIVESIM_PROTOCOL_RTMPS_H
