// HLS-like playlist format and poll semantics.
//
// HLS viewers periodically poll the edge for a text playlist (an
// m3u8-alike), diff it against what they have played, and fetch new
// chunks. The render/parse round trip is exercised by the crawler and the
// security experiments; the delay simulations use the structured form.
#ifndef LIVESIM_PROTOCOL_HLS_H
#define LIVESIM_PROTOCOL_HLS_H

#include <optional>
#include <string>

#include "livesim/media/frame.h"

namespace livesim::protocol {

/// Renders a chunklist as an m3u8-style text playlist.
std::string render_playlist(const media::ChunkList& list,
                            const std::string& chunk_url_prefix);

/// Parses a playlist produced by render_playlist. Returns nullopt on any
/// structural error. (Capture timestamps and byte sizes round-trip via
/// #EXT-X-LIVESIM-META lines; a real client would not need them, but our
/// crawler measures with them.)
std::optional<media::ChunkList> parse_playlist(const std::string& text);

}  // namespace livesim::protocol

#endif  // LIVESIM_PROTOCOL_HLS_H
