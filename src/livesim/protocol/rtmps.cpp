#include "livesim/protocol/rtmps.h"

#include <cstring>

#include "livesim/protocol/wire.h"

namespace livesim::protocol {

using security::Digest;
using security::Sha256;

SecureChannel::SecureChannel(const Key& session_key) {
  // Domain-separated subkeys: enc = H("enc" || k), mac = H("mac" || k).
  Sha256 he;
  he.update(std::string("livesim-enc"));
  he.update(session_key);
  const Digest ed = he.finish();
  std::memcpy(enc_key_.data(), ed.data(), ed.size());

  Sha256 hm;
  hm.update(std::string("livesim-mac"));
  hm.update(session_key);
  const Digest md = hm.finish();
  std::memcpy(mac_key_.data(), md.data(), md.size());
}

std::vector<std::uint8_t> SecureChannel::keystream_xor(
    std::uint64_t seq, std::span<const std::uint8_t> data) const {
  std::vector<std::uint8_t> out(data.begin(), data.end());
  std::uint64_t block = 0;
  std::size_t pos = 0;
  while (pos < out.size()) {
    Sha256 h;
    h.update(enc_key_);
    ByteWriter w;
    w.u64(seq);
    w.u64(block);
    h.update(w.data());
    const Digest ks = h.finish();
    const std::size_t take = std::min(ks.size(), out.size() - pos);
    for (std::size_t i = 0; i < take; ++i) out[pos + i] ^= ks[i];
    pos += take;
    ++block;
  }
  return out;
}

std::vector<std::uint8_t> SecureChannel::seal(
    std::span<const std::uint8_t> plaintext) {
  const std::uint64_t seq = send_seq_++;
  std::vector<std::uint8_t> cipher = keystream_xor(seq, plaintext);

  ByteWriter w;
  w.u64(seq);
  w.raw(cipher);
  // MAC covers seq || ciphertext.
  const Digest tag = security::hmac_sha256(mac_key_, w.data());
  w.raw(tag);
  return w.take();
}

std::optional<std::vector<std::uint8_t>> SecureChannel::open(
    std::span<const std::uint8_t> record) {
  if (record.size() < 8 + 32) return std::nullopt;
  const std::size_t body_len = record.size() - 32;

  Digest claimed{};
  std::memcpy(claimed.data(), record.data() + body_len, 32);
  const Digest expected =
      security::hmac_sha256(mac_key_, record.subspan(0, body_len));
  if (!security::digest_equal(claimed, expected)) return std::nullopt;

  ByteReader r(record.subspan(0, body_len));
  const auto seq = r.u64();
  if (!seq || *seq != recv_seq_) return std::nullopt;  // replay/reorder
  ++recv_seq_;

  return keystream_xor(*seq, record.subspan(8, body_len - 8));
}

}  // namespace livesim::protocol
