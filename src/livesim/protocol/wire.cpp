#include "livesim/protocol/wire.h"

namespace livesim::protocol {

void ByteWriter::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::u32(std::uint32_t v) {
  for (int shift = 24; shift >= 0; shift -= 8)
    buf_.push_back(static_cast<std::uint8_t>(v >> shift));
}

void ByteWriter::u64(std::uint64_t v) {
  for (int shift = 56; shift >= 0; shift -= 8)
    buf_.push_back(static_cast<std::uint8_t>(v >> shift));
}

void ByteWriter::bytes(std::span<const std::uint8_t> data) {
  u32(static_cast<std::uint32_t>(data.size()));
  raw(data);
}

void ByteWriter::str(const std::string& s) {
  u32(static_cast<std::uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void ByteWriter::raw(std::span<const std::uint8_t> data) {
  buf_.insert(buf_.end(), data.begin(), data.end());
}

std::optional<std::uint8_t> ByteReader::u8() {
  if (!need(1)) return std::nullopt;
  return data_[pos_++];
}

std::optional<std::uint16_t> ByteReader::u16() {
  if (!need(2)) return std::nullopt;
  std::uint16_t v = 0;
  for (int i = 0; i < 2; ++i) v = static_cast<std::uint16_t>((v << 8) | data_[pos_++]);
  return v;
}

std::optional<std::uint32_t> ByteReader::u32() {
  if (!need(4)) return std::nullopt;
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v = (v << 8) | data_[pos_++];
  return v;
}

std::optional<std::uint64_t> ByteReader::u64() {
  if (!need(8)) return std::nullopt;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | data_[pos_++];
  return v;
}

std::optional<std::int64_t> ByteReader::i64() {
  auto v = u64();
  if (!v) return std::nullopt;
  return static_cast<std::int64_t>(*v);
}

std::optional<std::vector<std::uint8_t>> ByteReader::bytes() {
  auto len = u32();
  if (!len || !need(*len)) return std::nullopt;
  std::vector<std::uint8_t> out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                data_.begin() + static_cast<std::ptrdiff_t>(pos_ + *len));
  pos_ += *len;
  return out;
}

std::optional<std::string> ByteReader::str() {
  auto len = u32();
  if (!len || !need(*len)) return std::nullopt;
  std::string out(reinterpret_cast<const char*>(data_.data()) + pos_, *len);
  pos_ += *len;
  return out;
}

}  // namespace livesim::protocol
