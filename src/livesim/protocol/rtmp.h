// RTMP-like wire protocol (simplified but byte-real).
//
// Mirrors the properties the paper measured and exploited:
//  * persistent connection, server pushes each ~40 ms frame (low latency);
//  * the broadcast token travels in PLAINTEXT in the connect message;
//  * frame payloads are neither encrypted nor authenticated by default.
// The last two are exactly the §7 vulnerability; see security/ for the
// MITM attacker that rewrites these bytes and the signature defense.
#ifndef LIVESIM_PROTOCOL_RTMP_H
#define LIVESIM_PROTOCOL_RTMP_H

#include <optional>
#include <string>
#include <vector>

#include "livesim/media/frame.h"
#include "livesim/protocol/wire.h"

namespace livesim::protocol {

enum class RtmpMessageType : std::uint8_t {
  kConnect = 1,     // broadcaster -> ingest: token + stream key
  kPublishAck = 2,  // ingest -> broadcaster
  kVideoFrame = 3,  // either direction (upload / push to viewer)
  kEndOfStream = 4,
};

struct RtmpConnect {
  std::string broadcast_token;  // plaintext on the wire (the flaw)
  std::string stream_key;
};

struct RtmpVideoFrame {
  std::uint64_t frame_seq = 0;
  std::int64_t capture_ts_us = 0;  // broadcaster-stamped, rides in metadata
  std::uint8_t flags = 0;          // bit0 = keyframe
  std::vector<std::uint8_t> payload;
  std::vector<std::uint8_t> signature;  // empty unless the defense is on

  bool keyframe() const noexcept { return (flags & 1) != 0; }
};

/// Every message is framed as [u8 type][u32 body_len][body].
struct RtmpMessage {
  RtmpMessageType type = RtmpMessageType::kConnect;
  std::vector<std::uint8_t> body;
};

std::vector<std::uint8_t> encode_message(const RtmpMessage& msg);
std::optional<RtmpMessage> decode_message(std::span<const std::uint8_t> wire);

std::vector<std::uint8_t> encode_connect(const RtmpConnect& c);
std::optional<RtmpConnect> decode_connect(std::span<const std::uint8_t> body);

std::vector<std::uint8_t> encode_video(const RtmpVideoFrame& f);
std::optional<RtmpVideoFrame> decode_video(std::span<const std::uint8_t> body);

/// Convenience: a full framed video message from a media::VideoFrame.
std::vector<std::uint8_t> frame_to_wire(const media::VideoFrame& f);
std::optional<media::VideoFrame> wire_to_frame(
    std::span<const std::uint8_t> wire);

}  // namespace livesim::protocol

#endif  // LIVESIM_PROTOCOL_RTMP_H
