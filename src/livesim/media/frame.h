// Video frame and chunk value types.
//
// RTMP operates on individual ~40 ms frames; HLS groups them into ~3 s
// chunks (the paper: >85.9% of HLS broadcasts use 3 s chunks = 75 frames).
#ifndef LIVESIM_MEDIA_FRAME_H
#define LIVESIM_MEDIA_FRAME_H

#include <cstdint>
#include <vector>

#include "livesim/util/time.h"

namespace livesim::media {

struct VideoFrame {
  std::uint64_t seq = 0;
  TimeUs capture_ts = 0;        // stamped by the broadcaster device
  DurationUs duration = 40 * time::kMillisecond;
  std::uint32_t size_bytes = 0;
  bool keyframe = false;

  /// Optional payload bytes; populated only on the byte-level (security)
  /// code paths to keep the large-scale delay simulations lean.
  std::vector<std::uint8_t> payload;

  /// Optional authentication tag (see security::StreamSigner). Empty when
  /// the stream is unsigned -- which is exactly the paper's vulnerability.
  std::vector<std::uint8_t> signature;
};

struct Chunk {
  std::uint64_t seq = 0;             // media sequence number
  TimeUs first_capture_ts = 0;       // capture time of the first frame
  TimeUs completed_ts = 0;           // when the chunker sealed the chunk
  DurationUs duration = 0;           // sum of frame durations
  std::uint64_t first_frame_seq = 0;
  std::uint32_t frame_count = 0;
  std::uint64_t size_bytes = 0;
};

/// HLS playlist: the window of chunks a viewer can currently fetch.
struct ChunkList {
  std::uint64_t version = 0;         // bumped on every new chunk
  DurationUs target_duration = 3 * time::kSecond;
  std::vector<Chunk> chunks;         // sliding window, oldest first

  /// Highest media sequence present, or -1 if empty.
  std::int64_t latest_seq() const noexcept {
    return chunks.empty() ? -1 : static_cast<std::int64_t>(chunks.back().seq);
  }
};

}  // namespace livesim::media

#endif  // LIVESIM_MEDIA_FRAME_H
