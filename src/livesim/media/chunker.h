// Chunker: assembles RTMP frames into HLS chunks at the ingest server.
//
// A chunk is sealed when it has accumulated at least `target_duration` of
// video AND the next frame is a keyframe (HLS segments must start on a
// keyframe so they are independently decodable); a hard cap prevents
// unbounded chunks when keyframes are sparse. The chunking delay this
// introduces -- equal to the chunk duration, ~3 s -- is one of the three
// big HLS delay contributors in Figure 11.
#ifndef LIVESIM_MEDIA_CHUNKER_H
#define LIVESIM_MEDIA_CHUNKER_H

#include <cstddef>
#include <functional>
#include <optional>

#include "livesim/media/frame.h"

namespace livesim::media {

class Chunker {
 public:
  struct Params {
    DurationUs target_duration = 3 * time::kSecond;
    DurationUs max_duration = 6 * time::kSecond;  // seal even w/o keyframe
    std::size_t playlist_window = 4;              // chunks kept in the list
  };

  explicit Chunker(Params params) : params_(params) {
    list_.target_duration = params.target_duration;
  }

  /// Feeds one frame arriving at time `now`; returns the sealed chunk when
  /// this frame completed one, else nullopt. The sealed chunk's
  /// completed_ts is `now`.
  std::optional<Chunk> push(const VideoFrame& frame, TimeUs now);

  /// Seals whatever is pending (end of broadcast). Returns nullopt if the
  /// accumulator is empty.
  std::optional<Chunk> flush(TimeUs now);

  /// Current playlist (sliding window of recent chunks).
  const ChunkList& playlist() const noexcept { return list_; }

  std::uint64_t chunks_emitted() const noexcept { return next_chunk_seq_; }
  const Params& params() const noexcept { return params_; }

 private:
  Chunk seal(TimeUs now);

  Params params_;
  ChunkList list_;
  // Accumulator state for the chunk being built.
  bool building_ = false;
  TimeUs acc_first_capture_ = 0;
  std::uint64_t acc_first_seq_ = 0;
  DurationUs acc_duration_ = 0;
  std::uint32_t acc_frames_ = 0;
  std::uint64_t acc_bytes_ = 0;
  std::uint64_t next_chunk_seq_ = 0;
};

}  // namespace livesim::media

#endif  // LIVESIM_MEDIA_CHUNKER_H
