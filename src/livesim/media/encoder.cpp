#include "livesim/media/encoder.h"

#include <algorithm>
#include <cmath>

namespace livesim::media {

VideoFrame FrameSource::next(TimeUs start) {
  VideoFrame f;
  f.seq = next_seq_++;
  f.capture_ts = start + static_cast<TimeUs>(f.seq) * params_.frame_interval;
  f.duration = params_.frame_interval;
  f.keyframe = (f.seq % params_.gop_frames) == 0;
  const double base = static_cast<double>(params_.mean_frame_bytes);
  const double mult = f.keyframe ? params_.keyframe_multiplier : 1.0;
  const double jitter = std::exp(rng_.normal(0.0, params_.size_jitter));
  // Non-key frames are smaller than the mean so that the GOP average
  // stays near mean_frame_bytes despite the large keyframes.
  const double gop = static_cast<double>(params_.gop_frames);
  const double nonkey_scale =
      gop / (gop - 1.0 + params_.keyframe_multiplier);
  f.size_bytes = static_cast<std::uint32_t>(std::max(
      64.0, base * nonkey_scale * mult * jitter));
  return f;
}

}  // namespace livesim::media
