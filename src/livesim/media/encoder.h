// Frame source: models the broadcaster's camera + encoder.
//
// Produces 25 fps frames with a keyframe cadence and realistic size
// variation. Frame *generation* is perfectly periodic; network burstiness
// is added by the uplink model, matching the paper's observation that 10%
// of broadcasts see >5 s buffering delay "caused by the bursty arrival of
// video frames during uploading from the broadcaster".
#ifndef LIVESIM_MEDIA_ENCODER_H
#define LIVESIM_MEDIA_ENCODER_H

#include <cstdint>

#include "livesim/media/frame.h"
#include "livesim/util/rng.h"

namespace livesim::media {

class FrameSource {
 public:
  struct Params {
    DurationUs frame_interval = 40 * time::kMillisecond;  // 25 fps
    std::uint32_t gop_frames = 25;            // keyframe every 1 s
    std::uint32_t mean_frame_bytes = 2000;    // ~400 kbps video
    double keyframe_multiplier = 8.0;
    double size_jitter = 0.25;                // lognormal-ish spread
  };

  FrameSource(Params params, Rng rng) : params_(params), rng_(rng) {}

  /// Produces the next frame; capture timestamps advance by exactly one
  /// frame interval per call, starting at `start`.
  VideoFrame next(TimeUs start = 0);

  const Params& params() const noexcept { return params_; }

 private:
  Params params_;
  Rng rng_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace livesim::media

#endif  // LIVESIM_MEDIA_ENCODER_H
