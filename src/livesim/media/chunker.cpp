#include "livesim/media/chunker.h"

namespace livesim::media {

std::optional<Chunk> Chunker::push(const VideoFrame& frame, TimeUs now) {
  std::optional<Chunk> sealed;
  // Seal-before-append: a keyframe arriving once the target is met starts
  // the next chunk, so chunk boundaries land on keyframes.
  if (building_ &&
      ((frame.keyframe && acc_duration_ >= params_.target_duration) ||
       acc_duration_ >= params_.max_duration)) {
    sealed = seal(now);
  }
  if (!building_) {
    building_ = true;
    acc_first_capture_ = frame.capture_ts;
    acc_first_seq_ = frame.seq;
    acc_duration_ = 0;
    acc_frames_ = 0;
    acc_bytes_ = 0;
  }
  acc_duration_ += frame.duration;
  acc_frames_ += 1;
  acc_bytes_ += frame.size_bytes;
  return sealed;
}

std::optional<Chunk> Chunker::flush(TimeUs now) {
  if (!building_) return std::nullopt;
  return seal(now);
}

Chunk Chunker::seal(TimeUs now) {
  Chunk c;
  c.seq = next_chunk_seq_++;
  c.first_capture_ts = acc_first_capture_;
  c.completed_ts = now;
  c.duration = acc_duration_;
  c.first_frame_seq = acc_first_seq_;
  c.frame_count = acc_frames_;
  c.size_bytes = acc_bytes_;
  building_ = false;

  list_.chunks.push_back(c);
  if (list_.chunks.size() > params_.playlist_window)
    list_.chunks.erase(list_.chunks.begin());
  ++list_.version;
  return c;
}

}  // namespace livesim::media
