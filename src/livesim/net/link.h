// Network link models.
//
// Link: memoryless one-way delay (propagation + serialization + jitter,
// optional loss) -- used for server<->server and download paths.
//
// FifoUplink: a stateful first-in-first-out uplink with transient outages,
// used for the broadcaster's last mile. Frames cannot overtake each other,
// so an outage makes queued frames arrive in a burst when connectivity
// returns -- the mechanism behind the paper's ~10% of broadcasts with >5 s
// client-side buffering delay (Fig 16b).
#ifndef LIVESIM_NET_LINK_H
#define LIVESIM_NET_LINK_H

#include <cstddef>

#include "livesim/sim/simulator.h"
#include "livesim/util/rng.h"
#include "livesim/util/time.h"

namespace livesim::net {

class Link {
 public:
  struct Params {
    DurationUs base_delay = 20 * time::kMillisecond;  // one-way propagation
    double jitter_fraction = 0.15;    // right-skewed multiplicative jitter
    double loss_rate = 0.0;           // per-message drop probability
    double bandwidth_bps = 20e6;      // serialization component
  };

  Link(sim::Simulator& sim, Params params, Rng rng)
      : sim_(sim), params_(params), rng_(rng) {}

  /// Samples the one-way delay for a message of `bytes`.
  DurationUs sample_delay(std::size_t bytes);

  /// Delivers `on_arrival` after a sampled delay; drops it (never calls)
  /// with probability loss_rate. Returns the scheduled delay, or -1 if
  /// the message was lost. The callback is scheduled as-is (no extra
  /// wrapper), so small captures ride the engine's allocation-free path.
  DurationUs send(std::size_t bytes, sim::EventFn on_arrival);

  const Params& params() const noexcept { return params_; }

 private:
  sim::Simulator& sim_;
  Params params_;
  Rng rng_;
};

class FifoUplink {
 public:
  /// Arrival callback. Sized so that the uplink's own [arrival-time +
  /// callback] capture still fits the engine's 64-byte inline budget:
  /// 48-byte buffer + vtable pointer + 8-byte timestamp == 64.
  using ArrivalFn = sim::InplaceFunction<void(TimeUs), 48>;

  struct Params {
    Link::Params link{};                      // per-message delay model
    double outage_rate_per_s = 0.0;           // Poisson outage arrivals
    DurationUs mean_outage = time::kSecond;   // exponential duration
    // Bandwidth ramp: effective bandwidth starts at
    // initial_bw_fraction * link.bandwidth_bps and grows linearly to the
    // full rate over ramp_duration. Models constrained cellular uplinks
    // whose early-broadcast backlog produces multi-second buffering
    // delays downstream (Fig 16b tail).
    double initial_bw_fraction = 1.0;
    DurationUs ramp_duration = 0;
    // Connection-establishment outage: the uplink is blocked for this long
    // at t=0 (captured frames queue and then flood out). Mean of an
    // exponential draw; 0 disables.
    DurationUs mean_initial_outage = 0;
  };

  FifoUplink(sim::Simulator& sim, Params params, Rng rng);

  /// Enqueues a message of `bytes` now; `on_arrival(arrival_time)` fires
  /// at the receiver. FIFO order is preserved. Returns the arrival time.
  TimeUs send(std::size_t bytes, ArrivalFn on_arrival);

  /// Blocks the uplink until now + `duration` (fault injection: a link
  /// partition with a known recovery point). Messages sent during the
  /// window queue behind it and flood out in FIFO order at recovery,
  /// exactly like a natural outage. Draws no randomness.
  void inject_outage(DurationUs duration);

  const Params& params() const noexcept { return params_; }

 private:
  void maybe_advance_outages(TimeUs until);
  double bandwidth_at(TimeUs t) const noexcept;

  sim::Simulator& sim_;
  Params params_;
  Rng rng_;
  TimeUs created_at_ = 0;         // ramp/outage clock origin
  TimeUs next_free_ = 0;          // uplink busy until here (FIFO)
  TimeUs last_arrival_ = 0;       // in-order delivery floor
  TimeUs next_outage_start_ = 0;  // lazily sampled outage process
  bool outages_enabled_;
};

/// Canned last-mile profiles roughly matching 2015 access networks.
struct LastMileProfiles {
  static Link::Params wired();
  static Link::Params wifi();
  static Link::Params lte();

  /// Broadcaster uplink variants: `stable` for the ~88% of broadcasts with
  /// smooth upload; `bursty` for the rest (per Fig 16b's tail).
  static FifoUplink::Params stable_uplink();
  static FifoUplink::Params bursty_uplink();
};

}  // namespace livesim::net

#endif  // LIVESIM_NET_LINK_H
