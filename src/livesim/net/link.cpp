#include "livesim/net/link.h"

#include <cmath>
#include <utility>

namespace livesim::net {

DurationUs Link::sample_delay(std::size_t bytes) {
  const double serialization_s =
      params_.bandwidth_bps > 0
          ? static_cast<double>(bytes) * 8.0 / params_.bandwidth_bps
          : 0.0;
  const double jitter_mult =
      1.0 + params_.jitter_fraction * std::abs(rng_.normal(0.0, 1.0));
  const auto d = static_cast<DurationUs>(
      static_cast<double>(params_.base_delay) * jitter_mult +
      serialization_s * static_cast<double>(time::kSecond));
  return d > 0 ? d : 1;
}

DurationUs Link::send(std::size_t bytes, sim::EventFn on_arrival) {
  if (params_.loss_rate > 0.0 && rng_.bernoulli(params_.loss_rate)) return -1;
  const DurationUs d = sample_delay(bytes);
  sim_.schedule_in(d, std::move(on_arrival));
  return d;
}

FifoUplink::FifoUplink(sim::Simulator& sim, Params params, Rng rng)
    : sim_(sim), params_(params), rng_(rng), created_at_(sim.now()),
      next_free_(sim.now()), next_outage_start_(sim.now()),
      outages_enabled_(params.outage_rate_per_s > 0.0) {
  if (outages_enabled_) {
    next_outage_start_ += static_cast<TimeUs>(
        rng_.exponential(1.0 / params_.outage_rate_per_s) *
        static_cast<double>(time::kSecond));
  }
  if (params_.mean_initial_outage > 0) {
    next_free_ += static_cast<TimeUs>(rng_.exponential(
        static_cast<double>(params_.mean_initial_outage)));
  }
}

void FifoUplink::maybe_advance_outages(TimeUs until) {
  // Lazily apply every outage that begins before `until`: each one pushes
  // the link's free time past the outage end.
  while (outages_enabled_ && next_outage_start_ <= until) {
    const auto duration = static_cast<DurationUs>(
        rng_.exponential(static_cast<double>(params_.mean_outage)));
    const TimeUs outage_end = next_outage_start_ + duration;
    if (outage_end > next_free_) next_free_ = outage_end;
    next_outage_start_ =
        outage_end + static_cast<TimeUs>(
                         rng_.exponential(1.0 / params_.outage_rate_per_s) *
                         static_cast<double>(time::kSecond));
    until = next_free_ > until ? next_free_ : until;
  }
}

double FifoUplink::bandwidth_at(TimeUs t) const noexcept {
  const double full = params_.link.bandwidth_bps;
  const TimeUs age = t - created_at_;
  if (params_.ramp_duration <= 0 || age >= params_.ramp_duration) return full;
  const double frac =
      params_.initial_bw_fraction +
      (1.0 - params_.initial_bw_fraction) *
          (static_cast<double>(age) /
           static_cast<double>(params_.ramp_duration));
  return full * frac;
}

void FifoUplink::inject_outage(DurationUs duration) {
  const TimeUs end = sim_.now() + duration;
  if (end > next_free_) next_free_ = end;
}

TimeUs FifoUplink::send(std::size_t bytes, ArrivalFn on_arrival) {
  const TimeUs now = sim_.now();
  TimeUs depart = next_free_ > now ? next_free_ : now;
  maybe_advance_outages(depart);
  depart = next_free_ > depart ? next_free_ : depart;

  const double bw = bandwidth_at(depart);
  const double serialization_s =
      bw > 0 ? static_cast<double>(bytes) * 8.0 / bw : 0.0;
  depart += static_cast<DurationUs>(serialization_s *
                                    static_cast<double>(time::kSecond));
  next_free_ = depart;

  const double jitter_mult =
      1.0 + params_.link.jitter_fraction * std::abs(rng_.normal(0.0, 1.0));
  TimeUs arrive =
      depart + static_cast<DurationUs>(
                   static_cast<double>(params_.link.base_delay) * jitter_mult);
  // TCP delivers in order: a delayed byte delays everything behind it.
  if (arrive < last_arrival_) arrive = last_arrival_;
  last_arrival_ = arrive;
  sim_.schedule_at(arrive, [arrive, fn = std::move(on_arrival)] { fn(arrive); });
  return arrive;
}

Link::Params LastMileProfiles::wired() {
  return {.base_delay = 8 * time::kMillisecond,
          .jitter_fraction = 0.08,
          .loss_rate = 0.0,
          .bandwidth_bps = 50e6};
}

Link::Params LastMileProfiles::wifi() {
  return {.base_delay = 15 * time::kMillisecond,
          .jitter_fraction = 0.25,
          .loss_rate = 0.0,
          .bandwidth_bps = 20e6};
}

Link::Params LastMileProfiles::lte() {
  return {.base_delay = 45 * time::kMillisecond,
          .jitter_fraction = 0.35,
          .loss_rate = 0.0,
          .bandwidth_bps = 8e6};
}

FifoUplink::Params LastMileProfiles::stable_uplink() {
  // Frequent tiny hiccups (WiFi contention): keep chunk boundaries
  // wandering by tens of ms, as real uploads do, without visible stalls.
  return {.link = wifi(), .outage_rate_per_s = 0.3,
          .mean_outage = 40 * time::kMillisecond};
}

FifoUplink::Params LastMileProfiles::bursty_uplink() {
  // Roughly one multi-second stall every ~20 s of streaming.
  return {.link = wifi(), .outage_rate_per_s = 0.05,
          .mean_outage = 2 * time::kSecond};
}

}  // namespace livesim::net
