#include "livesim/workload/profiles.h"

#include <cmath>

namespace livesim::workload {

AppProfile AppProfile::periscope() {
  AppProfile p;
  p.name = "Periscope";
  p.days = 98;  // May 15 .. Aug 20, 2015
  p.base_daily_broadcasts = 80000;
  p.growth_total = 3.3;
  p.weekly_amplitude = 0.12;
  p.step_day = 11;  // Android launch, May 26
  p.step_multiplier = 1.35;
  p.daily_noise = 0.04;
  p.outage_start_day = 84;  // Aug 7-9 crawler bug
  p.outage_days = 3;
  p.outage_capture_fraction = 0.35;

  p.duration_mu = std::log(150.0);  // median ~2.5 min
  p.duration_sigma = 1.25;          // P85 ~ 10 min

  p.zero_viewer_fraction = 0.02;
  p.viewers_mu = std::log(10.5);
  p.viewers_sigma = 1.35;
  p.tail_fraction = 0.0005;
  p.tail_scale = 2500.0;
  p.tail_shape = 1.05;
  p.max_viewers = 150000.0;
  p.web_view_multiplier = 0.46;  // 223M web / 482M mobile

  p.hearts_per_viewer_mu = 3.1;
  p.broadcaster_zipf_s = 1.22;
  p.commenter_cap = 100;
  p.population = 12000000;  // registered users; scaled in generation
  return p;
}

AppProfile AppProfile::meerkat() {
  AppProfile p;
  p.name = "Meerkat";
  p.days = 35;  // May 12 .. Jun 15, 2015
  p.base_daily_broadcasts = 7300;
  p.growth_total = 0.48;  // halves over the month
  p.weekly_amplitude = 0.03;  // weekly pattern barely visible
  p.step_day = -1;
  p.daily_noise = 0.12;

  p.duration_mu = std::log(110.0);
  p.duration_sigma = 1.6;  // more skew: a few very long streams

  p.zero_viewer_fraction = 0.60;  // 60% of broadcasts get no viewers
  p.viewers_mu = std::log(20.0);
  p.viewers_sigma = 1.4;
  p.follower_coupling = 0.02;  // Twitter graph API was cut off
  p.tail_fraction = 0.0005;
  p.tail_scale = 800.0;
  p.tail_shape = 1.2;
  p.max_viewers = 20000.0;
  p.web_view_multiplier = 0.18;

  p.broadcaster_zipf_s = 0.85;
  p.commenter_cap = 0;  // comments are tweets; no first-100 cap
  p.comment_engagement = 0.10;
  p.heart_engagement = 0.20;
  p.population = 190000;
  return p;
}

double AppProfile::daily_volume(std::uint32_t day) const {
  const double frac =
      days > 1 ? static_cast<double>(day) / static_cast<double>(days - 1)
               : 0.0;
  // Exponential interpolation to the total growth multiplier.
  double v = base_daily_broadcasts * std::pow(growth_total, frac);
  // Weekly pattern: peak on weekends (day 0 = Friday May 15 for Periscope;
  // the phase detail is immaterial, the periodicity is what Fig 1 shows).
  v *= 1.0 + weekly_amplitude *
                 std::sin(2.0 * M_PI * (static_cast<double>(day) + 1.5) / 7.0);
  if (step_day >= 0 && static_cast<std::int32_t>(day) >= step_day)
    v *= step_multiplier;
  return v;
}

double AppProfile::capture_fraction(std::uint32_t day) const {
  if (outage_start_day >= 0 &&
      static_cast<std::int32_t>(day) >= outage_start_day &&
      static_cast<std::int32_t>(day) < outage_start_day + outage_days)
    return outage_capture_fraction;
  return 1.0;
}

}  // namespace livesim::workload
