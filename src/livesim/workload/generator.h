// Broadcast trace generator: turns an AppProfile into the record stream
// the paper's crawler produced, at a configurable scale.
#ifndef LIVESIM_WORKLOAD_GENERATOR_H
#define LIVESIM_WORKLOAD_GENERATOR_H

#include <cstdint>
#include <vector>

#include "livesim/util/ids.h"
#include "livesim/util/rng.h"
#include "livesim/util/time.h"
#include "livesim/workload/profiles.h"

namespace livesim::workload {

struct BroadcastRecord {
  BroadcastId id;
  UserId broadcaster;
  std::uint32_t day = 0;
  TimeUs start = 0;
  DurationUs length = 0;
  std::uint32_t mobile_viewers = 0;
  std::uint32_t web_viewers = 0;
  std::uint32_t comments = 0;
  std::uint64_t hearts = 0;
  std::uint32_t followers = 0;  // broadcaster's followers at start time
  bool captured = true;         // false during crawler outages

  std::uint32_t total_viewers() const noexcept {
    return mobile_viewers + web_viewers;
  }
  /// Viewers beyond the RTMP slot cap are HLS viewers (§4.1).
  std::uint32_t hls_viewers(std::uint32_t rtmp_slots = 100) const noexcept {
    return total_viewers() > rtmp_slots ? total_viewers() - rtmp_slots : 0;
  }
};

/// Aggregate per-user activity (Fig 6) -- generated alongside broadcasts.
struct UserActivity {
  std::uint32_t broadcasts_created = 0;
  std::uint32_t broadcasts_viewed = 0;
};

struct Dataset {
  AppProfile profile;
  double scale = 1.0;  // fraction of the paper's volume generated
  std::vector<BroadcastRecord> broadcasts;
  std::vector<UserActivity> users;

  // Convenience totals over *captured* broadcasts.
  std::uint64_t total_views() const;
  std::uint64_t unique_broadcasters() const;
  std::uint64_t captured_broadcasts() const;
};

/// The paper's §3.1 methodology for sizing the user base: Periscope
/// assigned userIDs sequentially at launch, so the largest id observed in
/// the crawl estimates the total registered population ("As of August 20,
/// 2015 ... Periscope had 12 million registered users"). Meerkat's
/// non-sequential ids made the same estimate impossible there.
std::uint64_t estimate_registered_users(const Dataset& dataset);

class Generator {
 public:
  /// `scale` in (0, 1]: fraction of the paper-scale volume to generate
  /// (e.g. 0.005 produces ~100K Periscope broadcasts in a few seconds).
  Generator(AppProfile profile, double scale, std::uint64_t seed);

  Dataset generate();

 private:
  BroadcastRecord make_broadcast(std::uint32_t day, Rng& rng);
  std::uint32_t sample_viewers(Rng& rng);
  void fill_interactions(BroadcastRecord& b, Rng& rng);

  AppProfile profile_;
  double scale_;
  Rng rng_;
  std::uint64_t next_broadcast_id_ = 0;
  std::uint32_t population_ = 0;
  ZipfSampler broadcaster_sampler_;
};

}  // namespace livesim::workload

#endif  // LIVESIM_WORKLOAD_GENERATOR_H
