// Audience dynamics for a single broadcast: when viewers join, how long
// they stay, and the resulting concurrent-audience curve.
//
// §3.2's motivating anecdote: "a single Periscope of a large rain puddle
// collected hundreds of thousands of viewers, and had more than 20,000
// simultaneous viewers at its peak." The concurrency curve is what the
// delivery infrastructure actually has to carry at any instant -- and,
// combined with the first-100 slot policy, determines who ever gets to
// interact.
#ifndef LIVESIM_WORKLOAD_AUDIENCE_H
#define LIVESIM_WORKLOAD_AUDIENCE_H

#include <cstdint>
#include <vector>

#include "livesim/util/rng.h"
#include "livesim/util/time.h"

namespace livesim::workload {

struct AudienceParams {
  std::uint32_t total_viewers = 1000;
  DurationUs broadcast_len = 10 * time::kMinute;
  /// 0 = uniform arrivals over the broadcast; > 0 = word-of-mouth ramp
  /// (arrival rate grows exponentially as the stream goes viral).
  double virality = 0.0;
  /// Watch time: lognormal with this median, truncated to the remaining
  /// broadcast.
  double median_watch_s = 90.0;
  double watch_sigma = 1.0;
  std::uint64_t seed = 1;
};

struct JoinRecord {
  TimeUs join = 0;        // relative to broadcast start
  DurationUs stay = 0;
};

/// Samples an audience; records are sorted by join time.
std::vector<JoinRecord> generate_audience(const AudienceParams& params);

struct ConcurrencyCurve {
  DurationUs bin = time::kSecond;
  std::vector<std::uint32_t> concurrent;  // per bin
  std::uint32_t peak = 0;
  TimeUs peak_at = 0;
};

/// Sweeps the join/leave events into a concurrent-viewers time series.
ConcurrencyCurve concurrency(const std::vector<JoinRecord>& audience,
                             DurationUs broadcast_len,
                             DurationUs bin = time::kSecond);

}  // namespace livesim::workload

#endif  // LIVESIM_WORKLOAD_AUDIENCE_H
