// Crowdsourced-platform audience presets: the flash-crowd workload shapes
// the poll wheel exists for.
//
// The paper's Periscope workload is a power-law tail: millions of tiny
// broadcasts, a handful of viral ones. The Zhang & Liu Twitch.TV
// measurement study (PAPERS.md) describes the opposite regime --
// crowdsourced *event* platforms concentrate the audience into a few
// enormous long-lived channels, with join storms around scheduled
// moments and heavy viewer churn throughout. These presets generate that
// regime (and a Periscope-like tail for contrast) as per-viewer
// join/stay records, deterministically at any thread count: viewer i
// always draws from substream_seed(seed, i), and outputs land in slot i,
// so the merge is independent of scheduling (sim/parallel.h contract).
#ifndef LIVESIM_WORKLOAD_CROWD_H
#define LIVESIM_WORKLOAD_CROWD_H

#include <cstdint>
#include <string>
#include <vector>

#include "livesim/util/time.h"

namespace livesim::workload {

struct CrowdPreset {
  std::string name;
  std::uint32_t channels = 100;
  /// Zipf exponent of audience concentration across channels: higher =
  /// more of the crowd piled onto the top channel.
  double channel_zipf_s = 1.5;
  std::uint32_t viewers = 20000;  // viewer sessions over the horizon
  DurationUs horizon = 30 * time::kMinute;
  /// Watch time: exponential with this mean, truncated to the horizon.
  double mean_session_s = 300.0;
  /// Join storm: arrivals inside the window
  /// [spike_at, spike_at + spike_ramp) occur at spike_amplitude times the
  /// background rate (1.0 = no spike, uniform arrivals).
  double spike_at_frac = 0.5;
  double spike_amplitude = 1.0;
  double spike_ramp_s = 60.0;

  /// Twitch-style event spike: few huge channels, a hard join storm at
  /// the half-hour mark, sessions short enough that churn never stops.
  static CrowdPreset twitch_flash_crowd();
  /// Twitch-style steady state: a handful of giant long-lived channels,
  /// long sessions, low churn, no spike.
  static CrowdPreset twitch_steady_giants();
  /// Periscope-style tail for contrast: thousands of small channels,
  /// short sessions, mild concentration.
  static CrowdPreset periscope_tail();
};

/// One viewer session: which channel, when it joined, how long it stayed.
struct CrowdRecord {
  std::uint32_t channel = 0;  // rank, 0 = the most popular channel
  TimeUs join = 0;            // relative to the horizon start
  DurationUs stay = 0;
};

/// Generates `preset.viewers` records. Record i depends only on
/// (preset, seed, i), so the output is byte-identical at every thread
/// count (0 = all hardware threads).
std::vector<CrowdRecord> generate_crowd(const CrowdPreset& preset,
                                        std::uint64_t seed,
                                        unsigned threads = 1);

/// Calibration summary the preset smoke tests pin tolerance bands on.
struct CrowdShape {
  double top_channel_share = 0.0;  // viewers on the biggest channel
  std::uint32_t peak_concurrent = 0;
  TimeUs peak_at = 0;
  double peak_to_mean = 0.0;       // spike amplitude, as measured
  /// Join + leave events per minute per mean concurrent viewer: how fast
  /// the attached cohort turns over (what attach/detach must survive).
  double churn_per_min = 0.0;
};

CrowdShape crowd_shape(const std::vector<CrowdRecord>& records,
                       DurationUs horizon,
                       DurationUs bin = time::kSecond);

/// FNV-1a over every record field, in index order: the determinism pin.
std::uint64_t crowd_fingerprint(const std::vector<CrowdRecord>& records);

}  // namespace livesim::workload

#endif  // LIVESIM_WORKLOAD_CROWD_H
