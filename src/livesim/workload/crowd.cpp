#include "livesim/workload/crowd.h"

#include <algorithm>
#include <cmath>

#include "livesim/sim/parallel.h"
#include "livesim/util/rng.h"

namespace livesim::workload {

CrowdPreset CrowdPreset::twitch_flash_crowd() {
  CrowdPreset p;
  p.name = "twitch_flash_crowd";
  p.channels = 50;
  p.channel_zipf_s = 1.8;
  p.viewers = 30000;
  p.horizon = 30 * time::kMinute;
  p.mean_session_s = 240.0;
  p.spike_at_frac = 0.5;
  p.spike_amplitude = 8.0;
  p.spike_ramp_s = 120.0;
  return p;
}

CrowdPreset CrowdPreset::twitch_steady_giants() {
  CrowdPreset p;
  p.name = "twitch_steady_giants";
  p.channels = 20;
  p.channel_zipf_s = 2.0;
  p.viewers = 20000;
  p.horizon = 30 * time::kMinute;
  p.mean_session_s = 1200.0;
  p.spike_amplitude = 1.0;  // no storm: arrivals stay uniform
  return p;
}

CrowdPreset CrowdPreset::periscope_tail() {
  CrowdPreset p;
  p.name = "periscope_tail";
  p.channels = 2000;
  p.channel_zipf_s = 1.1;
  p.viewers = 10000;
  p.horizon = 30 * time::kMinute;
  p.mean_session_s = 90.0;
  p.spike_amplitude = 1.0;
  return p;
}

std::vector<CrowdRecord> generate_crowd(const CrowdPreset& preset,
                                        std::uint64_t seed,
                                        unsigned threads) {
  const double horizon_s = time::to_seconds(preset.horizon);
  const TimeUs spike_start = static_cast<TimeUs>(
      std::clamp(preset.spike_at_frac, 0.0, 1.0) *
      static_cast<double>(preset.horizon));
  const TimeUs spike_len = std::min(
      preset.horizon - spike_start, time::from_seconds(preset.spike_ramp_s));
  // Arrival mixture: inside the storm window the rate is `amplitude`
  // times the background, so a viewer lands in the window with
  // probability A*W / (A*W + (1-W)), W = window fraction of the horizon.
  const double w = horizon_s > 0.0
                       ? time::to_seconds(spike_len) / horizon_s
                       : 0.0;
  const double a = std::max(1.0, preset.spike_amplitude);
  const double p_spike = (a * w) / (a * w + (1.0 - w));

  const ZipfSampler channel_sampler(
      std::max<std::int64_t>(1, preset.channels), preset.channel_zipf_s);

  return sim::parallel_map<CrowdRecord>(
      preset.viewers, threads, [&](std::size_t i) {
        Rng rng(sim::substream_seed(seed, i));
        CrowdRecord r;
        r.channel =
            static_cast<std::uint32_t>(channel_sampler.sample(rng) - 1);
        if (spike_len > 0 && rng.uniform() < p_spike) {
          r.join = spike_start +
                   static_cast<TimeUs>(rng.uniform() *
                                       static_cast<double>(spike_len));
        } else {
          // Background arrival over the rest of the horizon.
          TimeUs t = static_cast<TimeUs>(
              rng.uniform() * static_cast<double>(preset.horizon - spike_len));
          if (t >= spike_start) t += spike_len;
          r.join = t;
        }
        const double stay_s = rng.exponential(preset.mean_session_s);
        const DurationUs stay = time::from_seconds(stay_s);
        const DurationUs remaining = preset.horizon - r.join;
        r.stay = std::max<DurationUs>(1, std::min(stay, remaining));
        return r;
      });
}

CrowdShape crowd_shape(const std::vector<CrowdRecord>& records,
                       DurationUs horizon, DurationUs bin) {
  CrowdShape shape;
  if (records.empty() || horizon <= 0 || bin <= 0) return shape;

  // Audience concentration.
  std::vector<std::uint64_t> per_channel;
  for (const auto& r : records) {
    if (r.channel >= per_channel.size()) per_channel.resize(r.channel + 1, 0);
    ++per_channel[r.channel];
  }
  const std::uint64_t top =
      *std::max_element(per_channel.begin(), per_channel.end());
  shape.top_channel_share =
      static_cast<double>(top) / static_cast<double>(records.size());

  // Concurrency sweep: +1 at join, -1 at leave, swept in bin order.
  const auto bins = static_cast<std::size_t>((horizon + bin - 1) / bin);
  std::vector<std::int64_t> delta(bins + 1, 0);
  for (const auto& r : records) {
    const auto jb = static_cast<std::size_t>(r.join / bin);
    const auto lb =
        std::min(bins, static_cast<std::size_t>((r.join + r.stay) / bin));
    ++delta[std::min(jb, bins)];
    --delta[lb];
  }
  std::int64_t level = 0;
  double sum = 0.0;
  for (std::size_t b = 0; b < bins; ++b) {
    level += delta[b];
    sum += static_cast<double>(level);
    if (level > static_cast<std::int64_t>(shape.peak_concurrent)) {
      shape.peak_concurrent = static_cast<std::uint32_t>(level);
      shape.peak_at = static_cast<TimeUs>(b) * bin;
    }
  }
  const double mean = sum / static_cast<double>(bins);
  if (mean > 0.0) {
    shape.peak_to_mean = static_cast<double>(shape.peak_concurrent) / mean;
    // Every record contributes one join and one leave over the horizon.
    const double events = 2.0 * static_cast<double>(records.size());
    const double minutes = time::to_seconds(horizon) / 60.0;
    shape.churn_per_min = events / (mean * minutes);
  }
  return shape;
}

std::uint64_t crowd_fingerprint(const std::vector<CrowdRecord>& records) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
  };
  for (const auto& r : records) {
    mix(r.channel);
    mix(static_cast<std::uint64_t>(r.join));
    mix(static_cast<std::uint64_t>(r.stay));
  }
  return h;
}

}  // namespace livesim::workload
