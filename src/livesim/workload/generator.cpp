#include "livesim/workload/generator.h"

#include <algorithm>
#include <cmath>

namespace livesim::workload {

std::uint64_t Dataset::total_views() const {
  std::uint64_t v = 0;
  for (const auto& b : broadcasts)
    if (b.captured) v += b.total_viewers();
  return v;
}

std::uint64_t Dataset::captured_broadcasts() const {
  std::uint64_t n = 0;
  for (const auto& b : broadcasts) n += b.captured ? 1 : 0;
  return n;
}

std::uint64_t Dataset::unique_broadcasters() const {
  std::vector<std::uint64_t> ids;
  ids.reserve(broadcasts.size());
  for (const auto& b : broadcasts)
    if (b.captured) ids.push_back(b.broadcaster.value);
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids.size();
}

std::uint64_t estimate_registered_users(const Dataset& dataset) {
  std::uint64_t max_id = 0;
  for (const auto& b : dataset.broadcasts) {
    if (!b.captured) continue;
    max_id = std::max(max_id, b.broadcaster.value);
  }
  return max_id + 1;  // ids are 0-based ranks
}

namespace {
std::uint32_t scaled_population(const AppProfile& p, double scale) {
  const auto pop = static_cast<std::uint32_t>(
      static_cast<double>(p.population) * scale);
  return std::max<std::uint32_t>(pop, 2000);
}
}  // namespace

Generator::Generator(AppProfile profile, double scale, std::uint64_t seed)
    : profile_(std::move(profile)), scale_(scale), rng_(seed),
      population_(scaled_population(profile_, scale)),
      // Creators are a skewed subset of the population (views are
      // distributed separately with lognormal weights; see generate()).
      broadcaster_sampler_(population_, profile_.broadcaster_zipf_s) {}

std::uint32_t Generator::sample_viewers(Rng& rng) {
  if (rng.bernoulli(profile_.zero_viewer_fraction)) return 0;
  double v;
  if (rng.bernoulli(profile_.tail_fraction)) {
    v = rng.pareto(profile_.tail_scale, profile_.tail_shape);
  } else {
    v = rng.lognormal(profile_.viewers_mu, profile_.viewers_sigma);
  }
  v = std::min(v, profile_.max_viewers);
  return static_cast<std::uint32_t>(v);
}

void Generator::fill_interactions(BroadcastRecord& b, Rng& rng) {
  const std::uint32_t viewers = b.total_viewers();
  if (viewers == 0) return;

  // Comments: only the first `commenter_cap` joiners may comment (cap 0
  // means uncapped, as on Meerkat where comments ride Twitter).
  const std::uint32_t slots =
      profile_.commenter_cap > 0 ? std::min(viewers, profile_.commenter_cap)
                                 : viewers;
  const auto commenters = static_cast<std::uint32_t>(std::min<double>(
      slots,
      rng.poisson(static_cast<double>(slots) * profile_.comment_engagement)));
  double comments = 0;
  if (commenters > 0)
    comments = commenters * rng.lognormal(profile_.comments_per_commenter_mu,
                                          profile_.comments_per_commenter_sigma);
  b.comments = static_cast<std::uint32_t>(comments);

  // Hearts: any viewer can send them, engaged viewers send bursts.
  const double engaged =
      static_cast<double>(viewers) * profile_.heart_engagement;
  if (engaged >= 1.0) {
    const double per_viewer = rng.lognormal(profile_.hearts_per_viewer_mu,
                                            profile_.hearts_per_viewer_sigma);
    b.hearts = static_cast<std::uint64_t>(engaged * per_viewer);
  }
}

BroadcastRecord Generator::make_broadcast(std::uint32_t day, Rng& rng) {
  BroadcastRecord b;
  b.id = BroadcastId{next_broadcast_id_++};
  b.day = day;
  b.start = static_cast<TimeUs>(day) * time::kDay +
            static_cast<TimeUs>(rng.uniform() *
                                static_cast<double>(time::kDay));

  const double dur = std::clamp(
      rng.lognormal(profile_.duration_mu, profile_.duration_sigma),
      profile_.duration_min_s, profile_.duration_max_s);
  b.length = time::from_seconds(dur);

  b.broadcaster = UserId{
      static_cast<std::uint64_t>(broadcaster_sampler_.sample(rng) - 1)};

  // Followers: heavy-tailed; the broadcaster's Zipf rank reuses the same
  // skew so prolific broadcasters also tend to be followed (celebrities).
  const double base_followers = rng.pareto(2.0, 0.85);
  b.followers = static_cast<std::uint32_t>(
      std::min(base_followers, 2.0e6 * scale_ + 1000.0));

  // Viewers: organic discovery plus follower-driven audience (Fig 7).
  const double organic = sample_viewers(rng);
  const double follower_driven =
      profile_.follower_coupling *
      std::pow(static_cast<double>(b.followers), profile_.follower_gamma) *
      rng.lognormal(0.0, 0.8);
  const double total =
      std::min(organic + follower_driven, profile_.max_viewers);
  const double web_share = profile_.web_view_multiplier /
                           (1.0 + profile_.web_view_multiplier);
  b.web_viewers = static_cast<std::uint32_t>(total * web_share);
  b.mobile_viewers = static_cast<std::uint32_t>(total) - b.web_viewers;

  fill_interactions(b, rng);
  return b;
}

Dataset Generator::generate() {
  Dataset ds;
  ds.profile = profile_;
  ds.scale = scale_;
  ds.users.resize(population_);

  std::uint64_t total_mobile_views = 0;
  for (std::uint32_t day = 0; day < profile_.days; ++day) {
    const double expected = profile_.daily_volume(day) * scale_ *
                            rng_.lognormal(0.0, profile_.daily_noise);
    const auto count = static_cast<std::uint64_t>(expected);
    const double capture = profile_.capture_fraction(day);
    for (std::uint64_t i = 0; i < count; ++i) {
      BroadcastRecord b = make_broadcast(day, rng_);
      b.captured = rng_.bernoulli(capture);
      if (b.captured) {
        ds.users[b.broadcaster.value].broadcasts_created += 1;
        total_mobile_views += b.mobile_viewers;
      }
      ds.broadcasts.push_back(b);
    }
  }

  // Distribute mobile views over the user population with lognormal
  // weights, preserving the total. The sigma is chosen so the top 15% of
  // viewers watch ~10x the median user (Fig 6).
  std::vector<double> weights(population_);
  double weight_sum = 0.0;
  for (auto& w : weights) {
    w = rng_.bernoulli(profile_.viewer_inactive_fraction)
            ? 0.0
            : rng_.lognormal(0.0, profile_.views_per_user_sigma);
    weight_sum += w;
  }
  for (std::uint32_t u = 0; u < population_; ++u) {
    const double mean =
        static_cast<double>(total_mobile_views) * weights[u] / weight_sum;
    ds.users[u].broadcasts_viewed =
        static_cast<std::uint32_t>(rng_.poisson(mean));
  }
  return ds;
}

}  // namespace livesim::workload
