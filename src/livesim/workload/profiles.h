// Application workload profiles, calibrated to the paper's §3 findings.
//
// Periscope (measured May 15 - Aug 20, 2015):
//  * daily broadcasts grew >300% over 3 months, with a step jump when the
//    Android app launched (May 26) and weekly peaks on weekends;
//  * ~19.6M broadcasts, 1.85M broadcasters, 705M views (482M mobile from
//    7.65M registered viewers), 12M registered users;
//  * 85% of broadcasts < 10 min; nearly all have >= 1 viewer, the most
//    popular reach ~100K; ~10% get >100 comments and >1000 hearts (max
//    1.35M hearts); viewer:broadcaster DAU ratio ~10:1.
//
// Meerkat (May 12 - Jun 15, 2015):
//  * daily broadcasts halved within the month (Twitter cut its graph API);
//  * 164K broadcasts, 57K broadcasters, 3.8M views; 60% of broadcasts get
//    zero viewers.
#ifndef LIVESIM_WORKLOAD_PROFILES_H
#define LIVESIM_WORKLOAD_PROFILES_H

#include <cstdint>
#include <string>

namespace livesim::workload {

struct AppProfile {
  std::string name;
  std::uint32_t days = 98;

  // Daily broadcast volume model:
  //   volume(d) = base * growth(d) * weekly(d) * step(d)
  double base_daily_broadcasts = 80000;
  double growth_total = 3.3;        // multiplier from day 0 to last day
  double weekly_amplitude = 0.12;   // weekend peak vs weekday trough
  std::int32_t step_day = -1;       // app-launch style jump (-1: none)
  double step_multiplier = 1.0;
  double daily_noise = 0.05;        // lognormal day-to-day wiggle

  // Crawler outage (Periscope: Aug 7-9, ~4.5% of that period missing).
  std::int32_t outage_start_day = -1;
  std::int32_t outage_days = 0;
  double outage_capture_fraction = 1.0;

  // Broadcast duration: lognormal, clamped to [min,max].
  double duration_mu = 0.0;       // ln(seconds)
  double duration_sigma = 1.0;
  double duration_min_s = 10.0;
  double duration_max_s = 24.0 * 3600.0;

  // Viewers per broadcast: zero-inflated lognormal with Pareto tail.
  double zero_viewer_fraction = 0.0;
  double viewers_mu = 2.3;        // ln(viewers) for the lognormal body
  double viewers_sigma = 1.5;
  double tail_fraction = 0.002;   // broadcasts drawing from the Pareto tail
  double tail_scale = 2000.0;
  double tail_shape = 1.1;
  double max_viewers = 150000.0;
  double web_view_multiplier = 0.46;  // anonymous web views per mobile view

  // Interactions.
  std::uint32_t commenter_cap = 100;  // Periscope's first-100 policy
  double comment_engagement = 0.45;   // P(a commenter-slot user comments)
  double comments_per_commenter_mu = 1.0;
  double comments_per_commenter_sigma = 1.0;
  double heart_engagement = 0.35;     // P(a viewer sends any hearts)
  double hearts_per_viewer_mu = 2.2;  // ln(hearts) among engaged viewers
  double hearts_per_viewer_sigma = 1.3;

  // User population for activity distributions.
  std::uint32_t population = 1200000;
  double views_per_user_sigma = 2.5;   // "top 15% watch 10x the median"
  double viewer_inactive_fraction = 0.36;  // registered but never watch
  double creates_per_user_sigma = 1.5;
  double broadcaster_zipf_s = 1.1;     // skew of creates over users

  // Social coupling (Fig 7): viewers ~ followers^gamma * noise + organic.
  double follower_gamma = 0.75;
  double follower_coupling = 0.30;

  static AppProfile periscope();
  static AppProfile meerkat();

  /// Expected capture-able broadcast volume on day d (before scaling).
  double daily_volume(std::uint32_t day) const;
  /// Fraction of that day's broadcasts the crawler captured.
  double capture_fraction(std::uint32_t day) const;
};

}  // namespace livesim::workload

#endif  // LIVESIM_WORKLOAD_PROFILES_H
