#include "livesim/workload/audience.h"

#include <algorithm>
#include <cmath>

namespace livesim::workload {

std::vector<JoinRecord> generate_audience(const AudienceParams& params) {
  std::vector<JoinRecord> out;
  out.reserve(params.total_viewers);
  Rng rng(params.seed);
  const double len = static_cast<double>(params.broadcast_len);
  const double v = params.virality;

  for (std::uint32_t i = 0; i < params.total_viewers; ++i) {
    const double u = rng.uniform();
    double frac;
    if (v <= 1e-9) {
      frac = u;  // uniform arrivals
    } else {
      // Arrival density proportional to exp(v * t/L): inverse-CDF sample.
      frac = std::log(1.0 + u * (std::exp(v) - 1.0)) / v;
    }
    JoinRecord r;
    r.join = static_cast<TimeUs>(frac * len);
    const double watch_s = rng.lognormal(std::log(params.median_watch_s),
                                         params.watch_sigma);
    const DurationUs remaining = params.broadcast_len - r.join;
    r.stay = std::min<DurationUs>(time::from_seconds(watch_s), remaining);
    if (r.stay < 1) r.stay = 1;
    out.push_back(r);
  }
  std::sort(out.begin(), out.end(),
            [](const JoinRecord& a, const JoinRecord& b) {
              return a.join < b.join;
            });
  return out;
}

ConcurrencyCurve concurrency(const std::vector<JoinRecord>& audience,
                             DurationUs broadcast_len, DurationUs bin) {
  ConcurrencyCurve curve;
  curve.bin = bin;
  const auto bins = static_cast<std::size_t>(broadcast_len / bin) + 1;
  // Difference array over bins: +1 at join, -1 after leave.
  std::vector<std::int64_t> delta(bins + 1, 0);
  for (const auto& r : audience) {
    const auto j = static_cast<std::size_t>(r.join / bin);
    auto l = static_cast<std::size_t>((r.join + r.stay) / bin) + 1;
    if (l > bins) l = bins;
    delta[j] += 1;
    delta[l] -= 1;
  }
  curve.concurrent.resize(bins);
  std::int64_t running = 0;
  for (std::size_t i = 0; i < bins; ++i) {
    running += delta[i];
    curve.concurrent[i] = static_cast<std::uint32_t>(std::max<std::int64_t>(
        0, running));
    if (curve.concurrent[i] > curve.peak) {
      curve.peak = curve.concurrent[i];
      curve.peak_at = static_cast<TimeUs>(i) * bin;
    }
  }
  return curve;
}

}  // namespace livesim::workload
