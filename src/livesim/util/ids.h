// Strongly typed identifiers.
//
// Broadcasts, users, datacenters etc. are all indexed by integers; the tag
// parameter prevents accidentally passing a UserId where a BroadcastId is
// expected, at zero runtime cost.
#ifndef LIVESIM_UTIL_IDS_H
#define LIVESIM_UTIL_IDS_H

#include <compare>
#include <cstdint>
#include <functional>

namespace livesim {

template <typename Tag>
struct Id {
  std::uint64_t value = kInvalid;

  static constexpr std::uint64_t kInvalid = ~0ULL;

  constexpr Id() = default;
  constexpr explicit Id(std::uint64_t v) : value(v) {}

  constexpr bool valid() const noexcept { return value != kInvalid; }
  friend constexpr auto operator<=>(Id, Id) = default;
};

struct BroadcastTag {};
struct UserTag {};
struct DatacenterTag {};
struct ConnectionTag {};

using BroadcastId = Id<BroadcastTag>;
using UserId = Id<UserTag>;
using DatacenterId = Id<DatacenterTag>;
using ConnectionId = Id<ConnectionTag>;

// Pending simulator events are named by sim::EventHandle ({slot,
// generation} into the event arena, see sim/simulator.h), not by an Id:
// handles are recycled, so a plain integer id would be ambiguous.

}  // namespace livesim

template <typename Tag>
struct std::hash<livesim::Id<Tag>> {
  std::size_t operator()(livesim::Id<Tag> id) const noexcept {
    return std::hash<std::uint64_t>{}(id.value);
  }
};

#endif  // LIVESIM_UTIL_IDS_H
