#include "livesim/util/rng.h"

#include <cmath>
#include <stdexcept>

namespace livesim {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t x = seed;
  for (auto& word : s_) word = splitmix64(x);
  // All-zero state is the one invalid state for xoshiro; splitmix64 of any
  // seed cannot produce four zero words in a row, but guard regardless.
  if (s_[0] == 0 && s_[1] == 0 && s_[2] == 0 && s_[3] == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 random bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Lemire-style bounded sampling with rejection to kill modulo bias.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * range;
  auto low = static_cast<std::uint64_t>(m);
  if (low < range) {
    const std::uint64_t threshold = -range % range;
    while (low < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * range;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return lo + static_cast<std::int64_t>(m >> 64);
}

bool Rng::bernoulli(double p) noexcept { return uniform() < p; }

double Rng::normal(double mean, double stddev) noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

double Rng::exponential(double mean) noexcept {
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return -mean * std::log(u);
}

double Rng::lognormal(double mu, double sigma) noexcept {
  return std::exp(normal(mu, sigma));
}

double Rng::pareto(double scale, double shape) noexcept {
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return scale * std::pow(u, -1.0 / shape);
}

std::int64_t Rng::poisson(double mean) noexcept {
  if (mean <= 0.0) return 0;
  if (mean < 30.0) {
    // Knuth's product-of-uniforms method.
    const double limit = std::exp(-mean);
    double product = uniform();
    std::int64_t count = 0;
    while (product > limit) {
      ++count;
      product *= uniform();
    }
    return count;
  }
  // Normal approximation with continuity correction, adequate for the
  // workload generators (mean counts per bin, not tail-critical).
  const double x = normal(mean, std::sqrt(mean));
  return x < 0.0 ? 0 : static_cast<std::int64_t>(x + 0.5);
}

Rng Rng::fork() noexcept { return Rng(next_u64()); }

ZipfSampler::ZipfSampler(std::int64_t n, double s) : n_(n), s_(s) {
  if (n < 1) throw std::invalid_argument("ZipfSampler: n must be >= 1");
  if (s <= 0.0) throw std::invalid_argument("ZipfSampler: s must be > 0");
  h_x1_ = h(1.5) - 1.0;
  h_n_ = h(static_cast<double>(n) + 0.5);
  threshold_ = 2.0 - h_inv(h(2.5) - std::pow(2.0, -s_));
}

double ZipfSampler::h(double x) const noexcept {
  // Integral of x^-s: handles s == 1 as log.
  if (std::abs(s_ - 1.0) < 1e-12) return std::log(x);
  return std::pow(x, 1.0 - s_) / (1.0 - s_);
}

double ZipfSampler::h_inv(double x) const noexcept {
  if (std::abs(s_ - 1.0) < 1e-12) return std::exp(x);
  return std::pow((1.0 - s_) * x, 1.0 / (1.0 - s_));
}

std::int64_t ZipfSampler::sample(Rng& rng) const noexcept {
  // Rejection-inversion per Hörmann & Derflinger (1996).
  for (;;) {
    const double u = h_n_ + rng.uniform() * (h_x1_ - h_n_);
    const double x = h_inv(u);
    auto k = static_cast<std::int64_t>(x + 0.5);
    if (k < 1) k = 1;
    if (k > n_) k = n_;
    const double kd = static_cast<double>(k);
    if (kd - x <= threshold_) return k;
    if (u >= h(kd + 0.5) - std::pow(kd, -s_)) return k;
  }
}

}  // namespace livesim
