// Simulated-time primitives.
//
// The whole simulator runs on an integer microsecond clock: cheap to
// compare, exactly reproducible, and fine-grained enough for the 40 ms
// video frames and 0.1 s crawler polls the paper deals in.
#ifndef LIVESIM_UTIL_TIME_H
#define LIVESIM_UTIL_TIME_H

#include <cstdint>

namespace livesim {

/// A point in simulated time, in microseconds since simulation start.
using TimeUs = std::int64_t;

/// A span of simulated time, in microseconds.
using DurationUs = std::int64_t;

namespace time {

inline constexpr DurationUs kMicrosecond = 1;
inline constexpr DurationUs kMillisecond = 1'000;
inline constexpr DurationUs kSecond = 1'000'000;
inline constexpr DurationUs kMinute = 60 * kSecond;
inline constexpr DurationUs kHour = 60 * kMinute;
inline constexpr DurationUs kDay = 24 * kHour;

/// Converts seconds (possibly fractional) to a microsecond duration.
constexpr DurationUs from_seconds(double s) noexcept {
  return static_cast<DurationUs>(s * static_cast<double>(kSecond));
}

/// Converts milliseconds (possibly fractional) to a microsecond duration.
constexpr DurationUs from_millis(double ms) noexcept {
  return static_cast<DurationUs>(ms * static_cast<double>(kMillisecond));
}

/// Converts a microsecond duration to fractional seconds.
constexpr double to_seconds(DurationUs d) noexcept {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}

/// Converts a microsecond duration to fractional milliseconds.
constexpr double to_millis(DurationUs d) noexcept {
  return static_cast<double>(d) / static_cast<double>(kMillisecond);
}

/// Day index (0-based) of a time point, for daily time series.
constexpr std::int64_t day_index(TimeUs t) noexcept { return t / kDay; }

}  // namespace time
}  // namespace livesim

#endif  // LIVESIM_UTIL_TIME_H
