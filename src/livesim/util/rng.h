// Deterministic random number generation for simulations.
//
// Every component that needs randomness owns an Rng (or a fork of one);
// there is no global generator, so experiments are reproducible from a
// single seed regardless of module initialization order.
#ifndef LIVESIM_UTIL_RNG_H
#define LIVESIM_UTIL_RNG_H

#include <array>
#include <cstdint>

namespace livesim {

/// xoshiro256** PRNG with convenience samplers for the distributions the
/// workload models need. Not cryptographic.
class Rng {
 public:
  /// Seeds the state deterministically from `seed` via splitmix64.
  explicit Rng(std::uint64_t seed) noexcept;

  /// Next raw 64-bit output.
  std::uint64_t next_u64() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// True with probability p (clamped to [0, 1]).
  bool bernoulli(double p) noexcept;

  /// Gaussian via Box-Muller (caches the spare deviate).
  double normal(double mean, double stddev) noexcept;

  /// Exponential with the given mean (mean = 1/rate). Requires mean > 0.
  double exponential(double mean) noexcept;

  /// Log-normal: exp(N(mu, sigma)).
  double lognormal(double mu, double sigma) noexcept;

  /// Pareto (Lomax-free, classic): scale * U^(-1/shape), >= scale.
  double pareto(double scale, double shape) noexcept;

  /// Poisson-distributed count with the given mean (Knuth / PTRS hybrid).
  std::int64_t poisson(double mean) noexcept;

  /// Derives an independent generator; deterministic given this Rng's
  /// current state. Use to hand child components their own streams.
  Rng fork() noexcept;

 private:
  std::array<std::uint64_t, 4> s_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

/// Bounded Zipf sampler over {1, ..., n} with exponent `s`, using
/// rejection-inversion (Hörmann & Derflinger) so construction is O(1)
/// and sampling needs no per-rank tables even for n in the millions.
class ZipfSampler {
 public:
  /// Requires n >= 1 and s > 0, s != 1 handled, s == 1 handled.
  ZipfSampler(std::int64_t n, double s);

  /// Draws a rank in [1, n]; rank 1 is the most probable.
  std::int64_t sample(Rng& rng) const noexcept;

  std::int64_t n() const noexcept { return n_; }
  double exponent() const noexcept { return s_; }

 private:
  double h(double x) const noexcept;
  double h_inv(double x) const noexcept;

  std::int64_t n_;
  double s_;
  double h_x1_;
  double h_n_;
  double threshold_;
};

}  // namespace livesim

#endif  // LIVESIM_UTIL_RNG_H
