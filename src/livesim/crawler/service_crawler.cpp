#include "livesim/crawler/service_crawler.h"

namespace livesim::crawler {

ServiceCrawler::ServiceCrawler(sim::Simulator& sim,
                               core::LivestreamService& service,
                               Params params, Rng rng)
    : sim_(sim), service_(service), params_(params), rng_(rng) {}

ServiceCrawler::~ServiceCrawler() { stop(); }

void ServiceCrawler::start() {
  running_ = true;
  const DurationUs stagger = params_.account_interval / params_.accounts;
  for (std::uint32_t a = 0; a < params_.accounts; ++a) {
    accounts_.push_back(std::make_unique<sim::PeriodicProcess>(
        sim_, sim_.now() + static_cast<TimeUs>(a) * stagger,
        params_.account_interval,
        [this](sim::PeriodicProcess&) { refresh(); }));
  }
}

void ServiceCrawler::stop() {
  running_ = false;
  for (auto& a : accounts_) a->stop();
  for (auto& m : monitors_) m->stop();
}

void ServiceCrawler::schedule_outage(TimeUs from, TimeUs until) {
  outage_from_ = from;
  outage_until_ = until;
}

void ServiceCrawler::refresh() {
  if (!running_) return;
  const TimeUs now = sim_.now();
  if (outage_until_ > 0 && now >= outage_from_ && now < outage_until_)
    return;  // crawler bug window: list refreshes silently fail
  for (BroadcastId id :
       service_.global_list().sample(params_.list_size, rng_)) {
    if (records_.count(id.value)) continue;
    Record rec;
    rec.id = id;
    rec.first_seen = now;
    records_.emplace(id.value, rec);
    monitor(id);
  }
}

void ServiceCrawler::monitor(BroadcastId id) {
  // "Our crawler starts a new thread to join the broadcast and records
  // data until the broadcast terminates."
  monitors_.push_back(std::make_unique<sim::PeriodicProcess>(
      sim_, sim_.now(), params_.monitor_poll,
      [this, id](sim::PeriodicProcess& proc) {
        const auto info = service_.info(id);
        auto& rec = records_.at(id.value);
        if (!info || !info->live) {
          rec.ended = true;
          proc.stop();
          return;
        }
        rec.last_live = sim_.now();
        rec.peak_viewers = std::max(rec.peak_viewers,
                                    info->rtmp_viewers + info->hls_viewers);
        rec.hearts = info->hearts;
        rec.comments = info->comments;
      }));
}

}  // namespace livesim::crawler
