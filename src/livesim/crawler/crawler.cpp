#include "livesim/crawler/crawler.h"

#include <algorithm>
#include <cmath>

namespace livesim::crawler {

std::vector<BroadcastId> GlobalList::sample(std::size_t k, Rng& rng) const {
  std::vector<BroadcastId> all;
  all.reserve(active_.size());
  for (auto id : active_) all.emplace_back(id);
  if (all.size() <= k) return all;
  // Partial Fisher-Yates: uniform sample of k without replacement.
  for (std::size_t i = 0; i < k; ++i) {
    const auto j = static_cast<std::size_t>(rng.uniform_int(
        static_cast<std::int64_t>(i), static_cast<std::int64_t>(all.size()) - 1));
    std::swap(all[i], all[j]);
  }
  all.resize(k);
  return all;
}

ListCrawler::ListCrawler(sim::Simulator& sim, const GlobalList& list,
                         Params params, Rng rng)
    : sim_(sim), list_(list), params_(params), rng_(rng) {}

void ListCrawler::start() {
  const DurationUs stagger = effective_refresh();
  for (std::uint32_t a = 0; a < params_.accounts; ++a) {
    accounts_.push_back(std::make_unique<sim::PeriodicProcess>(
        sim_, sim_.now() + static_cast<TimeUs>(a) * stagger,
        params_.account_interval, [this](sim::PeriodicProcess&) {
          ++refreshes_;
          for (BroadcastId id : list_.sample(params_.list_size, rng_))
            first_seen_.emplace(id.value, sim_.now());
        }));
  }
}

void ListCrawler::stop() {
  for (auto& a : accounts_) a->stop();
}

CoverageResult run_coverage_experiment(const CoverageParams& params) {
  sim::Simulator sim;
  Rng rng(params.seed);
  GlobalList list;

  CoverageResult result;
  std::unordered_map<std::uint64_t, TimeUs> started_at;
  std::uint64_t next_id = 0;
  double peak_active = 0;

  // Broadcast arrival process.
  std::function<void()> arrive = [&] {
    if (sim.now() >= params.horizon) return;
    const BroadcastId id{next_id++};
    list.broadcast_started(id);
    started_at[id.value] = sim.now();
    ++result.total_broadcasts;
    peak_active = std::max(peak_active, static_cast<double>(list.active_count()));

    const double dur_s = std::max(
        3.0, rng.lognormal(std::log(params.mean_duration_s) - 0.5, 1.0));
    sim.schedule_in(time::from_seconds(dur_s),
                    [&list, id] { list.broadcast_ended(id); });
    sim.schedule_in(
        time::from_seconds(rng.exponential(1.0 / params.arrivals_per_s)),
        arrive);
  };
  sim.schedule_in(0, arrive);

  ListCrawler::Params cp;
  cp.accounts = params.accounts;
  ListCrawler crawler(sim, list, cp, rng.fork());
  crawler.start();

  // Stop the crawler a little after the horizon so trailing broadcasts can
  // still be captured before they end.
  sim.schedule_at(params.horizon + 10 * time::kSecond,
                  [&crawler] { crawler.stop(); });
  sim.run();

  double latency_sum = 0;
  for (const auto& [id, seen] : crawler.first_seen()) {
    auto it = started_at.find(id);
    if (it == started_at.end()) continue;
    ++result.captured;
    latency_sum += time::to_seconds(seen - it->second);
  }
  result.coverage = result.total_broadcasts
                        ? static_cast<double>(result.captured) /
                              static_cast<double>(result.total_broadcasts)
                        : 0.0;
  result.mean_detection_latency_s =
      result.captured ? latency_sum / static_cast<double>(result.captured) : 0;
  result.peak_active = peak_active;
  return result;
}

}  // namespace livesim::crawler
