// The measurement apparatus itself (§3.1), modeled faithfully:
//
//  * the service's global list returns 50 randomly selected broadcasts out
//    of all currently-active ones;
//  * the crawler runs many accounts, each refreshing every 5 s, staggered
//    so the effective refresh period is 0.25 s;
//  * each newly seen broadcast is joined by a monitor thread until it ends.
//
// The paper validated that 0.5 s effective refresh already captures every
// broadcast; the coverage experiment reproduces that claim and its
// dependence on broadcast volume (the ablation bench sweeps refresh rate).
#ifndef LIVESIM_CRAWLER_CRAWLER_H
#define LIVESIM_CRAWLER_CRAWLER_H

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "livesim/sim/simulator.h"
#include "livesim/util/ids.h"
#include "livesim/util/rng.h"

namespace livesim::crawler {

/// The service-side global broadcast list.
class GlobalList {
 public:
  void broadcast_started(BroadcastId id) { active_.insert(id.value); }
  void broadcast_ended(BroadcastId id) { active_.erase(id.value); }

  std::size_t active_count() const noexcept { return active_.size(); }

  /// Returns `k` broadcasts sampled uniformly without replacement from the
  /// active set (all of them if fewer than k are live).
  std::vector<BroadcastId> sample(std::size_t k, Rng& rng) const;

 private:
  std::unordered_set<std::uint64_t> active_;
};

/// Multi-account list crawler.
class ListCrawler {
 public:
  struct Params {
    std::uint32_t accounts = 20;
    DurationUs account_interval = 5 * time::kSecond;  // app refresh period
    std::size_t list_size = 50;
  };

  ListCrawler(sim::Simulator& sim, const GlobalList& list, Params params,
              Rng rng);

  /// Begins the staggered refresh loops.
  void start();
  void stop();

  DurationUs effective_refresh() const noexcept {
    return params_.account_interval / params_.accounts;
  }

  bool has_seen(BroadcastId id) const {
    return first_seen_.count(id.value) != 0;
  }
  /// Time each broadcast was first captured.
  const std::unordered_map<std::uint64_t, TimeUs>& first_seen() const noexcept {
    return first_seen_;
  }
  std::uint64_t refreshes() const noexcept { return refreshes_; }

 private:
  sim::Simulator& sim_;
  const GlobalList& list_;
  Params params_;
  Rng rng_;
  std::vector<std::unique_ptr<sim::PeriodicProcess>> accounts_;
  std::unordered_map<std::uint64_t, TimeUs> first_seen_;
  std::uint64_t refreshes_ = 0;
};

/// Coverage experiment: Poisson broadcast arrivals with lognormal
/// durations, crawled at a given effective refresh period.
struct CoverageResult {
  std::uint64_t total_broadcasts = 0;
  std::uint64_t captured = 0;
  double coverage = 0.0;                // captured / total
  double mean_detection_latency_s = 0;  // start -> first capture, captured only
  double peak_active = 0;               // max simultaneous broadcasts
};

struct CoverageParams {
  double arrivals_per_s = 2.0;        // broadcast creation rate
  double mean_duration_s = 300.0;     // lognormal-ish duration
  std::uint32_t accounts = 20;        // account_interval fixed at 5 s
  DurationUs horizon = 30 * time::kMinute;
  std::uint64_t seed = 1;
};

CoverageResult run_coverage_experiment(const CoverageParams& params);

}  // namespace livesim::crawler

#endif  // LIVESIM_CRAWLER_CRAWLER_H
