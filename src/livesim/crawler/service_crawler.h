// The full §3.1 measurement pipeline against a live (simulated) service:
// staggered accounts refresh the global list; every newly discovered
// broadcast gets a monitor that records its metadata until it ends --
// "for each broadcast, we collect the broadcastID, starting and ending
// time of the broadcast, ... and a sequence of timestamped comments and
// hearts. Only metadata is stored."
//
// Because the service is simulated, the crawled dataset can be compared
// against ground truth -- the validation the paper itself could only
// approximate (e.g., its "missing roughly 4.5% of broadcasts" estimate
// for the Aug 7-9 outage).
#ifndef LIVESIM_CRAWLER_SERVICE_CRAWLER_H
#define LIVESIM_CRAWLER_SERVICE_CRAWLER_H

#include <map>
#include <memory>

#include "livesim/core/service.h"
#include "livesim/crawler/crawler.h"

namespace livesim::crawler {

class ServiceCrawler {
 public:
  struct Params {
    std::uint32_t accounts = 20;
    DurationUs account_interval = 5 * time::kSecond;
    std::size_t list_size = 50;
    DurationUs monitor_poll = time::kSecond;  // per-broadcast metadata poll
  };

  struct Record {
    BroadcastId id{};
    TimeUs first_seen = 0;
    TimeUs last_live = 0;       // last poll at which it was still live
    std::uint32_t peak_viewers = 0;
    std::uint64_t hearts = 0;
    std::uint64_t comments = 0;
    bool ended = false;
  };

  ServiceCrawler(sim::Simulator& sim, core::LivestreamService& service,
                 Params params, Rng rng);
  ~ServiceCrawler();

  void start();
  void stop();

  /// Simulates the Aug 7-9 style outage: accounts stop refreshing in
  /// [from, until); monitors for already-known broadcasts keep running
  /// (as the paper's did -- the bug was in list crawling).
  void schedule_outage(TimeUs from, TimeUs until);

  const std::map<std::uint64_t, Record>& records() const noexcept {
    return records_;
  }
  std::uint64_t broadcasts_captured() const noexcept {
    return records_.size();
  }

 private:
  void refresh();
  void monitor(BroadcastId id);

  sim::Simulator& sim_;
  core::LivestreamService& service_;
  Params params_;
  Rng rng_;
  std::vector<std::unique_ptr<sim::PeriodicProcess>> accounts_;
  std::vector<std::unique_ptr<sim::PeriodicProcess>> monitors_;
  std::map<std::uint64_t, Record> records_;
  bool running_ = false;
  TimeUs outage_from_ = 0, outage_until_ = 0;
};

}  // namespace livesim::crawler

#endif  // LIVESIM_CRAWLER_SERVICE_CRAWLER_H
