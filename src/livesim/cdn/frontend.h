// Byte-level RTMP ingest front-end: connection state machine + token auth.
//
// Models what Wowza actually does with the bytes the broadcaster sends:
// expect a connect message carrying the broadcast token (issued by the
// Periscope control server over HTTPS), validate it, then accept video
// frames until end-of-stream. Two §7-relevant facts live here:
//
//  * the token is the ONLY authentication, and it traveled in plaintext --
//    an attacker who sniffed it can publish into the broadcast;
//  * with the signature defense enabled, the front-end verifies each
//    signed window and kills the connection on the first tampered one.
#ifndef LIVESIM_CDN_FRONTEND_H
#define LIVESIM_CDN_FRONTEND_H

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>

#include "livesim/protocol/rtmp.h"
#include "livesim/security/sha256.h"
#include "livesim/security/stream_sign.h"

namespace livesim::cdn {

/// Issues and validates broadcast tokens (HMAC over the broadcast id with
/// a server-side secret, hex-encoded -- structurally like Periscope's
/// 13-char opaque tokens, but verifiable without a lookup table).
class TokenAuthority {
 public:
  explicit TokenAuthority(const security::Digest& server_secret)
      : secret_(server_secret) {}

  std::string issue(std::uint64_t broadcast_id) const;
  bool validate(std::uint64_t broadcast_id, const std::string& token) const;

 private:
  security::Digest secret_;
};

class RtmpFrontend {
 public:
  enum class State { kAwaitConnect, kStreaming, kClosed };
  enum class Verdict {
    kAccepted,       // message consumed
    kAcknowledged,   // connect accepted (publish-ack would be sent)
    kRejected,       // bad token / malformed / out of order -> closed
    kTampered,       // signature verification failed -> closed
    kEndOfStream,    // clean termination
  };

  using FrameSink = std::function<void(const media::VideoFrame&)>;

  /// `expected_root`: enables the §7.2 signature defense when set (the
  /// broadcaster registered its Merkle root over the HTTPS control
  /// channel); `sign_every` must match the broadcaster's signer.
  RtmpFrontend(const TokenAuthority& authority, std::uint64_t broadcast_id,
               FrameSink sink,
               std::optional<security::Digest> expected_root = std::nullopt,
               std::uint32_t sign_every = 25);

  /// Consumes one wire message; advances the connection state machine.
  Verdict consume(std::span<const std::uint8_t> wire);

  State state() const noexcept { return state_; }
  std::uint64_t frames_accepted() const noexcept { return frames_; }

 private:
  const TokenAuthority& authority_;
  std::uint64_t broadcast_id_;
  FrameSink sink_;
  std::unique_ptr<security::StreamVerifier> verifier_;
  State state_ = State::kAwaitConnect;
  std::uint64_t frames_ = 0;
};

}  // namespace livesim::cdn

#endif  // LIVESIM_CDN_FRONTEND_H
