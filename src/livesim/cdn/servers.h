// Ingest (Wowza-like) and edge (Fastly-like) server state machines.
//
// IngestServer: terminates the broadcaster's RTMP connection, pushes each
// frame to its (capped) RTMP subscribers, and runs the chunker whose
// sealed chunks expire downstream edge caches.
//
// EdgeServer: serves HLS polls from cache; the first poll that arrives
// after an expiry notification triggers a single origin fetch, and every
// poll that arrives while the fetch is in flight waits for it (request
// coalescing) -- precisely the mechanism behind the paper's Wowza2Fastly
// delay component.
#ifndef LIVESIM_CDN_SERVERS_H
#define LIVESIM_CDN_SERVERS_H

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include <memory>

#include "livesim/cdn/resource_model.h"
#include "livesim/media/chunker.h"
#include "livesim/media/frame.h"
#include "livesim/sim/poll_wheel.h"
#include "livesim/sim/simulator.h"
#include "livesim/util/ids.h"

namespace livesim::cdn {

class IngestServer {
 public:
  /// (frame, arrival time at ingest) -> deliver to one RTMP viewer.
  using FrameSink = std::function<void(const media::VideoFrame&, TimeUs)>;
  /// Sealed chunk ready at the ingest -> notify edges / recorders.
  using ChunkSink = std::function<void(const media::Chunk&)>;

  IngestServer(sim::Simulator& sim, DatacenterId site,
               media::Chunker::Params chunker_params,
               const ResourceModel& resources)
      : sim_(sim), site_(site), chunker_(chunker_params), cpu_(resources) {}

  /// Frame arrived over the broadcaster's uplink.
  void on_frame(const media::VideoFrame& frame);

  /// End of broadcast: seals any partial chunk.
  void on_end_of_stream();

  /// Adds an RTMP subscriber. The RTMP slot cap (the "first ~100 viewers"
  /// policy) is enforced by the service layer, not here.
  void add_rtmp_subscriber(FrameSink sink) {
    rtmp_subscribers_.push_back(std::move(sink));
  }

  void set_chunk_listener(ChunkSink sink) { chunk_listener_ = std::move(sink); }

  /// Fault injection: while down, the server is a dead socket — frames
  /// are dropped (counted), no chunks seal, no RTMP pushes happen. The
  /// chunker state survives the crash (Wowza restarts on the same box).
  void set_down(bool down) noexcept { down_ = down; }
  bool down() const noexcept { return down_; }
  std::uint64_t frames_dropped() const noexcept { return frames_dropped_; }
  /// Consecutive frames dropped since the last successful ingest — the
  /// health monitor's "is this box wedged right now" signal, where
  /// frames_dropped() only says "has it ever dropped".
  std::uint32_t frame_drop_streak() const noexcept {
    return frame_drop_streak_;
  }

  DatacenterId site() const noexcept { return site_; }
  const media::ChunkList& playlist() const noexcept {
    return chunker_.playlist();
  }
  std::size_t rtmp_subscriber_count() const noexcept {
    return rtmp_subscribers_.size();
  }
  CpuMeter& cpu() noexcept { return cpu_; }
  std::uint64_t frames_ingested() const noexcept { return frames_ingested_; }
  /// Bytes pushed to RTMP subscribers (egress) and received (ingress).
  std::uint64_t egress_bytes() const noexcept { return egress_bytes_; }
  std::uint64_t ingress_bytes() const noexcept { return ingress_bytes_; }

 private:
  void emit_chunk(const media::Chunk& c);

  sim::Simulator& sim_;
  DatacenterId site_;
  media::Chunker chunker_;
  CpuMeter cpu_;
  std::vector<FrameSink> rtmp_subscribers_;
  ChunkSink chunk_listener_;
  bool down_ = false;
  std::uint64_t frames_dropped_ = 0;
  std::uint32_t frame_drop_streak_ = 0;
  std::uint64_t frames_ingested_ = 0;
  std::uint64_t egress_bytes_ = 0;
  std::uint64_t ingress_bytes_ = 0;
};

class EdgeServer {
 public:
  /// Async origin fetch: the service wires this to the W2F model. The
  /// callback must eventually fire -- with the chunks now present at the
  /// origin playlist, or nullopt on a failed transfer (timeout, transient
  /// origin error), which the edge retries with backoff.
  using FetchResult = std::optional<std::vector<media::Chunk>>;
  using OriginFetchFn = std::function<void(std::function<void(FetchResult)>)>;

  /// (serve time at edge, chunks newer than the client's last sequence).
  using PollCallback = std::function<void(TimeUs, std::vector<media::Chunk>)>;

  EdgeServer(sim::Simulator& sim, DatacenterId site, OriginFetchFn fetch,
             const ResourceModel& resources)
      : sim_(sim), site_(site), fetch_(std::move(fetch)), cpu_(resources) {}

  /// Expiry notification from the ingest: a chunk with this sequence now
  /// exists upstream, so the cached chunklist is stale.
  void on_expire_notice(std::uint64_t latest_seq);

  /// An HLS poll arrived at this edge. `client_last_seq` is the highest
  /// chunk sequence the client already has (-1 for none).
  void on_poll(std::int64_t client_last_seq, PollCallback cb);

  /// When each chunk became servable at this edge (Fig 15's timestamp 11).
  const std::unordered_map<std::uint64_t, TimeUs>& availability()
      const noexcept {
    return chunk_available_;
  }

  DatacenterId site() const noexcept { return site_; }
  CpuMeter& cpu() noexcept { return cpu_; }
  std::uint64_t polls_served() const noexcept { return polls_; }
  std::uint64_t origin_fetches() const noexcept { return fetches_; }
  std::uint64_t fetch_failures() const noexcept { return fetch_failures_; }
  /// Consecutive origin-fetch failures since the last successful fetch.
  /// fetch_failures() is cumulative and never resets; the streak is the
  /// control plane's drain trigger ("the origin path is broken *now*").
  std::uint32_t fetch_failure_streak() const noexcept {
    return fetch_failure_streak_;
  }
  /// Bytes served to HLS clients (chunks + playlists).
  std::uint64_t egress_bytes() const noexcept { return egress_bytes_; }

  /// Retry policy for failed origin fetches.
  void set_retry(DurationUs backoff, std::uint32_t max_attempts) {
    retry_backoff_ = backoff;
    max_attempts_ = max_attempts;
  }

  /// Fault injection: drops every cached chunk (a cache node restart).
  /// First-availability timestamps survive (they are measurements, not
  /// state), but the next poll must re-pull from the origin.
  void flush_cache() noexcept {
    cache_.clear();
    cached_seq_ = -1;
    ++cache_flushes_;
  }
  std::uint64_t cache_flushes() const noexcept { return cache_flushes_; }

  // --- capacity / attachment ledger ---
  // Concurrent-viewer capacity (the "Fastly absorbs the flash crowd"
  // knob). The ledger only counts; ADMISSION is enforced by the session
  // layer's spill policy, and only for failed-over viewers — organic
  // anycast joins are load-blind, exactly how IP anycast behaves, so an
  // edge can sit above capacity from joins alone and then refuse spill
  // traffic.

  /// 0 (the default) = unbounded; nothing changes vs the pre-capacity
  /// code, bit for bit.
  void set_capacity(std::uint64_t cap) noexcept { capacity_ = cap; }
  std::uint64_t capacity() const noexcept { return capacity_; }
  /// True when a finite capacity is met or exceeded: the spill policy
  /// must overflow past this edge.
  bool full() const noexcept {
    return capacity_ != 0 && attached_ >= capacity_;
  }
  /// A viewer attached (join or failover admission).
  void attach() noexcept {
    ++attached_;
    if (attached_ > peak_attached_) peak_attached_ = attached_;
  }
  /// A viewer detached (leave, migration away, or their PoP died). A
  /// detach with nothing attached is a caller bug (double-detach); the
  /// count still clamps at zero so the load ledger never wraps, but the
  /// underflow is recorded instead of silently masked — tests pin
  /// detach_underflows() == 0 to prove attach/detach conservation.
  void detach() noexcept {
    if (attached_ > 0)
      --attached_;
    else
      ++detach_underflows_;
  }
  std::uint64_t attached() const noexcept { return attached_; }
  /// detach() calls that found nothing attached (should stay 0).
  std::uint64_t detach_underflows() const noexcept {
    return detach_underflows_;
  }
  /// High-water mark of concurrent attachments — the hotspot ledger a
  /// blackout pile-up shows up in.
  std::uint64_t peak_attached() const noexcept { return peak_attached_; }

  // --- poll-aggregation cohort (flash-crowd fast path) ---
  // This edge's bucketed poll wheel: one engine event per tick fans out
  // to every attached HLS viewer, so scheduling cost scales with edges,
  // not viewers. Created lazily on first use with the session's poll
  // geometry (the wheel keeps the geometry it was created with); the
  // session wires the fan-out callback. Edges whose cohort is never
  // wheel-driven pay nothing.

  /// Returns the wheel, creating it with (period, buckets) if absent.
  sim::PollWheel& poll_wheel(DurationUs period, std::uint32_t buckets);
  /// The wheel if one exists (nullptr before first poll_wheel() call).
  sim::PollWheel* poll_wheel() noexcept { return wheel_.get(); }
  const sim::PollWheel* poll_wheel() const noexcept { return wheel_.get(); }

  /// Fault injection: the PoP dies (power event, regional blackout).
  /// While down the server is a dead socket — polls are dropped without a
  /// response (counted) and pending waiters are abandoned; clients detect
  /// the silence and re-anycast elsewhere. Going down wipes the cache
  /// (the node lost its RAM), so a revived edge re-pulls from the origin.
  void set_down(bool down) noexcept {
    if (down && !down_) {
      flush_cache();
      --cache_flushes_;  // a death is not a flush event in the ledger
      polls_dropped_ += waiters_.size();
      waiters_.clear();
    }
    down_ = down;
  }
  bool down() const noexcept { return down_; }
  /// Polls that hit a dead PoP and got no response at all.
  std::uint64_t polls_dropped() const noexcept { return polls_dropped_; }

 private:
  struct Waiter {
    std::int64_t last_seq;
    PollCallback cb;
  };

  void respond(std::int64_t client_last_seq, const PollCallback& cb);
  void start_fetch(std::uint32_t attempt = 1);

  sim::Simulator& sim_;
  DatacenterId site_;
  OriginFetchFn fetch_;
  CpuMeter cpu_;

  std::vector<media::Chunk> cache_;  // ordered by seq
  std::unordered_map<std::uint64_t, TimeUs> chunk_available_;
  std::int64_t cached_seq_ = -1;
  std::int64_t known_latest_seq_ = -1;
  bool fetching_ = false;
  bool down_ = false;
  std::vector<Waiter> waiters_;
  std::uint64_t polls_ = 0;
  std::uint64_t polls_dropped_ = 0;
  std::uint64_t fetches_ = 0;
  std::uint64_t fetch_failures_ = 0;
  std::uint32_t fetch_failure_streak_ = 0;
  std::uint64_t cache_flushes_ = 0;
  std::uint64_t egress_bytes_ = 0;
  std::uint64_t capacity_ = 0;  // 0 = unbounded
  std::uint64_t attached_ = 0;
  std::uint64_t peak_attached_ = 0;
  std::uint64_t detach_underflows_ = 0;
  std::unique_ptr<sim::PollWheel> wheel_;
  DurationUs retry_backoff_ = 250 * time::kMillisecond;
  std::uint32_t max_attempts_ = 4;
};

}  // namespace livesim::cdn

#endif  // LIVESIM_CDN_SERVERS_H
