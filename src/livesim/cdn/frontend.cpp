#include "livesim/cdn/frontend.h"

#include "livesim/protocol/wire.h"

namespace livesim::cdn {

std::string TokenAuthority::issue(std::uint64_t broadcast_id) const {
  protocol::ByteWriter w;
  w.u64(broadcast_id);
  const security::Digest mac = security::hmac_sha256(secret_, w.data());
  // A truncated tag (13 bytes, like Periscope's 13-char tokens) is plenty
  // for a capability token.
  return security::to_hex(mac).substr(0, 26);
}

bool TokenAuthority::validate(std::uint64_t broadcast_id,
                              const std::string& token) const {
  // Constant-time comparison over the expected token.
  const std::string expected = issue(broadcast_id);
  if (token.size() != expected.size()) return false;
  unsigned char diff = 0;
  for (std::size_t i = 0; i < token.size(); ++i)
    diff |= static_cast<unsigned char>(token[i] ^ expected[i]);
  return diff == 0;
}

RtmpFrontend::RtmpFrontend(const TokenAuthority& authority,
                           std::uint64_t broadcast_id, FrameSink sink,
                           std::optional<security::Digest> expected_root,
                           std::uint32_t sign_every)
    : authority_(authority), broadcast_id_(broadcast_id),
      sink_(std::move(sink)) {
  if (expected_root) {
    verifier_ = std::make_unique<security::StreamVerifier>(*expected_root,
                                                           sign_every);
  }
}

RtmpFrontend::Verdict RtmpFrontend::consume(
    std::span<const std::uint8_t> wire) {
  if (state_ == State::kClosed) return Verdict::kRejected;

  const auto msg = protocol::decode_message(wire);
  if (!msg) {
    state_ = State::kClosed;
    return Verdict::kRejected;
  }

  switch (state_) {
    case State::kAwaitConnect: {
      if (msg->type != protocol::RtmpMessageType::kConnect) {
        state_ = State::kClosed;
        return Verdict::kRejected;  // frames before connect
      }
      const auto connect = protocol::decode_connect(msg->body);
      if (!connect ||
          !authority_.validate(broadcast_id_, connect->broadcast_token)) {
        state_ = State::kClosed;
        return Verdict::kRejected;
      }
      state_ = State::kStreaming;
      return Verdict::kAcknowledged;
    }
    case State::kStreaming: {
      if (msg->type == protocol::RtmpMessageType::kEndOfStream) {
        state_ = State::kClosed;
        return Verdict::kEndOfStream;
      }
      if (msg->type != protocol::RtmpMessageType::kVideoFrame) {
        state_ = State::kClosed;
        return Verdict::kRejected;
      }
      const auto v = protocol::decode_video(msg->body);
      if (!v) {
        state_ = State::kClosed;
        return Verdict::kRejected;
      }
      media::VideoFrame frame;
      frame.seq = v->frame_seq;
      frame.capture_ts = v->capture_ts_us;
      frame.keyframe = v->keyframe();
      frame.size_bytes = static_cast<std::uint32_t>(v->payload.size());
      frame.payload = v->payload;
      frame.signature = v->signature;

      if (verifier_ != nullptr &&
          verifier_->process(frame) ==
              security::StreamVerifier::Result::kTampered) {
        state_ = State::kClosed;
        return Verdict::kTampered;
      }
      ++frames_;
      if (sink_) sink_(frame);
      return Verdict::kAccepted;
    }
    case State::kClosed:
      break;
  }
  return Verdict::kRejected;
}

}  // namespace livesim::cdn
