// Wowza -> Fastly chunk transfer model (Figure 15).
//
// When the first HLS poll after a chunklist expiry hits an edge, the edge
// pulls the fresh chunk from the ingest site. The paper found a sharp
// (>0.25 s) gap between co-located ingest/edge pairs and everything else,
// and inferred a gateway design: the ingest pushes to its co-located edge
// first, which then coordinates distribution to the other edges. We model
// exactly that structure.
#ifndef LIVESIM_CDN_W2F_H
#define LIVESIM_CDN_W2F_H

#include "livesim/geo/datacenters.h"
#include "livesim/geo/geo.h"
#include "livesim/util/rng.h"
#include "livesim/util/time.h"

namespace livesim::cdn {

class W2FModel {
 public:
  struct Params {
    DurationUs handshake = 60 * time::kMillisecond;  // origin request setup
    DurationUs gateway_coordination = 250 * time::kMillisecond;
    double interdc_bandwidth_bps = 500e6;            // chunk transfer rate
    double jitter_fraction = 0.20;
  };

  W2FModel(const geo::DatacenterCatalog& catalog, geo::LatencyModel latency,
           Params params)
      : catalog_(catalog), latency_(latency), params_(params) {}

  W2FModel(const geo::DatacenterCatalog& catalog, geo::LatencyModel latency)
      : W2FModel(catalog, latency, Params{}) {}

  /// The gateway edge for an ingest site: its co-located edge if one
  /// exists (6 of 8 sites), else the nearest edge (the Sao Paulo case).
  const geo::Datacenter& gateway_for(DatacenterId ingest) const;

  /// Samples the chunk-ready-at-ingest -> chunk-cached-at-edge delay for
  /// one transfer of `chunk_bytes` to edge `edge`.
  DurationUs sample_transfer(DatacenterId ingest, DatacenterId edge,
                             std::uint64_t chunk_bytes, Rng& rng) const;

  const Params& params() const noexcept { return params_; }

 private:
  const geo::DatacenterCatalog& catalog_;
  geo::LatencyModel latency_;
  Params params_;
};

}  // namespace livesim::cdn

#endif  // LIVESIM_CDN_W2F_H
