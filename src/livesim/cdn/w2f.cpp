#include "livesim/cdn/w2f.h"

#include <cmath>

namespace livesim::cdn {

const geo::Datacenter& W2FModel::gateway_for(DatacenterId ingest) const {
  if (const auto* co = catalog_.colocated_edge(ingest); co != nullptr)
    return *co;
  return catalog_.nearest(ingest, geo::CdnRole::kEdge);
}

DurationUs W2FModel::sample_transfer(DatacenterId ingest, DatacenterId edge,
                                     std::uint64_t chunk_bytes,
                                     Rng& rng) const {
  const geo::Datacenter& gw = gateway_for(ingest);

  const double ingest_gw_km = catalog_.distance_km(ingest, gw.id);
  // Request/response to the origin: one RTT plus transfer.
  DurationUs total = params_.handshake +
                     2 * latency_.sample_delay(ingest_gw_km, rng);
  const double transfer_s =
      static_cast<double>(chunk_bytes) * 8.0 / params_.interdc_bandwidth_bps;
  total += time::from_seconds(transfer_s);

  if (edge != gw.id) {
    // Non-gateway edges wait for the gateway's coordination pass, then the
    // inter-edge hop.
    const double gw_edge_km = catalog_.distance_km(gw.id, edge);
    total += params_.gateway_coordination +
             latency_.sample_delay(gw_edge_km, rng) +
             time::from_seconds(transfer_s);
  }

  const double jitter =
      1.0 + params_.jitter_fraction * std::abs(rng.normal(0.0, 1.0));
  return static_cast<DurationUs>(static_cast<double>(total) * jitter);
}

}  // namespace livesim::cdn
