// Server resource (CPU) model -- the scalability side of the paper's
// latency/scalability trade-off.
//
// Reproduces the mechanism behind Figure 14: RTMP pushes every ~40 ms
// frame to every viewer over its persistent connection, so server work
// scales with viewers x frame-rate; HLS serves a chunklist poll every few
// seconds per viewer plus amortized chunk assembly, so its per-viewer work
// is ~two orders of magnitude smaller. Costs are expressed as CPU-time per
// operation on a reference single-core server (the paper's laptop Wowza).
#ifndef LIVESIM_CDN_RESOURCE_MODEL_H
#define LIVESIM_CDN_RESOURCE_MODEL_H

#include <cstdint>

#include "livesim/util/time.h"

namespace livesim::cdn {

struct ResourceModel {
  // Per-operation CPU costs (microseconds of CPU time).
  double frame_push_us = 70.0;     // push one frame to one RTMP viewer
  double frame_ingest_us = 40.0;   // receive one frame from the broadcaster
  double poll_serve_us = 550.0;    // serve one HLS chunklist poll (HTTP)
  double chunk_build_us = 2500.0;  // assemble + register one chunk
  double chunk_serve_us = 300.0;   // serve one chunk download
  double baseline_percent = 2.0;   // idle daemon overhead

  /// Steady-state CPU % serving `viewers` RTMP viewers of one broadcast.
  double rtmp_cpu_percent(std::uint32_t viewers, double fps) const noexcept {
    const double work_us_per_s =
        fps * frame_ingest_us +
        static_cast<double>(viewers) * fps * frame_push_us;
    return baseline_percent + work_us_per_s / 1e4;  // 1e6 us == 100%
  }

  /// Steady-state CPU % serving `viewers` HLS viewers of one broadcast.
  double hls_cpu_percent(std::uint32_t viewers, double fps,
                         double poll_interval_s,
                         double chunk_duration_s) const noexcept {
    const double polls_per_s =
        poll_interval_s > 0 ? static_cast<double>(viewers) / poll_interval_s
                            : 0.0;
    const double chunks_per_s =
        chunk_duration_s > 0 ? 1.0 / chunk_duration_s : 0.0;
    const double work_us_per_s =
        fps * frame_ingest_us + chunks_per_s * chunk_build_us +
        polls_per_s * (poll_serve_us + chunk_serve_us * chunk_duration_s /
                                           (poll_interval_s > 0
                                                ? poll_interval_s
                                                : 1.0));
    return baseline_percent + work_us_per_s / 1e4;
  }
};

/// Event-level CPU accounting attached to a simulated server: the session
/// drivers call charge() per operation and read back utilization.
class CpuMeter {
 public:
  explicit CpuMeter(const ResourceModel& model) : model_(model) {}

  void charge_frame_push() noexcept { busy_us_ += model_.frame_push_us; }
  void charge_frame_ingest() noexcept { busy_us_ += model_.frame_ingest_us; }
  void charge_poll() noexcept { busy_us_ += model_.poll_serve_us; }
  void charge_chunk_build() noexcept { busy_us_ += model_.chunk_build_us; }
  void charge_chunk_serve() noexcept { busy_us_ += model_.chunk_serve_us; }

  /// Utilization over a wall window, in percent of one core.
  double percent_over(DurationUs window) const noexcept {
    if (window <= 0) return 0.0;
    return model_.baseline_percent +
           busy_us_ / static_cast<double>(window) * 100.0;
  }

  double busy_us() const noexcept { return busy_us_; }

 private:
  ResourceModel model_;
  double busy_us_ = 0.0;
};

}  // namespace livesim::cdn

#endif  // LIVESIM_CDN_RESOURCE_MODEL_H
