#include "livesim/cdn/servers.h"

#include <algorithm>

namespace livesim::cdn {

void IngestServer::on_frame(const media::VideoFrame& frame) {
  if (down_) {
    // Crashed server: the frame hit a dead socket and is gone.
    ++frames_dropped_;
    ++frame_drop_streak_;
    return;
  }
  frame_drop_streak_ = 0;
  ++frames_ingested_;
  cpu_.charge_frame_ingest();
  ingress_bytes_ += frame.size_bytes;
  const TimeUs now = sim_.now();
  for (const auto& sink : rtmp_subscribers_) {
    cpu_.charge_frame_push();
    egress_bytes_ += frame.size_bytes;
    sink(frame, now);
  }
  if (auto sealed = chunker_.push(frame, now)) emit_chunk(*sealed);
}

void IngestServer::on_end_of_stream() {
  if (down_) return;
  if (auto sealed = chunker_.flush(sim_.now())) emit_chunk(*sealed);
}

void IngestServer::emit_chunk(const media::Chunk& c) {
  cpu_.charge_chunk_build();
  if (chunk_listener_) chunk_listener_(c);
}

sim::PollWheel& EdgeServer::poll_wheel(DurationUs period,
                                       std::uint32_t buckets) {
  if (!wheel_) wheel_ = std::make_unique<sim::PollWheel>(sim_, period, buckets);
  return *wheel_;
}

void EdgeServer::on_expire_notice(std::uint64_t latest_seq) {
  if (static_cast<std::int64_t>(latest_seq) > known_latest_seq_)
    known_latest_seq_ = static_cast<std::int64_t>(latest_seq);
}

void EdgeServer::respond(std::int64_t client_last_seq,
                         const PollCallback& cb) {
  std::vector<media::Chunk> fresh;
  egress_bytes_ += 1200;  // the playlist response itself
  for (const auto& c : cache_) {
    if (static_cast<std::int64_t>(c.seq) > client_last_seq) {
      cpu_.charge_chunk_serve();
      egress_bytes_ += c.size_bytes;
      fresh.push_back(c);
    }
  }
  cb(sim_.now(), std::move(fresh));
}

void EdgeServer::on_poll(std::int64_t client_last_seq, PollCallback cb) {
  if (down_) {
    // Dead PoP: the request vanishes. No response ever fires; the client
    // times out, which is what drives edge-to-edge failover detection.
    ++polls_dropped_;
    return;
  }
  ++polls_;
  cpu_.charge_poll();
  if (cached_seq_ >= known_latest_seq_) {
    respond(client_last_seq, cb);
    return;
  }
  // Stale: this poll (or an earlier one) triggers the origin fetch; the
  // poller waits for the fresh content rather than getting stale data.
  waiters_.push_back(Waiter{client_last_seq, std::move(cb)});
  if (!fetching_) start_fetch();
}

void EdgeServer::start_fetch(std::uint32_t attempt) {
  fetching_ = true;
  ++fetches_;
  fetch_([this, attempt](FetchResult result) {
    if (down_) {
      // The PoP died while the pull was in flight; the response lands on
      // a dead box. Waiters were already abandoned by set_down().
      fetching_ = false;
      return;
    }
    if (!result) {
      ++fetch_failures_;
      ++fetch_failure_streak_;
      if (attempt < max_attempts_) {
        // Retry with linear backoff; waiters keep waiting.
        sim_.schedule_in(retry_backoff_ * attempt,
                         [this, attempt] { start_fetch(attempt + 1); });
      } else {
        // Give up: serve waiters whatever is cached (possibly stale).
        fetching_ = false;
        auto waiters = std::move(waiters_);
        waiters_.clear();
        for (auto& w : waiters) respond(w.last_seq, w.cb);
      }
      return;
    }
    auto& fresh = *result;
    fetch_failure_streak_ = 0;  // the origin path works again
    const TimeUs now = sim_.now();
    for (auto& c : fresh) {
      if (static_cast<std::int64_t>(c.seq) > cached_seq_) {
        cache_.push_back(c);
        chunk_available_.emplace(c.seq, now);
        cached_seq_ = static_cast<std::int64_t>(c.seq);
      }
    }
    // Keep the cache a sliding window: edges don't hold the whole stream.
    constexpr std::size_t kWindow = 8;
    if (cache_.size() > kWindow)
      cache_.erase(cache_.begin(),
                   cache_.begin() + static_cast<std::ptrdiff_t>(
                                        cache_.size() - kWindow));
    if (cached_seq_ > known_latest_seq_) known_latest_seq_ = cached_seq_;
    fetching_ = false;

    auto waiters = std::move(waiters_);
    waiters_.clear();
    for (auto& w : waiters) respond(w.last_seq, w.cb);

    // New chunks may have been announced while the fetch was in flight.
    if (!waiters_.empty() && cached_seq_ < known_latest_seq_) start_fetch();
  });
}

}  // namespace livesim::cdn
