// Experiment drivers shared by the bench binaries.
//
// Each driver reproduces one of the paper's measurement methodologies:
//  * TraceSet       -- §4.3's passive crawl: per-broadcast frame/chunk
//                      arrival traces at the CDN (the input to §5-§6).
//  * polling_*      -- §5.2's trace-driven polling simulation (Figs 12-13).
//  * buffering_*    -- §6's trace-driven playback simulation (Figs 16-17).
//  * w2f_experiment -- §5.3's Wowza->Fastly transfer study (Fig 15).
//  * delay_breakdown_experiment -- §5.1's controlled sessions (Fig 11).
//
// Parallel execution & determinism: the trace-driven drivers shard their
// (independent) broadcasts across a worker pool (sim/parallel.h) and take
// a `threads` knob (1 = serial, 0 = all hardware threads). Results are
// guaranteed identical for the same seed at EVERY thread count:
//  * generate_traces pre-draws each broadcast's seeds from the master RNG
//    serially (the master stream advances a fixed 3 draws per broadcast),
//    so its output is byte-identical to the historical serial loop.
//  * polling/buffering derive one RNG substream per broadcast via
//    sim::substream_seed(seed, index), and shards merge in index order.
#ifndef LIVESIM_ANALYSIS_EXPERIMENTS_H
#define LIVESIM_ANALYSIS_EXPERIMENTS_H

#include <cstdint>
#include <vector>

#include "livesim/core/broadcast_session.h"
#include "livesim/geo/datacenters.h"
#include "livesim/stats/sampler.h"
#include "livesim/util/time.h"

namespace livesim::analysis {

/// One crawled broadcast: arrival times at the CDN.
struct BroadcastTrace {
  /// Frame arrivals at the ingest server; index = frame seq; media time of
  /// frame i is i * frame_interval.
  std::vector<TimeUs> frame_arrivals;
  DurationUs frame_interval = 40 * time::kMillisecond;

  struct ChunkRec {
    TimeUs completed_at_ingest = 0;
    DurationUs media_start = 0;
    DurationUs duration = 0;
    std::uint64_t bytes = 0;
  };
  std::vector<ChunkRec> chunks;
  bool bursty = false;
};

struct TraceSetConfig {
  int broadcasts = 2000;           // the paper crawled 16,013
  DurationUs broadcast_len = 2 * time::kMinute;
  double bursty_fraction = 0.10;   // uplinks with outage bursts
  double slow_start_fraction = 0.12;  // constrained ramp-up uplinks
  DurationUs chunk_target = 3 * time::kSecond;
  std::uint64_t seed = 1;
  unsigned threads = 1;            // worker threads; 0 = all hardware threads
};

/// Generates per-broadcast arrival traces by simulating the broadcaster
/// uplink + chunker (the part of the paper's pipeline their crawler saw).
std::vector<BroadcastTrace> generate_traces(const TraceSetConfig& config);

// --- §5.2: polling delay (Figures 12 & 13) ---

struct PollingStats {
  stats::Sampler per_broadcast_mean_s;  // Fig 12
  stats::Sampler per_broadcast_std_s;   // Fig 13
};

/// Simulates one HLS viewer polling every `interval` against each trace's
/// chunk arrival sequence (chunks become pollable w2f_offset after they
/// complete at the ingest).
PollingStats polling_experiment(const std::vector<BroadcastTrace>& traces,
                                DurationUs interval,
                                DurationUs w2f_offset,
                                std::uint64_t seed,
                                unsigned threads = 1);

// --- §6: client buffering (Figures 16 & 17) ---

struct BufferingStats {
  stats::Sampler stall_ratio;        // per broadcast
  stats::Sampler mean_delay_s;       // per broadcast
};

/// RTMP viewer: frames stream server->client over a stable last mile.
BufferingStats rtmp_buffering_experiment(
    const std::vector<BroadcastTrace>& traces, DurationUs pre_buffer,
    std::uint64_t seed, unsigned threads = 1);

/// HLS viewer: chunks become available w2f after completion, fetched by a
/// 2.8 s poll loop (the app's measured polling interval).
BufferingStats hls_buffering_experiment(
    const std::vector<BroadcastTrace>& traces, DurationUs pre_buffer,
    DurationUs poll_interval, std::uint64_t seed, unsigned threads = 1);

// --- §5.3: Wowza -> Fastly transfers (Figure 15) ---

struct W2FBucket {
  const char* label;
  double min_km, max_km;
  stats::Sampler delay_s;
};

/// Samples transfers for every ingest x edge pair, including the expiry
/// notice and the 0.1 s crawler first-poll offset, grouped by pair
/// distance as in Figure 15.
std::vector<W2FBucket> w2f_experiment(const geo::DatacenterCatalog& catalog,
                                      int samples_per_pair,
                                      std::uint64_t seed);

// --- §5.1: end-to-end breakdown (Figure 11) ---

struct BreakdownResult {
  core::DelayBreakdown rtmp;
  core::DelayBreakdown hls;
};

/// Runs `repetitions` controlled broadcasts (the paper averaged 10) and
/// merges their component measurements.
BreakdownResult delay_breakdown_experiment(int repetitions,
                                           std::uint64_t seed);

}  // namespace livesim::analysis

#endif  // LIVESIM_ANALYSIS_EXPERIMENTS_H
