#include "livesim/analysis/flash_crowd.h"

#include <algorithm>
#include <bit>
#include <map>
#include <vector>

#include "livesim/core/service.h"
#include "livesim/fault/scenario.h"
#include "livesim/sim/parallel.h"
#include "livesim/sim/simulator.h"
#include "livesim/util/rng.h"

namespace livesim::analysis {

namespace {

/// One channel's complete outcome: everything the merge folds, in
/// channel order.
struct ChannelOutcome {
  core::LivestreamService::CrowdDriveStats drive;
  std::uint64_t steered_joins = 0;
  std::uint64_t edge_failovers = 0;
  stats::Accumulator edge_failover_latency_s;
  std::uint64_t proactive_migrations = 0;
  std::uint64_t orphaned_viewers = 0;
  std::uint64_t edge_spills = 0;
  stats::Accumulator spill_distance_km;
  std::uint64_t overlay_assists = 0;
  std::uint64_t control_drains = 0;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> peak_loads;
  std::uint64_t events_processed = 0;
};

TimeUs resolve_blackout_at(const FlashCrowdConfig& config) {
  if (config.blackout_at != 0) return config.blackout_at;
  const auto& p = config.preset;
  const TimeUs spike_start = static_cast<TimeUs>(
      std::clamp(p.spike_at_frac, 0.0, 1.0) * static_cast<double>(p.horizon));
  const TimeUs spike_len =
      std::min(p.horizon - spike_start, time::from_seconds(p.spike_ramp_s));
  return spike_start + spike_len / 2;  // the middle of the ramp
}

ChannelOutcome run_channel(const geo::DatacenterCatalog& catalog,
                           const FlashCrowdConfig& config,
                           std::size_t channel,
                           const std::vector<workload::CrowdRecord>& records,
                           const fault::FaultScenario& scenario,
                           TimeUs blackout_at) {
  sim::Simulator sim;

  core::LivestreamService::Config scfg;
  scfg.rtmp_slot_cap = config.rtmp_slot_cap;
  scfg.session_defaults = config.session;
  scfg.seed = sim::substream_seed(config.service_seed, channel);

  core::LivestreamService service(sim, catalog, scfg);

  // Broadcaster location: its own substream (offset so it never aliases
  // the service seed above).
  Rng rng(sim::substream_seed(config.service_seed ^ 0x9e3779b97f4a7c15ULL,
                              channel));
  geo::UserGeoSampler sampler;
  const auto broadcast =
      service.start_broadcast(sampler.sample(rng), config.preset.horizon);

  core::LivestreamService::CrowdDriveConfig dcfg;
  dcfg.batch_window = config.batch_window;
  dcfg.seed = sim::substream_seed(config.crowd_seed ^ 0xbf58476d1ce4e5b9ULL,
                                  channel);
  const BroadcastId channels[] = {broadcast};
  const std::size_t drive = service.drive_crowd(channels, records, dcfg);

  if (!scenario.empty()) {
    sim.schedule_at(blackout_at, [&service, &scenario, &config] {
      service.inject_scenario(scenario, config.scenario_seed);
    });
  }
  sim.run();

  ChannelOutcome out;
  out.drive = service.crowd_stats(drive);
  out.steered_joins = service.steered_joins();
  const core::BroadcastSession* session = service.session(broadcast);
  out.edge_failovers = session->edge_failovers();
  out.edge_failover_latency_s = session->edge_failover_latency_s();
  out.proactive_migrations = session->proactive_migrations();
  out.orphaned_viewers = session->orphaned_viewers();
  out.edge_spills = session->edge_spills();
  out.spill_distance_km = session->spill_distance_km();
  out.overlay_assists = session->overlay_assists();
  out.control_drains = service.control_drains();
  out.peak_loads = session->edge_peak_loads();
  out.events_processed = sim.events_processed();
  return out;
}

}  // namespace

FlashCrowdStats flash_crowd_experiment(const geo::DatacenterCatalog& catalog,
                                       const FlashCrowdConfig& config) {
  const std::vector<workload::CrowdRecord> records =
      workload::generate_crowd(config.preset, config.crowd_seed,
                               config.threads);

  // Partition per channel, global record order preserved inside each
  // channel (generate_crowd's output is index-ordered at every thread
  // count, so this split never depends on scheduling). Each shard sees
  // its records re-ranked to channel 0: the shard's service hosts
  // exactly one broadcast.
  std::vector<std::vector<workload::CrowdRecord>> per_channel(
      std::max<std::uint32_t>(1, config.preset.channels));
  for (workload::CrowdRecord r : records) {
    const std::uint32_t c = std::min<std::uint32_t>(
        r.channel, static_cast<std::uint32_t>(per_channel.size() - 1));
    r.channel = 0;
    per_channel[c].push_back(r);
  }

  fault::FaultScenario scenario;
  TimeUs blackout_at = 0;
  if (config.blackout) {
    fault::RegionalBlackoutSpec spec;
    blackout_at = resolve_blackout_at(config);
    spec.at = 0;  // injected live AT blackout_at; times are relative
    spec.duration = config.blackout_duration;
    spec.center = config.blackout_center;
    spec.radius_km = config.blackout_radius_km;
    scenario.add(spec);
  }

  FlashCrowdStats stats;
  stats.viewers = records.size();

  const auto outcomes = sim::parallel_map<ChannelOutcome>(
      per_channel.size(), config.threads, [&](std::size_t c) {
        return run_channel(catalog, config, c, per_channel[c], scenario,
                          blackout_at);
      });

  // Merge + fingerprint in channel order.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
  };
  const auto mix_double = [&](double d) { mix(std::bit_cast<std::uint64_t>(d)); };

  std::map<std::uint64_t, std::uint64_t> peaks;  // site -> summed peak
  for (const ChannelOutcome& o : outcomes) {
    stats.joins += o.drive.joins;
    stats.late_joins += o.drive.late_joins;
    stats.leaves += o.drive.leaves;
    stats.batches += o.drive.batches;
    stats.admission_latency_s.merge(o.drive.admission_latency_s);
    stats.steered_joins += o.steered_joins;
    stats.edge_failovers += o.edge_failovers;
    stats.edge_failover_latency_s.merge(o.edge_failover_latency_s);
    stats.proactive_migrations += o.proactive_migrations;
    stats.orphaned_viewers += o.orphaned_viewers;
    stats.edge_spills += o.edge_spills;
    stats.spill_distance_km.merge(o.spill_distance_km);
    stats.overlay_assists += o.overlay_assists;
    stats.control_drains += o.control_drains;
    stats.events_processed += o.events_processed;
    for (const auto& [site, peak] : o.peak_loads) peaks[site] += peak;

    mix(o.drive.joins);
    mix(o.drive.late_joins);
    mix(o.drive.leaves);
    mix(o.drive.batches);
    mix(o.drive.admission_latency_s.count());
    mix_double(o.drive.admission_latency_s.mean());
    mix_double(o.drive.admission_latency_s.max());
    mix(o.steered_joins);
    mix(o.edge_failovers);
    mix(o.edge_failover_latency_s.count());
    mix_double(o.edge_failover_latency_s.mean());
    mix(o.proactive_migrations);
    mix(o.orphaned_viewers);
    mix(o.edge_spills);
    mix(o.overlay_assists);
    mix(o.control_drains);
    mix(o.events_processed);
    for (const auto& [site, peak] : o.peak_loads) {
      mix(site);
      mix(peak);
    }
  }
  for (const auto& [site, peak] : peaks)
    stats.peak_edge_load = std::max(stats.peak_edge_load, peak);
  stats.fingerprint = h;
  return stats;
}

}  // namespace livesim::analysis
