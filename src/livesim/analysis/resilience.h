// Resilience experiment: what viewers experience when the system breaks.
//
// The paper's trace-driven simulations (§5.2, §6) measure the sunny-day
// path. This driver replays the same crawled traces through a viewer that
// must survive injected faults (fault/fault.h): the ingest crashing
// mid-broadcast (the client times out and fails over from RTMP to HLS
// through the W2F edge path), last-mile partitions (polls time out and
// retry with capped exponential backoff), edge-cache flushes (origin
// re-pull penalty), and corrupted chunk downloads (detected and
// re-fetched).
//
// Determinism contract (same as experiments.h): broadcast i's entire
// random behaviour — viewer jitter AND its fault script — depends only on
// (seed, i), via two independent RNG substreams, so results are
// byte-identical at every thread count. A zero fault rate degenerates to
// a clean RTMP playback walk with zero failovers.
#ifndef LIVESIM_ANALYSIS_RESILIENCE_H
#define LIVESIM_ANALYSIS_RESILIENCE_H

#include <cstdint>
#include <utility>
#include <vector>

#include "livesim/analysis/experiments.h"
#include "livesim/client/adaptive.h"
#include "livesim/client/retry.h"
#include "livesim/fault/fault.h"
#include "livesim/fault/scenario.h"
#include "livesim/geo/datacenters.h"
#include "livesim/stats/accumulator.h"
#include "livesim/stats/sampler.h"
#include "livesim/util/time.h"

namespace livesim::analysis {

struct ResilienceConfig {
  /// HLS poll cadence after failover (the app's measured 2.8 s).
  DurationUs poll_interval = time::from_seconds(2.8);
  /// A poll with no answer by this deadline counts as failed.
  DurationUs poll_timeout = 1 * time::kSecond;
  /// How long a dead RTMP connection goes unnoticed before failover.
  DurationUs detect_timeout = 2 * time::kSecond;
  /// Adaptive playback buffer (rebuffer events come from its under-runs).
  client::AdaptivePlayback::Params playback{};
  /// Poll retry/backoff discipline (cap, jitter, give-up threshold).
  client::PollRetryState::Params retry{};
  /// Mean ingest->edge origin-pull latency for chunk availability.
  DurationUs w2f_offset = 300 * time::kMillisecond;
  /// Per-broadcast randomized fault script. horizon == 0 is replaced by
  /// each trace's media length. faults_per_minute == 0 disables faults.
  fault::RandomFaultParams faults{};
  std::uint64_t seed = 1;
  unsigned threads = 1;  // 0 = all hardware threads
};

/// Additive per-shard counters (merge order never matters).
struct ResilienceCounters {
  std::uint64_t viewers = 0;
  std::uint64_t faults_injected = 0;
  std::uint64_t ingest_crashes = 0;
  std::uint64_t failovers = 0;        // RTMP->HLS migrations completed
  std::uint64_t unrecoverable = 0;    // viewers whose retries exhausted
  std::uint64_t chunk_refetches = 0;  // corruption-triggered re-fetches

  void merge(const ResilienceCounters& o) noexcept {
    viewers += o.viewers;
    faults_injected += o.faults_injected;
    ingest_crashes += o.ingest_crashes;
    failovers += o.failovers;
    unrecoverable += o.unrecoverable;
    chunk_refetches += o.chunk_refetches;
  }
};

struct ResilienceStats {
  /// Per viewer: stalled + never-delivered media over the broadcast's
  /// total media (so an abandoned viewer scores the missing tail too).
  stats::Sampler stall_ratio;
  /// Per viewer: playback under-run (rebuffer) events.
  stats::Sampler rebuffer_count;
  /// Per failover: ingest crash -> first HLS chunk on screen, seconds.
  stats::Sampler failover_latency_s;
  ResilienceCounters counters;
};

/// Replays each trace through one fault-exposed viewer. Deterministic in
/// (config.seed) at every thread count.
ResilienceStats resilience_experiment(
    const std::vector<BroadcastTrace>& traces, const ResilienceConfig& config);

// ---------------------------------------------------------------------
// Regional-outage experiment: a correlated blackout hits every edge PoP
// within a radius, and the attached HLS viewers must detect the silent
// edge (failed poll + detect timeout), re-anycast to the nearest edge
// still alive, and re-fill their pipeline through a cold cache — the
// second pipeline flush. Viewers with no live edge left are orphaned and
// score the entire missing tail as stall.

struct RegionalOutageConfig {
  /// Blackout geometry (fault::RegionalBlackoutSpec semantics: the
  /// nearest edge is always dark, radius 0 kills exactly one PoP).
  geo::GeoPoint center{50.11, 8.68};  // Frankfurt
  double radius_km = 0.0;
  TimeUs outage_at = 30 * time::kSecond;
  DurationUs outage_duration = 30 * time::kSecond;

  /// HLS viewers sampled per broadcast (global user distribution).
  std::uint32_t viewers_per_broadcast = 4;
  DurationUs poll_interval = time::from_seconds(2.8);
  /// Silent-edge detection: first dead poll -> re-anycast decision.
  DurationUs detect_timeout = 2 * time::kSecond;
  /// Mean ingest->edge pull latency; also the cold-cache penalty the
  /// first post-failover poll pays at the new edge.
  DurationUs w2f_offset = 300 * time::kMillisecond;
  client::AdaptivePlayback::Params playback{};
  std::uint64_t seed = 1;
  unsigned threads = 1;  // 0 = all hardware threads
};

/// Additive per-shard counters (merge order never matters).
struct RegionalOutageCounters {
  std::uint64_t viewers = 0;
  /// Viewers whose attached edge went dark under them mid-polling.
  std::uint64_t affected = 0;
  /// Affected viewers successfully re-anycast to a live edge.
  std::uint64_t failovers = 0;
  /// Affected viewers with no live edge left (footprint-wide blackout).
  std::uint64_t orphaned = 0;

  void merge(const RegionalOutageCounters& o) noexcept {
    viewers += o.viewers;
    affected += o.affected;
    failovers += o.failovers;
    orphaned += o.orphaned;
  }
};

struct RegionalOutageStats {
  /// Per viewer: stalled + never-delivered media over total media.
  stats::Sampler stall_ratio;
  /// Per failover: edge death -> first chunk on screen via the new edge
  /// (detection + re-anycast + cold fetch + download), seconds.
  stats::Sampler failover_latency_s;
  RegionalOutageCounters counters;
  /// Edge sites the blackout darkened (from the scenario, not merged).
  std::size_t dark_edges = 0;
};

/// Replays each trace through `viewers_per_broadcast` HLS viewers under
/// one shared regional blackout. Deterministic in (config.seed) at every
/// thread count: each trace draws from its own substream, and the dark
/// set is computed once from (catalog, center, radius).
RegionalOutageStats regional_resilience_experiment(
    const std::vector<BroadcastTrace>& traces,
    const geo::DatacenterCatalog& catalog, const RegionalOutageConfig& config);

// ---------------------------------------------------------------------
// Capacity-aware spill experiment: the same regional blackout, but each
// edge PoP has a finite concurrent-viewer capacity. Failed-over viewers
// re-anycast to the nearest live edge with a free slot among the
// `spill_k` nearest, overflowing ring by ring; a viewer is orphaned only
// when every candidate is dark or full. Capacity gates FAILOVER
// admissions only — the initial anycast join is load-blind (IP anycast
// does not know occupancy) but still counts toward an edge's load, so a
// popular edge can refuse spill traffic from day one.
//
// Determinism: a shared load ledger would make naive per-viewer
// parallelism racy, so the driver runs in phases — (A) a parallel
// pre-walk that replays each viewer's RNG draws in exactly the order
// regional_resilience_experiment makes them and walks to the re-anycast
// decision point; (B) a SERIAL admission pass over affected viewers in
// (decision time, trace, viewer) order against the ledger; (C) a
// parallel resumption of the walks (no RNG is drawn after the decision);
// (D) a serial emission of samples in canonical (trace, viewer) order.
// Results are byte-identical at every thread count, and with
// edge_capacity == 0 they reproduce regional_resilience_experiment's
// samplers and counters bit for bit.

struct CapacitySpillConfig {
  /// Blackout geometry, viewer population, cadences, seed, threads —
  /// identical semantics to the regional-outage experiment.
  RegionalOutageConfig base{};
  /// Concurrent viewers one edge will ADMIT on failover. 0 = unbounded,
  /// which degenerates to regional_resilience_experiment bit for bit.
  std::uint64_t edge_capacity = 0;
  /// Failover candidates = the spill_k nearest live edges. 0 = the
  /// entire footprint.
  std::uint32_t spill_k = 0;
};

struct CapacitySpillStats {
  /// Per viewer, canonical (trace, viewer) order: stalled plus
  /// never-delivered media over total media.
  stats::Sampler stall_ratio;
  /// Per completed failover: edge death -> first chunk via the admitted
  /// edge, seconds.
  stats::Sampler failover_latency_s;
  RegionalOutageCounters counters;
  std::size_t dark_edges = 0;

  /// Failover admissions that overflowed past a live-but-full edge.
  std::uint64_t edge_spills = 0;
  /// Extra kilometres the spilled viewer travels past its nearest live
  /// edge (0 km when the tied co-located site absorbed it).
  stats::Accumulator spill_overshoot_km;
  /// Orphans that saw at least one live candidate — i.e. orphaned by
  /// capacity (or a too-small spill_k), not by a footprint-wide blackout.
  std::uint64_t capacity_orphans = 0;
  /// Per edge site id: peak concurrent load (anycast joins + admitted
  /// spill), sorted by site id. The hotspot pile-up ledger.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> edge_peak_loads;
};

/// Replays each trace through `base.viewers_per_broadcast` HLS viewers
/// under one shared regional blackout with per-edge capacity.
/// Deterministic in (base.seed) at every thread count.
CapacitySpillStats capacity_spill_experiment(
    const std::vector<BroadcastTrace>& traces,
    const geo::DatacenterCatalog& catalog, const CapacitySpillConfig& config);

}  // namespace livesim::analysis

#endif  // LIVESIM_ANALYSIS_RESILIENCE_H
