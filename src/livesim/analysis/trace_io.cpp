#include "livesim/analysis/trace_io.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace livesim::analysis {

void save_traces(const std::vector<BroadcastTrace>& traces,
                 std::ostream& out) {
  out << "# livesim trace set v1: " << traces.size() << " broadcasts\n";
  for (const auto& t : traces) {
    out << "B " << t.frame_interval << ' ' << (t.bursty ? 1 : 0) << ' '
        << t.frame_arrivals.size() << ' ' << t.chunks.size() << '\n';
    for (std::size_t i = 0; i < t.frame_arrivals.size(); ++i) {
      out << (i % 8 == 0 ? "F" : "") << ' ' << t.frame_arrivals[i];
      if (i % 8 == 7 || i + 1 == t.frame_arrivals.size()) out << '\n';
    }
    for (const auto& c : t.chunks) {
      out << "C " << c.completed_at_ingest << ' ' << c.media_start << ' '
          << c.duration << ' ' << c.bytes << '\n';
    }
  }
  if (!out) throw std::runtime_error("save_traces: write failed");
}

void save_traces(const std::vector<BroadcastTrace>& traces,
                 const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_traces: cannot open " + path);
  save_traces(traces, out);
}

std::optional<std::vector<BroadcastTrace>> load_traces(std::istream& in) {
  std::vector<BroadcastTrace> traces;
  std::string line;
  BroadcastTrace* current = nullptr;
  std::size_t expected_frames = 0, expected_chunks = 0;

  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    char tag = 0;
    ls >> tag;
    if (tag == 'B') {
      if (current != nullptr &&
          (current->frame_arrivals.size() != expected_frames ||
           current->chunks.size() != expected_chunks))
        return std::nullopt;
      traces.emplace_back();
      current = &traces.back();
      int bursty = 0;
      ls >> current->frame_interval >> bursty >> expected_frames >>
          expected_chunks;
      if (ls.fail() || current->frame_interval <= 0) return std::nullopt;
      current->bursty = bursty != 0;
      current->frame_arrivals.reserve(expected_frames);
    } else if (tag == 'F') {
      if (current == nullptr) return std::nullopt;
      TimeUs v;
      while (ls >> v) current->frame_arrivals.push_back(v);
      if (current->frame_arrivals.size() > expected_frames)
        return std::nullopt;
    } else if (tag == 'C') {
      if (current == nullptr) return std::nullopt;
      BroadcastTrace::ChunkRec c;
      ls >> c.completed_at_ingest >> c.media_start >> c.duration >> c.bytes;
      if (ls.fail()) return std::nullopt;
      current->chunks.push_back(c);
      if (current->chunks.size() > expected_chunks) return std::nullopt;
    } else {
      return std::nullopt;
    }
  }
  if (current != nullptr &&
      (current->frame_arrivals.size() != expected_frames ||
       current->chunks.size() != expected_chunks))
    return std::nullopt;
  return traces;
}

std::optional<std::vector<BroadcastTrace>> load_traces(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  return load_traces(in);
}

}  // namespace livesim::analysis
