#include "livesim/analysis/control_steering.h"

#include <optional>

#include "livesim/analysis/spill_detail.h"

namespace livesim::analysis {

ControlSteeringStats control_steering_experiment(
    const std::vector<BroadcastTrace>& traces,
    const geo::DatacenterCatalog& catalog,
    const ControlSteeringConfig& config) {
  const RegionalOutageConfig& base = config.spill.base;
  ControlSteeringStats out;

  // The steer instant is pure scrape arithmetic — no engine needs to
  // spin for it. The monitor's ticks land at k * scrape_interval; the
  // first tick STRICTLY after the outage is the first scrape that can
  // see the dark edges (a tick at the outage instant races the blackout;
  // we conservatively let the blackout win). steer_latency later the
  // override is routing-visible.
  std::optional<TimeUs> steer_at;
  if (config.control.enabled && config.control.scrape_interval > 0) {
    const TimeUs tick =
        (base.outage_at / config.control.scrape_interval + 1) *
        config.control.scrape_interval;
    out.steer_published_at = tick + config.control.steer_latency;
    out.proactive = true;
    steer_at = out.steer_published_at;
  }

  std::vector<detail::SpillPlan> plans;
  out.spill =
      detail::run_capacity_spill(traces, catalog, config.spill, steer_at,
                                 &plans);

  // Detection-time distributions, canonical (trace, viewer) order. The
  // reactive instant is reconstructed from the recorded first dark poll,
  // so one run yields both distributions over the same viewers.
  for (const detail::SpillPlan& p : plans) {
    if (!p.affected) continue;
    const TimeUs reactive_t = p.first_dark_poll + base.detect_timeout;
    out.reactive_detect_s.add(time::to_seconds(reactive_t - base.outage_at));
    out.proactive_detect_s.add(
        time::to_seconds(p.decision_t - base.outage_at));
    if (p.decision_t < reactive_t) ++out.steered_early;
  }
  return out;
}

}  // namespace livesim::analysis
