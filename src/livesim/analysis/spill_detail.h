// Internal: the capacity-spill 4-phase driver, shared between
// capacity_spill_experiment (reactive baseline, PR 4) and
// control_steering_experiment (proactive steering overlay).
//
// The driver is the determinism-critical core: (A) a parallel pre-walk
// that replays each viewer's RNG draws in exactly the order
// regional_resilience_experiment makes them and walks to the re-anycast
// decision point; (B) a SERIAL admission pass in (decision time, trace,
// viewer) order against the shared load ledger; (C) a parallel
// resumption (no RNG after the decision); (D) serial sample emission in
// canonical (trace, viewer) order.
//
// Steering hooks in without touching a single RNG draw: after phase A
// the driver may clamp each affected viewer's decision instant to the
// published steer time — decision_t = clamp(steer_at, first_dark_poll,
// first_dark_poll + detect_timeout) — which models the anycast-map
// override landing before the client's own timeout. With no steer time
// the clamp is the identity (decision_t stays first_dark_poll +
// detect_timeout) and the driver is byte-identical to PR 4's.
//
// Not installed; include via the source tree only.
#ifndef LIVESIM_ANALYSIS_SPILL_DETAIL_H
#define LIVESIM_ANALYSIS_SPILL_DETAIL_H

#include <optional>
#include <vector>

#include "livesim/analysis/resilience.h"
#include "livesim/geo/datacenters.h"
#include "livesim/util/time.h"

namespace livesim::analysis::detail {

// Same last-mile HLS download constant as the §6 buffering experiments.
inline constexpr DurationUs kHlsDownload = 150 * time::kMillisecond;

// Everything one capacity-spill viewer needs, split across the phases.
// All RNG draws live in phase A; the walk itself is deterministic given
// (avail, poll0, the admission outcome), which is what makes the serial
// admission pass legal without replaying randomness.
struct SpillPlan {
  // phase A: draws + pre-walk
  bool has_media = false;  // trace had media; the viewer exists at all
  bool dark_member = false;
  bool affected = false;       // pre-walk reached the re-anycast decision
  TimeUs first_dark_poll = 0;  // first poll that vanished into the dark PoP
  TimeUs decision_t = 0;       // instant the re-anycast decision lands
  std::uint64_t home = 0;      // load-blind anycast attachment
  geo::GeoPoint loc{};
  std::vector<TimeUs> avail;
  TimeUs poll0 = 0;
  // phase B: admission outcome
  bool orphaned = false;
  // phase A (unaffected) or C (affected): results
  double stall = 0.0;
  bool has_latency = false;
  double latency_s = 0.0;
};

// The poll walk of simulate_regional_viewer, replayed from stored draws.
// Probe mode (resolved == false): stops at the re-anycast decision
// point, records first_dark_poll and the reactive decision_t, returns
// true. Resolve mode: applies the admission outcome — orphaned -> break
// (the missing tail scores as stall), admitted -> migrate at
// plan.decision_t with the cold-cache penalty.
bool walk_spill_viewer(const BroadcastTrace& trace,
                       const RegionalOutageConfig& cfg, bool resolved,
                       SpillPlan& plan);

/// The shared 4-phase driver. `steer_at`, when set, is the engine time
/// the anycast-map override became routing-visible; every affected
/// viewer's decision instant is clamped into [first_dark_poll,
/// first_dark_poll + detect_timeout] around it (proactive steering can
/// only help, never hurt — the client timeout is the fallback).
/// `plans_out`, when non-null, receives the per-viewer plans in
/// canonical (trace, viewer) order for detection-time post-processing.
CapacitySpillStats run_capacity_spill(
    const std::vector<BroadcastTrace>& traces,
    const geo::DatacenterCatalog& catalog, const CapacitySpillConfig& config,
    std::optional<TimeUs> steer_at, std::vector<SpillPlan>* plans_out);

}  // namespace livesim::analysis::detail

#endif  // LIVESIM_ANALYSIS_SPILL_DETAIL_H
