// Control-steering experiment: reactive spill vs proactive drain.
//
// The capacity-spill experiment (PR 4) models the platform the paper
// measured: a dead edge is discovered one viewer at a time, each paying
// a failed poll plus the full detect window. This experiment replays the
// identical workload (same traces, same blackout, same RNG draws) with
// the control plane's scrape/steer model layered on top: the
// HealthMonitor's first scrape tick strictly after the outage sees the
// dark edges, and steer_latency later the anycast-map override is
// routing-visible — from that instant an affected viewer's next poll
// re-anycasts immediately instead of burning its detect window.
//
// The proactive decision instant is clamped to [first dark poll, first
// dark poll + detect_timeout]: the client timeout stays as the fallback,
// so proactive detection can never be slower than reactive — the
// dominance contract bench_control_steering pins per grid cell.
//
// With control.enabled == false the experiment IS
// capacity_spill_experiment: same driver, no clamp, no extra RNG — the
// spill stats and both fingerprints reproduce PR 4 byte for byte.
#ifndef LIVESIM_ANALYSIS_CONTROL_STEERING_H
#define LIVESIM_ANALYSIS_CONTROL_STEERING_H

#include <vector>

#include "livesim/analysis/resilience.h"
#include "livesim/control/control.h"
#include "livesim/geo/datacenters.h"
#include "livesim/stats/sampler.h"
#include "livesim/util/time.h"

namespace livesim::analysis {

struct ControlSteeringConfig {
  /// The reactive workload: blackout geometry, viewers, capacity, seed,
  /// threads. Identical semantics to capacity_spill_experiment.
  CapacitySpillConfig spill{};
  /// The scrape/steer model. enabled == false degenerates to the
  /// reactive experiment bit for bit.
  control::ControlPlaneConfig control{};
};

struct ControlSteeringStats {
  /// The spill outcome under the chosen detection model (reactive when
  /// the control plane is disabled, steered when enabled).
  CapacitySpillStats spill;

  /// Per affected viewer, canonical (trace, viewer) order: outage start
  /// -> re-anycast decision, seconds. `reactive` is what the client
  /// timeout alone would pay; `proactive` is what the steered system
  /// pays (equal to reactive when the control plane is disabled).
  stats::Sampler reactive_detect_s;
  stats::Sampler proactive_detect_s;

  /// Engine time the anycast override became routing-visible (first
  /// scrape tick strictly after the outage + steer_latency); 0 when the
  /// control plane is disabled.
  TimeUs steer_published_at = 0;
  /// Whether the steered detection model was applied.
  bool proactive = false;
  /// Affected viewers whose decision beat their own client timeout.
  std::uint64_t steered_early = 0;
};

/// Replays each trace through the capacity-spill workload, with the
/// control plane's scrape/steer detection model layered on when
/// config.control.enabled. Deterministic in (spill.base.seed) at every
/// thread count.
ControlSteeringStats control_steering_experiment(
    const std::vector<BroadcastTrace>& traces,
    const geo::DatacenterCatalog& catalog, const ControlSteeringConfig& config);

}  // namespace livesim::analysis

#endif  // LIVESIM_ANALYSIS_CONTROL_STEERING_H
