// Flash-crowd experiment: the first run that exercises engine, poll
// wheels, capacity spill, control plane, and the crowd generator in one
// workload.
//
// A Twitch-calibrated crowd (workload::generate_crowd) is driven
// through LivestreamService end to end: every channel becomes a live
// broadcast, every CrowdRecord a real viewer join (batched through
// sim::BatchTimeline -- one engine event per admission window) and a
// real early leave (the poll-wheel detach path). Mid-storm, a regional
// blackout darkens part of the edge footprint, so the join storm and
// the failover herd collide: wheel re-attachment cost, spill pile-ups,
// and proactive-vs-reactive migration are all measured under storm
// pressure.
//
// Sharding/determinism: channels are independent broadcasts, so the
// experiment shards BY CHANNEL -- each shard owns a private Simulator +
// LivestreamService seeded from substream_seed(service_seed, channel),
// replays exactly that channel's records (in global record order), and
// expands the same blackout scenario against the shared catalog. Shard
// results merge in channel order, so the stats and the fingerprint are
// byte-identical at every thread count.
#ifndef LIVESIM_ANALYSIS_FLASH_CROWD_H
#define LIVESIM_ANALYSIS_FLASH_CROWD_H

#include <cstdint>

#include "livesim/core/broadcast_session.h"
#include "livesim/geo/datacenters.h"
#include "livesim/stats/accumulator.h"
#include "livesim/util/time.h"
#include "livesim/workload/crowd.h"

namespace livesim::analysis {

struct FlashCrowdConfig {
  /// The crowd shape. Bench/CI scale: >= 100k viewers over a shortened
  /// horizon; tests shrink viewers, never the structure.
  workload::CrowdPreset preset = workload::CrowdPreset::twitch_flash_crowd();
  std::uint64_t crowd_seed = 2016;
  /// Per-channel service/session substream root.
  std::uint64_t service_seed = 7;
  /// Join-storm admission window (CrowdDriveConfig::batch_window).
  DurationUs batch_window = 500 * time::kMillisecond;
  /// RTMP slots per channel. 0 (default): the whole storm rides the HLS
  /// poll wheels -- the fast path this experiment is about.
  std::uint32_t rtmp_slot_cap = 0;
  /// Session knobs applied to every channel (capacity, spill rings,
  /// control plane, wheel geometry). broadcast_len is overridden with
  /// the preset horizon.
  core::SessionConfig session{};

  /// Mid-storm regional blackout. blackout_at == 0 resolves to the
  /// middle of the spike ramp (spike_at + ramp/2): the worst instant.
  bool blackout = true;
  geo::GeoPoint blackout_center{50.11, 8.68};  // Frankfurt
  double blackout_radius_km = 1200.0;
  TimeUs blackout_at = 0;
  DurationUs blackout_duration = 20 * time::kSecond;
  std::uint64_t scenario_seed = 99;

  unsigned threads = 1;
};

struct FlashCrowdStats {
  // Crowd consumption (summed CrowdDriveStats).
  std::uint64_t viewers = 0;  // records generated
  std::uint64_t joins = 0;
  std::uint64_t late_joins = 0;
  std::uint64_t leaves = 0;
  std::uint64_t batches = 0;
  stats::Accumulator admission_latency_s;  // max < batch_window: the pin
  std::uint64_t steered_joins = 0;

  // Storm-pressure resilience (summed session ledgers, channel order).
  std::uint64_t edge_failovers = 0;  // wheel re-attachments forced
  stats::Accumulator edge_failover_latency_s;
  std::uint64_t proactive_migrations = 0;
  std::uint64_t orphaned_viewers = 0;
  std::uint64_t edge_spills = 0;
  stats::Accumulator spill_distance_km;
  std::uint64_t overlay_assists = 0;
  std::uint64_t control_drains = 0;

  /// Hottest edge site: max over sites of the summed per-channel peak
  /// attachments (the service-aggregation upper-bound semantics).
  std::uint64_t peak_edge_load = 0;
  /// Engine events across every shard: the batching win shows up here.
  std::uint64_t events_processed = 0;

  /// FNV-1a over every per-channel outcome in channel order: the
  /// threads {1,2,8} determinism pin BENCH_crowd.json tracks.
  std::uint64_t fingerprint = 0;
};

/// Runs the crowd through per-channel services against `catalog`.
/// Deterministic in (config) at every config.threads.
FlashCrowdStats flash_crowd_experiment(const geo::DatacenterCatalog& catalog,
                                       const FlashCrowdConfig& config);

}  // namespace livesim::analysis

#endif  // LIVESIM_ANALYSIS_FLASH_CROWD_H
