// Trace dataset serialization -- the repo's analogue of the paper's
// closing promise to "make parts of our measurement datasets available to
// the research community": broadcast trace sets round-trip through a
// simple line-oriented text format, so experiments can be re-run against
// saved (or externally produced) traces instead of regenerating them.
//
// Format (one record per line, '#' comments allowed):
//   B <frame_interval_us> <bursty:0|1> <n_frames> <n_chunks>
//   F <arrival_us> ...            (n_frames values, 8 per line)
//   C <completed_us> <media_start_us> <duration_us> <bytes>   (x n_chunks)
#ifndef LIVESIM_ANALYSIS_TRACE_IO_H
#define LIVESIM_ANALYSIS_TRACE_IO_H

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "livesim/analysis/experiments.h"

namespace livesim::analysis {

/// Serializes a trace set. Throws on I/O failure.
void save_traces(const std::vector<BroadcastTrace>& traces, std::ostream& out);
void save_traces(const std::vector<BroadcastTrace>& traces,
                 const std::string& path);

/// Parses a trace set; nullopt on any structural error.
std::optional<std::vector<BroadcastTrace>> load_traces(std::istream& in);
std::optional<std::vector<BroadcastTrace>> load_traces(
    const std::string& path);

}  // namespace livesim::analysis

#endif  // LIVESIM_ANALYSIS_TRACE_IO_H
