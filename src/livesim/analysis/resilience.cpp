#include "livesim/analysis/resilience.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <unordered_map>
#include <utility>

#include "livesim/analysis/spill_detail.h"
#include "livesim/fault/backoff.h"
#include "livesim/sim/parallel.h"

namespace livesim::analysis {

namespace {

// Same last-mile constants as the §6 buffering experiments. The HLS
// download constant lives in spill_detail.h, shared with the steering
// driver.
constexpr DurationUs kRtmpLastMile = 80 * time::kMillisecond;
constexpr DurationUs kHlsDownload = detail::kHlsDownload;

// Salt for the fault-script substream: broadcast i's fault schedule and
// its viewer jitter come from unrelated streams, so adding a draw to one
// model never perturbs the other.
constexpr std::uint64_t kFaultSeedSalt = 0xFA175EEDULL;

bool in_window(const std::vector<fault::FaultEvent>& events, TimeUs t) {
  for (const auto& e : events)
    if (t >= e.at && t < e.at + e.duration) return true;
  return false;
}

// If `t` falls inside a window, returns the window's end; else `t`.
TimeUs past_windows(const std::vector<fault::FaultEvent>& events, TimeUs t) {
  for (const auto& e : events)
    if (t >= e.at && t < e.at + e.duration) return e.at + e.duration;
  return t;
}

void simulate_viewer(const BroadcastTrace& trace, const ResilienceConfig& cfg,
                     std::size_t index, ResilienceStats& out) {
  Rng rng(sim::substream_seed(cfg.seed, index));

  const DurationUs total_media =
      static_cast<DurationUs>(trace.frame_arrivals.size()) *
      trace.frame_interval;
  if (total_media <= 0) return;

  fault::RandomFaultParams fparams = cfg.faults;
  if (fparams.horizon == 0) fparams.horizon = total_media;
  const auto faults = fault::FaultSchedule::randomized(
      fparams, sim::substream_seed(cfg.seed ^ kFaultSeedSalt, index));

  out.counters.viewers += 1;
  out.counters.faults_injected += faults.size();

  const auto crashes = faults.of_kind(fault::FaultKind::kIngestCrash);
  const auto degrades = faults.of_kind(fault::FaultKind::kLinkDegrade);
  const auto corruptions = faults.of_kind(fault::FaultKind::kChunkCorruption);
  const auto flushes = faults.of_kind(fault::FaultKind::kEdgeCacheFlush);
  out.counters.ingest_crashes += crashes.size();

  // Only the first crash matters to this viewer: after it they live on
  // HLS, where a (restarted) ingest only shows up as chunk availability.
  const bool crashed = !crashes.empty();
  const TimeUs crash_at =
      crashed ? crashes.front().at : std::numeric_limits<TimeUs>::max();
  const TimeUs crash_end =
      crashed ? crashes.front().at + crashes.front().duration : 0;

  client::AdaptivePlayback playback(cfg.playback);

  // --- Phase 1: RTMP push until the ingest dies (or the end) ---------
  DurationUs delivered_media = 0;  // high-water mark of media handed over
  for (std::size_t i = 0; i < trace.frame_arrivals.size(); ++i) {
    const TimeUs at_ingest = trace.frame_arrivals[i];
    if (at_ingest == 0 && i > 0) continue;  // lost/unsent upstream
    if (at_ingest >= crash_at) break;       // frame hit a dead server
    const DurationUs jitter =
        static_cast<DurationUs>(5000.0 * std::abs(rng.normal(0.0, 1.0)));
    // A last-mile partition stalls TCP; delivery resumes at recovery.
    const TimeUs recv =
        past_windows(degrades, at_ingest + kRtmpLastMile + jitter);
    const DurationUs media_offset =
        static_cast<DurationUs>(i) * trace.frame_interval;
    playback.on_arrival(recv, media_offset, trace.frame_interval);
    if (media_offset + trace.frame_interval > delivered_media)
      delivered_media = media_offset + trace.frame_interval;
  }

  bool gave_up = false;

  if (crashed) {
    // Chunk availability at the (cold) edge: sealed at the ingest --
    // stalled chunks seal when the ingest restarts -- then one W2F pull.
    const std::size_t n_chunks = trace.chunks.size();
    std::vector<TimeUs> avail(n_chunks);
    for (std::size_t j = 0; j < n_chunks; ++j) {
      TimeUs sealed = trace.chunks[j].completed_at_ingest;
      if (sealed >= crash_at && sealed < crash_end) sealed = crash_end;
      const auto w2f = static_cast<DurationUs>(
          static_cast<double>(cfg.w2f_offset) *
          (1.0 + 0.35 * std::abs(rng.normal(0.0, 1.0))));
      avail[j] = sealed + w2f;
    }

    // Skip the backlog the viewer already watched over RTMP.
    std::size_t cursor = 0;
    while (cursor < n_chunks &&
           trace.chunks[cursor].media_start + trace.chunks[cursor].duration <=
               delivered_media)
      ++cursor;

    client::PollRetryState retry(cfg.retry);

    // --- Phase 2: detect the dead connection, fail over to HLS -------
    // An attempt succeeds once the origin is reachable again AND a chunk
    // of new content has made it to the edge.
    bool migrated = false;
    TimeUs attempt = crash_at + cfg.detect_timeout;
    TimeUs now = attempt;
    while (!migrated) {
      const bool reachable = attempt >= crash_end && !in_window(degrades, attempt);
      if (reachable && cursor < n_chunks && avail[cursor] <= attempt) {
        migrated = true;
        out.counters.failovers += 1;
        out.failover_latency_s.add(
            time::to_seconds(attempt + kHlsDownload - crash_at));
        now = attempt;
        break;
      }
      const auto next = retry.on_failure(attempt + cfg.poll_timeout, rng);
      if (!next) {
        gave_up = true;
        out.counters.unrecoverable += 1;
        break;
      }
      attempt = *next;
    }

    // --- Phase 3: steady HLS polling with retry/backoff --------------
    if (migrated) {
      const fault::BackoffPolicy refetch_backoff(cfg.retry.backoff);
      const TimeUs wall_horizon =
          (n_chunks ? avail[n_chunks - 1] : now) + 8 * cfg.poll_interval;
      TimeUs prev_success = now;
      TimeUs poll_t = now;  // the migration attempt doubles as poll 0
      bool first_poll = true;
      while (cursor < n_chunks) {
        if (!first_poll && in_window(degrades, poll_t)) {
          const auto next = retry.on_failure(poll_t + cfg.poll_timeout, rng);
          if (!next) {
            gave_up = true;
            out.counters.unrecoverable += 1;
            break;
          }
          poll_t = *next;
          continue;
        }
        retry.on_success();

        // An edge flush since the last successful poll forces this poll
        // through a full origin re-pull.
        DurationUs extra = 0;
        for (const auto& f : flushes)
          if (f.at > prev_success && f.at <= poll_t) {
            extra = cfg.w2f_offset;
            break;
          }

        if (cursor < n_chunks && avail[cursor] <= poll_t) {
          TimeUs recv = poll_t + extra + kHlsDownload;
          if (in_window(corruptions, poll_t) &&
              rng.bernoulli(fparams.corruption_probability)) {
            // Integrity check fails: discard and re-fetch after a backoff
            // step (the re-fetch is assumed clean).
            out.counters.chunk_refetches += 1;
            recv = poll_t + refetch_backoff.delay(1, rng) + extra +
                   kHlsDownload;
          }
          while (cursor < n_chunks && avail[cursor] <= poll_t) {
            const auto& c = trace.chunks[cursor];
            playback.on_arrival(recv, c.media_start, c.duration);
            const DurationUs end = c.media_start + c.duration;
            if (end > delivered_media) delivered_media = end;
            ++cursor;
          }
        }
        prev_success = poll_t;
        first_poll = false;
        poll_t += cfg.poll_interval;
        if (poll_t > wall_horizon) break;  // nothing more will ever arrive
      }
    }
  }

  // --- Score ---------------------------------------------------------
  const DurationUs offered =
      std::min(playback.media_offered(), total_media);
  const double offered_stall =
      playback.stall_ratio() * static_cast<double>(playback.media_offered());
  const double missing = static_cast<double>(total_media - offered);
  out.stall_ratio.add(
      std::min(1.0, (offered_stall + missing) / static_cast<double>(total_media)));
  out.rebuffer_count.add(static_cast<double>(playback.rebuffer_events()));
  (void)gave_up;
}

}  // namespace

namespace {

// One HLS viewer under a regional blackout. `dark` is the shared outage
// membership (sorted edge-site ids); all randomness comes from `rng`, the
// caller's per-trace substream.
void simulate_regional_viewer(const BroadcastTrace& trace,
                              const geo::DatacenterCatalog& catalog,
                              const RegionalOutageConfig& cfg,
                              const std::vector<std::uint64_t>& dark,
                              geo::UserGeoSampler& sampler, Rng& rng,
                              RegionalOutageStats& out) {
  const DurationUs total_media =
      static_cast<DurationUs>(trace.frame_arrivals.size()) *
      trace.frame_interval;
  if (total_media <= 0) return;
  out.counters.viewers += 1;

  const geo::GeoPoint loc = sampler.sample(rng);
  std::uint64_t attachment =
      catalog.nearest(loc, geo::CdnRole::kEdge).id.value;
  const bool dark_member =
      std::binary_search(dark.begin(), dark.end(), attachment);

  // Chunk availability at the viewer's edge: sealed at the ingest plus a
  // jittered W2F pull (drawn per chunk so substreams stay per-viewer).
  const std::size_t n_chunks = trace.chunks.size();
  std::vector<TimeUs> avail(n_chunks);
  for (std::size_t j = 0; j < n_chunks; ++j) {
    const auto w2f = static_cast<DurationUs>(
        static_cast<double>(cfg.w2f_offset) *
        (1.0 + 0.35 * std::abs(rng.normal(0.0, 1.0))));
    avail[j] = trace.chunks[j].completed_at_ingest + w2f;
  }

  client::AdaptivePlayback playback(cfg.playback);
  const TimeUs outage_end = cfg.outage_at + cfg.outage_duration;
  const TimeUs wall_horizon =
      (n_chunks ? avail[n_chunks - 1] : 0) + 8 * cfg.poll_interval +
      cfg.outage_duration;

  // Random poll phase: unsynchronized with chunk seals (§5.2).
  TimeUs poll_t = static_cast<TimeUs>(
      rng.uniform() * static_cast<double>(cfg.poll_interval));
  std::size_t cursor = 0;
  bool migrated = false;
  bool awaiting_first = false;  // failover done, first chunk not yet seen
  DurationUs cold_penalty = 0;  // new edge's cache is empty

  while (cursor < n_chunks && poll_t <= wall_horizon) {
    if (!migrated && dark_member && poll_t >= cfg.outage_at &&
        poll_t < outage_end) {
      // The poll vanished into a dead PoP. After the detect window the
      // client re-anycasts to the nearest edge outside the dark set.
      out.counters.affected += 1;
      const geo::Datacenter* live = nullptr;
      double best_km = std::numeric_limits<double>::infinity();
      for (const auto& dc : catalog.all()) {
        if (dc.role != geo::CdnRole::kEdge) continue;
        if (std::binary_search(dark.begin(), dark.end(), dc.id.value))
          continue;
        const double km = geo::haversine_km(loc, dc.location);
        if (km < best_km) {
          best_km = km;
          live = &dc;
        }
      }
      if (live == nullptr) {
        out.counters.orphaned += 1;
        break;  // playback froze; the missing tail scores as stall below
      }
      out.counters.failovers += 1;
      migrated = true;
      awaiting_first = true;
      attachment = live->id.value;
      cold_penalty = cfg.w2f_offset;  // first fetch re-pulls the origin
      poll_t += cfg.detect_timeout;   // client polls right after re-anycast
      continue;
    }

    if (avail[cursor] <= poll_t) {
      const TimeUs recv = poll_t + cold_penalty + kHlsDownload;
      cold_penalty = 0;
      if (awaiting_first) {
        // Edge death -> first chunk via the new edge: detection, the
        // re-anycast, the cold origin pull, and the re-anchored download
        // (the second pipeline flush) are all inside this number.
        out.failover_latency_s.add(time::to_seconds(recv - cfg.outage_at));
        awaiting_first = false;
      }
      while (cursor < n_chunks && avail[cursor] <= poll_t) {
        const auto& c = trace.chunks[cursor];
        playback.on_arrival(recv, c.media_start, c.duration);
        ++cursor;
      }
    }
    poll_t += cfg.poll_interval;
  }

  // Score exactly like resilience_experiment: stalls on offered media
  // plus everything that never arrived, over the broadcast's total media.
  const DurationUs offered = std::min(playback.media_offered(), total_media);
  const double offered_stall =
      playback.stall_ratio() * static_cast<double>(playback.media_offered());
  const double missing = static_cast<double>(total_media - offered);
  out.stall_ratio.add(std::min(
      1.0, (offered_stall + missing) / static_cast<double>(total_media)));
}

}  // namespace

RegionalOutageStats regional_resilience_experiment(
    const std::vector<BroadcastTrace>& traces,
    const geo::DatacenterCatalog& catalog,
    const RegionalOutageConfig& config) {
  // The dark set is shared state: one blackout, computed once, sorted so
  // membership tests are deterministic binary searches.
  fault::RegionalBlackoutSpec spec;
  spec.at = config.outage_at;
  spec.duration = config.outage_duration;
  spec.center = config.center;
  spec.radius_km = config.radius_km;
  std::vector<std::uint64_t> dark;
  for (DatacenterId site : fault::FaultScenario::blackout_sites(catalog, spec))
    dark.push_back(site.value);
  std::sort(dark.begin(), dark.end());

  const auto ranges = sim::shard_ranges(
      traces.size(), sim::resolve_threads(config.threads));
  std::vector<RegionalOutageStats> parts(ranges.size());
  sim::parallel_for_shards(
      traces.size(), config.threads,
      [&](std::size_t shard, std::size_t begin, std::size_t end) {
        geo::UserGeoSampler sampler;
        for (std::size_t i = begin; i < end; ++i) {
          // One substream per trace: every viewer of broadcast i draws
          // from it in a fixed order, so shard boundaries are invisible.
          Rng rng(sim::substream_seed(config.seed, i));
          for (std::uint32_t v = 0; v < config.viewers_per_broadcast; ++v)
            simulate_regional_viewer(traces[i], catalog, config, dark,
                                     sampler, rng, parts[shard]);
        }
      });

  RegionalOutageStats out;
  out.dark_edges = dark.size();
  for (const auto& p : parts) {
    out.stall_ratio.merge(p.stall_ratio);
    out.failover_latency_s.merge(p.failover_latency_s);
    out.counters.merge(p.counters);
  }
  return out;
}

namespace detail {

// The poll walk of simulate_regional_viewer, replayed from stored draws.
// In probe mode (resolved == false) it stops at the re-anycast decision
// point, records first_dark_poll and the reactive decision_t, and
// returns true; a viewer that never hits the decision completes and
// scores. In resolve mode the admission outcome in `plan` is applied:
// orphaned -> break (the missing tail scores as stall), admitted ->
// migrate at plan.decision_t with the cold-cache penalty. Every
// arithmetic step matches simulate_regional_viewer exactly — the
// infinite-capacity parity contract depends on it.
bool walk_spill_viewer(const BroadcastTrace& trace,
                       const RegionalOutageConfig& cfg, bool resolved,
                       SpillPlan& plan) {
  const DurationUs total_media =
      static_cast<DurationUs>(trace.frame_arrivals.size()) *
      trace.frame_interval;
  const std::size_t n_chunks = trace.chunks.size();

  client::AdaptivePlayback playback(cfg.playback);
  const TimeUs outage_end = cfg.outage_at + cfg.outage_duration;
  const TimeUs wall_horizon =
      (n_chunks ? plan.avail[n_chunks - 1] : 0) + 8 * cfg.poll_interval +
      cfg.outage_duration;

  TimeUs poll_t = plan.poll0;
  std::size_t cursor = 0;
  bool migrated = false;
  bool awaiting_first = false;
  DurationUs cold_penalty = 0;
  bool hit = false;

  while (cursor < n_chunks && poll_t <= wall_horizon) {
    if (!migrated && plan.dark_member && poll_t >= cfg.outage_at &&
        poll_t < outage_end) {
      hit = true;
      if (!resolved) {
        plan.first_dark_poll = poll_t;
        plan.decision_t = poll_t + cfg.detect_timeout;
        return true;  // probe: the admission outcome is not known yet
      }
      if (plan.orphaned) break;
      migrated = true;
      awaiting_first = true;
      cold_penalty = cfg.w2f_offset;
      // Reactive: decision_t == first_dark_poll + detect_timeout, so
      // this is the original `poll_t += detect_timeout`. Proactive
      // steering may have clamped decision_t earlier (the published
      // anycast override beat the client's own timeout).
      poll_t = plan.decision_t;
      continue;
    }

    if (plan.avail[cursor] <= poll_t) {
      const TimeUs recv = poll_t + cold_penalty + kHlsDownload;
      cold_penalty = 0;
      if (awaiting_first) {
        plan.latency_s = time::to_seconds(recv - cfg.outage_at);
        plan.has_latency = true;
        awaiting_first = false;
      }
      while (cursor < n_chunks && plan.avail[cursor] <= poll_t) {
        const auto& c = trace.chunks[cursor];
        playback.on_arrival(recv, c.media_start, c.duration);
        ++cursor;
      }
    }
    poll_t += cfg.poll_interval;
  }

  const DurationUs offered = std::min(playback.media_offered(), total_media);
  const double offered_stall =
      playback.stall_ratio() * static_cast<double>(playback.media_offered());
  const double missing = static_cast<double>(total_media - offered);
  plan.stall = std::min(
      1.0, (offered_stall + missing) / static_cast<double>(total_media));
  return hit;
}

CapacitySpillStats run_capacity_spill(
    const std::vector<BroadcastTrace>& traces,
    const geo::DatacenterCatalog& catalog, const CapacitySpillConfig& config,
    std::optional<TimeUs> steer_at, std::vector<SpillPlan>* plans_out) {
  const RegionalOutageConfig& base = config.base;

  // The dark set, computed once from (catalog, center, radius) — shared
  // by every viewer, sorted for deterministic membership tests.
  fault::RegionalBlackoutSpec spec;
  spec.at = base.outage_at;
  spec.duration = base.outage_duration;
  spec.center = base.center;
  spec.radius_km = base.radius_km;
  std::vector<DatacenterId> dark_ids =
      fault::FaultScenario::blackout_sites(catalog, spec);
  std::vector<std::uint64_t> dark;
  for (DatacenterId site : dark_ids) dark.push_back(site.value);
  std::sort(dark.begin(), dark.end());

  const std::uint32_t V = base.viewers_per_broadcast;
  std::vector<SpillPlan> plans(traces.size() * V);

  // --- Phase A (parallel): replay draws, pre-walk to the decision -----
  // Draw order per viewer is EXACTLY simulate_regional_viewer's:
  // location, n_chunks W2F pulls, poll phase. Traces own substreams, so
  // shard boundaries are invisible.
  sim::parallel_for_shards(
      traces.size(), base.threads,
      [&](std::size_t, std::size_t begin, std::size_t end) {
        geo::UserGeoSampler sampler;
        for (std::size_t i = begin; i < end; ++i) {
          const BroadcastTrace& trace = traces[i];
          const DurationUs total_media =
              static_cast<DurationUs>(trace.frame_arrivals.size()) *
              trace.frame_interval;
          if (total_media <= 0) continue;  // no draws, no viewers
          Rng rng(sim::substream_seed(base.seed, i));
          for (std::uint32_t v = 0; v < V; ++v) {
            SpillPlan& plan = plans[i * V + v];
            plan.has_media = true;
            plan.loc = sampler.sample(rng);
            plan.home = catalog.nearest(plan.loc, geo::CdnRole::kEdge).id.value;
            plan.dark_member =
                std::binary_search(dark.begin(), dark.end(), plan.home);
            const std::size_t n_chunks = trace.chunks.size();
            plan.avail.resize(n_chunks);
            for (std::size_t j = 0; j < n_chunks; ++j) {
              const auto w2f = static_cast<DurationUs>(
                  static_cast<double>(base.w2f_offset) *
                  (1.0 + 0.35 * std::abs(rng.normal(0.0, 1.0))));
              plan.avail[j] = trace.chunks[j].completed_at_ingest + w2f;
            }
            plan.poll0 = static_cast<TimeUs>(
                rng.uniform() * static_cast<double>(base.poll_interval));
            plan.affected =
                walk_spill_viewer(trace, base, /*resolved=*/false, plan);
          }
        }
      });

  // --- Steering overlay (serial, RNG-free): clamp decision instants ---
  // A published anycast-map override lets an affected viewer's very next
  // poll land on a live edge instead of burning the full detect window.
  // The clamp keeps the client timeout as the worst case, so proactive
  // never loses to reactive.
  if (steer_at) {
    for (SpillPlan& p : plans) {
      if (!p.affected) continue;
      p.decision_t =
          std::clamp(*steer_at, p.first_dark_poll,
                     p.first_dark_poll + base.detect_timeout);
    }
  }

  CapacitySpillStats out;
  out.dark_edges = dark.size();

  // --- Phase B (serial): admissions against the shared load ledger ----
  // Load-blind joins first: every viewer counts toward its home edge.
  std::unordered_map<std::uint64_t, std::uint64_t> load;
  for (const SpillPlan& p : plans)
    if (p.has_media) load[p.home] += 1;
  std::unordered_map<std::uint64_t, std::uint64_t> peak = load;

  // Affected viewers re-anycast in the order their decisions land;
  // (trace, viewer) breaks wall-clock ties, so the pile-up sequence is
  // deterministic and independent of thread count.
  std::vector<std::size_t> order;
  for (std::size_t idx = 0; idx < plans.size(); ++idx)
    if (plans[idx].affected) order.push_back(idx);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return plans[a].decision_t < plans[b].decision_t;
                   });

  for (std::size_t idx : order) {
    SpillPlan& p = plans[idx];
    out.counters.affected += 1;
    if (load[p.home] > 0) load[p.home] -= 1;  // left the dead PoP

    // Candidates: the spill_k nearest live edges, ranked (distance, id).
    bool skipped_full = false;
    double nearest_live_km = -1.0;
    const geo::Datacenter* chosen = nullptr;
    double chosen_km = 0.0;
    for (const geo::Datacenter* dc : catalog.k_nearest(
             p.loc, geo::CdnRole::kEdge, config.spill_k, dark_ids)) {
      const double km = geo::haversine_km(p.loc, dc->location);
      if (nearest_live_km < 0.0) nearest_live_km = km;
      if (config.edge_capacity != 0 &&
          load[dc->id.value] >= config.edge_capacity) {
        skipped_full = true;  // overflow outward, ring by ring
        continue;
      }
      chosen = dc;
      chosen_km = km;
      break;
    }

    if (chosen == nullptr) {
      p.orphaned = true;
      out.counters.orphaned += 1;
      if (skipped_full) out.capacity_orphans += 1;
    } else {
      out.counters.failovers += 1;
      const std::uint64_t target = chosen->id.value;
      load[target] += 1;
      if (load[target] > peak[target]) peak[target] = load[target];
      if (skipped_full) {
        out.edge_spills += 1;
        out.spill_overshoot_km.add(chosen_km - nearest_live_km);
      }
    }
  }

  out.edge_peak_loads.assign(peak.begin(), peak.end());
  std::sort(out.edge_peak_loads.begin(), out.edge_peak_loads.end());

  // --- Phase C (parallel): resume the affected walks -------------------
  // No RNG is drawn after the decision point, so the replay is pure.
  sim::parallel_for_shards(
      traces.size(), base.threads,
      [&](std::size_t, std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i)
          for (std::uint32_t v = 0; v < V; ++v) {
            SpillPlan& plan = plans[i * V + v];
            if (plan.affected)
              walk_spill_viewer(traces[i], base, /*resolved=*/true, plan);
          }
      });

  // --- Phase D (serial): emit samples in canonical order ---------------
  // (trace, viewer) ascending == regional_resilience_experiment's merged
  // shard order at every thread count, so the samplers fingerprint
  // identically at infinite capacity.
  for (const SpillPlan& p : plans) {
    if (!p.has_media) continue;
    out.counters.viewers += 1;
    out.stall_ratio.add(p.stall);
    if (p.has_latency) out.failover_latency_s.add(p.latency_s);
  }
  if (plans_out) *plans_out = std::move(plans);
  return out;
}

}  // namespace detail

CapacitySpillStats capacity_spill_experiment(
    const std::vector<BroadcastTrace>& traces,
    const geo::DatacenterCatalog& catalog, const CapacitySpillConfig& config) {
  // No steer time, no plan capture: the reactive PR 4 baseline, byte for
  // byte.
  return detail::run_capacity_spill(traces, catalog, config, std::nullopt,
                                    nullptr);
}

ResilienceStats resilience_experiment(
    const std::vector<BroadcastTrace>& traces,
    const ResilienceConfig& config) {
  const auto ranges = sim::shard_ranges(
      traces.size(), sim::resolve_threads(config.threads));
  std::vector<ResilienceStats> parts(ranges.size());
  sim::parallel_for_shards(
      traces.size(), config.threads,
      [&](std::size_t shard, std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i)
          simulate_viewer(traces[i], config, i, parts[shard]);
      });

  ResilienceStats out;
  for (const auto& p : parts) {
    out.stall_ratio.merge(p.stall_ratio);
    out.rebuffer_count.merge(p.rebuffer_count);
    out.failover_latency_s.merge(p.failover_latency_s);
    out.counters.merge(p.counters);
  }
  return out;
}

}  // namespace livesim::analysis
