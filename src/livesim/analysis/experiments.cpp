#include "livesim/analysis/experiments.h"

#include <algorithm>
#include <cmath>

#include "livesim/client/playback.h"
#include "livesim/media/chunker.h"
#include "livesim/media/encoder.h"
#include "livesim/net/link.h"
#include "livesim/sim/parallel.h"
#include "livesim/sim/simulator.h"

namespace livesim::analysis {

namespace {

// The per-broadcast randomness the legacy serial generate_traces loop drew
// from the master RNG, in its exact draw order: one uniform for the uplink
// profile, then the uplink fork, then the frame-source fork.
struct TraceDraws {
  double profile = 0.0;
  std::uint64_t uplink_seed = 0;
  std::uint64_t source_seed = 0;
};

BroadcastTrace simulate_one_trace(const TraceSetConfig& config,
                                  const TraceDraws& draws) {
  sim::Simulator sim;
  BroadcastTrace trace;

  net::FifoUplink::Params uplink_params;
  if (draws.profile < config.bursty_fraction) {
    uplink_params = net::LastMileProfiles::bursty_uplink();
    trace.bursty = true;
  } else if (draws.profile <
             config.bursty_fraction + config.slow_start_fraction) {
    // Constrained uplinks: an initial connection outage floods the first
    // seconds of video out in one burst, and the bandwidth ramps up from
    // below the video bitrate -- the source of the paper's ~10% of
    // broadcasts with >5 s buffering delay (Fig 16b).
    uplink_params = net::LastMileProfiles::stable_uplink();
    uplink_params.mean_initial_outage = 10 * time::kSecond;
    uplink_params.initial_bw_fraction = 0.012;
    uplink_params.ramp_duration = 20 * time::kSecond;
    trace.bursty = true;
  } else {
    uplink_params = net::LastMileProfiles::stable_uplink();
  }
  net::FifoUplink uplink(sim, uplink_params, Rng(draws.uplink_seed));

  media::FrameSource source({}, Rng(draws.source_seed));
  media::Chunker::Params chunk_params;
  chunk_params.target_duration = config.chunk_target;
  chunk_params.max_duration = 2 * config.chunk_target;
  media::Chunker chunker(chunk_params);

  const auto frames = static_cast<std::uint64_t>(
      config.broadcast_len / source.params().frame_interval);
  trace.frame_interval = source.params().frame_interval;
  trace.frame_arrivals.resize(frames, 0);

  // Connect handshake ahead of frame 1 (see BroadcastSession::start).
  uplink.send(4096, [](TimeUs) {});
  for (std::uint64_t i = 0; i < frames; ++i) {
    media::VideoFrame f = source.next(0);
    sim.schedule_at(
        f.capture_ts + trace.frame_interval, [&, f]() mutable {
          uplink.send(f.size_bytes + 64, [&trace, &chunker, f](TimeUs at) {
            trace.frame_arrivals[f.seq] = at;
            if (auto sealed = chunker.push(f, at)) {
              trace.chunks.push_back({sealed->completed_ts,
                                      sealed->first_capture_ts,
                                      sealed->duration, sealed->size_bytes});
            }
          });
        });
  }
  sim.run();
  if (auto sealed = chunker.flush(sim.now())) {
    trace.chunks.push_back({sealed->completed_ts, sealed->first_capture_ts,
                            sealed->duration, sealed->size_bytes});
  }
  return trace;
}

}  // namespace

std::vector<BroadcastTrace> generate_traces(const TraceSetConfig& config) {
  const auto n = static_cast<std::size_t>(config.broadcasts);

  // Serial prepass: advance the master RNG exactly as the legacy loop did
  // (uniform + two forks = three next_u64 per broadcast, independent of
  // what each simulation does with them). Each broadcast's simulation then
  // runs from its own pre-drawn seeds, so the output is byte-identical to
  // the serial path at every thread count.
  std::vector<TraceDraws> draws(n);
  Rng rng(config.seed);
  for (auto& d : draws) {
    d.profile = rng.uniform();
    d.uplink_seed = rng.next_u64();   // == the state rng.fork() would seed
    d.source_seed = rng.next_u64();
  }

  return sim::parallel_map<BroadcastTrace>(
      n, config.threads,
      [&](std::size_t i) { return simulate_one_trace(config, draws[i]); });
}

PollingStats polling_experiment(const std::vector<BroadcastTrace>& traces,
                                DurationUs interval, DurationUs w2f_offset,
                                std::uint64_t seed, unsigned threads) {
  // One jitter substream per broadcast (not one shared stream): broadcast
  // i's samples depend only on (seed, i), so the result is identical no
  // matter how the traces are sharded across workers.
  const auto ranges = sim::shard_ranges(traces.size(),
                                        sim::resolve_threads(threads));
  std::vector<PollingStats> parts(ranges.size());
  sim::parallel_for_shards(
      traces.size(), threads,
      [&](std::size_t shard, std::size_t begin, std::size_t end) {
        PollingStats& part = parts[shard];
        for (std::size_t i = begin; i < end; ++i) {
          const auto& trace = traces[i];
          if (trace.chunks.size() < 3) continue;
          Rng rng(sim::substream_seed(seed, i));
          const TimeUs phase = static_cast<TimeUs>(
              rng.uniform() * static_cast<double>(interval));
          stats::Accumulator delays;
          for (const auto& c : trace.chunks) {
            // Availability at the edge jitters with the origin-pull latency.
            const auto w2f = static_cast<DurationUs>(
                static_cast<double>(w2f_offset) *
                (1.0 + 0.35 * std::abs(rng.normal(0.0, 1.0))));
            const TimeUs available = c.completed_at_ingest + w2f;
            // First poll tick at/after availability.
            const TimeUs since_phase = available > phase ? available - phase : 0;
            const TimeUs ticks = (since_phase + interval - 1) / interval;
            const TimeUs poll_at = phase + ticks * interval;
            delays.add(time::to_seconds(poll_at - available));
          }
          part.per_broadcast_mean_s.add(delays.mean());
          part.per_broadcast_std_s.add(delays.stddev());
        }
      });

  PollingStats out;
  for (const auto& p : parts) {
    out.per_broadcast_mean_s.merge(p.per_broadcast_mean_s);
    out.per_broadcast_std_s.merge(p.per_broadcast_std_s);
  }
  return out;
}

namespace {
// The paper's §6 assumptions: a stable last-mile link (<1 s) between the
// CDN and the viewer.
constexpr DurationUs kRtmpLastMile = 80 * time::kMillisecond;
constexpr DurationUs kHlsDownload = 150 * time::kMillisecond;
}  // namespace

namespace {

// Shared shard/merge driver for the two buffering experiments: runs
// `per_trace(trace_index, shard_stats)` over every trace, one substream
// per broadcast, merging shard results in index order.
template <typename PerTrace>
BufferingStats sharded_buffering(std::size_t n, unsigned threads,
                                 const PerTrace& per_trace) {
  const auto ranges = sim::shard_ranges(n, sim::resolve_threads(threads));
  std::vector<BufferingStats> parts(ranges.size());
  sim::parallel_for_shards(
      n, threads, [&](std::size_t shard, std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) per_trace(i, parts[shard]);
      });
  BufferingStats out;
  for (const auto& p : parts) {
    out.stall_ratio.merge(p.stall_ratio);
    out.mean_delay_s.merge(p.mean_delay_s);
  }
  return out;
}

}  // namespace

BufferingStats rtmp_buffering_experiment(
    const std::vector<BroadcastTrace>& traces, DurationUs pre_buffer,
    std::uint64_t seed, unsigned threads) {
  return sharded_buffering(
      traces.size(), threads, [&](std::size_t t, BufferingStats& out) {
        const auto& trace = traces[t];
        Rng rng(sim::substream_seed(seed, t));
        client::PlaybackSchedule playback(pre_buffer);
        for (std::size_t i = 0; i < trace.frame_arrivals.size(); ++i) {
          if (trace.frame_arrivals[i] == 0 && i > 0) continue;  // lost/unsent
          const DurationUs jitter = static_cast<DurationUs>(
              5000.0 * std::abs(rng.normal(0.0, 1.0)));
          playback.on_arrival(
              trace.frame_arrivals[i] + kRtmpLastMile + jitter,
              static_cast<DurationUs>(i) * trace.frame_interval,
              trace.frame_interval);
        }
        out.stall_ratio.add(playback.stall_ratio());
        out.mean_delay_s.add(playback.started()
                                 ? playback.buffering_delay_s().mean()
                                 : 0.0);
      });
}

BufferingStats hls_buffering_experiment(
    const std::vector<BroadcastTrace>& traces, DurationUs pre_buffer,
    DurationUs poll_interval, std::uint64_t seed, unsigned threads) {
  return sharded_buffering(
      traces.size(), threads, [&](std::size_t t, BufferingStats& out) {
        const auto& trace = traces[t];
        if (trace.chunks.empty()) return;
        Rng rng(sim::substream_seed(seed, t));
        client::PlaybackSchedule playback(pre_buffer);
        const TimeUs phase = static_cast<TimeUs>(
            rng.uniform() * static_cast<double>(poll_interval));
        for (const auto& c : trace.chunks) {
          // Availability at the edge: completion + expiry notice + origin pull
          // (kept fresh by the many-viewer / crawler polling of §4.3).
          const DurationUs w2f = static_cast<DurationUs>(
              300000.0 * (1.0 + 0.3 * std::abs(rng.normal(0.0, 1.0))));
          const TimeUs available = c.completed_at_ingest + w2f;
          const TimeUs since_phase = available > phase ? available - phase : 0;
          const TimeUs ticks =
              (since_phase + poll_interval - 1) / poll_interval;
          const TimeUs poll_at = phase + ticks * poll_interval;
          playback.on_arrival(poll_at + kHlsDownload, c.media_start,
                              c.duration);
        }
        out.stall_ratio.add(playback.stall_ratio());
        out.mean_delay_s.add(playback.started()
                                 ? playback.buffering_delay_s().mean()
                                 : 0.0);
      });
}

std::vector<W2FBucket> w2f_experiment(const geo::DatacenterCatalog& catalog,
                                      int samples_per_pair,
                                      std::uint64_t seed) {
  std::vector<W2FBucket> buckets = {
      {"co-located (0 km)", -1.0, 0.5, {}},
      {"(0, 500 km]", 0.5, 500.0, {}},
      {"(500, 5000 km]", 500.0, 5000.0, {}},
      {"(5000, 10000 km]", 5000.0, 10000.0, {}},
      {"> 10000 km", 10000.0, 1e9, {}},
  };
  Rng rng(seed);
  geo::LatencyModel latency;
  cdn::W2FModel model(catalog, latency);

  for (const auto* ingest : catalog.ingest_sites()) {
    for (const auto* edge : catalog.edge_sites()) {
      const double km = catalog.distance_km(ingest->id, edge->id);
      auto bucket = std::find_if(buckets.begin(), buckets.end(),
                                 [km](const W2FBucket& b) {
                                   return km > b.min_km && km <= b.max_km;
                                 });
      if (bucket == buckets.end()) continue;
      for (int s = 0; s < samples_per_pair; ++s) {
        // Expiry notice to this edge + the crawler's <=0.1 s poll offset.
        const DurationUs notice = latency.sample_delay(km, rng);
        const DurationUs poll_offset =
            static_cast<DurationUs>(rng.uniform() * 100000.0);
        const DurationUs transfer =
            model.sample_transfer(ingest->id, edge->id, 200000, rng);
        bucket->delay_s.add(
            time::to_seconds(notice + poll_offset + transfer));
      }
    }
  }
  return buckets;
}

BreakdownResult delay_breakdown_experiment(int repetitions,
                                           std::uint64_t seed) {
  BreakdownResult out;
  for (int rep = 0; rep < repetitions; ++rep) {
    sim::Simulator sim;
    const auto catalog = geo::DatacenterCatalog::paper_footprint();
    core::SessionConfig cfg;
    cfg.broadcast_len = 2 * time::kMinute;
    // The paper's controlled experiment: one broadcaster in Santa Barbara,
    // one RTMP and one HLS viewer on local WiFi; the measurement crawler
    // keeps the Fastly caches fresh.
    cfg.broadcaster_location = {34.42, -119.70};
    cfg.global_viewers = false;
    cfg.rtmp_viewers = 1;
    cfg.hls_viewers = 1;
    cfg.crawler_pollers = true;
    cfg.seed = seed + static_cast<std::uint64_t>(rep);
    core::BroadcastSession session(sim, catalog, cfg);
    session.start();
    sim.run();
    session.finalize();
    out.rtmp.merge(session.rtmp_breakdown());
    out.hls.merge(session.hls_breakdown());
  }
  return out;
}

}  // namespace livesim::analysis
