// SteeringPolicy: per-edge health state machine + anycast-map overrides.
//
// Consumes one EdgeSample per edge per scrape tick (sorted-id order, fed
// by the HealthMonitor) and maintains a three-state machine per edge:
//
//   healthy --(down)--------------------------> dead
//   healthy --(load/streak/trend trigger)-----> draining
//   draining --(recovered + cooldown)---------> healthy
//   dead --(probe answers again)--------------> draining (cooldown holds)
//
// A transition is a *decision*; it becomes routing-visible only when the
// owner (ControlPlane) publishes it after ControlPlaneConfig::steer_latency
// — the policy itself just records decisions deterministically. The
// published override set ("avoid these sites") is the anycast-map
// override the paper-era platform would push to its DNS/anycast tier.
#ifndef LIVESIM_CONTROL_STEERING_H
#define LIVESIM_CONTROL_STEERING_H

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "livesim/control/control.h"
#include "livesim/util/time.h"

namespace livesim::control {

class SteeringPolicy {
 public:
  struct Transition {
    std::uint64_t site = 0;
    EdgeHealth from = EdgeHealth::kHealthy;
    EdgeHealth to = EdgeHealth::kHealthy;
    TimeUs decided_at = 0;
  };

  explicit SteeringPolicy(const ControlPlaneConfig& config)
      : config_(config) {}

  /// Feeds one edge's scrape sample. `projected_load` is the load
  /// ledger's linear projection at now + trend_horizon (the monitor owns
  /// the ledgers; the policy only sees the projection). Returns the
  /// transition decided this tick, if any.
  std::optional<Transition> observe(const EdgeSample& sample,
                                    double projected_load, TimeUs now);

  /// Decided health (may not be published yet — the ControlPlane owns
  /// the steer-latency delay between decision and routing visibility).
  EdgeHealth health(std::uint64_t site) const noexcept;

  /// Sites currently decided draining or dead, sorted by id: the
  /// anycast-map override payload.
  std::vector<std::uint64_t> override_sites() const;

  /// Fraction of observed edges that are draining, dead, or full — the
  /// footprint-saturation signal that arms the overlay assist.
  double saturation() const noexcept;

  // --- ledger ---
  std::uint64_t drains() const noexcept { return drains_; }
  std::uint64_t undrains() const noexcept { return undrains_; }
  std::uint64_t deaths() const noexcept { return deaths_; }
  std::uint64_t revivals() const noexcept { return revivals_; }
  const std::vector<Transition>& transitions() const noexcept {
    return transitions_;
  }

 private:
  struct EdgeState {
    EdgeHealth health = EdgeHealth::kHealthy;
    TimeUs drained_at = 0;  // cooldown anchor (drain or revival)
    bool full = false;      // last sample's attached >= capacity
  };

  ControlPlaneConfig config_;
  std::map<std::uint64_t, EdgeState> edges_;  // sorted: deterministic scans
  std::vector<Transition> transitions_;
  std::uint64_t drains_ = 0;
  std::uint64_t undrains_ = 0;
  std::uint64_t deaths_ = 0;
  std::uint64_t revivals_ = 0;
};

}  // namespace livesim::control

#endif  // LIVESIM_CONTROL_STEERING_H
