#include "livesim/control/health_monitor.h"

#include <utility>

namespace livesim::control {

void HealthMonitor::ingest(const EdgeSample& sample, TimeUs now) {
  auto it = ledgers_.find(sample.site);
  if (it == ledgers_.end())
    it = ledgers_.emplace(sample.site, EdgeLedger(history_)).first;
  EdgeLedger& led = it->second;
  led.load.push(now, static_cast<double>(sample.attached));
  led.streak.push(now, static_cast<double>(sample.failure_streak));
  led.last_cohort = sample.cohort;
  led.last_fetch_failures = sample.fetch_failures;
  ++samples_;
}

double HealthMonitor::projected_load(std::uint64_t site,
                                     DurationUs horizon) const {
  auto it = ledgers_.find(site);
  return it == ledgers_.end() ? 0.0 : it->second.load.project(horizon);
}

const HealthMonitor::EdgeLedger* HealthMonitor::ledger(
    std::uint64_t site) const {
  auto it = ledgers_.find(site);
  return it == ledgers_.end() ? nullptr : &it->second;
}

ControlPlane::ControlPlane(sim::Simulator& sim, ControlPlaneConfig config,
                           Rng rng)
    : sim_(sim),
      config_(config),
      rng_(rng),
      monitor_(config.history),
      policy_(config) {}

void ControlPlane::start(ScrapeFn scrape) {
  scrape_fn_ = std::move(scrape);
  if (process_) return;
  process_ = std::make_unique<sim::PeriodicProcess>(
      sim_, sim_.now() + config_.scrape_interval, config_.scrape_interval,
      [this](sim::PeriodicProcess&) { scrape_tick(); });
}

void ControlPlane::stop() {
  if (process_) process_->stop();
}

EdgeHealth ControlPlane::published_health(std::uint64_t site) const {
  auto it = published_health_.find(site);
  return it == published_health_.end() ? EdgeHealth::kHealthy : it->second;
}

void ControlPlane::scrape_tick() {
  if (!scrape_fn_) return;
  ++scrapes_;
  const TimeUs now = sim_.now();
  // The scrape source yields samples in sorted-site-id order; ingesting
  // and deciding in that order is what makes the decision stream (and
  // every publication's engine-FIFO position) reproducible.
  for (const EdgeSample& sample : scrape_fn_()) {
    monitor_.ingest(sample, now);
    const double projected =
        monitor_.projected_load(sample.site, config_.trend_horizon);
    if (auto t = policy_.observe(sample, projected, now)) {
      const SteeringPolicy::Transition decided = *t;
      sim_.schedule_in(config_.steer_latency,
                       [this, decided] { publish(decided); });
    }
  }
  // Footprint saturation arms the overlay assist; it stays armed (the
  // mesh, once bootstrapped, keeps absorbing offload) — disarming and
  // re-warming a P2P mesh per oscillation would be worse than the drain.
  if (config_.overlay_assist && !assist_active_ &&
      policy_.saturation() >= config_.saturation_fraction) {
    assist_active_ = true;
    assist_armed_at_ = now;
  }
}

void ControlPlane::publish(const SteeringPolicy::Transition& t) {
  // Publications apply in decision order (engine FIFO): a later decision
  // for the same site lands after this one and wins, so the map
  // converges on the newest decided state.
  ++publications_;
  published_health_[t.site] = t.to;
  if (t.to == EdgeHealth::kHealthy)
    published_.erase(t.site);
  else
    published_.insert(t.site);
  if (steer_) steer_(t);
}

}  // namespace livesim::control
