// Control plane: shared types for proactive edge health monitoring and
// anycast load steering.
//
// The delivery tier (cdn/ + core/) is reactive: a dead or saturated edge
// is discovered only after a client burns through its poll timeout and
// detect window. The control plane closes that loop proactively — a
// HealthMonitor scrapes per-edge telemetry on a fixed cadence into
// ring-buffer stats::Timeseries ledgers, a SteeringPolicy turns the
// ledgers into per-edge health states (healthy / draining / dead), and
// the published anycast-map overrides steer new joins and failover
// re-anycast around bad edges before client timeouts fire.
//
// Determinism contract: scrape ticks ride the slot-arena engine clock,
// edges are always visited in sorted-id order, and all control-plane
// randomness (none is drawn by default) comes from one dedicated RNG
// substream handed over at construction — so enabling the control plane
// never perturbs any other component's stream, and with
// ControlPlaneConfig::enabled == false no object is built at all:
// byte-for-byte parity with the pre-control-plane system.
#ifndef LIVESIM_CONTROL_CONTROL_H
#define LIVESIM_CONTROL_CONTROL_H

#include <cstdint>

#include "livesim/overlay/mesh.h"
#include "livesim/util/time.h"

namespace livesim::control {

struct ControlPlaneConfig {
  /// Master switch. Off (the default): nothing is constructed, nothing
  /// is scraped, no RNG is forked — existing experiments reproduce bit
  /// for bit.
  bool enabled = false;

  /// Scrape cadence: the monitor samples every edge's telemetry this
  /// often. The proactive detection window for a silent death is at most
  /// one scrape interval plus steer_latency — set it well under the
  /// client failover_detect_timeout or there is nothing proactive about
  /// it.
  DurationUs scrape_interval = 500 * time::kMillisecond;

  /// Decision -> the updated anycast map is live at the routing layer
  /// (map push + propagation). Health transitions publish after this
  /// delay; until then routing still sees the previous state.
  DurationUs steer_latency = 100 * time::kMillisecond;

  /// Ring capacity of each per-edge telemetry ledger (scrapes kept).
  std::uint32_t history = 64;

  /// Drain when attached >= drain_load_fraction * capacity (finite
  /// capacity only; capacity 0 = unbounded edges never drain on load).
  double drain_load_fraction = 0.9;
  /// Hysteresis: a draining edge recovers only once attached falls to
  /// undrain_load_fraction * capacity or below (and its streak is clean).
  double undrain_load_fraction = 0.7;
  /// Drain when the origin-fetch failure streak reaches this many
  /// consecutive failures (0 disables the streak trigger).
  std::uint32_t drain_failure_streak = 3;
  /// Trend trigger: drain when the load ledger's least-squares slope
  /// projects attached >= capacity within this horizon (0 disables).
  DurationUs trend_horizon = 5 * time::kSecond;
  /// A drained edge stays drained at least this long (flap damping).
  DurationUs drain_cooldown = 2 * time::kSecond;

  /// Overlay assist: when the live-edge footprint saturates (the
  /// fraction of scraped edges that are draining, dead, or full reaches
  /// saturation_fraction), the control plane activates the overlay/ P2P
  /// mesh as an edge-offload escape valve: failovers that would orphan
  /// purely for capacity reasons are parked on the mesh instead.
  bool overlay_assist = false;
  double saturation_fraction = 0.5;
  overlay::P2PMesh::Params mesh{};
};

/// One edge's telemetry at one scrape tick. The scrape source (the
/// session layer) builds these in sorted-site-id order.
struct EdgeSample {
  std::uint64_t site = 0;
  std::uint64_t attached = 0;
  std::uint64_t capacity = 0;       // 0 = unbounded
  std::uint64_t fetch_failures = 0; // cumulative
  std::uint32_t failure_streak = 0; // consecutive, reset on success
  std::uint64_t cohort = 0;         // poll-wheel cohort size (0 if none)
  bool down = false;                // the scrape probe got no answer
};

enum class EdgeHealth : std::uint8_t {
  kHealthy = 0,
  kDraining = 1,  // steer around; attached viewers stay
  kDead = 2,      // steer around AND proactively migrate attached viewers
};

}  // namespace livesim::control

#endif  // LIVESIM_CONTROL_CONTROL_H
