// HealthMonitor + ControlPlane: the proactive half of the delivery tier.
//
// The HealthMonitor is a passive ledger bank: one ring-buffer
// stats::Timeseries pair (load, failure streak) per edge site, fed one
// EdgeSample per edge per scrape. It answers the trend questions the
// SteeringPolicy asks ("where will this edge's load be in trend_horizon
// seconds?") without the policy ever touching raw history.
//
// The ControlPlane is the active umbrella: it owns a PeriodicProcess on
// the slot-arena engine that calls the installed scrape function every
// scrape_interval, feeds the samples through monitor + policy, and
// publishes each health transition steer_latency later (anycast map
// push + propagation). Only *published* state is routing-visible:
// avoid(site) is what LivestreamService consults when ranking edges,
// and a published death fires the steer callback so attached viewers
// are migrated before their own poll timeouts notice anything.
//
// Determinism: scrape ticks ride the engine clock, the scrape function
// must yield samples in sorted-site-id order (the session layer does),
// publications are scheduled in transition order (engine FIFO breaks
// same-instant ties), and the one forked RNG substream is reserved for
// future probabilistic steering — nothing draws from it today, which is
// itself part of the reproducibility contract.
#ifndef LIVESIM_CONTROL_HEALTH_MONITOR_H
#define LIVESIM_CONTROL_HEALTH_MONITOR_H

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "livesim/control/control.h"
#include "livesim/control/steering.h"
#include "livesim/sim/simulator.h"
#include "livesim/stats/timeseries.h"
#include "livesim/util/rng.h"
#include "livesim/util/time.h"

namespace livesim::control {

/// Per-edge telemetry ledger bank. Pure bookkeeping: no clock, no
/// engine, no policy — just rings and the projections over them.
class HealthMonitor {
 public:
  struct EdgeLedger {
    stats::Timeseries load;    // attached() per scrape
    stats::Timeseries streak;  // consecutive fetch failures per scrape
    std::uint64_t last_cohort = 0;
    std::uint64_t last_fetch_failures = 0;
    EdgeLedger(std::size_t cap) : load(cap), streak(cap) {}
  };

  explicit HealthMonitor(std::uint32_t history)
      : history_(history == 0 ? 1 : history) {}

  /// Records one edge's sample at scrape time `now`.
  void ingest(const EdgeSample& sample, TimeUs now);

  /// Load ledger's linear projection `horizon` past the newest sample
  /// for `site` (0 for an unseen site).
  double projected_load(std::uint64_t site, DurationUs horizon) const;

  const EdgeLedger* ledger(std::uint64_t site) const;
  std::size_t edges() const noexcept { return ledgers_.size(); }
  std::uint64_t samples() const noexcept { return samples_; }

 private:
  std::uint32_t history_;
  std::map<std::uint64_t, EdgeLedger> ledgers_;  // sorted-id iteration
  std::uint64_t samples_ = 0;
};

/// The scrape source: returns one EdgeSample per live-footprint edge,
/// in sorted-site-id order. Installed by the session layer.
using ScrapeFn = std::function<std::vector<EdgeSample>()>;

/// Callback fired when a *published* transition demands action from the
/// delivery tier (today: proactive migration off a published-dead edge).
using SteerFn = std::function<void(const SteeringPolicy::Transition&)>;

class ControlPlane {
 public:
  /// Takes its own RNG substream so enabling the control plane never
  /// perturbs any other component's draws. No scraping starts until
  /// start() is called with a scrape source.
  ControlPlane(sim::Simulator& sim, ControlPlaneConfig config, Rng rng);
  ~ControlPlane() = default;

  ControlPlane(const ControlPlane&) = delete;
  ControlPlane& operator=(const ControlPlane&) = delete;

  /// Begins scraping: first tick at now + scrape_interval, then every
  /// scrape_interval on the engine clock.
  void start(ScrapeFn scrape);
  void stop();

  /// Fired steer_latency after a transition is decided, once it is
  /// routing-visible. Install before start() for deterministic replay.
  void set_steer_fn(SteerFn fn) { steer_ = std::move(fn); }

  /// Published override check: should routing steer around this site
  /// right now? (Decided-but-unpublished transitions do not count.)
  bool avoid(std::uint64_t site) const {
    return published_.count(site) != 0;
  }
  /// Published override set, sorted by site id: the anycast map payload.
  std::vector<std::uint64_t> published_overrides() const {
    return {published_.begin(), published_.end()};
  }

  /// Published health for a site (healthy if never observed/published).
  EdgeHealth published_health(std::uint64_t site) const;

  /// True once the footprint saturation signal (fraction of scraped
  /// edges draining/dead/full) has reached saturation_fraction and the
  /// config arms the overlay assist.
  bool overlay_assist_active() const noexcept { return assist_active_; }
  /// Engine time the assist first armed (0 = never).
  TimeUs assist_armed_at() const noexcept { return assist_armed_at_; }

  const ControlPlaneConfig& config() const noexcept { return config_; }
  const HealthMonitor& monitor() const noexcept { return monitor_; }
  const SteeringPolicy& policy() const noexcept { return policy_; }
  std::uint64_t scrapes() const noexcept { return scrapes_; }
  std::uint64_t publications() const noexcept { return publications_; }

  /// Hands a child component a derived stream off the control plane's
  /// own substream (used by the overlay-assist mesh).
  Rng fork_rng() noexcept { return rng_.fork(); }

 private:
  void scrape_tick();
  void publish(const SteeringPolicy::Transition& t);

  sim::Simulator& sim_;
  ControlPlaneConfig config_;
  Rng rng_;
  HealthMonitor monitor_;
  SteeringPolicy policy_;
  ScrapeFn scrape_fn_;
  SteerFn steer_;
  std::unique_ptr<sim::PeriodicProcess> process_;
  std::set<std::uint64_t> published_;  // routing-visible override sites
  std::map<std::uint64_t, EdgeHealth> published_health_;
  bool assist_active_ = false;
  TimeUs assist_armed_at_ = 0;
  std::uint64_t scrapes_ = 0;
  std::uint64_t publications_ = 0;
};

}  // namespace livesim::control

#endif  // LIVESIM_CONTROL_HEALTH_MONITOR_H
