#include "livesim/control/steering.h"

namespace livesim::control {

std::optional<SteeringPolicy::Transition> SteeringPolicy::observe(
    const EdgeSample& sample, double projected_load, TimeUs now) {
  EdgeState& st = edges_[sample.site];
  st.full = sample.capacity != 0 && sample.attached >= sample.capacity;
  const EdgeHealth before = st.health;

  EdgeHealth after = before;
  switch (before) {
    case EdgeHealth::kHealthy: {
      if (sample.down) {
        after = EdgeHealth::kDead;
        break;
      }
      // Load trigger: at the drain fraction now, or trending there
      // within the horizon per the ledger's least-squares slope.
      const bool load_hot =
          sample.capacity != 0 &&
          static_cast<double>(sample.attached) >=
              config_.drain_load_fraction *
                  static_cast<double>(sample.capacity);
      const bool trending =
          sample.capacity != 0 && config_.trend_horizon > 0 &&
          projected_load >= static_cast<double>(sample.capacity);
      const bool streak_hot = config_.drain_failure_streak != 0 &&
                              sample.failure_streak >=
                                  config_.drain_failure_streak;
      if (load_hot || trending || streak_hot) after = EdgeHealth::kDraining;
      break;
    }
    case EdgeHealth::kDraining: {
      if (sample.down) {
        after = EdgeHealth::kDead;
        break;
      }
      // Hysteresis + cooldown: recover only once load sits at or below
      // the undrain fraction, the failure streak is clean, and the
      // cooldown since the drain decision has elapsed. Unbounded edges
      // (capacity 0) only drain on streaks, so load never pins them.
      const bool load_ok =
          sample.capacity == 0 ||
          static_cast<double>(sample.attached) <=
              config_.undrain_load_fraction *
                  static_cast<double>(sample.capacity);
      const bool streak_ok = sample.failure_streak == 0;
      const bool cooled = now >= st.drained_at + config_.drain_cooldown;
      if (load_ok && streak_ok && cooled) after = EdgeHealth::kHealthy;
      break;
    }
    case EdgeHealth::kDead: {
      // The probe answers again: the box is back, but it re-enters
      // through draining (cold cache, unknown load) and must earn
      // healthy through the same hysteresis as any drained edge.
      if (!sample.down) after = EdgeHealth::kDraining;
      break;
    }
  }

  if (after == before) return std::nullopt;
  st.health = after;
  if (after == EdgeHealth::kDraining || after == EdgeHealth::kDead)
    st.drained_at = now;
  if (after == EdgeHealth::kDead) ++deaths_;
  if (before == EdgeHealth::kDead) ++revivals_;
  if (before == EdgeHealth::kHealthy && after == EdgeHealth::kDraining)
    ++drains_;
  if (after == EdgeHealth::kHealthy) ++undrains_;
  const Transition t{sample.site, before, after, now};
  transitions_.push_back(t);
  return t;
}

EdgeHealth SteeringPolicy::health(std::uint64_t site) const noexcept {
  auto it = edges_.find(site);
  return it == edges_.end() ? EdgeHealth::kHealthy : it->second.health;
}

std::vector<std::uint64_t> SteeringPolicy::override_sites() const {
  std::vector<std::uint64_t> out;
  for (const auto& [site, st] : edges_)  // std::map: already sorted by id
    if (st.health != EdgeHealth::kHealthy) out.push_back(site);
  return out;
}

double SteeringPolicy::saturation() const noexcept {
  if (edges_.empty()) return 0.0;
  std::size_t bad = 0;
  for (const auto& [site, st] : edges_)
    if (st.health != EdgeHealth::kHealthy || st.full) ++bad;
  return static_cast<double>(bad) / static_cast<double>(edges_.size());
}

}  // namespace livesim::control
