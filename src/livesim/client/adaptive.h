// Adaptive client buffering -- the optimization §6 closes with:
//
// "In cases when viewers have stable last-mile connection ... smaller
// buffer size could be applied to reduce the buffering delay. In other
// cases of bad connection, Periscope could always fall back to the
// default 9s buffer to provide smooth playback."
//
// AdaptivePlayback starts with an optimistic pre-buffer and re-anchors
// with a larger one whenever playback under-runs: stable viewers keep the
// low-delay schedule, unstable viewers converge to the conservative one.
#ifndef LIVESIM_CLIENT_ADAPTIVE_H
#define LIVESIM_CLIENT_ADAPTIVE_H

#include <cstdint>

#include "livesim/stats/accumulator.h"
#include "livesim/util/time.h"

namespace livesim::client {

class AdaptivePlayback {
 public:
  struct Params {
    DurationUs initial_pre_buffer = 6 * time::kSecond;
    DurationUs max_pre_buffer = 9 * time::kSecond;
    DurationUs grow_step = 1500 * time::kMillisecond;  // on each under-run
  };

  explicit AdaptivePlayback(Params params) : params_(params),
      current_target_(params.initial_pre_buffer) {}

  /// Same contract as PlaybackSchedule::on_arrival, but the schedule may
  /// re-anchor (rebuffer) after an under-run.
  void on_arrival(TimeUs arrival, DurationUs media_offset,
                  DurationUs duration);

  double stall_ratio() const noexcept;
  const stats::Accumulator& buffering_delay_s() const noexcept {
    return delay_;
  }
  DurationUs current_pre_buffer() const noexcept { return current_target_; }
  std::uint32_t rebuffer_events() const noexcept { return rebuffers_; }
  bool started() const noexcept { return started_; }
  /// Total media time offered via on_arrival. Resilience experiments use
  /// this to charge media that never reached the client (server death,
  /// exhausted retries) as stall on top of stall_ratio(), which only
  /// covers what was offered.
  DurationUs media_offered() const noexcept { return media_offered_; }

 private:
  void anchor(TimeUs arrival, DurationUs media_offset);

  Params params_;
  DurationUs current_target_;

  bool started_ = false;
  bool have_first_ = false;
  TimeUs first_arrival_ = 0;
  DurationUs buffered_media_ = 0;

  TimeUs start_wall_ = 0;
  DurationUs anchor_media_ = 0;

  DurationUs media_offered_ = 0;
  DurationUs stalled_ = 0;
  std::uint32_t rebuffers_ = 0;
  stats::Accumulator delay_;
};

}  // namespace livesim::client

#endif  // LIVESIM_CLIENT_ADAPTIVE_H
