// Client-side playback buffering, §6 of the paper.
//
// Decompiled-Periscope semantics: the client pre-buffers P seconds of
// content, then plays units (frames or chunks) by sequence on a fixed
// real-time schedule; a unit that has not arrived by the end of its
// scheduled slot is discarded and its slot is a stall. The two §6 metrics
// fall out directly:
//   stalling ratio   = discarded media time / total media time
//   buffering delay  = scheduled play time - arrival time, per played unit
#ifndef LIVESIM_CLIENT_PLAYBACK_H
#define LIVESIM_CLIENT_PLAYBACK_H

#include <cstdint>
#include <optional>
#include <vector>

#include "livesim/stats/accumulator.h"
#include "livesim/util/time.h"

namespace livesim::client {

class PlaybackSchedule {
 public:
  /// `pre_buffer`: media seconds accumulated before playback starts (the
  /// paper's P). Playback is anchored at the arrival that completes the
  /// pre-buffer; with P=0 it is anchored at the first arrival.
  explicit PlaybackSchedule(DurationUs pre_buffer)
      : pre_buffer_(pre_buffer) {}

  /// Reports one content unit. `media_offset` is the unit's position on
  /// the media timeline (capture time relative to the stream start),
  /// `duration` its media length, `arrival` its wall-clock arrival at the
  /// client. Arrivals may be reported in any order.
  void on_arrival(TimeUs arrival, DurationUs media_offset, DurationUs duration);

  /// Total media time offered so far.
  DurationUs media_offered() const noexcept { return media_offered_; }
  DurationUs media_discarded() const noexcept { return media_discarded_; }

  /// Fraction of offered media whose slot stalled (0 if nothing offered).
  /// Media that never got a schedule (playback never started) counts as
  /// stalled in full.
  double stall_ratio() const noexcept;

  /// Buffering delay stats over *played* units, in seconds.
  const stats::Accumulator& buffering_delay_s() const noexcept {
    return delay_;
  }

  /// Ground-truth end-to-end delay over played units: scheduled play time
  /// minus the unit's capture timestamp. Used to validate that the
  /// component decomposition (Figure 10) sums to what viewers experience.
  const stats::Accumulator& end_to_end_s() const noexcept { return e2e_; }

  bool started() const noexcept { return started_; }
  std::uint64_t units_played() const noexcept { return played_; }
  std::uint64_t units_discarded() const noexcept { return discarded_; }

  /// The media timestamp on screen at wall time `wall` (what the viewer is
  /// reacting to when they tap a heart). Nullopt before playback starts.
  std::optional<TimeUs> media_position(TimeUs wall) const noexcept {
    if (!started_ || wall < start_wall_) return std::nullopt;
    return first_media_ + (wall - start_wall_);
  }

 private:
  struct PendingUnit {
    TimeUs arrival;
    DurationUs media_offset;
    DurationUs duration;
  };

  DurationUs pre_buffer_;
  std::vector<PendingUnit> pending_pre_start_;
  bool started_ = false;
  bool have_first_ = false;
  DurationUs first_media_ = 0;
  DurationUs buffered_before_start_ = 0;
  TimeUs start_wall_ = 0;

  DurationUs media_offered_ = 0;
  DurationUs media_discarded_ = 0;
  std::uint64_t played_ = 0;
  std::uint64_t discarded_ = 0;
  stats::Accumulator delay_;
  stats::Accumulator e2e_;
};

}  // namespace livesim::client

#endif  // LIVESIM_CLIENT_PLAYBACK_H
