#include "livesim/client/playback.h"

namespace livesim::client {

void PlaybackSchedule::on_arrival(TimeUs arrival, DurationUs media_offset,
                                  DurationUs duration) {
  media_offered_ += duration;

  if (!have_first_) {
    have_first_ = true;
    first_media_ = media_offset;
  }

  if (!started_) {
    buffered_before_start_ += duration;
    if (buffered_before_start_ >= pre_buffer_) {
      // The arrival that completes the pre-buffer anchors the schedule:
      // the oldest unit plays now, unit u plays at
      // start_wall + (media_u - media_first).
      started_ = true;
      start_wall_ = arrival;
    } else {
      // Still pre-buffering: the schedule anchor is unknown until the
      // pre-buffer fills, so hold the unit and score it at start.
      pending_pre_start_.push_back({arrival, media_offset, duration});
      return;
    }
    // Score everything that was waiting in the pre-buffer.
    for (const auto& u : pending_pre_start_) {
      const TimeUs sched = start_wall_ + (u.media_offset - first_media_);
      delay_.add(time::to_seconds(sched - u.arrival));
      e2e_.add(time::to_seconds(sched - u.media_offset));
      ++played_;
    }
    pending_pre_start_.clear();
    // The anchoring unit itself.
    const TimeUs sched = start_wall_ + (media_offset - first_media_);
    delay_.add(time::to_seconds(sched - arrival));
    e2e_.add(time::to_seconds(sched - media_offset));
    ++played_;
    return;
  }

  const TimeUs sched = start_wall_ + (media_offset - first_media_);
  if (arrival <= sched) {
    // Early or on time: waits in the buffer for sched - arrival.
    delay_.add(time::to_seconds(sched - arrival));
    e2e_.add(time::to_seconds(sched - media_offset));
    ++played_;
  } else if (arrival <= sched + duration) {
    // Arrived mid-slot: the beginning of the slot stalls, the remainder
    // plays (partial discard of a late chunk/frame).
    media_discarded_ += arrival - sched;
    delay_.add(0.0);
    e2e_.add(time::to_seconds(arrival - media_offset));
    ++played_;
  } else {
    media_discarded_ += duration;
    ++discarded_;
  }
}

double PlaybackSchedule::stall_ratio() const noexcept {
  if (media_offered_ == 0) return 0.0;
  DurationUs stalled = media_discarded_;
  if (!started_) stalled = media_offered_;  // never played anything
  return static_cast<double>(stalled) / static_cast<double>(media_offered_);
}

}  // namespace livesim::client
