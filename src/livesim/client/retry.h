// Client-side poll retry: timeout detection state + backoff pacing.
//
// The §5.2 poll loop assumes every request comes back; this is what the
// client does when one doesn't. PollRetryState tracks the consecutive-
// failure streak, paces the next attempt with capped exponential backoff
// (jittered from the caller's RNG stream), and gives up after
// `max_attempts` failures in a row — the point where a real app would
// drop the viewer to an error screen. A success resets the streak, so
// transient partitions cost a few backed-off polls, not the session.
#ifndef LIVESIM_CLIENT_RETRY_H
#define LIVESIM_CLIENT_RETRY_H

#include <cstdint>
#include <optional>

#include "livesim/fault/backoff.h"
#include "livesim/util/rng.h"
#include "livesim/util/time.h"

namespace livesim::client {

class PollRetryState {
 public:
  struct Params {
    fault::BackoffPolicy::Params backoff{};
    /// Consecutive failures tolerated before the client gives up.
    std::uint32_t max_attempts = 6;
  };

  PollRetryState() : PollRetryState(Params{}) {}
  explicit PollRetryState(Params params)
      : params_(params), policy_(params.backoff) {}

  /// A poll failed (timeout, partition, corrupt response) at `now`.
  /// Returns when to retry, or nullopt if the streak just exhausted
  /// max_attempts — the client has given up (terminal; later calls keep
  /// returning nullopt).
  std::optional<TimeUs> on_failure(TimeUs now, Rng& rng);

  /// A poll succeeded: the failure streak resets.
  void on_success() noexcept {
    if (!gave_up_) streak_ = 0;
  }

  std::uint32_t consecutive_failures() const noexcept { return streak_; }
  std::uint32_t total_failures() const noexcept { return total_; }
  bool gave_up() const noexcept { return gave_up_; }

  const Params& params() const noexcept { return params_; }

 private:
  Params params_;
  fault::BackoffPolicy policy_;
  std::uint32_t streak_ = 0;
  std::uint32_t total_ = 0;
  bool gave_up_ = false;
};

}  // namespace livesim::client

#endif  // LIVESIM_CLIENT_RETRY_H
