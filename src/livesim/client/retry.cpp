#include "livesim/client/retry.h"

namespace livesim::client {

std::optional<TimeUs> PollRetryState::on_failure(TimeUs now, Rng& rng) {
  if (gave_up_) return std::nullopt;
  ++streak_;
  ++total_;
  if (streak_ >= params_.max_attempts) {
    gave_up_ = true;
    return std::nullopt;
  }
  return now + policy_.delay(streak_, rng);
}

}  // namespace livesim::client
