#include "livesim/client/adaptive.h"

namespace livesim::client {

void AdaptivePlayback::anchor(TimeUs arrival, DurationUs media_offset) {
  // Re-anchor so that this unit plays after the (possibly grown) target
  // pre-buffer has a chance to refill: schedule the unit at arrival and
  // push the playhead origin back by the target so the buffer holds
  // ~target seconds of content once steady arrivals resume.
  start_wall_ = arrival + current_target_;
  anchor_media_ = media_offset;
}

void AdaptivePlayback::on_arrival(TimeUs arrival, DurationUs media_offset,
                                  DurationUs duration) {
  media_offered_ += duration;
  if (!have_first_) {
    have_first_ = true;
    first_arrival_ = arrival;
  }

  if (!started_) {
    buffered_media_ += duration;
    if (buffered_media_ >= current_target_) {
      started_ = true;
      // Initial anchor: oldest content plays now; this unit's schedule sits
      // `buffered_media_` ahead of the playhead.
      start_wall_ = arrival;
      anchor_media_ = media_offset - (buffered_media_ - duration);
      // Score the pre-buffered backlog conservatively as waiting ~half the
      // accumulated buffer on average.
      delay_.add(time::to_seconds(buffered_media_) / 2.0);
    }
    return;
  }

  const TimeUs sched = start_wall_ + (media_offset - anchor_media_);
  if (arrival <= sched) {
    delay_.add(time::to_seconds(sched - arrival));
  } else {
    // Under-run: the player freezes from sched until this unit arrives,
    // grows the target (capped), and rebuffers -- the refill pause counts
    // as stall too, since the screen stays frozen while the buffer fills.
    ++rebuffers_;
    if (current_target_ < params_.max_pre_buffer) {
      current_target_ += params_.grow_step;
      if (current_target_ > params_.max_pre_buffer)
        current_target_ = params_.max_pre_buffer;
    }
    stalled_ += (arrival - sched) + current_target_;
    anchor(arrival, media_offset);
    // This unit waits out the refill in the buffer.
    delay_.add(time::to_seconds(current_target_));
  }
}

double AdaptivePlayback::stall_ratio() const noexcept {
  if (media_offered_ == 0) return 0.0;
  const DurationUs denom = media_offered_;
  const DurationUs stall = started_ ? stalled_ : media_offered_;
  return static_cast<double>(stall) / static_cast<double>(denom);
}

}  // namespace livesim::client
