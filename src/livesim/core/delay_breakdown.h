// End-to-end delay decomposition (Figure 10 / Figure 11).
//
// RTMP path:  upload -> last-mile -> client-buffering.
// HLS path:   upload -> chunking -> Wowza2Fastly -> polling -> last-mile
//             -> client-buffering.
#ifndef LIVESIM_CORE_DELAY_BREAKDOWN_H
#define LIVESIM_CORE_DELAY_BREAKDOWN_H

#include <string>

#include "livesim/stats/accumulator.h"

namespace livesim::core {

struct DelayBreakdown {
  stats::Accumulator upload_s;
  stats::Accumulator chunking_s;   // HLS only
  stats::Accumulator w2f_s;        // HLS only
  stats::Accumulator polling_s;    // HLS only
  stats::Accumulator last_mile_s;
  stats::Accumulator buffering_s;

  /// Sum of component means = expected end-to-end delay in seconds.
  double total_s() const noexcept {
    return upload_s.mean() + chunking_s.mean() + w2f_s.mean() +
           polling_s.mean() + last_mile_s.mean() + buffering_s.mean();
  }

  void merge(const DelayBreakdown& o) {
    upload_s.merge(o.upload_s);
    chunking_s.merge(o.chunking_s);
    w2f_s.merge(o.w2f_s);
    polling_s.merge(o.polling_s);
    last_mile_s.merge(o.last_mile_s);
    buffering_s.merge(o.buffering_s);
  }
};

}  // namespace livesim::core

#endif  // LIVESIM_CORE_DELAY_BREAKDOWN_H
