#include "livesim/core/service.h"

#include <algorithm>

#include "livesim/sim/parallel.h"

namespace livesim::core {

LivestreamService::LivestreamService(sim::Simulator& sim,
                                     const geo::DatacenterCatalog& catalog,
                                     Config config)
    : sim_(sim), catalog_(catalog), config_(std::move(config)),
      rng_(config_.seed) {}

LivestreamService::~LivestreamService() = default;

BroadcastId LivestreamService::start_broadcast(const geo::GeoPoint& location,
                                               DurationUs length) {
  return start_broadcast_impl(location, length, /*is_private=*/false, {});
}

BroadcastId LivestreamService::start_private_broadcast(
    const geo::GeoPoint& location, DurationUs length,
    std::vector<UserId> invitees) {
  return start_broadcast_impl(location, length, /*is_private=*/true,
                              std::move(invitees));
}

BroadcastId LivestreamService::start_broadcast_impl(
    const geo::GeoPoint& location, DurationUs length, bool is_private,
    std::vector<UserId> invitees) {
  const BroadcastId id{next_id_++};
  auto b = std::make_unique<Broadcast>();
  b->info.id = id;
  b->info.broadcaster_location = location;
  b->info.started_at = sim_.now();
  b->info.length = length;
  b->info.live = true;
  b->info.is_private = is_private;
  b->info.encrypted_transport = is_private;  // RTMPS for private streams
  for (UserId u : invitees) b->invitees.insert(u.value);
  b->commenters = msg::CommenterPolicy(config_.commenter_cap);

  SessionConfig cfg = config_.session_defaults;
  cfg.broadcast_len = length;
  cfg.broadcaster_location = location;
  cfg.rtmp_viewers = 0;  // viewers join dynamically
  cfg.hls_viewers = 0;
  cfg.seed = rng_.next_u64();
  b->session = std::make_unique<BroadcastSession>(sim_, catalog_, cfg);
  b->session->start();

  b->channel = std::make_unique<msg::Channel>(sim_);
  // Broadcaster subscribes to their own channel for hearts/comments.
  auto link = config_.session_defaults.viewer_last_mile;
  b->broadcaster_msg_link =
      std::make_unique<net::Link>(sim_, link, rng_.fork());
  auto* braw = b.get();
  b->channel->subscribe(
      b->broadcaster_msg_link.get(),
      [this, braw](const msg::Message& m, TimeUs delivered_at) {
        // Feedback lag: the broadcaster is live at `delivered_at`; the
        // reaction refers to `reacts_to_media_ts` on the stream clock.
        const double lag =
            time::to_seconds(delivered_at - m.reacts_to_media_ts);
        (m.text == "rtmp" ? rtmp_lag_ : hls_lag_).add(lag);
        if (m.type == msg::MessageType::kHeart) ++braw->info.hearts;
      });

  if (!is_private) list_.broadcast_started(id);  // private: never listed
  sim_.schedule_in(length, [this, id] {
    list_.broadcast_ended(id);
    if (auto it = broadcasts_.find(id.value); it != broadcasts_.end())
      it->second->info.live = false;
  });

  broadcasts_.emplace(id.value, std::move(b));
  return id;
}

LivestreamService::Broadcast* LivestreamService::live_broadcast(
    BroadcastId id) {
  auto it = broadcasts_.find(id.value);
  if (it == broadcasts_.end() || !it->second->info.live) return nullptr;
  return it->second.get();
}

std::optional<LivestreamService::ViewerHandle> LivestreamService::join(
    BroadcastId id, const geo::GeoPoint& location) {
  return join_as(id, UserId{}, location);
}

std::optional<LivestreamService::ViewerHandle> LivestreamService::join_as(
    BroadcastId id, UserId viewer, const geo::GeoPoint& location) {
  // Organic joins consult the service-wide verdict union: a site ANY
  // live session's control plane published as draining/dead is steered
  // around, not just this broadcast's own overrides (the cross-session
  // gap the per-session map left open). Empty union = historical path.
  return join_steered(id, viewer, location, published_avoid());
}

std::optional<LivestreamService::ViewerHandle> LivestreamService::join_steered(
    BroadcastId id, UserId viewer, const geo::GeoPoint& location,
    std::span<const std::uint64_t> avoid) {
  Broadcast* b = live_broadcast(id);
  if (b == nullptr) return std::nullopt;
  if (b->info.is_private &&
      (!viewer.valid() || b->invitees.count(viewer.value) == 0))
    return std::nullopt;  // not on the invite list

  ViewerHandle handle;
  handle.broadcast = id;
  // First-come slot policy: early joiners get the low-delay RTMP path.
  handle.rtmp = b->info.rtmp_viewers < config_.rtmp_slot_cap;
  handle.can_comment = handle.rtmp && b->commenters.admit_commenter();
  handle.viewer_index = b->session->add_viewer(location, !handle.rtmp, avoid);
  (handle.rtmp ? b->info.rtmp_viewers : b->info.hls_viewers) += 1;
  return handle;
}

std::vector<std::uint64_t> LivestreamService::published_avoid() const {
  std::vector<std::uint64_t> avoid;
  for (const auto& [id, b] : broadcasts_) {
    if (!b->info.live) continue;
    if (const auto* cp = b->session->control_plane())
      for (std::uint64_t site : cp->published_overrides())
        avoid.push_back(site);
  }
  // Sort + dedup: the union is canonical whatever the hash-map
  // iteration order, and sorted is what add_viewer's binary search
  // needs.
  std::sort(avoid.begin(), avoid.end());
  avoid.erase(std::unique(avoid.begin(), avoid.end()), avoid.end());
  return avoid;
}

std::size_t LivestreamService::drive_crowd(
    std::span<const BroadcastId> channels,
    std::span<const workload::CrowdRecord> records,
    const CrowdDriveConfig& config) {
  auto d = std::make_unique<CrowdDrive>();
  d->config = config;
  d->channels.assign(channels.begin(), channels.end());
  d->records.assign(records.begin(), records.end());
  d->locations.resize(d->records.size());
  d->handles.resize(d->records.size());
  d->origin = sim_.now();
  d->stats.records = d->records.size();
  d->timeline =
      std::make_unique<sim::BatchTimeline>(sim_, config.batch_window);

  // Locations are pre-drawn in record order from per-record substreams:
  // the draw sequence never depends on batch composition, so reshaping
  // the window (or the thread count that generated the records) cannot
  // perturb any other RNG stream in the service.
  geo::UserGeoSampler sampler;
  const DurationUs window = d->timeline->window();
  for (std::size_t i = 0; i < d->records.size(); ++i) {
    Rng rng(sim::substream_seed(config.seed, i));
    d->locations[i] = sampler.sample(rng);
    const workload::CrowdRecord& r = d->records[i];
    const TimeUs join_at = d->origin + r.join;
    // Op encoding: record index << 1, low bit = leave. The leave is
    // pushed to at least one window past the join so every admitted
    // viewer attaches to its edge's poll wheel for >= one full window
    // (churn exercises the wheel detach path, not a same-instant
    // join+leave).
    d->timeline->add(join_at, (static_cast<std::uint64_t>(i) << 1));
    const TimeUs leave_at =
        std::max(d->timeline->quantize(join_at) + window,
                 d->timeline->quantize(join_at + r.stay));
    d->timeline->add(leave_at, (static_cast<std::uint64_t>(i) << 1) | 1u);
  }

  auto* draw = d.get();
  d->timeline->seal(
      [this, draw](TimeUs at, std::span<const std::uint64_t> ops) {
        fire_crowd_batch(*draw, at, ops);
      });
  drives_.push_back(std::move(d));
  return drives_.size() - 1;
}

void LivestreamService::fire_crowd_batch(CrowdDrive& drive, TimeUs at,
                                         std::span<const std::uint64_t> ops) {
  ++drive.stats.batches;
  // One verdict-union snapshot per batch: published overrides only move
  // on engine events, and no time passes inside a batch, so per-join
  // lookups would all see this exact set anyway.
  const std::vector<std::uint64_t> avoid = published_avoid();
  for (std::uint64_t op : ops) {
    const std::size_t i = static_cast<std::size_t>(op >> 1);
    if (op & 1u) {
      // Early leave: flows through leave() -> remove_viewer() -> the
      // poll-wheel detach path, exactly like an organic departure.
      // Handles stay valid after the broadcast ends (leave is
      // idempotent there), so late leaves are applied, not dropped.
      if (drive.handles[i].valid()) {
        leave(drive.handles[i]);
        ++drive.stats.leaves;
      }
      continue;
    }
    const workload::CrowdRecord& r = drive.records[i];
    const BroadcastId channel = r.channel < drive.channels.size()
                                    ? drive.channels[r.channel]
                                    : BroadcastId{};
    auto handle = join_steered(channel, UserId{}, drive.locations[i], avoid);
    if (!handle.has_value()) {
      // The channel ended before this record's (quantized) join landed,
      // or the record maps past the channel span.
      ++drive.stats.late_joins;
      continue;
    }
    drive.handles[i] = *handle;
    ++drive.stats.joins;
    drive.stats.admission_latency_s.add(
        time::to_seconds(at - (drive.origin + r.join)));
  }
}

void LivestreamService::leave(const ViewerHandle& viewer) {
  auto it = broadcasts_.find(viewer.broadcast.value);
  if (it == broadcasts_.end()) return;
  it->second->session->remove_viewer(viewer.viewer_index);
}

void LivestreamService::deliver_feedback(Broadcast& b, const msg::Message& m,
                                         bool) {
  b.channel->publish(m);
}

void LivestreamService::send_heart(const ViewerHandle& viewer) {
  Broadcast* b = live_broadcast(viewer.broadcast);
  if (b == nullptr) return;
  const auto& playback = b->session->viewer_playback(viewer.viewer_index);
  const auto position = playback.media_position(sim_.now());
  if (!position) return;  // still pre-buffering: nothing on screen yet

  msg::Message m;
  m.type = msg::MessageType::kHeart;
  m.sent_at = sim_.now();
  // Capture timestamps are absolute simulation time already.
  m.reacts_to_media_ts = *position;
  m.text = viewer.rtmp ? "rtmp" : "hls";  // path tag for lag attribution
  deliver_feedback(*b, m, viewer.rtmp);
}

bool LivestreamService::send_comment(const ViewerHandle& viewer,
                                     const std::string& text) {
  Broadcast* b = live_broadcast(viewer.broadcast);
  if (b == nullptr) return false;
  if (!viewer.can_comment) {
    ++comments_rejected_;  // "Broadcast is too full" (the paper's §1 hacks)
    return false;
  }
  const auto& playback = b->session->viewer_playback(viewer.viewer_index);
  const auto position = playback.media_position(sim_.now());
  if (!position) return false;

  msg::Message m;
  m.type = msg::MessageType::kComment;
  m.sent_at = sim_.now();
  m.reacts_to_media_ts = *position;
  m.text = viewer.rtmp ? "rtmp" : "hls";
  (void)text;  // content is not modeled, only metadata (as in the crawl)
  ++b->info.comments;
  deliver_feedback(*b, m, viewer.rtmp);
  return true;
}

std::size_t LivestreamService::inject_scenario(
    const fault::FaultScenario& scenario, std::uint64_t seed) {
  if (scenario.empty()) return 0;  // inert: no expansion, no RNG draws
  // Expand ONCE against the shared catalog: every session replays the
  // same outage script, so concurrent broadcasts experience one regional
  // event together rather than independent copies of it.
  const fault::FaultSchedule schedule = scenario.expand(catalog_, seed);
  if (schedule.empty()) return 0;

  // Sorted by broadcast id: injector arming order (and therefore
  // event-queue tie-breaking) is independent of hash-map iteration order.
  std::vector<std::uint64_t> ids;
  ids.reserve(broadcasts_.size());
  for (const auto& [id, b] : broadcasts_)
    if (b->info.live) ids.push_back(id);
  std::sort(ids.begin(), ids.end());

  for (std::uint64_t id : ids)
    broadcasts_.at(id)->session->inject_faults(schedule);
  return ids.size();
}

std::uint64_t LivestreamService::edge_spills() const {
  std::uint64_t total = 0;
  for (const auto& [id, b] : broadcasts_) total += b->session->edge_spills();
  return total;
}

stats::Accumulator LivestreamService::spill_distance_km() const {
  // Merge in broadcast-id order so the merged accumulator (and any
  // sampler it may grow) is independent of hash-map iteration order.
  std::vector<std::uint64_t> ids;
  ids.reserve(broadcasts_.size());
  for (const auto& [id, b] : broadcasts_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  stats::Accumulator out;
  for (std::uint64_t id : ids)
    out.merge(broadcasts_.at(id)->session->spill_distance_km());
  return out;
}

std::uint64_t LivestreamService::control_drains() const {
  std::uint64_t total = 0;
  for (const auto& [id, b] : broadcasts_)
    if (const auto* cp = b->session->control_plane())
      total += cp->policy().drains();
  return total;
}

std::uint64_t LivestreamService::proactive_migrations() const {
  std::uint64_t total = 0;
  for (const auto& [id, b] : broadcasts_)
    total += b->session->proactive_migrations();
  return total;
}

std::uint64_t LivestreamService::overlay_assists() const {
  std::uint64_t total = 0;
  for (const auto& [id, b] : broadcasts_)
    total += b->session->overlay_assists();
  return total;
}

std::uint64_t LivestreamService::steered_joins() const {
  std::uint64_t total = 0;
  for (const auto& [id, b] : broadcasts_)
    total += b->session->steered_joins();
  return total;
}

std::vector<std::pair<std::uint64_t, std::uint64_t>>
LivestreamService::edge_peak_loads() const {
  std::unordered_map<std::uint64_t, std::uint64_t> by_site;
  for (const auto& [id, b] : broadcasts_)
    for (const auto& [site, peak] : b->session->edge_peak_loads())
      by_site[site] += peak;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> out(by_site.begin(),
                                                           by_site.end());
  std::sort(out.begin(), out.end());
  return out;
}

std::optional<LivestreamService::BroadcastInfo> LivestreamService::info(
    BroadcastId id) const {
  auto it = broadcasts_.find(id.value);
  if (it == broadcasts_.end()) return std::nullopt;
  return it->second->info;
}

BroadcastSession* LivestreamService::session(BroadcastId id) {
  auto it = broadcasts_.find(id.value);
  return it == broadcasts_.end() ? nullptr : it->second->session.get();
}

}  // namespace livesim::core
