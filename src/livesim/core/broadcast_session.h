// BroadcastSession: one live broadcast simulated end to end.
//
// Wires together the whole measured pipeline of §4:
//
//   broadcaster --(FIFO uplink, RTMP)--> IngestServer (nearest Wowza site)
//     |-- push each frame --> RTMP viewers (persistent connections)
//     |-- Chunker --> sealed chunks --> expiry notices --> EdgeServers
//                         EdgeServer <--(poll, HLS)-- HLS viewers
//
// Every delay component of Figure 10 is recorded as it happens, and every
// viewer runs the §6 playback schedule, so one session yields both the
// Figure 11 breakdown and the Figure 16/17 buffering metrics.
#ifndef LIVESIM_CORE_BROADCAST_SESSION_H
#define LIVESIM_CORE_BROADCAST_SESSION_H

#include <memory>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "livesim/cdn/resource_model.h"
#include "livesim/cdn/servers.h"
#include "livesim/cdn/w2f.h"
#include "livesim/client/playback.h"
#include "livesim/client/retry.h"
#include "livesim/control/health_monitor.h"
#include "livesim/core/delay_breakdown.h"
#include "livesim/fault/fault.h"
#include "livesim/fault/injector.h"
#include "livesim/geo/datacenters.h"
#include "livesim/media/encoder.h"
#include "livesim/net/link.h"
#include "livesim/sim/simulator.h"
#include "livesim/stats/accumulator.h"

namespace livesim::core {

struct SessionConfig {
  DurationUs broadcast_len = 60 * time::kSecond;
  media::FrameSource::Params encoder{};
  net::FifoUplink::Params uplink = net::LastMileProfiles::stable_uplink();
  media::Chunker::Params chunker{};
  cdn::ResourceModel resources{};
  cdn::W2FModel::Params w2f{};
  geo::LatencyModel latency{};  // wide-area propagation model

  geo::GeoPoint broadcaster_location{37.77, -122.42};  // San Francisco

  /// Device-side capture->encode->packetize pipeline latency, part of the
  /// paper's "upload" component (timestamp 1 is stamped at capture).
  DurationUs device_pipeline = 180 * time::kMillisecond;

  std::uint32_t rtmp_viewers = 3;
  std::uint32_t hls_viewers = 3;
  /// When set, viewer locations are sampled from the global user
  /// distribution; otherwise everyone sits near the broadcaster.
  bool global_viewers = true;
  net::Link::Params viewer_last_mile = net::LastMileProfiles::wifi();

  DurationUs hls_poll_interval = time::from_seconds(2.8);
  DurationUs rtmp_prebuffer = 1 * time::kSecond;
  DurationUs hls_prebuffer = 9 * time::kSecond;

  /// Poll aggregation (the flash-crowd fast path). When true, HLS viewers
  /// are driven by their edge's bucketed sim::PollWheel — one engine
  /// event per edge per tick fans out to the whole attached cohort — so
  /// scheduling cost scales with edges, not viewers. When false, every
  /// viewer owns a PeriodicProcess (the reference path). Both paths
  /// quantize poll phases onto the same poll_wheel_slots grid and share
  /// one poll transaction, so results are byte-identical either way.
  bool poll_wheel = true;
  /// Wheel buckets per rotation; slot width = hls_poll_interval / slots.
  /// The effective poll interval is slot_width * slots (exact for the
  /// 2.8 s / 64 default).
  std::uint32_t poll_wheel_slots = 64;

  /// Opt-in client poll retry (the solo-timer demotion lane). Off (the
  /// default): an unanswered poll wedges the outstanding flag and the
  /// viewer stops polling until failover migrates it — the historical
  /// behaviour, bit for bit. On: a poll unanswered after
  /// poll_retry_timeout demotes the viewer from the wheel (or stops its
  /// timer) to a solo one-shot timer paced by client::PollRetryState's
  /// capped exponential backoff; the first answered poll re-promotes it
  /// to the steady-state tick source with a fresh phase. A viewer whose
  /// streak exhausts max_attempts goes inert until failover rescues it.
  bool hls_poll_retry = false;
  client::PollRetryState::Params poll_retry{};
  DurationUs poll_retry_timeout = 1 * time::kSecond;

  /// Adds a 0.1 s poller at every edge (the paper's measurement crawler):
  /// keeps caches fresh and records chunk availability for Fig 15.
  bool crawler_pollers = false;

  /// Records a per-chunk event ledger (the Figure 10 timestamps) for the
  /// first HLS viewer. Small per-chunk overhead; off by default.
  bool record_journeys = false;

  /// Fault script injected into this session (fault/fault.h). Empty (the
  /// default) means no injector is created and the session is bit-for-bit
  /// identical to the pre-fault behaviour. Times are relative to start().
  /// Correlated scripts (regional blackouts, cascades, rolling waves) are
  /// authored as a fault::FaultScenario and expanded into this same event
  /// form — or injected live via inject_faults() /
  /// LivestreamService::inject_scenario().
  fault::FaultSchedule faults{};
  /// How long a dead connection (RTMP ingest or HLS edge) goes unnoticed
  /// before the client fails over (socket timeout + app reaction).
  DurationUs failover_detect_timeout = 2 * time::kSecond;
  /// When true, viewers that failed over from RTMP to HLS re-attach to
  /// RTMP once the ingest restarts (after rtmp_rejoin_delay); the client
  /// flushes its pipeline a second time, and that flush is accounted in
  /// the RTMP delay breakdown. Off by default: the measured app never
  /// returned migrated viewers to the low-delay path.
  bool rtmp_rejoin_after_restart = false;
  /// Restart -> the app learns the ingest is back and re-attaches.
  DurationUs rtmp_rejoin_delay = 2 * time::kSecond;

  /// Concurrent-viewer capacity applied to every EdgeServer this session
  /// creates. 0 (default) = unbounded — failover degenerates to PR 3's
  /// single-nearest-edge re-anycast, bit for bit. Finite values gate
  /// *failover admissions only*: organic anycast joins are load-blind
  /// (they still count toward load), so a popular edge can already be
  /// over capacity when a blackout's herd arrives and refuse all of it.
  std::uint64_t edge_capacity = 0;
  /// How many candidate edges (by the (distance, id) ranking) a failover
  /// may consider before orphaning: the spill rings. 0 = the entire
  /// footprint.
  std::uint32_t failover_spill_k = 0;

  /// Proactive control plane (control/health_monitor.h). Disabled (the
  /// default): nothing is constructed, no RNG substream is forked, and
  /// the session is bit-for-bit identical to the pre-control-plane
  /// behaviour. Enabled: a HealthMonitor scrapes every instantiated edge
  /// on scrape_interval, the SteeringPolicy publishes anycast-map
  /// overrides steer_latency later, and new joins + failover re-anycast
  /// route around draining/dead edges before client timeouts fire. A
  /// published death proactively migrates the attached viewers. With
  /// control.overlay_assist, footprint saturation activates the overlay
  /// P2P mesh as edge offload: failovers that would orphan purely for
  /// capacity are parked on the mesh instead.
  control::ControlPlaneConfig control{};

  std::uint64_t seed = 1;
};

class BroadcastSession {
 public:
  struct ViewerResult {
    bool hls = false;
    bool orphaned = false;    // failover found no live edge to land on
    geo::GeoPoint location;
    DatacenterId attachment;  // ingest (RTMP) or edge (HLS) site
    double stall_ratio = 0.0;
    double mean_buffering_s = 0.0;
    std::uint64_t units_played = 0;
    std::uint64_t units_discarded = 0;
  };

  BroadcastSession(sim::Simulator& sim, const geo::DatacenterCatalog& catalog,
                   SessionConfig config);
  ~BroadcastSession();

  BroadcastSession(const BroadcastSession&) = delete;
  BroadcastSession& operator=(const BroadcastSession&) = delete;

  /// Schedules the whole broadcast; results are valid once the simulator
  /// has drained (sim.run()) and finalize() has been called.
  void start();

  /// Folds per-viewer playback stats (client-buffering delay) into the
  /// breakdowns. Call once after the simulator drains; idempotent.
  void finalize();

  /// Adds a viewer dynamically (possibly mid-broadcast). RTMP viewers
  /// attach to the broadcaster's ingest site, HLS viewers to their
  /// nearest edge via anycast. `steer_avoid` is a SORTED span of edge
  /// site ids published as draining/dead by some control plane (the
  /// service-wide union LivestreamService assembles): organic joins
  /// route around them exactly like this session's own published
  /// overrides. An empty span (the default) is bit-for-bit the
  /// historical behaviour. Returns the viewer's index.
  std::size_t add_viewer(const geo::GeoPoint& location, bool hls,
                         std::span<const std::uint64_t> steer_avoid = {});

  /// Detaches a viewer: HLS polling stops, RTMP pushes are no longer
  /// delivered. Playback stats remain queryable. Idempotent.
  void remove_viewer(std::size_t index);

  std::size_t viewer_count() const noexcept { return viewers_.size(); }

  /// Live playback state of a viewer (for feedback/interaction models).
  const client::PlaybackSchedule& viewer_playback(std::size_t index) const {
    return *viewers_.at(index)->playback;
  }
  bool viewer_is_hls(std::size_t index) const {
    return viewers_.at(index)->hls;
  }

  // --- results ---
  const DelayBreakdown& rtmp_breakdown() const noexcept { return rtmp_; }
  const DelayBreakdown& hls_breakdown() const noexcept { return hls_; }
  std::vector<ViewerResult> viewer_results() const;

  const cdn::IngestServer& ingest() const noexcept { return *ingest_; }
  cdn::IngestServer& ingest() noexcept { return *ingest_; }
  DatacenterId ingest_site() const noexcept { return ingest_site_; }

  // --- resilience ---
  /// Injects an additional fault script into the RUNNING session (event
  /// times relative to now). This is how LivestreamService shares one
  /// expanded scenario across many concurrent broadcasts. An empty
  /// schedule is a no-op (no injector, no RNG draws).
  void inject_faults(const fault::FaultSchedule& schedule);

  /// RTMP viewers migrated to the HLS path after an ingest crash.
  std::uint64_t rtmp_failovers() const noexcept { return rtmp_failovers_; }
  /// Crash -> first HLS chunk on the migrated viewer's screen, seconds.
  const stats::Accumulator& failover_latency_s() const noexcept {
    return failover_latency_s_;
  }
  /// HLS viewers re-anycast to another edge after their PoP died.
  std::uint64_t edge_failovers() const noexcept { return edge_failovers_; }
  /// Edge death -> first chunk on screen via the new edge, seconds
  /// (detection + re-anycast + re-anchored first chunk: the second
  /// pipeline flush is inside this number).
  const stats::Accumulator& edge_failover_latency_s() const noexcept {
    return edge_failover_latency_s_;
  }
  /// Viewers whose failover found no live edge at all (global blackout).
  std::uint64_t orphaned_viewers() const noexcept { return orphaned_viewers_; }
  /// Migrated RTMP viewers that re-attached to RTMP after the ingest
  /// restarted (rtmp_rejoin_after_restart).
  std::uint64_t rtmp_rejoins() const noexcept { return rtmp_rejoins_; }
  /// Failover admissions that overflowed past at least one live-but-full
  /// edge (edge_capacity): the viewer spilled outward to a farther ring.
  std::uint64_t edge_spills() const noexcept { return edge_spills_; }
  /// Per spill: extra kilometres past the nearest *live* edge the viewer
  /// was pushed to (the load-aware re-anycast overshoot).
  const stats::Accumulator& spill_distance_km() const noexcept {
    return spill_distance_km_;
  }
  /// Peak concurrent attachments per edge site this session touched,
  /// sorted by site id (deterministic) — where the blackout's herd piled
  /// up.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> edge_peak_loads()
      const;
  /// HLS downloads discarded as corrupt (client re-fetches on next poll).
  std::uint64_t corrupted_downloads() const noexcept {
    return corrupted_downloads_;
  }
  /// Faults dispatched so far (0 when every schedule is empty).
  std::uint64_t faults_injected() const noexcept {
    std::uint64_t n = 0;
    for (const auto& inj : injectors_) n += inj->injected();
    return n;
  }

  // --- control plane ---
  /// The session's control plane (nullptr unless config.control.enabled).
  const control::ControlPlane* control_plane() const noexcept {
    return control_.get();
  }
  /// Viewers migrated off a published-dead edge by the control plane
  /// BEFORE their own poll timeout would have noticed (subset of
  /// edge_failovers()).
  std::uint64_t proactive_migrations() const noexcept {
    return proactive_migrations_;
  }
  /// Capacity orphans parked on the overlay mesh instead of freezing.
  std::uint64_t overlay_assists() const noexcept { return overlay_assists_; }
  /// Organic joins that landed somewhere OTHER than their nearest live
  /// edge because a published drain/dead verdict (this session's own or
  /// the service-wide union passed into add_viewer) steered them away.
  std::uint64_t steered_joins() const noexcept { return steered_joins_; }
  /// The assist mesh (nullptr until the first rescue armed it).
  const overlay::P2PMesh* assist_mesh() const noexcept {
    return assist_mesh_.get();
  }

  /// Edge servers created by this session (keyed by datacenter id).
  const std::unordered_map<std::uint64_t, std::unique_ptr<cdn::EdgeServer>>&
  edges() const noexcept {
    return edges_;
  }

  /// Chunk completion times at the ingest, by chunk seq (Fig 15 numerator).
  const std::unordered_map<std::uint64_t, TimeUs>& chunk_completed_at()
      const noexcept {
    return chunk_completed_;
  }

  /// One chunk's trip through the Figure 10 timestamps (HLS path), as
  /// observed by the first HLS viewer. Populated when
  /// SessionConfig::record_journeys is set.
  struct ChunkJourney {
    std::uint64_t seq = 0;
    TimeUs captured = 0;        // (5) first frame leaves the camera
    TimeUs completed = 0;       // (7) chunk sealed at the ingest
    TimeUs available = 0;       // (11) cached at the viewer's edge
    TimeUs polled = 0;          // (14) the poll that found it hits the edge
    TimeUs received = 0;        // (15) response lands on the viewer
  };
  const std::vector<ChunkJourney>& journeys() const noexcept {
    return journeys_;
  }

 private:
  struct Viewer {
    bool hls = false;
    bool active = true;
    bool was_rtmp = false;  // joined on the RTMP path (rejoin candidate)
    bool orphaned = false;  // failover found no live edge; playback froze
    geo::GeoPoint location;
    DatacenterId attachment{};
    std::unique_ptr<net::Link> link;
    std::unique_ptr<client::PlaybackSchedule> playback;
    /// Schedules retired at each pipeline flush (RTMP->HLS failover,
    /// edge-to-edge re-anycast, RTMP rejoin): `playback` is replaced and
    /// the old phase is kept for result accounting, tagged with the path
    /// it covered.
    struct RetiredPhase {
      std::unique_ptr<client::PlaybackSchedule> playback;
      bool hls = false;
    };
    std::vector<RetiredPhase> retired;
    /// Index into viewers_ (the wheel's opaque member tag).
    std::size_t index = 0;
    /// Tick source, one of three mutually exclusive lanes:
    ///  * wheel lane (config.poll_wheel): cohort names this viewer's slot
    ///    on cohort_wheel, the wheel owned by its attached edge;
    ///  * timer lane (!config.poll_wheel): poll_process, one periodic
    ///    timer on the same quantized grid;
    ///  * solo retry lane (config.hls_poll_retry, after a timeout):
    ///    retry_event, one-shot attempts paced by PollRetryState.
    std::unique_ptr<sim::PeriodicProcess> poll_process;  // HLS only
    sim::PollWheel* cohort_wheel = nullptr;
    sim::CohortSlot cohort{};
    sim::EventHandle retry_event{};
    std::unique_ptr<client::PollRetryState> retry;  // lazily, first failure
    std::unique_ptr<Rng> retry_rng;
    std::int64_t last_seq = -1;
    /// One request in flight. While wheel-attached the authoritative bit
    /// lives in the wheel's SoA cohort ledger; this bool covers the timer
    /// and solo lanes (and viewers whose slot was just torn down).
    bool poll_outstanding = false;
    /// Attachment epoch: bumped at every migration so responses in flight
    /// from a previous attachment are dropped (the client closed that
    /// connection), never delivered into the new pipeline.
    std::uint64_t generation = 0;
    /// Set while a failover is in flight: the death time, cleared (and
    /// the latency recorded) when the first post-migration chunk lands.
    TimeUs failover_crash_at = -1;
    /// Which ledger the in-flight failover belongs to (RTMP->HLS vs
    /// edge-to-edge).
    bool failover_from_edge = false;
    /// Overlay-assist parking: the viewer lives on the P2P mesh instead
    /// of an edge (capacity orphan rescued by the control plane).
    bool on_mesh = false;
    std::uint64_t mesh_peer = 0;
  };

  /// One failover/anycast admission decision by the spill policy.
  struct EdgeSelection {
    const geo::Datacenter* dc = nullptr;  // nullptr: every candidate
                                          // was dark, excluded, or full
    bool spilled = false;      // skipped >= 1 live-but-full nearer edge
    bool saw_full = false;     // >= 1 live-but-full candidate existed
                               // (set even when nothing was chosen: the
                               // capacity-orphan signal the overlay
                               // assist rescues)
    double distance_km = 0.0;  // viewer -> admitted edge
    double overshoot_km = 0.0; // admitted minus nearest-live distance
    bool steered = false;      // skipped >= 1 candidate on a published
                               // drain/dead verdict (own control plane
                               // or the caller's steer_avoid union)
  };

  cdn::EdgeServer& edge_for(DatacenterId site);
  sim::PollWheel& wheel_for(cdn::EdgeServer& edge);
  void attach_rtmp_viewer(Viewer& v);
  void start_hls_polling(Viewer& v);
  /// The shared poll transaction: horizon check, outstanding gate, then
  /// the request leg -> edge poll -> response leg, identical RNG draws
  /// and event structure whichever lane ticked it. Returns false when
  /// polling for this viewer must end (broadcast horizon passed); the
  /// caller tears down its tick source.
  bool poll_tick(Viewer& v, TimeUs tick_time);
  bool poll_outstanding(const Viewer& v) const;
  void set_poll_outstanding(Viewer& v, bool value);
  /// Stops every tick source (wheel slot, timer, solo retry event) and
  /// clears the outstanding flag. Callers owning a migration bump the
  /// generation first so in-flight responses evaporate.
  void teardown_polling(Viewer& v);
  /// Grid geometry shared by the wheel and the per-viewer timers.
  DurationUs poll_slot_width() const noexcept;
  DurationUs effective_poll_interval() const noexcept;
  TimeUs quantized_poll_phase();
  // Solo retry lane (config.hls_poll_retry only).
  void arm_poll_timeout(Viewer& v, std::uint64_t gen);
  void poll_failed(Viewer& v, std::uint64_t gen);
  void poll_succeeded(Viewer& v);
  void record_hls_chunk(Viewer& v, const media::Chunk& c, TimeUs poll_at_edge,
                        TimeUs recv_time, DurationUs download_delay);
  void arm_faults();
  void register_fault_handlers(fault::FaultInjector& injector);
  void on_ingest_crash(const fault::FaultEvent& e);
  void on_edge_down(const fault::FaultEvent& e);
  void migrate_rtmp_viewer(Viewer& v, TimeUs crashed_at);
  void migrate_hls_viewer(Viewer& v, TimeUs died_at,
                          std::span<const std::uint64_t> exclude);
  void rejoin_rtmp_viewer(Viewer& v);
  void admit_to_edge(Viewer& v, const EdgeSelection& sel);
  void detach_from_edge(Viewer& v);
  /// The spill policy. Candidates of role kEdge ranked by (distance, id)
  /// — the explicit catalog tie-break — truncated to
  /// config_.failover_spill_k (0 = all). A candidate is passed over when
  /// its id is in `exclude` (the PoP that just failed this viewer, plus
  /// the triggering event's dark set — it must never be re-picked even
  /// if its down window lapsed mid-detection), when its site is inside a
  /// down window at `now`, or — if `respect_capacity` — when its
  /// EdgeServer is full. The first survivor wins; `spilled` is set when
  /// a nearer live candidate was skipped only for being full. With no
  /// outages, no exclusions, and unlimited capacity this is exactly
  /// catalog_.nearest(p, kEdge) (same tie-break), so fault-free runs are
  /// bit-identical. `steer_avoid` (sorted site ids) marks candidates a
  /// published verdict steers around — skipped like control_->avoid,
  /// but attributed via EdgeSelection::steered.
  EdgeSelection nearest_live_edge(
      const geo::GeoPoint& p, TimeUs now,
      std::span<const std::uint64_t> exclude = {},
      bool respect_capacity = true,
      std::span<const std::uint64_t> steer_avoid = {}) const;
  bool edge_site_down(std::uint64_t site, TimeUs now) const noexcept;
  // Control plane (config_.control.enabled only).
  void start_control_plane();
  /// The scrape source: one EdgeSample per instantiated edge, sorted by
  /// site id — the monitor's determinism contract.
  std::vector<control::EdgeSample> scrape_edges() const;
  /// Published steer decision landed (steer_latency after it was made).
  void on_steer(const control::SteeringPolicy::Transition& t);
  /// Overlay assist: park a capacity orphan on the P2P mesh. Returns
  /// false when the assist is not armed (the caller orphans as before).
  bool rescue_on_mesh(Viewer& v);

  sim::Simulator& sim_;
  const geo::DatacenterCatalog& catalog_;
  SessionConfig config_;
  Rng rng_;
  TimeUs start_time_ = 0;  // set by start(); media clock origin

  DatacenterId ingest_site_{};
  std::unique_ptr<cdn::IngestServer> ingest_;
  std::unique_ptr<net::FifoUplink> uplink_;
  std::unique_ptr<media::FrameSource> source_;
  std::unique_ptr<sim::PeriodicProcess> frame_process_;

  std::unordered_map<std::uint64_t, std::unique_ptr<cdn::EdgeServer>> edges_;
  std::vector<std::unique_ptr<sim::PeriodicProcess>> crawler_processes_;
  std::vector<std::unique_ptr<Viewer>> viewers_;
  Viewer* first_hls_viewer_ = nullptr;  // journey-ledger subject

  // Fault state (all inert when config_.faults is empty and nothing was
  // injected live). Several injectors can coexist: one from the config
  // schedule plus one per inject_faults() call.
  std::vector<std::unique_ptr<fault::FaultInjector>> injectors_;
  /// Per-site outage horizon: site -> sim time its current down window
  /// ends. Covers catalog sites with no EdgeServer object yet, so
  /// re-anycast avoids dark PoPs the session never touched.
  std::unordered_map<std::uint64_t, TimeUs> edge_down_until_;
  TimeUs corruption_until_ = 0;   // HLS downloads may corrupt before this
  double corruption_prob_ = 0.0;
  std::uint64_t corrupted_downloads_ = 0;
  std::uint64_t rtmp_failovers_ = 0;
  std::uint64_t edge_failovers_ = 0;
  std::uint64_t orphaned_viewers_ = 0;
  std::uint64_t rtmp_rejoins_ = 0;
  std::uint64_t edge_spills_ = 0;
  std::uint64_t steered_joins_ = 0;
  stats::Accumulator failover_latency_s_;
  stats::Accumulator edge_failover_latency_s_;
  stats::Accumulator spill_distance_km_;

  // Control plane (null unless config_.control.enabled).
  std::unique_ptr<control::ControlPlane> control_;
  // Overlay-assist mesh, created lazily at the first rescue.
  std::unique_ptr<overlay::P2PMesh> assist_mesh_;
  std::uint64_t overlay_assists_ = 0;
  std::uint64_t proactive_migrations_ = 0;

  // Measurement state.
  bool finalized_ = false;
  DelayBreakdown rtmp_;
  DelayBreakdown hls_;
  std::unordered_map<std::uint64_t, TimeUs> keyframe_arrival_;  // frame seq
  std::unordered_map<std::uint64_t, TimeUs> chunk_completed_;   // chunk seq
  std::vector<ChunkJourney> journeys_;
};

}  // namespace livesim::core

#endif  // LIVESIM_CORE_BROADCAST_SESSION_H
