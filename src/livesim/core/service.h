// LivestreamService: the whole application, dynamically.
//
// Manages many concurrent broadcasts the way Periscope does: a global
// public list of live broadcasts, an ingest assignment per broadcaster,
// the "first N viewers get RTMP + comment rights" admission policy with
// HLS overflow, and a PubNub-style message channel per broadcast carrying
// hearts and comments whose *feedback lag* (how stale the moment a viewer
// reacted to is by the time the broadcaster sees the reaction) is tracked
// -- the quantity the paper's introduction argues makes or breaks
// interactivity.
#ifndef LIVESIM_CORE_SERVICE_H
#define LIVESIM_CORE_SERVICE_H

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "livesim/core/broadcast_session.h"
#include "livesim/crawler/crawler.h"
#include "livesim/fault/scenario.h"
#include "livesim/msg/pubsub.h"
#include "livesim/sim/batch.h"
#include "livesim/stats/accumulator.h"
#include "livesim/workload/crowd.h"

namespace livesim::core {

class LivestreamService {
 public:
  struct Config {
    std::uint32_t rtmp_slot_cap = 100;    // the paper's first-100 policy
    std::uint32_t commenter_cap = 100;
    SessionConfig session_defaults{};     // viewer counts ignored; dynamic
    std::uint64_t seed = 1;
  };

  struct ViewerHandle {
    BroadcastId broadcast{};
    std::size_t viewer_index = 0;
    bool rtmp = false;         // low-latency path?
    bool can_comment = false;  // within the commenter cap?
    bool valid() const noexcept { return broadcast.valid(); }
  };

  struct BroadcastInfo {
    BroadcastId id{};
    geo::GeoPoint broadcaster_location{};
    TimeUs started_at = 0;
    DurationUs length = 0;
    bool live = false;
    // Private broadcasts (§2.1): invite-only, and -- per §7.2 -- the one
    // place Periscope pays for RTMPS, so they are tamper-proof.
    bool is_private = false;
    bool encrypted_transport = false;
    std::uint32_t rtmp_viewers = 0;
    std::uint32_t hls_viewers = 0;
    std::uint64_t hearts = 0;
    std::uint64_t comments = 0;
  };

  LivestreamService(sim::Simulator& sim, const geo::DatacenterCatalog& catalog,
                    Config config);
  ~LivestreamService();

  LivestreamService(const LivestreamService&) = delete;
  LivestreamService& operator=(const LivestreamService&) = delete;

  /// Starts a broadcast now; it appears on the global list until it ends.
  BroadcastId start_broadcast(const geo::GeoPoint& location,
                              DurationUs length);

  /// Starts a private broadcast: only `invitees` may join, it never
  /// appears on the global list, and video rides RTMPS (§7.2 -- "for
  /// scalability, Periscope uses RTMP/HLS for all public broadcasts and
  /// only uses RTMPS for private broadcasts").
  BroadcastId start_private_broadcast(const geo::GeoPoint& location,
                                      DurationUs length,
                                      std::vector<UserId> invitees);

  /// A viewer joins a live broadcast: the first `rtmp_slot_cap` joiners
  /// get the RTMP path (and, within `commenter_cap`, comment rights);
  /// everyone after lands on HLS. Returns nullopt if the broadcast is not
  /// live.
  std::optional<ViewerHandle> join(BroadcastId id,
                                   const geo::GeoPoint& location);

  /// Identity-carrying join: required for private broadcasts (the viewer
  /// must be on the invite list); equivalent to join() for public ones.
  std::optional<ViewerHandle> join_as(BroadcastId id, UserId viewer,
                                      const geo::GeoPoint& location);

  /// Viewer leaves the broadcast (their RTMP slot is not recycled -- the
  /// paper: only "the first 100 to join" ever get the low-delay path).
  void leave(const ViewerHandle& viewer);

  /// Viewer taps a heart: reacts to the media moment on their screen; the
  /// broadcaster receives it over the message channel and the service
  /// records the feedback lag (broadcaster's live position minus the
  /// reacted-to moment at receipt).
  void send_heart(const ViewerHandle& viewer);

  /// Viewer posts a comment (ignored unless the handle has comment
  /// rights -- the cap the paper criticizes).
  bool send_comment(const ViewerHandle& viewer, const std::string& text);

  /// Injects one correlated fault scenario into EVERY live broadcast: the
  /// scenario is expanded against the shared catalog exactly once (so all
  /// sessions see the same outage — one regional blackout, not one per
  /// broadcast), then handed to each live session via
  /// BroadcastSession::inject_faults with event times relative to now.
  /// An empty scenario expands to an empty schedule and injects nothing
  /// (bit-for-bit inert). Returns the number of sessions that received
  /// the schedule.
  std::size_t inject_scenario(const fault::FaultScenario& scenario,
                              std::uint64_t seed);

  // --- crowd consumption (workload/crowd.h -> service lifecycles) ------

  struct CrowdDriveConfig {
    /// Join/leave instants are quantized UP to multiples of this window
    /// and batched: one engine event per non-empty window drives the
    /// whole storm (sim/batch.h), so a 100k-viewer join storm costs
    /// O(windows) engine events, not O(viewers). The window is also the
    /// hard admission-latency bound the crowd bench pins.
    DurationUs batch_window = 500 * time::kMillisecond;
    /// Viewer-location substream: record i's location is drawn from
    /// substream_seed(seed, i) at schedule time, in record order, so
    /// the drive is byte-identical at every thread count.
    std::uint64_t seed = 1;
  };

  struct CrowdDriveStats {
    std::uint64_t records = 0;
    std::uint64_t joins = 0;       // admitted into a live broadcast
    std::uint64_t late_joins = 0;  // channel already ended (or unmapped)
    std::uint64_t leaves = 0;      // early-leave ops applied to a handle
    std::uint64_t batches = 0;     // engine callbacks fired so far
    /// Batch boundary minus the record's requested join instant,
    /// seconds: what batching cost each admitted viewer. max <
    /// batch_window by construction (the quantize contract).
    stats::Accumulator admission_latency_s;
  };

  /// Wires a generated crowd into broadcast/viewer lifecycles:
  /// `records[i].channel` indexes `channels`; each record joins that
  /// broadcast at its (quantized) join instant and leaves again at
  /// join + stay, churn flowing through the same leave()/poll-wheel
  /// detach path organic viewers use. A leave is pushed to at least
  /// one window past its join, so every admitted viewer lives on its
  /// edge's wheel for >= one full window. Joins consult the published
  /// verdict union (steered placement) once per batch. Record times
  /// are relative to now. Returns a drive id for crowd_stats(); stats
  /// are final once the simulator drains.
  std::size_t drive_crowd(std::span<const BroadcastId> channels,
                          std::span<const workload::CrowdRecord> records,
                          const CrowdDriveConfig& config);
  std::size_t drive_crowd(std::span<const BroadcastId> channels,
                          std::span<const workload::CrowdRecord> records) {
    return drive_crowd(channels, records, CrowdDriveConfig{});
  }
  const CrowdDriveStats& crowd_stats(std::size_t drive) const {
    return drives_.at(drive)->stats;
  }

  /// Union of the published anycast-map overrides (draining/dead sites)
  /// across every live session's control plane, sorted and deduped: the
  /// service-wide verdict map organic joins are steered by. Empty when
  /// no session runs a control plane.
  std::vector<std::uint64_t> published_avoid() const;

  // --- introspection ---
  const crawler::GlobalList& global_list() const noexcept { return list_; }
  std::optional<BroadcastInfo> info(BroadcastId id) const;
  BroadcastSession* session(BroadcastId id);

  /// Feedback lag (seconds) across all hearts delivered so far, split by
  /// the sender's delivery path.
  const stats::Accumulator& rtmp_feedback_lag_s() const noexcept {
    return rtmp_lag_;
  }
  const stats::Accumulator& hls_feedback_lag_s() const noexcept {
    return hls_lag_;
  }
  std::uint64_t comments_rejected() const noexcept {
    return comments_rejected_;
  }

  // --- capacity / spill introspection (load-aware re-anycast) ---
  // Aggregated over every broadcast the service has started (live or
  // ended). Capacity knobs flow in via
  // Config::session_defaults.edge_capacity / .failover_spill_k, so a
  // scenario injected through inject_scenario() produces the hotspot
  // pile-ups these ledgers expose.

  /// Failover admissions that overflowed past a live-but-full edge.
  std::uint64_t edge_spills() const;
  /// Extra kilometres past the nearest live edge, per spill, merged
  /// across broadcasts in id order (deterministic).
  stats::Accumulator spill_distance_km() const;
  /// Per edge site: summed per-broadcast peak concurrent attachments,
  /// sorted by site id. An upper bound on the true simultaneous peak
  /// (per-broadcast peaks need not coincide), and exactly the hotspot
  /// ranking a blackout pile-up produces.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> edge_peak_loads()
      const;

  // --- control-plane introspection (session_defaults.control.enabled) --
  // Aggregated over every broadcast, like the spill ledgers above. All
  // zero when the control plane is disabled.

  /// Drain decisions (healthy -> draining) across all sessions.
  std::uint64_t control_drains() const;
  /// Viewers proactively migrated off a published-dead edge before their
  /// own client timeout noticed.
  std::uint64_t proactive_migrations() const;
  /// Capacity orphans parked on the overlay-assist mesh.
  std::uint64_t overlay_assists() const;
  /// Organic joins routed around a published drain/dead verdict (their
  /// nearest live edge was under an override, own-session or another
  /// session's, so they landed farther out).
  std::uint64_t steered_joins() const;

 private:
  struct Broadcast {
    BroadcastInfo info;
    std::unique_ptr<BroadcastSession> session;
    std::unique_ptr<msg::Channel> channel;
    std::unique_ptr<net::Link> broadcaster_msg_link;
    msg::CommenterPolicy commenters{100};
    std::unordered_set<std::uint64_t> invitees;  // private broadcasts only
  };

  /// One drive_crowd() invocation: the batched timeline, the per-record
  /// pre-drawn locations, and the handles the leave ops consume.
  struct CrowdDrive {
    CrowdDriveConfig config;
    std::vector<BroadcastId> channels;
    std::vector<workload::CrowdRecord> records;
    std::vector<geo::GeoPoint> locations;
    std::vector<ViewerHandle> handles;
    std::unique_ptr<sim::BatchTimeline> timeline;
    TimeUs origin = 0;  // sim time the drive was scheduled
    CrowdDriveStats stats;
  };

  BroadcastId start_broadcast_impl(const geo::GeoPoint& location,
                                   DurationUs length, bool is_private,
                                   std::vector<UserId> invitees);

  Broadcast* live_broadcast(BroadcastId id);
  void deliver_feedback(Broadcast& b, const msg::Message& m, bool via_rtmp);
  std::optional<ViewerHandle> join_steered(
      BroadcastId id, UserId viewer, const geo::GeoPoint& location,
      std::span<const std::uint64_t> avoid);
  void fire_crowd_batch(CrowdDrive& drive, TimeUs at,
                        std::span<const std::uint64_t> ops);

  sim::Simulator& sim_;
  const geo::DatacenterCatalog& catalog_;
  Config config_;
  Rng rng_;
  crawler::GlobalList list_;
  std::unordered_map<std::uint64_t, std::unique_ptr<Broadcast>> broadcasts_;
  std::uint64_t next_id_ = 0;
  stats::Accumulator rtmp_lag_;
  stats::Accumulator hls_lag_;
  std::uint64_t comments_rejected_ = 0;
  std::vector<std::unique_ptr<CrowdDrive>> drives_;
};

}  // namespace livesim::core

#endif  // LIVESIM_CORE_SERVICE_H
