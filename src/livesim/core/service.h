// LivestreamService: the whole application, dynamically.
//
// Manages many concurrent broadcasts the way Periscope does: a global
// public list of live broadcasts, an ingest assignment per broadcaster,
// the "first N viewers get RTMP + comment rights" admission policy with
// HLS overflow, and a PubNub-style message channel per broadcast carrying
// hearts and comments whose *feedback lag* (how stale the moment a viewer
// reacted to is by the time the broadcaster sees the reaction) is tracked
// -- the quantity the paper's introduction argues makes or breaks
// interactivity.
#ifndef LIVESIM_CORE_SERVICE_H
#define LIVESIM_CORE_SERVICE_H

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "livesim/core/broadcast_session.h"
#include "livesim/crawler/crawler.h"
#include "livesim/fault/scenario.h"
#include "livesim/msg/pubsub.h"
#include "livesim/stats/accumulator.h"

namespace livesim::core {

class LivestreamService {
 public:
  struct Config {
    std::uint32_t rtmp_slot_cap = 100;    // the paper's first-100 policy
    std::uint32_t commenter_cap = 100;
    SessionConfig session_defaults{};     // viewer counts ignored; dynamic
    std::uint64_t seed = 1;
  };

  struct ViewerHandle {
    BroadcastId broadcast{};
    std::size_t viewer_index = 0;
    bool rtmp = false;         // low-latency path?
    bool can_comment = false;  // within the commenter cap?
    bool valid() const noexcept { return broadcast.valid(); }
  };

  struct BroadcastInfo {
    BroadcastId id{};
    geo::GeoPoint broadcaster_location{};
    TimeUs started_at = 0;
    DurationUs length = 0;
    bool live = false;
    // Private broadcasts (§2.1): invite-only, and -- per §7.2 -- the one
    // place Periscope pays for RTMPS, so they are tamper-proof.
    bool is_private = false;
    bool encrypted_transport = false;
    std::uint32_t rtmp_viewers = 0;
    std::uint32_t hls_viewers = 0;
    std::uint64_t hearts = 0;
    std::uint64_t comments = 0;
  };

  LivestreamService(sim::Simulator& sim, const geo::DatacenterCatalog& catalog,
                    Config config);
  ~LivestreamService();

  LivestreamService(const LivestreamService&) = delete;
  LivestreamService& operator=(const LivestreamService&) = delete;

  /// Starts a broadcast now; it appears on the global list until it ends.
  BroadcastId start_broadcast(const geo::GeoPoint& location,
                              DurationUs length);

  /// Starts a private broadcast: only `invitees` may join, it never
  /// appears on the global list, and video rides RTMPS (§7.2 -- "for
  /// scalability, Periscope uses RTMP/HLS for all public broadcasts and
  /// only uses RTMPS for private broadcasts").
  BroadcastId start_private_broadcast(const geo::GeoPoint& location,
                                      DurationUs length,
                                      std::vector<UserId> invitees);

  /// A viewer joins a live broadcast: the first `rtmp_slot_cap` joiners
  /// get the RTMP path (and, within `commenter_cap`, comment rights);
  /// everyone after lands on HLS. Returns nullopt if the broadcast is not
  /// live.
  std::optional<ViewerHandle> join(BroadcastId id,
                                   const geo::GeoPoint& location);

  /// Identity-carrying join: required for private broadcasts (the viewer
  /// must be on the invite list); equivalent to join() for public ones.
  std::optional<ViewerHandle> join_as(BroadcastId id, UserId viewer,
                                      const geo::GeoPoint& location);

  /// Viewer leaves the broadcast (their RTMP slot is not recycled -- the
  /// paper: only "the first 100 to join" ever get the low-delay path).
  void leave(const ViewerHandle& viewer);

  /// Viewer taps a heart: reacts to the media moment on their screen; the
  /// broadcaster receives it over the message channel and the service
  /// records the feedback lag (broadcaster's live position minus the
  /// reacted-to moment at receipt).
  void send_heart(const ViewerHandle& viewer);

  /// Viewer posts a comment (ignored unless the handle has comment
  /// rights -- the cap the paper criticizes).
  bool send_comment(const ViewerHandle& viewer, const std::string& text);

  /// Injects one correlated fault scenario into EVERY live broadcast: the
  /// scenario is expanded against the shared catalog exactly once (so all
  /// sessions see the same outage — one regional blackout, not one per
  /// broadcast), then handed to each live session via
  /// BroadcastSession::inject_faults with event times relative to now.
  /// An empty scenario expands to an empty schedule and injects nothing
  /// (bit-for-bit inert). Returns the number of sessions that received
  /// the schedule.
  std::size_t inject_scenario(const fault::FaultScenario& scenario,
                              std::uint64_t seed);

  // --- introspection ---
  const crawler::GlobalList& global_list() const noexcept { return list_; }
  std::optional<BroadcastInfo> info(BroadcastId id) const;
  BroadcastSession* session(BroadcastId id);

  /// Feedback lag (seconds) across all hearts delivered so far, split by
  /// the sender's delivery path.
  const stats::Accumulator& rtmp_feedback_lag_s() const noexcept {
    return rtmp_lag_;
  }
  const stats::Accumulator& hls_feedback_lag_s() const noexcept {
    return hls_lag_;
  }
  std::uint64_t comments_rejected() const noexcept {
    return comments_rejected_;
  }

  // --- capacity / spill introspection (load-aware re-anycast) ---
  // Aggregated over every broadcast the service has started (live or
  // ended). Capacity knobs flow in via
  // Config::session_defaults.edge_capacity / .failover_spill_k, so a
  // scenario injected through inject_scenario() produces the hotspot
  // pile-ups these ledgers expose.

  /// Failover admissions that overflowed past a live-but-full edge.
  std::uint64_t edge_spills() const;
  /// Extra kilometres past the nearest live edge, per spill, merged
  /// across broadcasts in id order (deterministic).
  stats::Accumulator spill_distance_km() const;
  /// Per edge site: summed per-broadcast peak concurrent attachments,
  /// sorted by site id. An upper bound on the true simultaneous peak
  /// (per-broadcast peaks need not coincide), and exactly the hotspot
  /// ranking a blackout pile-up produces.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> edge_peak_loads()
      const;

  // --- control-plane introspection (session_defaults.control.enabled) --
  // Aggregated over every broadcast, like the spill ledgers above. All
  // zero when the control plane is disabled.

  /// Drain decisions (healthy -> draining) across all sessions.
  std::uint64_t control_drains() const;
  /// Viewers proactively migrated off a published-dead edge before their
  /// own client timeout noticed.
  std::uint64_t proactive_migrations() const;
  /// Capacity orphans parked on the overlay-assist mesh.
  std::uint64_t overlay_assists() const;

 private:
  struct Broadcast {
    BroadcastInfo info;
    std::unique_ptr<BroadcastSession> session;
    std::unique_ptr<msg::Channel> channel;
    std::unique_ptr<net::Link> broadcaster_msg_link;
    msg::CommenterPolicy commenters{100};
    std::unordered_set<std::uint64_t> invitees;  // private broadcasts only
  };

  BroadcastId start_broadcast_impl(const geo::GeoPoint& location,
                                   DurationUs length, bool is_private,
                                   std::vector<UserId> invitees);

  Broadcast* live_broadcast(BroadcastId id);
  void deliver_feedback(Broadcast& b, const msg::Message& m, bool via_rtmp);

  sim::Simulator& sim_;
  const geo::DatacenterCatalog& catalog_;
  Config config_;
  Rng rng_;
  crawler::GlobalList list_;
  std::unordered_map<std::uint64_t, std::unique_ptr<Broadcast>> broadcasts_;
  std::uint64_t next_id_ = 0;
  stats::Accumulator rtmp_lag_;
  stats::Accumulator hls_lag_;
  std::uint64_t comments_rejected_ = 0;
};

}  // namespace livesim::core

#endif  // LIVESIM_CORE_SERVICE_H
