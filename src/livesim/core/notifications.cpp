#include "livesim/core/notifications.h"

namespace livesim::core {

NotificationService::NotificationService(sim::Simulator& sim,
                                         const social::Graph& graph,
                                         LivestreamService& service,
                                         Params params, Rng rng)
    : sim_(sim), graph_(graph), service_(service), params_(params),
      rng_(rng) {}

void NotificationService::broadcast_started(std::uint32_t broadcaster,
                                            BroadcastId id) {
  for (std::uint32_t follower : graph_.followers_of(broadcaster)) {
    (void)follower;  // identity only matters for the join decision below
    ++sent_;
    if (!rng_.bernoulli(params_.join_probability)) continue;
    const DurationUs when = static_cast<DurationUs>(
        rng_.exponential(static_cast<double>(params_.mean_delivery)) +
        rng_.exponential(static_cast<double>(params_.mean_reaction)));
    const geo::GeoPoint where = geo_.sample(rng_);
    sim_.schedule_in(when, [this, id, where] {
      if (service_.join(id, where)) ++joins_;
    });
  }
}

}  // namespace livesim::core
