#include "livesim/core/broadcast_session.h"

#include <algorithm>
#include <limits>
#include <optional>
#include <utility>

namespace livesim::core {

namespace {
// Wire overhead per RTMP frame message (type + lengths + metadata).
constexpr std::size_t kFrameHeaderBytes = 64;
// Connect handshake: HTTPS token fetch + RTMP connect, sent ahead of the
// first frame on the same FIFO uplink, so session setup delays frame 1.
constexpr std::size_t kConnectBytes = 4096;
// HLS poll request and playlist response sizes.
constexpr std::size_t kPollRequestBytes = 400;
constexpr std::size_t kPlaylistBytes = 1200;
}  // namespace

BroadcastSession::BroadcastSession(sim::Simulator& sim,
                                   const geo::DatacenterCatalog& catalog,
                                   SessionConfig config)
    : sim_(sim), catalog_(catalog), config_(std::move(config)),
      rng_(config_.seed) {
  ingest_site_ =
      catalog_.nearest(config_.broadcaster_location, geo::CdnRole::kIngest).id;
  ingest_ = std::make_unique<cdn::IngestServer>(
      sim_, ingest_site_, config_.chunker, config_.resources);

  // Broadcaster uplink: last-mile profile + wide-area leg to the ingest.
  auto uplink_params = config_.uplink;
  const double km = geo::haversine_km(
      config_.broadcaster_location, catalog_.get(ingest_site_).location);
  uplink_params.link.base_delay +=
      config_.latency.mean_delay(km) + config_.device_pipeline;
  uplink_ = std::make_unique<net::FifoUplink>(sim_, uplink_params, rng_.fork());

  source_ = std::make_unique<media::FrameSource>(config_.encoder, rng_.fork());
}

BroadcastSession::~BroadcastSession() = default;

cdn::EdgeServer& BroadcastSession::edge_for(DatacenterId site) {
  auto it = edges_.find(site.value);
  if (it != edges_.end()) return *it->second;

  cdn::W2FModel w2f(catalog_, config_.latency, config_.w2f);
  auto fetch = [this, site, w2f](
                   std::function<void(cdn::EdgeServer::FetchResult)> done) {
    if (ingest_->down()) {
      // Dead origin: the pull times out and the edge retries with backoff.
      sim_.schedule_in(500 * time::kMillisecond,
                       [done = std::move(done)] { done(std::nullopt); });
      return;
    }
    // Sample the origin-pull latency, then deliver a snapshot of the
    // ingest playlist as it stands when the transfer completes.
    const auto& playlist = ingest_->playlist();
    const std::uint64_t bytes =
        playlist.chunks.empty() ? 200000 : playlist.chunks.back().size_bytes;
    Rng local = rng_.fork();
    const DurationUs d =
        w2f.sample_transfer(ingest_site_, site, bytes, local);
    sim_.schedule_in(d, [this, done = std::move(done)] {
      done(ingest_->playlist().chunks);
    });
  };

  auto edge = std::make_unique<cdn::EdgeServer>(sim_, site, std::move(fetch),
                                                config_.resources);
  edge->set_capacity(config_.edge_capacity);
  auto* ptr = edge.get();
  edges_.emplace(site.value, std::move(edge));

  if (config_.crawler_pollers) {
    // The paper's measurement crawler: poll every 0.1 s with its own
    // cursor so chunk availability timestamps are tight (§4.3).
    auto cursor = std::make_shared<std::int64_t>(-1);
    crawler_processes_.push_back(std::make_unique<sim::PeriodicProcess>(
        sim_, sim_.now(), time::from_millis(100),
        [this, ptr, cursor](sim::PeriodicProcess& proc) {
          if (sim_.now() >
              start_time_ + config_.broadcast_len + 20 * time::kSecond) {
            proc.stop();
            return;
          }
          ptr->on_poll(*cursor, [cursor](TimeUs, std::vector<media::Chunk> cs) {
            for (const auto& c : cs)
              if (static_cast<std::int64_t>(c.seq) > *cursor)
                *cursor = static_cast<std::int64_t>(c.seq);
          });
        }));
  }
  return *ptr;
}

void BroadcastSession::start() {
  start_time_ = sim_.now();
  // --- broadcaster ---
  // Connect handshake occupies the uplink before the first frame; this is
  // why frame 1 arrives later than steady-state frames and why small
  // pre-buffers already absorb most jitter (§6).
  uplink_->send(kConnectBytes, [](TimeUs) {});

  const DurationUs frame_interval = config_.encoder.frame_interval;
  const auto total_frames = static_cast<std::uint64_t>(
      config_.broadcast_len / frame_interval);

  frame_process_ = std::make_unique<sim::PeriodicProcess>(
      sim_, start_time_ + frame_interval, frame_interval,
      [this, total_frames](sim::PeriodicProcess& proc) {
        if (proc.ticks() > total_frames) {
          proc.stop();
          uplink_->send(128, [this](TimeUs) { ingest_->on_end_of_stream(); });
          return;
        }
        media::VideoFrame f = source_->next(start_time_);
        const std::size_t bytes = f.size_bytes + kFrameHeaderBytes;
        uplink_->send(bytes, [this, f = std::move(f)](TimeUs arrival) {
          if (f.keyframe) keyframe_arrival_.emplace(f.seq, arrival);
          const double up = time::to_seconds(arrival - f.capture_ts);
          rtmp_.upload_s.add(up);
          ingest_->on_frame(f);
        });
      });

  // Chunk bookkeeping + edge expiry fan-out.
  ingest_->set_chunk_listener([this](const media::Chunk& c) {
    chunk_completed_.emplace(c.seq, c.completed_ts);
    // Per-chunk upload & chunking components (Figure 10: 6->7 via 5).
    if (auto it = keyframe_arrival_.find(c.first_frame_seq);
        it != keyframe_arrival_.end()) {
      hls_.upload_s.add(time::to_seconds(it->second - c.first_capture_ts));
      hls_.chunking_s.add(time::to_seconds(c.completed_ts - it->second));
    }
    for (auto& [site, edge] : edges_) {
      const double km = catalog_.distance_km(ingest_site_, DatacenterId{site});
      const DurationUs notice = config_.latency.sample_delay(km, rng_);
      auto* eptr = edge.get();
      sim_.schedule_in(notice,
                       [eptr, seq = c.seq] { eptr->on_expire_notice(seq); });
    }
    // Overlay assist armed: the origin also seeds the P2P mesh, so
    // parked capacity orphans keep receiving the stream edge-free.
    // (assist_mesh_ stays null without the control plane — no branch
    // taken, no RNG drawn, disabled runs bit-identical.)
    if (assist_mesh_) assist_mesh_->push_chunk(c);
  });

  // --- viewers ---
  geo::UserGeoSampler geo_sampler;
  for (std::uint32_t i = 0; i < config_.rtmp_viewers + config_.hls_viewers;
       ++i) {
    add_viewer(config_.global_viewers ? geo_sampler.sample(rng_)
                                      : config_.broadcaster_location,
               /*hls=*/i >= config_.rtmp_viewers);
  }

  arm_faults();
  start_control_plane();
}

void BroadcastSession::start_control_plane() {
  // Disabled: nothing is constructed and — critically — no substream is
  // forked off rng_, so every subsequent draw matches the
  // pre-control-plane sequence bit for bit.
  if (!config_.control.enabled) return;
  control_ = std::make_unique<control::ControlPlane>(sim_, config_.control,
                                                     rng_.fork());
  control_->set_steer_fn(
      [this](const control::SteeringPolicy::Transition& t) { on_steer(t); });
  control_->start([this] { return scrape_edges(); });
  // Same grace window the crawler pollers use: scraping past the
  // broadcast horizon would keep the engine's queue alive forever.
  sim_.schedule_in(config_.broadcast_len + 20 * time::kSecond,
                   [this] { control_->stop(); });
}

std::vector<control::EdgeSample> BroadcastSession::scrape_edges() const {
  // Sorted-site-id order: the monitor's ledgers, the policy's decision
  // stream, and every publication's engine-FIFO position all inherit
  // their determinism from this sort.
  std::vector<std::uint64_t> sites;
  sites.reserve(edges_.size());
  for (const auto& [site, edge] : edges_) sites.push_back(site);
  std::sort(sites.begin(), sites.end());

  const TimeUs now = sim_.now();
  std::vector<control::EdgeSample> out;
  out.reserve(sites.size());
  for (std::uint64_t site : sites) {
    const cdn::EdgeServer& edge = *edges_.at(site);
    control::EdgeSample s;
    s.site = site;
    s.attached = edge.attached();
    s.capacity = edge.capacity();
    s.fetch_failures = edge.fetch_failures();
    s.failure_streak = edge.fetch_failure_streak();
    s.cohort = edge.poll_wheel() != nullptr ? edge.poll_wheel()->size() : 0;
    // The scrape probe: a dead box answers nothing. The down-window map
    // covers sites whose EdgeServer flag was never flipped.
    s.down = edge.down() || edge_site_down(site, now);
    out.push_back(s);
  }
  return out;
}

void BroadcastSession::on_steer(
    const control::SteeringPolicy::Transition& t) {
  // Draining/dead sites are already routing-invisible via the published
  // override set (nearest_live_edge consults control_->avoid). The one
  // transition that demands action is a published death: migrate the
  // attached viewers NOW instead of letting each burn its own poll
  // timeout + detect window. The dead site rides in `exclude` so the
  // migration can never land back on it, and the later reactive
  // on_edge_down sweep skips these viewers (their attachment changed).
  if (t.to != control::EdgeHealth::kDead) return;
  const std::uint64_t dark[] = {t.site};
  for (auto& vp : viewers_) {
    Viewer& v = *vp;
    if (!v.active || !v.hls || v.orphaned || v.on_mesh) continue;
    if (v.attachment.value != t.site) continue;
    ++proactive_migrations_;
    migrate_hls_viewer(v, t.decided_at, dark);
  }
}

bool BroadcastSession::rescue_on_mesh(Viewer& v) {
  if (!control_ || !control_->overlay_assist_active()) return false;
  if (!assist_mesh_) {
    assist_mesh_ = std::make_unique<overlay::P2PMesh>(
        sim_, config_.control.mesh, control_->fork_rng());
  }
  ++overlay_assists_;
  v.on_mesh = true;
  v.attachment = DatacenterId{};  // no edge holds this viewer
  v.retired.push_back({std::move(v.playback), /*hls=*/true});
  v.playback =
      std::make_unique<client::PlaybackSchedule>(config_.hls_prebuffer);
  auto* viewer = &v;
  const std::uint64_t gen = v.generation;
  v.mesh_peer = assist_mesh_->join(
      [this, viewer, gen](const media::Chunk& c, TimeUs at, std::uint32_t) {
        if (viewer->generation != gen || !viewer->active) return;
        if (static_cast<std::int64_t>(c.seq) <= viewer->last_seq) return;
        viewer->last_seq = static_cast<std::int64_t>(c.seq);
        viewer->playback->on_arrival(at, c.first_capture_ts, c.duration);
      });
  return true;
}

void BroadcastSession::arm_faults() {
  // Empty schedule: no injector, no extra RNG draws, no event-queue
  // traffic -- the session is bit-identical to the pre-fault code.
  if (config_.faults.empty()) return;
  auto injector = std::make_unique<fault::FaultInjector>(sim_, config_.faults);
  register_fault_handlers(*injector);
  injector->arm();
  injectors_.push_back(std::move(injector));
}

void BroadcastSession::inject_faults(const fault::FaultSchedule& schedule) {
  if (schedule.empty()) return;
  auto injector = std::make_unique<fault::FaultInjector>(sim_, schedule);
  register_fault_handlers(*injector);
  injector->arm();  // event times land at now + e.at
  injectors_.push_back(std::move(injector));
}

void BroadcastSession::register_fault_handlers(
    fault::FaultInjector& injector) {
  injector.on(fault::FaultKind::kIngestCrash,
              [this](const fault::FaultEvent& e) { on_ingest_crash(e); });
  injector.on(fault::FaultKind::kEdgeCacheFlush,
              [this](const fault::FaultEvent& e) {
                for (auto& [site, edge] : edges_)
                  if (e.target == 0 || e.target == site) edge->flush_cache();
              });
  injector.on(fault::FaultKind::kLinkDegrade,
              [this](const fault::FaultEvent& e) {
                // Partition on the broadcaster's last mile: frames queue
                // and flood out at recovery (the Fig 16b mechanism).
                uplink_->inject_outage(e.duration);
              });
  injector.on(fault::FaultKind::kChunkCorruption,
              [this](const fault::FaultEvent& e) {
                const TimeUs until = sim_.now() + e.duration;
                if (until > corruption_until_) corruption_until_ = until;
                corruption_prob_ = e.magnitude > 0.0 ? e.magnitude : 0.5;
              });
  injector.on(fault::FaultKind::kEdgeDown,
              [this](const fault::FaultEvent& e) { on_edge_down(e); });
}

void BroadcastSession::on_ingest_crash(const fault::FaultEvent& e) {
  // Scenario-expanded events target concrete sites; a crash somewhere
  // else in the footprint is not this broadcast's ingest dying.
  if (e.target != 0 && e.target != ingest_site_.value) return;
  ingest_->set_down(true);
  const TimeUs crashed_at = sim_.now();
  if (e.duration > 0) {
    sim_.schedule_in(e.duration, [this] {
      ingest_->set_down(false);
      if (!config_.rtmp_rejoin_after_restart) return;
      // The app announces the restarted ingest; migrated viewers tear
      // down HLS and re-attach to the low-delay path (second flush).
      sim_.schedule_in(config_.rtmp_rejoin_delay, [this] {
        for (auto& vp : viewers_) {
          Viewer& v = *vp;
          if (!v.active || v.orphaned || !v.hls || !v.was_rtmp) continue;
          rejoin_rtmp_viewer(v);
        }
      });
    });
  }

  // RTMP clients notice the dead connection after the socket timeout and
  // fail over to HLS: re-attach to the nearest edge, which pulls from the
  // (restarted) origin over the same W2F path every HLS viewer uses.
  sim_.schedule_in(config_.failover_detect_timeout, [this, crashed_at] {
    for (auto& vp : viewers_) {
      Viewer& v = *vp;
      if (!v.active || v.hls) continue;
      migrate_rtmp_viewer(v, crashed_at);
    }
  });
}

void BroadcastSession::on_edge_down(const fault::FaultEvent& e) {
  const TimeUs now = sim_.now();
  const TimeUs until = now + e.duration;

  // Membership is decided at the event: target 0 = every edge this
  // session instantiated (a blanket outage), otherwise one catalog site
  // -- which may have no EdgeServer object yet and still must be dark to
  // re-anycast decisions.
  std::vector<std::uint64_t> dark;
  if (e.target == 0) {
    dark.reserve(edges_.size());
    for (auto& [site, edge] : edges_) dark.push_back(site);
  } else {
    dark.push_back(e.target);
  }

  for (std::uint64_t site : dark) {
    auto& horizon = edge_down_until_[site];
    if (until > horizon) horizon = until;
    if (auto it = edges_.find(site); it != edges_.end())
      it->second->set_down(true);
    if (e.duration > 0) {
      sim_.schedule_in(e.duration, [this, site] {
        // Revive unless a later event extended this site's outage.
        if (edge_site_down(site, sim_.now())) return;
        if (auto it = edges_.find(site); it != edges_.end())
          it->second->set_down(false);
      });
    }
  }

  // Attached viewers time out after the detect window, then re-anycast
  // to the nearest edge still alive at detection time.
  sim_.schedule_in(config_.failover_detect_timeout,
                   [this, now, dark = std::move(dark)] {
    for (auto& vp : viewers_) {
      Viewer& v = *vp;
      // on_mesh viewers have no edge attachment to lose; viewers the
      // control plane already steered away no longer match the dark set.
      if (!v.active || !v.hls || v.orphaned || v.on_mesh) continue;
      const bool hit = std::find(dark.begin(), dark.end(),
                                 v.attachment.value) != dark.end();
      if (hit) migrate_hls_viewer(v, now, dark);
    }
  });
}

void BroadcastSession::migrate_rtmp_viewer(Viewer& v, TimeUs crashed_at) {
  // Kill the old pipeline first so in-flight deliveries are dropped.
  ++v.generation;
  teardown_polling(v);
  v.hls = true;

  // Anycast only lands on a live PoP: a regional event that took the
  // ingest AND its co-located edge dark must not migrate viewers onto
  // another dead box. Failover admission respects edge capacity (spill
  // policy), so a herd of migrating RTMP viewers overflows ring by ring.
  const EdgeSelection sel = nearest_live_edge(v.location, sim_.now());
  if (sel.dc == nullptr) {
    v.orphaned = true;
    ++orphaned_viewers_;
    return;  // playback freezes; result scoring charges the missing tail
  }

  ++rtmp_failovers_;
  v.failover_crash_at = crashed_at;
  v.failover_from_edge = false;
  admit_to_edge(v, sel);

  // Rebuild the last mile toward the edge (different distance).
  auto link_params = config_.viewer_last_mile;
  const double km =
      geo::haversine_km(v.location, catalog_.get(v.attachment).location);
  link_params.base_delay += config_.latency.mean_delay(km);
  v.link = std::make_unique<net::Link>(sim_, link_params, rng_.fork());

  // The client tears down its RTMP pipeline and re-buffers on HLS: the
  // playback schedule re-anchors at the HLS pre-buffer, otherwise every
  // post-crash chunk would miss its (pre-crash) slot and be discarded.
  v.retired.push_back({std::move(v.playback), /*hls=*/false});
  v.playback =
      std::make_unique<client::PlaybackSchedule>(config_.hls_prebuffer);

  // Resume from the live edge of the stream: replaying chunks the viewer
  // already watched over RTMP would only register as stalls.
  std::int64_t last = -1;
  for (const auto& [seq, at] : chunk_completed_)
    if (at <= crashed_at && static_cast<std::int64_t>(seq) > last)
      last = static_cast<std::int64_t>(seq);
  v.last_seq = last;
  start_hls_polling(v);
}

void BroadcastSession::migrate_hls_viewer(
    Viewer& v, TimeUs died_at, std::span<const std::uint64_t> exclude) {
  // Edge-to-edge failover: the viewer's PoP died; anycast re-routes them
  // to the nearest live edge with admission headroom, overflowing ring
  // by ring when nearer PoPs are full. The client flushes its pipeline a
  // second time (new pre-buffer), and the cold path to the new edge
  // shows up as the re-anchored first-chunk latency.
  // Drop responses in flight from the dead attachment; the generation
  // bump before the teardown is what keeps a stale in-flight poll from
  // double-counting or leaking its outstanding flag into the new edge's
  // cohort — the fresh wheel slot (or bool) starts clear, and every
  // closure of the old transaction fails its generation check.
  ++v.generation;
  teardown_polling(v);
  detach_from_edge(v);  // the dead PoP sheds its audience

  // `exclude` carries the triggering event's dark set (which contains
  // this viewer's attachment): even if a site's down window lapsed
  // during the detect window — or a second overlapping blackout
  // re-killed it — the viewer never re-anycasts onto the PoP that just
  // failed it.
  const EdgeSelection sel = nearest_live_edge(v.location, sim_.now(), exclude);
  if (sel.dc == nullptr) {
    // A capacity orphan (some live edge existed but was full) is the
    // overlay assist's case: when the control plane has armed the mesh,
    // park the viewer there instead of freezing their playback.
    if (sel.saw_full && rescue_on_mesh(v)) return;
    v.orphaned = true;
    ++orphaned_viewers_;
    return;
  }

  ++edge_failovers_;
  v.failover_crash_at = died_at;
  v.failover_from_edge = true;
  admit_to_edge(v, sel);

  auto link_params = config_.viewer_last_mile;
  const double km =
      geo::haversine_km(v.location, catalog_.get(v.attachment).location);
  link_params.base_delay += config_.latency.mean_delay(km);
  v.link = std::make_unique<net::Link>(sim_, link_params, rng_.fork());

  v.retired.push_back({std::move(v.playback), /*hls=*/true});
  v.playback =
      std::make_unique<client::PlaybackSchedule>(config_.hls_prebuffer);
  // last_seq survives: the client still knows what it played; it asks the
  // new edge only for fresher chunks.
  start_hls_polling(v);
}

void BroadcastSession::rejoin_rtmp_viewer(Viewer& v) {
  // The ROADMAP gap: migrated RTMP viewers used to stay on HLS forever.
  // Re-attachment is the third pipeline state: tear down HLS polling,
  // flush the pipeline again (the retired HLS phase keeps its stats), and
  // resume on the persistent RTMP subscription, which delivers again as
  // soon as v.hls is false.
  ++v.generation;
  teardown_polling(v);
  detach_from_edge(v);  // the HLS attachment is torn down
  v.hls = false;
  v.failover_crash_at = -1;  // any unfinished failover measurement is moot
  v.attachment = ingest_site_;

  auto link_params = config_.viewer_last_mile;
  const double km =
      geo::haversine_km(v.location, catalog_.get(ingest_site_).location);
  link_params.base_delay += config_.latency.mean_delay(km);
  v.link = std::make_unique<net::Link>(sim_, link_params, rng_.fork());

  v.retired.push_back({std::move(v.playback), /*hls=*/true});
  v.playback =
      std::make_unique<client::PlaybackSchedule>(config_.rtmp_prebuffer);
  ++rtmp_rejoins_;
}

bool BroadcastSession::edge_site_down(std::uint64_t site,
                                      TimeUs now) const noexcept {
  auto it = edge_down_until_.find(site);
  return it != edge_down_until_.end() && now < it->second;
}

BroadcastSession::EdgeSelection BroadcastSession::nearest_live_edge(
    const geo::GeoPoint& p, TimeUs now,
    std::span<const std::uint64_t> exclude, bool respect_capacity,
    std::span<const std::uint64_t> steer_avoid) const {
  std::vector<DatacenterId> excl;
  excl.reserve(exclude.size());
  for (std::uint64_t site : exclude) excl.push_back(DatacenterId{site});

  EdgeSelection sel;
  double nearest_live_km = -1.0;  // first live candidate (full or not)
  bool skipped_full = false;
  bool skipped_steer = false;
  for (const geo::Datacenter* dc : catalog_.k_nearest(
           p, geo::CdnRole::kEdge, config_.failover_spill_k, excl)) {
    if (edge_site_down(dc->id.value, now)) continue;
    // Service-wide verdict union (sorted): a site some session's control
    // plane published as draining/dead is skipped here exactly like this
    // session's own override below — same outcome, but attributed, so
    // the steered-joins ledger can count cross-session steering. Checked
    // first so own-override skips are attributed too (the skip happens
    // either way; the event stream is unchanged).
    if (!steer_avoid.empty() &&
        std::binary_search(steer_avoid.begin(), steer_avoid.end(),
                           dc->id.value)) {
      skipped_steer = true;
      continue;
    }
    // Published anycast-map override: the control plane decided this
    // site is draining or dead, so routing steers around it — new joins
    // and failover re-anycast alike — before client timeouts would.
    if (control_ && control_->avoid(dc->id.value)) continue;
    const double km = geo::haversine_km(p, dc->location);
    if (nearest_live_km < 0.0) nearest_live_km = km;
    if (respect_capacity) {
      // Only instantiated edges carry load; an untouched catalog site
      // has zero attachments and can never be full.
      auto it = edges_.find(dc->id.value);
      if (it != edges_.end() && it->second->full()) {
        skipped_full = true;  // spill outward, ring by ring
        continue;
      }
    }
    sel.dc = dc;
    sel.distance_km = km;
    sel.overshoot_km = km - nearest_live_km;
    sel.spilled = skipped_full;
    sel.saw_full = skipped_full;
    sel.steered = skipped_steer;
    return sel;
  }
  sel.saw_full = skipped_full;
  sel.steered = skipped_steer;
  return sel;  // every candidate dark, excluded, or full
}

void BroadcastSession::admit_to_edge(Viewer& v, const EdgeSelection& sel) {
  v.attachment = sel.dc->id;
  edge_for(v.attachment).attach();
  if (sel.spilled) {
    ++edge_spills_;
    spill_distance_km_.add(sel.overshoot_km);
  }
}

void BroadcastSession::detach_from_edge(Viewer& v) {
  // Only HLS viewers hold an edge attachment; the ledger lives on the
  // instantiated EdgeServer (attachment always instantiated one).
  if (auto it = edges_.find(v.attachment.value); it != edges_.end())
    it->second->detach();
}

std::vector<std::pair<std::uint64_t, std::uint64_t>>
BroadcastSession::edge_peak_loads() const {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
  out.reserve(edges_.size());
  for (const auto& [site, edge] : edges_)
    out.emplace_back(site, edge->peak_attached());
  std::sort(out.begin(), out.end());
  return out;
}

std::size_t BroadcastSession::add_viewer(
    const geo::GeoPoint& location, bool hls,
    std::span<const std::uint64_t> steer_avoid) {
  auto v = std::make_unique<Viewer>();
  v->hls = hls;
  v->was_rtmp = !hls;
  v->location = location;
  v->index = viewers_.size();  // the wheel's opaque member tag

  auto link_params = config_.viewer_last_mile;
  if (v->hls) {
    // Anycast skips dark PoPs (a viewer joining mid-outage) and sites
    // under a published drain/dead verdict (this session's own control
    // plane plus the caller's service-wide union) but is load-blind —
    // IP anycast does not know edge occupancy, so joins can push an
    // edge past capacity; only failover admissions spill. With no
    // outage and no verdicts this is exactly catalog_.nearest (same
    // tie-break), so fault-free runs are bit-identical.
    const EdgeSelection sel = nearest_live_edge(
        v->location, sim_.now(), {}, /*respect_capacity=*/false, steer_avoid);
    if (sel.dc != nullptr && sel.steered) ++steered_joins_;
    v->attachment = sel.dc != nullptr
                        ? sel.dc->id
                        : catalog_.nearest(v->location, geo::CdnRole::kEdge).id;
    edge_for(v->attachment).attach();
  } else {
    // RTMP viewers always connect to the broadcaster's ingest site.
    v->attachment = ingest_site_;
  }
  const double km =
      geo::haversine_km(v->location, catalog_.get(v->attachment).location);
  link_params.base_delay += config_.latency.mean_delay(km);
  v->link = std::make_unique<net::Link>(sim_, link_params, rng_.fork());
  v->playback = std::make_unique<client::PlaybackSchedule>(
      v->hls ? config_.hls_prebuffer : config_.rtmp_prebuffer);

  if (v->hls) {
    if (first_hls_viewer_ == nullptr) first_hls_viewer_ = v.get();
    start_hls_polling(*v);
  } else {
    attach_rtmp_viewer(*v);
  }
  viewers_.push_back(std::move(v));
  return viewers_.size() - 1;
}

void BroadcastSession::attach_rtmp_viewer(Viewer& v) {
  auto* viewer = &v;
  ingest_->add_rtmp_subscriber(
      [this, viewer](const media::VideoFrame& f, TimeUs at_ingest) {
        // Skip if the viewer left (connection torn down) or failed over to
        // HLS after an ingest crash (the old subscription is dead).
        if (!viewer->active || viewer->hls) return;
        const DurationUs d =
            viewer->link->sample_delay(f.size_bytes + kFrameHeaderBytes);
        sim_.schedule_in(d, [this, viewer, f, at_ingest, d] {
          if (!viewer->active || viewer->hls) return;
          rtmp_.last_mile_s.add(time::to_seconds(d));
          viewer->playback->on_arrival(at_ingest + d, f.capture_ts,
                                       f.duration);
        });
      });
}

void BroadcastSession::remove_viewer(std::size_t index) {
  auto& v = *viewers_.at(index);
  if (!v.active) return;
  v.active = false;
  teardown_polling(v);
  if (v.on_mesh) {
    // Mesh-parked viewers hold a peer slot, not an edge slot.
    if (assist_mesh_) assist_mesh_->leave(v.mesh_peer);
    v.on_mesh = false;
    return;
  }
  // Orphans already shed their (dead) attachment during the failed
  // migration; detaching again would steal a slot from someone else.
  if (v.hls && !v.orphaned) detach_from_edge(v);
}

void BroadcastSession::record_hls_chunk(Viewer& v, const media::Chunk& c,
                                        TimeUs poll_at_edge, TimeUs recv_time,
                                        DurationUs download_delay) {
  auto& edge = edge_for(v.attachment);
  std::optional<TimeUs> available;
  if (auto it = edge.availability().find(c.seq);
      it != edge.availability().end()) {
    available = it->second;
    hls_.w2f_s.add(time::to_seconds(it->second - c.completed_ts));
    const DurationUs polling =
        poll_at_edge > it->second ? poll_at_edge - it->second : 0;
    hls_.polling_s.add(time::to_seconds(polling));
  }
  hls_.last_mile_s.add(time::to_seconds(download_delay));
  if (v.failover_crash_at >= 0) {
    // First post-failover chunk on screen: the migration is complete.
    // Edge-to-edge re-anycasts and RTMP->HLS migrations keep separate
    // ledgers (different detection paths, different pre-buffer flushes).
    auto& ledger =
        v.failover_from_edge ? edge_failover_latency_s_ : failover_latency_s_;
    ledger.add(time::to_seconds(recv_time - v.failover_crash_at));
    v.failover_crash_at = -1;
  }
  if (config_.record_journeys && &v == first_hls_viewer_) {
    ChunkJourney j;
    j.seq = c.seq;
    j.captured = c.first_capture_ts;
    j.completed = c.completed_ts;
    j.available = available.value_or(0);
    j.polled = poll_at_edge;
    j.received = recv_time;
    journeys_.push_back(j);
  }
  v.playback->on_arrival(recv_time, c.first_capture_ts, c.duration);
}

DurationUs BroadcastSession::poll_slot_width() const noexcept {
  const auto slots = std::max<std::uint32_t>(1, config_.poll_wheel_slots);
  const DurationUs w = config_.hls_poll_interval / slots;
  return w < 1 ? 1 : w;
}

DurationUs BroadcastSession::effective_poll_interval() const noexcept {
  return poll_slot_width() * std::max<std::uint32_t>(1,
                                                     config_.poll_wheel_slots);
}

TimeUs BroadcastSession::quantized_poll_phase() {
  // Random poll phase: viewers are not synchronized with chunk arrivals,
  // which is exactly what makes the polling delay a uniform-ish draw over
  // the interval (§5.2). Quantized onto the wheel grid — the smallest
  // slot boundary at or past the raw phase, strictly after now — so the
  // wheel lane and the per-viewer-timer lane tick at identical instants.
  const TimeUs raw =
      sim_.now() + static_cast<TimeUs>(rng_.uniform() *
                                       static_cast<double>(
                                           config_.hls_poll_interval));
  const DurationUs w = poll_slot_width();
  TimeUs t = ((raw + w - 1) / w) * w;
  if (t <= sim_.now()) t = (sim_.now() / w + 1) * w;
  return t;
}

sim::PollWheel& BroadcastSession::wheel_for(cdn::EdgeServer& edge) {
  const bool fresh = edge.poll_wheel() == nullptr;
  auto& wheel = edge.poll_wheel(config_.hls_poll_interval,
                                std::max<std::uint32_t>(
                                    1, config_.poll_wheel_slots));
  if (fresh) {
    wheel.set_fanout(
        [this](TimeUs tick, std::uint64_t tag, sim::CohortSlot) {
          Viewer& v = *viewers_[static_cast<std::size_t>(tag)];
          if (poll_tick(v, tick)) return;
          // Broadcast horizon passed: leave the cohort so the wheel stops
          // scheduling once its last member is gone and the run drains.
          if (v.cohort_wheel != nullptr) {
            v.cohort_wheel->detach(v.cohort);
            v.cohort_wheel = nullptr;
            v.cohort = sim::CohortSlot{};
          }
        });
  }
  return wheel;
}

bool BroadcastSession::poll_outstanding(const Viewer& v) const {
  if (v.cohort_wheel != nullptr && v.cohort_wheel->attached(v.cohort))
    return v.cohort_wheel->outstanding(v.cohort);
  return v.poll_outstanding;
}

void BroadcastSession::set_poll_outstanding(Viewer& v, bool value) {
  if (v.cohort_wheel != nullptr && v.cohort_wheel->attached(v.cohort)) {
    v.cohort_wheel->set_outstanding(v.cohort, value);
    return;
  }
  v.poll_outstanding = value;
}

void BroadcastSession::teardown_polling(Viewer& v) {
  if (v.poll_process) v.poll_process->stop();
  if (v.cohort_wheel != nullptr) {
    v.cohort_wheel->detach(v.cohort);
    v.cohort_wheel = nullptr;
    v.cohort = sim::CohortSlot{};
  }
  if (v.retry_event.valid()) {
    sim_.cancel(v.retry_event);
    v.retry_event = sim::EventHandle{};
  }
  v.poll_outstanding = false;
}

void BroadcastSession::start_hls_polling(Viewer& v) {
  const TimeUs phase = quantized_poll_phase();

  if (config_.poll_wheel) {
    // Wheel lane: the viewer joins its edge's cohort; one engine event
    // per edge per tick fans out to everyone due in that bucket.
    auto& wheel = wheel_for(edge_for(v.attachment));
    v.cohort_wheel = &wheel;
    v.cohort = wheel.attach(phase, static_cast<std::uint64_t>(v.index));
    return;
  }

  // Timer lane (the reference path): one PeriodicProcess per viewer on
  // the same quantized grid, running the same transaction — byte-
  // identical results at O(viewers) engine cost.
  auto* viewer = &v;
  // Attachment epoch this polling loop belongs to: after a migration the
  // client closed this connection, so a tick from the stale timer must
  // stop instead of polling the new attachment.
  const std::uint64_t gen = v.generation;
  v.poll_process = std::make_unique<sim::PeriodicProcess>(
      sim_, phase, effective_poll_interval(),
      [this, viewer, gen](sim::PeriodicProcess& proc) {
        if (viewer->generation != gen || !poll_tick(*viewer, sim_.now()))
          proc.stop();
      });
}

bool BroadcastSession::poll_tick(Viewer& v, TimeUs tick_time) {
  if (tick_time > start_time_ + config_.broadcast_len + 20 * time::kSecond)
    return false;
  if (poll_outstanding(v)) return true;  // one request in flight
  set_poll_outstanding(v, true);

  auto* viewer = &v;
  auto* eptr = &edge_for(v.attachment);
  // Attachment epoch this request belongs to. Every closure below checks
  // it: after a migration the client closed this connection, so a
  // response still in flight from the old edge must evaporate instead of
  // landing in the new pipeline.
  const std::uint64_t gen = v.generation;
  if (config_.hls_poll_retry) arm_poll_timeout(v, gen);

  const DurationUs req_d = viewer->link->sample_delay(kPollRequestBytes);
  sim_.schedule_in(req_d, [this, viewer, eptr, gen] {
    if (viewer->generation != gen) return;
    const TimeUs poll_at_edge = sim_.now();
    eptr->on_poll(
        viewer->last_seq,
        [this, viewer, gen, poll_at_edge](
            TimeUs served_at, std::vector<media::Chunk> fresh) {
          if (viewer->generation != gen) return;
          std::uint64_t bytes = kPlaylistBytes;
          for (const auto& c : fresh) bytes += c.size_bytes;
          const DurationUs resp_d = viewer->link->sample_delay(bytes);
          sim_.schedule_in(
              resp_d, [this, viewer, gen, poll_at_edge, served_at,
                       resp_d, fresh = std::move(fresh)] {
                if (viewer->generation != gen) return;
                const TimeUs recv = served_at + resp_d;
                // Injected corruption window: the download fails its
                // integrity check and is discarded whole; the next
                // poll tick re-fetches (chunk re-fetch on corruption).
                if (recv < corruption_until_ && !fresh.empty() &&
                    rng_.bernoulli(corruption_prob_)) {
                  ++corrupted_downloads_;
                  set_poll_outstanding(*viewer, false);
                  return;
                }
                for (const auto& c : fresh) {
                  if (static_cast<std::int64_t>(c.seq) <= viewer->last_seq)
                    continue;
                  viewer->last_seq = static_cast<std::int64_t>(c.seq);
                  record_hls_chunk(*viewer, c, poll_at_edge, recv, resp_d);
                }
                set_poll_outstanding(*viewer, false);
                if (config_.hls_poll_retry) poll_succeeded(*viewer);
              });
        });
  });
  return true;
}

void BroadcastSession::arm_poll_timeout(Viewer& v, std::uint64_t gen) {
  auto* viewer = &v;
  sim_.schedule_in(config_.poll_retry_timeout, [this, viewer, gen] {
    if (viewer->generation != gen) return;
    if (!poll_outstanding(*viewer)) return;  // answered in time
    // Unanswered (dead edge, abandoned waiter): the client's request
    // timer fires. Clear the wedged flag and demote to the retry lane.
    set_poll_outstanding(*viewer, false);
    poll_failed(*viewer, gen);
  });
}

void BroadcastSession::poll_failed(Viewer& v, std::uint64_t gen) {
  if (!v.retry)
    v.retry = std::make_unique<client::PollRetryState>(config_.poll_retry);
  if (!v.retry_rng) v.retry_rng = std::make_unique<Rng>(rng_.fork());

  // Solo-timer demotion: the viewer leaves the wheel (or stops its
  // timer); PollRetryState alone paces the next attempt, so backoff
  // timing is exactly the client/retry.h schedule, never wheel-aligned.
  teardown_polling(v);
  const auto retry_at = v.retry->on_failure(sim_.now(), *v.retry_rng);
  if (!retry_at) return;  // gave up: inert until failover rescues it
  auto* viewer = &v;
  v.retry_event = sim_.schedule_at(*retry_at, [this, viewer, gen] {
    viewer->retry_event = sim::EventHandle{};
    if (viewer->generation != gen) return;
    poll_tick(*viewer, sim_.now());  // one solo attempt; its own timeout
                                     // or success decides what's next
  });
}

void BroadcastSession::poll_succeeded(Viewer& v) {
  if (v.retry) v.retry->on_success();
  // Re-promote a demoted viewer to the steady-state tick source (fresh
  // quantized phase). No-op while a wheel slot or timer is live.
  const bool attached =
      (v.cohort_wheel != nullptr && v.cohort_wheel->attached(v.cohort)) ||
      (v.poll_process && v.poll_process->running());
  if (!attached) start_hls_polling(v);
}

void BroadcastSession::finalize() {
  if (finalized_) return;
  finalized_ = true;
  for (const auto& v : viewers_) {
    auto& breakdown = v->hls ? hls_ : rtmp_;
    breakdown.buffering_s.merge(v->playback->buffering_delay_s());
    // Each retired phase (a pipeline flush: RTMP->HLS, edge-to-edge,
    // HLS->RTMP rejoin) folds into the breakdown of the path it covered.
    for (const auto& phase : v->retired)
      (phase.hls ? hls_ : rtmp_)
          .buffering_s.merge(phase.playback->buffering_delay_s());
  }
}

std::vector<BroadcastSession::ViewerResult>
BroadcastSession::viewer_results() const {
  std::vector<ViewerResult> out;
  out.reserve(viewers_.size());
  for (const auto& v : viewers_) {
    ViewerResult r;
    r.hls = v->hls;
    r.orphaned = v->orphaned;
    r.location = v->location;
    r.attachment = v->attachment;
    r.stall_ratio = v->playback->stall_ratio();
    r.mean_buffering_s = v->playback->buffering_delay_s().mean();
    r.units_played = v->playback->units_played();
    r.units_discarded = v->playback->units_discarded();
    if (!v->retired.empty()) {
      // Fold every retired phase back in: stall weighted by each phase's
      // offered media, buffering via accumulator merge. (Skipped entirely
      // for unmigrated viewers so fault-free results stay bit-identical.)
      double weighted = v->playback->stall_ratio() *
                        static_cast<double>(v->playback->media_offered());
      double offered = static_cast<double>(v->playback->media_offered());
      stats::Accumulator merged = v->playback->buffering_delay_s();
      for (const auto& phase : v->retired) {
        const auto& p = *phase.playback;
        weighted += p.stall_ratio() * static_cast<double>(p.media_offered());
        offered += static_cast<double>(p.media_offered());
        merged.merge(p.buffering_delay_s());
        r.units_played += p.units_played();
        r.units_discarded += p.units_discarded();
      }
      if (offered > 0.0) r.stall_ratio = weighted / offered;
      r.mean_buffering_s = merged.mean();
    }
    out.push_back(r);
  }
  return out;
}

}  // namespace livesim::core
