// Follower notifications -- the audience-acquisition mechanism of §2.1:
// "When a user starts a broadcast, all her followers will receive
// notifications", which is why follower count drives viewership (Fig 7)
// and why celebrities arrive with a built-in audience.
//
// NotificationService fans a broadcast-start event out over the follow
// graph; each notified follower opens the app with some probability after
// a human reaction delay and joins through the normal service path
// (first-come RTMP slots and all).
#ifndef LIVESIM_CORE_NOTIFICATIONS_H
#define LIVESIM_CORE_NOTIFICATIONS_H

#include "livesim/core/service.h"
#include "livesim/social/graph.h"

namespace livesim::core {

class NotificationService {
 public:
  struct Params {
    DurationUs mean_delivery = 2 * time::kSecond;   // push-notification lag
    DurationUs mean_reaction = 20 * time::kSecond;  // human opens the app
    double join_probability = 0.03;                 // per notified follower
  };

  /// `graph` must have build_reverse() called; node u's id doubles as
  /// UserId u. Lifetimes: graph and service must outlive this object.
  NotificationService(sim::Simulator& sim, const social::Graph& graph,
                      LivestreamService& service, Params params, Rng rng);

  /// Fans out notifications for `broadcaster`'s new broadcast; joiners
  /// appear over the next ~minute via the service's join path.
  void broadcast_started(std::uint32_t broadcaster, BroadcastId id);

  std::uint64_t notifications_sent() const noexcept { return sent_; }
  std::uint64_t joins_driven() const noexcept { return joins_; }

 private:
  sim::Simulator& sim_;
  const social::Graph& graph_;
  LivestreamService& service_;
  Params params_;
  Rng rng_;
  geo::UserGeoSampler geo_;
  std::uint64_t sent_ = 0;
  std::uint64_t joins_ = 0;
};

}  // namespace livesim::core

#endif  // LIVESIM_CORE_NOTIFICATIONS_H
