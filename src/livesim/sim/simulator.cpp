#include "livesim/sim/simulator.h"

#include <stdexcept>
#include <utility>

namespace livesim::sim {

// ---------------------------------------------------------------------------
// Slot slab. Chunked so slot addresses are stable: a callback is invoked in
// place and may grow the slab (scheduling new events) without moving itself.

std::uint32_t Simulator::acquire_slot() {
  if (free_head_ != EventHandle::kInvalidIndex) {
    const std::uint32_t idx = free_head_;
    free_head_ = heap_pos_[idx];  // next-free link while the slot was free
    return idx;
  }
  if ((slot_count_ & kChunkMask) == 0) {
    chunks_.push_back(std::make_unique<Slot[]>(kChunkSize));
    heap_pos_.resize(heap_pos_.size() + kChunkSize);
  }
  return slot_count_++;
}

void Simulator::release_slot(std::uint32_t idx) {
  slot(idx).state = SlotState::kFree;
  heap_pos_[idx] = free_head_;
  free_head_ = idx;
}

// ---------------------------------------------------------------------------
// Indexed 4-ary min-heap. Entries carry their (time, seq) key inline so
// sift comparisons stay within the heap array; position write-backs go to
// the dense heap_pos_ array, not the slab. The four children of a node are
// adjacent, so one sift level usually costs a single cache line.

void Simulator::heap_sift_up(std::uint32_t pos) {
  const HeapEntry e = heap_[pos];
  while (pos > 0) {
    const std::uint32_t parent = (pos - 1) / 4;
    if (!earlier(e, heap_[parent])) break;
    heap_[pos] = heap_[parent];
    heap_pos_[heap_[pos].slot] = pos;
    pos = parent;
  }
  heap_[pos] = e;
  heap_pos_[e.slot] = pos;
}

void Simulator::heap_sift_down(std::uint32_t pos) {
  const HeapEntry e = heap_[pos];
  const std::uint32_t n = static_cast<std::uint32_t>(heap_.size());
  for (;;) {
    const std::uint32_t first = 4 * pos + 1;
    if (first >= n) break;
    std::uint32_t best = first;
    const std::uint32_t last = (first + 4 < n) ? first + 4 : n;
    for (std::uint32_t c = first + 1; c < last; ++c) {
      if (earlier(heap_[c], heap_[best])) best = c;
    }
    if (!earlier(heap_[best], e)) break;
    heap_[pos] = heap_[best];
    heap_pos_[heap_[pos].slot] = pos;
    pos = best;
  }
  heap_[pos] = e;
  heap_pos_[e.slot] = pos;
}

void Simulator::heap_push(HeapEntry e) {
  heap_.push_back(e);
  heap_sift_up(static_cast<std::uint32_t>(heap_.size() - 1));
}

void Simulator::heap_pop_root() {
  const HeapEntry last = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    heap_[0] = last;
    heap_pos_[last.slot] = 0;
    heap_sift_down(0);
  }
}

void Simulator::heap_erase(std::uint32_t pos) {
  const HeapEntry last = heap_.back();
  heap_.pop_back();
  if (pos < heap_.size()) {
    heap_[pos] = last;
    heap_pos_[last.slot] = pos;
    if (pos > 0 && earlier(heap_[pos], heap_[(pos - 1) / 4])) {
      heap_sift_up(pos);
    } else {
      heap_sift_down(pos);
    }
  }
}

// ---------------------------------------------------------------------------
// Public API

bool Simulator::cancel(EventHandle h) {
  if (!h.valid() || h.index >= slot_count_) return false;
  Slot& s = slot(h.index);
  // A live handle implies a queued slot: the generation is bumped whenever
  // the event fires or is cancelled, so a stale handle never matches.
  if (s.state != SlotState::kQueued || s.generation != h.generation)
    return false;
  heap_erase(heap_pos_[h.index]);
  ++s.generation;
  if (s.executing) {
    // A running callback cancelled its own re-arm. Its closure is still on
    // the stack, so it must not be destroyed here; flip the slot back to
    // kRunning and let pop_one's epilogue reclaim it after the return.
    s.state = SlotState::kRunning;
  } else {
    s.fn = nullptr;  // destroy the capture now, not when the slot is reused
    release_slot(h.index);
  }
  return true;
}

EventHandle Simulator::reschedule_current(TimeUs t) {
  if (running_slot_ == EventHandle::kInvalidIndex)
    throw std::logic_error("Simulator::reschedule_current: no running event");
  Slot& s = slot(running_slot_);
  if (s.state != SlotState::kRunning)
    throw std::logic_error(
        "Simulator::reschedule_current: event already re-armed");
  if (t < now_) t = now_;
  s.state = SlotState::kQueued;
  // A fresh seq, exactly as a schedule_at-based re-arm would consume one:
  // same-instant FIFO ordering stays byte-identical to the old engine.
  heap_push(HeapEntry{t, next_seq_++, running_slot_});
  return EventHandle{running_slot_, s.generation};
}

bool Simulator::pop_one() {
  if (heap_.empty()) return false;
  const HeapEntry top = heap_[0];
  const std::uint32_t idx = top.slot;
  Slot& s = slot(idx);  // chunked slab: `s` stays put while fn runs
#if defined(__GNUC__) || defined(__clang__)
  // Pull the slot's cache lines in while the sift-down below works the
  // heap: the slab access pattern is effectively random, and this miss is
  // otherwise serialized behind the heap restructuring.
  __builtin_prefetch(&s, 1);
  __builtin_prefetch(reinterpret_cast<const char*>(&s) + 64, 1);
#endif
  heap_pop_root();
  now_ = top.time;
  ++processed_;
  s.state = SlotState::kRunning;
  ++s.generation;  // cancel-after-fire must report failure
  s.executing = true;
  const std::uint32_t prev_running = running_slot_;
  running_slot_ = idx;
  s.fn();  // may schedule (growing the slab), cancel, or re-arm this slot
  running_slot_ = prev_running;
  s.executing = false;
  if (s.state == SlotState::kRunning) {
    // Not re-armed: the closure is dead, reclaim the slot.
    s.fn = nullptr;
    release_slot(idx);
  }
  return true;
}

void Simulator::run() {
  while (pop_one()) {
  }
}

void Simulator::run_until(TimeUs t) {
  while (!heap_.empty() && heap_[0].time <= t) pop_one();
  if (now_ < t) now_ = t;
}

std::size_t Simulator::step(std::size_t n) {
  std::size_t ran = 0;
  while (ran < n && pop_one()) ++ran;
  return ran;
}

// ---------------------------------------------------------------------------

PeriodicProcess::PeriodicProcess(Simulator& sim, TimeUs start,
                                 DurationUs interval, TickFn fn)
    : sim_(sim), interval_(interval), fn_(std::move(fn)) {
  pending_ = sim_.schedule_at(start, [this] { tick(); });
}

void PeriodicProcess::tick() {
  if (!running_) return;
  ++ticks_;
  fn_(*this);
  // Re-arm in place: the slot and the [this] closure scheduled above are
  // reused verbatim, so steady-state ticking never re-enters schedule_at.
  if (running_) pending_ = sim_.reschedule_current(sim_.now() + interval_);
}

void PeriodicProcess::stop() {
  if (!running_) return;
  running_ = false;
  sim_.cancel(pending_);
}

}  // namespace livesim::sim
