#include "livesim/sim/simulator.h"

#include <utility>

namespace livesim::sim {

EventId Simulator::schedule_at(TimeUs t, EventFn fn) {
  if (t < now_) t = now_;
  const std::uint64_t seq = next_seq_++;
  heap_.push(Entry{t, seq, std::move(fn)});
  pending_ids_.insert(seq);
  return EventId{seq};
}

EventId Simulator::schedule_in(DurationUs delay, EventFn fn) {
  if (delay < 0) delay = 0;
  return schedule_at(now_ + delay, std::move(fn));
}

bool Simulator::cancel(EventId id) {
  if (!id.valid() || pending_ids_.erase(id.value) == 0) return false;
  // We cannot remove from the heap directly; tombstone instead. The pop
  // path discards tombstoned entries, so memory is reclaimed as time
  // advances past them.
  cancelled_.insert(id.value);
  return true;
}

const Simulator::Entry* Simulator::peek() {
  // Drain tombstoned (cancelled) entries off the top so the caller sees
  // the earliest event that will actually fire, or nullptr if none.
  while (!heap_.empty()) {
    const Entry& top = heap_.top();
    if (auto it = cancelled_.find(top.seq); it != cancelled_.end()) {
      cancelled_.erase(it);
      heap_.pop();
      continue;
    }
    return &top;
  }
  return nullptr;
}

bool Simulator::pop_one() {
  const Entry* top = peek();
  if (top == nullptr) return false;
  // Move the callback out before popping so it may schedule/cancel freely.
  EventFn fn = std::move(const_cast<Entry*>(top)->fn);
  now_ = top->time;
  pending_ids_.erase(top->seq);
  heap_.pop();
  ++processed_;
  fn();
  return true;
}

void Simulator::run() {
  while (pop_one()) {
  }
}

void Simulator::run_until(TimeUs t) {
  for (const Entry* top = peek(); top != nullptr && top->time <= t;
       top = peek()) {
    pop_one();
  }
  if (now_ < t) now_ = t;
}

std::size_t Simulator::step(std::size_t n) {
  std::size_t ran = 0;
  while (ran < n && pop_one()) ++ran;
  return ran;
}

PeriodicProcess::PeriodicProcess(Simulator& sim, TimeUs start,
                                 DurationUs interval, TickFn fn)
    : sim_(sim), interval_(interval), fn_(std::move(fn)) {
  arm(start);
}

void PeriodicProcess::arm(TimeUs at) {
  pending_ = sim_.schedule_at(at, [this] {
    if (!running_) return;
    ++ticks_;
    fn_(*this);
    if (running_) arm(sim_.now() + interval_);
  });
}

void PeriodicProcess::stop() {
  if (!running_) return;
  running_ = false;
  sim_.cancel(pending_);
}

}  // namespace livesim::sim
