#include "livesim/sim/parallel.h"

#include <utility>

namespace livesim::sim {

namespace {

std::uint64_t splitmix64_round(std::uint64_t z) noexcept {
  z += 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

std::uint64_t substream_seed(std::uint64_t seed, std::uint64_t stream) noexcept {
  // Two dependent rounds: mixing the stream index through the seeded state
  // keeps nearby (seed, stream) pairs from producing correlated outputs.
  return splitmix64_round(splitmix64_round(seed) ^ stream);
}

unsigned resolve_threads(unsigned requested) noexcept {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw != 0 ? hw : 1;
}

std::vector<ShardRange> shard_ranges(std::size_t n, unsigned shards) {
  std::vector<ShardRange> out;
  if (n == 0) return out;
  if (shards == 0) shards = 1;
  const std::size_t k = std::min<std::size_t>(shards, n);
  out.reserve(k);
  const std::size_t base = n / k;
  const std::size_t extra = n % k;  // first `extra` shards get one more item
  std::size_t begin = 0;
  for (std::size_t s = 0; s < k; ++s) {
    const std::size_t len = base + (s < extra ? 1 : 0);
    out.push_back({begin, begin + len});
    begin += len;
  }
  return out;
}

ThreadPool::ThreadPool(unsigned threads) {
  const unsigned k = resolve_threads(threads);
  workers_.reserve(k);
  for (unsigned i = 0; i < k; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr err = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(err);
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ with a drained queue
      task = std::move(queue_.front());
      queue_.pop();
    }
    try {
      task();
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

void parallel_for_shards(
    std::size_t n, unsigned threads,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
  const auto ranges = shard_ranges(n, resolve_threads(threads));
  if (ranges.empty()) return;
  if (ranges.size() == 1) {
    // Serial path: same per-shard code, no pool. Keeps threads=1 free of
    // synchronization so it is byte-for-byte the reference execution.
    fn(0, ranges[0].begin, ranges[0].end);
    return;
  }
  ThreadPool pool(static_cast<unsigned>(ranges.size()));
  for (std::size_t s = 0; s < ranges.size(); ++s)
    pool.submit([&, s] { fn(s, ranges[s].begin, ranges[s].end); });
  pool.wait_idle();
}

}  // namespace livesim::sim
