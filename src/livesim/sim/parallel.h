// Parallel experiment execution: thread pool + shard partitioner.
//
// The paper's trace-driven simulations (§5.2 polling, §6 buffering) iterate
// over thousands of *independent* broadcasts, so they parallelize across
// streams with no coordination beyond a final merge. The contract of this
// layer is DETERMINISM: for a fixed seed, results are identical at every
// thread count (threads = 1 included). Two mechanisms make that hold:
//
//  1. Work is split into contiguous index shards and per-item outputs are
//     written to pre-sized slots, so the merge order is always global index
//     order no matter which worker ran which shard.
//  2. Randomness is never drawn from a stream shared across workers. Either
//     the per-item seeds are pre-drawn serially from the master RNG (exactly
//     reproducing the legacy serial draw sequence), or each item derives an
//     independent substream via `substream_seed` (splitmix64, the same
//     mixer `Rng` seeds itself with).
#ifndef LIVESIM_SIM_PARALLEL_H
#define LIVESIM_SIM_PARALLEL_H

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace livesim::sim {

/// Mixes a master seed and a stream index into an independent substream
/// seed (two rounds of splitmix64). Equal (seed, stream) pairs always map
/// to the same value; distinct streams get statistically unrelated seeds.
std::uint64_t substream_seed(std::uint64_t seed, std::uint64_t stream) noexcept;

/// Resolves a thread-count knob: 0 means "all hardware threads", anything
/// else is used as given. Never returns 0.
unsigned resolve_threads(unsigned requested) noexcept;

/// A contiguous slice [begin, end) of the item index space.
struct ShardRange {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t size() const noexcept { return end - begin; }
};

/// Partitions [0, n) into at most `shards` contiguous, near-equal ranges
/// (sizes differ by at most one; empty ranges are never returned, so the
/// result has min(shards, n) entries — or none when n == 0). The
/// decomposition depends only on (n, shards), never on scheduling.
std::vector<ShardRange> shard_ranges(std::size_t n, unsigned shards);

/// Fixed-size worker pool with a shared task queue. Tasks are opaque
/// thunks; exceptions thrown by tasks are captured and the first one is
/// rethrown from wait_idle()/the destructor's caller path.
class ThreadPool {
 public:
  /// Spawns `threads` workers (resolve_threads applied, so 0 = hardware).
  explicit ThreadPool(unsigned threads);

  /// Drains the queue, joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Must not be called after shutdown began.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished. Rethrows the first
  /// exception any task threw since the last wait.
  void wait_idle();

  unsigned size() const noexcept { return static_cast<unsigned>(workers_.size()); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait for tasks
  std::condition_variable idle_cv_;   // wait_idle waits for drain
  std::exception_ptr first_error_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

/// Runs `fn(shard_index, begin, end)` for every shard of [0, n) with one
/// shard per worker thread. Blocks until all shards complete; rethrows the
/// first exception. With threads resolved to 1 (or n <= 1) everything runs
/// inline on the calling thread — the serial path is literally the same
/// code as each worker's loop.
void parallel_for_shards(
    std::size_t n, unsigned threads,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn);

/// Maps `fn(i)` over [0, n) into a pre-sized vector, sharded across
/// `threads` workers. Slot i always holds fn(i), so the output is
/// independent of the thread count by construction.
template <typename T, typename Fn>
std::vector<T> parallel_map(std::size_t n, unsigned threads, Fn&& fn) {
  std::vector<T> out(n);
  parallel_for_shards(n, threads,
                      [&](std::size_t, std::size_t begin, std::size_t end) {
                        for (std::size_t i = begin; i < end; ++i) out[i] = fn(i);
                      });
  return out;
}

}  // namespace livesim::sim

#endif  // LIVESIM_SIM_PARALLEL_H
