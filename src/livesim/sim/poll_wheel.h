// Bucketed poll wheel: the flash-crowd fast path for periodic polling.
//
// The §5.2 HLS tier has every viewer poll its edge on its own ~2.8 s
// timer. Simulated literally (one PeriodicProcess per viewer) a flash
// crowd of 100k viewers costs 100k engine events per poll interval. The
// wheel collapses that to one engine event per *edge* per tick: viewer
// poll phases are quantized onto a grid of `buckets` slots spanning one
// poll period, members of a bucket hang off an intrusive list, and a
// single pending event (for the earliest non-empty bucket) fans out to
// the whole cohort when it fires. Scheduling cost scales with edges, not
// viewers.
//
// Per-viewer poll state lives here as struct-of-arrays cohort ledgers
// indexed by dense slots -- the next-deadline bucket, the intrusive list
// links, and the poll-outstanding flag -- addressed by {index, generation}
// CohortSlot handles exactly like the engine's EventHandle, so a stale
// handle (viewer migrated away, slot recycled) can never touch the slot's
// next tenant.
//
// Determinism contract (the wheels-on/off differential relies on it):
//  * fan-out visits a bucket's members in attach order (append-at-tail),
//    which is exactly the firing order of one-PeriodicProcess-per-viewer
//    timers created in the same order;
//  * a member attached during its own bucket's fan-out (first tick is
//    always quantized strictly after `now`, so it lands one full rotation
//    out) is never visited by the running pass -- the per-slot first-due
//    time gates it;
//  * detaching any member mid-fan-out (even the one about to be visited)
//    is safe: the cursor is advanced past a slot before its callback runs
//    and fixed up when the upcoming slot is unlinked.
//
// An empty wheel schedules nothing: zero members, zero pending events.
#ifndef LIVESIM_SIM_POLL_WHEEL_H
#define LIVESIM_SIM_POLL_WHEEL_H

#include <cstdint>
#include <functional>
#include <vector>

#include "livesim/sim/simulator.h"
#include "livesim/util/time.h"

namespace livesim::sim {

/// Names one cohort ledger slot, generation-checked against recycling --
/// the viewer-side mirror of EventHandle.
struct CohortSlot {
  static constexpr std::uint32_t kInvalidIndex = 0xFFFFFFFFu;

  std::uint32_t index = kInvalidIndex;
  std::uint32_t generation = 0;

  constexpr bool valid() const noexcept { return index != kInvalidIndex; }
  friend constexpr bool operator==(CohortSlot, CohortSlot) = default;
};

class PollWheel {
 public:
  /// Fan-out callback: (tick time, member tag, member slot). The callback
  /// may attach or detach any member, including the one it was called for.
  using FanoutFn = std::function<void(TimeUs, std::uint64_t, CohortSlot)>;

  /// `period` is split into `buckets` slots of width period/buckets
  /// (floored, min 1 us); the effective rotation is slot_width * buckets,
  /// which callers must use as their poll interval so quantized timers
  /// and wheel ticks stay on the same grid.
  PollWheel(Simulator& sim, DurationUs period, std::uint32_t buckets);
  ~PollWheel();

  PollWheel(const PollWheel&) = delete;
  PollWheel& operator=(const PollWheel&) = delete;

  void set_fanout(FanoutFn fn) { fanout_ = std::move(fn); }

  /// Quantizes a raw poll phase onto the wheel grid: the smallest
  /// multiple of slot_width that is >= `raw` AND strictly after now.
  /// (Strictly after: an attach can never tick in the instant it was
  /// made, matching a freshly created timer whose first event carries a
  /// later sequence number than anything already queued at `now`.)
  TimeUs quantize(TimeUs raw) const noexcept;

  /// Attaches a member whose first tick is at `first_tick` (must be
  /// quantized; callers use quantize()). Subsequent ticks come every
  /// effective_period(). `tag` is opaque and handed back at fan-out.
  CohortSlot attach(TimeUs first_tick, std::uint64_t tag);

  /// Detaches a member. Safe on stale/invalid handles (returns false) and
  /// during fan-out. When the wheel empties its pending event is
  /// cancelled, so a drained simulation holds no wheel events.
  bool detach(CohortSlot s);

  /// True while `s` names a live member.
  bool attached(CohortSlot s) const noexcept;

  // --- per-member ledger (generation-checked; no-ops on stale slots) ---
  bool outstanding(CohortSlot s) const noexcept;
  void set_outstanding(CohortSlot s, bool v) noexcept;
  std::uint64_t tag(CohortSlot s) const noexcept;

  // --- introspection ---
  std::size_t size() const noexcept { return members_; }
  std::uint32_t buckets() const noexcept {
    return static_cast<std::uint32_t>(bucket_head_.size());
  }
  DurationUs slot_width() const noexcept { return slot_width_; }
  /// slot_width() * buckets(): the rotation callers must poll at.
  DurationUs effective_period() const noexcept { return period_; }
  /// Bucket fan-outs fired so far (one engine event each).
  std::uint64_t ticks() const noexcept { return ticks_; }

 private:
  static constexpr std::uint32_t kNil = 0xFFFFFFFFu;

  struct Ledger {
    // Struct-of-arrays over member slots: each vector is indexed by the
    // slot index, grown together. Hot fan-out walks touch next_/tag_/
    // first_due_ only.
    std::vector<std::uint64_t> tag;
    std::vector<std::uint32_t> generation;
    std::vector<std::uint32_t> bucket;     // next-deadline bucket
    std::vector<TimeUs> first_due;         // gate for the first rotation
    std::vector<std::uint32_t> prev;       // intrusive bucket list links
    std::vector<std::uint32_t> next;       // (doubles as free-list link)
    std::vector<std::uint8_t> outstanding; // one poll request in flight
  };

  bool live(CohortSlot s) const noexcept {
    return s.valid() && s.index < ledger_.tag.size() &&
           ledger_.generation[s.index] == s.generation &&
           ledger_.bucket[s.index] != kNil;
  }

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t idx);
  void fire();                       // the single pending engine event
  void reschedule();                 // re-aim pending_ at the earliest due
  /// Earliest due time across non-empty buckets (-1: none); the owning
  /// bucket lands in *bucket_out.
  TimeUs earliest_due(std::uint32_t* bucket_out) const noexcept;

  Simulator& sim_;
  DurationUs slot_width_;
  DurationUs period_;  // slot_width_ * buckets
  FanoutFn fanout_;

  Ledger ledger_;
  std::vector<std::uint32_t> bucket_head_;
  std::vector<std::uint32_t> bucket_tail_;
  std::vector<TimeUs> bucket_due_;   // next fire time; valid when non-empty

  std::uint32_t free_head_ = kNil;
  std::size_t members_ = 0;
  std::uint64_t ticks_ = 0;

  EventHandle pending_{};
  TimeUs pending_time_ = -1;         // -1: nothing scheduled
  std::uint32_t pending_bucket_ = kNil;
  std::uint32_t fan_cursor_ = kNil;  // next slot the running fan-out visits
};

}  // namespace livesim::sim

#endif  // LIVESIM_SIM_POLL_WHEEL_H
