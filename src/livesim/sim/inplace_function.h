// Small-buffer-optimized, move-only callable wrapper.
//
// The event engine schedules tens of millions of callbacks per experiment;
// with std::function every one of them is a heap allocation, because the
// typical capture ([this] plus a couple of ids and a timestamp) exceeds
// libstdc++'s 16-byte SBO. InplaceFunction raises the inline budget to
// `Capacity` bytes (64 by default -- large enough for every hot-path
// lambda in livesim) and stores the callable directly in the wrapper, so
// the common schedule never touches the allocator. Oversized or
// over-aligned captures transparently fall back to a single heap cell,
// preserving std::function's "any callable works" ergonomics.
//
// Differences from std::function, deliberately:
//   * move-only (so move-only captures work, and copies can't sneak an
//     allocation into the hot path);
//   * moved-from and default-constructed wrappers are empty; invoking an
//     empty wrapper is undefined (the engine never stores empty ones);
//   * the callable must be nothrow-move-constructible to live inline
//     (every lambda is); throwing movers fall back to the heap cell.
#ifndef LIVESIM_SIM_INPLACE_FUNCTION_H
#define LIVESIM_SIM_INPLACE_FUNCTION_H

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace livesim::sim {

inline constexpr std::size_t kInplaceFunctionCapacity = 64;

template <typename Signature,
          std::size_t Capacity = kInplaceFunctionCapacity>
class InplaceFunction;

template <typename R, typename... Args, std::size_t Capacity>
class InplaceFunction<R(Args...), Capacity> {
  static_assert(Capacity >= sizeof(void*),
                "the buffer must at least hold the heap-fallback pointer");

 public:
  InplaceFunction() = default;
  InplaceFunction(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<
                !std::is_same_v<D, InplaceFunction> &&
                std::is_invocable_r_v<R, D&, Args...>>>
  InplaceFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    if constexpr (fits_inline<D>()) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      vt_ = &Inline<D>::vt;
    } else {
      ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(f)));
      vt_ = &Boxed<D>::vt;
    }
  }

  InplaceFunction(InplaceFunction&& other) noexcept : vt_(other.vt_) {
    if (vt_ != nullptr) {
      take(other);
    }
  }

  InplaceFunction& operator=(InplaceFunction&& other) noexcept {
    if (this != &other) {
      reset();
      if (other.vt_ != nullptr) {
        vt_ = other.vt_;
        take(other);
      }
    }
    return *this;
  }

  InplaceFunction& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }

  /// Constructs a callable directly in the buffer, skipping the temporary
  /// wrapper (and its relocation) a converting construct-then-move incurs.
  /// This is the engine's schedule fast path.
  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<
                !std::is_same_v<D, InplaceFunction> &&
                std::is_invocable_r_v<R, D&, Args...>>>
  void emplace(F&& f) {
    reset();
    if constexpr (fits_inline<D>()) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      vt_ = &Inline<D>::vt;
    } else {
      ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(f)));
      vt_ = &Boxed<D>::vt;
    }
  }

  InplaceFunction(const InplaceFunction&) = delete;
  InplaceFunction& operator=(const InplaceFunction&) = delete;

  ~InplaceFunction() { reset(); }

  R operator()(Args... args) const {
    return vt_->invoke(const_cast<unsigned char*>(buf_),
                       std::forward<Args>(args)...);
  }

  explicit operator bool() const noexcept { return vt_ != nullptr; }

  /// True when the held callable lives in the inline buffer (no heap cell).
  /// Exposed so tests can pin the SBO threshold.
  bool is_inline() const noexcept { return vt_ != nullptr && vt_->inline_; }

  template <typename D>
  static constexpr bool fits_inline() {
    return sizeof(D) <= Capacity && alignof(D) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<D>;
  }

 private:
  struct VTable {
    R (*invoke)(void* obj, Args&&... args);
    void (*relocate)(void* dst, void* src) noexcept;  // move-construct, then
                                                      // destroy the source
    void (*destroy)(void* obj) noexcept;
    bool inline_;
    // Trivial-capture fast paths: the common scheduling lambda (a `this`
    // pointer plus a few ids) is trivially copyable and destructible, so
    // moves become a fixed-size memcpy and destruction a pointer clear --
    // no indirect call on either hot path.
    bool trivial_relocate;
    bool trivial_destroy;
  };

  template <typename D>
  struct Inline {
    static R invoke(void* obj, Args&&... args) {
      return (*static_cast<D*>(obj))(std::forward<Args>(args)...);
    }
    static void relocate(void* dst, void* src) noexcept {
      D* from = static_cast<D*>(src);
      ::new (dst) D(std::move(*from));
      from->~D();
    }
    static void destroy(void* obj) noexcept { static_cast<D*>(obj)->~D(); }
    static constexpr VTable vt{&invoke, &relocate, &destroy, true,
                               std::is_trivially_copyable_v<D>,
                               std::is_trivially_destructible_v<D>};
  };

  template <typename D>
  struct Boxed {
    static D*& cell(void* obj) { return *static_cast<D**>(obj); }
    static R invoke(void* obj, Args&&... args) {
      return (*cell(obj))(std::forward<Args>(args)...);
    }
    static void relocate(void* dst, void* src) noexcept {
      ::new (dst) D*(cell(src));  // ownership moves with the pointer
    }
    static void destroy(void* obj) noexcept { delete cell(obj); }
    // The box pointer itself relocates trivially; destruction never does.
    static constexpr VTable vt{&invoke, &relocate, &destroy, false,
                               true, false};
  };

  // Precondition: vt_ == other.vt_ != nullptr and our buffer is dead.
  // Leaves `other` empty.
  void take(InplaceFunction& other) noexcept {
    if (vt_->trivial_relocate) {
      std::memcpy(buf_, other.buf_, Capacity);
    } else {
      vt_->relocate(buf_, other.buf_);
    }
    other.vt_ = nullptr;
  }

  void reset() noexcept {
    if (vt_ != nullptr) {
      if (!vt_->trivial_destroy) vt_->destroy(buf_);
      vt_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[Capacity];
  const VTable* vt_ = nullptr;
};

template <typename Sig, std::size_t Cap>
bool operator==(const InplaceFunction<Sig, Cap>& f, std::nullptr_t) noexcept {
  return !static_cast<bool>(f);
}
template <typename Sig, std::size_t Cap>
bool operator!=(const InplaceFunction<Sig, Cap>& f, std::nullptr_t) noexcept {
  return static_cast<bool>(f);
}

}  // namespace livesim::sim

#endif  // LIVESIM_SIM_INPLACE_FUNCTION_H
