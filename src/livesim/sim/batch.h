// Batched op timeline: the join-storm admission path.
//
// A flash crowd is 10^5..10^6 pre-declared (time, op) pairs. Scheduling
// each as its own engine event would thaw the storm into per-viewer
// slots, heap entries, and callback closures -- exactly the per-viewer
// cost the poll wheel removed from the steady state. A BatchTimeline
// instead quantizes every op time UP to the next multiple of a fixed
// window, groups the ops into one flat pre-sized vector partitioned by
// window, and drives the whole timeline through ONE chained engine
// event: the pending event always aims at the earliest remaining
// non-empty window, and each firing hands the caller that window's ops
// as a contiguous span, then re-aims at the next window (the same
// single-pending-event discipline sim::PollWheel uses for poll ticks).
//
// Cost model: seal() is one stable sort over the ops; after that the
// engine sees exactly `batches()` events for the entire timeline --
// zero allocations, zero per-op heap traffic.
//
// Determinism contract:
//  * quantize(t) depends only on (t, window): ceil to the next window
//    boundary, so an op never fires early and never slips more than one
//    window past its requested time (the admission-latency bound the
//    crowd bench pins).
//  * Ops mapping to the same window fire in add() order (stable sort),
//    so the caller's insertion order IS the within-batch order at every
//    thread count.
#ifndef LIVESIM_SIM_BATCH_H
#define LIVESIM_SIM_BATCH_H

#include <cstdint>
#include <span>
#include <vector>

#include "livesim/sim/simulator.h"

namespace livesim::sim {

class BatchTimeline {
 public:
  /// One call per non-empty window: `at` is the window boundary the
  /// batch fired on, `ops` the opaque payloads in add() order.
  using BatchFn = InplaceFunction<void(TimeUs, std::span<const std::uint64_t>)>;

  /// `window` <= 0 is clamped to 1 us (every op gets its own batch).
  BatchTimeline(Simulator& sim, DurationUs window);
  ~BatchTimeline();

  BatchTimeline(const BatchTimeline&) = delete;
  BatchTimeline& operator=(const BatchTimeline&) = delete;

  /// The smallest window boundary at or after `at` (negative clamps
  /// to 0). quantize(k * window) == k * window: an op landing exactly
  /// on a boundary pays zero latency.
  TimeUs quantize(TimeUs at) const noexcept;

  /// Declares one op. Only valid before seal().
  void add(TimeUs at, std::uint64_t op);

  /// Sorts, groups, and schedules the chain. Call exactly once; an
  /// empty timeline seals to nothing and touches the engine not at all.
  void seal(BatchFn fn);

  DurationUs window() const noexcept { return window_; }
  std::size_t ops() const noexcept { return ops_.size(); }
  /// Non-empty windows (valid after seal()): the engine-event count for
  /// the whole timeline.
  std::size_t batches() const noexcept { return batches_.size(); }
  std::size_t batches_fired() const noexcept { return fired_; }
  bool sealed() const noexcept { return sealed_; }

 private:
  struct Entry {
    TimeUs at;         // quantized window boundary
    std::uint64_t op;
  };
  struct Batch {
    TimeUs at;
    std::uint32_t begin = 0;  // [begin, end) into ops_
    std::uint32_t end = 0;
  };

  void fire();  // runs batches_[fired_], then re-aims at the next one

  Simulator& sim_;
  DurationUs window_;
  BatchFn fn_;
  std::vector<Entry> entries_;        // staging; cleared by seal()
  std::vector<std::uint64_t> ops_;    // flat, batch-partitioned
  std::vector<Batch> batches_;
  std::size_t fired_ = 0;
  EventHandle pending_{};
  bool sealed_ = false;
};

}  // namespace livesim::sim

#endif  // LIVESIM_SIM_BATCH_H
