// Discrete-event simulation engine.
//
// A Simulator owns a time-ordered queue of callbacks. Events scheduled for
// the same instant fire in scheduling order (stable), which keeps protocol
// handshakes deterministic. Everything in livesim that "takes time" is
// expressed as events against one of these.
//
// Internals (see DESIGN.md "Engine internals & performance model"):
// events live in a recycling slab of slots addressed by {index, generation}
// handles. Slots are allocated in fixed-size chunks so their addresses are
// stable for the slab's lifetime -- callbacks are invoked in place, never
// moved, and a PeriodicProcess re-arms its slot and closure verbatim every
// tick. A 4-ary min-heap of (time, seq, slot) entries orders the queue; a
// parallel heap-position array lets cancel() splice an entry out
// immediately, so there are no tombstones and no hash sets anywhere.
// Callbacks are stored in a 64-byte small-buffer-optimized EventFn, so the
// common schedule performs zero heap allocations.
#ifndef LIVESIM_SIM_SIMULATOR_H
#define LIVESIM_SIM_SIMULATOR_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "livesim/sim/inplace_function.h"
#include "livesim/util/time.h"

namespace livesim::sim {

using EventFn = InplaceFunction<void()>;

/// Names one scheduled (pending) event: the arena slot it occupies plus
/// the slot's generation at scheduling time. Slots are recycled; the
/// generation is bumped whenever an event fires or is cancelled, so a
/// stale handle can never cancel the slot's next tenant.
struct EventHandle {
  static constexpr std::uint32_t kInvalidIndex = 0xFFFFFFFFu;

  std::uint32_t index = kInvalidIndex;
  std::uint32_t generation = 0;

  constexpr bool valid() const noexcept { return index != kInvalidIndex; }
  friend constexpr bool operator==(EventHandle, EventHandle) = default;
};

class Simulator {
 public:
  Simulator() = default;

  // Non-copyable: events capture `this` of live components.
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  TimeUs now() const noexcept { return now_; }

  /// Schedules `fn` at absolute time `t` (>= now, else clamped to now).
  /// The callable is constructed directly in its arena slot: for captures
  /// within the EventFn inline budget no temporary wrapper and no heap
  /// allocation are involved.
  template <typename F>
  EventHandle schedule_at(TimeUs t, F&& fn) {
    if (t < now_) t = now_;
    const std::uint32_t idx = acquire_slot();
    Slot& s = slot(idx);
    if constexpr (std::is_same_v<std::decay_t<F>, EventFn>) {
      s.fn = std::forward<F>(fn);
    } else {
      s.fn.emplace(std::forward<F>(fn));
    }
    s.state = SlotState::kQueued;
    heap_push(HeapEntry{t, next_seq_++, idx});
    return EventHandle{idx, s.generation};
  }

  /// Schedules `fn` after `delay` (negative delays clamp to "immediately").
  template <typename F>
  EventHandle schedule_in(DurationUs delay, F&& fn) {
    if (delay < 0) delay = 0;
    return schedule_at(now_ + delay, std::forward<F>(fn));
  }

  /// Cancels a pending event. Returns false if it already ran, was already
  /// cancelled, or never existed. The heap entry is spliced out on the
  /// spot: cancelled events occupy no memory and are never re-examined.
  bool cancel(EventHandle h);

  /// Re-arms the event currently being fired at absolute time `t`
  /// (clamped to now), reusing its slot and its callback in place --
  /// the PeriodicProcess fast path. Must be called from inside the
  /// running callback, at most once per firing; consumes a fresh FIFO
  /// sequence number exactly like schedule_at, so the firing order is
  /// byte-identical to a schedule_at-based re-arm. Returns the handle
  /// naming the re-armed event.
  EventHandle reschedule_current(TimeUs t);

  /// Runs until the queue is empty.
  void run();

  /// Runs events with time <= `t`, then sets the clock to `t`.
  void run_until(TimeUs t);

  /// Runs at most `n` further events; returns how many actually ran.
  std::size_t step(std::size_t n = 1);

  std::size_t pending() const noexcept { return heap_.size(); }
  std::size_t events_processed() const noexcept { return processed_; }

 private:
  // 256 slots per chunk: a chunk is ~20 KB, and slot addresses never move,
  // so a callback can be invoked in place while the slab grows under it.
  static constexpr std::uint32_t kChunkShift = 8;
  static constexpr std::uint32_t kChunkSize = 1u << kChunkShift;
  static constexpr std::uint32_t kChunkMask = kChunkSize - 1;

  enum class SlotState : std::uint8_t { kFree, kQueued, kRunning };

  struct Slot {
    EventFn fn;
    std::uint32_t generation = 1;
    SlotState state = SlotState::kFree;
    bool executing = false;  // operator() frames on the stack right now
  };

  // The ordering key lives inline in the heap entry so sift compares never
  // chase a pointer into the slab.
  struct HeapEntry {
    TimeUs time;
    std::uint64_t seq;  // tie-break: FIFO among same-time events
    std::uint32_t slot;
  };

  static bool earlier(const HeapEntry& a, const HeapEntry& b) noexcept {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }

  Slot& slot(std::uint32_t idx) noexcept {
    return chunks_[idx >> kChunkShift][idx & kChunkMask];
  }

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t idx);
  void heap_push(HeapEntry e);
  void heap_pop_root();
  void heap_erase(std::uint32_t pos);
  void heap_sift_up(std::uint32_t pos);
  void heap_sift_down(std::uint32_t pos);

  bool pop_one();  // runs the earliest event, if any

  std::vector<std::unique_ptr<Slot[]>> chunks_;
  std::vector<HeapEntry> heap_;  // 4-ary min-heap over (time, seq)
  // Per-slot bookkeeping kept out of the slot so sift write-backs touch a
  // dense 4-byte-stride array: heap position while kQueued, next-free
  // link while kFree.
  std::vector<std::uint32_t> heap_pos_;
  std::uint32_t slot_count_ = 0;
  std::uint32_t free_head_ = EventHandle::kInvalidIndex;
  std::uint32_t running_slot_ = EventHandle::kInvalidIndex;
  TimeUs now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::size_t processed_ = 0;
};

/// Repeats a callback at a (possibly jittered) interval until stopped.
/// The callback receives the process so it can stop itself.
class PeriodicProcess {
 public:
  using TickFn = InplaceFunction<void(PeriodicProcess&)>;

  /// Starts ticking at `start`, then every `interval`. The optional
  /// `jitter_fn` returns a signed offset added to each subsequent interval.
  PeriodicProcess(Simulator& sim, TimeUs start, DurationUs interval, TickFn fn);

  ~PeriodicProcess() { stop(); }
  PeriodicProcess(const PeriodicProcess&) = delete;
  PeriodicProcess& operator=(const PeriodicProcess&) = delete;

  void stop();
  bool running() const noexcept { return running_; }
  DurationUs interval() const noexcept { return interval_; }
  void set_interval(DurationUs interval) noexcept { interval_ = interval; }
  std::uint64_t ticks() const noexcept { return ticks_; }

 private:
  void tick();

  Simulator& sim_;
  DurationUs interval_;
  TickFn fn_;
  EventHandle pending_{};
  bool running_ = true;
  std::uint64_t ticks_ = 0;
};

}  // namespace livesim::sim

#endif  // LIVESIM_SIM_SIMULATOR_H
