// Discrete-event simulation engine.
//
// A Simulator owns a time-ordered queue of callbacks. Events scheduled for
// the same instant fire in scheduling order (stable), which keeps protocol
// handshakes deterministic. Everything in livesim that "takes time" is
// expressed as events against one of these.
#ifndef LIVESIM_SIM_SIMULATOR_H
#define LIVESIM_SIM_SIMULATOR_H

#include <cstddef>
#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "livesim/util/ids.h"
#include "livesim/util/time.h"

namespace livesim::sim {

using EventFn = std::function<void()>;

class Simulator {
 public:
  Simulator() = default;

  // Non-copyable: events capture `this` of live components.
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  TimeUs now() const noexcept { return now_; }

  /// Schedules `fn` at absolute time `t` (>= now, else clamped to now).
  EventId schedule_at(TimeUs t, EventFn fn);

  /// Schedules `fn` after `delay` (negative delays clamp to "immediately").
  EventId schedule_in(DurationUs delay, EventFn fn);

  /// Cancels a pending event. Returns false if it already ran, was already
  /// cancelled, or never existed.
  bool cancel(EventId id);

  /// Runs until the queue is empty.
  void run();

  /// Runs events with time <= `t`, then sets the clock to `t`.
  void run_until(TimeUs t);

  /// Runs at most `n` further events; returns how many actually ran.
  std::size_t step(std::size_t n = 1);

  std::size_t pending() const noexcept { return pending_ids_.size(); }
  std::size_t events_processed() const noexcept { return processed_; }

 private:
  struct Entry {
    TimeUs time;
    std::uint64_t seq;  // tie-break: FIFO among same-time events
    EventFn fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  // Discards tombstoned entries off the top of the heap and returns the
  // earliest live entry, or nullptr when no event remains. Shared by
  // pop_one and run_until so the skip policy exists exactly once.
  const Entry* peek();
  bool pop_one();  // runs the earliest non-cancelled event, if any

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_set<std::uint64_t> pending_ids_;
  std::unordered_set<std::uint64_t> cancelled_;
  TimeUs now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::size_t processed_ = 0;
};

/// Repeats a callback at a (possibly jittered) interval until stopped.
/// The callback receives the process so it can stop itself.
class PeriodicProcess {
 public:
  using TickFn = std::function<void(PeriodicProcess&)>;

  /// Starts ticking at `start`, then every `interval`. The optional
  /// `jitter_fn` returns a signed offset added to each subsequent interval.
  PeriodicProcess(Simulator& sim, TimeUs start, DurationUs interval, TickFn fn);

  ~PeriodicProcess() { stop(); }
  PeriodicProcess(const PeriodicProcess&) = delete;
  PeriodicProcess& operator=(const PeriodicProcess&) = delete;

  void stop();
  bool running() const noexcept { return running_; }
  DurationUs interval() const noexcept { return interval_; }
  void set_interval(DurationUs interval) noexcept { interval_ = interval; }
  std::uint64_t ticks() const noexcept { return ticks_; }

 private:
  void arm(TimeUs at);

  Simulator& sim_;
  DurationUs interval_;
  TickFn fn_;
  EventId pending_{};
  bool running_ = true;
  std::uint64_t ticks_ = 0;
};

}  // namespace livesim::sim

#endif  // LIVESIM_SIM_SIMULATOR_H
