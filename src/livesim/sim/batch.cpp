#include "livesim/sim/batch.h"

#include <algorithm>

namespace livesim::sim {

BatchTimeline::BatchTimeline(Simulator& sim, DurationUs window)
    : sim_(sim), window_(window < 1 ? 1 : window) {}

BatchTimeline::~BatchTimeline() {
  if (pending_.valid()) sim_.cancel(pending_);
}

TimeUs BatchTimeline::quantize(TimeUs at) const noexcept {
  if (at < 0) at = 0;
  return ((at + window_ - 1) / window_) * window_;
}

void BatchTimeline::add(TimeUs at, std::uint64_t op) {
  entries_.push_back(Entry{quantize(at), op});
}

void BatchTimeline::seal(BatchFn fn) {
  sealed_ = true;
  fn_ = std::move(fn);
  if (entries_.empty()) return;

  // Stable by window boundary: ops sharing a window keep add() order,
  // so the within-batch order is the caller's insertion order at every
  // thread count.
  std::stable_sort(entries_.begin(), entries_.end(),
                   [](const Entry& a, const Entry& b) { return a.at < b.at; });

  ops_.reserve(entries_.size());
  for (const Entry& e : entries_) {
    if (batches_.empty() || batches_.back().at != e.at) {
      Batch b;
      b.at = e.at;
      b.begin = b.end = static_cast<std::uint32_t>(ops_.size());
      batches_.push_back(b);
    }
    ops_.push_back(e.op);
    ++batches_.back().end;
  }
  entries_.clear();
  entries_.shrink_to_fit();

  pending_ = sim_.schedule_at(batches_.front().at, [this] { fire(); });
}

void BatchTimeline::fire() {
  const Batch& b = batches_[fired_];
  ++fired_;
  // Re-aim BEFORE running the batch: ops may schedule into the engine
  // (joins arm polling) and the chain's FIFO position must not depend
  // on how much work this batch did. reschedule_current reuses this
  // slot and closure in place -- the PeriodicProcess fast path -- so
  // the whole timeline occupies exactly one arena slot for its life.
  pending_ = fired_ < batches_.size()
                 ? sim_.reschedule_current(batches_[fired_].at)
                 : EventHandle{};
  fn_(b.at, std::span<const std::uint64_t>(ops_.data() + b.begin,
                                           b.end - b.begin));
}

}  // namespace livesim::sim
