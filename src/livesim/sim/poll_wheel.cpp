#include "livesim/sim/poll_wheel.h"

namespace livesim::sim {

PollWheel::PollWheel(Simulator& sim, DurationUs period, std::uint32_t buckets)
    : sim_(sim) {
  if (buckets == 0) buckets = 1;
  slot_width_ = period / static_cast<DurationUs>(buckets);
  if (slot_width_ < 1) slot_width_ = 1;
  period_ = slot_width_ * static_cast<DurationUs>(buckets);
  bucket_head_.assign(buckets, kNil);
  bucket_tail_.assign(buckets, kNil);
  bucket_due_.assign(buckets, -1);
}

PollWheel::~PollWheel() {
  if (pending_.valid()) sim_.cancel(pending_);
}

TimeUs PollWheel::quantize(TimeUs raw) const noexcept {
  const DurationUs w = slot_width_;
  TimeUs t = ((raw + w - 1) / w) * w;
  const TimeUs now = sim_.now();
  if (t <= now) t = (now / w + 1) * w;
  return t;
}

std::uint32_t PollWheel::acquire_slot() {
  if (free_head_ != kNil) {
    const std::uint32_t idx = free_head_;
    free_head_ = ledger_.next[idx];
    return idx;
  }
  const auto idx = static_cast<std::uint32_t>(ledger_.tag.size());
  ledger_.tag.push_back(0);
  ledger_.generation.push_back(1);
  ledger_.bucket.push_back(kNil);
  ledger_.first_due.push_back(0);
  ledger_.prev.push_back(kNil);
  ledger_.next.push_back(kNil);
  ledger_.outstanding.push_back(0);
  return idx;
}

void PollWheel::release_slot(std::uint32_t idx) {
  // Bump the generation so every outstanding CohortSlot naming this index
  // goes stale; the slot then heads the free list.
  ++ledger_.generation[idx];
  ledger_.bucket[idx] = kNil;
  ledger_.outstanding[idx] = 0;
  ledger_.prev[idx] = kNil;
  ledger_.next[idx] = free_head_;
  free_head_ = idx;
}

CohortSlot PollWheel::attach(TimeUs first_tick, std::uint64_t tag) {
  const std::uint32_t idx = acquire_slot();
  const auto b = static_cast<std::uint32_t>(
      (first_tick / slot_width_) % static_cast<DurationUs>(buckets()));

  ledger_.tag[idx] = tag;
  ledger_.bucket[idx] = b;
  ledger_.first_due[idx] = first_tick;
  ledger_.outstanding[idx] = 0;

  // Append at tail: fan-out order == attach order == the firing order of
  // equivalent per-viewer timers created in the same sequence.
  ledger_.prev[idx] = bucket_tail_[b];
  ledger_.next[idx] = kNil;
  if (bucket_tail_[b] != kNil)
    ledger_.next[bucket_tail_[b]] = idx;
  else
    bucket_head_[b] = idx;
  bucket_tail_[b] = idx;

  if (bucket_due_[b] < 0 || first_tick < bucket_due_[b])
    bucket_due_[b] = first_tick;
  ++members_;

  if (pending_time_ < 0 || bucket_due_[b] < pending_time_) reschedule();
  return CohortSlot{idx, ledger_.generation[idx]};
}

bool PollWheel::detach(CohortSlot s) {
  if (!live(s)) return false;
  const std::uint32_t idx = s.index;
  const std::uint32_t b = ledger_.bucket[idx];

  // A running fan-out about to visit this slot steps over it instead.
  if (fan_cursor_ == idx) fan_cursor_ = ledger_.next[idx];

  const std::uint32_t p = ledger_.prev[idx];
  const std::uint32_t n = ledger_.next[idx];
  if (p != kNil) ledger_.next[p] = n; else bucket_head_[b] = n;
  if (n != kNil) ledger_.prev[n] = p; else bucket_tail_[b] = p;

  release_slot(idx);
  --members_;

  if (bucket_head_[b] == kNil) {
    bucket_due_[b] = -1;
    reschedule();  // the emptied bucket may have been the pending target
  }
  return true;
}

bool PollWheel::attached(CohortSlot s) const noexcept { return live(s); }

bool PollWheel::outstanding(CohortSlot s) const noexcept {
  return live(s) && ledger_.outstanding[s.index] != 0;
}

void PollWheel::set_outstanding(CohortSlot s, bool v) noexcept {
  if (live(s)) ledger_.outstanding[s.index] = v ? 1 : 0;
}

std::uint64_t PollWheel::tag(CohortSlot s) const noexcept {
  return live(s) ? ledger_.tag[s.index] : 0;
}

TimeUs PollWheel::earliest_due(std::uint32_t* bucket_out) const noexcept {
  TimeUs best = -1;
  std::uint32_t best_b = kNil;
  for (std::uint32_t b = 0; b < buckets(); ++b) {
    const TimeUs due = bucket_due_[b];
    if (due < 0) continue;
    if (best < 0 || due < best) {
      best = due;
      best_b = b;
    }
  }
  if (bucket_out != nullptr) *bucket_out = best_b;
  return best;
}

void PollWheel::reschedule() {
  std::uint32_t b = kNil;
  const TimeUs due = earliest_due(&b);
  if (due == pending_time_ && b == pending_bucket_) return;  // already aimed
  if (pending_.valid()) {
    sim_.cancel(pending_);
    pending_ = EventHandle{};
  }
  pending_time_ = -1;
  pending_bucket_ = kNil;
  if (due < 0) return;  // empty wheel: no pending event at all
  pending_ = sim_.schedule_at(due, [this] { fire(); });
  pending_time_ = due;
  pending_bucket_ = b;
}

void PollWheel::fire() {
  const TimeUs tick = pending_time_;
  const std::uint32_t b = pending_bucket_;
  pending_ = EventHandle{};
  pending_time_ = -1;
  pending_bucket_ = kNil;
  ++ticks_;

  // Advance the due time before fanning out so members attached by a
  // callback (quantized strictly after now) see the bucket's next
  // rotation, never this pass.
  bucket_due_[b] = tick + period_;

  fan_cursor_ = bucket_head_[b];
  while (fan_cursor_ != kNil) {
    const std::uint32_t cur = fan_cursor_;
    fan_cursor_ = ledger_.next[cur];  // advance first: detaching cur is safe
    if (ledger_.first_due[cur] > tick) continue;  // joined mid-rotation
    ledger_.first_due[cur] = 0;
    if (fanout_)
      fanout_(tick, ledger_.tag[cur], CohortSlot{cur, ledger_.generation[cur]});
  }
  fan_cursor_ = kNil;

  if (bucket_head_[b] == kNil) bucket_due_[b] = -1;
  reschedule();
}

}  // namespace livesim::sim
