#include "livesim/stats/sampler.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace livesim::stats {

const std::vector<double>& Sampler::sorted() const {
  if (!sorted_) {
    sorted_cache_ = samples_;
    std::sort(sorted_cache_.begin(), sorted_cache_.end());
    sorted_ = true;
  }
  return sorted_cache_;
}

double Sampler::quantile(double q) const {
  if (samples_.empty()) throw std::logic_error("quantile of empty sampler");
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const auto& s = sorted();
  const double pos = q * static_cast<double>(s.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, s.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return s[lo] + frac * (s[hi] - s[lo]);
}

double Sampler::cdf_at(double x) const {
  if (samples_.empty()) return 0.0;
  const auto& s = sorted();
  const auto it = std::upper_bound(s.begin(), s.end(), x);
  return static_cast<double>(it - s.begin()) / static_cast<double>(s.size());
}

double Sampler::fraction_geq(double x) const {
  if (samples_.empty()) return 0.0;
  const auto& s = sorted();
  const auto it = std::lower_bound(s.begin(), s.end(), x);
  return static_cast<double>(s.end() - it) / static_cast<double>(s.size());
}

std::vector<double> Sampler::cdf_series(const std::vector<double>& points) const {
  std::vector<double> out;
  out.reserve(points.size());
  for (double p : points) out.push_back(cdf_at(p));
  return out;
}

}  // namespace livesim::stats
