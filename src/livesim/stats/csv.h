// CSV export for bench artifacts.
//
// Every figure bench prints its series as text; with LIVESIM_CSV_DIR set,
// the same series are also written as plot-ready CSV files, one per
// figure, so the paper's plots can be regenerated with any tool.
#ifndef LIVESIM_STATS_CSV_H
#define LIVESIM_STATS_CSV_H

#include <optional>
#include <string>
#include <vector>

namespace livesim::stats {

class CsvWriter {
 public:
  /// Column-oriented table: one header per column, rows of equal width.
  CsvWriter(std::vector<std::string> headers);

  void add_row(const std::vector<double>& cells);

  /// Serializes to CSV text (RFC-4180-ish, numeric only).
  std::string render() const;

  /// Writes `<dir>/<name>.csv` if `dir` is non-empty; returns the path
  /// written, or nullopt when disabled or on I/O failure.
  std::optional<std::string> write(const std::string& dir,
                                   const std::string& name) const;

  /// Convenience: the value of LIVESIM_CSV_DIR ("" when unset).
  static std::string env_dir();

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<double>> rows_;
};

}  // namespace livesim::stats

#endif  // LIVESIM_STATS_CSV_H
