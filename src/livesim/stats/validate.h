// Distribution-validation helpers for property tests: quantify how far an
// empirical sample sits from a reference distribution instead of spot-
// checking a few moments.
#ifndef LIVESIM_STATS_VALIDATE_H
#define LIVESIM_STATS_VALIDATE_H

#include <functional>

#include "livesim/stats/sampler.h"

namespace livesim::stats {

/// Kolmogorov-Smirnov distance between the sample's empirical CDF and a
/// reference CDF: sup_x |F_n(x) - F(x)|.
double ks_distance(const Sampler& sample,
                   const std::function<double(double)>& reference_cdf);

/// Chi-square statistic of observed counts against expected probabilities
/// (same length, probabilities should sum to ~1). Returns the statistic;
/// degrees of freedom = bins - 1.
double chi_square(const std::vector<std::uint64_t>& observed,
                  const std::vector<double>& expected_probability);

/// Convenience references.
double uniform_cdf(double x, double lo, double hi);
double exponential_cdf(double x, double mean);

}  // namespace livesim::stats

#endif  // LIVESIM_STATS_VALIDATE_H
