#include "livesim/stats/csv.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace livesim::stats {

CsvWriter::CsvWriter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  if (headers_.empty())
    throw std::invalid_argument("CsvWriter: need at least one column");
}

void CsvWriter::add_row(const std::vector<double>& cells) {
  if (cells.size() != headers_.size())
    throw std::invalid_argument("CsvWriter: row width mismatch");
  rows_.push_back(cells);
}

std::string CsvWriter::render() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < headers_.size(); ++i)
    os << (i ? "," : "") << headers_[i];
  os << '\n';
  char buf[64];
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      std::snprintf(buf, sizeof buf, "%.6g", row[i]);
      os << (i ? "," : "") << buf;
    }
    os << '\n';
  }
  return os.str();
}

std::optional<std::string> CsvWriter::write(const std::string& dir,
                                            const std::string& name) const {
  if (dir.empty()) return std::nullopt;
  const std::string path = dir + "/" + name + ".csv";
  std::ofstream out(path);
  if (!out) return std::nullopt;
  out << render();
  return out ? std::optional<std::string>(path) : std::nullopt;
}

std::string CsvWriter::env_dir() {
  const char* dir = std::getenv("LIVESIM_CSV_DIR");
  return dir != nullptr ? std::string(dir) : std::string();
}

}  // namespace livesim::stats
