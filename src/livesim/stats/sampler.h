// Sample collector with quantile / CDF queries.
//
// The paper's figures are almost all empirical CDFs across broadcasts;
// Sampler is the workhorse that turns per-broadcast metrics into the
// printed series.
#ifndef LIVESIM_STATS_SAMPLER_H
#define LIVESIM_STATS_SAMPLER_H

#include <cstddef>
#include <vector>

#include "livesim/stats/accumulator.h"

namespace livesim::stats {

class Sampler {
 public:
  void add(double x) {
    samples_.push_back(x);
    acc_.add(x);
    sorted_ = false;
  }

  /// Appends another sampler's samples in their insertion order.
  ///
  /// The summary moments are re-accumulated sample-by-sample rather than
  /// combined with Accumulator::merge: that makes merging shard results in
  /// index order produce a Sampler byte-identical to single-pass serial
  /// accumulation, which the parallel experiment runner's determinism
  /// guarantee (same output at every thread count) depends on.
  void merge(const Sampler& o) {
    samples_.reserve(samples_.size() + o.samples_.size());
    for (double x : o.samples_) add(x);
  }

  void reserve(std::size_t n) { samples_.reserve(n); }

  std::size_t size() const noexcept { return samples_.size(); }
  bool empty() const noexcept { return samples_.empty(); }
  const Accumulator& summary() const noexcept { return acc_; }
  double mean() const noexcept { return acc_.mean(); }
  double stddev() const noexcept { return acc_.stddev(); }
  double min() const noexcept { return acc_.min(); }
  double max() const noexcept { return acc_.max(); }

  /// Quantile in [0, 1] with linear interpolation between order statistics.
  double quantile(double q) const;

  double median() const { return quantile(0.5); }

  /// Empirical CDF: fraction of samples <= x.
  double cdf_at(double x) const;

  /// Fraction of samples strictly below / at-or-above thresholds.
  double fraction_leq(double x) const { return cdf_at(x); }
  double fraction_geq(double x) const;

  /// Samples in insertion order.
  const std::vector<double>& samples() const noexcept { return samples_; }

  /// Sorted copy of the samples (cached).
  const std::vector<double>& sorted() const;

  /// Evaluates the CDF at `points` x-values; returns matching fractions.
  std::vector<double> cdf_series(const std::vector<double>& points) const;

 private:
  std::vector<double> samples_;
  mutable std::vector<double> sorted_cache_;
  mutable bool sorted_ = false;
  Accumulator acc_;
};

}  // namespace livesim::stats

#endif  // LIVESIM_STATS_SAMPLER_H
