// Fixed-width and log-scale histograms for delay / size distributions.
#ifndef LIVESIM_STATS_HISTOGRAM_H
#define LIVESIM_STATS_HISTOGRAM_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace livesim::stats {

/// Linear-bin histogram over [lo, hi); out-of-range samples clamp into the
/// first/last bin so totals are preserved.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;

  /// Adds another histogram's counts bin-by-bin. Requires identical
  /// binning (same lo / hi / bin count); throws std::invalid_argument
  /// otherwise. Integer counts make this exactly commutative/associative,
  /// so shard merges are independent of merge order.
  void merge(const Histogram& o);

  double lo() const noexcept { return lo_; }
  double hi() const noexcept { return hi_; }
  std::size_t bins() const noexcept { return counts_.size(); }
  std::uint64_t count(std::size_t bin) const { return counts_.at(bin); }
  std::uint64_t total() const noexcept { return total_; }

  /// Center x-value of a bin.
  double bin_center(std::size_t bin) const;
  double bin_lo(std::size_t bin) const;

  /// Fraction of all samples in this bin (0 if empty histogram).
  double fraction(std::size_t bin) const;

 private:
  double lo_, hi_, width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace livesim::stats

#endif  // LIVESIM_STATS_HISTOGRAM_H
