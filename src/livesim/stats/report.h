// ASCII reporting helpers shared by all bench binaries.
//
// Every bench prints the same artifacts the paper does: a titled table
// (rows of label -> values) or a CDF/series block with one line per
// x-point, so the output can be diffed against the paper's figures.
#ifndef LIVESIM_STATS_REPORT_H
#define LIVESIM_STATS_REPORT_H

#include <string>
#include <vector>

#include "livesim/stats/sampler.h"

namespace livesim::stats {

/// Column-aligned ASCII table.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 2);
  static std::string integer(std::int64_t v);  // with thousands separators
  static std::string percent(double fraction, int precision = 1);

  /// Renders the table to a string (used by tests); `print` writes stdout.
  std::string render() const;
  void print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a figure banner: "=== Figure 11: ... ===".
void print_banner(const std::string& title);

/// Prints one labelled CDF as "x  F(x)" rows over the given x points.
void print_cdf(const std::string& label, const Sampler& sampler,
               const std::vector<double>& points, int precision = 3);

/// Builds n log-spaced points between lo and hi (inclusive), lo > 0.
std::vector<double> log_points(double lo, double hi, std::size_t n);

/// Builds n linearly spaced points between lo and hi (inclusive).
std::vector<double> linear_points(double lo, double hi, std::size_t n);

}  // namespace livesim::stats

#endif  // LIVESIM_STATS_REPORT_H
