// Streaming moment accumulators (Welford), usable without storing samples.
#ifndef LIVESIM_STATS_ACCUMULATOR_H
#define LIVESIM_STATS_ACCUMULATOR_H

#include <cmath>
#include <cstdint>
#include <limits>

namespace livesim::stats {

/// Accumulates count / mean / variance / min / max in O(1) space.
class Accumulator {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }

  /// Merges another accumulator (parallel Welford).
  void merge(const Accumulator& o) noexcept {
    if (o.n_ == 0) return;
    if (n_ == 0) {
      *this = o;
      return;
    }
    const double delta = o.mean_ - mean_;
    const auto n = static_cast<double>(n_ + o.n_);
    m2_ += o.m2_ + delta * delta * static_cast<double>(n_) *
                       static_cast<double>(o.n_) / n;
    mean_ += delta * static_cast<double>(o.n_) / n;
    n_ += o.n_;
    if (o.min_ < min_) min_ = o.min_;
    if (o.max_ > max_) max_ = o.max_;
  }

  std::uint64_t count() const noexcept { return n_; }
  bool empty() const noexcept { return n_ == 0; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const noexcept { return std::sqrt(variance()); }
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }
  double sum() const noexcept { return mean_ * static_cast<double>(n_); }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Pearson correlation between paired samples, streaming (co-moment form).
class Correlation {
 public:
  void add(double x, double y) noexcept {
    ++n_;
    const auto n = static_cast<double>(n_);
    const double dx = x - mx_;
    const double dy = y - my_;
    mx_ += dx / n;
    my_ += dy / n;
    // Update co-moment with the *new* mean of y (standard online covariance).
    cxy_ += dx * (y - my_);
    sxx_ += dx * (x - mx_);
    syy_ += dy * (y - my_);
  }

  std::uint64_t count() const noexcept { return n_; }

  /// Pearson r; 0 when degenerate (fewer than 2 points or zero variance).
  double pearson() const noexcept {
    if (n_ < 2) return 0.0;
    const double denom = std::sqrt(sxx_ * syy_);
    return denom > 0.0 ? cxy_ / denom : 0.0;
  }

  double covariance() const noexcept {
    return n_ > 1 ? cxy_ / static_cast<double>(n_ - 1) : 0.0;
  }

 private:
  std::uint64_t n_ = 0;
  double mx_ = 0, my_ = 0;
  double cxy_ = 0, sxx_ = 0, syy_ = 0;
};

}  // namespace livesim::stats

#endif  // LIVESIM_STATS_ACCUMULATOR_H
