#include "livesim/stats/histogram.h"

#include <stdexcept>

namespace livesim::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  if (bins == 0) throw std::invalid_argument("Histogram: bins must be > 0");
  if (!(hi > lo)) throw std::invalid_argument("Histogram: hi must be > lo");
}

void Histogram::add(double x) noexcept {
  std::size_t bin;
  if (x < lo_) {
    bin = 0;
  } else if (x >= hi_) {
    bin = counts_.size() - 1;
  } else {
    bin = static_cast<std::size_t>((x - lo_) / width_);
    if (bin >= counts_.size()) bin = counts_.size() - 1;
  }
  ++counts_[bin];
  ++total_;
}

void Histogram::merge(const Histogram& o) {
  if (lo_ != o.lo_ || hi_ != o.hi_ || counts_.size() != o.counts_.size())
    throw std::invalid_argument("Histogram::merge: incompatible binning");
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += o.counts_[i];
  total_ += o.total_;
}

double Histogram::bin_center(std::size_t bin) const {
  return lo_ + (static_cast<double>(bin) + 0.5) * width_;
}

double Histogram::bin_lo(std::size_t bin) const {
  return lo_ + static_cast<double>(bin) * width_;
}

double Histogram::fraction(std::size_t bin) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_.at(bin)) / static_cast<double>(total_);
}

}  // namespace livesim::stats
