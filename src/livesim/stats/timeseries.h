// Daily time series for the growth plots (Figures 1-2), plus the
// fixed-capacity ring-buffer Timeseries the control plane's telemetry
// ledgers are built on.
#ifndef LIVESIM_STATS_TIMESERIES_H
#define LIVESIM_STATS_TIMESERIES_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "livesim/util/time.h"

namespace livesim::stats {

/// Fixed-capacity ring buffer of (time, value) points: a telemetry
/// ledger that remembers the last `capacity` scrapes and answers window
/// queries (mean, min/max, least-squares trend) over what it holds.
/// Pushing past capacity overwrites the oldest point; `pushes()` keeps
/// the lifetime count so overwritten history is still accounted for.
/// All queries are pure arithmetic over the ring in oldest-to-newest
/// order, so identical push sequences yield bit-identical answers.
class Timeseries {
 public:
  struct Point {
    TimeUs at = 0;
    double value = 0.0;
  };

  explicit Timeseries(std::size_t capacity)
      : ring_(capacity == 0 ? 1 : capacity) {}

  void push(TimeUs at, double value) {
    ring_[head_] = Point{at, value};
    head_ = (head_ + 1) % ring_.size();
    if (size_ < ring_.size()) ++size_;
    ++pushes_;
  }

  std::size_t size() const noexcept { return size_; }
  std::size_t capacity() const noexcept { return ring_.size(); }
  bool empty() const noexcept { return size_ == 0; }
  /// Lifetime pushes, including points the ring has since overwritten.
  std::uint64_t pushes() const noexcept { return pushes_; }

  /// i-th newest point: newest(0) is the latest sample. Requires i < size().
  const Point& newest(std::size_t i = 0) const {
    return ring_[(head_ + ring_.size() - 1 - i % ring_.size()) % ring_.size()];
  }
  double last() const { return empty() ? 0.0 : newest().value; }

  double mean() const noexcept {
    if (size_ == 0) return 0.0;
    double sum = 0.0;
    for (std::size_t i = 0; i < size_; ++i) sum += newest(i).value;
    return sum / static_cast<double>(size_);
  }

  double max() const noexcept {
    double m = 0.0;
    for (std::size_t i = 0; i < size_; ++i)
      if (i == 0 || newest(i).value > m) m = newest(i).value;
    return m;
  }

  /// Least-squares slope of value over time, per second, across the ring
  /// (oldest to newest). 0 with fewer than two points or zero time span —
  /// the "trending toward full" predictor the steering policy projects
  /// forward.
  double slope_per_s() const noexcept {
    if (size_ < 2) return 0.0;
    double mt = 0.0, mv = 0.0;
    for (std::size_t i = 0; i < size_; ++i) {
      mt += time::to_seconds(newest(i).at);
      mv += newest(i).value;
    }
    mt /= static_cast<double>(size_);
    mv /= static_cast<double>(size_);
    double num = 0.0, den = 0.0;
    for (std::size_t i = 0; i < size_; ++i) {
      const double dt = time::to_seconds(newest(i).at) - mt;
      num += dt * (newest(i).value - mv);
      den += dt * dt;
    }
    return den > 0.0 ? num / den : 0.0;
  }

  /// Linear projection of the ring's trend `horizon` ahead of the newest
  /// point. With an empty ring returns 0; with a flat trend, last().
  double project(DurationUs horizon) const noexcept {
    if (empty()) return 0.0;
    return last() + slope_per_s() * time::to_seconds(horizon);
  }

 private:
  std::vector<Point> ring_;
  std::size_t head_ = 0;   // next write position
  std::size_t size_ = 0;
  std::uint64_t pushes_ = 0;
};

/// Counts events per simulated day; days index from 0.
class DailySeries {
 public:
  explicit DailySeries(std::size_t days) : counts_(days, 0) {}

  void add(TimeUs at, std::uint64_t n = 1) {
    const auto day = time::day_index(at);
    if (day >= 0 && static_cast<std::size_t>(day) < counts_.size())
      counts_[static_cast<std::size_t>(day)] += n;
  }

  void add_day(std::size_t day, std::uint64_t n = 1) {
    if (day < counts_.size()) counts_[day] += n;
  }

  std::size_t days() const noexcept { return counts_.size(); }
  std::uint64_t at(std::size_t day) const { return counts_.at(day); }
  const std::vector<std::uint64_t>& values() const noexcept { return counts_; }

  std::uint64_t total() const noexcept {
    std::uint64_t sum = 0;
    for (auto c : counts_) sum += c;
    return sum;
  }

 private:
  std::vector<std::uint64_t> counts_;
};

}  // namespace livesim::stats

#endif  // LIVESIM_STATS_TIMESERIES_H
