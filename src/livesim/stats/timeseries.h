// Daily time series for the growth plots (Figures 1-2).
#ifndef LIVESIM_STATS_TIMESERIES_H
#define LIVESIM_STATS_TIMESERIES_H

#include <cstdint>
#include <vector>

#include "livesim/util/time.h"

namespace livesim::stats {

/// Counts events per simulated day; days index from 0.
class DailySeries {
 public:
  explicit DailySeries(std::size_t days) : counts_(days, 0) {}

  void add(TimeUs at, std::uint64_t n = 1) {
    const auto day = time::day_index(at);
    if (day >= 0 && static_cast<std::size_t>(day) < counts_.size())
      counts_[static_cast<std::size_t>(day)] += n;
  }

  void add_day(std::size_t day, std::uint64_t n = 1) {
    if (day < counts_.size()) counts_[day] += n;
  }

  std::size_t days() const noexcept { return counts_.size(); }
  std::uint64_t at(std::size_t day) const { return counts_.at(day); }
  const std::vector<std::uint64_t>& values() const noexcept { return counts_; }

  std::uint64_t total() const noexcept {
    std::uint64_t sum = 0;
    for (auto c : counts_) sum += c;
    return sum;
  }

 private:
  std::vector<std::uint64_t> counts_;
};

}  // namespace livesim::stats

#endif  // LIVESIM_STATS_TIMESERIES_H
