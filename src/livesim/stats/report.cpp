#include "livesim/stats/report.h"

#include <cmath>
#include <cstdio>
#include <iostream>
#include <sstream>
#include <stdexcept>

namespace livesim::stats {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size())
    throw std::invalid_argument("Table row width mismatch");
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string Table::integer(std::int64_t v) {
  std::string digits = std::to_string(v < 0 ? -v : v);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (v < 0) out.push_back('-');
  return {out.rbegin(), out.rend()};
}

std::string Table::percent(double fraction, int precision) {
  return num(fraction * 100.0, precision) + "%";
}

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  for (const auto& row : rows_)
    for (std::size_t i = 0; i < row.size(); ++i)
      if (row[i].size() > widths[i]) widths[i] = row[i].size();

  std::ostringstream os;
  auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      os << (i ? "  " : "");
      os << cells[i];
      for (std::size_t pad = cells[i].size(); pad < widths[i]; ++pad) os << ' ';
    }
    os << '\n';
  };
  line(headers_);
  std::size_t total = 0;
  for (std::size_t i = 0; i < widths.size(); ++i) total += widths[i] + (i ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) line(row);
  return os.str();
}

void Table::print() const { std::cout << render() << std::flush; }

void print_banner(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n";
}

void print_cdf(const std::string& label, const Sampler& sampler,
               const std::vector<double>& points, int precision) {
  std::cout << "-- CDF: " << label << " (n=" << sampler.size() << ")\n";
  for (double p : points) {
    std::cout << "  x=" << Table::num(p, precision)
              << "  F=" << Table::num(sampler.cdf_at(p), 4) << '\n';
  }
}

std::vector<double> log_points(double lo, double hi, std::size_t n) {
  if (!(lo > 0) || !(hi > lo) || n < 2)
    throw std::invalid_argument("log_points: need 0 < lo < hi, n >= 2");
  std::vector<double> out(n);
  const double step = std::log(hi / lo) / static_cast<double>(n - 1);
  for (std::size_t i = 0; i < n; ++i)
    out[i] = lo * std::exp(step * static_cast<double>(i));
  return out;
}

std::vector<double> linear_points(double lo, double hi, std::size_t n) {
  if (n < 2 || !(hi > lo))
    throw std::invalid_argument("linear_points: need lo < hi, n >= 2");
  std::vector<double> out(n);
  const double step = (hi - lo) / static_cast<double>(n - 1);
  for (std::size_t i = 0; i < n; ++i)
    out[i] = lo + step * static_cast<double>(i);
  return out;
}

}  // namespace livesim::stats
