#include "livesim/stats/validate.h"

#include <cmath>
#include <stdexcept>

namespace livesim::stats {

double ks_distance(const Sampler& sample,
                   const std::function<double(double)>& reference_cdf) {
  const auto& sorted = sample.sorted();
  if (sorted.empty()) throw std::logic_error("ks_distance: empty sample");
  const double n = static_cast<double>(sorted.size());
  double worst = 0.0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const double f = reference_cdf(sorted[i]);
    // Empirical CDF jumps at each order statistic: compare both sides.
    const double lo = static_cast<double>(i) / n;
    const double hi = static_cast<double>(i + 1) / n;
    worst = std::max(worst, std::max(std::abs(f - lo), std::abs(f - hi)));
  }
  return worst;
}

double chi_square(const std::vector<std::uint64_t>& observed,
                  const std::vector<double>& expected_probability) {
  if (observed.size() != expected_probability.size() || observed.empty())
    throw std::invalid_argument("chi_square: size mismatch");
  std::uint64_t total = 0;
  for (auto c : observed) total += c;
  if (total == 0) throw std::invalid_argument("chi_square: no observations");
  double stat = 0.0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    const double expected =
        expected_probability[i] * static_cast<double>(total);
    if (expected <= 0.0)
      throw std::invalid_argument("chi_square: zero expected bin");
    const double diff = static_cast<double>(observed[i]) - expected;
    stat += diff * diff / expected;
  }
  return stat;
}

double uniform_cdf(double x, double lo, double hi) {
  if (x <= lo) return 0.0;
  if (x >= hi) return 1.0;
  return (x - lo) / (hi - lo);
}

double exponential_cdf(double x, double mean) {
  if (x <= 0.0) return 0.0;
  return 1.0 - std::exp(-x / mean);
}

}  // namespace livesim::stats
