#include "livesim/fault/injector.h"

namespace livesim::fault {

void FaultInjector::arm() {
  if (armed_) return;
  armed_ = true;
  for (const auto& e : schedule_.events()) {
    sim_.schedule_in(e.at, [this, e] {
      ++counts_[static_cast<std::size_t>(e.kind)];
      for (const auto& h : handlers_[static_cast<std::size_t>(e.kind)]) h(e);
    });
  }
}

std::uint64_t FaultInjector::injected() const noexcept {
  std::uint64_t total = 0;
  for (const auto c : counts_) total += c;
  return total;
}

}  // namespace livesim::fault
