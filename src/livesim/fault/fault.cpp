#include "livesim/fault/fault.h"

#include <algorithm>
#include <array>

namespace livesim::fault {

const char* to_string(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kIngestCrash: return "ingest-crash";
    case FaultKind::kEdgeCacheFlush: return "edge-cache-flush";
    case FaultKind::kLinkDegrade: return "link-degrade";
    case FaultKind::kChunkCorruption: return "chunk-corruption";
    case FaultKind::kEdgeDown: return "edge-down";
  }
  return "unknown";
}

FaultSchedule& FaultSchedule::add(FaultEvent e) {
  // Stable insert by time: equal-time events keep insertion order, so a
  // hand-written script replays in the order it was written.
  auto it = std::upper_bound(
      events_.begin(), events_.end(), e,
      [](const FaultEvent& a, const FaultEvent& b) { return a.at < b.at; });
  events_.insert(it, e);
  return *this;
}

FaultSchedule FaultSchedule::randomized(const RandomFaultParams& params,
                                        std::uint64_t seed) {
  FaultSchedule out;
  if (params.faults_per_minute <= 0.0 || params.horizon <= 0) return out;

  const std::array<double, kFaultKindCount> weights = {
      params.ingest_crash_weight, params.edge_flush_weight,
      params.link_degrade_weight, params.chunk_corruption_weight,
      params.edge_down_weight};
  double total_weight = 0.0;
  for (double w : weights) total_weight += w > 0.0 ? w : 0.0;
  if (total_weight <= 0.0) return out;

  Rng rng(seed);
  const double mean_gap_us =
      static_cast<double>(time::kMinute) / params.faults_per_minute;
  TimeUs t = 0;
  for (;;) {
    t += static_cast<DurationUs>(rng.exponential(mean_gap_us));
    if (t >= params.horizon) break;

    double pick = rng.uniform() * total_weight;
    std::size_t kind = 0;
    for (; kind + 1 < kFaultKindCount; ++kind) {
      const double w = weights[kind] > 0.0 ? weights[kind] : 0.0;
      if (pick < w) break;
      pick -= w;
    }

    FaultEvent e;
    e.at = t;
    e.kind = static_cast<FaultKind>(kind);
    switch (e.kind) {
      case FaultKind::kIngestCrash:
        e.duration = static_cast<DurationUs>(
            rng.exponential(static_cast<double>(params.mean_ingest_down)));
        break;
      case FaultKind::kEdgeCacheFlush:
        e.duration = 0;  // point event
        break;
      case FaultKind::kLinkDegrade:
        e.duration = static_cast<DurationUs>(
            rng.exponential(static_cast<double>(params.mean_link_down)));
        break;
      case FaultKind::kChunkCorruption:
        e.duration = static_cast<DurationUs>(rng.exponential(
            static_cast<double>(params.mean_corruption_window)));
        e.magnitude = params.corruption_probability;
        break;
      case FaultKind::kEdgeDown:
        e.duration = static_cast<DurationUs>(
            rng.exponential(static_cast<double>(params.mean_edge_down)));
        break;
    }
    out.events_.push_back(e);  // generated in time order already
  }
  return out;
}

bool FaultSchedule::active(FaultKind kind, TimeUs t) const noexcept {
  for (const auto& e : events_) {
    if (e.at > t) break;
    if (e.kind == kind && t < e.at + e.duration) return true;
  }
  return false;
}

std::vector<FaultEvent> FaultSchedule::of_kind(FaultKind kind) const {
  std::vector<FaultEvent> out;
  for (const auto& e : events_)
    if (e.kind == kind) out.push_back(e);
  return out;
}

}  // namespace livesim::fault
