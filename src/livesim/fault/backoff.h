// Exponential backoff with a cap and deterministic jitter.
//
// The retry discipline shared by the resilience machinery: clients retry
// timed-out polls with it, the failover path paces its reconnect
// attempts with it. Jitter comes from the caller's RNG stream, so two
// runs with the same seed back off identically — and retries across a
// fleet of simulated clients decorrelate instead of thundering back in
// lockstep.
#ifndef LIVESIM_FAULT_BACKOFF_H
#define LIVESIM_FAULT_BACKOFF_H

#include <cstdint>

#include "livesim/util/rng.h"
#include "livesim/util/time.h"

namespace livesim::fault {

class BackoffPolicy {
 public:
  struct Params {
    DurationUs base = 500 * time::kMillisecond;  // attempt-1 delay
    double multiplier = 2.0;                     // growth per attempt
    DurationUs cap = 8 * time::kSecond;          // pre-jitter ceiling
    double jitter_fraction = 0.2;  // uniform multiplier in [1-j, 1+j]
  };

  BackoffPolicy() = default;
  explicit BackoffPolicy(Params params) : params_(params) {}

  /// Un-jittered delay for 1-based `attempt`:
  /// min(base * multiplier^(attempt-1), cap). Never below 1 µs.
  DurationUs base_delay(std::uint32_t attempt) const noexcept;

  /// Jittered delay: base_delay(attempt) scaled by a uniform draw in
  /// [1 - jitter_fraction, 1 + jitter_fraction]. Deterministic given the
  /// RNG state; always >= 1 µs.
  DurationUs delay(std::uint32_t attempt, Rng& rng) const noexcept;

  const Params& params() const noexcept { return params_; }

 private:
  Params params_;
};

}  // namespace livesim::fault

#endif  // LIVESIM_FAULT_BACKOFF_H
