#include "livesim/fault/scenario.h"

#include <algorithm>
#include <cmath>

#include "livesim/sim/parallel.h"

namespace livesim::fault {

namespace {

// Substream salt so scenario expansion and (per-broadcast) randomized
// schedules seeded from the same master seed never share a stream.
constexpr std::uint64_t kScenarioSeedSalt = 0x5CE7A210ULL;

struct RankedEdge {
  const geo::Datacenter* dc;
  double km;
};

// Edge sites by distance from `from` (ties broken by catalog id, so the
// ranking is total and identical on every platform).
std::vector<RankedEdge> edges_by_distance(
    const geo::DatacenterCatalog& catalog, const geo::GeoPoint& from) {
  std::vector<RankedEdge> out;
  for (const auto* dc : catalog.edge_sites())
    out.push_back({dc, geo::haversine_km(from, dc->location)});
  std::sort(out.begin(), out.end(), [](const RankedEdge& a, const RankedEdge& b) {
    if (a.km != b.km) return a.km < b.km;
    return a.dc->id.value < b.dc->id.value;
  });
  return out;
}

void expand_blackout(const geo::DatacenterCatalog& catalog,
                     const RegionalBlackoutSpec& spec, FaultSchedule& out) {
  for (DatacenterId site : FaultScenario::blackout_sites(catalog, spec)) {
    FaultEvent e;
    e.at = spec.at;
    e.kind = FaultKind::kEdgeDown;
    e.duration = spec.duration;
    e.target = site.value;
    out.add(e);
  }
  if (spec.include_ingest) {
    for (const auto* dc : catalog.ingest_sites()) {
      if (geo::haversine_km(spec.center, dc->location) > spec.radius_km)
        continue;
      FaultEvent e;
      e.at = spec.at;
      e.kind = FaultKind::kIngestCrash;
      e.duration = spec.duration;
      e.target = dc->id.value;
      out.add(e);
    }
  }
}

void expand_cascade(const geo::DatacenterCatalog& catalog,
                    const CascadeSpec& spec, Rng& rng, FaultSchedule& out) {
  const geo::Datacenter& origin =
      catalog.nearest(spec.origin, geo::CdnRole::kIngest);
  FaultEvent crash;
  crash.at = spec.at;
  crash.kind = FaultKind::kIngestCrash;
  crash.duration = spec.ingest_down;
  crash.target = origin.id.value;
  out.add(crash);

  // Hop h strikes the h-th nearest edge (within the regional radius) with
  // probability p * attenuation^(h-1): the failed-over viewers re-anycast
  // outward, and so does the overload. The bernoulli draw happens for
  // every hop regardless of outcome, so the draw count — and therefore
  // every later draw in this event's substream — is schedule-independent.
  const auto ranked = edges_by_distance(catalog, origin.location);
  std::size_t hop = 0;
  for (const auto& cand : ranked) {
    if (hop >= spec.max_hops) break;
    if (cand.km > spec.radius_km) break;  // overload stays regional
    ++hop;
    const double p = spec.spread_probability *
                     std::pow(spec.attenuation, static_cast<double>(hop - 1));
    const bool struck = rng.bernoulli(p);
    if (!struck) continue;
    FaultEvent e;
    e.at = spec.at + spec.propagation_delay * static_cast<DurationUs>(hop);
    e.kind = FaultKind::kEdgeDown;
    e.duration = spec.edge_down;
    e.target = cand.dc->id.value;
    out.add(e);
  }
}

void expand_wave(const geo::DatacenterCatalog& catalog,
                 const RollingWaveSpec& spec, FaultSchedule& out) {
  auto edges = catalog.edge_sites();
  std::sort(edges.begin(), edges.end(),
            [](const geo::Datacenter* a, const geo::Datacenter* b) {
              if (a->location.lon_deg != b->location.lon_deg)
                return a->location.lon_deg < b->location.lon_deg;
              return a->id.value < b->id.value;
            });
  TimeUs at = spec.start;
  for (const auto* dc : edges) {
    FaultEvent e;
    e.at = at;
    e.kind = spec.flush_only ? FaultKind::kEdgeCacheFlush
                             : FaultKind::kEdgeDown;
    e.duration = spec.flush_only ? 0 : spec.down_per_site;
    e.target = dc->id.value;
    out.add(e);
    at += spec.site_gap;
  }
}

}  // namespace

FaultScenario& FaultScenario::add(RegionalBlackoutSpec spec) {
  specs_.emplace_back(spec);
  return *this;
}

FaultScenario& FaultScenario::add(CascadeSpec spec) {
  specs_.emplace_back(spec);
  return *this;
}

FaultScenario& FaultScenario::add(RollingWaveSpec spec) {
  specs_.emplace_back(spec);
  return *this;
}

std::vector<DatacenterId> FaultScenario::blackout_sites(
    const geo::DatacenterCatalog& catalog, const RegionalBlackoutSpec& spec) {
  const auto ranked = edges_by_distance(catalog, spec.center);
  std::vector<DatacenterId> out;
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    // The nearest edge is always dark — radius 0 is a single-PoP outage.
    if (i > 0 && ranked[i].km > spec.radius_km) break;
    out.push_back(ranked[i].dc->id);
  }
  return out;
}

FaultSchedule FaultScenario::expand(const geo::DatacenterCatalog& catalog,
                                    std::uint64_t seed) const {
  FaultSchedule out;
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    // One substream per logical event: reordering or deleting a neighbour
    // never changes this event's expansion.
    Rng rng(sim::substream_seed(seed ^ kScenarioSeedSalt, i));
    std::visit(
        [&](const auto& spec) {
          using T = std::decay_t<decltype(spec)>;
          if constexpr (std::is_same_v<T, RegionalBlackoutSpec>)
            expand_blackout(catalog, spec, out);
          else if constexpr (std::is_same_v<T, CascadeSpec>)
            expand_cascade(catalog, spec, rng, out);
          else
            expand_wave(catalog, spec, out);
        },
        specs_[i]);
  }
  return out;
}

}  // namespace livesim::fault
