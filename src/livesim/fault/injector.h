// FaultInjector: replays a FaultSchedule against a running simulation.
//
// Components register a handler per fault kind; arm() schedules every
// event on the simulator clock and dispatches it to the handlers when it
// fires. The injector itself draws no randomness — all nondeterminism
// lives in the schedule (seeded) and in what handlers do with their own
// RNG streams — so a faulty run is exactly as reproducible as a clean one.
#ifndef LIVESIM_FAULT_INJECTOR_H
#define LIVESIM_FAULT_INJECTOR_H

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "livesim/fault/fault.h"
#include "livesim/sim/simulator.h"

namespace livesim::fault {

class FaultInjector {
 public:
  using Handler = std::function<void(const FaultEvent&)>;

  FaultInjector(sim::Simulator& sim, FaultSchedule schedule)
      : sim_(sim), schedule_(std::move(schedule)) {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Registers a handler for one fault kind (several handlers per kind
  /// are allowed; they fire in registration order). Call before arm().
  void on(FaultKind kind, Handler handler) {
    handlers_[static_cast<std::size_t>(kind)].push_back(std::move(handler));
  }

  /// Schedules every event at `now + event.at`. Events without a handler
  /// are counted but otherwise no-ops. Idempotent.
  void arm();

  /// Events dispatched so far (total / per kind).
  std::uint64_t injected() const noexcept;
  std::uint64_t injected(FaultKind kind) const noexcept {
    return counts_[static_cast<std::size_t>(kind)];
  }

  const FaultSchedule& schedule() const noexcept { return schedule_; }

 private:
  sim::Simulator& sim_;
  FaultSchedule schedule_;
  std::array<std::vector<Handler>, kFaultKindCount> handlers_{};
  std::array<std::uint64_t, kFaultKindCount> counts_{};
  bool armed_ = false;
};

}  // namespace livesim::fault

#endif  // LIVESIM_FAULT_INJECTOR_H
