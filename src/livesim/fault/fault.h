// Deterministic fault modeling for the simulation.
//
// The delivery anatomy of §4-§5 assumes a healthy Wowza→Fastly path; this
// module supplies the unhealthy ones. A FaultSchedule is a time-ordered
// script of fault events — ingest crash/restart windows, edge-cache
// flushes, link partitions, chunk-corruption windows — either written by
// hand or drawn from a seeded Poisson process. Schedules are plain data:
// the same (params, seed) pair always yields the same script, so faulty
// runs are exactly as reproducible as sunny-day ones, at any thread count
// (randomized schedules are generated from per-broadcast RNG substreams,
// never from a stream shared across workers).
#ifndef LIVESIM_FAULT_FAULT_H
#define LIVESIM_FAULT_FAULT_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "livesim/util/rng.h"
#include "livesim/util/time.h"

namespace livesim::fault {

enum class FaultKind : std::uint8_t {
  kIngestCrash = 0,    // Wowza node dies; restarts after `duration`
  kEdgeCacheFlush,     // edge cache wiped; next poll re-pulls from origin
  kLinkDegrade,        // link outage/partition lasting `duration`
  kChunkCorruption,    // downloads corrupt w.p. `magnitude` for `duration`
  kEdgeDown,           // edge PoP dies for `duration`; viewers re-anycast
};
inline constexpr std::size_t kFaultKindCount = 5;

const char* to_string(FaultKind kind) noexcept;

struct FaultEvent {
  TimeUs at = 0;
  FaultKind kind = FaultKind::kIngestCrash;
  /// Down / degradation / corruption window length (0 = point event).
  DurationUs duration = 0;
  /// Optional target site id (datacenter); 0 = the session default
  /// (the broadcaster's ingest, or every edge for cache flushes and
  /// edge-down events). Scenario expansion (scenario.h) always targets
  /// concrete sites, so one correlated script can dim a whole region.
  std::uint64_t target = 0;
  /// Kind-specific knob; for kChunkCorruption the per-download
  /// corruption probability (<=0 means the generator default).
  double magnitude = 0.0;
};

/// Parameters for a randomized (but seed-deterministic) fault script.
struct RandomFaultParams {
  /// Poisson arrival rate of fault events. 0 = empty schedule.
  double faults_per_minute = 0.0;
  /// Events are drawn in [0, horizon). 0 = caller substitutes its own
  /// horizon (e.g. the broadcast length) before generating.
  DurationUs horizon = 0;

  // Relative kind weights (normalized internally; all-zero = no faults).
  // edge_down defaults to 0 so legacy (pre-kEdgeDown) parameter sets draw
  // byte-identical schedules.
  double ingest_crash_weight = 1.0;
  double edge_flush_weight = 1.0;
  double link_degrade_weight = 1.0;
  double chunk_corruption_weight = 1.0;
  double edge_down_weight = 0.0;

  DurationUs mean_ingest_down = 8 * time::kSecond;
  DurationUs mean_link_down = 4 * time::kSecond;
  DurationUs mean_corruption_window = 5 * time::kSecond;
  DurationUs mean_edge_down = 6 * time::kSecond;
  double corruption_probability = 0.5;
};

/// A time-ordered fault script. Value type: copy freely, compare by
/// events(). An empty schedule is the (cheap) "faults disabled" state.
class FaultSchedule {
 public:
  FaultSchedule() = default;

  /// Inserts an event, keeping events() sorted by (at, insertion order).
  FaultSchedule& add(FaultEvent e);

  /// Draws a schedule from a Poisson event process: exponential
  /// inter-arrivals at `params.faults_per_minute`, kind by weight,
  /// duration by the kind's exponential mean. Deterministic in
  /// (params, seed).
  static FaultSchedule randomized(const RandomFaultParams& params,
                                  std::uint64_t seed);

  const std::vector<FaultEvent>& events() const noexcept { return events_; }
  bool empty() const noexcept { return events_.empty(); }
  std::size_t size() const noexcept { return events_.size(); }

  /// True if `t` falls inside any `kind` event's [at, at+duration) window.
  bool active(FaultKind kind, TimeUs t) const noexcept;

  /// All events of one kind, in time order.
  std::vector<FaultEvent> of_kind(FaultKind kind) const;

 private:
  std::vector<FaultEvent> events_;  // sorted by (at, insertion)
};

}  // namespace livesim::fault

#endif  // LIVESIM_FAULT_FAULT_H
