#include "livesim/fault/backoff.h"

namespace livesim::fault {

DurationUs BackoffPolicy::base_delay(std::uint32_t attempt) const noexcept {
  if (attempt == 0) attempt = 1;
  // Compute in double: 2^60 µs is ~36k years, far past any cap, and the
  // double path cannot overflow the way repeated integer doubling can.
  double d = static_cast<double>(params_.base);
  for (std::uint32_t i = 1; i < attempt; ++i) {
    d *= params_.multiplier;
    if (d >= static_cast<double>(params_.cap)) break;
  }
  if (d > static_cast<double>(params_.cap)) d = static_cast<double>(params_.cap);
  const auto out = static_cast<DurationUs>(d);
  return out > 0 ? out : 1;
}

DurationUs BackoffPolicy::delay(std::uint32_t attempt,
                                Rng& rng) const noexcept {
  const double jitter =
      1.0 + params_.jitter_fraction * (2.0 * rng.uniform() - 1.0);
  const auto out = static_cast<DurationUs>(
      static_cast<double>(base_delay(attempt)) * jitter);
  return out > 0 ? out : 1;
}

}  // namespace livesim::fault
