// Correlated fault scenarios: one logical event, many component faults.
//
// PR 2's FaultSchedule injects *independent* single-component faults, but
// the outages that dominate real viewer-visible stalls are correlated:
// a regional power event takes every PoP in a metro dark at once, an
// ingest death cascades load (and then failures) onto its gateway and
// downstream edges, and maintenance rolls through the footprint one site
// at a time. A FaultScenario is a script of such logical events; expand()
// resolves each one against a DatacenterCatalog into the per-component
// FaultEvents the existing injector already knows how to replay.
//
// Determinism contract (same as fault.h): expansion draws randomness only
// from a dedicated substream per logical event — seeded by
// sim::substream_seed(seed, event index) — so the same (scenario,
// catalog, seed) triple always yields the same schedule, adding an event
// never perturbs the expansion of its neighbours, and an EMPTY scenario
// expands to an EMPTY schedule (which the session layer treats as
// "no fault machinery at all": bit-for-bit parity with a clean run).
#ifndef LIVESIM_FAULT_SCENARIO_H
#define LIVESIM_FAULT_SCENARIO_H

#include <cstddef>
#include <cstdint>
#include <variant>
#include <vector>

#include "livesim/fault/fault.h"
#include "livesim/geo/datacenters.h"
#include "livesim/util/time.h"

namespace livesim::fault {

/// Every edge PoP within `radius_km` of `center` goes dark at `at` for
/// `duration` ("every EU edge dark for 30 s"). A zero radius degenerates
/// to the single nearest edge — the building block of the edge-to-edge
/// failover experiments, where 100% of that edge's viewers must
/// re-anycast with zero orphans. Expansion is fully deterministic (no
/// randomness at all).
struct RegionalBlackoutSpec {
  TimeUs at = 0;
  DurationUs duration = 30 * time::kSecond;
  geo::GeoPoint center{};
  /// Blackout radius; edges with haversine(center, site) <= radius_km go
  /// dark. The nearest edge is ALWAYS included, so radius 0 kills exactly
  /// one PoP.
  double radius_km = 0.0;
  /// Also crash ingest sites inside the radius (the Wowza VMs share the
  /// region's fate). Their `duration` matches the blackout.
  bool include_ingest = false;
};

/// An ingest death at `origin` that propagates downstream: the crash
/// raises the fault probability of the W2F gateway path and the edges
/// that suddenly field its failed-over viewers. Hop h (1-based, by
/// distance rank from the origin) suffers an edge-down with probability
/// spread_probability * attenuation^(h-1); struck edges go dark
/// `propagation_delay` * h after the crash. Deterministic in the
/// scenario seed.
struct CascadeSpec {
  TimeUs at = 0;
  geo::GeoPoint origin{};                 // resolved to the nearest ingest
  DurationUs ingest_down = 10 * time::kSecond;
  DurationUs propagation_delay = 2 * time::kSecond;  // per hop
  double spread_probability = 0.7;        // hop-1 strike probability
  double attenuation = 0.5;               // per further hop
  DurationUs edge_down = 5 * time::kSecond;  // how long a struck edge dies
  /// Only edges within this of the origin can be struck (the overload is
  /// regional — traffic re-anycasts locally, not across oceans).
  double radius_km = 4000.0;
  std::size_t max_hops = 3;               // candidate edges considered
};

/// Planned maintenance sweeping the edge footprint: sites restart one at
/// a time, ordered west -> east by longitude (ties by catalog id), each
/// dark for `down_per_site`, consecutive restarts `site_gap` apart. With
/// `flush_only` the site is never dark — its cache is just wiped (a warm
/// rolling deploy). Expansion is fully deterministic.
struct RollingWaveSpec {
  TimeUs start = 0;
  DurationUs site_gap = 5 * time::kSecond;
  DurationUs down_per_site = 2 * time::kSecond;
  bool flush_only = false;
};

/// A script of logical outage events. Value type; the empty scenario is
/// the (free) "scenarios disabled" state.
class FaultScenario {
 public:
  using Spec = std::variant<RegionalBlackoutSpec, CascadeSpec,
                            RollingWaveSpec>;

  FaultScenario() = default;

  FaultScenario& add(RegionalBlackoutSpec spec);
  FaultScenario& add(CascadeSpec spec);
  FaultScenario& add(RollingWaveSpec spec);

  bool empty() const noexcept { return specs_.empty(); }
  std::size_t size() const noexcept { return specs_.size(); }
  const std::vector<Spec>& specs() const noexcept { return specs_; }

  /// Expands every logical event into per-site FaultEvents (targets are
  /// catalog datacenter ids) merged into one time-ordered schedule.
  /// Deterministic in (scenario, catalog, seed); an empty scenario yields
  /// an empty (inert) schedule and draws nothing.
  FaultSchedule expand(const geo::DatacenterCatalog& catalog,
                       std::uint64_t seed) const;

  /// Convenience: the edge-site ids a regional blackout darkens (the
  /// nearest edge plus everything within the radius). What expand() uses;
  /// exposed so experiments can compute outage membership without
  /// re-deriving the rule.
  static std::vector<DatacenterId> blackout_sites(
      const geo::DatacenterCatalog& catalog, const RegionalBlackoutSpec& spec);

 private:
  std::vector<Spec> specs_;
};

}  // namespace livesim::fault

#endif  // LIVESIM_FAULT_SCENARIO_H
