# Empty dependencies file for livesim_tests.
# This may be replaced when dependencies are built.
