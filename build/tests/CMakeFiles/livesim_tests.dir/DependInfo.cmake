
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_adaptive.cpp" "tests/CMakeFiles/livesim_tests.dir/test_adaptive.cpp.o" "gcc" "tests/CMakeFiles/livesim_tests.dir/test_adaptive.cpp.o.d"
  "/root/repo/tests/test_analysis.cpp" "tests/CMakeFiles/livesim_tests.dir/test_analysis.cpp.o" "gcc" "tests/CMakeFiles/livesim_tests.dir/test_analysis.cpp.o.d"
  "/root/repo/tests/test_assembler.cpp" "tests/CMakeFiles/livesim_tests.dir/test_assembler.cpp.o" "gcc" "tests/CMakeFiles/livesim_tests.dir/test_assembler.cpp.o.d"
  "/root/repo/tests/test_audience.cpp" "tests/CMakeFiles/livesim_tests.dir/test_audience.cpp.o" "gcc" "tests/CMakeFiles/livesim_tests.dir/test_audience.cpp.o.d"
  "/root/repo/tests/test_cdn.cpp" "tests/CMakeFiles/livesim_tests.dir/test_cdn.cpp.o" "gcc" "tests/CMakeFiles/livesim_tests.dir/test_cdn.cpp.o.d"
  "/root/repo/tests/test_crawler.cpp" "tests/CMakeFiles/livesim_tests.dir/test_crawler.cpp.o" "gcc" "tests/CMakeFiles/livesim_tests.dir/test_crawler.cpp.o.d"
  "/root/repo/tests/test_crypto.cpp" "tests/CMakeFiles/livesim_tests.dir/test_crypto.cpp.o" "gcc" "tests/CMakeFiles/livesim_tests.dir/test_crypto.cpp.o.d"
  "/root/repo/tests/test_frontend.cpp" "tests/CMakeFiles/livesim_tests.dir/test_frontend.cpp.o" "gcc" "tests/CMakeFiles/livesim_tests.dir/test_frontend.cpp.o.d"
  "/root/repo/tests/test_geo.cpp" "tests/CMakeFiles/livesim_tests.dir/test_geo.cpp.o" "gcc" "tests/CMakeFiles/livesim_tests.dir/test_geo.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/livesim_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/livesim_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_media.cpp" "tests/CMakeFiles/livesim_tests.dir/test_media.cpp.o" "gcc" "tests/CMakeFiles/livesim_tests.dir/test_media.cpp.o.d"
  "/root/repo/tests/test_mesh.cpp" "tests/CMakeFiles/livesim_tests.dir/test_mesh.cpp.o" "gcc" "tests/CMakeFiles/livesim_tests.dir/test_mesh.cpp.o.d"
  "/root/repo/tests/test_msg.cpp" "tests/CMakeFiles/livesim_tests.dir/test_msg.cpp.o" "gcc" "tests/CMakeFiles/livesim_tests.dir/test_msg.cpp.o.d"
  "/root/repo/tests/test_net.cpp" "tests/CMakeFiles/livesim_tests.dir/test_net.cpp.o" "gcc" "tests/CMakeFiles/livesim_tests.dir/test_net.cpp.o.d"
  "/root/repo/tests/test_notifications.cpp" "tests/CMakeFiles/livesim_tests.dir/test_notifications.cpp.o" "gcc" "tests/CMakeFiles/livesim_tests.dir/test_notifications.cpp.o.d"
  "/root/repo/tests/test_overlay.cpp" "tests/CMakeFiles/livesim_tests.dir/test_overlay.cpp.o" "gcc" "tests/CMakeFiles/livesim_tests.dir/test_overlay.cpp.o.d"
  "/root/repo/tests/test_parallel_runner.cpp" "tests/CMakeFiles/livesim_tests.dir/test_parallel_runner.cpp.o" "gcc" "tests/CMakeFiles/livesim_tests.dir/test_parallel_runner.cpp.o.d"
  "/root/repo/tests/test_playback.cpp" "tests/CMakeFiles/livesim_tests.dir/test_playback.cpp.o" "gcc" "tests/CMakeFiles/livesim_tests.dir/test_playback.cpp.o.d"
  "/root/repo/tests/test_protocol.cpp" "tests/CMakeFiles/livesim_tests.dir/test_protocol.cpp.o" "gcc" "tests/CMakeFiles/livesim_tests.dir/test_protocol.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/livesim_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/livesim_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_sample_data.cpp" "tests/CMakeFiles/livesim_tests.dir/test_sample_data.cpp.o" "gcc" "tests/CMakeFiles/livesim_tests.dir/test_sample_data.cpp.o.d"
  "/root/repo/tests/test_service.cpp" "tests/CMakeFiles/livesim_tests.dir/test_service.cpp.o" "gcc" "tests/CMakeFiles/livesim_tests.dir/test_service.cpp.o.d"
  "/root/repo/tests/test_service_crawler.cpp" "tests/CMakeFiles/livesim_tests.dir/test_service_crawler.cpp.o" "gcc" "tests/CMakeFiles/livesim_tests.dir/test_service_crawler.cpp.o.d"
  "/root/repo/tests/test_session_smoke.cpp" "tests/CMakeFiles/livesim_tests.dir/test_session_smoke.cpp.o" "gcc" "tests/CMakeFiles/livesim_tests.dir/test_session_smoke.cpp.o.d"
  "/root/repo/tests/test_simulator.cpp" "tests/CMakeFiles/livesim_tests.dir/test_simulator.cpp.o" "gcc" "tests/CMakeFiles/livesim_tests.dir/test_simulator.cpp.o.d"
  "/root/repo/tests/test_simulator_properties.cpp" "tests/CMakeFiles/livesim_tests.dir/test_simulator_properties.cpp.o" "gcc" "tests/CMakeFiles/livesim_tests.dir/test_simulator_properties.cpp.o.d"
  "/root/repo/tests/test_soak.cpp" "tests/CMakeFiles/livesim_tests.dir/test_soak.cpp.o" "gcc" "tests/CMakeFiles/livesim_tests.dir/test_soak.cpp.o.d"
  "/root/repo/tests/test_social.cpp" "tests/CMakeFiles/livesim_tests.dir/test_social.cpp.o" "gcc" "tests/CMakeFiles/livesim_tests.dir/test_social.cpp.o.d"
  "/root/repo/tests/test_stats.cpp" "tests/CMakeFiles/livesim_tests.dir/test_stats.cpp.o" "gcc" "tests/CMakeFiles/livesim_tests.dir/test_stats.cpp.o.d"
  "/root/repo/tests/test_stream_sign.cpp" "tests/CMakeFiles/livesim_tests.dir/test_stream_sign.cpp.o" "gcc" "tests/CMakeFiles/livesim_tests.dir/test_stream_sign.cpp.o.d"
  "/root/repo/tests/test_trace_io.cpp" "tests/CMakeFiles/livesim_tests.dir/test_trace_io.cpp.o" "gcc" "tests/CMakeFiles/livesim_tests.dir/test_trace_io.cpp.o.d"
  "/root/repo/tests/test_umbrella.cpp" "tests/CMakeFiles/livesim_tests.dir/test_umbrella.cpp.o" "gcc" "tests/CMakeFiles/livesim_tests.dir/test_umbrella.cpp.o.d"
  "/root/repo/tests/test_util.cpp" "tests/CMakeFiles/livesim_tests.dir/test_util.cpp.o" "gcc" "tests/CMakeFiles/livesim_tests.dir/test_util.cpp.o.d"
  "/root/repo/tests/test_validate.cpp" "tests/CMakeFiles/livesim_tests.dir/test_validate.cpp.o" "gcc" "tests/CMakeFiles/livesim_tests.dir/test_validate.cpp.o.d"
  "/root/repo/tests/test_workload.cpp" "tests/CMakeFiles/livesim_tests.dir/test_workload.cpp.o" "gcc" "tests/CMakeFiles/livesim_tests.dir/test_workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/livesim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
