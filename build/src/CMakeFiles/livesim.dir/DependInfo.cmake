
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/livesim/analysis/experiments.cpp" "src/CMakeFiles/livesim.dir/livesim/analysis/experiments.cpp.o" "gcc" "src/CMakeFiles/livesim.dir/livesim/analysis/experiments.cpp.o.d"
  "/root/repo/src/livesim/analysis/trace_io.cpp" "src/CMakeFiles/livesim.dir/livesim/analysis/trace_io.cpp.o" "gcc" "src/CMakeFiles/livesim.dir/livesim/analysis/trace_io.cpp.o.d"
  "/root/repo/src/livesim/cdn/frontend.cpp" "src/CMakeFiles/livesim.dir/livesim/cdn/frontend.cpp.o" "gcc" "src/CMakeFiles/livesim.dir/livesim/cdn/frontend.cpp.o.d"
  "/root/repo/src/livesim/cdn/servers.cpp" "src/CMakeFiles/livesim.dir/livesim/cdn/servers.cpp.o" "gcc" "src/CMakeFiles/livesim.dir/livesim/cdn/servers.cpp.o.d"
  "/root/repo/src/livesim/cdn/w2f.cpp" "src/CMakeFiles/livesim.dir/livesim/cdn/w2f.cpp.o" "gcc" "src/CMakeFiles/livesim.dir/livesim/cdn/w2f.cpp.o.d"
  "/root/repo/src/livesim/client/adaptive.cpp" "src/CMakeFiles/livesim.dir/livesim/client/adaptive.cpp.o" "gcc" "src/CMakeFiles/livesim.dir/livesim/client/adaptive.cpp.o.d"
  "/root/repo/src/livesim/client/playback.cpp" "src/CMakeFiles/livesim.dir/livesim/client/playback.cpp.o" "gcc" "src/CMakeFiles/livesim.dir/livesim/client/playback.cpp.o.d"
  "/root/repo/src/livesim/core/broadcast_session.cpp" "src/CMakeFiles/livesim.dir/livesim/core/broadcast_session.cpp.o" "gcc" "src/CMakeFiles/livesim.dir/livesim/core/broadcast_session.cpp.o.d"
  "/root/repo/src/livesim/core/notifications.cpp" "src/CMakeFiles/livesim.dir/livesim/core/notifications.cpp.o" "gcc" "src/CMakeFiles/livesim.dir/livesim/core/notifications.cpp.o.d"
  "/root/repo/src/livesim/core/service.cpp" "src/CMakeFiles/livesim.dir/livesim/core/service.cpp.o" "gcc" "src/CMakeFiles/livesim.dir/livesim/core/service.cpp.o.d"
  "/root/repo/src/livesim/crawler/crawler.cpp" "src/CMakeFiles/livesim.dir/livesim/crawler/crawler.cpp.o" "gcc" "src/CMakeFiles/livesim.dir/livesim/crawler/crawler.cpp.o.d"
  "/root/repo/src/livesim/crawler/service_crawler.cpp" "src/CMakeFiles/livesim.dir/livesim/crawler/service_crawler.cpp.o" "gcc" "src/CMakeFiles/livesim.dir/livesim/crawler/service_crawler.cpp.o.d"
  "/root/repo/src/livesim/geo/datacenters.cpp" "src/CMakeFiles/livesim.dir/livesim/geo/datacenters.cpp.o" "gcc" "src/CMakeFiles/livesim.dir/livesim/geo/datacenters.cpp.o.d"
  "/root/repo/src/livesim/geo/geo.cpp" "src/CMakeFiles/livesim.dir/livesim/geo/geo.cpp.o" "gcc" "src/CMakeFiles/livesim.dir/livesim/geo/geo.cpp.o.d"
  "/root/repo/src/livesim/media/chunker.cpp" "src/CMakeFiles/livesim.dir/livesim/media/chunker.cpp.o" "gcc" "src/CMakeFiles/livesim.dir/livesim/media/chunker.cpp.o.d"
  "/root/repo/src/livesim/media/encoder.cpp" "src/CMakeFiles/livesim.dir/livesim/media/encoder.cpp.o" "gcc" "src/CMakeFiles/livesim.dir/livesim/media/encoder.cpp.o.d"
  "/root/repo/src/livesim/msg/pubsub.cpp" "src/CMakeFiles/livesim.dir/livesim/msg/pubsub.cpp.o" "gcc" "src/CMakeFiles/livesim.dir/livesim/msg/pubsub.cpp.o.d"
  "/root/repo/src/livesim/net/link.cpp" "src/CMakeFiles/livesim.dir/livesim/net/link.cpp.o" "gcc" "src/CMakeFiles/livesim.dir/livesim/net/link.cpp.o.d"
  "/root/repo/src/livesim/overlay/mesh.cpp" "src/CMakeFiles/livesim.dir/livesim/overlay/mesh.cpp.o" "gcc" "src/CMakeFiles/livesim.dir/livesim/overlay/mesh.cpp.o.d"
  "/root/repo/src/livesim/overlay/multicast.cpp" "src/CMakeFiles/livesim.dir/livesim/overlay/multicast.cpp.o" "gcc" "src/CMakeFiles/livesim.dir/livesim/overlay/multicast.cpp.o.d"
  "/root/repo/src/livesim/protocol/assembler.cpp" "src/CMakeFiles/livesim.dir/livesim/protocol/assembler.cpp.o" "gcc" "src/CMakeFiles/livesim.dir/livesim/protocol/assembler.cpp.o.d"
  "/root/repo/src/livesim/protocol/hls.cpp" "src/CMakeFiles/livesim.dir/livesim/protocol/hls.cpp.o" "gcc" "src/CMakeFiles/livesim.dir/livesim/protocol/hls.cpp.o.d"
  "/root/repo/src/livesim/protocol/rtmp.cpp" "src/CMakeFiles/livesim.dir/livesim/protocol/rtmp.cpp.o" "gcc" "src/CMakeFiles/livesim.dir/livesim/protocol/rtmp.cpp.o.d"
  "/root/repo/src/livesim/protocol/rtmps.cpp" "src/CMakeFiles/livesim.dir/livesim/protocol/rtmps.cpp.o" "gcc" "src/CMakeFiles/livesim.dir/livesim/protocol/rtmps.cpp.o.d"
  "/root/repo/src/livesim/protocol/wire.cpp" "src/CMakeFiles/livesim.dir/livesim/protocol/wire.cpp.o" "gcc" "src/CMakeFiles/livesim.dir/livesim/protocol/wire.cpp.o.d"
  "/root/repo/src/livesim/security/attack.cpp" "src/CMakeFiles/livesim.dir/livesim/security/attack.cpp.o" "gcc" "src/CMakeFiles/livesim.dir/livesim/security/attack.cpp.o.d"
  "/root/repo/src/livesim/security/sha256.cpp" "src/CMakeFiles/livesim.dir/livesim/security/sha256.cpp.o" "gcc" "src/CMakeFiles/livesim.dir/livesim/security/sha256.cpp.o.d"
  "/root/repo/src/livesim/security/stream_sign.cpp" "src/CMakeFiles/livesim.dir/livesim/security/stream_sign.cpp.o" "gcc" "src/CMakeFiles/livesim.dir/livesim/security/stream_sign.cpp.o.d"
  "/root/repo/src/livesim/security/wots.cpp" "src/CMakeFiles/livesim.dir/livesim/security/wots.cpp.o" "gcc" "src/CMakeFiles/livesim.dir/livesim/security/wots.cpp.o.d"
  "/root/repo/src/livesim/sim/parallel.cpp" "src/CMakeFiles/livesim.dir/livesim/sim/parallel.cpp.o" "gcc" "src/CMakeFiles/livesim.dir/livesim/sim/parallel.cpp.o.d"
  "/root/repo/src/livesim/sim/simulator.cpp" "src/CMakeFiles/livesim.dir/livesim/sim/simulator.cpp.o" "gcc" "src/CMakeFiles/livesim.dir/livesim/sim/simulator.cpp.o.d"
  "/root/repo/src/livesim/social/generators.cpp" "src/CMakeFiles/livesim.dir/livesim/social/generators.cpp.o" "gcc" "src/CMakeFiles/livesim.dir/livesim/social/generators.cpp.o.d"
  "/root/repo/src/livesim/social/graph.cpp" "src/CMakeFiles/livesim.dir/livesim/social/graph.cpp.o" "gcc" "src/CMakeFiles/livesim.dir/livesim/social/graph.cpp.o.d"
  "/root/repo/src/livesim/stats/csv.cpp" "src/CMakeFiles/livesim.dir/livesim/stats/csv.cpp.o" "gcc" "src/CMakeFiles/livesim.dir/livesim/stats/csv.cpp.o.d"
  "/root/repo/src/livesim/stats/histogram.cpp" "src/CMakeFiles/livesim.dir/livesim/stats/histogram.cpp.o" "gcc" "src/CMakeFiles/livesim.dir/livesim/stats/histogram.cpp.o.d"
  "/root/repo/src/livesim/stats/report.cpp" "src/CMakeFiles/livesim.dir/livesim/stats/report.cpp.o" "gcc" "src/CMakeFiles/livesim.dir/livesim/stats/report.cpp.o.d"
  "/root/repo/src/livesim/stats/sampler.cpp" "src/CMakeFiles/livesim.dir/livesim/stats/sampler.cpp.o" "gcc" "src/CMakeFiles/livesim.dir/livesim/stats/sampler.cpp.o.d"
  "/root/repo/src/livesim/stats/validate.cpp" "src/CMakeFiles/livesim.dir/livesim/stats/validate.cpp.o" "gcc" "src/CMakeFiles/livesim.dir/livesim/stats/validate.cpp.o.d"
  "/root/repo/src/livesim/util/rng.cpp" "src/CMakeFiles/livesim.dir/livesim/util/rng.cpp.o" "gcc" "src/CMakeFiles/livesim.dir/livesim/util/rng.cpp.o.d"
  "/root/repo/src/livesim/workload/audience.cpp" "src/CMakeFiles/livesim.dir/livesim/workload/audience.cpp.o" "gcc" "src/CMakeFiles/livesim.dir/livesim/workload/audience.cpp.o.d"
  "/root/repo/src/livesim/workload/generator.cpp" "src/CMakeFiles/livesim.dir/livesim/workload/generator.cpp.o" "gcc" "src/CMakeFiles/livesim.dir/livesim/workload/generator.cpp.o.d"
  "/root/repo/src/livesim/workload/profiles.cpp" "src/CMakeFiles/livesim.dir/livesim/workload/profiles.cpp.o" "gcc" "src/CMakeFiles/livesim.dir/livesim/workload/profiles.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
