# Empty dependencies file for livesim.
# This may be replaced when dependencies are built.
