file(REMOVE_RECURSE
  "liblivesim.a"
)
