file(REMOVE_RECURSE
  "../bench/bench_table2_social_graphs"
  "../bench/bench_table2_social_graphs.pdb"
  "CMakeFiles/bench_table2_social_graphs.dir/bench_table2_social_graphs.cpp.o"
  "CMakeFiles/bench_table2_social_graphs.dir/bench_table2_social_graphs.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_social_graphs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
