file(REMOVE_RECURSE
  "../bench/bench_fig13_polling_delay_var"
  "../bench/bench_fig13_polling_delay_var.pdb"
  "CMakeFiles/bench_fig13_polling_delay_var.dir/bench_fig13_polling_delay_var.cpp.o"
  "CMakeFiles/bench_fig13_polling_delay_var.dir/bench_fig13_polling_delay_var.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_polling_delay_var.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
