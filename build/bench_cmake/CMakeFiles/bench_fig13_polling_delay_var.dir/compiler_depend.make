# Empty compiler generated dependencies file for bench_fig13_polling_delay_var.
# This may be replaced when dependencies are built.
