# Empty dependencies file for bench_fig15_wowza2fastly.
# This may be replaced when dependencies are built.
