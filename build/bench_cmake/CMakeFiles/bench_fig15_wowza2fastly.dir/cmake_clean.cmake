file(REMOVE_RECURSE
  "../bench/bench_fig15_wowza2fastly"
  "../bench/bench_fig15_wowza2fastly.pdb"
  "CMakeFiles/bench_fig15_wowza2fastly.dir/bench_fig15_wowza2fastly.cpp.o"
  "CMakeFiles/bench_fig15_wowza2fastly.dir/bench_fig15_wowza2fastly.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_wowza2fastly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
