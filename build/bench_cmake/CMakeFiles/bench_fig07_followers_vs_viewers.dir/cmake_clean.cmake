file(REMOVE_RECURSE
  "../bench/bench_fig07_followers_vs_viewers"
  "../bench/bench_fig07_followers_vs_viewers.pdb"
  "CMakeFiles/bench_fig07_followers_vs_viewers.dir/bench_fig07_followers_vs_viewers.cpp.o"
  "CMakeFiles/bench_fig07_followers_vs_viewers.dir/bench_fig07_followers_vs_viewers.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_followers_vs_viewers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
