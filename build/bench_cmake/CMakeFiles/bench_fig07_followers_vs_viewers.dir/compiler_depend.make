# Empty compiler generated dependencies file for bench_fig07_followers_vs_viewers.
# This may be replaced when dependencies are built.
