file(REMOVE_RECURSE
  "../bench/bench_ablation_rtmp_slots"
  "../bench/bench_ablation_rtmp_slots.pdb"
  "CMakeFiles/bench_ablation_rtmp_slots.dir/bench_ablation_rtmp_slots.cpp.o"
  "CMakeFiles/bench_ablation_rtmp_slots.dir/bench_ablation_rtmp_slots.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_rtmp_slots.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
