file(REMOVE_RECURSE
  "../bench/bench_fig12_polling_delay_avg"
  "../bench/bench_fig12_polling_delay_avg.pdb"
  "CMakeFiles/bench_fig12_polling_delay_avg.dir/bench_fig12_polling_delay_avg.cpp.o"
  "CMakeFiles/bench_fig12_polling_delay_avg.dir/bench_fig12_polling_delay_avg.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_polling_delay_avg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
