# Empty dependencies file for bench_fig12_polling_delay_avg.
# This may be replaced when dependencies are built.
