# Empty compiler generated dependencies file for bench_fig09_server_locations.
# This may be replaced when dependencies are built.
