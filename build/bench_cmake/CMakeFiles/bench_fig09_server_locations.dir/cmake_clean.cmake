file(REMOVE_RECURSE
  "../bench/bench_fig09_server_locations"
  "../bench/bench_fig09_server_locations.pdb"
  "CMakeFiles/bench_fig09_server_locations.dir/bench_fig09_server_locations.cpp.o"
  "CMakeFiles/bench_fig09_server_locations.dir/bench_fig09_server_locations.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_server_locations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
