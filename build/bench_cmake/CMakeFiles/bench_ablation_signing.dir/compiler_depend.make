# Empty compiler generated dependencies file for bench_ablation_signing.
# This may be replaced when dependencies are built.
