file(REMOVE_RECURSE
  "../bench/bench_ablation_signing"
  "../bench/bench_ablation_signing.pdb"
  "CMakeFiles/bench_ablation_signing.dir/bench_ablation_signing.cpp.o"
  "CMakeFiles/bench_ablation_signing.dir/bench_ablation_signing.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_signing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
