file(REMOVE_RECURSE
  "../bench/bench_fig05_interactions"
  "../bench/bench_fig05_interactions.pdb"
  "CMakeFiles/bench_fig05_interactions.dir/bench_fig05_interactions.cpp.o"
  "CMakeFiles/bench_fig05_interactions.dir/bench_fig05_interactions.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_interactions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
