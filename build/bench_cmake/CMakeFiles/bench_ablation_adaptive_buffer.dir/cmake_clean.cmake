file(REMOVE_RECURSE
  "../bench/bench_ablation_adaptive_buffer"
  "../bench/bench_ablation_adaptive_buffer.pdb"
  "CMakeFiles/bench_ablation_adaptive_buffer.dir/bench_ablation_adaptive_buffer.cpp.o"
  "CMakeFiles/bench_ablation_adaptive_buffer.dir/bench_ablation_adaptive_buffer.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_adaptive_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
