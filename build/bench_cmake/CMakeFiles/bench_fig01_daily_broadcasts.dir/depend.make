# Empty dependencies file for bench_fig01_daily_broadcasts.
# This may be replaced when dependencies are built.
