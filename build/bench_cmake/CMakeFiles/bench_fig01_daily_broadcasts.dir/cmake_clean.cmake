file(REMOVE_RECURSE
  "../bench/bench_fig01_daily_broadcasts"
  "../bench/bench_fig01_daily_broadcasts.pdb"
  "CMakeFiles/bench_fig01_daily_broadcasts.dir/bench_fig01_daily_broadcasts.cpp.o"
  "CMakeFiles/bench_fig01_daily_broadcasts.dir/bench_fig01_daily_broadcasts.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_daily_broadcasts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
