# Empty dependencies file for bench_fig03_broadcast_length.
# This may be replaced when dependencies are built.
