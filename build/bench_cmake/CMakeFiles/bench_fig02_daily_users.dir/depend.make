# Empty dependencies file for bench_fig02_daily_users.
# This may be replaced when dependencies are built.
