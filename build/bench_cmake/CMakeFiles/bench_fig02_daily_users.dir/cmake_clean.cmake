file(REMOVE_RECURSE
  "../bench/bench_fig02_daily_users"
  "../bench/bench_fig02_daily_users.pdb"
  "CMakeFiles/bench_fig02_daily_users.dir/bench_fig02_daily_users.cpp.o"
  "CMakeFiles/bench_fig02_daily_users.dir/bench_fig02_daily_users.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_daily_users.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
