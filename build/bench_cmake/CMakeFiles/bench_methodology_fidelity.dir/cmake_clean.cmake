file(REMOVE_RECURSE
  "../bench/bench_methodology_fidelity"
  "../bench/bench_methodology_fidelity.pdb"
  "CMakeFiles/bench_methodology_fidelity.dir/bench_methodology_fidelity.cpp.o"
  "CMakeFiles/bench_methodology_fidelity.dir/bench_methodology_fidelity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_methodology_fidelity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
