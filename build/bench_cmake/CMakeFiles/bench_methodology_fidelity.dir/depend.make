# Empty dependencies file for bench_methodology_fidelity.
# This may be replaced when dependencies are built.
