file(REMOVE_RECURSE
  "../bench/bench_ablation_feedback_lag"
  "../bench/bench_ablation_feedback_lag.pdb"
  "CMakeFiles/bench_ablation_feedback_lag.dir/bench_ablation_feedback_lag.cpp.o"
  "CMakeFiles/bench_ablation_feedback_lag.dir/bench_ablation_feedback_lag.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_feedback_lag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
