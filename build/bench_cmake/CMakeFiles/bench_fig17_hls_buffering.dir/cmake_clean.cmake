file(REMOVE_RECURSE
  "../bench/bench_fig17_hls_buffering"
  "../bench/bench_fig17_hls_buffering.pdb"
  "CMakeFiles/bench_fig17_hls_buffering.dir/bench_fig17_hls_buffering.cpp.o"
  "CMakeFiles/bench_fig17_hls_buffering.dir/bench_fig17_hls_buffering.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_hls_buffering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
