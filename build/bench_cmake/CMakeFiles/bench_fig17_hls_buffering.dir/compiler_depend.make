# Empty compiler generated dependencies file for bench_fig17_hls_buffering.
# This may be replaced when dependencies are built.
