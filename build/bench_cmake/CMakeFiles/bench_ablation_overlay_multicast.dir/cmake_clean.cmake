file(REMOVE_RECURSE
  "../bench/bench_ablation_overlay_multicast"
  "../bench/bench_ablation_overlay_multicast.pdb"
  "CMakeFiles/bench_ablation_overlay_multicast.dir/bench_ablation_overlay_multicast.cpp.o"
  "CMakeFiles/bench_ablation_overlay_multicast.dir/bench_ablation_overlay_multicast.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_overlay_multicast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
