file(REMOVE_RECURSE
  "../bench/bench_fig06_user_activity"
  "../bench/bench_fig06_user_activity.pdb"
  "CMakeFiles/bench_fig06_user_activity.dir/bench_fig06_user_activity.cpp.o"
  "CMakeFiles/bench_fig06_user_activity.dir/bench_fig06_user_activity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_user_activity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
