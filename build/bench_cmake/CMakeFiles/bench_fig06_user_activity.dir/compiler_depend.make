# Empty compiler generated dependencies file for bench_fig06_user_activity.
# This may be replaced when dependencies are built.
