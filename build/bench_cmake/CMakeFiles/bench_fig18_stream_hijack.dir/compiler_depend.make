# Empty compiler generated dependencies file for bench_fig18_stream_hijack.
# This may be replaced when dependencies are built.
