file(REMOVE_RECURSE
  "../bench/bench_fig18_stream_hijack"
  "../bench/bench_fig18_stream_hijack.pdb"
  "CMakeFiles/bench_fig18_stream_hijack.dir/bench_fig18_stream_hijack.cpp.o"
  "CMakeFiles/bench_fig18_stream_hijack.dir/bench_fig18_stream_hijack.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_stream_hijack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
