# Empty compiler generated dependencies file for bench_service_comparison.
# This may be replaced when dependencies are built.
