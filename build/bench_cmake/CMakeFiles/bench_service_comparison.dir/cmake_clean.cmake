file(REMOVE_RECURSE
  "../bench/bench_service_comparison"
  "../bench/bench_service_comparison.pdb"
  "CMakeFiles/bench_service_comparison.dir/bench_service_comparison.cpp.o"
  "CMakeFiles/bench_service_comparison.dir/bench_service_comparison.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_service_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
