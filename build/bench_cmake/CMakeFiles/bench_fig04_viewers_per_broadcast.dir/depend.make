# Empty dependencies file for bench_fig04_viewers_per_broadcast.
# This may be replaced when dependencies are built.
