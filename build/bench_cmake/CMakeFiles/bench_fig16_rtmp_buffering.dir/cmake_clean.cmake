file(REMOVE_RECURSE
  "../bench/bench_fig16_rtmp_buffering"
  "../bench/bench_fig16_rtmp_buffering.pdb"
  "CMakeFiles/bench_fig16_rtmp_buffering.dir/bench_fig16_rtmp_buffering.cpp.o"
  "CMakeFiles/bench_fig16_rtmp_buffering.dir/bench_fig16_rtmp_buffering.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_rtmp_buffering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
