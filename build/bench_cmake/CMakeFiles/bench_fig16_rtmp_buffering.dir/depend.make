# Empty dependencies file for bench_fig16_rtmp_buffering.
# This may be replaced when dependencies are built.
