# Empty dependencies file for broadcast_day.
# This may be replaced when dependencies are built.
