file(REMOVE_RECURSE
  "CMakeFiles/broadcast_day.dir/broadcast_day.cpp.o"
  "CMakeFiles/broadcast_day.dir/broadcast_day.cpp.o.d"
  "broadcast_day"
  "broadcast_day.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/broadcast_day.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
