# Empty compiler generated dependencies file for interactive_poll.
# This may be replaced when dependencies are built.
