file(REMOVE_RECURSE
  "CMakeFiles/interactive_poll.dir/interactive_poll.cpp.o"
  "CMakeFiles/interactive_poll.dir/interactive_poll.cpp.o.d"
  "interactive_poll"
  "interactive_poll.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interactive_poll.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
