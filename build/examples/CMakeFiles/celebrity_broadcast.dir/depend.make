# Empty dependencies file for celebrity_broadcast.
# This may be replaced when dependencies are built.
