file(REMOVE_RECURSE
  "CMakeFiles/celebrity_broadcast.dir/celebrity_broadcast.cpp.o"
  "CMakeFiles/celebrity_broadcast.dir/celebrity_broadcast.cpp.o.d"
  "celebrity_broadcast"
  "celebrity_broadcast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/celebrity_broadcast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
