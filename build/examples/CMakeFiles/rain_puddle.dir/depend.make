# Empty dependencies file for rain_puddle.
# This may be replaced when dependencies are built.
