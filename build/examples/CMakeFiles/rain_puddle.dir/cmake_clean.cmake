file(REMOVE_RECURSE
  "CMakeFiles/rain_puddle.dir/rain_puddle.cpp.o"
  "CMakeFiles/rain_puddle.dir/rain_puddle.cpp.o.d"
  "rain_puddle"
  "rain_puddle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rain_puddle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
