#include <gtest/gtest.h>

#include "livesim/client/adaptive.h"
#include "livesim/client/playback.h"

namespace livesim::client {
namespace {

constexpr DurationUs kChunk = 3 * time::kSecond;

AdaptivePlayback::Params params(double initial_s, double max_s = 9.0) {
  AdaptivePlayback::Params p;
  p.initial_pre_buffer = time::from_seconds(initial_s);
  p.max_pre_buffer = time::from_seconds(max_s);
  return p;
}

// Chunks arrive every 3 s with a constant pipeline delay.
void feed_steady(AdaptivePlayback& p, int n, DurationUs pipeline) {
  for (int i = 0; i < n; ++i) {
    const DurationUs media = static_cast<DurationUs>(i) * kChunk;
    p.on_arrival(media + pipeline, media, kChunk);
  }
}

TEST(Adaptive, StableLinkKeepsLowBuffer) {
  AdaptivePlayback p(params(6.0));
  feed_steady(p, 40, 4 * time::kSecond);
  EXPECT_EQ(p.rebuffer_events(), 0u);
  EXPECT_EQ(p.stall_ratio(), 0.0);
  EXPECT_EQ(p.current_pre_buffer(), 6 * time::kSecond);
  // Delay stays near the low target, well under the deployed 9 s.
  EXPECT_LT(p.buffering_delay_s().mean(), 6.5);
}

TEST(Adaptive, UnderRunGrowsBufferTowardMax) {
  AdaptivePlayback p(params(3.0, 9.0));
  // Repeated 5 s outages: each late burst triggers a rebuffer + growth.
  DurationUs extra = 0;
  for (int i = 0; i < 60; ++i) {
    const DurationUs media = static_cast<DurationUs>(i) * kChunk;
    if (i % 12 == 11) extra = 5 * time::kSecond;  // periodic trouble
    p.on_arrival(media + 4 * time::kSecond + extra, media, kChunk);
    if (extra > 0) extra = 0;
  }
  EXPECT_GT(p.rebuffer_events(), 0u);
  EXPECT_GT(p.current_pre_buffer(), 3 * time::kSecond);
  EXPECT_LE(p.current_pre_buffer(), 9 * time::kSecond);
}

TEST(Adaptive, GrowthIsCappedAtMax) {
  AdaptivePlayback p(params(3.0, 9.0));
  for (int i = 0; i < 80; ++i) {
    const DurationUs media = static_cast<DurationUs>(i) * kChunk;
    // Pathological link: throughput below the bitrate, so arrivals drift
    // ever later -- every re-anchor eventually under-runs again.
    const DurationUs drift = static_cast<DurationUs>(i) * 800 *
                             time::kMillisecond;
    p.on_arrival(media + 4 * time::kSecond + drift, media, kChunk);
  }
  EXPECT_GT(p.rebuffer_events(), 2u);
  EXPECT_EQ(p.current_pre_buffer(), 9 * time::kSecond);
}

TEST(Adaptive, NeverStartsIsFullStall) {
  AdaptivePlayback p(params(60.0));
  feed_steady(p, 3, time::kSecond);  // 9 s of media, 60 s target
  EXPECT_FALSE(p.started());
  EXPECT_EQ(p.stall_ratio(), 1.0);
}

TEST(Adaptive, BeatsFixedNineOnStableLinks) {
  // Same stable trace through fixed-9 and adaptive-from-6.
  PlaybackSchedule fixed9(9 * time::kSecond);
  AdaptivePlayback adaptive(params(6.0));
  for (int i = 0; i < 40; ++i) {
    const DurationUs media = static_cast<DurationUs>(i) * kChunk;
    fixed9.on_arrival(media + 4 * time::kSecond, media, kChunk);
    adaptive.on_arrival(media + 4 * time::kSecond, media, kChunk);
  }
  EXPECT_EQ(adaptive.stall_ratio(), 0.0);
  EXPECT_LT(adaptive.buffering_delay_s().mean(),
            fixed9.buffering_delay_s().mean());
}

TEST(Adaptive, RecoversSmoothnessAfterGrowth) {
  AdaptivePlayback p(params(3.0, 9.0));
  // One big outage early, then steady: after growth, no further stalls.
  for (int i = 0; i < 60; ++i) {
    const DurationUs media = static_cast<DurationUs>(i) * kChunk;
    const DurationUs extra = (i == 5) ? 6 * time::kSecond : 0;
    p.on_arrival(media + 4 * time::kSecond + extra, media, kChunk);
  }
  EXPECT_EQ(p.rebuffer_events(), 1u);
  const double stall_after_one_event = p.stall_ratio();
  EXPECT_LT(stall_after_one_event, 0.10);
}

}  // namespace
}  // namespace livesim::client
