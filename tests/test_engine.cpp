// Engine-internals tests: EventHandle generation semantics across slot
// recycling, cancel correctness under same-timestamp FIFO, re-arm-in-place,
// and the InplaceFunction small-buffer contract. Complements the behavioral
// coverage in test_simulator.cpp, which treats the queue as a black box.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include "livesim/sim/inplace_function.h"
#include "livesim/sim/simulator.h"

namespace livesim::sim {
namespace {

// ---------------------------------------------------------------------------
// Handle generations & slot recycling

TEST(EngineCancel, CancelAfterFireFails) {
  Simulator sim;
  bool ran = false;
  const EventHandle h = sim.schedule_at(10, [&] { ran = true; });
  sim.run();
  EXPECT_TRUE(ran);
  EXPECT_FALSE(sim.cancel(h));
}

TEST(EngineCancel, DoubleCancelFails) {
  Simulator sim;
  const EventHandle h = sim.schedule_at(10, [] {});
  EXPECT_TRUE(sim.cancel(h));
  EXPECT_FALSE(sim.cancel(h));
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(EngineCancel, StaleHandleNeverCancelsSlotsNextTenant) {
  Simulator sim;
  // Occupy a slot, cancel it (slot returns to the freelist)...
  const EventHandle stale = sim.schedule_at(10, [] {});
  ASSERT_TRUE(sim.cancel(stale));
  // ...then let a new event move in; it will reuse the same arena slot.
  bool tenant_ran = false;
  const EventHandle tenant = sim.schedule_at(20, [&] { tenant_ran = true; });
  EXPECT_EQ(tenant.index, stale.index);          // slot actually recycled
  EXPECT_NE(tenant.generation, stale.generation);  // but generation moved on
  // The stale handle must bounce off, and the tenant must still fire.
  EXPECT_FALSE(sim.cancel(stale));
  sim.run();
  EXPECT_TRUE(tenant_ran);
}

TEST(EngineCancel, StaleHandleAfterFireNeverCancelsSlotsNextTenant) {
  Simulator sim;
  const EventHandle stale = sim.schedule_at(10, [] {});
  sim.run();  // fires; the slot is recycled through the freelist
  bool tenant_ran = false;
  const EventHandle tenant = sim.schedule_at(20, [&] { tenant_ran = true; });
  EXPECT_EQ(tenant.index, stale.index);
  EXPECT_FALSE(sim.cancel(stale));
  sim.run();
  EXPECT_TRUE(tenant_ran);
}

TEST(EngineCancel, GenerationsSurviveRepeatedRecycling) {
  Simulator sim;
  std::vector<EventHandle> history;
  for (int round = 0; round < 50; ++round) {
    const EventHandle h = sim.schedule_at(sim.now() + 1, [] {});
    history.push_back(h);
    sim.run();
  }
  // Every retired handle must be dead, no matter how many tenants ago.
  for (const EventHandle& h : history) EXPECT_FALSE(sim.cancel(h));
}

TEST(EngineCancel, CancelEveryOtherOfMany) {
  Simulator sim;
  constexpr int kN = 1000;
  std::vector<EventHandle> handles;
  std::vector<int> fired;
  for (int i = 0; i < kN; ++i)
    handles.push_back(
        sim.schedule_at((i * 37) % 100, [&fired, i] { fired.push_back(i); }));
  for (int i = 0; i < kN; i += 2) EXPECT_TRUE(sim.cancel(handles[i]));
  sim.run();
  EXPECT_EQ(fired.size(), static_cast<std::size_t>(kN / 2));
  for (int i : fired) EXPECT_EQ(i % 2, 1);
  // After the run every handle -- cancelled or fired -- is dead.
  for (const EventHandle& h : handles) EXPECT_FALSE(sim.cancel(h));
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(EngineCancel, SameTimestampFifoSurvivesCancellation) {
  Simulator sim;
  std::vector<int> order;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 100; ++i)
    handles.push_back(sim.schedule_at(5, [&order, i] { order.push_back(i); }));
  // Cancel a scattered subset; the survivors must still fire in their
  // original scheduling order (the heap splice must not perturb FIFO).
  for (int i = 0; i < 100; ++i)
    if (i % 3 == 0) sim.cancel(handles[i]);
  sim.run();
  std::vector<int> expected;
  for (int i = 0; i < 100; ++i)
    if (i % 3 != 0) expected.push_back(i);
  EXPECT_EQ(order, expected);
}

TEST(EngineCancel, CallbackCancelsLaterSameTimeEvent) {
  Simulator sim;
  bool victim_ran = false;
  EventHandle victim;
  sim.schedule_at(10, [&] { EXPECT_TRUE(sim.cancel(victim)); });
  victim = sim.schedule_at(10, [&] { victim_ran = true; });
  sim.run();
  EXPECT_FALSE(victim_ran);
}

TEST(EngineCancel, CallbackCancelsItsOwnHandleFails) {
  Simulator sim;
  EventHandle self;
  bool cancel_result = true;
  self = sim.schedule_at(10, [&] { cancel_result = sim.cancel(self); });
  sim.run();
  // By the time the callback runs the event has fired: cancel must refuse.
  EXPECT_FALSE(cancel_result);
}

TEST(EngineReschedule, OutsideCallbackThrows) {
  Simulator sim;
  EXPECT_THROW(sim.reschedule_current(10), std::logic_error);
}

TEST(EngineReschedule, RearmedEventFiresAgainAndHandleIsLive) {
  Simulator sim;
  int fires = 0;
  EventHandle rearmed;
  sim.schedule_at(10, [&] {
    if (++fires == 1) rearmed = sim.reschedule_current(sim.now() + 5);
  });
  sim.run();
  EXPECT_EQ(fires, 2);
  EXPECT_EQ(sim.now(), 15);
  EXPECT_FALSE(sim.cancel(rearmed));  // second firing retired the handle
}

TEST(EngineReschedule, RearmThenCancelFromOutside) {
  Simulator sim;
  int fires = 0;
  EventHandle rearmed;
  sim.schedule_at(10, [&] {
    ++fires;
    rearmed = sim.reschedule_current(sim.now() + 5);
  });
  sim.schedule_at(12, [&] { EXPECT_TRUE(sim.cancel(rearmed)); });
  sim.run();
  EXPECT_EQ(fires, 1);
}

TEST(EngineReschedule, RearmThenSelfCancelInsideCallback) {
  // A callback that re-arms itself and then thinks better of it: the
  // closure is still on the stack when cancel runs, so the engine must
  // defer destruction instead of freeing the frame under our feet.
  Simulator sim;
  int fires = 0;
  sim.schedule_at(10, [&] {
    ++fires;
    const EventHandle h = sim.reschedule_current(sim.now() + 5);
    EXPECT_TRUE(sim.cancel(h));
  });
  sim.run();
  EXPECT_EQ(fires, 1);
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(EngineReschedule, TwiceInOneFiringThrows) {
  Simulator sim;
  sim.schedule_at(10, [&] {
    sim.reschedule_current(sim.now() + 5);
    EXPECT_THROW(sim.reschedule_current(sim.now() + 5), std::logic_error);
  });
  // The callback re-arms on every firing; bound the run explicitly.
  const std::size_t ran = sim.step(2);
  EXPECT_EQ(ran, 2u);
  EXPECT_EQ(sim.pending(), 1u);  // the second firing re-armed once more
}

// ---------------------------------------------------------------------------
// InplaceFunction small-buffer contract

TEST(InplaceFunctionTest, SmallCaptureLivesInline) {
  int x = 41;
  InplaceFunction<int()> f([&x] { return x + 1; });
  EXPECT_TRUE(f.is_inline());
  EXPECT_EQ(f(), 42);
}

TEST(InplaceFunctionTest, CapacityBoundaryIsExact) {
  std::array<char, kInplaceFunctionCapacity> at_cap{};
  at_cap[0] = 7;
  InplaceFunction<int()> inline_fn([at_cap] { return at_cap[0]; });
  EXPECT_TRUE(inline_fn.is_inline());
  EXPECT_EQ(inline_fn(), 7);

  std::array<char, kInplaceFunctionCapacity + 1> over_cap{};
  over_cap[0] = 9;
  InplaceFunction<int()> boxed_fn([over_cap] { return over_cap[0]; });
  EXPECT_FALSE(boxed_fn.is_inline());
  EXPECT_EQ(boxed_fn(), 9);
}

TEST(InplaceFunctionTest, MoveOnlyCaptureWorks) {
  auto p = std::make_unique<int>(5);
  InplaceFunction<int()> f([p = std::move(p)] { return *p; });
  EXPECT_TRUE(f.is_inline());
  EXPECT_EQ(f(), 5);
}

TEST(InplaceFunctionTest, MoveTransfersOwnership) {
  int calls = 0;
  InplaceFunction<void()> a([&calls] { ++calls; });
  InplaceFunction<void()> b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));
  EXPECT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(calls, 1);

  InplaceFunction<void()> c;
  c = std::move(b);
  EXPECT_FALSE(static_cast<bool>(b));
  c();
  EXPECT_EQ(calls, 2);
}

struct DtorCounter {
  int* count;
  explicit DtorCounter(int* c) : count(c) {}
  DtorCounter(DtorCounter&& other) noexcept : count(other.count) {
    other.count = nullptr;
  }
  DtorCounter(const DtorCounter&) = delete;
  ~DtorCounter() {
    if (count != nullptr) ++*count;
  }
  void operator()() const {}
};

TEST(InplaceFunctionTest, DestroysCaptureExactlyOnce) {
  int dtors = 0;
  {
    InplaceFunction<void()> f{DtorCounter(&dtors)};
    EXPECT_TRUE(f.is_inline());
    InplaceFunction<void()> g(std::move(f));  // relocation must not double-count
    g();
  }
  EXPECT_EQ(dtors, 1);
}

TEST(InplaceFunctionTest, NullptrAssignmentDestroysCapture) {
  int dtors = 0;
  InplaceFunction<void()> f{DtorCounter(&dtors)};
  f = nullptr;
  EXPECT_EQ(dtors, 1);
  EXPECT_FALSE(static_cast<bool>(f));
}

struct BigDtorCounter : DtorCounter {
  std::array<char, 128> pad{};
  using DtorCounter::DtorCounter;
};

TEST(InplaceFunctionTest, BoxedCaptureDestroysExactlyOnce) {
  int dtors = 0;
  {
    InplaceFunction<void()> f{BigDtorCounter(&dtors)};
    EXPECT_FALSE(f.is_inline());
    InplaceFunction<void()> g(std::move(f));
    g();
  }
  EXPECT_EQ(dtors, 1);
}

TEST(InplaceFunctionTest, EmplaceReplacesExistingCapture) {
  int dtors = 0;
  InplaceFunction<void()> f{DtorCounter(&dtors)};
  f.emplace([] {});
  EXPECT_EQ(dtors, 1);  // the old capture died when the new one moved in
  f();
}

TEST(InplaceFunctionTest, ArgumentsAreForwarded) {
  InplaceFunction<int(int, int)> f([](int a, int b) { return a * 10 + b; });
  EXPECT_EQ(f(3, 4), 34);
}

}  // namespace
}  // namespace livesim::sim
