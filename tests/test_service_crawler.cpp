#include <gtest/gtest.h>

#include "livesim/crawler/service_crawler.h"

namespace livesim::crawler {
namespace {

class ServiceCrawlerFixture : public ::testing::Test {
 protected:
  ServiceCrawlerFixture()
      : catalog_(geo::DatacenterCatalog::paper_footprint()),
        service_(sim_, catalog_, service_config()) {}

  static core::LivestreamService::Config service_config() {
    core::LivestreamService::Config cfg;
    cfg.seed = 71;
    return cfg;
  }

  // A stream of broadcasts over `horizon`, each with a few viewers and
  // some hearts.
  void drive_service(DurationUs horizon, double per_minute = 6.0) {
    auto rng = std::make_shared<Rng>(72);
    auto arrive = std::make_shared<std::function<void()>>();
    *arrive = [this, horizon, per_minute, rng, arrive] {
      if (sim_.now() >= horizon) return;
      geo::UserGeoSampler geo_sampler;
      const auto id = service_.start_broadcast(
          geo_sampler.sample(*rng),
          time::from_seconds(40.0 + rng->uniform() * 80.0));
      for (int v = 0; v < 4; ++v) {
        if (auto h = service_.join(id, geo_sampler.sample(*rng))) {
          const auto handle = *h;
          sim_.schedule_in(25 * time::kSecond, [this, handle] {
            service_.send_heart(handle);
          });
        }
      }
      sim_.schedule_in(
          time::from_seconds(rng->exponential(60.0 / per_minute)), *arrive);
    };
    sim_.schedule_in(0, *arrive);
  }

  sim::Simulator sim_;
  geo::DatacenterCatalog catalog_;
  core::LivestreamService service_;
};

TEST_F(ServiceCrawlerFixture, CapturesEveryBroadcastWithAccurateMetadata) {
  drive_service(4 * time::kMinute);
  ServiceCrawler crawler(sim_, service_, {}, Rng(73));
  crawler.start();
  sim_.schedule_at(6 * time::kMinute, [&] { crawler.stop(); });
  sim_.run();

  // Ground truth: every broadcast the service ever created.
  std::uint64_t total = 0;
  for (std::uint64_t i = 0;; ++i) {
    const auto info = service_.info(BroadcastId{i});
    if (!info) break;
    ++total;
    // Captured, with matching interaction metadata.
    auto rec = crawler.records().find(i);
    ASSERT_NE(rec, crawler.records().end()) << "missed broadcast " << i;
    EXPECT_EQ(rec->second.hearts, info->hearts);
    EXPECT_EQ(rec->second.comments, info->comments);
    EXPECT_EQ(rec->second.peak_viewers,
              info->rtmp_viewers + info->hls_viewers);
    EXPECT_TRUE(rec->second.ended);
    // Detected within seconds of starting (0.25 s effective refresh).
    EXPECT_LT(rec->second.first_seen - info->started_at,
              5 * time::kSecond);
  }
  EXPECT_GT(total, 10u);
  EXPECT_EQ(crawler.broadcasts_captured(), total);
}

TEST_F(ServiceCrawlerFixture, OutageLosesOnlyShortBroadcastsInWindow) {
  drive_service(8 * time::kMinute, 14.0);
  ServiceCrawler crawler(sim_, service_, {}, Rng(74));
  crawler.start();
  // The Aug 7-9 bug, scaled down: list refreshes fail for two minutes.
  crawler.schedule_outage(2 * time::kMinute, 4 * time::kMinute);
  sim_.schedule_at(10 * time::kMinute, [&] { crawler.stop(); });
  sim_.run();

  std::uint64_t total = 0, missed = 0, missed_in_window = 0;
  for (std::uint64_t i = 0;; ++i) {
    const auto info = service_.info(BroadcastId{i});
    if (!info) break;
    ++total;
    if (crawler.records().count(i)) continue;
    ++missed;
    // Every miss must be a broadcast that lived entirely inside the
    // outage window (otherwise a refresh would have caught it).
    if (info->started_at >= 2 * time::kMinute - 5 * time::kSecond &&
        info->started_at + info->length <=
            4 * time::kMinute + 5 * time::kSecond)
      ++missed_in_window;
  }
  EXPECT_GT(missed, 0u);  // the outage did cost us data ("missing ~4.5%")
  EXPECT_EQ(missed, missed_in_window);
  EXPECT_LT(static_cast<double>(missed) / static_cast<double>(total), 0.35);
}

TEST_F(ServiceCrawlerFixture, PrivateBroadcastsAreInvisible) {
  service_.start_private_broadcast({37.77, -122.42}, 2 * time::kMinute,
                                   {UserId{1}});
  service_.start_broadcast({37.77, -122.42}, 2 * time::kMinute);
  ServiceCrawler crawler(sim_, service_, {}, Rng(75));
  crawler.start();
  sim_.schedule_at(3 * time::kMinute, [&] { crawler.stop(); });
  sim_.run();
  // Only the public broadcast is on the global list.
  EXPECT_EQ(crawler.broadcasts_captured(), 1u);
  EXPECT_TRUE(crawler.records().count(1));
  EXPECT_FALSE(crawler.records().count(0));
}

}  // namespace
}  // namespace livesim::crawler
