#include <gtest/gtest.h>

#include <sstream>

#include "livesim/analysis/trace_io.h"

namespace livesim::analysis {
namespace {

std::vector<BroadcastTrace> small_set() {
  TraceSetConfig cfg;
  cfg.broadcasts = 20;
  cfg.broadcast_len = 30 * time::kSecond;
  cfg.seed = 9;
  return generate_traces(cfg);
}

TEST(TraceIo, RoundTripPreservesEverything) {
  const auto original = small_set();
  std::stringstream buffer;
  save_traces(original, buffer);
  const auto loaded = load_traces(buffer);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    const auto& a = original[i];
    const auto& b = (*loaded)[i];
    EXPECT_EQ(a.frame_interval, b.frame_interval);
    EXPECT_EQ(a.bursty, b.bursty);
    ASSERT_EQ(a.frame_arrivals, b.frame_arrivals);
    ASSERT_EQ(a.chunks.size(), b.chunks.size());
    for (std::size_t c = 0; c < a.chunks.size(); ++c) {
      EXPECT_EQ(a.chunks[c].completed_at_ingest,
                b.chunks[c].completed_at_ingest);
      EXPECT_EQ(a.chunks[c].media_start, b.chunks[c].media_start);
      EXPECT_EQ(a.chunks[c].duration, b.chunks[c].duration);
      EXPECT_EQ(a.chunks[c].bytes, b.chunks[c].bytes);
    }
  }
}

TEST(TraceIo, ExperimentsAgreeOnSavedAndLiveTraces) {
  const auto original = small_set();
  std::stringstream buffer;
  save_traces(original, buffer);
  const auto loaded = load_traces(buffer);
  ASSERT_TRUE(loaded.has_value());
  const auto live = polling_experiment(original, 2 * time::kSecond,
                                       300 * time::kMillisecond, 4);
  const auto replay = polling_experiment(*loaded, 2 * time::kSecond,
                                         300 * time::kMillisecond, 4);
  EXPECT_DOUBLE_EQ(live.per_broadcast_mean_s.mean(),
                   replay.per_broadcast_mean_s.mean());
}

TEST(TraceIo, FileRoundTrip) {
  const auto original = small_set();
  const std::string path = "/tmp/livesim_traces_test.txt";
  save_traces(original, path);
  const auto loaded = load_traces(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->size(), original.size());
}

TEST(TraceIo, MissingFileReturnsNullopt) {
  EXPECT_FALSE(load_traces(std::string("/nonexistent/nope.txt")).has_value());
}

TEST(TraceIo, RejectsStructuralErrors) {
  {
    std::stringstream bad("X 1 2 3\n");
    EXPECT_FALSE(load_traces(bad).has_value());
  }
  {
    std::stringstream bad("F 100 200\n");  // frames before any broadcast
    EXPECT_FALSE(load_traces(bad).has_value());
  }
  {
    // Declared 3 frames, provided 2.
    std::stringstream bad("B 40000 0 3 0\nF 1 2\n");
    EXPECT_FALSE(load_traces(bad).has_value());
  }
  {
    // Chunk overflow vs declaration.
    std::stringstream bad("B 40000 0 0 0\nC 1 2 3 4\n");
    EXPECT_FALSE(load_traces(bad).has_value());
  }
  {
    std::stringstream empty("# only a comment\n");
    const auto r = load_traces(empty);
    ASSERT_TRUE(r.has_value());
    EXPECT_TRUE(r->empty());
  }
}

}  // namespace
}  // namespace livesim::analysis
