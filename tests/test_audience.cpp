#include <gtest/gtest.h>

#include "livesim/workload/audience.h"

namespace livesim::workload {
namespace {

TEST(Audience, GeneratesRequestedViewersSorted) {
  AudienceParams p;
  p.total_viewers = 500;
  p.seed = 3;
  const auto joins = generate_audience(p);
  ASSERT_EQ(joins.size(), 500u);
  for (std::size_t i = 1; i < joins.size(); ++i)
    ASSERT_LE(joins[i - 1].join, joins[i].join);
  for (const auto& r : joins) {
    ASSERT_GE(r.join, 0);
    ASSERT_LT(r.join, p.broadcast_len);
    ASSERT_GE(r.stay, 1);
    ASSERT_LE(r.join + r.stay, p.broadcast_len);
  }
}

TEST(Audience, Deterministic) {
  AudienceParams p;
  p.seed = 4;
  const auto a = generate_audience(p);
  const auto b = generate_audience(p);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a[10].join, b[10].join);
  EXPECT_EQ(a[10].stay, b[10].stay);
}

TEST(Audience, ViralityShiftsArrivalsLate) {
  AudienceParams uniform, viral;
  uniform.total_viewers = viral.total_viewers = 4000;
  uniform.virality = 0.0;
  viral.virality = 5.0;
  uniform.seed = viral.seed = 5;
  const auto u = generate_audience(uniform);
  const auto v = generate_audience(viral);
  auto late_fraction = [](const std::vector<JoinRecord>& joins,
                          DurationUs len) {
    std::size_t late = 0;
    for (const auto& r : joins)
      if (r.join > len / 2) ++late;
    return static_cast<double>(late) / static_cast<double>(joins.size());
  };
  EXPECT_NEAR(late_fraction(u, uniform.broadcast_len), 0.5, 0.05);
  EXPECT_GT(late_fraction(v, viral.broadcast_len), 0.75);
}

TEST(Concurrency, HandBuiltCase) {
  // Two viewers overlapping for one bin.
  std::vector<JoinRecord> joins = {
      {0, 2 * time::kSecond},
      {1 * time::kSecond, 2 * time::kSecond},
  };
  const auto curve = concurrency(joins, 5 * time::kSecond);
  ASSERT_GE(curve.concurrent.size(), 5u);
  EXPECT_EQ(curve.concurrent[0], 1u);
  EXPECT_EQ(curve.concurrent[1], 2u);  // overlap
  EXPECT_EQ(curve.concurrent[2], 2u);  // second still watching thru bin 2
  EXPECT_EQ(curve.concurrent[4], 0u);
  EXPECT_EQ(curve.peak, 2u);
  EXPECT_EQ(curve.peak_at, 1 * time::kSecond);
}

TEST(Concurrency, PeakBoundedByTotal) {
  AudienceParams p;
  p.total_viewers = 3000;
  p.virality = 4.0;
  p.median_watch_s = 120;
  p.seed = 6;
  const auto joins = generate_audience(p);
  const auto curve = concurrency(joins, p.broadcast_len);
  EXPECT_LE(curve.peak, p.total_viewers);
  EXPECT_GT(curve.peak, p.total_viewers / 50);
  // Viral stream peaks in the later half.
  EXPECT_GT(curve.peak_at, p.broadcast_len / 2);
}

TEST(Concurrency, LongerWatchTimesRaisePeak) {
  AudienceParams shortw, longw;
  shortw.total_viewers = longw.total_viewers = 5000;
  shortw.median_watch_s = 30;
  longw.median_watch_s = 300;
  shortw.seed = longw.seed = 7;
  const auto ps = concurrency(generate_audience(shortw),
                              shortw.broadcast_len).peak;
  const auto pl = concurrency(generate_audience(longw),
                              longw.broadcast_len).peak;
  EXPECT_GT(pl, 2 * ps);
}

}  // namespace
}  // namespace livesim::workload
