// Resilience-subsystem acceptance tests (ctest label: resilience).
//
// Three contracts are pinned here:
//  1. No-fault parity: with an empty FaultSchedule the fault machinery is
//     fully inert — the §5.2/§6 experiment pipelines produce bit-identical
//     output at threads 1 and 8, and a session reports zero fault
//     activity.
//  2. Thread determinism: a fixed-seed resilience run with a non-empty
//     randomized schedule is byte-identical at threads {1, 2, 8}.
//  3. Failover accounting: an ingest crash mid-broadcast migrates every
//     RTMP viewer onto the HLS/W2F path instead of dropping them, and the
//     latency ledger matches the migration count.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <unordered_map>
#include <vector>

#include "livesim/analysis/resilience.h"
#include "livesim/core/broadcast_session.h"
#include "livesim/core/service.h"
#include "livesim/fault/scenario.h"
#include "livesim/sim/parallel.h"
#include "livesim/workload/crowd.h"

namespace {
using namespace livesim;

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h ^= v;
  h *= 0x100000001b3ULL;
  return h;
}

std::uint64_t mix_double(std::uint64_t h, double x) {
  std::uint64_t bits;
  std::memcpy(&bits, &x, sizeof(bits));
  return mix(h, bits);
}

std::uint64_t fingerprint(const stats::Sampler& s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (double x : s.samples()) h = mix_double(h, x);
  return h;
}

std::uint64_t fingerprint(const analysis::ResilienceStats& r) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  h = mix(h, fingerprint(r.stall_ratio));
  h = mix(h, fingerprint(r.rebuffer_count));
  h = mix(h, fingerprint(r.failover_latency_s));
  h = mix(h, r.counters.viewers);
  h = mix(h, r.counters.faults_injected);
  h = mix(h, r.counters.ingest_crashes);
  h = mix(h, r.counters.failovers);
  h = mix(h, r.counters.unrecoverable);
  h = mix(h, r.counters.chunk_refetches);
  return h;
}

std::vector<analysis::BroadcastTrace> small_trace_set(unsigned threads) {
  analysis::TraceSetConfig cfg;
  cfg.broadcasts = 120;
  cfg.broadcast_len = time::kMinute;
  cfg.seed = 11;
  cfg.threads = threads;
  return analysis::generate_traces(cfg);
}

// --- 1. No-fault parity ----------------------------------------------

TEST(NoFaultParity, PollingPipelineIdenticalAtThreads1And8) {
  const auto t1 = small_trace_set(1);
  const auto t8 = small_trace_set(8);
  const auto p1 = analysis::polling_experiment(t1, 3 * time::kSecond,
                                               300 * time::kMillisecond, 5, 1);
  const auto p8 = analysis::polling_experiment(t8, 3 * time::kSecond,
                                               300 * time::kMillisecond, 5, 8);
  EXPECT_EQ(fingerprint(p1.per_broadcast_mean_s),
            fingerprint(p8.per_broadcast_mean_s));
  EXPECT_EQ(fingerprint(p1.per_broadcast_std_s),
            fingerprint(p8.per_broadcast_std_s));
}

TEST(NoFaultParity, BufferingPipelineIdenticalAtThreads1And8) {
  const auto t1 = small_trace_set(1);
  const auto t8 = small_trace_set(8);
  const auto b1 =
      analysis::rtmp_buffering_experiment(t1, time::kSecond, 5, 1);
  const auto b8 =
      analysis::rtmp_buffering_experiment(t8, time::kSecond, 5, 8);
  EXPECT_EQ(fingerprint(b1.stall_ratio), fingerprint(b8.stall_ratio));
  EXPECT_EQ(fingerprint(b1.mean_delay_s), fingerprint(b8.mean_delay_s));
}

TEST(NoFaultParity, ZeroFaultRateIsInertInResilienceRun) {
  const auto traces = small_trace_set(1);
  analysis::ResilienceConfig cfg;  // faults_per_minute defaults to 0
  cfg.seed = 3;
  const auto r = analysis::resilience_experiment(traces, cfg);
  EXPECT_EQ(r.counters.viewers, traces.size());
  EXPECT_EQ(r.counters.faults_injected, 0u);
  EXPECT_EQ(r.counters.ingest_crashes, 0u);
  EXPECT_EQ(r.counters.failovers, 0u);
  EXPECT_EQ(r.counters.unrecoverable, 0u);
  EXPECT_EQ(r.counters.chunk_refetches, 0u);
  EXPECT_TRUE(r.failover_latency_s.empty());
  // Every viewer played the whole broadcast over RTMP.
  EXPECT_LT(r.stall_ratio.quantile(0.5), 0.05);
}

TEST(NoFaultParity, SessionWithEmptyScheduleReportsNoFaultActivity) {
  sim::Simulator sim;
  const auto catalog = geo::DatacenterCatalog::paper_footprint();
  core::SessionConfig cfg;
  cfg.broadcast_len = 20 * time::kSecond;
  cfg.rtmp_viewers = 2;
  cfg.hls_viewers = 2;
  cfg.seed = 9;
  ASSERT_TRUE(cfg.faults.empty());  // the default is faults-disabled
  core::BroadcastSession session(sim, catalog, cfg);
  session.start();
  sim.run();
  session.finalize();
  EXPECT_EQ(session.faults_injected(), 0u);
  EXPECT_EQ(session.rtmp_failovers(), 0u);
  EXPECT_EQ(session.corrupted_downloads(), 0u);
  EXPECT_TRUE(session.failover_latency_s().empty());
  for (const auto& v : session.viewer_results())
    EXPECT_GT(v.units_played, 0u);
}

// --- 2. Thread determinism -------------------------------------------

TEST(ResilienceDeterminism, ByteIdenticalAtThreads128) {
  const auto traces = small_trace_set(1);
  analysis::ResilienceConfig cfg;
  cfg.faults.faults_per_minute = 2.0;
  cfg.seed = 77;

  cfg.threads = 1;
  const auto r1 = analysis::resilience_experiment(traces, cfg);
  ASSERT_GT(r1.counters.faults_injected, 0u);

  for (unsigned threads : {2u, 8u}) {
    cfg.threads = threads;
    const auto rn = analysis::resilience_experiment(traces, cfg);
    EXPECT_EQ(fingerprint(r1), fingerprint(rn))
        << "resilience run diverged at threads=" << threads;
  }
}

TEST(ResilienceDeterminism, SeedChangesResults) {
  const auto traces = small_trace_set(1);
  analysis::ResilienceConfig cfg;
  cfg.faults.faults_per_minute = 2.0;
  cfg.seed = 77;
  const auto a = analysis::resilience_experiment(traces, cfg);
  cfg.seed = 78;
  const auto b = analysis::resilience_experiment(traces, cfg);
  EXPECT_NE(fingerprint(a), fingerprint(b));
}

TEST(ResilienceDeterminism, FaultySessionIsReproducible) {
  const auto catalog = geo::DatacenterCatalog::paper_footprint();
  auto run = [&] {
    sim::Simulator sim;
    core::SessionConfig cfg;
    cfg.broadcast_len = 40 * time::kSecond;
    cfg.rtmp_viewers = 3;
    cfg.hls_viewers = 1;
    cfg.seed = 13;
    cfg.faults.add({15 * time::kSecond, fault::FaultKind::kIngestCrash,
                    8 * time::kSecond});
    cfg.faults.add({25 * time::kSecond, fault::FaultKind::kEdgeCacheFlush, 0});
    core::BroadcastSession session(sim, catalog, cfg);
    session.start();
    sim.run();
    session.finalize();
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const auto& v : session.viewer_results()) {
      h = mix(h, v.hls ? 1 : 0);
      h = mix_double(h, v.stall_ratio);
      h = mix_double(h, v.mean_buffering_s);
      h = mix(h, v.units_played);
    }
    h = mix(h, session.rtmp_failovers());
    h = mix_double(h, session.failover_latency_s().mean());
    return h;
  };
  EXPECT_EQ(run(), run());
}

// --- 3. Failover accounting ------------------------------------------

TEST(Failover, IngestCrashMigratesEveryRtmpViewerViaW2f) {
  sim::Simulator sim;
  const auto catalog = geo::DatacenterCatalog::paper_footprint();
  core::SessionConfig cfg;
  cfg.broadcast_len = 60 * time::kSecond;
  cfg.rtmp_viewers = 3;
  cfg.hls_viewers = 1;
  cfg.seed = 4;
  cfg.faults.add({20 * time::kSecond, fault::FaultKind::kIngestCrash,
                  10 * time::kSecond});
  core::BroadcastSession session(sim, catalog, cfg);
  session.start();
  sim.run();
  session.finalize();

  EXPECT_EQ(session.faults_injected(), 1u);
  EXPECT_EQ(session.rtmp_failovers(), cfg.rtmp_viewers);
  // One latency sample per migration, measured crash -> first HLS chunk,
  // so it is at least the detect timeout.
  ASSERT_EQ(session.failover_latency_s().count(), cfg.rtmp_viewers);
  EXPECT_GE(session.failover_latency_s().min(),
            time::to_seconds(cfg.failover_detect_timeout));

  // Every viewer ends on the HLS path and kept playing after the crash.
  std::size_t on_hls = 0;
  for (const auto& v : session.viewer_results()) {
    if (v.hls) ++on_hls;
    EXPECT_GT(v.units_played, 0u);
  }
  EXPECT_EQ(on_hls, session.viewer_count());
}

TEST(Failover, MigratedViewersKeepPlayingAfterTheCrash) {
  // Crash at t=15s (5 s down) in a 60 s broadcast. Without failover the
  // RTMP viewers would freeze at the crash point; with it, each migrated
  // viewer's post-migration HLS schedule must receive and smoothly play
  // most of the post-restart media (~40 s of it).
  sim::Simulator sim;
  const auto catalog = geo::DatacenterCatalog::paper_footprint();
  core::SessionConfig cfg;
  cfg.broadcast_len = 60 * time::kSecond;
  cfg.rtmp_viewers = 2;
  cfg.hls_viewers = 0;
  cfg.seed = 21;
  cfg.faults.add({15 * time::kSecond, fault::FaultKind::kIngestCrash,
                  5 * time::kSecond});
  core::BroadcastSession session(sim, catalog, cfg);
  session.start();
  sim.run();
  session.finalize();

  ASSERT_EQ(session.rtmp_failovers(), 2u);
  for (std::size_t i = 0; i < session.viewer_count(); ++i) {
    // viewer_playback is the live schedule — post-migration, the fresh
    // HLS one. It re-anchored (started) and got the rest of the stream.
    const auto& pb = session.viewer_playback(i);
    EXPECT_TRUE(pb.started());
    EXPECT_GE(pb.media_offered(), 30 * time::kSecond);
    EXPECT_EQ(pb.units_discarded(), 0u);
  }
  // Merged (RTMP phase + HLS phase) per-viewer results barely stall.
  for (const auto& v : session.viewer_results()) {
    EXPECT_TRUE(v.hls);
    EXPECT_LT(v.stall_ratio, 0.2);
  }
}

// --- 4. Correlated fault scenarios -----------------------------------

std::uint64_t fingerprint(const fault::FaultSchedule& s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const auto& e : s.events()) {
    h = mix(h, static_cast<std::uint64_t>(e.at));
    h = mix(h, static_cast<std::uint64_t>(e.kind));
    h = mix(h, static_cast<std::uint64_t>(e.duration));
    h = mix(h, e.target);
    h = mix_double(h, e.magnitude);
  }
  return h;
}

TEST(ScenarioExpansion, EmptyScenarioExpandsToEmptySchedule) {
  const auto catalog = geo::DatacenterCatalog::paper_footprint();
  fault::FaultScenario scenario;
  EXPECT_TRUE(scenario.empty());
  EXPECT_TRUE(scenario.expand(catalog, 1).empty());
}

TEST(ScenarioExpansion, ZeroRadiusBlackoutKillsExactlyTheNearestEdge) {
  const auto catalog = geo::DatacenterCatalog::paper_footprint();
  fault::RegionalBlackoutSpec spec;
  spec.center = {50.11, 8.68};  // Frankfurt
  spec.radius_km = 0.0;
  const auto sites = fault::FaultScenario::blackout_sites(catalog, spec);
  ASSERT_EQ(sites.size(), 1u);
  EXPECT_EQ(sites[0].value,
            catalog.nearest(spec.center, geo::CdnRole::kEdge).id.value);

  fault::FaultScenario scenario;
  scenario.add(spec);
  const auto schedule = scenario.expand(catalog, 1);
  ASSERT_EQ(schedule.size(), 1u);
  EXPECT_EQ(schedule.events()[0].kind, fault::FaultKind::kEdgeDown);
  EXPECT_EQ(schedule.events()[0].target, sites[0].value);
}

TEST(ScenarioExpansion, WiderRadiusDarkensMoreSites) {
  const auto catalog = geo::DatacenterCatalog::paper_footprint();
  fault::RegionalBlackoutSpec spec;
  spec.center = {50.11, 8.68};
  spec.radius_km = 1500.0;
  const auto regional = fault::FaultScenario::blackout_sites(catalog, spec);
  EXPECT_GT(regional.size(), 1u);
  spec.radius_km = 50000.0;  // the whole planet
  const auto global = fault::FaultScenario::blackout_sites(catalog, spec);
  EXPECT_EQ(global.size(), catalog.edge_sites().size());
}

TEST(ScenarioExpansion, DeterministicInSeedAndSubstreamPerSpec) {
  const auto catalog = geo::DatacenterCatalog::paper_footprint();
  fault::CascadeSpec cascade;
  cascade.origin = {37.77, -122.42};
  cascade.at = 5 * time::kSecond;
  fault::FaultScenario one;
  one.add(cascade);

  // Same (scenario, catalog, seed) -> same schedule, bit for bit.
  EXPECT_EQ(fingerprint(one.expand(catalog, 9)),
            fingerprint(one.expand(catalog, 9)));
  EXPECT_NE(fingerprint(one.expand(catalog, 9)),
            fingerprint(one.expand(catalog, 10)));

  // Appending a neighbour never perturbs an earlier spec's expansion:
  // the cascade's events must appear unchanged in the combined schedule.
  fault::RollingWaveSpec wave;
  wave.start = 60 * time::kSecond;
  fault::FaultScenario both = one;
  both.add(wave);
  const auto solo = one.expand(catalog, 9);
  const auto combined = both.expand(catalog, 9);
  for (const auto& e : solo.events()) {
    const bool present = std::any_of(
        combined.events().begin(), combined.events().end(),
        [&](const fault::FaultEvent& c) {
          return c.at == e.at && c.kind == e.kind &&
                 c.duration == e.duration && c.target == e.target;
        });
    EXPECT_TRUE(present) << "cascade event perturbed by appended wave";
  }
}

TEST(ScenarioExpansion, RollingWaveSweepsEveryEdgeWestToEast) {
  const auto catalog = geo::DatacenterCatalog::paper_footprint();
  fault::RollingWaveSpec wave;
  wave.site_gap = 3 * time::kSecond;
  fault::FaultScenario scenario;
  scenario.add(wave);
  const auto schedule = scenario.expand(catalog, 1);
  EXPECT_EQ(schedule.size(), catalog.edge_sites().size());
  // One site at a time: event times strictly increase by the gap.
  const auto& ev = schedule.events();
  for (std::size_t i = 1; i < ev.size(); ++i)
    EXPECT_EQ(ev[i].at - ev[i - 1].at, wave.site_gap);
}

// --- 5. Edge-to-edge failover ----------------------------------------

TEST(Failover, EdgeDeathReanycastsEveryAttachedViewerWithZeroOrphans) {
  sim::Simulator sim;
  const auto catalog = geo::DatacenterCatalog::paper_footprint();
  core::SessionConfig cfg;
  cfg.broadcast_len = 60 * time::kSecond;
  cfg.rtmp_viewers = 0;
  cfg.hls_viewers = 4;
  cfg.global_viewers = false;  // everyone on the broadcaster's edge
  cfg.seed = 5;
  fault::RegionalBlackoutSpec spec;
  spec.at = 20 * time::kSecond;
  spec.duration = 15 * time::kSecond;
  spec.center = cfg.broadcaster_location;
  spec.radius_km = 0.0;
  fault::FaultScenario scenario;
  scenario.add(spec);
  cfg.faults = scenario.expand(catalog, cfg.seed);

  core::BroadcastSession session(sim, catalog, cfg);
  session.start();
  sim.run();
  session.finalize();

  // 100% of the dead PoP's viewers re-anycast; none orphaned.
  EXPECT_EQ(session.edge_failovers(), cfg.hls_viewers);
  EXPECT_EQ(session.orphaned_viewers(), 0u);
  // One latency sample per completed failover, >= the detect timeout
  // (detection + re-anycast + re-anchored first chunk).
  ASSERT_EQ(session.edge_failover_latency_s().count(), cfg.hls_viewers);
  EXPECT_GE(session.edge_failover_latency_s().min(),
            time::to_seconds(cfg.failover_detect_timeout));
  for (const auto& v : session.viewer_results()) {
    EXPECT_FALSE(v.orphaned);
    EXPECT_GT(v.units_played, 0u);
    // Everyone moved off the dead site.
    EXPECT_NE(v.attachment.value, cfg.faults.events()[0].target);
  }
}

TEST(Failover, RegionalBlackoutOfEveryEdgeOrphansViewers) {
  sim::Simulator sim;
  const auto catalog = geo::DatacenterCatalog::paper_footprint();
  core::SessionConfig cfg;
  cfg.broadcast_len = 60 * time::kSecond;
  cfg.rtmp_viewers = 0;
  cfg.hls_viewers = 3;
  cfg.global_viewers = false;
  cfg.seed = 6;
  fault::RegionalBlackoutSpec spec;
  spec.at = 20 * time::kSecond;
  spec.duration = 30 * time::kSecond;
  spec.center = cfg.broadcaster_location;
  spec.radius_km = 50000.0;  // the whole footprint goes dark
  fault::FaultScenario scenario;
  scenario.add(spec);
  cfg.faults = scenario.expand(catalog, cfg.seed);

  core::BroadcastSession session(sim, catalog, cfg);
  session.start();
  sim.run();
  session.finalize();

  EXPECT_EQ(session.edge_failovers(), 0u);
  EXPECT_EQ(session.orphaned_viewers(), cfg.hls_viewers);
  std::size_t orphaned = 0;
  for (const auto& v : session.viewer_results())
    if (v.orphaned) ++orphaned;
  EXPECT_EQ(orphaned, cfg.hls_viewers);
}

// --- 6. RTMP re-join after ingest restart ----------------------------

TEST(Failover, RtmpViewersRejoinRtmpAfterIngestRestart) {
  sim::Simulator sim;
  const auto catalog = geo::DatacenterCatalog::paper_footprint();
  core::SessionConfig cfg;
  cfg.broadcast_len = 90 * time::kSecond;
  cfg.rtmp_viewers = 3;
  cfg.hls_viewers = 1;
  cfg.seed = 17;
  cfg.rtmp_rejoin_after_restart = true;
  cfg.faults.add({20 * time::kSecond, fault::FaultKind::kIngestCrash,
                  10 * time::kSecond});
  core::BroadcastSession session(sim, catalog, cfg);
  session.start();
  sim.run();
  session.finalize();

  // Crash -> every RTMP viewer migrates to HLS; restart -> every one of
  // them re-attaches to RTMP (the second pipeline flush).
  EXPECT_EQ(session.rtmp_failovers(), cfg.rtmp_viewers);
  EXPECT_EQ(session.rtmp_rejoins(), cfg.rtmp_viewers);
  std::size_t back_on_rtmp = 0;
  for (const auto& v : session.viewer_results()) {
    if (!v.hls) ++back_on_rtmp;
    EXPECT_GT(v.units_played, 0u);
  }
  EXPECT_EQ(back_on_rtmp, cfg.rtmp_viewers);
  // The rejoined viewers keep receiving frames over RTMP afterwards: the
  // live playback schedule (the post-rejoin phase) saw fresh media.
  for (std::size_t i = 0; i < session.viewer_count(); ++i) {
    if (session.viewer_is_hls(i)) continue;
    EXPECT_GT(session.viewer_playback(i).media_offered(), 0u);
  }
}

TEST(Failover, RejoinDefaultsOffSoMigratedViewersStayOnHls) {
  sim::Simulator sim;
  const auto catalog = geo::DatacenterCatalog::paper_footprint();
  core::SessionConfig cfg;
  cfg.broadcast_len = 90 * time::kSecond;
  cfg.rtmp_viewers = 2;
  cfg.hls_viewers = 0;
  cfg.seed = 17;
  ASSERT_FALSE(cfg.rtmp_rejoin_after_restart);
  cfg.faults.add({20 * time::kSecond, fault::FaultKind::kIngestCrash,
                  10 * time::kSecond});
  core::BroadcastSession session(sim, catalog, cfg);
  session.start();
  sim.run();
  session.finalize();
  EXPECT_EQ(session.rtmp_rejoins(), 0u);
  for (const auto& v : session.viewer_results()) EXPECT_TRUE(v.hls);
}

// --- 7. Regional experiment & service-level injection ----------------

std::uint64_t fingerprint(const analysis::RegionalOutageStats& r) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  h = mix(h, fingerprint(r.stall_ratio));
  h = mix(h, fingerprint(r.failover_latency_s));
  h = mix(h, r.counters.viewers);
  h = mix(h, r.counters.affected);
  h = mix(h, r.counters.failovers);
  h = mix(h, r.counters.orphaned);
  h = mix(h, static_cast<std::uint64_t>(r.dark_edges));
  return h;
}

TEST(RegionalDeterminism, ByteIdenticalAtThreads128) {
  const auto traces = small_trace_set(1);
  const auto catalog = geo::DatacenterCatalog::paper_footprint();
  analysis::RegionalOutageConfig cfg;
  cfg.radius_km = 3000.0;
  cfg.seed = 77;

  cfg.threads = 1;
  const auto r1 = analysis::regional_resilience_experiment(traces, catalog,
                                                           cfg);
  ASSERT_GT(r1.counters.affected, 0u);

  for (unsigned threads : {2u, 8u}) {
    cfg.threads = threads;
    const auto rn =
        analysis::regional_resilience_experiment(traces, catalog, cfg);
    EXPECT_EQ(fingerprint(r1), fingerprint(rn))
        << "regional run diverged at threads=" << threads;
  }
}

TEST(RegionalDeterminism, ZeroRadiusFailsOverEveryAffectedViewer) {
  const auto traces = small_trace_set(1);
  const auto catalog = geo::DatacenterCatalog::paper_footprint();
  analysis::RegionalOutageConfig cfg;  // radius_km defaults to 0
  cfg.seed = 3;
  const auto r = analysis::regional_resilience_experiment(traces, catalog,
                                                          cfg);
  EXPECT_EQ(r.dark_edges, 1u);
  ASSERT_GT(r.counters.affected, 0u);
  EXPECT_EQ(r.counters.failovers, r.counters.affected);
  EXPECT_EQ(r.counters.orphaned, 0u);
  EXPECT_EQ(r.failover_latency_s.size(), r.counters.failovers);
}

TEST(NoFaultParity, EmptyScenarioInjectionIsBitIdenticalToCleanSession) {
  const auto catalog = geo::DatacenterCatalog::paper_footprint();
  auto run = [&](bool inject_empty) {
    sim::Simulator sim;
    core::SessionConfig cfg;
    cfg.broadcast_len = 30 * time::kSecond;
    cfg.rtmp_viewers = 2;
    cfg.hls_viewers = 2;
    cfg.seed = 23;
    core::BroadcastSession session(sim, catalog, cfg);
    session.start();
    if (inject_empty) {
      // An empty scenario expands to an empty schedule, which must be a
      // complete no-op: no injector, no RNG draws, no event traffic.
      fault::FaultScenario empty;
      session.inject_faults(empty.expand(catalog, cfg.seed));
    }
    sim.run();
    session.finalize();
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const auto& v : session.viewer_results()) {
      h = mix(h, v.hls ? 1 : 0);
      h = mix_double(h, v.stall_ratio);
      h = mix_double(h, v.mean_buffering_s);
      h = mix(h, v.units_played);
      h = mix(h, v.units_discarded);
    }
    h = mix(h, session.faults_injected());
    h = mix_double(h, session.hls_breakdown().buffering_s.mean());
    h = mix_double(h, session.rtmp_breakdown().buffering_s.mean());
    return h;
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(ScenarioInjection, ServiceSharesOneOutageAcrossLiveBroadcasts) {
  sim::Simulator sim;
  const auto catalog = geo::DatacenterCatalog::paper_footprint();
  core::LivestreamService::Config cfg;
  cfg.rtmp_slot_cap = 0;  // every joiner lands on HLS
  cfg.session_defaults.broadcast_len = 60 * time::kSecond;
  cfg.seed = 31;
  core::LivestreamService service(sim, catalog, cfg);

  const geo::GeoPoint sf{37.77, -122.42};
  std::vector<BroadcastId> ids;
  for (int b = 0; b < 3; ++b) {
    ids.push_back(service.start_broadcast(sf, 60 * time::kSecond));
    for (int v = 0; v < 2; ++v) ASSERT_TRUE(service.join(ids.back(), sf));
  }

  fault::FaultScenario empty;
  EXPECT_EQ(service.inject_scenario(empty, cfg.seed), 0u);

  fault::RegionalBlackoutSpec spec;
  spec.at = 20 * time::kSecond;
  spec.duration = 15 * time::kSecond;
  spec.center = sf;
  spec.radius_km = 0.0;
  fault::FaultScenario scenario;
  scenario.add(spec);
  EXPECT_EQ(service.inject_scenario(scenario, cfg.seed), ids.size());

  sim.run();
  std::uint64_t failovers = 0, orphans = 0;
  for (BroadcastId id : ids) {
    core::BroadcastSession* s = service.session(id);
    ASSERT_NE(s, nullptr);
    s->finalize();
    EXPECT_GT(s->faults_injected(), 0u);
    failovers += s->edge_failovers();
    orphans += s->orphaned_viewers();
  }
  // One shared outage: every broadcast's two viewers re-anycast.
  EXPECT_EQ(failovers, 6u);
  EXPECT_EQ(orphans, 0u);
}

// --- 8. Per-edge capacity & the spill policy --------------------------

// The projection the parity contract compares: exactly the fields both
// experiment types share, mixed identically on both sides.
std::uint64_t fingerprint_common(const stats::Sampler& stall,
                                 const stats::Sampler& latency,
                                 const analysis::RegionalOutageCounters& c,
                                 std::size_t dark_edges) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  h = mix(h, fingerprint(stall));
  h = mix(h, fingerprint(latency));
  h = mix(h, c.viewers);
  h = mix(h, c.affected);
  h = mix(h, c.failovers);
  h = mix(h, c.orphaned);
  h = mix(h, static_cast<std::uint64_t>(dark_edges));
  return h;
}

std::uint64_t fingerprint(const analysis::CapacitySpillStats& r) {
  std::uint64_t h = fingerprint_common(r.stall_ratio, r.failover_latency_s,
                                       r.counters, r.dark_edges);
  h = mix(h, r.edge_spills);
  h = mix(h, r.capacity_orphans);
  h = mix(h, r.spill_overshoot_km.count());
  h = mix_double(h, r.spill_overshoot_km.sum());
  for (const auto& [site, peak] : r.edge_peak_loads) {
    h = mix(h, site);
    h = mix(h, peak);
  }
  return h;
}

// The PR 3 parity contract: edge_capacity == 0 must reproduce the
// single-nearest-edge regional experiment bit for bit — same samples in
// the same order, same counters — with the spill ledgers empty.
TEST(CapacitySpill, InfiniteCapacityReproducesRegionalExperimentBitForBit) {
  const auto traces = small_trace_set(1);
  const auto catalog = geo::DatacenterCatalog::paper_footprint();
  for (double radius : {0.0, 3000.0}) {
    analysis::CapacitySpillConfig ccfg;  // edge_capacity defaults to 0
    ccfg.base.radius_km = radius;
    ccfg.base.seed = 77;
    const auto reg =
        analysis::regional_resilience_experiment(traces, catalog, ccfg.base);
    const auto cap =
        analysis::capacity_spill_experiment(traces, catalog, ccfg);
    EXPECT_EQ(fingerprint_common(reg.stall_ratio, reg.failover_latency_s,
                                 reg.counters, reg.dark_edges),
              fingerprint_common(cap.stall_ratio, cap.failover_latency_s,
                                 cap.counters, cap.dark_edges))
        << "parity broke at radius " << radius;
    EXPECT_EQ(cap.edge_spills, 0u);
    EXPECT_EQ(cap.capacity_orphans, 0u);
    EXPECT_TRUE(cap.spill_overshoot_km.empty());
    // The load ledger still ran: anycast joins count even when nothing
    // spills.
    EXPECT_FALSE(cap.edge_peak_loads.empty());
  }
}

// The acceptance contract: a finite-capacity zero-radius outage spills
// deterministically ring by ring — byte-identical at threads {1, 2, 8}.
TEST(CapacitySpill, FiniteCapacityByteIdenticalAtThreads128) {
  const auto traces = small_trace_set(1);
  const auto catalog = geo::DatacenterCatalog::paper_footprint();
  analysis::CapacitySpillConfig cfg;
  cfg.base.radius_km = 0.0;
  cfg.base.seed = 77;
  cfg.edge_capacity = 25;

  cfg.base.threads = 1;
  const auto r1 = analysis::capacity_spill_experiment(traces, catalog, cfg);
  ASSERT_GT(r1.counters.affected, 0u);
  ASSERT_GT(r1.edge_spills, 0u);  // the capacity actually bit

  for (unsigned threads : {2u, 8u}) {
    cfg.base.threads = threads;
    const auto rn = analysis::capacity_spill_experiment(traces, catalog, cfg);
    EXPECT_EQ(fingerprint(r1), fingerprint(rn))
        << "capacity-spill run diverged at threads=" << threads;
  }

  // Conservation: every affected viewer re-anycasts or orphans; every
  // spill recorded exactly one overshoot sample; capacity orphans are a
  // subset of orphans.
  EXPECT_EQ(r1.counters.failovers + r1.counters.orphaned,
            r1.counters.affected);
  EXPECT_EQ(r1.spill_overshoot_km.count(), r1.edge_spills);
  EXPECT_LE(r1.capacity_orphans, r1.counters.orphaned);
  EXPECT_GE(r1.spill_overshoot_km.min(), 0.0);
}

// Event-level spill: six co-located viewers, capacity two, their PoP
// dies. Two land on the nearest live edge; four must overflow outward,
// ring by ring, each paying a positive overshoot.
TEST(CapacitySpill, SessionSpillsRingByRingPastFullEdges) {
  sim::Simulator sim;
  const auto catalog = geo::DatacenterCatalog::paper_footprint();
  core::SessionConfig cfg;
  cfg.broadcast_len = 60 * time::kSecond;
  cfg.rtmp_viewers = 0;
  cfg.hls_viewers = 6;
  cfg.global_viewers = false;
  cfg.broadcaster_location = {37.77, -122.42};  // San Francisco
  cfg.edge_capacity = 2;
  cfg.seed = 5;
  fault::RegionalBlackoutSpec spec;
  spec.at = 20 * time::kSecond;
  spec.duration = 15 * time::kSecond;
  spec.center = cfg.broadcaster_location;
  spec.radius_km = 0.0;
  fault::FaultScenario scenario;
  scenario.add(spec);
  cfg.faults = scenario.expand(catalog, cfg.seed);
  const std::uint64_t dead_site = cfg.faults.events()[0].target;

  core::BroadcastSession session(sim, catalog, cfg);
  session.start();
  sim.run();
  session.finalize();

  EXPECT_EQ(session.edge_failovers(), cfg.hls_viewers);
  EXPECT_EQ(session.orphaned_viewers(), 0u);
  EXPECT_EQ(session.edge_spills(), 4u);
  ASSERT_EQ(session.spill_distance_km().count(), 4u);
  // No live edge is co-located with the dead SF PoP, so every spill
  // overshoots a real distance.
  EXPECT_GT(session.spill_distance_km().min(), 0.0);

  // Capacity held: at most two admissions per live edge, and the dead
  // site kept nobody.
  std::unordered_map<std::uint64_t, unsigned> admitted;
  for (const auto& v : session.viewer_results()) {
    EXPECT_NE(v.attachment.value, dead_site);
    admitted[v.attachment.value] += 1;
  }
  EXPECT_EQ(admitted.size(), 3u);  // three rings of two
  for (const auto& [site, n] : admitted) EXPECT_EQ(n, 2u);

  // The hotspot ledger: the dead SF site peaked at all six joins (joins
  // are load-blind), every other site at its two admissions.
  for (const auto& [site, peak] : session.edge_peak_loads())
    EXPECT_EQ(peak, site == dead_site ? 6u : 2u);
}

// With capacity 0 (unbounded) the spill ledgers must stay empty even
// through a real blackout — the pre-capacity behaviour, bit for bit.
TEST(CapacitySpill, UnboundedCapacityNeverSpills) {
  sim::Simulator sim;
  const auto catalog = geo::DatacenterCatalog::paper_footprint();
  core::SessionConfig cfg;
  cfg.broadcast_len = 60 * time::kSecond;
  cfg.rtmp_viewers = 0;
  cfg.hls_viewers = 6;
  cfg.global_viewers = false;
  cfg.broadcaster_location = {37.77, -122.42};
  ASSERT_EQ(cfg.edge_capacity, 0u);  // the default is unbounded
  cfg.seed = 5;
  fault::RegionalBlackoutSpec spec;
  spec.at = 20 * time::kSecond;
  spec.duration = 15 * time::kSecond;
  spec.center = cfg.broadcaster_location;
  spec.radius_km = 0.0;
  fault::FaultScenario scenario;
  scenario.add(spec);
  cfg.faults = scenario.expand(catalog, cfg.seed);

  core::BroadcastSession session(sim, catalog, cfg);
  session.start();
  sim.run();
  session.finalize();

  EXPECT_EQ(session.edge_failovers(), cfg.hls_viewers);
  EXPECT_EQ(session.edge_spills(), 0u);
  EXPECT_TRUE(session.spill_distance_km().empty());
  // Everyone piles onto the single nearest live edge.
  std::unordered_map<std::uint64_t, unsigned> admitted;
  for (const auto& v : session.viewer_results())
    admitted[v.attachment.value] += 1;
  EXPECT_EQ(admitted.size(), 1u);
}

// Regression (the mid-detection re-assignment bug): blackout A dies
// before the detect window ends, so at detection time the dead PoP's
// down-horizon has lapsed — the old nearest-live check would re-assign
// the viewers straight back to it, and the overlapping blackout B would
// kill them again. The event's dark set is now an explicit exclusion, so
// the viewers land elsewhere on the FIRST failover.
TEST(CapacitySpill, FlappingPoPIsExcludedFromItsOwnFailover) {
  sim::Simulator sim;
  const auto catalog = geo::DatacenterCatalog::paper_footprint();
  core::SessionConfig cfg;
  cfg.broadcast_len = 60 * time::kSecond;
  cfg.rtmp_viewers = 0;
  cfg.hls_viewers = 4;
  cfg.global_viewers = false;
  cfg.broadcaster_location = {37.77, -122.42};
  cfg.seed = 5;
  ASSERT_EQ(cfg.failover_detect_timeout, 2 * time::kSecond);

  fault::FaultScenario scenario;
  fault::RegionalBlackoutSpec a;       // flap: down 1 s, back up BEFORE
  a.at = 20 * time::kSecond;           // the 2 s detect window elapses
  a.duration = 1 * time::kSecond;
  a.center = cfg.broadcaster_location;
  a.radius_km = 0.0;
  scenario.add(a);
  fault::RegionalBlackoutSpec b = a;   // the second, overlapping blackout
  b.at = 22500 * time::kMillisecond;   // re-kills the PoP right after
  b.duration = 10 * time::kSecond;     // detection fired at t=22 s
  scenario.add(b);
  cfg.faults = scenario.expand(catalog, cfg.seed);
  const std::uint64_t flapping_site = cfg.faults.events()[0].target;

  core::BroadcastSession session(sim, catalog, cfg);
  session.start();
  sim.run();
  session.finalize();

  // Exactly ONE failover per viewer: nobody bounced back to the flapping
  // PoP only to be re-killed by blackout B.
  EXPECT_EQ(session.edge_failovers(), cfg.hls_viewers);
  EXPECT_EQ(session.orphaned_viewers(), 0u);
  for (const auto& v : session.viewer_results()) {
    EXPECT_FALSE(v.orphaned);
    EXPECT_NE(v.attachment.value, flapping_site);
  }
}

// Service-level wiring: inject_scenario + session_defaults.edge_capacity
// produce per-broadcast pile-ups that the service ledgers aggregate.
TEST(CapacitySpill, ServiceAggregatesSpillLedgersAcrossBroadcasts) {
  sim::Simulator sim;
  const auto catalog = geo::DatacenterCatalog::paper_footprint();
  core::LivestreamService::Config cfg;
  cfg.rtmp_slot_cap = 0;  // every joiner lands on HLS
  cfg.session_defaults.broadcast_len = 60 * time::kSecond;
  cfg.session_defaults.edge_capacity = 1;
  cfg.seed = 31;
  core::LivestreamService service(sim, catalog, cfg);

  const geo::GeoPoint sf{37.77, -122.42};
  std::vector<BroadcastId> ids;
  for (int b = 0; b < 3; ++b) {
    ids.push_back(service.start_broadcast(sf, 60 * time::kSecond));
    for (int v = 0; v < 2; ++v) ASSERT_TRUE(service.join(ids.back(), sf));
  }
  ASSERT_EQ(service.edge_spills(), 0u);  // joins are load-blind

  fault::RegionalBlackoutSpec spec;
  spec.at = 20 * time::kSecond;
  spec.duration = 15 * time::kSecond;
  spec.center = sf;
  spec.radius_km = 0.0;
  fault::FaultScenario scenario;
  scenario.add(spec);
  ASSERT_EQ(service.inject_scenario(scenario, cfg.seed), ids.size());

  sim.run();
  std::uint64_t failovers = 0;
  for (BroadcastId id : ids) {
    core::BroadcastSession* s = service.session(id);
    ASSERT_NE(s, nullptr);
    s->finalize();
    failovers += s->edge_failovers();
    // Capacity 1 per session: one viewer takes the nearest live edge,
    // the other spills past it.
    EXPECT_EQ(s->edge_spills(), 1u);
  }
  EXPECT_EQ(failovers, 6u);
  EXPECT_EQ(service.edge_spills(), 3u);
  EXPECT_EQ(service.spill_distance_km().count(), 3u);
  EXPECT_GT(service.spill_distance_km().min(), 0.0);
  // Aggregated hotspot ledger: the dead SF site summed its three
  // per-broadcast peaks of two joins each.
  const std::uint64_t dead_site =
      catalog.nearest(sf, geo::CdnRole::kEdge).id.value;
  bool found = false;
  for (const auto& [site, peak] : service.edge_peak_loads())
    if (site == dead_site) {
      found = true;
      EXPECT_EQ(peak, 6u);
    }
  EXPECT_TRUE(found);
}

// --- 9. Flash-crowd workload determinism ------------------------------

// The crowd generator feeds the poll-wheel flash-crowd scenarios; its
// records must merge identically at any thread count (record i depends
// only on substream_seed(seed, i) and lands in slot i).
TEST(CrowdDeterminism, FlashCrowdByteIdenticalAtThreads128) {
  const auto preset = workload::CrowdPreset::twitch_flash_crowd();
  const auto r1 = workload::generate_crowd(preset, 77, 1);
  ASSERT_EQ(r1.size(), preset.viewers);
  const std::uint64_t fp1 = workload::crowd_fingerprint(r1);
  for (unsigned threads : {2u, 8u}) {
    const auto rn = workload::generate_crowd(preset, 77, threads);
    EXPECT_EQ(fp1, workload::crowd_fingerprint(rn))
        << "crowd generation diverged at threads=" << threads;
  }
}

TEST(CrowdDeterminism, EveryPresetThreadInvariantAndSeedSensitive) {
  for (const auto& preset : {workload::CrowdPreset::twitch_flash_crowd(),
                             workload::CrowdPreset::twitch_steady_giants(),
                             workload::CrowdPreset::periscope_tail()}) {
    const auto a = workload::generate_crowd(preset, 9, 1);
    const auto b = workload::generate_crowd(preset, 9, 8);
    EXPECT_EQ(workload::crowd_fingerprint(a), workload::crowd_fingerprint(b))
        << preset.name;
    const auto c = workload::generate_crowd(preset, 10, 1);
    EXPECT_NE(workload::crowd_fingerprint(a), workload::crowd_fingerprint(c))
        << preset.name;
  }
}

TEST(Failover, CorruptionWindowCountsDiscardedDownloads) {
  sim::Simulator sim;
  const auto catalog = geo::DatacenterCatalog::paper_footprint();
  core::SessionConfig cfg;
  cfg.broadcast_len = 60 * time::kSecond;
  cfg.rtmp_viewers = 0;
  cfg.hls_viewers = 3;
  cfg.seed = 8;
  fault::FaultEvent corrupt;
  corrupt.at = 10 * time::kSecond;
  corrupt.kind = fault::FaultKind::kChunkCorruption;
  corrupt.duration = 40 * time::kSecond;
  corrupt.magnitude = 1.0;  // every download in the window corrupts
  cfg.faults.add(corrupt);
  core::BroadcastSession session(sim, catalog, cfg);
  session.start();
  sim.run();
  session.finalize();
  EXPECT_GT(session.corrupted_downloads(), 0u);
  // Corruption discards downloads but viewers still re-poll and play.
  for (const auto& v : session.viewer_results())
    EXPECT_GT(v.units_played, 0u);
}

}  // namespace
