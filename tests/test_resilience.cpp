// Resilience-subsystem acceptance tests (ctest label: resilience).
//
// Three contracts are pinned here:
//  1. No-fault parity: with an empty FaultSchedule the fault machinery is
//     fully inert — the §5.2/§6 experiment pipelines produce bit-identical
//     output at threads 1 and 8, and a session reports zero fault
//     activity.
//  2. Thread determinism: a fixed-seed resilience run with a non-empty
//     randomized schedule is byte-identical at threads {1, 2, 8}.
//  3. Failover accounting: an ingest crash mid-broadcast migrates every
//     RTMP viewer onto the HLS/W2F path instead of dropping them, and the
//     latency ledger matches the migration count.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "livesim/analysis/resilience.h"
#include "livesim/core/broadcast_session.h"
#include "livesim/sim/parallel.h"

namespace {
using namespace livesim;

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h ^= v;
  h *= 0x100000001b3ULL;
  return h;
}

std::uint64_t mix_double(std::uint64_t h, double x) {
  std::uint64_t bits;
  std::memcpy(&bits, &x, sizeof(bits));
  return mix(h, bits);
}

std::uint64_t fingerprint(const stats::Sampler& s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (double x : s.samples()) h = mix_double(h, x);
  return h;
}

std::uint64_t fingerprint(const analysis::ResilienceStats& r) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  h = mix(h, fingerprint(r.stall_ratio));
  h = mix(h, fingerprint(r.rebuffer_count));
  h = mix(h, fingerprint(r.failover_latency_s));
  h = mix(h, r.counters.viewers);
  h = mix(h, r.counters.faults_injected);
  h = mix(h, r.counters.ingest_crashes);
  h = mix(h, r.counters.failovers);
  h = mix(h, r.counters.unrecoverable);
  h = mix(h, r.counters.chunk_refetches);
  return h;
}

std::vector<analysis::BroadcastTrace> small_trace_set(unsigned threads) {
  analysis::TraceSetConfig cfg;
  cfg.broadcasts = 120;
  cfg.broadcast_len = time::kMinute;
  cfg.seed = 11;
  cfg.threads = threads;
  return analysis::generate_traces(cfg);
}

// --- 1. No-fault parity ----------------------------------------------

TEST(NoFaultParity, PollingPipelineIdenticalAtThreads1And8) {
  const auto t1 = small_trace_set(1);
  const auto t8 = small_trace_set(8);
  const auto p1 = analysis::polling_experiment(t1, 3 * time::kSecond,
                                               300 * time::kMillisecond, 5, 1);
  const auto p8 = analysis::polling_experiment(t8, 3 * time::kSecond,
                                               300 * time::kMillisecond, 5, 8);
  EXPECT_EQ(fingerprint(p1.per_broadcast_mean_s),
            fingerprint(p8.per_broadcast_mean_s));
  EXPECT_EQ(fingerprint(p1.per_broadcast_std_s),
            fingerprint(p8.per_broadcast_std_s));
}

TEST(NoFaultParity, BufferingPipelineIdenticalAtThreads1And8) {
  const auto t1 = small_trace_set(1);
  const auto t8 = small_trace_set(8);
  const auto b1 =
      analysis::rtmp_buffering_experiment(t1, time::kSecond, 5, 1);
  const auto b8 =
      analysis::rtmp_buffering_experiment(t8, time::kSecond, 5, 8);
  EXPECT_EQ(fingerprint(b1.stall_ratio), fingerprint(b8.stall_ratio));
  EXPECT_EQ(fingerprint(b1.mean_delay_s), fingerprint(b8.mean_delay_s));
}

TEST(NoFaultParity, ZeroFaultRateIsInertInResilienceRun) {
  const auto traces = small_trace_set(1);
  analysis::ResilienceConfig cfg;  // faults_per_minute defaults to 0
  cfg.seed = 3;
  const auto r = analysis::resilience_experiment(traces, cfg);
  EXPECT_EQ(r.counters.viewers, traces.size());
  EXPECT_EQ(r.counters.faults_injected, 0u);
  EXPECT_EQ(r.counters.ingest_crashes, 0u);
  EXPECT_EQ(r.counters.failovers, 0u);
  EXPECT_EQ(r.counters.unrecoverable, 0u);
  EXPECT_EQ(r.counters.chunk_refetches, 0u);
  EXPECT_TRUE(r.failover_latency_s.empty());
  // Every viewer played the whole broadcast over RTMP.
  EXPECT_LT(r.stall_ratio.quantile(0.5), 0.05);
}

TEST(NoFaultParity, SessionWithEmptyScheduleReportsNoFaultActivity) {
  sim::Simulator sim;
  const auto catalog = geo::DatacenterCatalog::paper_footprint();
  core::SessionConfig cfg;
  cfg.broadcast_len = 20 * time::kSecond;
  cfg.rtmp_viewers = 2;
  cfg.hls_viewers = 2;
  cfg.seed = 9;
  ASSERT_TRUE(cfg.faults.empty());  // the default is faults-disabled
  core::BroadcastSession session(sim, catalog, cfg);
  session.start();
  sim.run();
  session.finalize();
  EXPECT_EQ(session.faults_injected(), 0u);
  EXPECT_EQ(session.rtmp_failovers(), 0u);
  EXPECT_EQ(session.corrupted_downloads(), 0u);
  EXPECT_TRUE(session.failover_latency_s().empty());
  for (const auto& v : session.viewer_results())
    EXPECT_GT(v.units_played, 0u);
}

// --- 2. Thread determinism -------------------------------------------

TEST(ResilienceDeterminism, ByteIdenticalAtThreads128) {
  const auto traces = small_trace_set(1);
  analysis::ResilienceConfig cfg;
  cfg.faults.faults_per_minute = 2.0;
  cfg.seed = 77;

  cfg.threads = 1;
  const auto r1 = analysis::resilience_experiment(traces, cfg);
  ASSERT_GT(r1.counters.faults_injected, 0u);

  for (unsigned threads : {2u, 8u}) {
    cfg.threads = threads;
    const auto rn = analysis::resilience_experiment(traces, cfg);
    EXPECT_EQ(fingerprint(r1), fingerprint(rn))
        << "resilience run diverged at threads=" << threads;
  }
}

TEST(ResilienceDeterminism, SeedChangesResults) {
  const auto traces = small_trace_set(1);
  analysis::ResilienceConfig cfg;
  cfg.faults.faults_per_minute = 2.0;
  cfg.seed = 77;
  const auto a = analysis::resilience_experiment(traces, cfg);
  cfg.seed = 78;
  const auto b = analysis::resilience_experiment(traces, cfg);
  EXPECT_NE(fingerprint(a), fingerprint(b));
}

TEST(ResilienceDeterminism, FaultySessionIsReproducible) {
  const auto catalog = geo::DatacenterCatalog::paper_footprint();
  auto run = [&] {
    sim::Simulator sim;
    core::SessionConfig cfg;
    cfg.broadcast_len = 40 * time::kSecond;
    cfg.rtmp_viewers = 3;
    cfg.hls_viewers = 1;
    cfg.seed = 13;
    cfg.faults.add({15 * time::kSecond, fault::FaultKind::kIngestCrash,
                    8 * time::kSecond});
    cfg.faults.add({25 * time::kSecond, fault::FaultKind::kEdgeCacheFlush, 0});
    core::BroadcastSession session(sim, catalog, cfg);
    session.start();
    sim.run();
    session.finalize();
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const auto& v : session.viewer_results()) {
      h = mix(h, v.hls ? 1 : 0);
      h = mix_double(h, v.stall_ratio);
      h = mix_double(h, v.mean_buffering_s);
      h = mix(h, v.units_played);
    }
    h = mix(h, session.rtmp_failovers());
    h = mix_double(h, session.failover_latency_s().mean());
    return h;
  };
  EXPECT_EQ(run(), run());
}

// --- 3. Failover accounting ------------------------------------------

TEST(Failover, IngestCrashMigratesEveryRtmpViewerViaW2f) {
  sim::Simulator sim;
  const auto catalog = geo::DatacenterCatalog::paper_footprint();
  core::SessionConfig cfg;
  cfg.broadcast_len = 60 * time::kSecond;
  cfg.rtmp_viewers = 3;
  cfg.hls_viewers = 1;
  cfg.seed = 4;
  cfg.faults.add({20 * time::kSecond, fault::FaultKind::kIngestCrash,
                  10 * time::kSecond});
  core::BroadcastSession session(sim, catalog, cfg);
  session.start();
  sim.run();
  session.finalize();

  EXPECT_EQ(session.faults_injected(), 1u);
  EXPECT_EQ(session.rtmp_failovers(), cfg.rtmp_viewers);
  // One latency sample per migration, measured crash -> first HLS chunk,
  // so it is at least the detect timeout.
  ASSERT_EQ(session.failover_latency_s().count(), cfg.rtmp_viewers);
  EXPECT_GE(session.failover_latency_s().min(),
            time::to_seconds(cfg.failover_detect_timeout));

  // Every viewer ends on the HLS path and kept playing after the crash.
  std::size_t on_hls = 0;
  for (const auto& v : session.viewer_results()) {
    if (v.hls) ++on_hls;
    EXPECT_GT(v.units_played, 0u);
  }
  EXPECT_EQ(on_hls, session.viewer_count());
}

TEST(Failover, MigratedViewersKeepPlayingAfterTheCrash) {
  // Crash at t=15s (5 s down) in a 60 s broadcast. Without failover the
  // RTMP viewers would freeze at the crash point; with it, each migrated
  // viewer's post-migration HLS schedule must receive and smoothly play
  // most of the post-restart media (~40 s of it).
  sim::Simulator sim;
  const auto catalog = geo::DatacenterCatalog::paper_footprint();
  core::SessionConfig cfg;
  cfg.broadcast_len = 60 * time::kSecond;
  cfg.rtmp_viewers = 2;
  cfg.hls_viewers = 0;
  cfg.seed = 21;
  cfg.faults.add({15 * time::kSecond, fault::FaultKind::kIngestCrash,
                  5 * time::kSecond});
  core::BroadcastSession session(sim, catalog, cfg);
  session.start();
  sim.run();
  session.finalize();

  ASSERT_EQ(session.rtmp_failovers(), 2u);
  for (std::size_t i = 0; i < session.viewer_count(); ++i) {
    // viewer_playback is the live schedule — post-migration, the fresh
    // HLS one. It re-anchored (started) and got the rest of the stream.
    const auto& pb = session.viewer_playback(i);
    EXPECT_TRUE(pb.started());
    EXPECT_GE(pb.media_offered(), 30 * time::kSecond);
    EXPECT_EQ(pb.units_discarded(), 0u);
  }
  // Merged (RTMP phase + HLS phase) per-viewer results barely stall.
  for (const auto& v : session.viewer_results()) {
    EXPECT_TRUE(v.hls);
    EXPECT_LT(v.stall_ratio, 0.2);
  }
}

TEST(Failover, CorruptionWindowCountsDiscardedDownloads) {
  sim::Simulator sim;
  const auto catalog = geo::DatacenterCatalog::paper_footprint();
  core::SessionConfig cfg;
  cfg.broadcast_len = 60 * time::kSecond;
  cfg.rtmp_viewers = 0;
  cfg.hls_viewers = 3;
  cfg.seed = 8;
  fault::FaultEvent corrupt;
  corrupt.at = 10 * time::kSecond;
  corrupt.kind = fault::FaultKind::kChunkCorruption;
  corrupt.duration = 40 * time::kSecond;
  corrupt.magnitude = 1.0;  // every download in the window corrupts
  cfg.faults.add(corrupt);
  core::BroadcastSession session(sim, catalog, cfg);
  session.start();
  sim.run();
  session.finalize();
  EXPECT_GT(session.corrupted_downloads(), 0u);
  // Corruption discards downloads but viewers still re-poll and play.
  for (const auto& v : session.viewer_results())
    EXPECT_GT(v.units_played, 0u);
}

}  // namespace
