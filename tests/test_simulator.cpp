#include <gtest/gtest.h>

#include <vector>

#include "livesim/sim/simulator.h"

namespace livesim::sim {
namespace {

TEST(Simulator, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0);
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(300, [&] { order.push_back(3); });
  sim.schedule_at(100, [&] { order.push_back(1); });
  sim.schedule_at(200, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 300);
}

TEST(Simulator, SameTimeEventsAreFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) sim.schedule_at(50, [&, i] { order.push_back(i); });
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Simulator, ScheduleInIsRelative) {
  Simulator sim;
  TimeUs seen = -1;
  sim.schedule_at(100, [&] {
    sim.schedule_in(50, [&] { seen = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(seen, 150);
}

TEST(Simulator, PastTimesClampToNow) {
  Simulator sim;
  TimeUs seen = -1;
  sim.schedule_at(100, [&] {
    sim.schedule_at(10, [&] { seen = sim.now(); });  // in the past
  });
  sim.run();
  EXPECT_EQ(seen, 100);
}

TEST(Simulator, NegativeDelayClamps) {
  Simulator sim;
  bool ran = false;
  sim.schedule_in(-5, [&] { ran = true; });
  sim.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(sim.now(), 0);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool ran = false;
  const EventHandle id = sim.schedule_at(10, [&] { ran = true; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run();
  EXPECT_FALSE(ran);
}

TEST(Simulator, CancelTwiceFails) {
  Simulator sim;
  const EventHandle id = sim.schedule_at(10, [] {});
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));
}

TEST(Simulator, CancelAfterRunFails) {
  Simulator sim;
  const EventHandle id = sim.schedule_at(10, [] {});
  sim.run();
  EXPECT_FALSE(sim.cancel(id));
}

TEST(Simulator, CancelInvalidIdFails) {
  Simulator sim;
  EXPECT_FALSE(sim.cancel(EventHandle{}));  // default handle is invalid
  // A handle into a slot the arena never allocated.
  EXPECT_FALSE(sim.cancel(EventHandle{9999, 1}));
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator sim;
  std::vector<TimeUs> fired;
  for (TimeUs t : {10, 20, 30, 40})
    sim.schedule_at(t, [&, t] { fired.push_back(t); });
  sim.run_until(25);
  EXPECT_EQ(fired, (std::vector<TimeUs>{10, 20}));
  EXPECT_EQ(sim.now(), 25);
  sim.run();
  EXPECT_EQ(fired.size(), 4u);
}

TEST(Simulator, RunUntilIncludesBoundaryEvents) {
  Simulator sim;
  bool ran = false;
  sim.schedule_at(25, [&] { ran = true; });
  sim.run_until(25);
  EXPECT_TRUE(ran);
}

TEST(Simulator, RunUntilAdvancesClockWithNoEvents) {
  Simulator sim;
  sim.run_until(1000);
  EXPECT_EQ(sim.now(), 1000);
}

TEST(Simulator, StepRunsBoundedEvents) {
  Simulator sim;
  int count = 0;
  for (int i = 0; i < 5; ++i) sim.schedule_at(i, [&] { ++count; });
  EXPECT_EQ(sim.step(2), 2u);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(sim.step(10), 3u);
  EXPECT_EQ(count, 5);
  EXPECT_EQ(sim.step(), 0u);
}

TEST(Simulator, EventsProcessedCounts) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.schedule_at(i, [] {});
  sim.run();
  EXPECT_EQ(sim.events_processed(), 7u);
}

TEST(Simulator, EventCanScheduleMoreEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) sim.schedule_in(1, recurse);
  };
  sim.schedule_in(0, recurse);
  sim.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(sim.now(), 99);
}

TEST(PeriodicProcess, TicksAtInterval) {
  Simulator sim;
  std::vector<TimeUs> ticks;
  PeriodicProcess proc(sim, 100, 50, [&](PeriodicProcess& p) {
    ticks.push_back(sim.now());
    if (p.ticks() == 4) p.stop();
  });
  sim.run();
  EXPECT_EQ(ticks, (std::vector<TimeUs>{100, 150, 200, 250}));
  EXPECT_FALSE(proc.running());
}

TEST(PeriodicProcess, StopFromOutside) {
  Simulator sim;
  int count = 0;
  PeriodicProcess proc(sim, 0, 10, [&](PeriodicProcess&) { ++count; });
  sim.schedule_at(35, [&] { proc.stop(); });
  sim.run();
  EXPECT_EQ(count, 4);  // t = 0, 10, 20, 30
}

TEST(PeriodicProcess, SetIntervalTakesEffect) {
  Simulator sim;
  std::vector<TimeUs> ticks;
  PeriodicProcess proc(sim, 0, 10, [&](PeriodicProcess& p) {
    ticks.push_back(sim.now());
    if (p.ticks() == 2) p.set_interval(30);
    if (p.ticks() == 4) p.stop();
  });
  sim.run();
  EXPECT_EQ(ticks, (std::vector<TimeUs>{0, 10, 40, 70}));
}

TEST(PeriodicProcess, DestructorCancels) {
  Simulator sim;
  int count = 0;
  {
    PeriodicProcess proc(sim, 0, 10, [&](PeriodicProcess&) { ++count; });
    sim.run_until(25);
  }
  sim.run();  // must not fire after destruction
  EXPECT_EQ(count, 3);
}

}  // namespace
}  // namespace livesim::sim
