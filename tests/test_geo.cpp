#include <gtest/gtest.h>

#include "livesim/geo/datacenters.h"
#include "livesim/geo/geo.h"

namespace livesim::geo {
namespace {

TEST(Haversine, ZeroForSamePoint) {
  const GeoPoint p{37.77, -122.42};
  EXPECT_NEAR(haversine_km(p, p), 0.0, 1e-9);
}

TEST(Haversine, KnownDistances) {
  const GeoPoint sf{37.77, -122.42}, nyc{40.71, -74.01};
  EXPECT_NEAR(haversine_km(sf, nyc), 4130.0, 60.0);
  const GeoPoint london{51.51, -0.13}, tokyo{35.68, 139.69};
  EXPECT_NEAR(haversine_km(london, tokyo), 9560.0, 120.0);
}

TEST(Haversine, Symmetric) {
  const GeoPoint a{10.0, 20.0}, b{-30.0, 140.0};
  EXPECT_DOUBLE_EQ(haversine_km(a, b), haversine_km(b, a));
}

TEST(LatencyModel, MeanGrowsWithDistance) {
  LatencyModel m;
  EXPECT_LT(m.mean_delay(100.0), m.mean_delay(1000.0));
  EXPECT_LT(m.mean_delay(1000.0), m.mean_delay(10000.0));
}

TEST(LatencyModel, ZeroDistanceIsBaseDelay) {
  LatencyModel m;
  EXPECT_EQ(m.mean_delay(0.0), m.params().base);
}

TEST(LatencyModel, SampleAtLeastBase) {
  LatencyModel m;
  Rng rng(5);
  for (int i = 0; i < 1000; ++i)
    EXPECT_GE(m.sample_delay(500.0, rng), m.params().base);
}

TEST(LatencyModel, SampleNearMeanOnAverage) {
  LatencyModel m;
  Rng rng(6);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i)
    sum += static_cast<double>(m.sample_delay(3000.0, rng));
  const double mean_sampled = sum / n;
  const double mean_model = static_cast<double>(m.mean_delay(3000.0));
  // Jitter is one-sided; the sample mean sits a bit above the model mean.
  EXPECT_GT(mean_sampled, mean_model);
  EXPECT_LT(mean_sampled, mean_model * 1.25);
}

TEST(Catalog, PaperFootprintCounts) {
  const auto c = DatacenterCatalog::paper_footprint();
  EXPECT_EQ(c.ingest_sites().size(), 8u);   // Wowza on 8 EC2 regions
  EXPECT_EQ(c.edge_sites().size(), 23u);    // Fastly's 2015 footprint
}

TEST(Catalog, SixOfEightIngestSitesColocated) {
  const auto c = DatacenterCatalog::paper_footprint();
  int colocated = 0, same_continent = 0;
  for (const auto* ingest : c.ingest_sites()) {
    const auto* edge = c.colocated_edge(ingest->id);
    if (edge != nullptr) {
      ++colocated;
      EXPECT_EQ(edge->city, ingest->city);
    }
    // Same-continent: any edge on the ingest's continent?
    for (const auto* e : c.edge_sites()) {
      if (e->continent == ingest->continent) {
        ++same_continent;
        break;
      }
    }
  }
  EXPECT_EQ(colocated, 6);        // the paper's "6 out of 8"
  EXPECT_EQ(same_continent, 7);   // "7 out of 8", Sao Paulo the exception
}

TEST(Catalog, SaoPauloHasNoColocatedEdge) {
  const auto c = DatacenterCatalog::paper_footprint();
  for (const auto* ingest : c.ingest_sites()) {
    if (ingest->city == "Sao Paulo") {
      EXPECT_EQ(c.colocated_edge(ingest->id), nullptr);
    }
  }
}

TEST(Catalog, NearestPicksLocalSite) {
  const auto c = DatacenterCatalog::paper_footprint();
  // Broadcaster in Santa Barbara -> San Jose ingest (the paper's own
  // controlled-experiment geometry).
  const auto& ingest = c.nearest({34.42, -119.70}, CdnRole::kIngest);
  EXPECT_EQ(ingest.city, "San Jose");
  // Viewer in Berlin -> Frankfurt edge via anycast.
  const auto& edge = c.nearest({52.52, 13.40}, CdnRole::kEdge);
  EXPECT_EQ(edge.city, "Frankfurt");
}

TEST(Catalog, NearestRespectsRole) {
  const auto c = DatacenterCatalog::paper_footprint();
  const auto& edge = c.nearest({40.71, -74.01}, CdnRole::kEdge);
  EXPECT_EQ(edge.role, CdnRole::kEdge);
  const auto& ingest = c.nearest({40.71, -74.01}, CdnRole::kIngest);
  EXPECT_EQ(ingest.role, CdnRole::kIngest);
}

// Regression: equidistant sites used to resolve to whatever the
// iteration order happened to be; the tie-break is now explicit —
// (distance, id) lexicographic, smallest id wins — and shared by
// nearest(), k_nearest(), and the session spill policy.
TEST(Catalog, NearestBreaksExactTiesBySmallestId) {
  DatacenterCatalog c;
  using enum Continent;
  // Two edge sites at the SAME coordinates: distances are identical bit
  // patterns, not merely close, so the comparison truly ties.
  const auto a = c.add_site("Twin A", kNorthAmerica, 40.0, -100.0,
                            CdnRole::kEdge);
  const auto b = c.add_site("Twin B", kNorthAmerica, 40.0, -100.0,
                            CdnRole::kEdge);
  ASSERT_LT(a.value, b.value);
  const GeoPoint viewer{41.0, -101.0};
  EXPECT_EQ(c.nearest(viewer, CdnRole::kEdge).id.value, a.value);
  // A viewer exactly on top of the twins ties at 0 km.
  EXPECT_EQ(c.nearest({40.0, -100.0}, CdnRole::kEdge).id.value, a.value);
}

TEST(Catalog, KNearestRanksByDistanceThenId) {
  DatacenterCatalog c;
  using enum Continent;
  const auto far = c.add_site("Far", kNorthAmerica, 45.0, -90.0,
                              CdnRole::kEdge);
  const auto twin_b = c.add_site("Twin B", kNorthAmerica, 40.0, -100.0,
                                 CdnRole::kEdge);
  const auto twin_a = c.add_site("Twin A", kNorthAmerica, 40.0, -100.0,
                                 CdnRole::kEdge);
  c.add_site("Ingest", kNorthAmerica, 40.0, -100.0, CdnRole::kIngest);
  const GeoPoint viewer{40.0, -100.0};

  // Equidistant twins: the smaller id ranks first even though it was
  // added later; the ingest site never appears for the edge role.
  const auto all = c.k_nearest(viewer, CdnRole::kEdge, 0);
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0]->id.value, twin_b.value);  // twin_b has the smaller id
  EXPECT_EQ(all[1]->id.value, twin_a.value);
  EXPECT_EQ(all[2]->id.value, far.value);

  // k truncates after ranking; k > size is the whole ranking.
  EXPECT_EQ(c.k_nearest(viewer, CdnRole::kEdge, 1).size(), 1u);
  EXPECT_EQ(c.k_nearest(viewer, CdnRole::kEdge, 99).size(), 3u);

  // Excluded sites are removed BEFORE truncation, so k live candidates
  // survive an exclusion of the nearest.
  const DatacenterId excl[] = {twin_b};
  const auto rest = c.k_nearest(viewer, CdnRole::kEdge, 2, excl);
  ASSERT_EQ(rest.size(), 2u);
  EXPECT_EQ(rest[0]->id.value, twin_a.value);
  EXPECT_EQ(rest[1]->id.value, far.value);
}

TEST(Catalog, KNearestMatchesNearestOnTheFootprint) {
  const auto c = DatacenterCatalog::paper_footprint();
  const GeoPoint probes[] = {{52.52, 13.40}, {34.42, -119.70},
                             {-33.87, 151.21}, {1.35, 103.82}};
  for (const auto& p : probes) {
    for (CdnRole role : {CdnRole::kEdge, CdnRole::kIngest}) {
      const auto ranked = c.k_nearest(p, role, 3);
      ASSERT_FALSE(ranked.empty());
      EXPECT_EQ(ranked[0]->id.value, c.nearest(p, role).id.value);
    }
  }
}

TEST(Catalog, GetRejectsBadId) {
  const auto c = DatacenterCatalog::paper_footprint();
  EXPECT_THROW(c.get(DatacenterId{9999}), std::out_of_range);
  EXPECT_THROW(c.get(DatacenterId{}), std::out_of_range);
}

TEST(Catalog, DistanceSymmetricAndZeroForColocated) {
  const auto c = DatacenterCatalog::paper_footprint();
  const auto ingests = c.ingest_sites();
  const auto edges = c.edge_sites();
  EXPECT_DOUBLE_EQ(c.distance_km(ingests[0]->id, edges[0]->id),
                   c.distance_km(edges[0]->id, ingests[0]->id));
  // Ashburn ingest and Ashburn edge are the same location.
  EXPECT_NEAR(c.distance_km(ingests[0]->id, edges[0]->id), 0.0, 1e-9);
}

TEST(Catalog, DistanceCacheMatchesDirectHaversine) {
  const auto c = DatacenterCatalog::paper_footprint();
  // The cache must hold the bit-exact doubles haversine_km produces for
  // every ordered pair -- equality, not tolerance: anycast tie-breaks
  // compare these values with ==.
  for (const auto& a : c.all())
    for (const auto& b : c.all())
      EXPECT_EQ(c.distance_km(a.id, b.id),
                haversine_km(a.location, b.location))
          << a.city << " -> " << b.city;
}

TEST(Catalog, DistanceCacheExtendsOnAddSite) {
  auto c = DatacenterCatalog::single_site();
  const DatacenterId added =
      c.add_site("Springfield", Continent::kNorthAmerica, 44.0, -93.0,
                 CdnRole::kEdge);
  for (const auto& other : c.all())
    EXPECT_EQ(c.distance_km(added, other.id),
              haversine_km(c.get(added).location, other.location));
}

TEST(Catalog, SiteKeyedNearestMatchesPointKeyed) {
  const auto c = DatacenterCatalog::paper_footprint();
  for (const auto& dc : c.all()) {
    for (CdnRole role : {CdnRole::kIngest, CdnRole::kEdge}) {
      EXPECT_EQ(c.nearest(dc.id, role).id.value,
                c.nearest(dc.location, role).id.value)
          << dc.city;
    }
  }
}

TEST(Catalog, SiteKeyedKNearestMatchesPointKeyed) {
  const auto c = DatacenterCatalog::paper_footprint();
  const std::vector<DatacenterId> exclude = {c.edge_sites()[0]->id};
  for (const auto& dc : c.all()) {
    const auto by_id = c.k_nearest(dc.id, CdnRole::kEdge, 5, exclude);
    const auto by_pt = c.k_nearest(dc.location, CdnRole::kEdge, 5, exclude);
    ASSERT_EQ(by_id.size(), by_pt.size()) << dc.city;
    for (std::size_t i = 0; i < by_id.size(); ++i)
      EXPECT_EQ(by_id[i]->id.value, by_pt[i]->id.value) << dc.city;
  }
}

TEST(UserGeoSampler, ProducesValidCoordinates) {
  UserGeoSampler s;
  Rng rng(7);
  int north_america = 0;
  for (int i = 0; i < 5000; ++i) {
    const GeoPoint p = s.sample(rng);
    ASSERT_GE(p.lat_deg, -85.0);
    ASSERT_LE(p.lat_deg, 85.0);
    ASSERT_GE(p.lon_deg, -180.0);
    ASSERT_LE(p.lon_deg, 180.0);
    if (p.lat_deg > 20 && p.lat_deg < 60 && p.lon_deg > -130 &&
        p.lon_deg < -60)
      ++north_america;
  }
  // The 2015 user base is US-heavy.
  EXPECT_GT(north_america, 1500);
  EXPECT_LT(north_america, 4000);
}

TEST(Catalog, SingleSiteForTests) {
  const auto c = DatacenterCatalog::single_site();
  EXPECT_EQ(c.ingest_sites().size(), 1u);
  EXPECT_EQ(c.edge_sites().size(), 1u);
  EXPECT_NE(c.colocated_edge(c.ingest_sites()[0]->id), nullptr);
}

}  // namespace
}  // namespace livesim::geo
