#include <gtest/gtest.h>

#include "livesim/geo/datacenters.h"
#include "livesim/geo/geo.h"

namespace livesim::geo {
namespace {

TEST(Haversine, ZeroForSamePoint) {
  const GeoPoint p{37.77, -122.42};
  EXPECT_NEAR(haversine_km(p, p), 0.0, 1e-9);
}

TEST(Haversine, KnownDistances) {
  const GeoPoint sf{37.77, -122.42}, nyc{40.71, -74.01};
  EXPECT_NEAR(haversine_km(sf, nyc), 4130.0, 60.0);
  const GeoPoint london{51.51, -0.13}, tokyo{35.68, 139.69};
  EXPECT_NEAR(haversine_km(london, tokyo), 9560.0, 120.0);
}

TEST(Haversine, Symmetric) {
  const GeoPoint a{10.0, 20.0}, b{-30.0, 140.0};
  EXPECT_DOUBLE_EQ(haversine_km(a, b), haversine_km(b, a));
}

TEST(LatencyModel, MeanGrowsWithDistance) {
  LatencyModel m;
  EXPECT_LT(m.mean_delay(100.0), m.mean_delay(1000.0));
  EXPECT_LT(m.mean_delay(1000.0), m.mean_delay(10000.0));
}

TEST(LatencyModel, ZeroDistanceIsBaseDelay) {
  LatencyModel m;
  EXPECT_EQ(m.mean_delay(0.0), m.params().base);
}

TEST(LatencyModel, SampleAtLeastBase) {
  LatencyModel m;
  Rng rng(5);
  for (int i = 0; i < 1000; ++i)
    EXPECT_GE(m.sample_delay(500.0, rng), m.params().base);
}

TEST(LatencyModel, SampleNearMeanOnAverage) {
  LatencyModel m;
  Rng rng(6);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i)
    sum += static_cast<double>(m.sample_delay(3000.0, rng));
  const double mean_sampled = sum / n;
  const double mean_model = static_cast<double>(m.mean_delay(3000.0));
  // Jitter is one-sided; the sample mean sits a bit above the model mean.
  EXPECT_GT(mean_sampled, mean_model);
  EXPECT_LT(mean_sampled, mean_model * 1.25);
}

TEST(Catalog, PaperFootprintCounts) {
  const auto c = DatacenterCatalog::paper_footprint();
  EXPECT_EQ(c.ingest_sites().size(), 8u);   // Wowza on 8 EC2 regions
  EXPECT_EQ(c.edge_sites().size(), 23u);    // Fastly's 2015 footprint
}

TEST(Catalog, SixOfEightIngestSitesColocated) {
  const auto c = DatacenterCatalog::paper_footprint();
  int colocated = 0, same_continent = 0;
  for (const auto* ingest : c.ingest_sites()) {
    const auto* edge = c.colocated_edge(ingest->id);
    if (edge != nullptr) {
      ++colocated;
      EXPECT_EQ(edge->city, ingest->city);
    }
    // Same-continent: any edge on the ingest's continent?
    for (const auto* e : c.edge_sites()) {
      if (e->continent == ingest->continent) {
        ++same_continent;
        break;
      }
    }
  }
  EXPECT_EQ(colocated, 6);        // the paper's "6 out of 8"
  EXPECT_EQ(same_continent, 7);   // "7 out of 8", Sao Paulo the exception
}

TEST(Catalog, SaoPauloHasNoColocatedEdge) {
  const auto c = DatacenterCatalog::paper_footprint();
  for (const auto* ingest : c.ingest_sites()) {
    if (ingest->city == "Sao Paulo") {
      EXPECT_EQ(c.colocated_edge(ingest->id), nullptr);
    }
  }
}

TEST(Catalog, NearestPicksLocalSite) {
  const auto c = DatacenterCatalog::paper_footprint();
  // Broadcaster in Santa Barbara -> San Jose ingest (the paper's own
  // controlled-experiment geometry).
  const auto& ingest = c.nearest({34.42, -119.70}, CdnRole::kIngest);
  EXPECT_EQ(ingest.city, "San Jose");
  // Viewer in Berlin -> Frankfurt edge via anycast.
  const auto& edge = c.nearest({52.52, 13.40}, CdnRole::kEdge);
  EXPECT_EQ(edge.city, "Frankfurt");
}

TEST(Catalog, NearestRespectsRole) {
  const auto c = DatacenterCatalog::paper_footprint();
  const auto& edge = c.nearest({40.71, -74.01}, CdnRole::kEdge);
  EXPECT_EQ(edge.role, CdnRole::kEdge);
  const auto& ingest = c.nearest({40.71, -74.01}, CdnRole::kIngest);
  EXPECT_EQ(ingest.role, CdnRole::kIngest);
}

TEST(Catalog, GetRejectsBadId) {
  const auto c = DatacenterCatalog::paper_footprint();
  EXPECT_THROW(c.get(DatacenterId{9999}), std::out_of_range);
  EXPECT_THROW(c.get(DatacenterId{}), std::out_of_range);
}

TEST(Catalog, DistanceSymmetricAndZeroForColocated) {
  const auto c = DatacenterCatalog::paper_footprint();
  const auto ingests = c.ingest_sites();
  const auto edges = c.edge_sites();
  EXPECT_DOUBLE_EQ(c.distance_km(ingests[0]->id, edges[0]->id),
                   c.distance_km(edges[0]->id, ingests[0]->id));
  // Ashburn ingest and Ashburn edge are the same location.
  EXPECT_NEAR(c.distance_km(ingests[0]->id, edges[0]->id), 0.0, 1e-9);
}

TEST(UserGeoSampler, ProducesValidCoordinates) {
  UserGeoSampler s;
  Rng rng(7);
  int north_america = 0;
  for (int i = 0; i < 5000; ++i) {
    const GeoPoint p = s.sample(rng);
    ASSERT_GE(p.lat_deg, -85.0);
    ASSERT_LE(p.lat_deg, 85.0);
    ASSERT_GE(p.lon_deg, -180.0);
    ASSERT_LE(p.lon_deg, 180.0);
    if (p.lat_deg > 20 && p.lat_deg < 60 && p.lon_deg > -130 &&
        p.lon_deg < -60)
      ++north_america;
  }
  // The 2015 user base is US-heavy.
  EXPECT_GT(north_america, 1500);
  EXPECT_LT(north_america, 4000);
}

TEST(Catalog, SingleSiteForTests) {
  const auto c = DatacenterCatalog::single_site();
  EXPECT_EQ(c.ingest_sites().size(), 1u);
  EXPECT_EQ(c.edge_sites().size(), 1u);
  EXPECT_NE(c.colocated_edge(c.ingest_sites()[0]->id), nullptr);
}

}  // namespace
}  // namespace livesim::geo
