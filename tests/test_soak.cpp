// Long-horizon soak tests: the simulator, CDN state machines, and playback
// accounting must stay consistent over many minutes of simulated time and
// sizable audiences (not just the short windows the unit tests use).
#include <gtest/gtest.h>

#include "livesim/core/service.h"

namespace livesim {
namespace {

TEST(Soak, TenMinuteBroadcastWithAudience) {
  sim::Simulator sim;
  const auto catalog = geo::DatacenterCatalog::paper_footprint();
  core::SessionConfig cfg;
  cfg.broadcast_len = 10 * time::kMinute;
  cfg.rtmp_viewers = 20;
  cfg.hls_viewers = 40;
  cfg.crawler_pollers = true;
  cfg.seed = 404;
  core::BroadcastSession session(sim, catalog, cfg);
  session.start();
  sim.run();
  session.finalize();

  // 15000 frames ingested, every viewer played nearly everything.
  EXPECT_EQ(session.ingest().frames_ingested(), 15000u);
  std::uint64_t total_played = 0;
  for (const auto& v : session.viewer_results()) {
    EXPECT_LT(v.stall_ratio, 0.2);
    total_played += v.units_played;
  }
  EXPECT_GT(total_played, 20u * 14000u);  // RTMP cohort alone

  // Delay accounting stayed sane over the whole horizon.
  EXPECT_NEAR(session.hls_breakdown().chunking_s.mean(), 3.0, 0.5);
  EXPECT_LT(session.rtmp_breakdown().total_s(), 4.0);
  EXPECT_GT(sim.events_processed(), 100000u);
  EXPECT_EQ(sim.pending(), 0u);  // everything drained, nothing leaked
}

TEST(Soak, ServiceSurvivesManyOverlappingBroadcasts) {
  sim::Simulator sim;
  const auto catalog = geo::DatacenterCatalog::paper_footprint();
  core::LivestreamService::Config cfg;
  cfg.seed = 405;
  core::LivestreamService service(sim, catalog, cfg);

  Rng rng(406);
  geo::UserGeoSampler geo_sampler;
  std::vector<core::LivestreamService::ViewerHandle> handles;
  for (int b = 0; b < 25; ++b) {
    sim.schedule_at(static_cast<TimeUs>(b) * 20 * time::kSecond, [&] {
      const auto id = service.start_broadcast(
          geo_sampler.sample(rng),
          time::from_seconds(60.0 + rng.uniform() * 240.0));
      for (int v = 0; v < 8; ++v) {
        if (auto h = service.join(id, geo_sampler.sample(rng)))
          handles.push_back(*h);
      }
    });
  }
  sim.run();
  EXPECT_EQ(handles.size(), 25u * 8u);
  EXPECT_EQ(service.global_list().active_count(), 0u);  // all ended
  EXPECT_EQ(sim.pending(), 0u);

  // Every broadcast is queryable and consistent.
  for (std::uint64_t i = 0; i < 25; ++i) {
    const auto info = service.info(BroadcastId{i});
    ASSERT_TRUE(info.has_value());
    EXPECT_FALSE(info->live);
    EXPECT_EQ(info->rtmp_viewers + info->hls_viewers, 8u);
  }
}

}  // namespace
}  // namespace livesim
