#include <gtest/gtest.h>

#include "livesim/media/encoder.h"
#include "livesim/overlay/multicast.h"
#include "livesim/stats/accumulator.h"

namespace livesim::overlay {
namespace {

class OverlayFixture : public ::testing::Test {
 protected:
  OverlayFixture()
      : catalog_(geo::DatacenterCatalog::paper_footprint()),
        root_(catalog_.nearest({37.77, -122.42}, geo::CdnRole::kIngest).id),
        hierarchy_(catalog_, root_) {}

  MulticastTree make_tree() {
    MulticastTree::Params p;
    p.interdc_link.bandwidth_bps = 1e9;
    p.viewer_last_mile = net::LastMileProfiles::wifi();
    return MulticastTree(sim_, catalog_, hierarchy_, p, Rng(3));
  }

  sim::Simulator sim_;
  geo::DatacenterCatalog catalog_;
  DatacenterId root_;
  ForwardingHierarchy hierarchy_;
};

TEST_F(OverlayFixture, HierarchyIsAcyclicAndRooted) {
  for (const auto* edge : catalog_.edge_sites()) {
    const auto path = hierarchy_.path_to_root(edge->id);
    EXPECT_LE(path.size(), 10u);
    EXPECT_EQ(path.empty() ? edge->id : path.front(), edge->id);
    // Every step moves strictly closer to the root.
    const auto& root_dc = catalog_.get(root_);
    double prev_km = geo::haversine_km(catalog_.get(edge->id).location,
                                       root_dc.location);
    for (std::size_t i = 1; i < path.size(); ++i) {
      const double km =
          geo::haversine_km(catalog_.get(path[i]).location, root_dc.location);
      EXPECT_LT(km, prev_km);
      prev_km = km;
    }
    EXPECT_EQ(hierarchy_.depth(edge->id), path.size());
  }
  EXPECT_EQ(hierarchy_.depth(root_), 0u);
}

TEST_F(OverlayFixture, SingleViewerReceivesAllFrames) {
  auto tree = make_tree();
  int received = 0;
  tree.join({52.52, 13.40},  // Berlin
            [&](const media::VideoFrame&, TimeUs) { ++received; });
  sim_.run();  // graft completes

  media::FrameSource src({}, Rng(4));
  for (int i = 0; i < 100; ++i) tree.push_frame(src.next());
  sim_.run();
  EXPECT_EQ(received, 100);
}

TEST_F(OverlayFixture, FramesBeforeGraftAreMissed) {
  auto tree = make_tree();
  int received = 0;
  tree.join({52.52, 13.40},
            [&](const media::VideoFrame&, TimeUs) { ++received; });
  // Push immediately, before the graft completes.
  media::FrameSource src({}, Rng(5));
  tree.push_frame(src.next());
  sim_.run();
  EXPECT_EQ(received, 0);
}

TEST_F(OverlayFixture, ForwardingStateScalesWithSitesNotViewers) {
  auto tree = make_tree();
  Rng rng(6);
  geo::UserGeoSampler sampler;
  for (int i = 0; i < 2000; ++i)
    tree.join(sampler.sample(rng), [](const media::VideoFrame&, TimeUs) {});
  sim_.run();
  EXPECT_EQ(tree.viewers(), 2000u);
  // On-tree nodes bounded by the 23 edges + root, regardless of audience.
  EXPECT_LE(tree.on_tree_nodes(), 24u);
  EXPECT_GE(tree.on_tree_nodes(), 5u);
}

TEST_F(OverlayFixture, TreeForwardOpsBeatPerViewerPush) {
  auto tree = make_tree();
  Rng rng(7);
  geo::UserGeoSampler sampler;
  const int kViewers = 500;
  for (int i = 0; i < kViewers; ++i)
    tree.join(sampler.sample(rng), [](const media::VideoFrame&, TimeUs) {});
  sim_.run();

  media::FrameSource src({}, Rng(8));
  const int kFrames = 50;
  for (int i = 0; i < kFrames; ++i) tree.push_frame(src.next());
  sim_.run();

  // Per frame: kViewers viewer-deliveries at the leaves are unavoidable,
  // but inter-DC forwards are bounded by the number of on-tree sites.
  const auto ops = tree.forward_operations();
  EXPECT_LT(ops, static_cast<std::uint64_t>(kFrames) * (kViewers + 30));
  // Unlike unicast RTMP, the *root* only sends one copy per child site:
  // verified indirectly by ops being close to the floor.
  EXPECT_GE(ops, static_cast<std::uint64_t>(kFrames) * kViewers);
}

TEST_F(OverlayFixture, LeavePrunesBranch) {
  auto tree = make_tree();
  const auto id =
      tree.join({-33.87, 151.21},  // Sydney: a lonely branch
                [](const media::VideoFrame&, TimeUs) {});
  sim_.run();
  const auto nodes_with = tree.on_tree_nodes();
  tree.leave(id);
  EXPECT_LT(tree.on_tree_nodes(), nodes_with);
  EXPECT_EQ(tree.viewers(), 0u);

  // Frames after leave reach nobody (and don't crash).
  media::FrameSource src({}, Rng(9));
  tree.push_frame(src.next());
  sim_.run();
}

TEST_F(OverlayFixture, LeaveKeepsSharedPath) {
  auto tree = make_tree();
  int received = 0;
  const auto a = tree.join({48.86, 2.35},  // Paris
                           [](const media::VideoFrame&, TimeUs) {});
  tree.join({48.86, 2.35},  // second Paris viewer shares the branch
            [&](const media::VideoFrame&, TimeUs) { ++received; });
  sim_.run();
  tree.leave(a);

  media::FrameSource src({}, Rng(10));
  for (int i = 0; i < 10; ++i) tree.push_frame(src.next());
  sim_.run();
  EXPECT_EQ(received, 10);  // survivor still served
}

TEST_F(OverlayFixture, DoubleLeaveIsIdempotent) {
  auto tree = make_tree();
  const auto id = tree.join({51.51, -0.13},
                            [](const media::VideoFrame&, TimeUs) {});
  sim_.run();
  tree.leave(id);
  tree.leave(id);
  tree.leave(9999);  // unknown id: no-op
  EXPECT_EQ(tree.viewers(), 0u);
}

TEST_F(OverlayFixture, JoinLatencyGrowsWithDistanceFromTree) {
  // First, an empty tree: a far viewer pays the full path graft.
  auto tree = make_tree();
  tree.join({-33.87, 151.21}, [](const media::VideoFrame&, TimeUs) {});
  sim_.run();
  const double first = tree.mean_join_latency_s();
  EXPECT_GT(first, 0.02);  // several wide-area RTTs

  // A second viewer in the same city grafts instantly at the leaf.
  auto tree2 = make_tree();
  tree2.join({-33.87, 151.21}, [](const media::VideoFrame&, TimeUs) {});
  sim_.run();
  tree2.join({-33.85, 151.20}, [](const media::VideoFrame&, TimeUs) {});
  sim_.run();
  // Mean over {full graft, leaf-only join} < full graft alone.
  EXPECT_LT(tree2.mean_join_latency_s(), first * 1.05);
}

TEST_F(OverlayFixture, EndToEndDelayComparableToRtmp) {
  auto tree = make_tree();
  stats::Accumulator delay;
  tree.join({40.71, -74.01},  // NYC
            [&](const media::VideoFrame& f, TimeUs at) {
              delay.add(time::to_seconds(at - f.capture_ts));
            });
  sim_.run();

  media::FrameSource src({}, Rng(11));
  for (int i = 0; i < 250; ++i) {
    const auto f = src.next();
    sim_.schedule_at(f.capture_ts, [&tree, f] { tree.push_frame(f); });
  }
  sim_.run();
  ASSERT_GT(delay.count(), 200u);
  // Tree forwarding adds hop delays but no chunking/polling: sub-second.
  EXPECT_LT(delay.mean(), 1.0);
  EXPECT_GT(delay.mean(), 0.02);
}

TEST_F(OverlayFixture, FailedLeafRepairsAndViewersResume) {
  auto tree = make_tree();
  int received = 0;
  tree.join({48.86, 2.35},  // Paris viewer -> Paris leaf
            [&](const media::VideoFrame&, TimeUs) { ++received; });
  sim_.run();

  media::FrameSource src({}, Rng(20));
  for (int i = 0; i < 10; ++i) tree.push_frame(src.next());
  sim_.run();
  ASSERT_EQ(received, 10);

  // The Paris edge crashes; detection takes 2 s.
  const auto& paris = catalog_.nearest({48.86, 2.35}, geo::CdnRole::kEdge);
  tree.fail_site(paris.id, 2 * time::kSecond);

  // Frames during the outage are lost to this viewer.
  for (int i = 0; i < 5; ++i) tree.push_frame(src.next());
  sim_.run_until(sim_.now() + time::kSecond);
  EXPECT_EQ(received, 10);

  // After detection + repair, frames flow again via the live ancestor.
  sim_.run();
  for (int i = 0; i < 10; ++i) tree.push_frame(src.next());
  sim_.run();
  EXPECT_EQ(received, 20);
  EXPECT_EQ(tree.repairs_performed(), 1u);
}

TEST_F(OverlayFixture, FailedTransitNodeReroutesSubtree) {
  auto tree = make_tree();
  int received = 0;
  // A viewer whose path to the San Jose root transits other edges.
  tree.join({52.52, 13.40},  // Berlin
            [&](const media::VideoFrame&, TimeUs) { ++received; });
  sim_.run();

  const auto& berlin_leaf =
      catalog_.nearest({52.52, 13.40}, geo::CdnRole::kEdge);
  const auto path = hierarchy_.path_to_root(berlin_leaf.id);
  ASSERT_GE(path.size(), 2u) << "need a transit hop for this test";
  const DatacenterId transit = path[1];

  tree.fail_site(transit, time::kSecond);
  sim_.run();  // detection + repair drain

  media::FrameSource src({}, Rng(21));
  for (int i = 0; i < 10; ++i) tree.push_frame(src.next());
  sim_.run();
  EXPECT_EQ(received, 10);  // subtree re-grafted around the dead transit
}

TEST_F(OverlayFixture, JoinAvoidsFailedLeaf) {
  auto tree = make_tree();
  const auto& paris = catalog_.nearest({48.86, 2.35}, geo::CdnRole::kEdge);
  // Pre-fail the Paris edge (it must be on the tree to be failable).
  tree.join({48.86, 2.35}, [](const media::VideoFrame&, TimeUs) {});
  sim_.run();
  tree.fail_site(paris.id, 0);
  sim_.run();

  int received = 0;
  tree.join({48.86, 2.35},
            [&](const media::VideoFrame&, TimeUs) { ++received; });
  sim_.run();
  media::FrameSource src({}, Rng(22));
  for (int i = 0; i < 5; ++i) tree.push_frame(src.next());
  sim_.run();
  EXPECT_EQ(received, 5);  // served from a live ancestor instead
}

TEST_F(OverlayFixture, FailUnknownOrRootIsNoop) {
  auto tree = make_tree();
  tree.fail_site(root_, 0);                      // root never "fails" here
  tree.fail_site(DatacenterId{999999}, 0);       // unknown id
  const auto& edge = *catalog_.edge_sites()[0];
  tree.fail_site(edge.id, 0);                    // not on the tree yet
  sim_.run();
  EXPECT_EQ(tree.repairs_performed(), 0u);
}

}  // namespace
}  // namespace livesim::overlay
