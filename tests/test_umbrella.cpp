// The umbrella header must compile standalone and expose the full API.
#include "livesim/livesim.h"

#include <gtest/gtest.h>

namespace livesim {
namespace {

TEST(Umbrella, EverythingIsReachable) {
  sim::Simulator sim;
  const auto catalog = geo::DatacenterCatalog::paper_footprint();
  core::SessionConfig cfg;
  cfg.broadcast_len = 5 * time::kSecond;
  cfg.rtmp_viewers = 1;
  cfg.hls_viewers = 1;
  core::BroadcastSession session(sim, catalog, cfg);
  session.start();
  sim.run();
  session.finalize();
  EXPECT_GT(session.ingest().frames_ingested(), 0u);
}

}  // namespace
}  // namespace livesim
