// Control-plane battery: the Timeseries telemetry ring, the steering
// state machine (triggers, hysteresis, cooldown, revival), scrape ->
// publish timing on the engine, the control-off bit-parity contract,
// steering determinism across thread counts, the flapping-edge
// regression, and the attach/detach conservation + failure-streak
// satellites on the cdn servers.
#include <algorithm>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "livesim/analysis/control_steering.h"
#include "livesim/analysis/resilience.h"
#include "livesim/cdn/servers.h"
#include "livesim/control/health_monitor.h"
#include "livesim/core/broadcast_session.h"
#include "livesim/fault/scenario.h"
#include "livesim/geo/datacenters.h"
#include "livesim/stats/timeseries.h"

namespace livesim {
namespace {

using control::ControlPlane;
using control::ControlPlaneConfig;
using control::EdgeHealth;
using control::EdgeSample;
using control::SteeringPolicy;

// --- stats::Timeseries: the telemetry ring -----------------------------

TEST(Timeseries, RingOverwritesOldestKeepsLifetimeCount) {
  stats::Timeseries ts(4);
  for (int i = 0; i < 6; ++i)
    ts.push(i * time::kSecond, static_cast<double>(i));
  EXPECT_EQ(ts.size(), 4u);
  EXPECT_EQ(ts.capacity(), 4u);
  EXPECT_EQ(ts.pushes(), 6u);
  // Survivors are 2, 3, 4, 5 (oldest two overwritten).
  EXPECT_DOUBLE_EQ(ts.newest().value, 5.0);
  EXPECT_DOUBLE_EQ(ts.newest(3).value, 2.0);
  EXPECT_DOUBLE_EQ(ts.mean(), (2.0 + 3.0 + 4.0 + 5.0) / 4.0);
  EXPECT_DOUBLE_EQ(ts.max(), 5.0);
}

TEST(Timeseries, LeastSquaresSlopeAndProjection) {
  stats::Timeseries ts(8);
  // Perfectly linear: value = 2 * seconds.
  for (int i = 0; i < 4; ++i)
    ts.push(i * time::kSecond, 2.0 * i);
  EXPECT_NEAR(ts.slope_per_s(), 2.0, 1e-9);
  // Projection anchors at the newest value (6.0) + slope * horizon.
  EXPECT_NEAR(ts.project(2 * time::kSecond), 10.0, 1e-9);
}

TEST(Timeseries, DegenerateRingsAreFlat) {
  stats::Timeseries empty(4);
  EXPECT_TRUE(empty.empty());
  EXPECT_DOUBLE_EQ(empty.slope_per_s(), 0.0);
  EXPECT_DOUBLE_EQ(empty.project(time::kSecond), 0.0);

  stats::Timeseries one(4);
  one.push(time::kSecond, 7.0);
  EXPECT_DOUBLE_EQ(one.slope_per_s(), 0.0);
  EXPECT_DOUBLE_EQ(one.project(5 * time::kSecond), 7.0);

  // Zero capacity is clamped to 1, not UB.
  stats::Timeseries zero(0);
  zero.push(0, 1.0);
  zero.push(1, 2.0);
  EXPECT_EQ(zero.capacity(), 1u);
  EXPECT_DOUBLE_EQ(zero.last(), 2.0);
}

// --- SteeringPolicy: the three-state machine ---------------------------

EdgeSample sample(std::uint64_t site, std::uint64_t attached,
                  std::uint64_t capacity, std::uint32_t streak = 0,
                  bool down = false) {
  EdgeSample s;
  s.site = site;
  s.attached = attached;
  s.capacity = capacity;
  s.failure_streak = streak;
  s.down = down;
  return s;
}

TEST(SteeringPolicy, DownSampleKillsEdge) {
  SteeringPolicy p{ControlPlaneConfig{}};
  auto t = p.observe(sample(7, 0, 0, 0, /*down=*/true), 0.0, time::kSecond);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->from, EdgeHealth::kHealthy);
  EXPECT_EQ(t->to, EdgeHealth::kDead);
  EXPECT_EQ(t->site, 7u);
  EXPECT_EQ(p.health(7), EdgeHealth::kDead);
  EXPECT_EQ(p.deaths(), 1u);
  EXPECT_EQ(p.override_sites(), std::vector<std::uint64_t>{7});
}

TEST(SteeringPolicy, DrainsAtLoadFraction) {
  SteeringPolicy p{ControlPlaneConfig{}};  // drain_load_fraction = 0.9
  EXPECT_FALSE(p.observe(sample(1, 8, 10), 8.0, 0).has_value());
  auto t = p.observe(sample(1, 9, 10), 9.0, time::kSecond);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->to, EdgeHealth::kDraining);
  EXPECT_EQ(p.drains(), 1u);
}

TEST(SteeringPolicy, DrainsOnTrendProjection) {
  // Low load now, but the ledger's projection crosses capacity within
  // the horizon: drain before the edge actually fills.
  SteeringPolicy p{ControlPlaneConfig{}};
  EXPECT_FALSE(p.observe(sample(1, 2, 10), 9.5, 0).has_value());
  auto t = p.observe(sample(1, 3, 10), 10.5, time::kSecond);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->to, EdgeHealth::kDraining);
}

TEST(SteeringPolicy, DrainsOnFailureStreakEvenUnbounded) {
  SteeringPolicy p{ControlPlaneConfig{}};  // drain_failure_streak = 3
  EXPECT_FALSE(p.observe(sample(1, 0, 0, 2), 0.0, 0).has_value());
  auto t = p.observe(sample(1, 0, 0, 3), 0.0, time::kSecond);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->to, EdgeHealth::kDraining);
}

TEST(SteeringPolicy, UndrainNeedsHysteresisAndCooldown) {
  ControlPlaneConfig cfg;  // undrain at <= 0.7 * cap, cooldown 2 s
  SteeringPolicy p{cfg};
  ASSERT_TRUE(p.observe(sample(1, 9, 10), 9.0, 0).has_value());  // drain @ 0

  // Load above the undrain fraction: pinned draining.
  EXPECT_FALSE(p.observe(sample(1, 8, 10), 8.0, time::kSecond).has_value());
  // Load OK but the cooldown has not elapsed: still draining.
  EXPECT_FALSE(p.observe(sample(1, 5, 10), 5.0, time::kSecond).has_value());
  // Load OK, streak dirty: still draining even past the cooldown.
  EXPECT_FALSE(
      p.observe(sample(1, 5, 10, 1), 5.0, 3 * time::kSecond).has_value());
  // Load OK + clean streak + cooled: recovers.
  auto t = p.observe(sample(1, 5, 10), 5.0, 3 * time::kSecond);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->to, EdgeHealth::kHealthy);
  EXPECT_EQ(p.undrains(), 1u);
  EXPECT_TRUE(p.override_sites().empty());
}

TEST(SteeringPolicy, DeadRevivesThroughDrainingNotHealthy) {
  SteeringPolicy p{ControlPlaneConfig{}};
  ASSERT_TRUE(p.observe(sample(1, 0, 0, 0, true), 0.0, 0).has_value());
  // The probe answers again: the box re-enters via draining — a revived
  // edge must EARN healthy through the same hysteresis as any drain.
  auto t = p.observe(sample(1, 0, 0), 0.0, time::kSecond);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->from, EdgeHealth::kDead);
  EXPECT_EQ(t->to, EdgeHealth::kDraining);
  EXPECT_EQ(p.revivals(), 1u);
  // Cooldown anchors at the revival: no instant recovery.
  EXPECT_FALSE(p.observe(sample(1, 0, 0), 0.0,
                         time::kSecond + time::kMillisecond).has_value());
  auto h = p.observe(sample(1, 0, 0), 0.0, 4 * time::kSecond);
  ASSERT_TRUE(h.has_value());
  EXPECT_EQ(h->to, EdgeHealth::kHealthy);
}

TEST(SteeringPolicy, SaturationCountsUnhealthyAndFullEdges) {
  SteeringPolicy p{ControlPlaneConfig{}};
  p.observe(sample(1, 1, 10), 1.0, 0);             // healthy, not full
  p.observe(sample(2, 0, 0, 0, true), 0.0, 0);     // dead
  EXPECT_DOUBLE_EQ(p.saturation(), 0.5);
  p.observe(sample(3, 10, 10), 10.0, 0);           // full (and drains)
  EXPECT_DOUBLE_EQ(p.saturation(), 2.0 / 3.0);
}

// --- HealthMonitor: ledgers + projection -------------------------------

TEST(HealthMonitor, LedgersTrackLoadAndProject) {
  control::HealthMonitor m(16);
  for (int i = 0; i < 4; ++i) {
    EdgeSample s = sample(5, static_cast<std::uint64_t>(3 * i), 100);
    s.cohort = 7;
    s.fetch_failures = static_cast<std::uint64_t>(i);
    m.ingest(s, i * time::kSecond);
  }
  EXPECT_EQ(m.edges(), 1u);
  EXPECT_EQ(m.samples(), 4u);
  const auto* led = m.ledger(5);
  ASSERT_NE(led, nullptr);
  EXPECT_EQ(led->load.size(), 4u);
  EXPECT_EQ(led->last_cohort, 7u);
  EXPECT_EQ(led->last_fetch_failures, 3u);
  // Load grows 3/s from 9: projection 5 s out = 24.
  EXPECT_NEAR(m.projected_load(5, 5 * time::kSecond), 24.0, 1e-9);
  EXPECT_DOUBLE_EQ(m.projected_load(99, time::kSecond), 0.0);
}

// --- ControlPlane: scrape cadence + publication latency ----------------

TEST(ControlPlane, PublicationLagsDecisionBySteerLatency) {
  sim::Simulator sim;
  ControlPlaneConfig cfg;
  cfg.enabled = true;  // (the plane itself never checks; the session does)
  ControlPlane cp(sim, cfg, Rng(1));

  bool down = true;
  cp.start([&down] {
    std::vector<EdgeSample> out;
    out.push_back(sample(3, 0, 0, 0, down));
    return out;
  });

  // First scrape at 500 ms decides the death; the override becomes
  // routing-visible only at 600 ms (steer_latency later).
  bool avoided_before_publish = true;
  bool avoided_after_publish = false;
  EdgeHealth published_after = EdgeHealth::kHealthy;
  sim.schedule_in(550 * time::kMillisecond, [&] {
    avoided_before_publish = cp.avoid(3);
  });
  sim.schedule_in(650 * time::kMillisecond, [&] {
    avoided_after_publish = cp.avoid(3);
    published_after = cp.published_health(3);
  });
  sim.schedule_in(1'200 * time::kMillisecond, [&] { cp.stop(); });
  sim.run();

  EXPECT_FALSE(avoided_before_publish);
  EXPECT_TRUE(avoided_after_publish);
  EXPECT_EQ(published_after, EdgeHealth::kDead);
  EXPECT_EQ(cp.scrapes(), 2u);
  EXPECT_EQ(cp.publications(), 1u);
  EXPECT_EQ(cp.policy().deaths(), 1u);
}

TEST(ControlPlane, SteerCallbackFiresOnPublication) {
  sim::Simulator sim;
  ControlPlaneConfig cfg;
  ControlPlane cp(sim, cfg, Rng(1));

  std::vector<std::pair<TimeUs, EdgeHealth>> steered;
  cp.set_steer_fn([&](const SteeringPolicy::Transition& t) {
    steered.emplace_back(sim.now(), t.to);
  });
  cp.start([] {
    std::vector<EdgeSample> out;
    out.push_back(sample(4, 0, 0, 0, /*down=*/true));
    return out;
  });
  sim.schedule_in(time::kSecond, [&] { cp.stop(); });
  sim.run();

  ASSERT_EQ(steered.size(), 1u);
  EXPECT_EQ(steered[0].first,
            500 * time::kMillisecond + cfg.steer_latency);
  EXPECT_EQ(steered[0].second, EdgeHealth::kDead);
}

TEST(ControlPlane, OverlayAssistArmsOnceAndStaysArmed) {
  sim::Simulator sim;
  ControlPlaneConfig cfg;
  cfg.overlay_assist = true;
  cfg.saturation_fraction = 0.5;
  ControlPlane cp(sim, cfg, Rng(1));

  // One of two edges dark at the first scrape, both fine afterwards:
  // the assist arms at the first tick and never disarms (re-warming a
  // P2P mesh per oscillation would be worse than the drain).
  int tick = 0;
  cp.start([&tick] {
    ++tick;
    std::vector<EdgeSample> out;
    out.push_back(sample(1, 0, 0));
    out.push_back(sample(2, 0, 0, 0, /*down=*/tick == 1));
    return out;
  });
  sim.schedule_in(3 * time::kSecond, [&] { cp.stop(); });
  sim.run();

  EXPECT_TRUE(cp.overlay_assist_active());
  EXPECT_EQ(cp.assist_armed_at(), 500 * time::kMillisecond);
  EXPECT_GE(cp.policy().revivals(), 1u);
}

// --- cdn satellites: conservation + failure streaks --------------------

TEST(EdgeServer, DetachUnderflowIsCountedNotMasked) {
  sim::Simulator sim;
  cdn::EdgeServer edge(sim, DatacenterId{1},
                       [](std::function<void(cdn::EdgeServer::FetchResult)>) {},
                       cdn::ResourceModel{});
  edge.attach();
  edge.detach();
  EXPECT_EQ(edge.attached(), 0u);
  EXPECT_EQ(edge.detach_underflows(), 0u);
  // The double-detach: load still clamps at zero (the ledger must never
  // wrap), but the bug is recorded instead of silently masked.
  edge.detach();
  EXPECT_EQ(edge.attached(), 0u);
  EXPECT_EQ(edge.detach_underflows(), 1u);
  edge.attach();
  EXPECT_EQ(edge.attached(), 1u);
  EXPECT_EQ(edge.peak_attached(), 1u);
}

TEST(EdgeServer, FetchFailureStreakResetsOnSuccess) {
  sim::Simulator sim;
  int calls = 0;
  cdn::EdgeServer edge(
      sim, DatacenterId{1},
      [&calls](std::function<void(cdn::EdgeServer::FetchResult)> done) {
        ++calls;
        if (calls <= 2) {
          done(std::nullopt);  // transient origin failures
          return;
        }
        media::Chunk c;
        c.seq = 0;
        c.size_bytes = 1000;
        done(std::vector<media::Chunk>{c});
      },
      cdn::ResourceModel{});
  edge.set_retry(10 * time::kMillisecond, 10);

  bool served = false;
  edge.on_expire_notice(0);
  edge.on_poll(-1, [&served](TimeUs, std::vector<media::Chunk> cs) {
    served = !cs.empty();
  });
  sim.run();

  EXPECT_TRUE(served);
  EXPECT_EQ(edge.fetch_failures(), 2u);   // cumulative never resets
  EXPECT_EQ(edge.fetch_failure_streak(), 0u);  // streak cleared by success
}

TEST(EdgeServer, FetchFailureStreakPersistsWhileFailing) {
  sim::Simulator sim;
  cdn::EdgeServer edge(
      sim, DatacenterId{1},
      [](std::function<void(cdn::EdgeServer::FetchResult)> done) {
        done(std::nullopt);
      },
      cdn::ResourceModel{});
  edge.set_retry(10 * time::kMillisecond, 4);

  edge.on_expire_notice(0);
  edge.on_poll(-1, [](TimeUs, std::vector<media::Chunk>) {});
  sim.run();

  EXPECT_EQ(edge.fetch_failures(), 4u);
  EXPECT_EQ(edge.fetch_failure_streak(), 4u);
}

TEST(IngestServer, FrameDropStreakResetsOnIngest) {
  sim::Simulator sim;
  cdn::IngestServer ingest(sim, DatacenterId{0}, media::Chunker::Params{},
                           cdn::ResourceModel{});
  media::VideoFrame f;
  f.size_bytes = 2000;

  ingest.set_down(true);
  for (int i = 0; i < 3; ++i) ingest.on_frame(f);
  EXPECT_EQ(ingest.frame_drop_streak(), 3u);
  EXPECT_EQ(ingest.frames_dropped(), 3u);

  ingest.set_down(false);
  ingest.on_frame(f);
  EXPECT_EQ(ingest.frame_drop_streak(), 0u);  // the box answers again
  EXPECT_EQ(ingest.frames_dropped(), 3u);     // history is not rewritten
}

// --- session-level contracts -------------------------------------------

core::SessionConfig blackout_session(const geo::DatacenterCatalog& catalog,
                                     std::uint32_t viewers, TimeUs at,
                                     DurationUs duration) {
  core::SessionConfig cfg;
  cfg.broadcast_len = 60 * time::kSecond;
  cfg.rtmp_viewers = 0;
  cfg.hls_viewers = viewers;
  cfg.global_viewers = false;  // co-located: one herd on one edge
  cfg.seed = 7;
  fault::RegionalBlackoutSpec spec;
  spec.at = at;
  spec.duration = duration;
  spec.center = cfg.broadcaster_location;
  spec.radius_km = 0.0;
  fault::FaultScenario scenario;
  scenario.add(spec);
  cfg.faults = scenario.expand(catalog, cfg.seed);
  return cfg;
}

std::uint64_t dark_site(const geo::DatacenterCatalog& catalog,
                        const geo::GeoPoint& center) {
  fault::RegionalBlackoutSpec spec;
  spec.center = center;
  spec.radius_km = 0.0;
  return fault::FaultScenario::blackout_sites(catalog, spec).at(0).value;
}

TEST(SessionControl, DisabledBuildsNothingAndConservesAttachments) {
  const auto catalog = geo::DatacenterCatalog::paper_footprint();
  sim::Simulator sim;
  auto cfg = blackout_session(catalog, 4, 20 * time::kSecond,
                              10 * time::kSecond);
  ASSERT_FALSE(cfg.control.enabled);  // the default IS off
  core::BroadcastSession session(sim, catalog, cfg);
  session.start();
  sim.run();
  session.finalize();

  EXPECT_EQ(session.control_plane(), nullptr);
  EXPECT_EQ(session.proactive_migrations(), 0u);
  EXPECT_EQ(session.overlay_assists(), 0u);
  EXPECT_GT(session.edge_failovers(), 0u);  // the blackout did happen
  // Attach/detach conservation across join -> death -> failover: no
  // detach ever fired against an empty ledger.
  for (const auto& [site, edge] : session.edges())
    EXPECT_EQ(edge->detach_underflows(), 0u) << "site " << site;
}

TEST(SessionControl, ProactiveMigrationBeatsClientTimeout) {
  const auto catalog = geo::DatacenterCatalog::paper_footprint();
  sim::Simulator sim;
  auto cfg = blackout_session(catalog, 6, 20 * time::kSecond,
                              15 * time::kSecond);
  cfg.control.enabled = true;
  core::BroadcastSession session(sim, catalog, cfg);
  session.start();
  sim.run();
  session.finalize();

  const auto* cp = session.control_plane();
  ASSERT_NE(cp, nullptr);
  EXPECT_GE(cp->scrapes(), 1u);
  EXPECT_EQ(cp->policy().deaths(), 1u);
  // Scrape (<= 500 ms) + steer latency (100 ms) beat the 2 s client
  // detect window: every viewer moved proactively, none was left for
  // the reactive sweep, none orphaned.
  EXPECT_EQ(session.proactive_migrations(), 6u);
  EXPECT_EQ(session.edge_failovers(), 6u);
  EXPECT_EQ(session.orphaned_viewers(), 0u);
  for (const auto& [site, edge] : session.edges())
    EXPECT_EQ(edge->detach_underflows(), 0u) << "site " << site;
}

TEST(SessionControl, FlappingEdgeDoesNotRecaptureWhileDraining) {
  // The edge dies at 20 s and is back at 23 s — well before the
  // broadcast ends. The policy revives it dead -> draining, so the
  // published override must keep steering joins away until the
  // cooldown-gated undrain, not the instant the probe answers.
  const auto catalog = geo::DatacenterCatalog::paper_footprint();
  const std::uint64_t dead = dark_site(
      catalog, core::SessionConfig{}.broadcaster_location);

  sim::Simulator sim;
  auto cfg = blackout_session(catalog, 4, 20 * time::kSecond,
                              3 * time::kSecond);
  cfg.control.enabled = true;
  core::BroadcastSession session(sim, catalog, cfg);
  session.start();

  // A refugee rejoining mid-flap: at 24.5 s the box is up again but the
  // revival is still draining (published ~23.6 s; undrain publishes
  // ~25.6 s at the earliest: revival + 2 s cooldown + steer latency).
  std::size_t late = 0;
  sim.schedule_in(24'500 * time::kMillisecond, [&] {
    late = session.add_viewer(cfg.broadcaster_location, /*hls=*/true);
  });
  sim.run();
  session.finalize();

  const auto results = session.viewer_results();
  ASSERT_GT(results.size(), late);
  EXPECT_NE(results[late].attachment.value, dead)
      << "draining edge recaptured a refugee";
  EXPECT_FALSE(results[late].orphaned);

  const auto* cp = session.control_plane();
  ASSERT_NE(cp, nullptr);
  EXPECT_EQ(cp->policy().deaths(), 1u);
  EXPECT_EQ(cp->policy().revivals(), 1u);
  // The flap fully settles: the revived edge earns healthy again after
  // the cooldown, and the override clears.
  EXPECT_GE(cp->policy().undrains(), 1u);
  EXPECT_FALSE(cp->avoid(dead));
}

TEST(SessionControl, OverlayAssistParksCapacityOrphans) {
  const auto catalog = geo::DatacenterCatalog::paper_footprint();
  sim::Simulator sim;
  auto cfg = blackout_session(catalog, 6, 20 * time::kSecond,
                              15 * time::kSecond);
  cfg.edge_capacity = 1;     // failover admits one viewer per edge
  cfg.failover_spill_k = 2;  // two candidate rings
  cfg.control.enabled = true;
  cfg.control.overlay_assist = true;
  core::BroadcastSession session(sim, catalog, cfg);
  session.start();
  sim.run();
  session.finalize();

  // Six viewers flee the dead edge; two rings x capacity 1 admit two;
  // the armed mesh absorbs the other four — zero frozen players.
  EXPECT_EQ(session.edge_failovers(), 2u);
  EXPECT_EQ(session.overlay_assists(), 4u);
  EXPECT_EQ(session.orphaned_viewers(), 0u);
  ASSERT_NE(session.assist_mesh(), nullptr);
  EXPECT_EQ(session.assist_mesh()->peers(), 4u);
  EXPECT_GT(session.assist_mesh()->server_egress_chunks(), 0u);
  const auto* cp = session.control_plane();
  ASSERT_NE(cp, nullptr);
  EXPECT_TRUE(cp->overlay_assist_active());
}

// --- experiment-level contracts ----------------------------------------

std::vector<analysis::BroadcastTrace> small_traces() {
  analysis::TraceSetConfig cfg;
  cfg.broadcasts = 12;
  cfg.broadcast_len = time::kMinute;
  cfg.threads = 1;
  return analysis::generate_traces(cfg);
}

analysis::ControlSteeringConfig steering_config(bool enabled) {
  analysis::ControlSteeringConfig cfg;
  cfg.spill.base.seed = 42;
  cfg.spill.base.threads = 1;
  cfg.spill.base.radius_km = 1500.0;
  cfg.spill.edge_capacity = 25;
  cfg.control.enabled = enabled;
  return cfg;
}

void expect_same_samples(const stats::Sampler& a, const stats::Sampler& b) {
  ASSERT_EQ(a.size(), b.size());
  const auto& av = a.samples();
  const auto& bv = b.samples();
  for (std::size_t i = 0; i < av.size(); ++i) EXPECT_EQ(av[i], bv[i]) << i;
}

TEST(ControlSteeringExperiment, DisabledIsCapacitySpillBitForBit) {
  const auto traces = small_traces();
  const auto catalog = geo::DatacenterCatalog::paper_footprint();
  const auto cfg = steering_config(/*enabled=*/false);

  const auto spill =
      analysis::capacity_spill_experiment(traces, catalog, cfg.spill);
  const auto steer =
      analysis::control_steering_experiment(traces, catalog, cfg);

  expect_same_samples(spill.stall_ratio, steer.spill.stall_ratio);
  expect_same_samples(spill.failover_latency_s,
                      steer.spill.failover_latency_s);
  EXPECT_EQ(spill.counters.viewers, steer.spill.counters.viewers);
  EXPECT_EQ(spill.counters.affected, steer.spill.counters.affected);
  EXPECT_EQ(spill.counters.failovers, steer.spill.counters.failovers);
  EXPECT_EQ(spill.counters.orphaned, steer.spill.counters.orphaned);
  EXPECT_EQ(spill.edge_spills, steer.spill.edge_spills);
  EXPECT_EQ(spill.capacity_orphans, steer.spill.capacity_orphans);
  EXPECT_EQ(spill.edge_peak_loads, steer.spill.edge_peak_loads);

  // Disabled: both detection models collapse to the reactive one.
  EXPECT_FALSE(steer.proactive);
  EXPECT_EQ(steer.steer_published_at, TimeUs{0});
  EXPECT_EQ(steer.steered_early, 0u);
  expect_same_samples(steer.reactive_detect_s, steer.proactive_detect_s);
}

TEST(ControlSteeringExperiment, ProactiveDominatesPointwise) {
  const auto traces = small_traces();
  const auto catalog = geo::DatacenterCatalog::paper_footprint();
  const auto r = analysis::control_steering_experiment(
      traces, catalog, steering_config(/*enabled=*/true));

  ASSERT_TRUE(r.proactive);
  ASSERT_GT(r.spill.counters.affected, 0u);
  const auto& re = r.reactive_detect_s.samples();
  const auto& pr = r.proactive_detect_s.samples();
  ASSERT_EQ(re.size(), pr.size());
  for (std::size_t i = 0; i < re.size(); ++i)
    EXPECT_LE(pr[i], re[i]) << "viewer " << i;
  // The default cadences (scrape 500 ms + steer 100 ms vs a 2 s detect
  // window) beat the client timeout for every affected viewer.
  EXPECT_EQ(r.steered_early, re.size());
}

TEST(ControlSteeringExperiment, SteeringDeterministicAcrossThreads) {
  const auto traces = small_traces();
  const auto catalog = geo::DatacenterCatalog::paper_footprint();
  auto cfg = steering_config(/*enabled=*/true);

  cfg.spill.base.threads = 1;
  const auto r1 = analysis::control_steering_experiment(traces, catalog, cfg);
  for (unsigned threads : {2u, 8u}) {
    cfg.spill.base.threads = threads;
    const auto r =
        analysis::control_steering_experiment(traces, catalog, cfg);
    expect_same_samples(r1.spill.stall_ratio, r.spill.stall_ratio);
    expect_same_samples(r1.spill.failover_latency_s,
                        r.spill.failover_latency_s);
    expect_same_samples(r1.reactive_detect_s, r.reactive_detect_s);
    expect_same_samples(r1.proactive_detect_s, r.proactive_detect_s);
    EXPECT_EQ(r1.steer_published_at, r.steer_published_at);
    EXPECT_EQ(r1.steered_early, r.steered_early);
    EXPECT_EQ(r1.spill.edge_peak_loads, r.spill.edge_peak_loads);
  }
}

}  // namespace
}  // namespace livesim
