// The shipped sample dataset (data/sample_traces.txt) must stay loadable
// and usable by every trace-driven experiment.
#include <gtest/gtest.h>

#include "livesim/analysis/trace_io.h"

namespace livesim::analysis {
namespace {

TEST(SampleData, ShippedTracesLoadAndDrive) {
  // ctest runs from build/tests; direct runs from the repo root.
  auto traces = load_traces(std::string("data/sample_traces.txt"));
  if (!traces)
    traces = load_traces(std::string("../../data/sample_traces.txt"));
  if (!traces) GTEST_SKIP() << "sample data not found";
  ASSERT_EQ(traces->size(), 12u);
  for (const auto& t : *traces) {
    EXPECT_EQ(t.frame_arrivals.size(), 1500u);
    EXPECT_GE(t.chunks.size(), 15u);
  }
  const auto polling = polling_experiment(*traces, 2 * time::kSecond,
                                          300 * time::kMillisecond, 1);
  EXPECT_NEAR(polling.per_broadcast_mean_s.mean(), 1.0, 0.4);
  const auto buffering =
      hls_buffering_experiment(*traces, 6 * time::kSecond,
                               time::from_seconds(2.8), 1);
  EXPECT_EQ(buffering.stall_ratio.size(), 12u);
}

}  // namespace
}  // namespace livesim::analysis
