#include <gtest/gtest.h>

#include "livesim/protocol/hls.h"
#include "livesim/protocol/rtmp.h"
#include "livesim/protocol/wire.h"

namespace livesim::protocol {
namespace {

TEST(Wire, ScalarRoundTrip) {
  ByteWriter w;
  w.u8(0xAB);
  w.u16(0x1234);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFULL);
  w.i64(-42);
  ByteReader r(w.data());
  EXPECT_EQ(r.u8().value(), 0xAB);
  EXPECT_EQ(r.u16().value(), 0x1234);
  EXPECT_EQ(r.u32().value(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64().value(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.i64().value(), -42);
  EXPECT_TRUE(r.at_end());
}

TEST(Wire, BytesAndStringRoundTrip) {
  ByteWriter w;
  w.str("hello");
  w.bytes(std::vector<std::uint8_t>{1, 2, 3});
  w.str("");
  ByteReader r(w.data());
  EXPECT_EQ(r.str().value(), "hello");
  EXPECT_EQ(r.bytes().value(), (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_EQ(r.str().value(), "");
  EXPECT_TRUE(r.at_end());
}

TEST(Wire, TruncationReturnsNullopt) {
  ByteWriter w;
  w.u32(5);  // claims 5 bytes follow
  w.u8('x');
  ByteReader r(w.data());
  EXPECT_FALSE(r.bytes().has_value());
  ByteReader r2(std::span<const std::uint8_t>{});
  EXPECT_FALSE(r2.u8().has_value());
  EXPECT_FALSE(r2.u64().has_value());
}

TEST(Wire, BigEndianLayout) {
  ByteWriter w;
  w.u32(0x01020304);
  EXPECT_EQ(w.data()[0], 0x01);
  EXPECT_EQ(w.data()[3], 0x04);
}

TEST(Rtmp, ConnectRoundTripAndPlaintextToken) {
  RtmpConnect c{"secret-token-123", "stream-key"};
  const auto body = encode_connect(c);
  const auto back = decode_connect(body);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->broadcast_token, "secret-token-123");
  EXPECT_EQ(back->stream_key, "stream-key");
  // The vulnerability: the token is readable in the raw bytes.
  const std::string raw(body.begin(), body.end());
  EXPECT_NE(raw.find("secret-token-123"), std::string::npos);
}

TEST(Rtmp, VideoFrameRoundTrip) {
  RtmpVideoFrame f;
  f.frame_seq = 77;
  f.capture_ts_us = 123456789;
  f.flags = 1;
  f.payload = {9, 8, 7, 6};
  f.signature = {1, 2};
  const auto body = encode_video(f);
  const auto back = decode_video(body);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->frame_seq, 77u);
  EXPECT_EQ(back->capture_ts_us, 123456789);
  EXPECT_TRUE(back->keyframe());
  EXPECT_EQ(back->payload, f.payload);
  EXPECT_EQ(back->signature, f.signature);
}

TEST(Rtmp, MessageFramingRoundTrip) {
  RtmpMessage msg{RtmpMessageType::kVideoFrame, {1, 2, 3}};
  const auto wire = encode_message(msg);
  const auto back = decode_message(wire);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->type, RtmpMessageType::kVideoFrame);
  EXPECT_EQ(back->body, msg.body);
}

TEST(Rtmp, DecodeGarbageFails) {
  const std::vector<std::uint8_t> garbage{0xFF, 0x00};
  EXPECT_FALSE(decode_message(garbage).has_value());
  EXPECT_FALSE(decode_video(garbage).has_value());
  EXPECT_FALSE(decode_connect(garbage).has_value());
}

TEST(Rtmp, MediaFrameToWireRoundTrip) {
  media::VideoFrame f;
  f.seq = 5;
  f.capture_ts = 200000;
  f.keyframe = true;
  f.payload = {10, 20, 30};
  f.size_bytes = 3;
  const auto wire = frame_to_wire(f);
  const auto back = wire_to_frame(wire);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->seq, 5u);
  EXPECT_EQ(back->capture_ts, 200000);
  EXPECT_TRUE(back->keyframe);
  EXPECT_EQ(back->payload, f.payload);
  EXPECT_EQ(back->size_bytes, 3u);
}

media::ChunkList sample_list() {
  media::ChunkList list;
  list.version = 42;
  list.target_duration = 3 * time::kSecond;
  for (std::uint64_t i = 0; i < 3; ++i) {
    media::Chunk c;
    c.seq = 10 + i;
    c.first_capture_ts = static_cast<TimeUs>(i) * 3 * time::kSecond;
    c.completed_ts = c.first_capture_ts + 3 * time::kSecond;
    c.duration = 3 * time::kSecond;
    c.first_frame_seq = i * 75;
    c.frame_count = 75;
    c.size_bytes = 150000 + i;
    list.chunks.push_back(c);
  }
  return list;
}

TEST(Hls, PlaylistRoundTrip) {
  const auto list = sample_list();
  const std::string text = render_playlist(list, "chunk_");
  const auto back = parse_playlist(text);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->version, 42u);
  EXPECT_EQ(back->target_duration, 3 * time::kSecond);
  ASSERT_EQ(back->chunks.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(back->chunks[i].seq, list.chunks[i].seq);
    EXPECT_EQ(back->chunks[i].first_capture_ts, list.chunks[i].first_capture_ts);
    EXPECT_EQ(back->chunks[i].completed_ts, list.chunks[i].completed_ts);
    EXPECT_EQ(back->chunks[i].frame_count, list.chunks[i].frame_count);
    EXPECT_EQ(back->chunks[i].size_bytes, list.chunks[i].size_bytes);
    EXPECT_EQ(back->chunks[i].duration, list.chunks[i].duration);
  }
  EXPECT_EQ(back->latest_seq(), 12);
}

TEST(Hls, PlaylistLooksLikeM3u8) {
  const std::string text = render_playlist(sample_list(), "c_");
  EXPECT_EQ(text.rfind("#EXTM3U", 0), 0u);
  EXPECT_NE(text.find("#EXT-X-TARGETDURATION:3"), std::string::npos);
  EXPECT_NE(text.find("#EXT-X-MEDIA-SEQUENCE:10"), std::string::npos);
  EXPECT_NE(text.find("#EXTINF:3.000,"), std::string::npos);
  EXPECT_NE(text.find("c_10.ts"), std::string::npos);
}

TEST(Hls, EmptyPlaylistRoundTrip) {
  media::ChunkList list;
  list.target_duration = 3 * time::kSecond;
  const auto back = parse_playlist(render_playlist(list, "c_"));
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->chunks.empty());
  EXPECT_EQ(back->latest_seq(), -1);
}

TEST(Hls, ParseRejectsGarbage) {
  EXPECT_FALSE(parse_playlist("").has_value());
  EXPECT_FALSE(parse_playlist("not a playlist").has_value());
  EXPECT_FALSE(parse_playlist("#EXTM3U\nchunk.ts\n").has_value());
}

}  // namespace
}  // namespace livesim::protocol
