#include <gtest/gtest.h>

#include "livesim/cdn/frontend.h"
#include "livesim/protocol/assembler.h"
#include "livesim/media/encoder.h"
#include "livesim/security/attack.h"

namespace livesim::cdn {
namespace {

using protocol::RtmpMessage;
using protocol::RtmpMessageType;
using Verdict = RtmpFrontend::Verdict;

security::Digest secret() {
  return security::Sha256::hash(std::string("server-secret"));
}

std::vector<std::uint8_t> connect_wire(const std::string& token) {
  RtmpMessage msg{RtmpMessageType::kConnect,
                  protocol::encode_connect({token, "key"})};
  return protocol::encode_message(msg);
}

std::vector<std::uint8_t> eos_wire() {
  return protocol::encode_message(RtmpMessage{RtmpMessageType::kEndOfStream, {}});
}

media::VideoFrame sample_frame(std::uint64_t seq = 0) {
  media::VideoFrame f;
  f.seq = seq;
  f.capture_ts = static_cast<TimeUs>(seq) * 40000;
  f.keyframe = seq % 25 == 0;
  f.payload = {1, 2, 3, 4};
  f.size_bytes = 4;
  return f;
}

TEST(TokenAuthority, IssueValidateRoundTrip) {
  TokenAuthority auth(secret());
  const auto token = auth.issue(42);
  EXPECT_EQ(token.size(), 26u);  // 13-byte opaque capability, hex
  EXPECT_TRUE(auth.validate(42, token));
  EXPECT_FALSE(auth.validate(43, token));       // wrong broadcast
  EXPECT_FALSE(auth.validate(42, token + "a")); // wrong length
  auto corrupted = token;
  corrupted[0] = corrupted[0] == 'a' ? 'b' : 'a';
  EXPECT_FALSE(auth.validate(42, corrupted));
}

TEST(TokenAuthority, TokensDifferPerBroadcast) {
  TokenAuthority auth(secret());
  EXPECT_NE(auth.issue(1), auth.issue(2));
  TokenAuthority other(security::Sha256::hash(std::string("other")));
  EXPECT_NE(auth.issue(1), other.issue(1));
}

TEST(RtmpFrontend, HappyPath) {
  TokenAuthority auth(secret());
  int sunk = 0;
  RtmpFrontend fe(auth, 7, [&](const media::VideoFrame&) { ++sunk; });
  EXPECT_EQ(fe.consume(connect_wire(auth.issue(7))), Verdict::kAcknowledged);
  EXPECT_EQ(fe.state(), RtmpFrontend::State::kStreaming);
  for (std::uint64_t i = 0; i < 10; ++i)
    EXPECT_EQ(fe.consume(protocol::frame_to_wire(sample_frame(i))),
              Verdict::kAccepted);
  EXPECT_EQ(fe.consume(eos_wire()), Verdict::kEndOfStream);
  EXPECT_EQ(fe.state(), RtmpFrontend::State::kClosed);
  EXPECT_EQ(sunk, 10);
  EXPECT_EQ(fe.frames_accepted(), 10u);
}

TEST(RtmpFrontend, WrongTokenRejected) {
  TokenAuthority auth(secret());
  RtmpFrontend fe(auth, 7, nullptr);
  EXPECT_EQ(fe.consume(connect_wire("deadbeef")), Verdict::kRejected);
  EXPECT_EQ(fe.state(), RtmpFrontend::State::kClosed);
  // Closed connections accept nothing.
  EXPECT_EQ(fe.consume(connect_wire(auth.issue(7))), Verdict::kRejected);
}

TEST(RtmpFrontend, TokenForAnotherBroadcastRejected) {
  TokenAuthority auth(secret());
  RtmpFrontend fe(auth, 7, nullptr);
  EXPECT_EQ(fe.consume(connect_wire(auth.issue(8))), Verdict::kRejected);
}

TEST(RtmpFrontend, FramesBeforeConnectRejected) {
  TokenAuthority auth(secret());
  RtmpFrontend fe(auth, 7, nullptr);
  EXPECT_EQ(fe.consume(protocol::frame_to_wire(sample_frame())),
            Verdict::kRejected);
}

TEST(RtmpFrontend, GarbageClosesConnection) {
  TokenAuthority auth(secret());
  RtmpFrontend fe(auth, 7, nullptr);
  const std::vector<std::uint8_t> garbage{0xFF, 0x01, 0x02};
  EXPECT_EQ(fe.consume(garbage), Verdict::kRejected);
  EXPECT_EQ(fe.state(), RtmpFrontend::State::kClosed);
}

TEST(RtmpFrontend, DoubleConnectRejected) {
  TokenAuthority auth(secret());
  RtmpFrontend fe(auth, 7, nullptr);
  ASSERT_EQ(fe.consume(connect_wire(auth.issue(7))), Verdict::kAcknowledged);
  EXPECT_EQ(fe.consume(connect_wire(auth.issue(7))), Verdict::kRejected);
}

// --- the §7 hijack, server-side view ---

TEST(RtmpFrontend, SniffedTokenLetsAttackerPublish) {
  TokenAuthority auth(secret());
  const std::string token = auth.issue(7);

  // The victim connects through the attacker's WiFi...
  security::TamperAttacker attacker;
  attacker.intercept(connect_wire(token));
  ASSERT_EQ(attacker.stats().tokens_sniffed, 1u);

  // ...and the attacker can now open its OWN session with the sniffed
  // token: the front-end has no way to tell (no channel binding).
  RtmpFrontend hijacked(auth, 7, nullptr);
  EXPECT_EQ(hijacked.consume(connect_wire(token)), Verdict::kAcknowledged);
  EXPECT_EQ(hijacked.consume(protocol::frame_to_wire(sample_frame())),
            Verdict::kAccepted);
}

TEST(RtmpFrontend, DefenseKillsTamperedStream) {
  TokenAuthority auth(secret());
  const auto seed = security::Sha256::hash(std::string("device"));
  security::StreamSigner signer(seed, 16, 5);
  security::TamperAttacker attacker;

  RtmpFrontend fe(auth, 7, nullptr, signer.root(), 5);
  ASSERT_EQ(fe.consume(connect_wire(auth.issue(7))), Verdict::kAcknowledged);

  media::FrameSource src({}, Rng(1));
  bool killed = false;
  for (int i = 0; i < 10 && !killed; ++i) {
    auto f = src.next();
    f.payload.assign(32, static_cast<std::uint8_t>(i + 1));
    signer.process(f);
    const auto wire = attacker.intercept(protocol::frame_to_wire(f));
    const auto verdict = fe.consume(wire);
    if (verdict == Verdict::kTampered) killed = true;
  }
  EXPECT_TRUE(killed);
  EXPECT_EQ(fe.state(), RtmpFrontend::State::kClosed);
}

TEST(RtmpFrontend, DefensePassesCleanStream) {
  TokenAuthority auth(secret());
  const auto seed = security::Sha256::hash(std::string("device"));
  security::StreamSigner signer(seed, 16, 5);

  RtmpFrontend fe(auth, 7, nullptr, signer.root(), 5);
  ASSERT_EQ(fe.consume(connect_wire(auth.issue(7))), Verdict::kAcknowledged);
  media::FrameSource src({}, Rng(2));
  for (int i = 0; i < 20; ++i) {
    auto f = src.next();
    f.payload.assign(32, static_cast<std::uint8_t>(i));
    signer.process(f);
    ASSERT_EQ(fe.consume(protocol::frame_to_wire(f)), Verdict::kAccepted);
  }
  EXPECT_EQ(fe.frames_accepted(), 20u);
}

TEST(RtmpFrontend, ConsumesSegmentedByteStreamViaAssembler) {
  // The full receive path: TCP fragments -> assembler -> front-end.
  TokenAuthority auth(secret());
  int sunk = 0;
  RtmpFrontend fe(auth, 9, [&](const media::VideoFrame&) { ++sunk; });

  std::vector<std::uint8_t> stream = connect_wire(auth.issue(9));
  for (std::uint64_t i = 0; i < 30; ++i) {
    const auto wire = protocol::frame_to_wire(sample_frame(i));
    stream.insert(stream.end(), wire.begin(), wire.end());
  }
  const auto eos = eos_wire();
  stream.insert(stream.end(), eos.begin(), eos.end());

  protocol::MessageAssembler assembler;
  Rng rng(55);
  std::size_t pos = 0;
  bool ended = false;
  while (pos < stream.size()) {
    const auto take = static_cast<std::size_t>(std::min<std::int64_t>(
        rng.uniform_int(1, 200),
        static_cast<std::int64_t>(stream.size() - pos)));
    for (auto& msg : assembler.feed(std::span<const std::uint8_t>(
             stream.data() + pos, take))) {
      const auto verdict = fe.consume(protocol::encode_message(msg));
      if (verdict == RtmpFrontend::Verdict::kEndOfStream) ended = true;
      ASSERT_NE(verdict, RtmpFrontend::Verdict::kRejected);
    }
    pos += take;
  }
  EXPECT_TRUE(ended);
  EXPECT_EQ(sunk, 30);
  EXPECT_FALSE(assembler.corrupted());
}

}  // namespace
}  // namespace livesim::cdn
