#include <gtest/gtest.h>

#include "livesim/crawler/crawler.h"

namespace livesim::crawler {
namespace {

TEST(GlobalList, TracksActiveBroadcasts) {
  GlobalList list;
  list.broadcast_started(BroadcastId{1});
  list.broadcast_started(BroadcastId{2});
  EXPECT_EQ(list.active_count(), 2u);
  list.broadcast_ended(BroadcastId{1});
  EXPECT_EQ(list.active_count(), 1u);
  list.broadcast_ended(BroadcastId{99});  // unknown: no-op
  EXPECT_EQ(list.active_count(), 1u);
}

TEST(GlobalList, SampleReturnsAllWhenFew) {
  GlobalList list;
  for (std::uint64_t i = 0; i < 10; ++i) list.broadcast_started(BroadcastId{i});
  Rng rng(1);
  const auto s = list.sample(50, rng);
  EXPECT_EQ(s.size(), 10u);
}

TEST(GlobalList, SampleIsUniqueAndBounded) {
  GlobalList list;
  for (std::uint64_t i = 0; i < 500; ++i) list.broadcast_started(BroadcastId{i});
  Rng rng(2);
  const auto s = list.sample(50, rng);
  EXPECT_EQ(s.size(), 50u);
  std::unordered_set<std::uint64_t> seen;
  for (auto id : s) EXPECT_TRUE(seen.insert(id.value).second);
}

TEST(GlobalList, SampleCoversUniformly) {
  GlobalList list;
  for (std::uint64_t i = 0; i < 100; ++i) list.broadcast_started(BroadcastId{i});
  Rng rng(3);
  std::vector<int> hits(100, 0);
  for (int round = 0; round < 2000; ++round)
    for (auto id : list.sample(50, rng)) ++hits[id.value];
  // Each broadcast should appear ~1000 times (50% of rounds).
  for (int h : hits) EXPECT_NEAR(h, 1000, 150);
}

TEST(ListCrawler, StaggeredAccountsRefreshFaster) {
  sim::Simulator sim;
  GlobalList list;
  for (std::uint64_t i = 0; i < 10; ++i) list.broadcast_started(BroadcastId{i});
  ListCrawler::Params p;
  p.accounts = 20;
  ListCrawler crawler(sim, list, p, Rng(4));
  EXPECT_EQ(crawler.effective_refresh(), 250 * time::kMillisecond);
  crawler.start();
  sim.run_until(10 * time::kSecond);
  crawler.stop();
  sim.run();
  // 20 accounts x every 5 s over 10 s = ~40 refreshes.
  EXPECT_NEAR(static_cast<double>(crawler.refreshes()), 40.0, 3.0);
  for (std::uint64_t i = 0; i < 10; ++i)
    EXPECT_TRUE(crawler.has_seen(BroadcastId{i}));
}

TEST(Coverage, PaperRefreshCapturesEverything) {
  CoverageParams p;
  p.arrivals_per_s = 2.0;
  p.mean_duration_s = 150.0;
  p.accounts = 20;  // 0.25 s effective refresh, the paper's configuration
  p.horizon = 10 * time::kMinute;
  const auto r = run_coverage_experiment(p);
  EXPECT_GT(r.total_broadcasts, 800u);
  EXPECT_GT(r.coverage, 0.995);  // "exhaustively captures all broadcasts"
  EXPECT_LT(r.mean_detection_latency_s, 60.0);
}

TEST(Coverage, SlowRefreshMissesShortBroadcasts) {
  CoverageParams fast, slow;
  fast.arrivals_per_s = slow.arrivals_per_s = 5.0;
  fast.mean_duration_s = slow.mean_duration_s = 30.0;  // short streams
  fast.accounts = 20;
  slow.accounts = 1;  // one account = 5 s refresh and 50-item samples only
  fast.horizon = slow.horizon = 10 * time::kMinute;
  const auto rf = run_coverage_experiment(fast);
  const auto rs = run_coverage_experiment(slow);
  EXPECT_GT(rf.coverage, rs.coverage);
  EXPECT_GT(rf.coverage, 0.98);
  EXPECT_GT(rs.mean_detection_latency_s, rf.mean_detection_latency_s);
}

TEST(Coverage, HigherVolumeNeedsFasterRefresh) {
  // With 50-item samples, a large active set dilutes each refresh; at a
  // fixed refresh rate coverage degrades as volume grows.
  CoverageParams low, high;
  low.arrivals_per_s = 1.0;
  high.arrivals_per_s = 20.0;
  low.mean_duration_s = high.mean_duration_s = 60.0;
  low.accounts = high.accounts = 2;
  low.horizon = high.horizon = 8 * time::kMinute;
  const auto rl = run_coverage_experiment(low);
  const auto rh = run_coverage_experiment(high);
  EXPECT_GT(rh.peak_active, rl.peak_active);
  EXPECT_LT(rh.coverage, rl.coverage);
}

TEST(Coverage, Deterministic) {
  CoverageParams p;
  p.horizon = 3 * time::kMinute;
  const auto a = run_coverage_experiment(p);
  const auto b = run_coverage_experiment(p);
  EXPECT_EQ(a.total_broadcasts, b.total_broadcasts);
  EXPECT_EQ(a.captured, b.captured);
}

}  // namespace
}  // namespace livesim::crawler
