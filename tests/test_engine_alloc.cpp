// Pins the engine's "allocation-free hot path" contract with a global
// operator-new hook: once the arena and heap are warm, scheduling and
// running events whose captures fit the EventFn inline budget must perform
// ZERO heap allocations, and PeriodicProcess steady-state ticking must
// re-arm in place without touching the allocator.
//
// This lives in its own test binary because replacing global operator new
// is a whole-program decision; the main livesim_tests binary stays stock.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include "livesim/sim/simulator.h"

namespace {

std::atomic<std::uint64_t> g_allocations{0};

}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace livesim::sim {
namespace {

std::uint64_t allocation_count() {
  return g_allocations.load(std::memory_order_relaxed);
}

TEST(EngineAllocations, WarmSchedulingOfSmallCapturesIsAllocationFree) {
  Simulator sim;
  std::uint64_t sink = 0;
  // Warm-up: grow the slot arena, the heap vector, and the position array
  // past the sizes the measured phase will need.
  constexpr int kWarm = 4096;
  constexpr int kMeasured = 1024;
  for (int i = 0; i < kWarm; ++i)
    sim.schedule_at((i * 7) % 50, [&sink] { ++sink; });
  sim.run();

  // Measured phase: a capture well under the inline budget (one pointer
  // plus two 8-byte values = 24 bytes).
  const std::uint64_t before = allocation_count();
  std::uint64_t a = 1, b = 2;
  for (int i = 0; i < kMeasured; ++i)
    sim.schedule_at(sim.now() + (i * 13) % 50,
                    [&sink, a, b] { sink += a + b; });
  const std::uint64_t after_schedule = allocation_count();
  sim.run();
  const std::uint64_t after_run = allocation_count();

  EXPECT_EQ(after_schedule - before, 0u)
      << "scheduling a <=64-byte capture allocated";
  EXPECT_EQ(after_run - after_schedule, 0u) << "running events allocated";
  EXPECT_EQ(sink, static_cast<std::uint64_t>(kWarm) + 3u * kMeasured);
}

TEST(EngineAllocations, CancelIsAllocationFree) {
  Simulator sim;
  constexpr int kWarm = 4096;
  std::vector<EventHandle> handles;
  handles.reserve(kWarm);
  std::uint64_t sink = 0;
  for (int i = 0; i < kWarm; ++i)
    sim.schedule_at((i * 7) % 50, [&sink] { ++sink; });
  sim.run();

  for (int i = 0; i < kWarm; ++i)
    handles.push_back(
        sim.schedule_at(sim.now() + (i * 7) % 50, [&sink] { ++sink; }));
  const std::uint64_t before = allocation_count();
  for (const EventHandle& h : handles) EXPECT_TRUE(sim.cancel(h));
  EXPECT_EQ(allocation_count() - before, 0u) << "cancel allocated";
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(EngineAllocations, OversizedCaptureAllocatesExactlyOncePerSchedule) {
  Simulator sim;
  std::uint64_t sink = 0;
  sim.schedule_at(1, [&sink] { ++sink; });
  sim.run();  // warm the arena and heap

  std::array<char, 100> big{};  // over the 64-byte inline budget
  big[0] = 1;
  const std::uint64_t before = allocation_count();
  sim.schedule_at(sim.now() + 1,
                  [&sink, big] { sink += static_cast<unsigned char>(big[0]); });
  EXPECT_EQ(allocation_count() - before, 1u)
      << "an oversized capture should cost exactly one boxed cell";
  sim.run();
  EXPECT_EQ(sink, 2u);
}

TEST(EngineAllocations, PeriodicSteadyStateTickingIsAllocationFree) {
  Simulator sim;
  std::uint64_t ticks_seen = 0;
  PeriodicProcess proc(sim, 0, 10, [&](PeriodicProcess&) { ++ticks_seen; });
  sim.run_until(50);  // construction + first few ticks may allocate
  const std::uint64_t before = allocation_count();
  sim.run_until(10050);  // 1000 more re-arm-in-place ticks
  EXPECT_EQ(allocation_count() - before, 0u)
      << "steady-state periodic ticking allocated";
  proc.stop();
  EXPECT_EQ(ticks_seen, 1006u);
}

}  // namespace
}  // namespace livesim::sim
