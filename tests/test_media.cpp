#include <gtest/gtest.h>

#include "livesim/media/chunker.h"
#include "livesim/media/encoder.h"

namespace livesim::media {
namespace {

FrameSource::Params default_params() { return {}; }

TEST(FrameSource, SequentialTimestamps) {
  FrameSource src(default_params(), Rng(1));
  VideoFrame prev = src.next();
  for (int i = 1; i < 100; ++i) {
    const VideoFrame f = src.next();
    EXPECT_EQ(f.seq, prev.seq + 1);
    EXPECT_EQ(f.capture_ts - prev.capture_ts, f.duration);
    prev = f;
  }
}

TEST(FrameSource, KeyframeCadence) {
  auto p = default_params();
  p.gop_frames = 25;
  FrameSource src(p, Rng(2));
  for (int i = 0; i < 100; ++i) {
    const VideoFrame f = src.next();
    EXPECT_EQ(f.keyframe, f.seq % 25 == 0) << "seq " << f.seq;
  }
}

TEST(FrameSource, KeyframesAreLarger) {
  FrameSource src(default_params(), Rng(3));
  double key_sum = 0, other_sum = 0;
  int keys = 0, others = 0;
  for (int i = 0; i < 2000; ++i) {
    const VideoFrame f = src.next();
    if (f.keyframe) {
      key_sum += f.size_bytes;
      ++keys;
    } else {
      other_sum += f.size_bytes;
      ++others;
    }
  }
  EXPECT_GT(key_sum / keys, 4.0 * other_sum / others);
}

TEST(FrameSource, GopAverageNearMeanFrameBytes) {
  auto p = default_params();
  FrameSource src(p, Rng(4));
  double total = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) total += src.next().size_bytes;
  const double mean = total / n;
  EXPECT_NEAR(mean, p.mean_frame_bytes, p.mean_frame_bytes * 0.25);
}

TEST(FrameSource, StartOffsetShiftsCaptureTimes) {
  FrameSource src(default_params(), Rng(5));
  const VideoFrame f = src.next(1000000);
  EXPECT_EQ(f.capture_ts, 1000000);
}

std::vector<VideoFrame> make_frames(int n, std::uint32_t gop = 25) {
  FrameSource::Params p;
  p.gop_frames = gop;
  FrameSource src(p, Rng(6));
  std::vector<VideoFrame> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) out.push_back(src.next());
  return out;
}

TEST(Chunker, SealsThreeSecondChunksOnKeyframes) {
  Chunker chunker(Chunker::Params{});
  const auto frames = make_frames(75 * 4 + 1);  // 4 chunks + sealer frame
  std::vector<Chunk> sealed;
  for (const auto& f : frames) {
    if (auto c = chunker.push(f, f.capture_ts + 100000)) sealed.push_back(*c);
  }
  ASSERT_EQ(sealed.size(), 4u);
  for (const auto& c : sealed) {
    EXPECT_EQ(c.duration, 3 * time::kSecond);
    EXPECT_EQ(c.frame_count, 75u);
    EXPECT_EQ(c.first_frame_seq % 25, 0u);  // starts on a keyframe
  }
  EXPECT_EQ(sealed[1].seq, sealed[0].seq + 1);
  EXPECT_EQ(sealed[1].first_frame_seq, sealed[0].first_frame_seq + 75);
}

TEST(Chunker, BytesConserved) {
  Chunker chunker(Chunker::Params{});
  const auto frames = make_frames(75 * 3);
  std::uint64_t fed = 0, chunked = 0;
  for (const auto& f : frames) {
    fed += f.size_bytes;
    if (auto c = chunker.push(f, f.capture_ts)) chunked += c->size_bytes;
  }
  if (auto c = chunker.flush(frames.back().capture_ts)) chunked += c->size_bytes;
  EXPECT_EQ(fed, chunked);
}

TEST(Chunker, FlushSealsPartialChunk) {
  Chunker chunker(Chunker::Params{});
  const auto frames = make_frames(10);
  for (const auto& f : frames) chunker.push(f, f.capture_ts);
  const auto c = chunker.flush(999);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->frame_count, 10u);
  EXPECT_EQ(c->completed_ts, 999);
  EXPECT_FALSE(chunker.flush(1000).has_value());  // nothing left
}

TEST(Chunker, MaxDurationForcesSealWithoutKeyframe) {
  Chunker::Params p;
  p.target_duration = 3 * time::kSecond;
  p.max_duration = 4 * time::kSecond;
  Chunker chunker(p);
  // GOP of 1000 frames: no keyframe arrives in time, max_duration governs.
  const auto frames = make_frames(150, 1000);
  std::vector<Chunk> sealed;
  for (const auto& f : frames) {
    if (auto c = chunker.push(f, f.capture_ts)) sealed.push_back(*c);
  }
  ASSERT_GE(sealed.size(), 1u);
  EXPECT_EQ(sealed[0].duration, 4 * time::kSecond);
}

TEST(Chunker, PlaylistSlidingWindow) {
  Chunker::Params p;
  p.playlist_window = 3;
  Chunker chunker(p);
  const auto frames = make_frames(75 * 6 + 1);
  for (const auto& f : frames) chunker.push(f, f.capture_ts);
  const ChunkList& list = chunker.playlist();
  EXPECT_EQ(list.chunks.size(), 3u);
  EXPECT_EQ(list.latest_seq(), 5);  // 6 chunks sealed, window keeps 3..5
  EXPECT_EQ(list.chunks.front().seq, 3u);
  EXPECT_EQ(list.version, 6u);
}

TEST(Chunker, EmptyPlaylistLatestSeq) {
  Chunker chunker(Chunker::Params{});
  EXPECT_EQ(chunker.playlist().latest_seq(), -1);
}

class ChunkDurationSweep
    : public ::testing::TestWithParam<std::int64_t> {};  // target seconds

TEST_P(ChunkDurationSweep, ChunkDurationTracksTarget) {
  const std::int64_t target_s = GetParam();
  Chunker::Params p;
  p.target_duration = target_s * time::kSecond;
  p.max_duration = 2 * target_s * time::kSecond;
  Chunker chunker(p);
  const auto frames = make_frames(2000);
  std::vector<Chunk> sealed;
  for (const auto& f : frames) {
    if (auto c = chunker.push(f, f.capture_ts)) sealed.push_back(*c);
  }
  ASSERT_GE(sealed.size(), 2u);
  for (const auto& c : sealed) {
    // Sealed on the first keyframe (1 s cadence) at/after the target.
    EXPECT_GE(c.duration, target_s * time::kSecond);
    EXPECT_LE(c.duration, (target_s + 1) * time::kSecond);
  }
}

INSTANTIATE_TEST_SUITE_P(Targets, ChunkDurationSweep,
                         ::testing::Values(1, 2, 3, 5, 10));

}  // namespace
}  // namespace livesim::media
