#include <gtest/gtest.h>

#include "livesim/msg/pubsub.h"

namespace livesim::msg {
namespace {

TEST(Channel, DeliversToAllSubscribers) {
  sim::Simulator sim;
  Channel channel(sim);
  net::Link l1(sim, net::LastMileProfiles::wifi(), Rng(1));
  net::Link l2(sim, net::LastMileProfiles::lte(), Rng(2));

  int got1 = 0, got2 = 0;
  TimeUs at1 = 0, at2 = 0;
  channel.subscribe(&l1, [&](const Message&, TimeUs at) {
    ++got1;
    at1 = at;
  });
  channel.subscribe(&l2, [&](const Message&, TimeUs at) {
    ++got2;
    at2 = at;
  });

  Message m;
  m.type = MessageType::kHeart;
  m.from = UserId{7};
  channel.publish(m);
  sim.run();
  EXPECT_EQ(got1, 1);
  EXPECT_EQ(got2, 1);
  EXPECT_GT(at1, 0);
  EXPECT_GT(at2, at1);  // LTE link is slower than WiFi
  EXPECT_EQ(channel.published(), 1u);
}

TEST(Channel, MessageContentPreserved) {
  sim::Simulator sim;
  Channel channel(sim);
  net::Link link(sim, net::LastMileProfiles::wired(), Rng(3));
  Message received;
  channel.subscribe(&link, [&](const Message& m, TimeUs) { received = m; });
  Message m;
  m.type = MessageType::kComment;
  m.from = UserId{42};
  m.sent_at = 123;
  m.reacts_to_media_ts = 456;
  m.text = "great stream!";
  channel.publish(m);
  sim.run();
  EXPECT_EQ(received.type, MessageType::kComment);
  EXPECT_EQ(received.from, UserId{42});
  EXPECT_EQ(received.reacts_to_media_ts, 456);
  EXPECT_EQ(received.text, "great stream!");
}

TEST(Channel, NoSubscribersIsFine) {
  sim::Simulator sim;
  Channel channel(sim);
  channel.publish(Message{});
  sim.run();
  EXPECT_EQ(channel.published(), 1u);
}

TEST(CommenterPolicy, CapsAtFirstN) {
  CommenterPolicy policy(3);
  EXPECT_TRUE(policy.admit_commenter());
  EXPECT_TRUE(policy.admit_commenter());
  EXPECT_TRUE(policy.admit_commenter());
  EXPECT_FALSE(policy.admit_commenter());  // the 4th joiner cannot comment
  EXPECT_FALSE(policy.admit_commenter());
  EXPECT_EQ(policy.admitted(), 3u);
}

TEST(CommenterPolicy, ZeroCapMeansUncapped) {
  CommenterPolicy policy(0);  // Meerkat: comments are tweets
  for (int i = 0; i < 1000; ++i) EXPECT_TRUE(policy.admit_commenter());
}

TEST(CommenterPolicy, PaperDefaultIs100) {
  CommenterPolicy policy(100);
  int admitted = 0;
  for (int i = 0; i < 500; ++i)
    if (policy.admit_commenter()) ++admitted;
  EXPECT_EQ(admitted, 100);
}

}  // namespace
}  // namespace livesim::msg
