// Property-style tests for the event-queue semantics the parallel runner
// leans on: every shard runs its own Simulator, so cross-thread-count
// determinism reduces to each Simulator being deterministic on its own —
// stable same-instant ordering, exact cancellation semantics, monotone
// clock, and run_until boundary behaviour. Each property is checked
// against a trivially-correct reference model over many random schedules.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "livesim/sim/simulator.h"
#include "livesim/util/rng.h"

namespace livesim::sim {
namespace {

struct Scheduled {
  TimeUs t;
  int label;
  EventHandle id;
};

// Reference order: stable sort by time (insertion order breaks ties),
// which is exactly the documented queue contract.
std::vector<int> reference_order(const std::vector<Scheduled>& events) {
  std::vector<Scheduled> sorted = events;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const Scheduled& a, const Scheduled& b) {
                     return a.t < b.t;
                   });
  std::vector<int> out;
  out.reserve(sorted.size());
  for (const auto& e : sorted) out.push_back(e.label);
  return out;
}

TEST(SimulatorProperty, SameInstantOrderingIsStable) {
  Rng rng(7);
  for (int round = 0; round < 50; ++round) {
    Simulator sim;
    std::vector<Scheduled> events;
    std::vector<int> fired;
    const int n = static_cast<int>(rng.uniform_int(1, 120));
    for (int i = 0; i < n; ++i) {
      // Few distinct instants => heavy tie-breaking pressure.
      const TimeUs t = rng.uniform_int(0, 8) * 10;
      const EventHandle id = sim.schedule_at(t, [&fired, i] { fired.push_back(i); });
      events.push_back({t, i, id});
    }
    sim.run();
    EXPECT_EQ(fired, reference_order(events)) << "round " << round;
  }
}

TEST(SimulatorProperty, CancelledSubsetNeverFiresRestKeepsOrder) {
  Rng rng(11);
  for (int round = 0; round < 50; ++round) {
    Simulator sim;
    std::vector<Scheduled> events;
    std::vector<int> fired;
    const int n = static_cast<int>(rng.uniform_int(2, 100));
    for (int i = 0; i < n; ++i) {
      const TimeUs t = rng.uniform_int(0, 6) * 5;
      const EventHandle id = sim.schedule_at(t, [&fired, i] { fired.push_back(i); });
      events.push_back({t, i, id});
    }
    std::vector<Scheduled> kept;
    for (const auto& e : events) {
      if (rng.bernoulli(0.4)) {
        EXPECT_TRUE(sim.cancel(e.id));
        EXPECT_FALSE(sim.cancel(e.id));  // double-cancel always fails
      } else {
        kept.push_back(e);
      }
    }
    EXPECT_EQ(sim.pending(), kept.size());
    sim.run();
    EXPECT_EQ(fired, reference_order(kept)) << "round " << round;
  }
}

TEST(SimulatorProperty, CancelAfterFireReturnsFalse) {
  Rng rng(13);
  for (int round = 0; round < 20; ++round) {
    Simulator sim;
    std::vector<EventHandle> ids;
    const int n = static_cast<int>(rng.uniform_int(1, 60));
    for (int i = 0; i < n; ++i)
      ids.push_back(sim.schedule_at(rng.uniform_int(0, 100), [] {}));
    sim.run();
    // Every event has fired; cancelling any of them must report failure.
    for (const EventHandle id : ids) EXPECT_FALSE(sim.cancel(id));
    EXPECT_EQ(sim.events_processed(), static_cast<std::size_t>(n));
  }
}

TEST(SimulatorProperty, PastSchedulesClampToNowAndClockIsMonotone) {
  Rng rng(17);
  for (int round = 0; round < 30; ++round) {
    Simulator sim;
    std::vector<TimeUs> fire_times;
    const TimeUs anchor = 500;
    sim.schedule_at(anchor, [&] {
      // From inside an event at t=anchor, schedule with times all over
      // [0, 2*anchor]; the past half must clamp to exactly `anchor`.
      for (int i = 0; i < 40; ++i) {
        const TimeUs t = rng.uniform_int(0, 2 * anchor);
        sim.schedule_at(t, [&] { fire_times.push_back(sim.now()); });
      }
      sim.schedule_in(-100, [&] { fire_times.push_back(sim.now()); });
    });
    sim.run();
    ASSERT_EQ(fire_times.size(), 41u);
    TimeUs prev = anchor;
    for (const TimeUs t : fire_times) {
      EXPECT_GE(t, anchor);  // nothing ever fires before the scheduling event
      EXPECT_GE(t, prev);    // clock never goes backwards
      prev = t;
    }
    // At least the negative-delay event clamped to exactly `anchor`.
    EXPECT_EQ(fire_times.front(), anchor);
  }
}

TEST(SimulatorProperty, RunUntilPartitionsEventsAtBoundary) {
  Rng rng(19);
  for (int round = 0; round < 40; ++round) {
    Simulator sim;
    std::vector<TimeUs> fired;
    std::vector<TimeUs> times;
    const int n = static_cast<int>(rng.uniform_int(1, 80));
    for (int i = 0; i < n; ++i) {
      const TimeUs t = rng.uniform_int(0, 1000);
      times.push_back(t);
      sim.schedule_at(t, [&fired, &sim] { fired.push_back(sim.now()); });
    }
    const TimeUs boundary = rng.uniform_int(0, 1000);
    sim.run_until(boundary);

    const auto expected_fired = static_cast<std::size_t>(
        std::count_if(times.begin(), times.end(),
                      [&](TimeUs t) { return t <= boundary; }));
    EXPECT_EQ(fired.size(), expected_fired);
    for (const TimeUs t : fired) EXPECT_LE(t, boundary);
    EXPECT_EQ(sim.pending(), times.size() - expected_fired);
    // Clock lands exactly on the boundary even with no event there.
    EXPECT_EQ(sim.now(), boundary);

    // run_until into the past is a no-op: no events, clock unchanged.
    sim.run_until(boundary / 2);
    EXPECT_EQ(sim.now(), boundary);
    EXPECT_EQ(fired.size(), expected_fired);

    sim.run();
    EXPECT_EQ(fired.size(), times.size());
  }
}

TEST(SimulatorProperty, RunUntilAfterCancelSkipsTombstones) {
  Rng rng(23);
  for (int round = 0; round < 30; ++round) {
    Simulator sim;
    int fired = 0;
    std::vector<EventHandle> ids;
    for (int i = 0; i < 50; ++i)
      ids.push_back(sim.schedule_at(rng.uniform_int(0, 100), [&] { ++fired; }));
    int cancelled = 0;
    for (const EventHandle id : ids) {
      if (rng.bernoulli(0.5) && sim.cancel(id)) ++cancelled;
    }
    sim.run_until(100);  // past every event: only survivors fire
    EXPECT_EQ(fired, 50 - cancelled);
    EXPECT_EQ(sim.pending(), 0u);
    EXPECT_EQ(sim.now(), 100);
  }
}

}  // namespace
}  // namespace livesim::sim
