// Determinism regression for the parallel experiment runner: the same seed
// must produce identical results at every thread count, and threads=1 must
// match the legacy (pre-parallel) serial driver byte for byte.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <vector>

#include "livesim/analysis/experiments.h"
#include "livesim/media/chunker.h"
#include "livesim/media/encoder.h"
#include "livesim/net/link.h"
#include "livesim/sim/parallel.h"
#include "livesim/sim/simulator.h"

namespace livesim {
namespace {

// --- shard partitioner -------------------------------------------------

TEST(ShardRanges, CoversIndexSpaceExactly) {
  for (std::size_t n : {0u, 1u, 7u, 64u, 1000u}) {
    for (unsigned k : {1u, 2u, 3u, 8u, 100u}) {
      const auto ranges = sim::shard_ranges(n, k);
      if (n == 0) {
        EXPECT_TRUE(ranges.empty());
        continue;
      }
      ASSERT_EQ(ranges.size(), std::min<std::size_t>(k, n));
      std::size_t expect_begin = 0;
      for (const auto& r : ranges) {
        EXPECT_EQ(r.begin, expect_begin);
        EXPECT_GT(r.size(), 0u);
        expect_begin = r.end;
      }
      EXPECT_EQ(expect_begin, n);
    }
  }
}

TEST(ShardRanges, NearEqualSizes) {
  const auto ranges = sim::shard_ranges(103, 8);
  std::size_t lo = 103, hi = 0;
  for (const auto& r : ranges) {
    lo = std::min(lo, r.size());
    hi = std::max(hi, r.size());
  }
  EXPECT_LE(hi - lo, 1u);
}

TEST(ShardRanges, ZeroShardsTreatedAsOne) {
  const auto ranges = sim::shard_ranges(5, 0);
  ASSERT_EQ(ranges.size(), 1u);
  EXPECT_EQ(ranges[0].begin, 0u);
  EXPECT_EQ(ranges[0].end, 5u);
}

// --- substreams --------------------------------------------------------

TEST(SubstreamSeed, DeterministicAndDistinct) {
  EXPECT_EQ(sim::substream_seed(42, 7), sim::substream_seed(42, 7));
  std::set<std::uint64_t> seen;
  for (std::uint64_t seed : {0ull, 1ull, 42ull}) {
    for (std::uint64_t stream = 0; stream < 1000; ++stream)
      seen.insert(sim::substream_seed(seed, stream));
  }
  EXPECT_EQ(seen.size(), 3000u);  // no collisions across nearby inputs
}

TEST(SubstreamSeed, StreamsAreStatisticallyIndependent) {
  // Consecutive substreams of the same master seed should not produce
  // correlated uniforms (they feed per-broadcast jitter models).
  stats::Correlation c;
  for (std::uint64_t i = 0; i < 2000; ++i) {
    Rng a(sim::substream_seed(9, i));
    Rng b(sim::substream_seed(9, i + 1));
    c.add(a.uniform(), b.uniform());
  }
  EXPECT_NEAR(c.pearson(), 0.0, 0.08);
}

// --- thread pool -------------------------------------------------------

TEST(ThreadPool, RunsEverySubmittedTask) {
  sim::ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> count{0};
  for (int i = 0; i < 1000; ++i) pool.submit([&] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPool, WaitIdleRethrowsTaskException) {
  sim::ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The pool stays usable after an error.
  std::atomic<int> count{0};
  pool.submit([&] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1);
}

TEST(ParallelMap, SlotsMatchIndices) {
  for (unsigned threads : {1u, 2u, 8u}) {
    const auto out = sim::parallel_map<std::size_t>(
        257, threads, [](std::size_t i) { return i * i; });
    ASSERT_EQ(out.size(), 257u);
    for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
  }
}

TEST(ParallelForShards, PropagatesWorkerException) {
  EXPECT_THROW(
      sim::parallel_for_shards(100, 4,
                               [](std::size_t, std::size_t b, std::size_t) {
                                 if (b > 0) throw std::logic_error("shard");
                               }),
      std::logic_error);
}

}  // namespace
}  // namespace livesim

namespace livesim::analysis {
namespace {

TraceSetConfig det_config(unsigned threads) {
  TraceSetConfig cfg;
  cfg.broadcasts = 48;
  cfg.broadcast_len = time::kMinute;
  cfg.seed = 2024;
  cfg.threads = threads;
  return cfg;
}

// Verbatim copy of the pre-parallel serial generate_traces loop: the
// archival reference that pins "threads=1 matches the legacy serial path"
// as a byte-for-byte guarantee rather than a code comment.
std::vector<BroadcastTrace> legacy_generate_traces(const TraceSetConfig& config) {
  std::vector<BroadcastTrace> traces;
  traces.reserve(static_cast<std::size_t>(config.broadcasts));
  Rng rng(config.seed);

  for (int b = 0; b < config.broadcasts; ++b) {
    sim::Simulator sim;
    BroadcastTrace trace;

    net::FifoUplink::Params uplink_params;
    const double r = rng.uniform();
    if (r < config.bursty_fraction) {
      uplink_params = net::LastMileProfiles::bursty_uplink();
      trace.bursty = true;
    } else if (r < config.bursty_fraction + config.slow_start_fraction) {
      uplink_params = net::LastMileProfiles::stable_uplink();
      uplink_params.mean_initial_outage = 10 * time::kSecond;
      uplink_params.initial_bw_fraction = 0.012;
      uplink_params.ramp_duration = 20 * time::kSecond;
      trace.bursty = true;
    } else {
      uplink_params = net::LastMileProfiles::stable_uplink();
    }
    net::FifoUplink uplink(sim, uplink_params, rng.fork());

    media::FrameSource source({}, rng.fork());
    media::Chunker::Params chunk_params;
    chunk_params.target_duration = config.chunk_target;
    chunk_params.max_duration = 2 * config.chunk_target;
    media::Chunker chunker(chunk_params);

    const auto frames = static_cast<std::uint64_t>(
        config.broadcast_len / source.params().frame_interval);
    trace.frame_interval = source.params().frame_interval;
    trace.frame_arrivals.resize(frames, 0);

    uplink.send(4096, [](TimeUs) {});
    for (std::uint64_t i = 0; i < frames; ++i) {
      media::VideoFrame f = source.next(0);
      sim.schedule_at(
          f.capture_ts + trace.frame_interval, [&, f]() mutable {
            uplink.send(f.size_bytes + 64, [&trace, &chunker, f](TimeUs at) {
              trace.frame_arrivals[f.seq] = at;
              if (auto sealed = chunker.push(f, at)) {
                trace.chunks.push_back({sealed->completed_ts,
                                        sealed->first_capture_ts,
                                        sealed->duration, sealed->size_bytes});
              }
            });
          });
    }
    sim.run();
    if (auto sealed = chunker.flush(sim.now())) {
      trace.chunks.push_back({sealed->completed_ts, sealed->first_capture_ts,
                              sealed->duration, sealed->size_bytes});
    }
    traces.push_back(std::move(trace));
  }
  return traces;
}

void expect_traces_identical(const std::vector<BroadcastTrace>& a,
                             const std::vector<BroadcastTrace>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE(i);
    ASSERT_EQ(a[i].frame_arrivals, b[i].frame_arrivals);  // exact int64s
    ASSERT_EQ(a[i].frame_interval, b[i].frame_interval);
    ASSERT_EQ(a[i].bursty, b[i].bursty);
    ASSERT_EQ(a[i].chunks.size(), b[i].chunks.size());
    for (std::size_t c = 0; c < a[i].chunks.size(); ++c) {
      ASSERT_EQ(a[i].chunks[c].completed_at_ingest,
                b[i].chunks[c].completed_at_ingest);
      ASSERT_EQ(a[i].chunks[c].media_start, b[i].chunks[c].media_start);
      ASSERT_EQ(a[i].chunks[c].duration, b[i].chunks[c].duration);
      ASSERT_EQ(a[i].chunks[c].bytes, b[i].chunks[c].bytes);
    }
  }
}

// Bitwise sampler equality: the raw per-broadcast sample sequence AND the
// merged summary moments (which Sampler::merge re-accumulates in index
// order precisely so this holds at any shard count).
void expect_samplers_identical(const stats::Sampler& a,
                               const stats::Sampler& b) {
  ASSERT_EQ(a.samples(), b.samples());
  EXPECT_EQ(a.summary().count(), b.summary().count());
  EXPECT_EQ(a.mean(), b.mean());
  EXPECT_EQ(a.stddev(), b.stddev());
  EXPECT_EQ(a.min(), b.min());
  EXPECT_EQ(a.max(), b.max());
}

TEST(ParallelRunner, TraceGenerationMatchesLegacySerialPath) {
  const auto legacy = legacy_generate_traces(det_config(1));
  for (unsigned threads : {1u, 2u, 8u}) {
    SCOPED_TRACE(threads);
    expect_traces_identical(legacy, generate_traces(det_config(threads)));
  }
}

TEST(ParallelRunner, PollingDeterministicAcrossThreadCounts) {
  const auto traces = generate_traces(det_config(0));
  const auto ref = polling_experiment(traces, 3 * time::kSecond,
                                      300 * time::kMillisecond, 99, 1);
  ASSERT_GT(ref.per_broadcast_mean_s.size(), 0u);
  for (unsigned threads : {2u, 8u}) {
    SCOPED_TRACE(threads);
    const auto got = polling_experiment(traces, 3 * time::kSecond,
                                        300 * time::kMillisecond, 99, threads);
    expect_samplers_identical(ref.per_broadcast_mean_s,
                              got.per_broadcast_mean_s);
    expect_samplers_identical(ref.per_broadcast_std_s,
                              got.per_broadcast_std_s);
  }
}

TEST(ParallelRunner, RtmpBufferingDeterministicAcrossThreadCounts) {
  const auto traces = generate_traces(det_config(0));
  const auto ref =
      rtmp_buffering_experiment(traces, 500 * time::kMillisecond, 5, 1);
  ASSERT_EQ(ref.stall_ratio.size(), traces.size());
  for (unsigned threads : {2u, 8u}) {
    SCOPED_TRACE(threads);
    const auto got =
        rtmp_buffering_experiment(traces, 500 * time::kMillisecond, 5, threads);
    expect_samplers_identical(ref.stall_ratio, got.stall_ratio);
    expect_samplers_identical(ref.mean_delay_s, got.mean_delay_s);
  }
}

TEST(ParallelRunner, HlsBufferingDeterministicAcrossThreadCounts) {
  const auto traces = generate_traces(det_config(0));
  const DurationUs poll = time::from_seconds(2.8);
  const auto ref =
      hls_buffering_experiment(traces, 6 * time::kSecond, poll, 5, 1);
  ASSERT_GT(ref.stall_ratio.size(), 0u);
  for (unsigned threads : {2u, 8u}) {
    SCOPED_TRACE(threads);
    const auto got =
        hls_buffering_experiment(traces, 6 * time::kSecond, poll, 5, threads);
    expect_samplers_identical(ref.stall_ratio, got.stall_ratio);
    expect_samplers_identical(ref.mean_delay_s, got.mean_delay_s);
  }
}

TEST(ParallelRunner, ThreadsZeroMeansHardwareAndStaysDeterministic) {
  // threads=0 resolves to the machine's core count, whatever it is; the
  // result must still be the canonical one.
  expect_traces_identical(generate_traces(det_config(1)),
                          generate_traces(det_config(0)));
}

}  // namespace
}  // namespace livesim::analysis
