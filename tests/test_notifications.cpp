#include <gtest/gtest.h>

#include "livesim/core/notifications.h"
#include "livesim/social/generators.h"

namespace livesim::core {
namespace {

class NotificationFixture : public ::testing::Test {
 protected:
  NotificationFixture()
      : catalog_(geo::DatacenterCatalog::paper_footprint()),
        service_(sim_, catalog_, service_config()),
        graph_(make_graph()) {
    graph_.build_reverse();
  }

  static LivestreamService::Config service_config() {
    LivestreamService::Config cfg;
    cfg.rtmp_slot_cap = 100;
    cfg.seed = 60;
    return cfg;
  }

  static social::Graph make_graph() {
    // Node 0 is a celebrity with 500 followers; node 1 has 3.
    social::Graph g(600);
    for (std::uint32_t f = 2; f < 502; ++f) g.add_edge(f, 0);
    for (std::uint32_t f = 502; f < 505; ++f) g.add_edge(f, 1);
    return g;
  }

  sim::Simulator sim_;
  geo::DatacenterCatalog catalog_;
  LivestreamService service_;
  social::Graph graph_;
};

TEST_F(NotificationFixture, FollowersGetNotifiedAndSomeJoin) {
  NotificationService::Params p;
  p.join_probability = 0.2;
  NotificationService notify(sim_, graph_, service_, p, Rng(61));

  const auto id =
      service_.start_broadcast({37.77, -122.42}, 5 * time::kMinute);
  notify.broadcast_started(0, id);  // the celebrity goes live
  sim_.run();

  EXPECT_EQ(notify.notifications_sent(), 500u);
  // ~100 expected joiners; accept a wide band.
  EXPECT_GT(notify.joins_driven(), 60u);
  EXPECT_LT(notify.joins_driven(), 140u);
  const auto info = service_.info(id);
  EXPECT_EQ(info->rtmp_viewers + info->hls_viewers, notify.joins_driven());
}

TEST_F(NotificationFixture, FollowerCountDrivesAudience) {
  NotificationService::Params p;
  p.join_probability = 0.3;
  NotificationService notify(sim_, graph_, service_, p, Rng(62));

  const auto celeb =
      service_.start_broadcast({37.77, -122.42}, 5 * time::kMinute);
  const auto nobody =
      service_.start_broadcast({40.71, -74.01}, 5 * time::kMinute);
  notify.broadcast_started(0, celeb);
  notify.broadcast_started(1, nobody);
  sim_.run();

  const auto celeb_info = service_.info(celeb);
  const auto nobody_info = service_.info(nobody);
  // Figure 7's mechanism, live: more followers -> more viewers.
  EXPECT_GT(celeb_info->rtmp_viewers + celeb_info->hls_viewers,
            20 * (nobody_info->rtmp_viewers + nobody_info->hls_viewers + 1));
}

TEST_F(NotificationFixture, JoinsArriveAfterHumanDelays) {
  NotificationService::Params p;
  p.join_probability = 1.0;
  p.mean_delivery = time::kSecond;
  p.mean_reaction = 10 * time::kSecond;
  NotificationService notify(sim_, graph_, service_, p, Rng(63));

  const auto id =
      service_.start_broadcast({37.77, -122.42}, 5 * time::kMinute);
  notify.broadcast_started(1, id);  // 3 followers
  // Immediately after the fan-out, nobody has joined yet.
  EXPECT_EQ(service_.info(id)->rtmp_viewers, 0u);
  sim_.run();
  EXPECT_EQ(notify.joins_driven(), 3u);
}

TEST_F(NotificationFixture, DeadBroadcastJoinsAreDropped) {
  NotificationService::Params p;
  p.join_probability = 1.0;
  p.mean_reaction = 10 * time::kMinute;  // reactions slower than the stream
  NotificationService notify(sim_, graph_, service_, p, Rng(64));
  const auto id =
      service_.start_broadcast({37.77, -122.42}, 30 * time::kSecond);
  notify.broadcast_started(1, id);
  sim_.run();
  // Most reactions land after the broadcast ended: joins mostly fail.
  EXPECT_LT(notify.joins_driven(), 3u);
}

TEST(GraphReverse, FollowersOfMatchesEdges) {
  social::Graph g(4);
  g.add_edge(1, 0);
  g.add_edge(2, 0);
  g.add_edge(0, 3);
  g.build_reverse();
  EXPECT_EQ(g.followers_of(0), (std::vector<std::uint32_t>{1, 2}));
  EXPECT_EQ(g.followers_of(3), (std::vector<std::uint32_t>{0}));
  EXPECT_TRUE(g.followers_of(1).empty());
}

TEST(GraphReverse, ThrowsWithoutBuild) {
  social::Graph g(2);
  g.add_edge(0, 1);
  EXPECT_THROW(g.followers_of(1), std::logic_error);
}

}  // namespace
}  // namespace livesim::core
