#include <gtest/gtest.h>

#include "livesim/media/encoder.h"
#include "livesim/protocol/rtmps.h"
#include "livesim/security/attack.h"
#include "livesim/security/stream_sign.h"

namespace livesim::security {
namespace {

std::vector<media::VideoFrame> make_frames(int n) {
  media::FrameSource src(media::FrameSource::Params{}, Rng(1));
  std::vector<media::VideoFrame> out;
  Rng payload_rng(2);
  for (int i = 0; i < n; ++i) {
    auto f = src.next();
    f.payload.resize(64);
    for (auto& b : f.payload)
      b = static_cast<std::uint8_t>(payload_rng.next_u64());
    out.push_back(std::move(f));
  }
  return out;
}

TEST(StreamSign, CleanStreamVerifies) {
  const Digest seed = Sha256::hash(std::string("broadcast-seed"));
  StreamSigner signer(seed, 16, 5);
  StreamVerifier verifier(signer.root(), 5);

  auto frames = make_frames(50);
  int signed_frames = 0;
  for (auto& f : frames) {
    signer.process(f);
    if (!f.signature.empty()) ++signed_frames;
    EXPECT_NE(verifier.process(f), StreamVerifier::Result::kTampered);
  }
  EXPECT_EQ(signed_frames, 10);
  EXPECT_EQ(verifier.windows_verified(), 10u);
  EXPECT_EQ(verifier.windows_tampered(), 0u);
}

TEST(StreamSign, TamperedPayloadDetected) {
  const Digest seed = Sha256::hash(std::string("seed"));
  StreamSigner signer(seed, 16, 5);
  StreamVerifier verifier(signer.root(), 5);

  auto frames = make_frames(25);
  for (auto& f : frames) signer.process(f);
  frames[7].payload[0] ^= 0xFF;  // tamper one mid-window frame

  std::uint64_t tampered = 0;
  for (const auto& f : frames) {
    if (verifier.process(f) == StreamVerifier::Result::kTampered) ++tampered;
  }
  EXPECT_EQ(tampered, 1u);  // exactly the window containing frame 7
  EXPECT_EQ(verifier.windows_verified(), 4u);
}

TEST(StreamSign, TamperedSignatureDetected) {
  const Digest seed = Sha256::hash(std::string("seed"));
  StreamSigner signer(seed, 16, 5);
  StreamVerifier verifier(signer.root(), 5);
  auto frames = make_frames(10);
  for (auto& f : frames) signer.process(f);
  frames[4].signature[20] ^= 1;  // frame 4 carries window 0's signature
  std::uint64_t tampered = 0;
  for (const auto& f : frames)
    if (verifier.process(f) == StreamVerifier::Result::kTampered) ++tampered;
  EXPECT_EQ(tampered, 1u);
  EXPECT_EQ(verifier.windows_verified(), 1u);
}

TEST(StreamSign, MissingSignatureDetected) {
  const Digest seed = Sha256::hash(std::string("seed"));
  StreamSigner signer(seed, 16, 5);
  StreamVerifier verifier(signer.root(), 5);
  auto frames = make_frames(5);
  for (auto& f : frames) signer.process(f);
  frames[4].signature.clear();  // attacker strips the signature
  StreamVerifier::Result last{};
  for (const auto& f : frames) last = verifier.process(f);
  EXPECT_EQ(last, StreamVerifier::Result::kTampered);
}

TEST(StreamSign, UnexpectedSignatureMidWindowDetected) {
  StreamVerifier verifier(Sha256::hash(std::string("root")), 10);
  auto frames = make_frames(3);
  frames[1].signature = {1, 2, 3};
  EXPECT_EQ(verifier.process(frames[0]), StreamVerifier::Result::kPassThrough);
  EXPECT_EQ(verifier.process(frames[1]), StreamVerifier::Result::kTampered);
}

TEST(StreamSign, KeyExhaustionThrows) {
  const Digest seed = Sha256::hash(std::string("seed"));
  StreamSigner signer(seed, 2, 1);  // 2 keys, sign every frame
  auto frames = make_frames(3);
  signer.process(frames[0]);
  signer.process(frames[1]);
  EXPECT_THROW(signer.process(frames[2]), std::runtime_error);
}

TEST(StreamSign, SignEveryZeroRejected) {
  const Digest seed = Sha256::hash(std::string("seed"));
  EXPECT_THROW(StreamSigner(seed, 4, 0), std::invalid_argument);
}

TEST(SignatureBlob, EncodeDecodeRoundTrip) {
  SignatureBlob blob;
  blob.key_index = 9;
  blob.wots_signature.assign(Wots::kSignatureBytes, 0x5A);
  blob.auth_path = {Sha256::hash(std::string("a")), Sha256::hash(std::string("b"))};
  const auto wire = blob.encode();
  EXPECT_EQ(wire.size(), blob.wire_size());
  const auto back = SignatureBlob::decode(wire);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->key_index, 9u);
  EXPECT_EQ(back->wots_signature, blob.wots_signature);
  ASSERT_EQ(back->auth_path.size(), 2u);
  EXPECT_TRUE(digest_equal(back->auth_path[1], blob.auth_path[1]));
}

TEST(SignatureBlob, DecodeRejectsTrailingBytes) {
  SignatureBlob blob;
  blob.wots_signature = {1};
  auto wire = blob.encode();
  wire.push_back(0x00);
  EXPECT_FALSE(SignatureBlob::decode(wire).has_value());
}

TEST(SignatureBlob, DecodeRejectsTruncation) {
  SignatureBlob blob;
  blob.wots_signature.assign(100, 1);
  blob.auth_path.assign(4, Digest{});
  auto wire = blob.encode();
  wire.resize(wire.size() - 10);
  EXPECT_FALSE(SignatureBlob::decode(wire).has_value());
}

class SignEverySweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(SignEverySweep, OverheadShrinksWithWindow) {
  const std::uint32_t k = GetParam();
  const Digest seed = Sha256::hash(std::string("seed"));
  StreamSigner signer(seed, 64, k);
  StreamVerifier verifier(signer.root(), k);
  auto frames = make_frames(60);
  std::size_t sig_bytes = 0;
  for (auto& f : frames) {
    signer.process(f);
    sig_bytes += f.signature.size();
    ASSERT_NE(verifier.process(f), StreamVerifier::Result::kTampered);
  }
  // Signature bytes per frame should be ~ (blob size / k).
  const double per_frame =
      static_cast<double>(sig_bytes) / static_cast<double>(frames.size());
  EXPECT_LT(per_frame, 2500.0 / k + 500.0);
}

INSTANTIATE_TEST_SUITE_P(Windows, SignEverySweep,
                         ::testing::Values(1, 5, 25, 50));

// --- the full §7 attack scenarios over wire bytes ---

TEST(Attack, UnsignedStreamTamperedSilently) {
  TamperAttacker attacker;
  auto frames = make_frames(20);
  int altered = 0;
  for (const auto& f : frames) {
    const auto wire = protocol::frame_to_wire(f);
    const auto forwarded = attacker.intercept(wire);
    const auto received = protocol::wire_to_frame(forwarded);
    ASSERT_TRUE(received.has_value());  // server parses it fine: no defense
    EXPECT_EQ(received->seq, f.seq);    // metadata untouched
    if (received->payload != f.payload) ++altered;
    // Tampered payload is all replacement bytes (black frame).
    for (auto b : received->payload) EXPECT_EQ(b, 0x00);
  }
  EXPECT_EQ(altered, 20);
  EXPECT_EQ(attacker.stats().frames_tampered, 20u);
}

TEST(Attack, TokenSniffedFromConnect) {
  TamperAttacker attacker;
  protocol::RtmpMessage msg{
      protocol::RtmpMessageType::kConnect,
      protocol::encode_connect({"token-abc", "key"})};
  const auto wire = protocol::encode_message(msg);
  const auto fwd = attacker.intercept(wire);
  EXPECT_EQ(fwd, wire);  // forwarded unchanged...
  EXPECT_EQ(attacker.stats().tokens_sniffed, 1u);  // ...but harvested
}

TEST(Attack, SignedStreamTamperDetectedAtVerifier) {
  const Digest seed = Sha256::hash(std::string("seed"));
  StreamSigner signer(seed, 16, 5);
  StreamVerifier verifier(signer.root(), 5);
  TamperAttacker attacker;

  auto frames = make_frames(25);
  std::uint64_t tampered_windows = 0;
  for (auto& f : frames) {
    signer.process(f);
    const auto wire = protocol::frame_to_wire(f);
    const auto received = protocol::wire_to_frame(attacker.intercept(wire));
    ASSERT_TRUE(received.has_value());
    if (verifier.process(*received) == StreamVerifier::Result::kTampered)
      ++tampered_windows;
  }
  EXPECT_EQ(tampered_windows, 5u);  // every window flagged
  EXPECT_EQ(verifier.windows_verified(), 0u);
}

TEST(Attack, RtmpsRecordsSurviveUntouchedOrFailMac) {
  protocol::SecureChannel::Key key{};
  key[1] = 7;
  protocol::SecureChannel sender(key), receiver(key);
  TamperAttacker attacker;

  auto frames = make_frames(10);
  for (const auto& f : frames) {
    const auto record = sender.seal(protocol::frame_to_wire(f));
    const auto fwd = attacker.intercept(record);
    const auto opened = receiver.open(fwd);
    // The attacker cannot parse RTMPS, so it forwards unchanged and the
    // stream goes through intact.
    ASSERT_TRUE(opened.has_value());
    const auto back = protocol::wire_to_frame(*opened);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->payload, f.payload);
  }
  EXPECT_EQ(attacker.stats().frames_tampered, 0u);
  EXPECT_EQ(attacker.stats().parse_failures, 10u);
}

TEST(Attack, ViewerSideSelectiveTamperDetectedOnlyByTargets) {
  // §7.1: "An attacker can also selectively tamper with the broadcast to
  // affect only a specific group of viewers, by connecting to the
  // viewers' WiFi network. ... The broadcaster remains unaware."
  const Digest seed = Sha256::hash(std::string("seed"));
  StreamSigner signer(seed, 16, 5);
  // Server-side verifier (upload path is clean: the attacker sits on one
  // viewer's network, not the broadcaster's).
  StreamVerifier server(signer.root(), 5);
  // Two viewers: one behind the attacker, one on a clean network.
  StreamVerifier victim(signer.root(), 5);
  StreamVerifier bystander(signer.root(), 5);
  TamperAttacker attacker;

  auto frames = make_frames(25);
  std::uint64_t victim_flags = 0, bystander_flags = 0;
  for (auto& f : frames) {
    signer.process(f);
    ASSERT_NE(server.process(f), StreamVerifier::Result::kTampered);
    const auto clean_wire = protocol::frame_to_wire(f);
    const auto victim_frame =
        protocol::wire_to_frame(attacker.intercept(clean_wire));
    const auto bystander_frame = protocol::wire_to_frame(clean_wire);
    ASSERT_TRUE(victim_frame && bystander_frame);
    if (victim.process(*victim_frame) == StreamVerifier::Result::kTampered)
      ++victim_flags;
    if (bystander.process(*bystander_frame) ==
        StreamVerifier::Result::kTampered)
      ++bystander_flags;
  }
  EXPECT_EQ(server.windows_tampered(), 0u);   // broadcaster sees nothing
  EXPECT_EQ(bystander_flags, 0u);             // other viewers unaffected
  EXPECT_EQ(victim_flags, 5u);                // the target detects every window
}

}  // namespace
}  // namespace livesim::security
