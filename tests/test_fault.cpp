// Unit tests for the fault-injection building blocks: schedules,
// the injector, backoff, poll retry, and the per-layer fault hooks.
#include <gtest/gtest.h>

#include <vector>

#include "livesim/cdn/resource_model.h"
#include "livesim/cdn/servers.h"
#include "livesim/client/retry.h"
#include "livesim/fault/backoff.h"
#include "livesim/fault/fault.h"
#include "livesim/fault/injector.h"
#include "livesim/media/encoder.h"
#include "livesim/net/link.h"
#include "livesim/sim/simulator.h"

namespace {
using namespace livesim;

// --- FaultSchedule ---------------------------------------------------

TEST(FaultSchedule, AddKeepsTimeOrder) {
  fault::FaultSchedule s;
  s.add({30 * time::kSecond, fault::FaultKind::kIngestCrash, 0});
  s.add({10 * time::kSecond, fault::FaultKind::kEdgeCacheFlush, 0});
  s.add({20 * time::kSecond, fault::FaultKind::kLinkDegrade, 0});
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s.events()[0].at, 10 * time::kSecond);
  EXPECT_EQ(s.events()[1].at, 20 * time::kSecond);
  EXPECT_EQ(s.events()[2].at, 30 * time::kSecond);
}

TEST(FaultSchedule, AddIsStableAtEqualTimes) {
  fault::FaultSchedule s;
  s.add({5 * time::kSecond, fault::FaultKind::kIngestCrash, 0});
  s.add({5 * time::kSecond, fault::FaultKind::kLinkDegrade, 0});
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s.events()[0].kind, fault::FaultKind::kIngestCrash);
  EXPECT_EQ(s.events()[1].kind, fault::FaultKind::kLinkDegrade);
}

TEST(FaultSchedule, ActiveCoversHalfOpenWindow) {
  fault::FaultSchedule s;
  s.add({10 * time::kSecond, fault::FaultKind::kLinkDegrade,
         4 * time::kSecond});
  EXPECT_FALSE(s.active(fault::FaultKind::kLinkDegrade, 9 * time::kSecond));
  EXPECT_TRUE(s.active(fault::FaultKind::kLinkDegrade, 10 * time::kSecond));
  EXPECT_TRUE(s.active(fault::FaultKind::kLinkDegrade,
                       14 * time::kSecond - 1));
  EXPECT_FALSE(s.active(fault::FaultKind::kLinkDegrade, 14 * time::kSecond));
  EXPECT_FALSE(s.active(fault::FaultKind::kIngestCrash, 11 * time::kSecond));
}

TEST(FaultSchedule, RandomizedIsDeterministicInSeed) {
  fault::RandomFaultParams p;
  p.faults_per_minute = 3.0;
  p.horizon = 5 * time::kMinute;
  const auto a = fault::FaultSchedule::randomized(p, 1234);
  const auto b = fault::FaultSchedule::randomized(p, 1234);
  const auto c = fault::FaultSchedule::randomized(p, 1235);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.events()[i].at, b.events()[i].at);
    EXPECT_EQ(a.events()[i].kind, b.events()[i].kind);
    EXPECT_EQ(a.events()[i].duration, b.events()[i].duration);
  }
  EXPECT_GT(a.size(), 0u);
  // A different seed yields a different script (overwhelmingly likely).
  bool differs = a.size() != c.size();
  for (std::size_t i = 0; !differs && i < a.size(); ++i)
    differs = a.events()[i].at != c.events()[i].at;
  EXPECT_TRUE(differs);
}

TEST(FaultSchedule, ZeroRateAndZeroWeightsDrawNothing) {
  fault::RandomFaultParams p;
  p.faults_per_minute = 0.0;
  p.horizon = time::kMinute;
  EXPECT_TRUE(fault::FaultSchedule::randomized(p, 7).empty());

  p.faults_per_minute = 5.0;
  p.ingest_crash_weight = 0.0;
  p.edge_flush_weight = 0.0;
  p.link_degrade_weight = 0.0;
  p.chunk_corruption_weight = 0.0;
  EXPECT_TRUE(fault::FaultSchedule::randomized(p, 7).empty());
}

TEST(FaultSchedule, RandomizedRespectsHorizonAndRate) {
  fault::RandomFaultParams p;
  p.faults_per_minute = 6.0;
  p.horizon = 10 * time::kMinute;
  const auto s = fault::FaultSchedule::randomized(p, 99);
  for (const auto& e : s.events()) {
    EXPECT_GE(e.at, 0);
    EXPECT_LT(e.at, p.horizon);
  }
  // Poisson(60) — a wide tolerance band keeps this deterministic test
  // meaningful without being seed-brittle.
  EXPECT_GT(s.size(), 30u);
  EXPECT_LT(s.size(), 120u);
}

TEST(FaultSchedule, OfKindFilters) {
  fault::RandomFaultParams p;
  p.faults_per_minute = 4.0;
  p.horizon = 5 * time::kMinute;
  const auto s = fault::FaultSchedule::randomized(p, 21);
  std::size_t total = 0;
  for (std::size_t k = 0; k < fault::kFaultKindCount; ++k) {
    const auto kind = static_cast<fault::FaultKind>(k);
    const auto filtered = s.of_kind(kind);
    for (const auto& e : filtered) EXPECT_EQ(e.kind, kind);
    total += filtered.size();
  }
  EXPECT_EQ(total, s.size());
}

// --- FaultInjector ---------------------------------------------------

TEST(FaultInjector, DispatchesEveryEventAtItsTime) {
  sim::Simulator sim;
  fault::FaultSchedule s;
  s.add({2 * time::kSecond, fault::FaultKind::kIngestCrash,
         1 * time::kSecond});
  s.add({5 * time::kSecond, fault::FaultKind::kEdgeCacheFlush, 0});
  s.add({5 * time::kSecond, fault::FaultKind::kIngestCrash, 0});

  fault::FaultInjector inj(sim, s);
  std::vector<TimeUs> crash_times;
  std::size_t flushes = 0;
  inj.on(fault::FaultKind::kIngestCrash,
         [&](const fault::FaultEvent&) { crash_times.push_back(sim.now()); });
  inj.on(fault::FaultKind::kEdgeCacheFlush,
         [&](const fault::FaultEvent&) { ++flushes; });
  inj.arm();
  sim.run();

  ASSERT_EQ(crash_times.size(), 2u);
  EXPECT_EQ(crash_times[0], 2 * time::kSecond);
  EXPECT_EQ(crash_times[1], 5 * time::kSecond);
  EXPECT_EQ(flushes, 1u);
  EXPECT_EQ(inj.injected(), 3u);
  EXPECT_EQ(inj.injected(fault::FaultKind::kIngestCrash), 2u);
  EXPECT_EQ(inj.injected(fault::FaultKind::kEdgeCacheFlush), 1u);
  EXPECT_EQ(inj.injected(fault::FaultKind::kLinkDegrade), 0u);
}

TEST(FaultInjector, ArmIsIdempotent) {
  sim::Simulator sim;
  fault::FaultSchedule s;
  s.add({1 * time::kSecond, fault::FaultKind::kLinkDegrade, 0});
  fault::FaultInjector inj(sim, s);
  std::size_t fired = 0;
  inj.on(fault::FaultKind::kLinkDegrade,
         [&](const fault::FaultEvent&) { ++fired; });
  inj.arm();
  inj.arm();  // second arm must not double-schedule
  sim.run();
  EXPECT_EQ(fired, 1u);
  EXPECT_EQ(inj.injected(), 1u);
}

TEST(FaultInjector, UnhandledKindsStillCount) {
  sim::Simulator sim;
  fault::FaultSchedule s;
  s.add({1 * time::kSecond, fault::FaultKind::kChunkCorruption,
         2 * time::kSecond});
  fault::FaultInjector inj(sim, s);
  inj.arm();
  sim.run();  // no handler registered: must not crash
  EXPECT_EQ(inj.injected(), 1u);
}

// --- BackoffPolicy ---------------------------------------------------

TEST(BackoffPolicy, BaseDelayGrowsGeometricallyToCap) {
  fault::BackoffPolicy::Params p;
  p.base = 500 * time::kMillisecond;
  p.multiplier = 2.0;
  p.cap = 8 * time::kSecond;
  fault::BackoffPolicy policy(p);
  EXPECT_EQ(policy.base_delay(1), 500 * time::kMillisecond);
  EXPECT_EQ(policy.base_delay(2), 1 * time::kSecond);
  EXPECT_EQ(policy.base_delay(3), 2 * time::kSecond);
  EXPECT_EQ(policy.base_delay(4), 4 * time::kSecond);
  EXPECT_EQ(policy.base_delay(5), 8 * time::kSecond);
  EXPECT_EQ(policy.base_delay(6), 8 * time::kSecond);   // capped
  EXPECT_EQ(policy.base_delay(40), 8 * time::kSecond);  // no overflow
}

TEST(BackoffPolicy, JitterStaysInBandAndNeverBelowOneMicro) {
  fault::BackoffPolicy::Params p;
  p.base = 1 * time::kSecond;
  p.jitter_fraction = 0.2;
  fault::BackoffPolicy policy(p);
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const DurationUs d = policy.delay(1, rng);
    EXPECT_GE(d, static_cast<DurationUs>(0.8 * time::kSecond));
    EXPECT_LE(d, static_cast<DurationUs>(1.2 * time::kSecond));
  }
  // Degenerate base: the floor keeps time moving forward.
  fault::BackoffPolicy::Params tiny;
  tiny.base = 0;
  fault::BackoffPolicy tiny_policy(tiny);
  EXPECT_GE(tiny_policy.base_delay(1), 1);
  EXPECT_GE(tiny_policy.delay(1, rng), 1);
}

TEST(BackoffPolicy, JitterIsDeterministicInRngState) {
  fault::BackoffPolicy policy;
  Rng a(42), b(42);
  for (std::uint32_t attempt = 1; attempt <= 8; ++attempt)
    EXPECT_EQ(policy.delay(attempt, a), policy.delay(attempt, b));
}

TEST(BackoffPolicy, ZeroJitterIsExactlyBaseDelay) {
  fault::BackoffPolicy::Params p;
  p.jitter_fraction = 0.0;
  fault::BackoffPolicy policy(p);
  Rng rng(3);
  for (std::uint32_t attempt = 1; attempt <= 6; ++attempt)
    EXPECT_EQ(policy.delay(attempt, rng), policy.base_delay(attempt));
}

// --- PollRetryState --------------------------------------------------

TEST(PollRetryState, BacksOffThenGivesUp) {
  client::PollRetryState::Params p;
  p.max_attempts = 3;
  p.backoff.jitter_fraction = 0.0;
  client::PollRetryState retry(p);
  Rng rng(1);

  const TimeUs t0 = 10 * time::kSecond;
  auto r1 = retry.on_failure(t0, rng);
  ASSERT_TRUE(r1.has_value());
  EXPECT_EQ(*r1, t0 + 500 * time::kMillisecond);
  EXPECT_EQ(retry.consecutive_failures(), 1u);

  auto r2 = retry.on_failure(*r1, rng);
  ASSERT_TRUE(r2.has_value());
  EXPECT_EQ(*r2, *r1 + 1 * time::kSecond);

  auto r3 = retry.on_failure(*r2, rng);
  EXPECT_FALSE(r3.has_value());  // streak hit max_attempts
  EXPECT_TRUE(retry.gave_up());
  // Terminal: success no longer revives it, later failures stay nullopt.
  retry.on_success();
  EXPECT_TRUE(retry.gave_up());
  EXPECT_FALSE(retry.on_failure(20 * time::kSecond, rng).has_value());
  EXPECT_EQ(retry.total_failures(), 3u);
}

TEST(PollRetryState, SuccessResetsTheStreak) {
  client::PollRetryState::Params p;
  p.max_attempts = 3;
  client::PollRetryState retry(p);
  Rng rng(5);
  ASSERT_TRUE(retry.on_failure(time::kSecond, rng).has_value());
  ASSERT_TRUE(retry.on_failure(2 * time::kSecond, rng).has_value());
  retry.on_success();
  EXPECT_EQ(retry.consecutive_failures(), 0u);
  // The streak restarts, so two more failures do not exhaust it.
  EXPECT_TRUE(retry.on_failure(3 * time::kSecond, rng).has_value());
  EXPECT_TRUE(retry.on_failure(4 * time::kSecond, rng).has_value());
  EXPECT_FALSE(retry.gave_up());
  EXPECT_EQ(retry.total_failures(), 4u);
}

// Audit pin: give-up is TERMINAL. Once the streak exhausts max_attempts,
// later on_failure calls must stay nullopt without inflating
// total_failures() (the ledger records real attempts, not post-mortem
// noise) and without consuming RNG (a dead retry loop must not perturb
// the caller's substream); on_success must not resurrect the streak or
// un-give-up the client.
TEST(PollRetryState, GiveUpIsTerminalAndDoesNotInflateTheLedger) {
  client::PollRetryState::Params p;
  p.max_attempts = 2;
  client::PollRetryState retry(p);
  Rng rng(9);

  ASSERT_TRUE(retry.on_failure(time::kSecond, rng).has_value());
  ASSERT_FALSE(retry.on_failure(2 * time::kSecond, rng).has_value());
  ASSERT_TRUE(retry.gave_up());
  EXPECT_EQ(retry.total_failures(), 2u);
  EXPECT_EQ(retry.consecutive_failures(), 2u);

  // Post-give-up failures: terminal, ledger frozen, RNG untouched.
  Rng witness = rng;  // value copy: same state iff no draws happen
  for (int i = 0; i < 5; ++i)
    EXPECT_FALSE(retry.on_failure((3 + i) * time::kSecond, rng).has_value());
  EXPECT_EQ(retry.total_failures(), 2u);
  EXPECT_EQ(retry.consecutive_failures(), 2u);
  EXPECT_EQ(rng.next_u64(), witness.next_u64());

  // A late success (a stale response finally arriving) must not revive
  // the session or zero the streak that justified the give-up.
  retry.on_success();
  EXPECT_TRUE(retry.gave_up());
  EXPECT_EQ(retry.consecutive_failures(), 2u);
  EXPECT_EQ(retry.total_failures(), 2u);
  // And the combination stays dead: success then failure, still nullopt.
  EXPECT_FALSE(retry.on_failure(20 * time::kSecond, rng).has_value());
  EXPECT_EQ(retry.total_failures(), 2u);
}

// --- Layer hooks -----------------------------------------------------

TEST(FaultHooks, UplinkOutageDelaysDeliveryUntilRecovery) {
  sim::Simulator sim;
  net::FifoUplink::Params p;
  p.link.base_delay = 10 * time::kMillisecond;
  p.link.jitter_fraction = 0.0;
  p.link.loss_rate = 0.0;
  net::FifoUplink link(sim, p, Rng(1));

  link.inject_outage(2 * time::kSecond);
  std::vector<TimeUs> delivered;
  link.send(1000, [&](TimeUs at) { delivered.push_back(at); });
  sim.run();
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_GE(delivered[0], 2 * time::kSecond);

  // Without an injected outage, the same message is delivered promptly.
  sim::Simulator sim2;
  net::FifoUplink clean(sim2, p, Rng(1));
  std::vector<TimeUs> prompt;
  clean.send(1000, [&](TimeUs at) { prompt.push_back(at); });
  sim2.run();
  ASSERT_EQ(prompt.size(), 1u);
  EXPECT_LT(prompt[0], 1 * time::kSecond);
}

TEST(FaultHooks, IngestSetDownDropsFrames) {
  sim::Simulator sim;
  cdn::IngestServer server(sim, DatacenterId{0}, media::Chunker::Params{},
                           cdn::ResourceModel{});
  std::size_t pushed = 0;
  server.add_rtmp_subscriber(
      [&](const media::VideoFrame&, TimeUs) { ++pushed; });
  media::FrameSource src({}, Rng(1));

  server.on_frame(src.next());
  EXPECT_EQ(pushed, 1u);
  EXPECT_FALSE(server.down());

  server.set_down(true);
  server.on_frame(src.next());
  server.on_frame(src.next());
  EXPECT_EQ(pushed, 1u);  // nothing reached subscribers
  EXPECT_EQ(server.frames_dropped(), 2u);
  EXPECT_TRUE(server.down());

  server.set_down(false);
  server.on_frame(src.next());
  EXPECT_EQ(pushed, 2u);
}

TEST(FaultHooks, EdgeFlushForcesOriginRefetch) {
  sim::Simulator sim;
  std::size_t origin_fetches = 0;
  cdn::EdgeServer edge(
      sim, DatacenterId{1},
      [&](std::function<void(cdn::EdgeServer::FetchResult)> done) {
        ++origin_fetches;
        media::Chunk c;
        c.seq = 0;
        sim.schedule_in(10 * time::kMillisecond, [done = std::move(done), c] {
          done(std::vector<media::Chunk>{c});
        });
      },
      cdn::ResourceModel{});

  edge.on_expire_notice(0);
  std::size_t got_first = 0;
  edge.on_poll(-1, [&](TimeUs, std::vector<media::Chunk> chunks) {
    got_first = chunks.size();
  });
  sim.run();
  EXPECT_EQ(got_first, 1u);
  EXPECT_EQ(origin_fetches, 1u);
  EXPECT_EQ(edge.cache_flushes(), 0u);

  // Cached now: a fresh poll is served without touching the origin.
  edge.on_poll(-1, [](TimeUs, std::vector<media::Chunk>) {});
  sim.run();
  EXPECT_EQ(origin_fetches, 1u);

  edge.flush_cache();
  EXPECT_EQ(edge.cache_flushes(), 1u);
  edge.on_poll(-1, [](TimeUs, std::vector<media::Chunk>) {});
  sim.run();
  EXPECT_EQ(origin_fetches, 2u);  // cache was really gone
}

}  // namespace
