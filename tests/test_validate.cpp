#include <gtest/gtest.h>

#include <cmath>

#include "livesim/stats/validate.h"
#include "livesim/util/rng.h"

namespace livesim::stats {
namespace {

TEST(KsDistance, UniformSamplesMatchUniformCdf) {
  Rng rng(1);
  Sampler s;
  for (int i = 0; i < 20000; ++i) s.add(rng.uniform(2.0, 5.0));
  const double d =
      ks_distance(s, [](double x) { return uniform_cdf(x, 2.0, 5.0); });
  // KS critical value at alpha=0.001 ~ 1.95/sqrt(n) ~ 0.014.
  EXPECT_LT(d, 0.014);
}

TEST(KsDistance, DetectsWrongDistribution) {
  Rng rng(2);
  Sampler s;
  for (int i = 0; i < 5000; ++i) s.add(rng.exponential(1.0));
  const double d =
      ks_distance(s, [](double x) { return uniform_cdf(x, 0.0, 5.0); });
  EXPECT_GT(d, 0.2);
}

TEST(KsDistance, ExponentialSamplesMatchExponentialCdf) {
  Rng rng(3);
  Sampler s;
  for (int i = 0; i < 20000; ++i) s.add(rng.exponential(3.0));
  const double d =
      ks_distance(s, [](double x) { return exponential_cdf(x, 3.0); });
  EXPECT_LT(d, 0.014);
}

TEST(KsDistance, NormalSamplesMatchNormalCdf) {
  Rng rng(4);
  Sampler s;
  for (int i = 0; i < 20000; ++i) s.add(rng.normal(10.0, 2.0));
  const double d = ks_distance(s, [](double x) {
    return 0.5 * std::erfc(-(x - 10.0) / (2.0 * std::sqrt(2.0)));
  });
  EXPECT_LT(d, 0.014);
}

TEST(KsDistance, EmptySampleThrows) {
  Sampler s;
  EXPECT_THROW(ks_distance(s, [](double) { return 0.5; }), std::logic_error);
}

TEST(ChiSquare, UniformIntIsUniform) {
  Rng rng(5);
  std::vector<std::uint64_t> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    ++counts[static_cast<std::size_t>(rng.uniform_int(0, 9))];
  const std::vector<double> expected(10, 0.1);
  // df = 9; critical value at alpha = 0.001 is 27.9.
  EXPECT_LT(chi_square(counts, expected), 27.9);
}

TEST(ChiSquare, ZipfMatchesAnalyticPmf) {
  const std::int64_t n = 20;
  const double s = 1.2;
  ZipfSampler zipf(n, s);
  Rng rng(6);
  std::vector<std::uint64_t> counts(static_cast<std::size_t>(n), 0);
  for (int i = 0; i < 200000; ++i)
    ++counts[static_cast<std::size_t>(zipf.sample(rng) - 1)];
  double norm = 0.0;
  std::vector<double> expected(static_cast<std::size_t>(n));
  for (std::int64_t r = 1; r <= n; ++r)
    norm += std::pow(static_cast<double>(r), -s);
  for (std::int64_t r = 1; r <= n; ++r)
    expected[static_cast<std::size_t>(r - 1)] =
        std::pow(static_cast<double>(r), -s) / norm;
  // df = 19; critical value at alpha = 0.001 is 43.8.
  EXPECT_LT(chi_square(counts, expected), 43.8);
}

TEST(ChiSquare, DetectsBias) {
  std::vector<std::uint64_t> counts = {900, 100};
  std::vector<double> expected = {0.5, 0.5};
  EXPECT_GT(chi_square(counts, expected), 100.0);
}

TEST(ChiSquare, RejectsBadInput) {
  EXPECT_THROW(chi_square({}, {}), std::invalid_argument);
  EXPECT_THROW(chi_square({1, 2}, {1.0}), std::invalid_argument);
  EXPECT_THROW(chi_square({1, 2}, {1.0, 0.0}), std::invalid_argument);
}

}  // namespace
}  // namespace livesim::stats
