// Crowd-consumption battery: BatchTimeline quantization + single-event
// chaining, LivestreamService::drive_crowd admission/churn contracts,
// wheel-vs-timer churn parity, steered placement against published
// drain verdicts (the cross-session control-plane gap), and the
// flash-crowd experiment's thread-determinism pin.
#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "livesim/analysis/flash_crowd.h"
#include "livesim/core/service.h"
#include "livesim/fault/scenario.h"
#include "livesim/geo/datacenters.h"
#include "livesim/sim/batch.h"
#include "livesim/sim/simulator.h"
#include "livesim/workload/crowd.h"

namespace livesim {
namespace {

using core::LivestreamService;

// --- sim::BatchTimeline ------------------------------------------------

TEST(BatchTimeline, QuantizeCeilsToWindowBoundary) {
  sim::Simulator sim;
  sim::BatchTimeline tl(sim, 100);
  EXPECT_EQ(tl.quantize(0), 0);
  EXPECT_EQ(tl.quantize(1), 100);
  EXPECT_EQ(tl.quantize(99), 100);
  EXPECT_EQ(tl.quantize(100), 100);  // boundary ops pay zero latency
  EXPECT_EQ(tl.quantize(101), 200);
  EXPECT_EQ(tl.quantize(-5), 0);  // negative clamps, never fires in past
}

TEST(BatchTimeline, ZeroWindowClampsToOneMicrosecond) {
  sim::Simulator sim;
  sim::BatchTimeline tl(sim, 0);
  EXPECT_EQ(tl.window(), 1);
  EXPECT_EQ(tl.quantize(7), 7);  // every op its own batch
}

TEST(BatchTimeline, WithinWindowOpsFireInAddOrder) {
  sim::Simulator sim;
  sim::BatchTimeline tl(sim, 1000);
  // All three quantize to the same boundary (1000); insertion order is
  // 42, 7, 99 even though the requested times are descending.
  tl.add(900, 42);
  tl.add(500, 7);
  tl.add(100, 99);
  std::vector<std::uint64_t> seen;
  TimeUs fired_at = -1;
  tl.seal([&](TimeUs at, std::span<const std::uint64_t> ops) {
    fired_at = at;
    seen.assign(ops.begin(), ops.end());
  });
  sim.run();
  EXPECT_EQ(fired_at, 1000);
  EXPECT_EQ(seen, (std::vector<std::uint64_t>{42, 7, 99}));
  EXPECT_EQ(tl.batches_fired(), 1u);
}

TEST(BatchTimeline, OneEngineEventPerNonEmptyWindow) {
  // The storm-thaw contract: a timeline of N ops spread over W non-empty
  // windows costs the engine exactly W events, not N.
  sim::Simulator sim;
  sim::BatchTimeline tl(sim, 100);
  // 40 ops, but only windows 100, 300, and 900 are non-empty.
  for (std::uint64_t i = 0; i < 20; ++i) tl.add(10 + static_cast<TimeUs>(i), i);
  for (std::uint64_t i = 0; i < 10; ++i) tl.add(250, 100 + i);
  for (std::uint64_t i = 0; i < 10; ++i) tl.add(900, 200 + i);
  std::size_t calls = 0;
  std::size_t total_ops = 0;
  tl.seal([&](TimeUs, std::span<const std::uint64_t> ops) {
    ++calls;
    total_ops += ops.size();
  });
  EXPECT_EQ(tl.batches(), 3u);
  sim.run();
  EXPECT_EQ(calls, 3u);
  EXPECT_EQ(total_ops, 40u);
  // The whole 40-op timeline was exactly 3 engine events.
  EXPECT_EQ(sim.events_processed(), 3u);
}

TEST(BatchTimeline, DestructorCancelsPendingChain) {
  sim::Simulator sim;
  std::size_t calls = 0;
  {
    sim::BatchTimeline tl(sim, 100);
    tl.add(50, 1);
    tl.add(450, 2);
    tl.seal([&](TimeUs, std::span<const std::uint64_t>) { ++calls; });
  }  // destroyed before the engine runs: the chain must die with it
  sim.run();
  EXPECT_EQ(calls, 0u);
  EXPECT_EQ(sim.events_processed(), 0u);
}

TEST(BatchTimeline, EmptyTimelineSealsToNothing) {
  sim::Simulator sim;
  sim::BatchTimeline tl(sim, 100);
  tl.seal([&](TimeUs, std::span<const std::uint64_t>) { FAIL(); });
  EXPECT_EQ(tl.batches(), 0u);
  sim.run();
  EXPECT_EQ(sim.events_processed(), 0u);
}

// --- LivestreamService::drive_crowd ------------------------------------

workload::CrowdPreset small_crowd(std::uint32_t channels,
                                  std::uint32_t viewers) {
  workload::CrowdPreset p = workload::CrowdPreset::twitch_flash_crowd();
  p.name = "test_small";
  p.channels = channels;
  p.viewers = viewers;
  p.horizon = 60 * time::kSecond;
  p.mean_session_s = 12.0;
  p.spike_at_frac = 0.5;
  p.spike_amplitude = 4.0;
  p.spike_ramp_s = 10.0;
  return p;
}

LivestreamService::Config hls_only_config(std::uint64_t seed = 11) {
  LivestreamService::Config cfg;
  cfg.rtmp_slot_cap = 0;  // the whole crowd rides the HLS poll wheels
  cfg.seed = seed;
  return cfg;
}

TEST(DriveCrowd, AdmitsEveryRecordWithinOneWindow) {
  const auto catalog = geo::DatacenterCatalog::paper_footprint();
  sim::Simulator sim;
  LivestreamService service(sim, catalog, hls_only_config());

  const auto preset = small_crowd(4, 400);
  const auto records = workload::generate_crowd(preset, 2016);
  std::vector<BroadcastId> channels;
  for (std::uint32_t c = 0; c < preset.channels; ++c)
    channels.push_back(
        service.start_broadcast({37.77 + c, -122.42}, preset.horizon));

  LivestreamService::CrowdDriveConfig dcfg;
  dcfg.batch_window = 500 * time::kMillisecond;
  const std::size_t drive = service.drive_crowd(channels, records, dcfg);
  sim.run();

  const auto& stats = service.crowd_stats(drive);
  EXPECT_EQ(stats.records, records.size());
  // Every record resolves exactly one way: admitted or late.
  EXPECT_EQ(stats.joins + stats.late_joins, stats.records);
  EXPECT_GT(stats.joins, 0u);
  // Every admitted viewer also left through the early-leave path.
  EXPECT_EQ(stats.leaves, stats.joins);
  // The quantize contract: admission latency is bounded by the window.
  EXPECT_EQ(stats.admission_latency_s.count(), stats.joins);
  EXPECT_GE(stats.admission_latency_s.min(), 0.0);
  EXPECT_LT(stats.admission_latency_s.max(),
            time::to_seconds(dcfg.batch_window));
  // The storm was batched: far fewer engine callbacks than records, and
  // no more than one per window over the horizon (+1 for pushed leaves).
  EXPECT_GT(stats.batches, 0u);
  EXPECT_LE(stats.batches,
            static_cast<std::uint64_t>(preset.horizon / dcfg.batch_window) + 2);
}

TEST(DriveCrowd, RecordsPastBroadcastEndCountAsLateJoins) {
  const auto catalog = geo::DatacenterCatalog::paper_footprint();
  sim::Simulator sim;
  LivestreamService service(sim, catalog, hls_only_config());

  // The crowd keeps arriving for 60 s but the broadcast ends at 10 s:
  // everything after the horizon cut is a late join, not a crash.
  const auto preset = small_crowd(1, 300);
  const auto records = workload::generate_crowd(preset, 5);
  const BroadcastId channels[] = {
      service.start_broadcast({37.77, -122.42}, 10 * time::kSecond)};
  const std::size_t drive = service.drive_crowd(channels, records);
  sim.run();

  const auto& stats = service.crowd_stats(drive);
  EXPECT_EQ(stats.joins + stats.late_joins, stats.records);
  EXPECT_GT(stats.joins, 0u);
  EXPECT_GT(stats.late_joins, 0u);
  EXPECT_EQ(stats.leaves, stats.joins);
}

TEST(DriveCrowd, UnmappedChannelRankIsLateNotFatal) {
  const auto catalog = geo::DatacenterCatalog::paper_footprint();
  sim::Simulator sim;
  LivestreamService service(sim, catalog, hls_only_config());

  // 4-channel crowd, but only channel 0 exists as a broadcast: ranks
  // 1..3 have no mapping and must be absorbed as late joins.
  const auto preset = small_crowd(4, 200);
  const auto records = workload::generate_crowd(preset, 6);
  const BroadcastId channels[] = {
      service.start_broadcast({37.77, -122.42}, preset.horizon)};
  const std::size_t drive = service.drive_crowd(channels, records);
  sim.run();

  const auto& stats = service.crowd_stats(drive);
  EXPECT_EQ(stats.joins + stats.late_joins, stats.records);
  EXPECT_GT(stats.late_joins, 0u);
  EXPECT_EQ(stats.leaves, stats.joins);
}

TEST(DriveCrowd, WheelAndTimerLanesAgreeOnChurn) {
  // The poll-wheel determinism contract extended to crowd churn: the
  // same drive against wheels-on and wheels-off services produces the
  // same admissions, the same leaves, and the same playback totals.
  const auto catalog = geo::DatacenterCatalog::paper_footprint();
  const auto preset = small_crowd(1, 250);
  const auto records = workload::generate_crowd(preset, 77);

  auto run_lane = [&](bool wheel) {
    sim::Simulator sim;
    auto cfg = hls_only_config();
    cfg.session_defaults.poll_wheel = wheel;
    LivestreamService service(sim, catalog, cfg);
    const BroadcastId channels[] = {
        service.start_broadcast({37.77, -122.42}, preset.horizon)};
    const std::size_t drive = service.drive_crowd(channels, records);
    sim.run();

    const auto& stats = service.crowd_stats(drive);
    std::uint64_t units = 0;
    for (const auto& r : service.session(channels[0])->viewer_results())
      units += r.units_played;
    return std::tuple{stats.joins, stats.late_joins, stats.leaves,
                      stats.batches, units};
  };

  EXPECT_EQ(run_lane(true), run_lane(false));
}

// --- steered placement (published verdicts -> organic joins) -----------

TEST(SteeredPlacement, OrganicJoinRoutesAroundAnotherSessionsVerdict) {
  // Broadcast A's control plane watches a site die and publishes the
  // verdict; broadcast B never saw the fault. A later organic join into
  // B must still route around the dead site: the service-wide published
  // union, not per-session knowledge, steers placement.
  const auto catalog = geo::DatacenterCatalog::paper_footprint();
  const geo::GeoPoint hotspot{37.77, -122.42};
  fault::RegionalBlackoutSpec spec;
  spec.center = hotspot;
  spec.radius_km = 0.0;  // exactly the nearest PoP
  const std::uint64_t dead =
      fault::FaultScenario::blackout_sites(catalog, spec).at(0).value;

  sim::Simulator sim;
  auto cfg = hls_only_config(7);
  cfg.session_defaults.control.enabled = true;
  LivestreamService service(sim, catalog, cfg);

  const auto a = service.start_broadcast(hotspot, 60 * time::kSecond);
  const auto b = service.start_broadcast(hotspot, 60 * time::kSecond);

  // A viewer on A instantiates the hotspot edge so A's plane scrapes it.
  ASSERT_TRUE(service.join(a, hotspot).has_value());

  // Blackout injected into A ONLY (B's session keeps believing the site
  // is fine): down at 2 s for 40 s.
  spec.at = 2 * time::kSecond;
  spec.duration = 40 * time::kSecond;
  fault::FaultScenario scenario;
  scenario.add(spec);
  service.session(a)->inject_faults(scenario.expand(catalog, cfg.seed));

  // By 5 s the death has been scraped (<= 500 ms cadence) and published
  // (+100 ms steer latency). An organic join lands on B near the dead
  // site.
  std::vector<std::uint64_t> avoid;
  std::optional<LivestreamService::ViewerHandle> handle;
  sim.schedule_in(5 * time::kSecond, [&] {
    avoid = service.published_avoid();
    handle = service.join(b, hotspot);
  });
  sim.run();

  ASSERT_TRUE(std::binary_search(avoid.begin(), avoid.end(), dead))
      << "A's verdict never reached the service-wide union";
  ASSERT_TRUE(handle.has_value());
  const auto results = service.session(b)->viewer_results();
  ASSERT_GT(results.size(), handle->viewer_index);
  EXPECT_NE(results[handle->viewer_index].attachment.value, dead)
      << "join landed on a site another session published as dead";
  EXPECT_FALSE(results[handle->viewer_index].orphaned);
  EXPECT_EQ(service.steered_joins(), 1u);
}

TEST(SteeredPlacement, NoControlPlaneMeansEmptyUnionAndNoSteering) {
  const auto catalog = geo::DatacenterCatalog::paper_footprint();
  sim::Simulator sim;
  LivestreamService service(sim, catalog, hls_only_config());
  const auto a = service.start_broadcast({37.77, -122.42}, 10 * time::kSecond);
  ASSERT_TRUE(service.join(a, {37.77, -122.42}).has_value());
  EXPECT_TRUE(service.published_avoid().empty());
  sim.run();
  EXPECT_EQ(service.steered_joins(), 0u);
}

// --- analysis::flash_crowd_experiment ----------------------------------

analysis::FlashCrowdConfig experiment_config(unsigned threads) {
  analysis::FlashCrowdConfig cfg;
  cfg.preset = small_crowd(8, 2000);
  cfg.preset.spike_amplitude = 6.0;
  cfg.threads = threads;
  cfg.session.edge_capacity = 0;
  cfg.session.control.enabled = true;
  return cfg;
}

TEST(FlashCrowdExperiment, ByteIdenticalAcrossThreadCounts) {
  const auto catalog = geo::DatacenterCatalog::paper_footprint();
  const auto one = flash_crowd_experiment(catalog, experiment_config(1));
  const auto two = flash_crowd_experiment(catalog, experiment_config(2));
  const auto eight = flash_crowd_experiment(catalog, experiment_config(8));

  EXPECT_EQ(one.fingerprint, two.fingerprint);
  EXPECT_EQ(one.fingerprint, eight.fingerprint);
  EXPECT_EQ(one.joins, eight.joins);
  EXPECT_EQ(one.leaves, eight.leaves);
  EXPECT_EQ(one.events_processed, eight.events_processed);
  EXPECT_EQ(one.peak_edge_load, eight.peak_edge_load);
}

TEST(FlashCrowdExperiment, BlackoutUnderStormForcesProactiveMigration) {
  const auto catalog = geo::DatacenterCatalog::paper_footprint();
  const auto stats = flash_crowd_experiment(catalog, experiment_config(1));

  EXPECT_EQ(stats.viewers, 2000u);
  EXPECT_EQ(stats.joins + stats.late_joins, stats.viewers);
  EXPECT_GT(stats.joins, 0u);
  EXPECT_EQ(stats.leaves, stats.joins);
  // The admission-latency pin at experiment level.
  EXPECT_LT(stats.admission_latency_s.max(), 0.5);
  // The blackout really collided with the storm...
  EXPECT_GT(stats.edge_failovers, 0u);
  // ...and the control plane moved at least part of the herd before the
  // reactive client timeout would have.
  EXPECT_GT(stats.proactive_migrations, 0u);
  EXPECT_GT(stats.control_drains + stats.proactive_migrations, 0u);
  EXPECT_GT(stats.peak_edge_load, 0u);
}

TEST(FlashCrowdExperiment, NoBlackoutNoControlIsQuiet) {
  const auto catalog = geo::DatacenterCatalog::paper_footprint();
  auto cfg = experiment_config(1);
  cfg.preset = small_crowd(4, 600);
  cfg.blackout = false;
  cfg.session.control.enabled = false;
  const auto stats = flash_crowd_experiment(catalog, cfg);

  EXPECT_EQ(stats.joins + stats.late_joins, stats.viewers);
  EXPECT_EQ(stats.edge_failovers, 0u);
  EXPECT_EQ(stats.proactive_migrations, 0u);
  EXPECT_EQ(stats.steered_joins, 0u);
  EXPECT_EQ(stats.control_drains, 0u);
  EXPECT_EQ(stats.orphaned_viewers, 0u);
}

}  // namespace
}  // namespace livesim
