#include <gtest/gtest.h>

#include "livesim/analysis/experiments.h"

namespace livesim::analysis {
namespace {

TraceSetConfig small_config() {
  TraceSetConfig cfg;
  cfg.broadcasts = 120;
  cfg.broadcast_len = time::kMinute;
  cfg.seed = 5;
  return cfg;
}

TEST(Traces, GenerateBasicInvariants) {
  const auto traces = generate_traces(small_config());
  ASSERT_EQ(traces.size(), 120u);
  for (const auto& t : traces) {
    EXPECT_EQ(t.frame_arrivals.size(), 1500u);  // 60 s at 25 fps
    // Frame arrivals monotone non-decreasing (FIFO upload).
    for (std::size_t i = 1; i < t.frame_arrivals.size(); ++i)
      ASSERT_LE(t.frame_arrivals[i - 1], t.frame_arrivals[i]);
    // Chunks cover the stream in order with ~3 s media each.
    ASSERT_GE(t.chunks.size(), 15u);
    for (std::size_t i = 0; i < t.chunks.size(); ++i) {
      ASSERT_GT(t.chunks[i].duration, 0);
      if (i > 0) {
        ASSERT_GT(t.chunks[i].completed_at_ingest,
                  t.chunks[i - 1].completed_at_ingest);
        ASSERT_EQ(t.chunks[i].media_start,
                  t.chunks[i - 1].media_start + t.chunks[i - 1].duration);
      }
    }
  }
}

TEST(Traces, BurstyFractionRespected) {
  auto cfg = small_config();
  cfg.broadcasts = 400;
  const auto traces = generate_traces(cfg);
  int bursty = 0;
  for (const auto& t : traces) bursty += t.bursty ? 1 : 0;
  const double frac = static_cast<double>(bursty) / 400.0;
  EXPECT_NEAR(frac, cfg.bursty_fraction + cfg.slow_start_fraction, 0.07);
}

TEST(Traces, ChunkTargetControlsDuration) {
  auto cfg = small_config();
  cfg.chunk_target = 5 * time::kSecond;
  const auto traces = generate_traces(cfg);
  stats::Accumulator dur;
  for (const auto& t : traces)
    for (std::size_t i = 0; i + 1 < t.chunks.size(); ++i)  // skip flush tail
      dur.add(time::to_seconds(t.chunks[i].duration));
  EXPECT_NEAR(dur.mean(), 5.0, 0.6);
}

TEST(Polling, MeanIsHalfIntervalOffResonance) {
  const auto traces = generate_traces(small_config());
  const auto r2 = polling_experiment(traces, 2 * time::kSecond,
                                     300 * time::kMillisecond, 9);
  const auto r4 = polling_experiment(traces, 4 * time::kSecond,
                                     300 * time::kMillisecond, 9);
  EXPECT_NEAR(r2.per_broadcast_mean_s.mean(), 1.0, 0.15);
  EXPECT_NEAR(r4.per_broadcast_mean_s.mean(), 2.0, 0.3);
}

TEST(Polling, ResonantIntervalSpreadsAcrossBroadcasts) {
  auto cfg = small_config();
  cfg.broadcasts = 300;
  const auto traces = generate_traces(cfg);
  auto spread = [&](DurationUs interval) {
    const auto r = polling_experiment(traces, interval,
                                      300 * time::kMillisecond, 9);
    return r.per_broadcast_mean_s.quantile(0.9) -
           r.per_broadcast_mean_s.quantile(0.1);
  };
  EXPECT_GT(spread(3 * time::kSecond), 2.0 * spread(2 * time::kSecond));
}

TEST(Buffering, RtmpMonotoneInPreBuffer) {
  const auto traces = generate_traces(small_config());
  double prev_delay = -1;
  for (DurationUs p : {0L, 500 * time::kMillisecond, 1 * time::kSecond}) {
    const auto r = rtmp_buffering_experiment(traces, p, 3);
    EXPECT_GE(r.mean_delay_s.mean(), prev_delay);
    prev_delay = r.mean_delay_s.mean();
  }
}

TEST(Buffering, HlsHeadlineResult) {
  auto cfg = small_config();
  cfg.broadcasts = 300;
  const auto traces = generate_traces(cfg);
  const DurationUs poll = time::from_seconds(2.8);
  const auto p6 = hls_buffering_experiment(traces, 6 * time::kSecond, poll, 3);
  const auto p9 = hls_buffering_experiment(traces, 9 * time::kSecond, poll, 3);
  // Similar smoothness...
  EXPECT_LT(p6.stall_ratio.quantile(0.9) - p9.stall_ratio.quantile(0.9),
            0.03);
  // ...at roughly half the buffering delay.
  EXPECT_NEAR(p6.mean_delay_s.median() / p9.mean_delay_s.median(), 0.5, 0.12);
}

TEST(Buffering, HlsZeroPreBufferStalls) {
  const auto traces = generate_traces(small_config());
  const DurationUs poll = time::from_seconds(2.8);
  const auto p0 = hls_buffering_experiment(traces, 0, poll, 3);
  const auto p9 = hls_buffering_experiment(traces, 9 * time::kSecond, poll, 3);
  EXPECT_GT(p0.stall_ratio.mean(), 5.0 * (p9.stall_ratio.mean() + 1e-6));
}

TEST(W2F, BucketsOrderedByDistance) {
  const auto catalog = geo::DatacenterCatalog::paper_footprint();
  const auto buckets = w2f_experiment(catalog, 40, 2);
  ASSERT_EQ(buckets.size(), 5u);
  double prev = 0.0;
  for (const auto& b : buckets) {
    if (b.delay_s.empty()) continue;
    EXPECT_GT(b.delay_s.mean(), prev) << b.label;
    prev = b.delay_s.mean();
  }
  // The co-located vs nearby gap.
  EXPECT_GT(buckets[1].delay_s.median() - buckets[0].delay_s.median(), 0.2);
}

TEST(Breakdown, MatchesFigure11Shape) {
  const auto r = delay_breakdown_experiment(3, 77);
  EXPECT_NEAR(r.rtmp.total_s(), 1.4, 0.5);
  EXPECT_NEAR(r.hls.total_s(), 11.0, 2.5);
  EXPECT_GT(r.hls.total_s() / r.rtmp.total_s(), 5.0);
}

TEST(Breakdown, Deterministic) {
  const auto a = delay_breakdown_experiment(2, 5);
  const auto b = delay_breakdown_experiment(2, 5);
  EXPECT_DOUBLE_EQ(a.hls.total_s(), b.hls.total_s());
  EXPECT_DOUBLE_EQ(a.rtmp.total_s(), b.rtmp.total_s());
}

}  // namespace
}  // namespace livesim::analysis
