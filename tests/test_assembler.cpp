#include <gtest/gtest.h>

#include "livesim/protocol/assembler.h"
#include "livesim/util/rng.h"

namespace livesim::protocol {
namespace {

std::vector<std::uint8_t> sample_stream(int messages, Rng& rng) {
  std::vector<std::uint8_t> stream;
  for (int i = 0; i < messages; ++i) {
    RtmpVideoFrame f;
    f.frame_seq = static_cast<std::uint64_t>(i);
    f.capture_ts_us = i * 40000;
    f.payload.resize(static_cast<std::size_t>(rng.uniform_int(0, 300)));
    for (auto& b : f.payload) b = static_cast<std::uint8_t>(rng.next_u64());
    RtmpMessage msg{RtmpMessageType::kVideoFrame, encode_video(f)};
    const auto wire = encode_message(msg);
    stream.insert(stream.end(), wire.begin(), wire.end());
  }
  return stream;
}

TEST(Assembler, WholeMessagesPassThrough) {
  MessageAssembler asm_;
  RtmpMessage msg{RtmpMessageType::kConnect, {1, 2, 3}};
  const auto out = asm_.feed(encode_message(msg));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].type, RtmpMessageType::kConnect);
  EXPECT_EQ(out[0].body, msg.body);
  EXPECT_EQ(asm_.buffered_bytes(), 0u);
}

TEST(Assembler, ByteAtATime) {
  MessageAssembler asm_;
  RtmpMessage msg{RtmpMessageType::kVideoFrame, {9, 8, 7, 6, 5}};
  const auto wire = encode_message(msg);
  std::vector<RtmpMessage> got;
  for (std::uint8_t byte : wire) {
    auto out = asm_.feed(std::span<const std::uint8_t>(&byte, 1));
    for (auto& m : out) got.push_back(std::move(m));
  }
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].body, msg.body);
}

TEST(Assembler, MultipleMessagesInOneFragment) {
  MessageAssembler asm_;
  Rng rng(1);
  const auto stream = sample_stream(7, rng);
  const auto out = asm_.feed(stream);
  EXPECT_EQ(out.size(), 7u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    const auto v = decode_video(out[i].body);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(v->frame_seq, i);
  }
}

TEST(Assembler, CorruptTypeByteSetsCorrupted) {
  MessageAssembler asm_;
  const std::vector<std::uint8_t> junk{0x7F, 0, 0, 0, 1, 0};
  EXPECT_TRUE(asm_.feed(junk).empty());
  EXPECT_TRUE(asm_.corrupted());
  // Everything after corruption is dropped.
  RtmpMessage msg{RtmpMessageType::kConnect, {}};
  EXPECT_TRUE(asm_.feed(encode_message(msg)).empty());
}

TEST(Assembler, InsaneLengthPrefixSetsCorrupted) {
  MessageAssembler asm_;
  std::vector<std::uint8_t> evil{
      static_cast<std::uint8_t>(RtmpMessageType::kVideoFrame),
      0xFF, 0xFF, 0xFF, 0xFF};  // 4 GB body claim
  EXPECT_TRUE(asm_.feed(evil).empty());
  EXPECT_TRUE(asm_.corrupted());
}

TEST(Assembler, EmptyFeedIsNoop) {
  MessageAssembler asm_;
  EXPECT_TRUE(asm_.feed({}).empty());
  EXPECT_FALSE(asm_.corrupted());
}

class SegmentationProperty : public ::testing::TestWithParam<int> {};

// Property: any segmentation of a valid stream reassembles identically.
TEST_P(SegmentationProperty, ArbitrarySegmentationReassembles) {
  const int seed = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed));
  const int kMessages = 40;
  const auto stream = sample_stream(kMessages, rng);

  MessageAssembler asm_;
  std::vector<RtmpMessage> got;
  std::size_t pos = 0;
  while (pos < stream.size()) {
    const auto take = static_cast<std::size_t>(std::min<std::int64_t>(
        rng.uniform_int(1, 600),
        static_cast<std::int64_t>(stream.size() - pos)));
    auto out = asm_.feed(std::span<const std::uint8_t>(
        stream.data() + pos, take));
    for (auto& m : out) got.push_back(std::move(m));
    pos += take;
  }
  ASSERT_EQ(got.size(), static_cast<std::size_t>(kMessages));
  EXPECT_EQ(asm_.buffered_bytes(), 0u);
  EXPECT_FALSE(asm_.corrupted());
  for (std::size_t i = 0; i < got.size(); ++i) {
    const auto v = decode_video(got[i].body);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(v->frame_seq, i);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SegmentationProperty,
                         ::testing::Range(0, 8));

}  // namespace
}  // namespace livesim::protocol
