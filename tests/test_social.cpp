#include <gtest/gtest.h>

#include "livesim/social/generators.h"
#include "livesim/social/graph.h"

namespace livesim::social {
namespace {

TEST(Graph, AddEdgeBasics) {
  Graph g(4);
  EXPECT_TRUE(g.add_edge(0, 1));
  EXPECT_FALSE(g.add_edge(0, 1));  // duplicate
  EXPECT_FALSE(g.add_edge(2, 2));  // self-loop
  EXPECT_FALSE(g.add_edge(0, 9));  // out of range
  EXPECT_TRUE(g.add_edge(1, 0));   // reverse is a distinct edge
  EXPECT_EQ(g.edges(), 2u);
  EXPECT_EQ(g.out_degree(0), 1u);
  EXPECT_EQ(g.in_degree(0), 1u);
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.mean_out_degree(), 0.5);
}

TEST(Metrics, TriangleGraph) {
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  Rng rng(1);
  const auto m = measure(g, rng, 500, 3);
  EXPECT_EQ(m.nodes, 3u);
  EXPECT_EQ(m.edges, 3u);
  EXPECT_NEAR(m.clustering, 1.0, 1e-9);   // every projection node closed
  EXPECT_NEAR(m.mean_path, 1.0, 1e-9);    // all pairs adjacent undirected
  EXPECT_EQ(m.assortativity, 0.0);        // all degrees equal -> degenerate
}

TEST(Metrics, StarGraphHasZeroClusteringAndNegativeAssortativity) {
  // Bidirectional star: every edge joins a degree-2 leaf to the hub.
  Graph g(10);
  for (std::uint32_t i = 1; i < 10; ++i) {
    g.add_edge(i, 0);
    g.add_edge(0, i);
  }
  Rng rng(2);
  const auto m = measure(g, rng, 1000, 5);
  EXPECT_EQ(m.clustering, 0.0);
  // Leaves all attach to the hub: maximally disassortative (r = -1).
  EXPECT_NEAR(m.assortativity, -1.0, 1e-9);
  // Undirected star: hub at distance 1, leaf-to-leaf at 2.
  EXPECT_GT(m.mean_path, 1.0);
  EXPECT_LT(m.mean_path, 2.0);
}

TEST(Metrics, EmptyGraphSafe) {
  Graph g(0);
  Rng rng(3);
  const auto m = measure(g, rng);
  EXPECT_EQ(m.nodes, 0u);
  EXPECT_EQ(m.mean_degree, 0.0);
}

TEST(Generate, DeterministicForSeed) {
  auto p = GraphGenParams::periscope_like(3000);
  const Graph a = generate(p);
  const Graph b = generate(p);
  EXPECT_EQ(a.edges(), b.edges());
  EXPECT_EQ(a.out(42), b.out(42));
}

TEST(Generate, EdgeCountTracksMeanOutDegree) {
  GraphGenParams p;
  p.nodes = 20000;
  p.mean_out_degree = 10.0;
  p.reciprocity = 0.0;
  p.triadic_closure = 0.0;
  p.communities = 0;
  const Graph g = generate(p);
  EXPECT_NEAR(g.mean_out_degree(), 10.0, 1.5);
}

TEST(Generate, ReciprocityCreatesBackEdges) {
  GraphGenParams p;
  p.nodes = 5000;
  p.mean_out_degree = 8.0;
  p.reciprocity = 1.0;
  p.triadic_closure = 0.0;
  p.communities = 0;
  const Graph g = generate(p);
  // Count reciprocated edges on a sample.
  std::uint64_t mutual = 0, total = 0;
  for (std::uint32_t u = 0; u < 500; ++u) {
    for (std::uint32_t v : g.out(u)) {
      ++total;
      for (std::uint32_t w : g.out(v))
        if (w == u) {
          ++mutual;
          break;
        }
    }
  }
  EXPECT_GT(static_cast<double>(mutual) / static_cast<double>(total), 0.9);
}

// Table 2's qualitative structure as a regression test.
class Table2Structure : public ::testing::Test {
 protected:
  static constexpr std::uint32_t kNodes = 30000;
  static GraphMetrics measure_preset(const GraphGenParams& p) {
    const Graph g = generate(p);
    Rng rng(9);
    return measure(g, rng, 1500, 12);
  }
};

TEST_F(Table2Structure, DegreeOrdering) {
  const auto peri = measure_preset(GraphGenParams::periscope_like(kNodes));
  const auto tw = measure_preset(GraphGenParams::twitter_like(kNodes));
  const auto fb = measure_preset(GraphGenParams::facebook_like(kNodes));
  // Facebook >> Periscope > Twitter in edges per node (Table 2).
  EXPECT_GT(fb.mean_degree, 2.0 * peri.mean_degree);
  EXPECT_GT(peri.mean_degree, 2.0 * tw.mean_degree);
}

TEST_F(Table2Structure, ClusteringOrdering) {
  const auto peri = measure_preset(GraphGenParams::periscope_like(kNodes));
  const auto tw = measure_preset(GraphGenParams::twitter_like(kNodes));
  const auto fb = measure_preset(GraphGenParams::facebook_like(kNodes));
  EXPECT_GT(fb.clustering, peri.clustering);
  EXPECT_GT(peri.clustering, tw.clustering);
}

TEST_F(Table2Structure, AssortativitySigns) {
  const auto peri = measure_preset(GraphGenParams::periscope_like(kNodes));
  const auto tw = measure_preset(GraphGenParams::twitter_like(kNodes));
  const auto fb = measure_preset(GraphGenParams::facebook_like(kNodes));
  // Facebook positive (bidirectional friendships), Periscope and Twitter
  // negative (asymmetric one-to-many follows) -- the paper's comparison.
  EXPECT_GT(fb.assortativity, 0.05);
  EXPECT_LT(peri.assortativity, 0.0);
  EXPECT_LT(tw.assortativity, 0.0);
}

TEST_F(Table2Structure, HeavyTailedInDegree) {
  const Graph g = generate(GraphGenParams::periscope_like(kNodes));
  std::uint32_t max_in = 0;
  for (std::uint32_t u = 0; u < g.nodes(); ++u)
    max_in = std::max(max_in, g.in_degree(u));
  // Celebrities: the largest account dwarfs the mean (power-law tail).
  EXPECT_GT(max_in, 50.0 * g.mean_out_degree());
}

}  // namespace
}  // namespace livesim::social
